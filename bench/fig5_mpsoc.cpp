// Fig 5 — Power/performance operating points of a big.LITTLE MPSoC
// running a ray tracer [11].
//
// Enumerates every (LITTLE cores, LITTLE DVFS, big cores, big DVFS)
// operating point of the ODROID-XU4-class model, plots the FPS-vs-power
// cloud, prints the Pareto frontier, and checks the paper's claims: the
// power consumption can be modulated by an order of magnitude through the
// DVFS x hot-plug hooks, trading performance.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common_flags.h"
#include "edc/neutral/mpsoc.h"
#include "edc/sim/ascii_plot.h"
#include "edc/sim/table.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Fig 5: raytrace FPS vs board power across operating points ===\n\n");

  neutral::BigLittleMpsoc model;
  auto points = model.enumerate_points();

  // Scatter plot: bucket power into columns, FPS onto rows.
  double p_max = 0.0, fps_max = 0.0;
  for (const auto& point : points) {
    p_max = std::max(p_max, point.power);
    fps_max = std::max(fps_max, point.fps);
  }
  const int width = 100, height = 20;
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& point : points) {
    const int col = std::min(width - 1, static_cast<int>(point.power / p_max * (width - 1)));
    const int row =
        height - 1 - std::min(height - 1, static_cast<int>(point.fps / fps_max * (height - 1)));
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }
  std::printf("Raytrace performance (FPS) vs board power (W), %zu operating points\n\n",
              points.size());
  for (int r = 0; r < height; ++r) {
    std::printf("%7.3f |%s\n",
                fps_max * static_cast<double>(height - 1 - r) / (height - 1),
                grid[static_cast<std::size_t>(r)].c_str());
  }
  std::printf("        +%s\n        0 W%*s%.1f W\n\n", std::string(width, '-').c_str(),
              width - 8, "", p_max);

  // Pareto frontier table (the configurations a PN governor would use).
  const auto frontier = model.pareto_frontier();
  sim::Table table({"operating point", "power (W)", "fps", "fps/W"});
  for (std::size_t i = 0; i < frontier.size(); i += std::max<std::size_t>(frontier.size() / 16, 1)) {
    const auto& point = frontier[i];
    table.add_row({point.point.label(), sim::Table::num(point.power, 2),
                   sim::Table::num(point.fps, 4),
                   sim::Table::num(point.fps / point.power, 4)});
  }
  const auto& top = frontier.back();
  table.add_row({top.point.label(), sim::Table::num(top.power, 2),
                 sim::Table::num(top.fps, 4), sim::Table::num(top.fps / top.power, 4)});
  std::printf("Pareto frontier (subset):\n");
  table.print(std::cout);

  double p_min = 1e9, fps_min = 1e9;
  for (const auto& point : points) {
    p_min = std::min(p_min, point.power);
    fps_min = std::min(fps_min, point.fps);
  }

  std::printf("\nSummary: power %.2f .. %.2f W (x%.1f), fps %.4f .. %.4f\n", p_min,
              p_max, p_max / p_min, fps_min, fps_max);

  std::printf("\nShape checks vs the paper:\n");
  check(p_max / p_min > 10.0,
        "power modulated by an order of magnitude via DVFS + core hot-plug");
  check(p_max > 12.0 && p_max < 20.0, "full-machine power in the 12-18 W band");
  check(fps_max > 0.15 && fps_max < 0.30, "peak raytrace performance ~0.22 FPS");
  check(frontier.size() >= 10, "rich frontier of useful operating points");
  check(points.size() > 300, "hundreds of distinct operating points plotted");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
