// Fig 2 — Taxonomy of energy-neutral, transient, energy-driven and
// power-neutral computing systems.
//
// Classifies the canonical catalogue (the systems the paper places on the
// figure) and prints the taxonomy table: storage coordinate, class
// membership, adaptation kind, and region. Checks the memberships the paper
// asserts in §II.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common_flags.h"
#include "edc/core/taxonomy.h"
#include "edc/sim/table.h"

using namespace edc;
using core::AdaptationKind;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

std::string mark(bool member) { return member ? "yes" : "-"; }

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Fig 2: an energy-based taxonomy of computing systems ===\n\n");

  sim::Table table({"system", "storage", "log10(J)", "energy-neutral", "transient",
                    "power-neutral", "energy-driven", "adaptation", "region"});

  const auto catalogue = core::canonical_catalogue();
  for (const auto& descriptor : catalogue) {
    const auto c = core::classify(descriptor);
    table.add_row({descriptor.name, sim::Table::eng(descriptor.storage, "J", 1),
                   sim::Table::num(c.storage_log10_j, 1), mark(c.energy_neutral),
                   mark(c.transient), mark(c.power_neutral), mark(c.energy_driven),
                   core::to_string(descriptor.adaptation),
                   c.energy_driven ? "ENERGY-DRIVEN" : "TRADITIONAL"});
  }
  table.print(std::cout);

  std::printf("\nNotes:\n");
  std::printf("  * storage axis: distance from the origin in Fig 2 (log10 joules)\n");
  std::printf("  * systems below log10(J) = %.1f sit at the 'Theoretical' practical\n",
              std::log10(core::kPracticalMinimumStorage));
  std::printf("    minimum arc (decoupling/parasitic capacitance only)\n");

  std::printf("\nMembership checks vs the paper (Section II):\n");
  auto find = [&](const std::string& name) {
    for (const auto& d : catalogue) {
      if (d.name == name) return core::classify(d);
    }
    std::printf("  [FAIL] missing %s\n", name.c_str());
    ++g_failures;
    return core::Classification{};
  };

  auto desktop = find("desktop-pc");
  check(desktop.energy_neutral && !desktop.transient && !desktop.energy_driven,
        "desktop PC: energy-neutral only, at the theoretical minimum of its axis");
  auto laptop = find("laptop-hibernate");
  check(laptop.energy_neutral && laptop.transient && !laptop.energy_driven,
        "laptop with hibernation: transient (rightmost on the transient axis)");
  auto wsn = find("wsn-kansal[3]");
  check(wsn.energy_neutral && !wsn.energy_driven,
        "energy-neutral WSN [3]: traditional side (harvester made to look like a battery)");
  auto hibernus = find("hibernus[9]");
  check(hibernus.transient && hibernus.energy_driven && !hibernus.energy_neutral,
        "hibernus [9]: transient + energy-driven at the practical minimum");
  auto mpsoc = find("pn-mpsoc[11]");
  check(mpsoc.power_neutral && mpsoc.energy_neutral && !mpsoc.transient &&
            mpsoc.energy_driven,
        "power-neutral MPSoC [11]: on the energy-neutral axis, power-neutral, energy-driven");
  auto hibernus_pn = find("hibernus-pn[14]");
  check(hibernus_pn.transient && hibernus_pn.power_neutral && hibernus_pn.energy_driven,
        "hibernus-PN [14]: transient AND power-neutral (the paper's Section III system)");
  auto monjolo = find("monjolo[6]");
  check(monjolo.transient && monjolo.energy_driven,
        "monjolo [6]: task-based transient, energy-driven");

  int energy_driven_count = 0;
  for (const auto& d : catalogue) {
    if (core::classify(d).energy_driven) ++energy_driven_count;
  }
  check(energy_driven_count >= 8, "the shaded energy-driven region covers the "
                                  "transient and power-neutral families");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
