// Fig 7 — A hibernus system executing an FFT directly from a half-wave
// rectified sine-wave supply.
//
// When V_CC decays through V_H the system snapshots and sleeps; when the
// supply recovers through V_R the snapshot is restored; the FFT that began
// at the beginning of execution completes a few supply cycles later. The
// bench plots the V_CC waveform with the V_H / V_R markers, lists the
// hibernate/restore event timeline, and checks the Fig 7 shape.
//
// --macro runs the same system with quiescent-engine macro-stepping
// (SimConfig::macro_stepping) and reports the wall-clock speedup plus the
// macro-vs-fine deltas next to the usual shape checks, which then validate
// the *macro* result — the accuracy contract, exercised on the actual
// paper figure. It also runs the *harvesting-gap survey*: the same Fig 7
// system riding 0.5 s bursts of the 6 Hz sine separated by the paper's
// decay-to-zero intervals (save -> sleep -> brown-out -> dead node between
// energy arrivals), the regime energy-driven devices actually live in.
// There the engine's analytic sleep/off/dead spans collapse the gaps to
// O(1), the trace's quiet-segment index claims the sub-conduction arcs
// inside each burst, and the headline speedup lands in the 25x class
// (recorded per push in BENCH_7.json as BM_MacroPair/Fig7Gapped_*). The
// *charge-ramp survey* swaps the sine bursts for DC bursts, where the
// charge-span planner (circuit::ChargeSolution) makes every charging
// ramp analytic too — the 40x class, gated at 25x.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>

#include "common_flags.h"
#include "edc/checkpoint/interrupt_policy.h"
#include "edc/core/system.h"
#include "edc/sim/ascii_plot.h"
#include "edc/sim/result_io.h"
#include "edc/sim/table.h"
#include "edc/spec/system_spec.h"
#include "edc/workloads/fft.h"
#include "fig7_scenarios.h"
#include "macro_survey.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

core::EnergyDrivenSystem build_system(bool macro_stepping) {
  core::SystemBuilder builder;
  checkpoint::InterruptPolicy::Config policy_config;
  // The board bleed drains the node in parallel with the save, so Eq 4's
  // margin must cover snapshot energy plus bleed-share (DESIGN.md §4).
  policy_config.margin = 2.2;
  policy_config.restore_headroom = 0.35;
  sim::SimConfig sim_config;
  sim_config.macro_stepping = macro_stepping;
  return builder.sine_source(3.3, 6.0)
      .capacitance(47e-6)
      .bleed(3000.0)
      .program(std::make_unique<workloads::FftProgram>(11, 7))
      .policy_hibernus(policy_config)
      .sim_config(sim_config)
      .probe(0.5e-3)
      .build();
}

double figure_wall_millis(core::EnergyDrivenSystem& system, sim::SimResult& result) {
  const auto start = std::chrono::steady_clock::now();
  result = system.run(2.0);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// bench/macro_survey.h owns the gate-critical best-of-N timing loop; the
// surveys here measure the exact scenarios BM_MacroPair/Fig7Gapped_* and
// Fig7ChargeRamp_* record in BENCH_7.json (bench/fig7_scenarios.h), so
// the gates and the recorded trajectory stay comparable by construction.
using macro_survey::span_coverage;
using macro_survey::wall_millis;

}  // namespace

int main(int argc, char** argv) {
  bool macro = false;
  bool batch = false;
  bench::FlagParser flags;
  flags.on("--macro", [&] { macro = true; }).on("--batch", [&] { batch = true; });
  if (!flags.parse(argc, argv)) return 2;

  std::printf("=== Fig 7: hibernus running an FFT from a half-wave rectified sine ===\n\n");

  if (batch) {
    // Batched-sweep survey: the Fig 7 design point across 16 node
    // capacitances (bench/fig7_scenarios.h — the exact grid
    // BM_BatchPair/Fig7Survey_* records in BENCH_7.json), scalar runner
    // vs the SoA batch kernel, single worker thread in both legs. The
    // rows must be *bit-identical* — the batch kernel replays the scalar
    // loop per lane and only restructures the node ODE arithmetic — so
    // the gate also re-proves the identity contract on the gated grid.
    const sweep::Grid grid = fig7::batch_survey_grid();
    std::vector<sim::SimResult> scalar_rows, batch_rows;
    const double scalar_ms =
        macro_survey::sweep_wall_millis(grid, scalar_rows, false, /*repeats=*/2);
    const double batch_ms =
        macro_survey::sweep_wall_millis(grid, batch_rows, true, /*repeats=*/5);
    const double speedup = scalar_ms / batch_ms;
    std::printf("batched-sweep survey (16-lane capacitance grid, 6 Hz sine): "
                "%.1f ms batch vs %.1f ms scalar (%.2fx)\n",
                batch_ms, scalar_ms, speedup);
    bool identical = scalar_rows.size() == batch_rows.size();
    for (std::size_t i = 0; identical && i < scalar_rows.size(); ++i) {
      identical = sim::serialize_result(scalar_rows[i]) ==
                  sim::serialize_result(batch_rows[i]);
    }
    check(identical, "batch rows are bit-identical to the scalar rows");
    // An uncontended Release build measures ~2.4x here (BENCH_7.json):
    // the sine is evaluated once per substep instead of once per lane and
    // the lane ODE vectorizes, while the per-lane MCU/policy machinery
    // (identical in both legs by the bit-identity contract) bounds the
    // ratio. The hard gate sits at 1.6x so shared-runner noise has
    // headroom while a regression to scalar-equivalent (~1x) still fails
    // loudly.
    check(speedup >= 1.6,
          "batched-sweep speedup is in the >=2.4x class "
          "(hard gate at 1.6x for contended-runner headroom)");
    std::printf("\n");
  }

  const Hertz supply_hz = 6.0;
  workloads::FftProgram golden(11, 7);
  const std::uint64_t golden_digest_value = workloads::golden_digest(golden);

  auto system = build_system(macro);
  const auto& policy = dynamic_cast<const checkpoint::InterruptPolicy&>(system.policy());
  const Volts v_h = policy.hibernate_threshold();
  const Volts v_r = policy.restore_threshold();

  sim::SimResult result;
  const double millis = figure_wall_millis(system, result);

  if (macro) {
    // Reference run for the speedup figure and the accuracy deltas.
    auto fine_system = build_system(false);
    sim::SimResult fine;
    const double fine_millis = figure_wall_millis(fine_system, fine);
    std::printf("macro-stepping: %.1f ms vs %.1f ms fine (%.1fx); deltas: "
                "harvested %+.3g J, consumed %+.3g J, completion %+.3g ms\n",
                millis, fine_millis, fine_millis / millis,
                result.harvested - fine.harvested, result.consumed - fine.consumed,
                (result.mcu.completion_time - fine.mcu.completion_time) * 1e3);

    // Harvesting-gap survey: the regime the quiescent engine is built for.
    sim::SimResult gap_macro, gap_fine;
    const double gap_macro_millis =
        wall_millis(fig7::gapped_spec(), gap_macro, true, /*repeats=*/5);
    const double gap_fine_millis =
        wall_millis(fig7::gapped_spec(), gap_fine, false, /*repeats=*/2);
    const double speedup = gap_fine_millis / gap_macro_millis;
    std::printf("harvesting-gap survey (0.5 s sine bursts / 10 s, 20 s horizon): "
                "%.1f ms vs %.1f ms fine (%.1fx, %.1f%% of steps analytic); "
                "deltas: harvested %+.3g J, consumed %+.3g J\n",
                gap_macro_millis, gap_fine_millis, speedup,
                100.0 * span_coverage(gap_macro),
                gap_macro.harvested - gap_fine.harvested,
                gap_macro.consumed - gap_fine.consumed);
    // An uncontended Release build measures ~25x here (BENCH_7.json: the
    // trace's quiet-segment index claims the sub-conduction arcs inside
    // each sine burst on top of PR 4's sleep/off/dead gap spans, which
    // measured 8-9x). The hard gate sits at 15x: scheduler noise on a
    // shared CI runner has headroom while a regression to the PR 4 class
    // still fails loudly.
    check(speedup >= 15.0,
          "harvesting-gap survey macro speedup is in the >=25x class "
          "(hard gate at 15x for contended-runner headroom)");
    check(gap_macro.mcu.saves_completed == gap_fine.mcu.saves_completed &&
              gap_macro.mcu.restores == gap_fine.mcu.restores &&
              gap_macro.mcu.brownouts == gap_fine.mcu.brownouts &&
              gap_macro.transitions.size() == gap_fine.transitions.size(),
          "gap-survey event sequence matches the fine path");

    // Charge-ramp survey: DC bursts make every charging ramp one analytic
    // span (circuit::ChargeSolution), the regime the charge-span planner
    // exists for.
    sim::SimResult ramp_macro, ramp_fine;
    const double ramp_macro_millis =
        wall_millis(fig7::charge_ramp_spec(), ramp_macro, true, /*repeats=*/5);
    const double ramp_fine_millis =
        wall_millis(fig7::charge_ramp_spec(), ramp_fine, false, /*repeats=*/2);
    const double ramp_speedup = ramp_fine_millis / ramp_macro_millis;
    std::printf("charge-ramp survey (0.5 s DC bursts / 10 s, 20 s horizon): "
                "%.1f ms vs %.1f ms fine (%.1fx, %.1f%% of steps analytic); "
                "deltas: harvested %+.3g J, consumed %+.3g J\n\n",
                ramp_macro_millis, ramp_fine_millis, ramp_speedup,
                100.0 * span_coverage(ramp_macro),
                ramp_macro.harvested - ramp_fine.harvested,
                ramp_macro.consumed - ramp_fine.consumed);
    check(ramp_speedup >= 25.0,
          "charge-ramp survey macro speedup is in the >=40x class "
          "(hard gate at 25x for contended-runner headroom)");
    check(ramp_macro.mcu.boots == ramp_fine.mcu.boots &&
              ramp_macro.mcu.saves_completed == ramp_fine.mcu.saves_completed &&
              ramp_macro.mcu.brownouts == ramp_fine.mcu.brownouts &&
              ramp_macro.transitions.size() == ramp_fine.transitions.size(),
          "charge-ramp survey event sequence matches the fine path");
  }

  const auto* vcc = result.probes.find("vcc");
  if (vcc != nullptr) {
    sim::PlotOptions options;
    options.title = "V_CC while executing the FFT across the intermittent supply";
    options.y_label = "V_CC (V)";
    options.width = 110;
    options.height = 18;
    sim::plot_with_markers(std::cout, "vcc", *vcc, {{v_h, "VH"}, {v_r, "VR"}}, options);
  }

  std::printf("\nEvent timeline (supply period %.0f ms):\n", 1000.0 / supply_hz);
  sim::Table timeline({"t (ms)", "supply cycle", "event", "V_CC (V)"});
  for (const auto& change : result.transitions) {
    const char* event = nullptr;
    if (change.to == mcu::McuState::saving) event = "V_H crossed: snapshot";
    if (change.from == mcu::McuState::restoring) event = "snapshot restored, FFT continues";
    if (change.to == mcu::McuState::off) event = "supply lost (below V_min)";
    if (change.to == mcu::McuState::done) event = "FFT COMPLETE";
    if (event == nullptr) continue;
    timeline.add_row({sim::Table::num(change.time * 1e3, 1),
                      std::to_string(1 + static_cast<int>(change.time * supply_hz)),
                      event, sim::Table::num(change.vcc, 2)});
  }
  timeline.print(std::cout);

  sim::Table summary({"metric", "value"});
  summary.add_row({"V_H (Eq 4)", sim::Table::num(v_h, 2) + " V"});
  summary.add_row({"V_R", sim::Table::num(v_r, 2) + " V"});
  summary.add_row({"snapshots", std::to_string(result.mcu.saves_completed)});
  summary.add_row({"restores", std::to_string(result.mcu.restores)});
  summary.add_row({"supply outages", std::to_string(result.mcu.brownouts)});
  summary.add_row({"completion time", sim::Table::num(result.mcu.completion_time * 1e3, 1) + " ms"});
  summary.add_row({"digest matches uninterrupted run",
                   system.program().result_digest() == golden_digest_value ? "yes" : "NO"});
  std::printf("\n");
  summary.print(std::cout);

  const int completion_cycle =
      1 + static_cast<int>(result.mcu.completion_time * supply_hz);

  std::printf("\nShape checks vs the paper:\n");
  check(result.mcu.completed, "the FFT completes despite the intermittent supply");
  check(system.program().result_digest() == golden_digest_value,
        "result is bit-exact vs an uninterrupted run");
  check(result.mcu.saves_completed >= 1 && result.mcu.restores >= 1,
        "at least one hibernate/restore round trip (V_H then V_R crossings)");
  check(result.mcu.saves_completed <= result.mcu.brownouts + 1,
        "a single snapshot per supply failure (no redundant snapshots)");
  std::printf("  [INFO] FFT completes during supply cycle %d (paper: 3rd cycle)\n",
              completion_cycle);
  check(completion_cycle >= 2 && completion_cycle <= 4,
        "completion lands a few supply cycles in, as in Fig 7");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
