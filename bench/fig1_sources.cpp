// Fig 1 — Example energy harvesting source outputs.
//
//   (a) the voltage output of a micro wind turbine during a single gust
//       (AC, ~+/-5 V peak, electrical frequency of a few Hz, ~8 s span);
//   (b) the available power (reported as harvested current, uA) from an
//       indoor photovoltaic cell over a period of two days (~290 uA at
//       night, ~420-430 uA during the working day).
//
// Prints both series as terminal plots plus the summary rows, and checks
// the paper's qualitative shape claims.
#include <cstdio>
#include <iostream>

#include "common_flags.h"
#include "edc/sim/ascii_plot.h"
#include "edc/sim/table.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/statistics.h"
#include "edc/trace/voltage_sources.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Fig 1(a): micro wind turbine, single gust ===\n\n");
  const auto turbine = trace::WindTurbineSource::single_gust();
  const auto gust = trace::Waveform::sample(
      [&](Seconds t) { return turbine.open_circuit_voltage(t); }, 0.0, 8.0, 16001);

  sim::PlotOptions gust_options;
  gust_options.title = "Micro wind turbine output voltage during a single gust";
  gust_options.y_label = "open-circuit voltage (V)";
  gust_options.width = 110;
  gust_options.height = 18;
  sim::plot(std::cout, "v(t)", gust, gust_options);

  const auto gust_stats = trace::summarize(gust);
  // Electrical frequency around the envelope peak.
  const auto mid = trace::Waveform::sample(
      [&](Seconds t) { return turbine.open_circuit_voltage(t); }, 1.5, 3.5, 8001);
  const Hertz f_mid = trace::dominant_frequency(mid);

  sim::Table turbine_table({"metric", "value"});
  turbine_table.add_row({"peak voltage", sim::Table::num(gust_stats.max, 2) + " V"});
  turbine_table.add_row({"trough voltage", sim::Table::num(gust_stats.min, 2) + " V"});
  turbine_table.add_row({"frequency at gust peak", sim::Table::num(f_mid, 1) + " Hz"});
  turbine_table.add_row({"gust span", "8 s"});
  turbine_table.print(std::cout);

  std::printf("\nShape checks vs the paper:\n");
  check(gust_stats.max > 4.0 && gust_stats.max < 6.0, "AC peak near +5 V");
  check(gust_stats.min < -4.0 && gust_stats.min > -6.0, "AC trough near -5 V");
  check(f_mid > 2.0 && f_mid < 10.0, "electrical frequency of a few Hz");
  check(std::abs(trace::summarize(gust).mean) < 0.3, "zero-mean AC output");

  std::printf("\n=== Fig 1(b): indoor photovoltaic cell over two days ===\n\n");
  trace::IndoorPhotovoltaicSource pv({}, /*seed=*/1, /*days=*/2);
  const auto pv_current = trace::Waveform::sample(
      [&](Seconds t) { return pv.current_ua(t); }, 0.0, 2 * 86400.0, 5761);

  sim::PlotOptions pv_options;
  pv_options.title = "Indoor PV harvested current over two days";
  pv_options.y_label = "harvested current (uA)";
  pv_options.x_label = "time (s since midnight)";
  pv_options.width = 110;
  pv_options.height = 16;
  sim::plot(std::cout, "I(t)", pv_current, pv_options);

  const auto pv_stats = trace::summarize(pv_current);
  const double night = pv.current_ua(3.0 * 3600);
  const double midday1 = pv.current_ua(13.0 * 3600);
  const double midday2 = pv.current_ua(86400 + 13.0 * 3600);

  sim::Table pv_table({"metric", "value"});
  pv_table.add_row({"night floor", sim::Table::num(night, 0) + " uA"});
  pv_table.add_row({"mid-day, day 1", sim::Table::num(midday1, 0) + " uA"});
  pv_table.add_row({"mid-day, day 2", sim::Table::num(midday2, 0) + " uA"});
  pv_table.add_row({"min / max", sim::Table::num(pv_stats.min, 0) + " / " +
                                     sim::Table::num(pv_stats.max, 0) + " uA"});
  pv_table.print(std::cout);

  std::printf("\nShape checks vs the paper:\n");
  check(night > 270.0 && night < 310.0, "night floor near 290 uA");
  check(midday1 > 390.0 && midday1 < 460.0, "day plateau near 420-430 uA");
  check(pv_stats.min > 260.0 && pv_stats.max < 460.0, "range within 280-430 uA axis");
  check(std::abs(midday1 - midday2) < 50.0, "similar consecutive days (diurnal cycle)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
