// §II.A energy-neutral operation (Kansal et al. [3]): a WSN node with a
// battery buffer adapts its duty cycle so Eq 1 holds over each day while
// Eq 2 (battery never empty) is preserved.
//
// Runs the controller on the Fig 1(b) indoor-PV source for four days and
// prints the per-day ledger: harvested vs consumed energy, duty range,
// battery excursion, and the Eq 1 residual.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common_flags.h"
#include "edc/neutral/energy_neutral.h"
#include "edc/sim/ascii_plot.h"
#include "edc/sim/table.h"
#include "edc/trace/power_sources.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Energy-neutral WSN on the indoor-PV source (4 days) ===\n\n");

  const int days = 4;
  trace::IndoorPhotovoltaicSource pv({}, /*seed=*/1, days);
  neutral::EnergyNeutralController::Config config;
  config.p_active = 2.4e-3;
  config.p_sleep = 20e-6;
  config.battery_capacity = 20.0;
  neutral::EnergyNeutralController controller(config);
  const auto result = controller.run(pv, days * 86400.0);

  // Battery state-of-charge over time.
  std::vector<double> soc;
  soc.reserve(result.slots.size());
  for (const auto& slot : result.slots) soc.push_back(slot.soc * 100.0);
  trace::Waveform soc_wave(0.0, config.slot, std::move(soc));
  sim::PlotOptions options;
  options.title = "Battery state of charge (%) across four diurnal cycles";
  options.y_label = "SoC (%)";
  options.x_label = "time (s)";
  options.width = 110;
  options.height = 12;
  sim::plot(std::cout, "SoC", soc_wave, options);

  sim::Table table({"day", "harvested (J)", "consumed (J)", "duty min..max",
                    "SoC min..max (%)", "depleted slots"});
  const auto slots_per_day = static_cast<std::size_t>(86400.0 / config.slot);
  for (int day = 0; day < days; ++day) {
    double harvested = 0.0, consumed = 0.0;
    double duty_lo = 1.0, duty_hi = 0.0, soc_lo = 1.0, soc_hi = 0.0;
    for (std::size_t i = day * slots_per_day;
         i < (day + 1) * slots_per_day && i < result.slots.size(); ++i) {
      const auto& slot = result.slots[i];
      harvested += slot.harvested * config.slot;
      consumed += slot.consumed * config.slot;
      duty_lo = std::min(duty_lo, slot.duty);
      duty_hi = std::max(duty_hi, slot.duty);
      soc_lo = std::min(soc_lo, slot.soc);
      soc_hi = std::max(soc_hi, slot.soc);
    }
    table.add_row({std::to_string(day + 1), sim::Table::num(harvested, 1),
                   sim::Table::num(consumed, 1),
                   sim::Table::num(duty_lo, 2) + " .. " + sim::Table::num(duty_hi, 2),
                   sim::Table::num(soc_lo * 100, 1) + " .. " +
                       sim::Table::num(soc_hi * 100, 1),
                   "0"});
  }
  table.print(std::cout);

  std::printf("\nTotals: harvested %.1f J, consumed %.1f J, battery %.1f -> %.1f J\n",
              result.harvested_total, result.consumed_total, result.battery_initial,
              result.battery_final);
  std::printf("Eq 1 relative residual over whole periods: %.4f\n",
              result.eq1_relative_residual());

  std::printf("\nShape checks vs the paper:\n");
  check(result.depletion_events == 0, "Eq 2 held: the battery never emptied");
  check(result.eq1_relative_residual() < 0.02,
        "Eq 1 held: consumed tracks harvested over the period T (1 day)");
  check(result.consumed_total > 0.85 * result.harvested_total,
        "the node actually uses the harvested energy (not over-throttled)");
  // Duty follows the diurnal cycle on the adapted days.
  double day_duty = 0.0, night_duty = 0.0;
  int dn = 0, nn = 0;
  for (const auto& slot : result.slots) {
    if (slot.t < 2 * 86400.0) continue;
    const double hour = std::fmod(slot.t, 86400.0) / 3600.0;
    if (hour > 9 && hour < 18) {
      day_duty += slot.duty;
      ++dn;
    } else if (hour < 6 || hour > 21) {
      night_duty += slot.duty;
      ++nn;
    }
  }
  check(dn > 0 && nn > 0 && day_duty / dn > night_duty / nn,
        "duty cycle adapts to the diurnal harvest (higher by day)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
