// Shared Fig 8 scenario specs for the bench programs.
//
// fig8_hibernus_pn --macro gates the wind-survey speedup on the same
// scenario BM_MacroPair/Fig8WindSurvey_* records in BENCH_7.json
// (bench/perf_micro.cpp); one definition keeps the gate and the recorded
// trajectory comparable by construction (the fig7_scenarios.h pattern).
#pragma once

#include <memory>

#include "edc/neutral/dfs_governor.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/trace/voltage_sources.h"
#include "edc/workloads/crc32.h"

namespace fig8 {

/// The Fig 8 design point: the micro wind turbine (5 V peak EMF, 6 Hz
/// electrical at the gust peak) into a 47 uF node with a 10 kOhm board
/// bleed, hibernus running a CRC over 512 KiB (the figure's workload is
/// big enough to span the whole gust, so it rides the AC troughs instead
/// of finishing early).
inline edc::spec::SystemSpec base_spec(edc::Seconds horizon,
                                       std::uint64_t seed) {
  edc::spec::SystemSpec s;
  edc::trace::WindTurbineSource::Params wind;
  wind.peak_voltage = 5.0;
  wind.peak_frequency = 6.0;
  s.source = edc::spec::WindSource{wind, seed, horizon};
  s.storage.capacitance = 47e-6;
  s.storage.bleed = 10000.0;
  s.workload.factory = [] {
    return std::make_unique<edc::workloads::Crc32Program>(512 * 1024, 9);
  };
  s.sim.t_end = horizon;
  s.sim.stop_on_completion = false;  // observe the whole wind schedule
  return s;
}

/// The single-gust figure window (paper Fig 8): 6 s, probed, with the DFS
/// governor of the hibernus-PN configuration attached by the bench.
inline edc::spec::SystemSpec figure_spec() {
  edc::spec::SystemSpec s = base_spec(6.0, /*seed=*/3);
  s.sim.probe_interval = 1e-3;
  return s;
}

/// The governed figure pair BM_MacroPair/Fig8Wind_* records: figure_spec
/// plus the hibernus-PN governor (sleep spans capped at its 2 ms period).
inline edc::spec::SystemSpec governed_figure_spec() {
  edc::spec::SystemSpec s = figure_spec();
  edc::neutral::McuDfsGovernor::Config governor;
  governor.v_ref = 2.9;
  governor.band = 0.2;
  governor.period = 2e-3;
  s.governor = governor;
  return s;
}

/// The wind survey: the same system riding the turbine's native multi-gust
/// schedule (~10 s gust spacing, seeded) for 30 s, unprobed, ungoverned —
/// the Fig 8-class regime the stochastic quiet-segment index exists for.
/// Inter-gust gaps, stalled (below cut-in) stretches and sub-conduction
/// arcs all become analytic spans; the remaining fine steps are the
/// genuinely conducting arcs and the workload's own execution.
inline edc::spec::SystemSpec wind_survey_spec() {
  return base_spec(30.0, /*seed=*/3);
}

/// The batched-sweep survey: the Fig 8 design point swept over 16 node
/// capacitances across one seeded gust (1 s), all fine-stepped. The
/// WindSource *spec* is serializable, so the grid is one batch group even
/// though the workload factory makes the points non-cacheable — the
/// turbine's EMF (gust envelope x electrical AC) is evaluated once per
/// substep and broadcast across the lanes. fig8_hibernus_pn --batch gates
/// the scalar/batch speedup here; BM_BatchPair/Fig8Wind_* records the
/// same pair in BENCH_7.json.
inline edc::sweep::Grid batch_survey_grid() {
  edc::spec::SystemSpec s = base_spec(1.0, /*seed=*/3);
  edc::sweep::Grid grid(std::move(s));
  grid.capacitance_axis({4.7e-6, 6.8e-6, 10e-6, 15e-6, 22e-6, 33e-6, 47e-6,
                         68e-6, 100e-6, 150e-6, 220e-6, 330e-6, 470e-6,
                         680e-6, 1000e-6, 1500e-6});
  return grid;
}

}  // namespace fig8
