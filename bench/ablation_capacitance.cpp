// Eq 4 ablation — storage that differs from the design-time characterisation.
//
// hibernus picks V_H for a characterised capacitance (Eq 4). The paper's
// §III spells out what happens when the deployed storage differs:
//   * less storage than characterised  -> not enough time to save state:
//     torn snapshots, no forward progress;
//   * more storage than characterised  -> still correct, but V_H is higher
//     than necessary, so it hibernates earlier and wastes active time;
//   * hibernus++ measures the platform online and works in every column, at
//     the cost of a calibration overhead.
//
// The (deployed C x policy) grid runs on the parallel sweep engine; rows
// come back in row-major grid order, exactly as the old nested loops
// produced them.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common_flags.h"
#include "edc/checkpoint/hibernus_pp.h"
#include "edc/checkpoint/interrupt_policy.h"
#include "edc/checkpoint/thresholds.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/workloads/fft.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct Outcome {
  bool completed = false;
  Seconds t_done = 0.0;
  std::uint64_t saves = 0;
  std::uint64_t torn = 0;
  Volts v_h = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Eq 4 ablation: deployed capacitance vs characterisation ===\n\n");

  const Farads characterised = 22e-6;  // hibernus was designed for this
  const std::vector<Farads> deployed = {4.7e-6, 10e-6, 22e-6, 47e-6, 100e-6};

  std::printf("hibernus characterised for C = %s; hibernus++ self-calibrates.\n\n",
              sim::Table::eng(characterised, "F", 1).c_str());

  spec::SystemSpec base;
  base.source = spec::SquareSource{3.3, 10.0, 0.3, 0.0, 50.0};
  base.storage.bleed = 10000.0;
  base.workload.factory = [] { return std::make_unique<workloads::FftProgram>(10, 7); };
  base.sim.t_end = 20.0;

  checkpoint::InterruptPolicy::Config characterised_config;
  characterised_config.capacitance = characterised;  // frozen at design time
  characterised_config.restore_headroom = 0.3;

  sweep::Grid grid(std::move(base));
  grid.capacitance_axis(deployed)
      .axis("policy",
            {{"hibernus",
              [characterised_config](spec::SystemSpec& s) {
                s.policy = spec::Hibernus{characterised_config};
              }},
             {"hibernus++",
              [](spec::SystemSpec& s) { s.policy = spec::HibernusPlusPlus{}; }}});

  const sweep::Runner runner;
  const auto outcomes = runner.map<Outcome>(
      grid, [](const sweep::Point&, core::EnergyDrivenSystem& system,
               const sim::SimResult& result) {
        Outcome outcome;
        outcome.completed = result.mcu.completed;
        outcome.t_done = result.mcu.completion_time;
        outcome.saves = result.mcu.saves_completed;
        outcome.torn = system.mcu().nvm().torn_writes();
        outcome.v_h = dynamic_cast<const checkpoint::InterruptPolicy&>(system.policy())
                          .hibernate_threshold();
        return outcome;
      });

  // Row-major order: capacitance outer, policy inner.
  const auto at = [&](std::size_t c_index, std::size_t p_index) -> const Outcome& {
    return outcomes[c_index * 2 + p_index];
  };

  sim::Table table({"deployed C", "policy", "V_H used", "done", "t_done (s)",
                    "saves", "torn saves"});
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    const Outcome& hib = at(i, 0);
    const Outcome& hpp = at(i, 1);
    table.add_row({sim::Table::eng(deployed[i], "F", 1), "hibernus",
                   sim::Table::num(hib.v_h, 2) + " V", hib.completed ? "yes" : "NO",
                   hib.completed ? sim::Table::num(hib.t_done, 2) : "-",
                   std::to_string(hib.saves), std::to_string(hib.torn)});
    table.add_row({"", "hibernus++", sim::Table::num(hpp.v_h, 2) + " V",
                   hpp.completed ? "yes" : "NO",
                   hpp.completed ? sim::Table::num(hpp.t_done, 2) : "-",
                   std::to_string(hpp.saves), std::to_string(hpp.torn)});
  }
  table.print(std::cout);

  // Select the shape-check cells by capacitance value, so editing the
  // `deployed` list cannot silently re-aim a check at the wrong cell.
  const auto c_index = [&](Farads c) {
    const auto it = std::find(deployed.begin(), deployed.end(), c);
    if (it == deployed.end()) {
      std::fprintf(stderr, "capacitance %g not in the deployed sweep\n", c);
      std::abort();
    }
    return static_cast<std::size_t>(it - deployed.begin());
  };
  const Outcome& hib_small = at(c_index(4.7e-6), 0);
  const Outcome& hpp_small = at(c_index(4.7e-6), 1);
  const Outcome& hib_nominal = at(c_index(characterised), 0);
  const Outcome& hib_large = at(c_index(100e-6), 0);
  const Outcome& hpp_large = at(c_index(100e-6), 1);

  std::printf("\nShape checks vs the paper (Section III):\n");
  check(!hib_small.completed && hib_small.torn > 0,
        "less storage than characterised: hibernus cannot save in time (torn)");
  check(hpp_small.completed,
        "hibernus++ still operates correctly on the smaller storage");
  check(hib_nominal.completed, "hibernus completes on the storage it was characterised for");
  check(hib_large.completed,
        "more storage than characterised: hibernus still operates");
  check(hpp_large.completed && hpp_large.v_h < hib_large.v_h - 0.05,
        "hibernus++ lowers V_H on larger storage (more active time, more efficient)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
