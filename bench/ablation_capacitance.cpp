// Eq 4 ablation — storage that differs from the design-time characterisation.
//
// hibernus picks V_H for a characterised capacitance (Eq 4). The paper's
// §III spells out what happens when the deployed storage differs:
//   * less storage than characterised  -> not enough time to save state:
//     torn snapshots, no forward progress;
//   * more storage than characterised  -> still correct, but V_H is higher
//     than necessary, so it hibernates earlier and wastes active time;
//   * hibernus++ measures the platform online and works in every column, at
//     the cost of a calibration overhead.
#include <cstdio>
#include <iostream>
#include <vector>

#include "edc/checkpoint/hibernus_pp.h"
#include "edc/checkpoint/interrupt_policy.h"
#include "edc/checkpoint/thresholds.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/workloads/fft.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct Outcome {
  bool completed = false;
  Seconds t_done = 0.0;
  std::uint64_t saves = 0;
  std::uint64_t torn = 0;
  Volts v_h = 0.0;
};

Outcome run(bool plus_plus, Farads real_c, Farads characterised_c) {
  core::SystemBuilder builder;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.3, 0.0, 50.0))
      .capacitance(real_c)
      .bleed(10000.0)
      .program(std::make_unique<workloads::FftProgram>(10, 7));
  if (plus_plus) {
    builder.policy_hibernus_pp();
  } else {
    checkpoint::InterruptPolicy::Config config;
    config.capacitance = characterised_c;
    config.restore_headroom = 0.3;
    builder.policy_hibernus(config);
  }
  auto system = builder.build();
  const auto result = system.run(20.0);
  Outcome outcome;
  outcome.completed = result.mcu.completed;
  outcome.t_done = result.mcu.completion_time;
  outcome.saves = result.mcu.saves_completed;
  outcome.torn = system.mcu().nvm().torn_writes();
  outcome.v_h = dynamic_cast<const checkpoint::InterruptPolicy&>(system.policy())
                    .hibernate_threshold();
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Eq 4 ablation: deployed capacitance vs characterisation ===\n\n");

  const Farads characterised = 22e-6;  // hibernus was designed for this
  const std::vector<Farads> deployed = {4.7e-6, 10e-6, 22e-6, 47e-6, 100e-6};

  std::printf("hibernus characterised for C = %s; hibernus++ self-calibrates.\n\n",
              sim::Table::eng(characterised, "F", 1).c_str());

  sim::Table table({"deployed C", "policy", "V_H used", "done", "t_done (s)",
                    "saves", "torn saves"});
  Outcome hib_small, hib_nominal, hib_large, hpp_small, hpp_large;
  for (Farads c : deployed) {
    const auto hib = run(false, c, characterised);
    const auto hpp = run(true, c, 0.0);
    table.add_row({sim::Table::eng(c, "F", 1), "hibernus",
                   sim::Table::num(hib.v_h, 2) + " V", hib.completed ? "yes" : "NO",
                   hib.completed ? sim::Table::num(hib.t_done, 2) : "-",
                   std::to_string(hib.saves), std::to_string(hib.torn)});
    table.add_row({"", "hibernus++", sim::Table::num(hpp.v_h, 2) + " V",
                   hpp.completed ? "yes" : "NO",
                   hpp.completed ? sim::Table::num(hpp.t_done, 2) : "-",
                   std::to_string(hpp.saves), std::to_string(hpp.torn)});
    if (c == 4.7e-6) {
      hib_small = hib;
      hpp_small = hpp;
    }
    if (c == characterised) hib_nominal = hib;
    if (c == 100e-6) {
      hib_large = hib;
      hpp_large = hpp;
    }
  }
  table.print(std::cout);

  std::printf("\nShape checks vs the paper (Section III):\n");
  check(!hib_small.completed && hib_small.torn > 0,
        "less storage than characterised: hibernus cannot save in time (torn)");
  check(hpp_small.completed,
        "hibernus++ still operates correctly on the smaller storage");
  check(hib_nominal.completed, "hibernus completes on the storage it was characterised for");
  check(hib_large.completed,
        "more storage than characterised: hibernus still operates");
  check(hpp_large.completed && hpp_large.v_h < hib_large.v_h - 0.05,
        "hibernus++ lowers V_H on larger storage (more active time, more efficient)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
