// Micro-benchmarks (google-benchmark): simulator and kernel throughput.
//
// Not a paper figure — this tracks the harness' own performance so the
// repository's experiments stay cheap to run.
#include <benchmark/benchmark.h>

#include "edc/core/system.h"
#include "edc/trace/voltage_sources.h"
#include "edc/workloads/program.h"

using namespace edc;

namespace {

void BM_SupplyNodeStep(benchmark::State& state) {
  trace::SineVoltageSource source(3.3, 5.0, 0.0, 50.0);
  circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  circuit::SupplyNode node(22e-6, 0.0);
  circuit::ResistiveLoad load(5000.0);
  Seconds t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.step(t, 1e-5, driver, load, 4));
    t += 1e-5;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SupplyNodeStep);

void BM_ProgramTick(benchmark::State& state, const char* kind) {
  auto program = workloads::make_program(kind, 1);
  for (auto _ : state) {
    if (program->done()) program->reset();
    program->run_tick();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_ProgramTick, fft, "fft");
BENCHMARK_CAPTURE(BM_ProgramTick, crc, "crc");
BENCHMARK_CAPTURE(BM_ProgramTick, aes, "aes");
BENCHMARK_CAPTURE(BM_ProgramTick, sort, "sort");
BENCHMARK_CAPTURE(BM_ProgramTick, raytrace, "raytrace");

void BM_SnapshotRoundTrip(benchmark::State& state) {
  auto program = workloads::make_program("fft", 1);
  for (int i = 0; i < 1000; ++i) program->run_tick();
  for (auto _ : state) {
    auto snapshot = program->save_state();
    program->restore_state(snapshot);
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_SnapshotRoundTrip);

void BM_FullIntermittentSimulation(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemBuilder builder;
    auto system = builder
                      .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                          3.3, 10.0, 0.3, 0.0, 50.0))
                      .capacitance(22e-6)
                      .bleed(10000.0)
                      .workload("fft-small", 3)
                      .policy_hibernus()
                      .build();
    benchmark::DoNotOptimize(system.run(0.5));
  }
}
BENCHMARK(BM_FullIntermittentSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
