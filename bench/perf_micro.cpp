// Micro-benchmarks (google-benchmark): simulator and kernel throughput.
//
// Not a paper figure — this tracks the harness' own performance so the
// repository's experiments stay cheap to run. CI's perf job runs this with
// --benchmark_format=json and archives the output as BENCH_<pr>.json, so
// the fine-vs-macro pairs below are the repo's recorded perf trajectory
// for the quiescent engine (sim/quiescent_engine.h).
#include <benchmark/benchmark.h>

#include "edc/core/system.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/voltage_sources.h"
#include "edc/workloads/program.h"
#include "fig7_scenarios.h"
#include "fig8_scenarios.h"

using namespace edc;

namespace {

void BM_SupplyNodeStep(benchmark::State& state) {
  trace::SineVoltageSource source(3.3, 5.0, 0.0, 50.0);
  circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  circuit::SupplyNode node(22e-6, 0.0);
  circuit::ResistiveLoad load(5000.0);
  Seconds t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.step(t, 1e-5, driver, load, 4));
    t += 1e-5;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SupplyNodeStep);

void BM_ProgramTick(benchmark::State& state, const char* kind) {
  auto program = workloads::make_program(kind, 1);
  for (auto _ : state) {
    if (program->done()) program->reset();
    program->run_tick();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_ProgramTick, fft, "fft");
BENCHMARK_CAPTURE(BM_ProgramTick, crc, "crc");
BENCHMARK_CAPTURE(BM_ProgramTick, aes, "aes");
BENCHMARK_CAPTURE(BM_ProgramTick, sort, "sort");
BENCHMARK_CAPTURE(BM_ProgramTick, raytrace, "raytrace");

void BM_SnapshotRoundTrip(benchmark::State& state) {
  auto program = workloads::make_program("fft", 1);
  for (int i = 0; i < 1000; ++i) program->run_tick();
  for (auto _ : state) {
    auto snapshot = program->save_state();
    program->restore_state(snapshot);
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_SnapshotRoundTrip);

void BM_FullIntermittentSimulation(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemBuilder builder;
    auto system = builder
                      .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                          3.3, 10.0, 0.3, 0.0, 50.0))
                      .capacitance(22e-6)
                      .bleed(10000.0)
                      .workload("fft-small", 3)
                      .policy_hibernus()
                      .build();
    benchmark::DoNotOptimize(system.run(0.5));
  }
}
BENCHMARK(BM_FullIntermittentSimulation)->Unit(benchmark::kMillisecond);

// ---- fine vs macro stepping on off-dominated scenarios ---------------------
// Each pair runs the identical spec with macro_stepping toggled; the ratio
// is the macro stepper's end-to-end speedup on that scenario class.

void BM_MacroPair(benchmark::State& state, spec::SystemSpec s, bool macro) {
  s.sim.macro_stepping = macro;
  for (auto _ : state) {
    auto system = spec::instantiate(s);
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

/// A 1%-duty square supply: one 80 ms burst every 8 s, then a bled
/// brown-out tail decaying to a dead node — the Fig 7 decay-to-zero
/// interval stretched to survey-realistic duty cycles (under 1% active
/// time).
spec::SystemSpec brownout_tail_spec() {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 0.125, 0.01, 0.0, 50.0};
  s.storage.capacitance = 47e-6;
  s.storage.bleed = 10000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = 3;
  s.sim.t_end = 16.0;
  s.sim.stop_on_completion = false;
  return s;
}

/// A WISPCam-style RFID reader field: 0.2 s interrogations every 5 s.
spec::SystemSpec rf_idle_spec() {
  spec::SystemSpec s;
  trace::RfFieldSource::Params rf;
  rf.field_power = 2e-3;
  rf.burst_length = 0.2;
  rf.burst_period = 5.0;
  s.source = spec::RfFieldPower{rf, 11, 10.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 5000.0;
  s.workload.kind = "crc";
  s.workload.seed = 3;
  s.sim.t_end = 10.0;
  s.sim.stop_on_completion = false;
  return s;
}

/// The Fig 7 configuration (6 Hz half-wave sine, hibernus, FFT): off spans
/// are only part of each supply cycle, so this bounds the speedup on
/// moderately intermittent scenarios.
spec::SystemSpec fig7_like_spec() {
  spec::SystemSpec s;
  s.source = spec::SineSource{3.3, 6.0};
  s.storage.capacitance = 47e-6;
  s.storage.bleed = 3000.0;
  s.workload.kind = "fft";
  s.workload.seed = 7;
  checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;
  config.restore_headroom = 0.35;
  s.policy = spec::Hibernus{config};
  s.sim.t_end = 2.0;
  s.sim.stop_on_completion = false;  // ride the supply for the full window
  return s;
}

BENCHMARK_CAPTURE(BM_MacroPair, BrownoutTail_fine, brownout_tail_spec(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, BrownoutTail_macro, brownout_tail_spec(), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, RfIdle_fine, rf_idle_spec(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, RfIdle_macro, rf_idle_spec(), true)
    ->Unit(benchmark::kMillisecond);
/// The Fig 7 system across harvesting gaps (bench/fig7_scenarios.h — the
/// exact scenario the fig7_hibernus_fft --macro survey gates): the
/// quiescent engine's sleep/off/dead spans collapse the gaps to O(1), so
/// this pair tracks the sleep-speedup headline per push.
spec::SystemSpec fig7_gapped_spec() { return fig7::gapped_spec(); }

/// The Fig 8 governed figure (micro wind turbine, hibernus-PN with the DFS
/// governor — bench/fig8_scenarios.h): sleep spans here are capped by the
/// governor period, so this pair tracks the governed macro path.
spec::SystemSpec fig8_wind_spec() { return fig8::governed_figure_spec(); }

/// The Fig 8 wind survey (bench/fig8_scenarios.h — the exact scenario the
/// fig8_hibernus_pn --macro survey gates): the stochastic quiet-segment
/// index claims the turbine's inter-gust gaps, stalled stretches and
/// sub-conduction arcs, so this pair tracks the stochastic-source hints
/// per push.
spec::SystemSpec fig8_wind_survey_spec() { return fig8::wind_survey_spec(); }

/// The Fig 7 charge-ramp survey (bench/fig7_scenarios.h — the exact
/// scenario the fig7_hibernus_fft --macro survey gates): DC bursts make
/// every charging ramp one analytic ChargeSolution span, so this pair
/// tracks the charge-span planner per push.
spec::SystemSpec fig7_charge_ramp_spec() { return fig7::charge_ramp_spec(); }

BENCHMARK_CAPTURE(BM_MacroPair, Fig7Sine_fine, fig7_like_spec(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig7Sine_macro, fig7_like_spec(), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig7Gapped_fine, fig7_gapped_spec(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig7Gapped_macro, fig7_gapped_spec(), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig7ChargeRamp_fine, fig7_charge_ramp_spec(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig7ChargeRamp_macro, fig7_charge_ramp_spec(), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig8Wind_fine, fig8_wind_spec(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig8Wind_macro, fig8_wind_spec(), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig8WindSurvey_fine, fig8_wind_survey_spec(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroPair, Fig8WindSurvey_macro, fig8_wind_survey_spec(), true)
    ->Unit(benchmark::kMillisecond);

// ---- scalar vs batched sweep execution on survey grids ---------------------
// Each pair runs the identical grid through sweep::Runner with a single
// worker thread, toggling only RunnerOptions::batch; the scalar/batch
// real-time ratio is therefore the SoA batch kernel's end-to-end speedup
// on that grid class (no thread-pool parallelism in either leg). Rows are
// bit-identical by contract (tests/batch_diff_test.cpp), so the pairs
// measure pure execution strategy. tools/bench_gate --batch-gate asserts
// these ratios in CI.

void BM_BatchPair(benchmark::State& state, sweep::Grid grid, bool batch) {
  sweep::RunnerOptions options;
  options.threads = 1;
  options.batch = batch;
  const sweep::Runner runner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(grid));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(grid.size()));
}

/// The Eq 5 crossover grid (bench/eq5_crossover.cpp) at a shortened
/// horizon: 7 interrupt frequencies x {hibernus, quickrecall}. Each
/// frequency is its own square-wave source, so the batch groups are only
/// two lanes wide — this pair bounds the kernel's gain on group-poor
/// grids (shared source evaluation still halves, SIMD width is 2).
sweep::Grid eq5_grid() {
  edc::checkpoint::InterruptPolicy::Config config;
  config.margin = 3.0;
  config.restore_headroom = 0.15;
  spec::SystemSpec base;
  base.storage.capacitance = 10e-6;
  base.storage.bleed = 1000.0;
  base.workload.kind = "fft";
  base.workload.seed = 5;
  base.sim.t_end = 0.5;
  sweep::Grid grid(std::move(base));
  grid.numeric_axis(
          "f_interrupt (Hz)", {5, 10, 20, 40, 80, 160, 320},
          [](spec::SystemSpec& s, double f) {
            s.source = spec::SquareSource{3.3, f, 0.5, 0.0, 50.0};
          })
      .axis("policy", {{"hibernus",
                        [config](spec::SystemSpec& s) {
                          s.policy = spec::Hibernus{config};
                        }},
                       {"quickrecall", [config](spec::SystemSpec& s) {
                          s.policy = spec::QuickRecall{config};
                        }}});
  return grid;
}

BENCHMARK_CAPTURE(BM_BatchPair, Fig7Survey_scalar, fig7::batch_survey_grid(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchPair, Fig7Survey_batch, fig7::batch_survey_grid(), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchPair, Fig8Wind_scalar, fig8::batch_survey_grid(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchPair, Fig8Wind_batch, fig8::batch_survey_grid(), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchPair, Eq5Grid_scalar, eq5_grid(), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchPair, Eq5Grid_batch, eq5_grid(), true)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
