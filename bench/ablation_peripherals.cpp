// §IV extension — the peripheral-state problem.
//
// "Work to date has primarily focused on computation, and not the plethora
// of peripherals that are typically present in embedded systems." A radio,
// ADC or sensor front-end holds volatile configuration that a power cycle
// destroys. A transient system must either
//   (a) include the peripheral file in every snapshot — a larger image,
//       hence a higher Eq 4 V_H and more energy per save; or
//   (b) re-initialise the peripherals after every outage — a fixed cycle
//       cost per restore (SPI register writes, PLL lock, calibration).
// The better choice depends on the outage rate: frequent outages amortise
// the per-save cost of (a); rare outages favour the cheap snapshots of (b).
// This bench sweeps (outage rate x strategy) on the sweep engine and
// reports the crossover.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common_flags.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/workloads/sensing.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct Outcome {
  bool completed = false;
  Seconds t_done = 0.0;
  Joules energy = 0.0;
  std::uint64_t reinits = 0;
};

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Peripheral state across outages: snapshot vs re-initialise ===\n\n");
  std::printf("workload: 512 sense rounds (ADC + radio); peripheral file 512 B;\n");
  std::printf("re-initialisation 60 kcycles (~7.5 ms at 8 MHz).\n\n");

  spec::SystemSpec base;
  base.mcu.peripheral_file_bytes = 512;       // radio register map + calibration
  base.mcu.peripheral_reinit_cycles = 60000;  // ~7.5 ms of SPI reconfiguration
  base.storage.capacitance = 22e-6;
  base.storage.bleed = 3000.0;
  base.workload.factory = [] {
    return std::make_unique<workloads::SensingProgram>(512, 5);
  };
  checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;  // covers the bleed share during the save (Eq 4)
  config.restore_headroom = 0.3;
  base.policy = spec::Hibernus{config};
  base.sim.t_end = 60.0;

  const std::vector<Hertz> outage_rates = {2.0, 5.0, 10.0, 20.0};
  sweep::Grid grid(std::move(base));
  grid.numeric_axis(
          "outage rate (Hz)", outage_rates,
          [](spec::SystemSpec& s, double f) {
            s.source = spec::SquareSource{3.3, f, 0.4, 0.0, 50.0};
          },
          [](double f) { return sim::Table::num(f, 0); })
      .axis("strategy",
            {{"snapshot peripherals",
              [](spec::SystemSpec& s) { s.snapshot_peripherals = true; }},
             {"re-init after outage",
              [](spec::SystemSpec& s) { s.snapshot_peripherals = false; }}});

  const sweep::Runner runner;
  const auto outcomes = runner.map<Outcome>(
      grid, [](const sweep::Point&, core::EnergyDrivenSystem&,
               const sim::SimResult& result) {
        Outcome outcome;
        outcome.completed = result.mcu.completed;
        outcome.t_done = result.mcu.completion_time;
        outcome.energy = result.mcu.energy_total();
        outcome.reinits = result.mcu.peripheral_reinits;
        return outcome;
      });

  // Row-major order: outage rate outer, strategy inner (snapshot, re-init).
  const auto at = [&](std::size_t f_index, std::size_t s_index) -> const Outcome& {
    return outcomes[f_index * 2 + s_index];
  };

  sim::Table table({"outage rate (Hz)", "strategy", "done", "t_done (s)",
                    "energy (uJ)", "peripheral re-inits"});
  for (std::size_t i = 0; i < outage_rates.size(); ++i) {
    const Outcome& with = at(i, 0);
    const Outcome& without = at(i, 1);
    table.add_row({sim::Table::num(outage_rates[i], 0), "snapshot peripherals",
                   with.completed ? "yes" : "NO",
                   with.completed ? sim::Table::num(with.t_done, 2) : "-",
                   sim::Table::num(with.energy * 1e6, 0),
                   std::to_string(with.reinits)});
    table.add_row({"", "re-init after outage", without.completed ? "yes" : "NO",
                   without.completed ? sim::Table::num(without.t_done, 2) : "-",
                   sim::Table::num(without.energy * 1e6, 0),
                   std::to_string(without.reinits)});
  }
  table.print(std::cout);

  const Outcome& slow_with = at(0, 0);     // 2 Hz outages
  const Outcome& slow_without = at(0, 1);
  const Outcome& fast_with = at(outage_rates.size() - 1, 0);  // 20 Hz outages
  const Outcome& fast_without = at(outage_rates.size() - 1, 1);

  std::printf("\nShape checks:\n");
  check(slow_with.completed && slow_without.completed && fast_with.completed &&
            fast_without.completed,
        "both strategies sustain computation at every outage rate");
  check(slow_without.reinits > 0 && slow_with.reinits <= 1,
        "only the re-init strategy pays peripheral reconfiguration per outage");
  check(fast_without.reinits > slow_without.reinits,
        "re-initialisations scale with the outage rate");
  // The economics: re-init cost per outage is fixed; snapshot cost per
  // outage grows with the peripheral file. At high outage rates the re-init
  // strategy's completion time degrades more.
  const double slow_penalty = slow_without.t_done / slow_with.t_done;
  const double fast_penalty = fast_without.t_done / fast_with.t_done;
  std::printf("  [INFO] re-init completion-time penalty: %.2fx at 2 Hz, %.2fx at 20 Hz\n",
              slow_penalty, fast_penalty);
  check(fast_penalty > slow_penalty,
        "re-initialisation hurts more as outages become frequent");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
