// §IV extension — the peripheral-state problem.
//
// "Work to date has primarily focused on computation, and not the plethora
// of peripherals that are typically present in embedded systems." A radio,
// ADC or sensor front-end holds volatile configuration that a power cycle
// destroys. A transient system must either
//   (a) include the peripheral file in every snapshot — a larger image,
//       hence a higher Eq 4 V_H and more energy per save; or
//   (b) re-initialise the peripherals after every outage — a fixed cycle
//       cost per restore (SPI register writes, PLL lock, calibration).
// The better choice depends on the outage rate: frequent outages amortise
// the per-save cost of (a); rare outages favour the cheap snapshots of (b).
// This bench sweeps the outage rate and reports the crossover.
#include <cstdio>
#include <iostream>
#include <vector>

#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/workloads/sensing.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct Outcome {
  bool completed = false;
  Seconds t_done = 0.0;
  Joules energy = 0.0;
  std::uint64_t reinits = 0;
  double overhead_mcycles = 0.0;
};

Outcome run(bool snapshot_peripherals, Hertz outage_hz) {
  core::SystemBuilder builder;
  mcu::McuParams params;
  params.peripheral_file_bytes = 512;     // radio register map + calibration
  params.peripheral_reinit_cycles = 60000;  // ~7.5 ms of SPI reconfiguration
  builder
      .voltage_source(std::make_unique<trace::SquareVoltageSource>(
          3.3, outage_hz, 0.4, 0.0, 50.0))
      .capacitance(22e-6)
      .bleed(3000.0)
      .mcu_params(params)
      .snapshot_peripherals(snapshot_peripherals)
      .program(std::make_unique<workloads::SensingProgram>(512, 5));
  checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;  // covers the bleed share during the save (Eq 4)
  config.restore_headroom = 0.3;
  builder.policy_hibernus(config);
  auto system = builder.build();
  const auto result = system.run(60.0);
  Outcome outcome;
  outcome.completed = result.mcu.completed;
  outcome.t_done = result.mcu.completion_time;
  outcome.energy = result.mcu.energy_total();
  outcome.reinits = result.mcu.peripheral_reinits;
  outcome.overhead_mcycles = result.mcu.poll_cycles / 1e6;
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Peripheral state across outages: snapshot vs re-initialise ===\n\n");
  std::printf("workload: 512 sense rounds (ADC + radio); peripheral file 512 B;\n");
  std::printf("re-initialisation 60 kcycles (~7.5 ms at 8 MHz).\n\n");

  sim::Table table({"outage rate (Hz)", "strategy", "done", "t_done (s)",
                    "energy (uJ)", "peripheral re-inits"});
  struct Pair {
    Outcome with, without;
  };
  std::vector<std::pair<Hertz, Pair>> results;
  for (Hertz f : {2.0, 5.0, 10.0, 20.0}) {
    Pair pair;
    pair.with = run(true, f);
    pair.without = run(false, f);
    results.emplace_back(f, pair);
    table.add_row({sim::Table::num(f, 0), "snapshot peripherals",
                   pair.with.completed ? "yes" : "NO",
                   pair.with.completed ? sim::Table::num(pair.with.t_done, 2) : "-",
                   sim::Table::num(pair.with.energy * 1e6, 0),
                   std::to_string(pair.with.reinits)});
    table.add_row({"", "re-init after outage",
                   pair.without.completed ? "yes" : "NO",
                   pair.without.completed ? sim::Table::num(pair.without.t_done, 2) : "-",
                   sim::Table::num(pair.without.energy * 1e6, 0),
                   std::to_string(pair.without.reinits)});
  }
  table.print(std::cout);

  const auto& slow = results.front().second;    // 2 Hz outages
  const auto& fast = results.back().second;     // 20 Hz outages

  std::printf("\nShape checks:\n");
  check(slow.with.completed && slow.without.completed && fast.with.completed &&
            fast.without.completed,
        "both strategies sustain computation at every outage rate");
  check(slow.without.reinits > 0 && slow.with.reinits <= 1,
        "only the re-init strategy pays peripheral reconfiguration per outage");
  check(fast.without.reinits > slow.without.reinits,
        "re-initialisations scale with the outage rate");
  // The economics: re-init cost per outage is fixed; snapshot cost per
  // outage grows with the peripheral file. At high outage rates the re-init
  // strategy's completion time degrades more.
  const double slow_penalty = slow.without.t_done / slow.with.t_done;
  const double fast_penalty = fast.without.t_done / fast.with.t_done;
  std::printf("  [INFO] re-init completion-time penalty: %.2fx at 2 Hz, %.2fx at 20 Hz\n",
              slow_penalty, fast_penalty);
  check(fast_penalty > slow_penalty,
        "re-initialisation hurts more as outages become frequent");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
