// Shared Fig 7 scenario specs for the bench programs.
//
// fig7_hibernus_fft --macro gates the harvesting-gap speedup on the same
// scenario BM_MacroPair/Fig7Gapped_* records in BENCH_4.json
// (bench/perf_micro.cpp); one definition keeps the gate and the recorded
// trajectory comparable by construction.
#pragma once

#include <cmath>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/spec/system_spec.h"
#include "edc/trace/waveform.h"

namespace fig7 {

/// The Fig 7 hibernus design point: 47 uF node, 3 kOhm board bleed, FFT
/// 2^11, Eq 4 margin sized for the bleed share (DESIGN.md §4).
inline edc::spec::SystemSpec base_spec() {
  edc::spec::SystemSpec s;
  s.storage.capacitance = 47e-6;
  s.storage.bleed = 3000.0;
  s.workload.kind = "fft-large";
  s.workload.seed = 7;
  edc::checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;
  config.restore_headroom = 0.35;
  s.policy = edc::spec::Hibernus{config};
  return s;
}

/// The system across harvesting gaps: the 6 Hz sine arriving in 0.5 s
/// bursts every 10 s with the paper's decay-to-zero intervals in between
/// (save -> sleep -> brown-out -> dead node), surveyed over 20 s. The
/// quiescent engine's sleep/off/dead spans collapse the gaps to O(1).
inline edc::spec::SystemSpec gapped_spec() {
  const auto wave = edc::trace::Waveform::sample(
      [](edc::Seconds t) {
        const double cycle = t - std::floor(t / 10.0) * 10.0;
        return cycle < 0.5 ? 3.3 * std::sin(2.0 * M_PI * 6.0 * t) : 0.0;
      },
      0.0, 20.0, 400001);
  edc::spec::SystemSpec s = base_spec();
  s.source = edc::spec::VoltageTraceSource{wave, 50.0, "fig7-gapped"};
  s.sim.t_end = 20.0;
  s.sim.stop_on_completion = false;  // survey the whole gap structure
  s.sim.probe_interval = 0.5e-3;
  return s;
}

}  // namespace fig7
