// Shared Fig 7 scenario specs for the bench programs.
//
// fig7_hibernus_fft --macro gates the harvesting-gap speedup on the same
// scenario BM_MacroPair/Fig7Gapped_* records in BENCH_7.json
// (bench/perf_micro.cpp); one definition keeps the gate and the recorded
// trajectory comparable by construction.
#pragma once

#include <cmath>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/trace/waveform.h"

namespace fig7 {

/// The Fig 7 hibernus design point: 47 uF node, 3 kOhm board bleed, FFT
/// 2^11, Eq 4 margin sized for the bleed share (DESIGN.md §4).
inline edc::spec::SystemSpec base_spec() {
  edc::spec::SystemSpec s;
  s.storage.capacitance = 47e-6;
  s.storage.bleed = 3000.0;
  s.workload.kind = "fft-large";
  s.workload.seed = 7;
  edc::checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;
  config.restore_headroom = 0.35;
  s.policy = edc::spec::Hibernus{config};
  return s;
}

/// The system across harvesting gaps: the 6 Hz sine arriving in 0.5 s
/// bursts every 10 s with the paper's decay-to-zero intervals in between
/// (save -> sleep -> brown-out -> dead node), surveyed over 20 s. The
/// quiescent engine's sleep/off/dead spans collapse the gaps to O(1) and
/// the trace's quiet-segment index claims the sub-conduction arcs inside
/// each burst. Unprobed, like a sweep at scale would run it (probe
/// lock-step has its own differential coverage in tests/macro_step_test).
inline edc::spec::SystemSpec gapped_spec() {
  const auto wave = edc::trace::Waveform::sample(
      [](edc::Seconds t) {
        const double cycle = t - std::floor(t / 10.0) * 10.0;
        return cycle < 0.5 ? 3.3 * std::sin(2.0 * M_PI * 6.0 * t) : 0.0;
      },
      0.0, 20.0, 400001);
  edc::spec::SystemSpec s = base_spec();
  s.source = edc::spec::VoltageTraceSource{wave, 50.0, "fig7-gapped"};
  s.sim.t_end = 20.0;
  s.sim.stop_on_completion = false;  // survey the whole gap structure
  return s;
}

/// The charge-ramp survey: the same design point fed 0.5 s *DC* bursts
/// every 10 s (a bench supply gated on/off — SquareVoltageSource's exact
/// phase arithmetic certifies each burst as one constant window). Every
/// regime is then analytic: the burst's charging ramp jumps to the
/// power-on / V_R rising crossing (circuit::ChargeSolution), the parked
/// equilibrium rides to the burst's end, and the gap decays as in
/// gapped_spec — only boot/active/save/restore steps run finely. This is
/// the scenario class the charge-span planner exists for, and the pair
/// BM_MacroPair/Fig7ChargeRamp_* records in BENCH_7.json.
inline edc::spec::SystemSpec charge_ramp_spec() {
  edc::spec::SystemSpec s = base_spec();
  s.source = edc::spec::SquareSource{3.3, 0.1, 0.05, 0.0, 50.0};
  s.sim.t_end = 20.0;
  s.sim.stop_on_completion = false;
  return s;
}

/// The batched-sweep survey: the Fig 7 design point swept over 16 node
/// capacitances on the live 6 Hz sine — one batch group (every point
/// shares the source and dt lattice), all fine-stepped (no macro spans),
/// which is exactly the regime the SoA batch kernel exists for: the sine
/// is evaluated once per substep and broadcast across all 16 lanes
/// instead of 16 times. The survey resolves the charging ODE on an
/// 8-substep lattice (capacitance surveys care about the charge
/// trajectory, and a finer node lattice is where sweeps actually spend
/// their time) — that is also the node-dominated regime the kernel
/// targets; at the figure's coarser 4-substep lattice the per-lane MCU
/// and policy machinery (identical in both paths by the bit-identity
/// contract) caps the ratio near 1.9x. fig7_hibernus_fft --batch gates
/// the scalar/batch speedup on this grid and BM_BatchPair/Fig7Survey_*
/// records the same pair in BENCH_7.json. The workload is fft-small so
/// per-lane MCU work does not drown the node/source share being
/// measured.
inline edc::sweep::Grid batch_survey_grid() {
  edc::spec::SystemSpec s = base_spec();
  s.source = edc::spec::SineSource{3.3, 6.0};
  s.workload.kind = "fft-small";
  s.sim.t_end = 0.25;
  s.sim.node_substeps = 8;
  s.sim.stop_on_completion = false;  // every lane rides the full window
  edc::sweep::Grid grid(std::move(s));
  grid.capacitance_axis({4.7e-6, 6.8e-6, 10e-6, 15e-6, 22e-6, 33e-6, 47e-6,
                         68e-6, 100e-6, 150e-6, 220e-6, 330e-6, 470e-6,
                         680e-6, 1000e-6, 1500e-6});
  return grid;
}

}  // namespace fig7
