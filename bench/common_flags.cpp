#include "common_flags.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace bench {

FlagParser& FlagParser::on(std::string name, std::function<void()> handler) {
  flags_.push_back({std::move(name), {},
                    [handler = std::move(handler)](const char*) {
                      handler();
                      return true;
                    }});
  return *this;
}

FlagParser& FlagParser::on_value(std::string name, std::string value_name,
                                 std::function<bool(const char*)> handler) {
  flags_.push_back({std::move(name), std::move(value_name), std::move(handler)});
  return *this;
}

void FlagParser::print_usage(const char* argv0) const {
  std::string usage = "usage: ";
  usage += argv0;
  for (const Flag& flag : flags_) {
    usage += " [" + flag.name;
    if (!flag.value_name.empty()) usage += ' ' + flag.value_name;
    usage += ']';
  }
  std::fprintf(stderr, "%s\n", usage.c_str());
}

bool FlagParser::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const Flag* match = nullptr;
    for (const Flag& flag : flags_) {
      if (std::strcmp(argv[i], flag.name.c_str()) == 0) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      print_usage(argv[0]);
      return false;
    }
    if (match->value_name.empty()) {
      match->handler(nullptr);
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value (%s)\n", match->name.c_str(),
                   match->value_name.c_str());
      print_usage(argv[0]);
      return false;
    }
    if (!match->handler(argv[++i])) return false;
  }
  return true;
}

}  // namespace bench
