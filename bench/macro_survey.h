// Shared measurement helpers for the --macro and --batch survey gates
// (fig7_hibernus_fft, fig8_hibernus_pn): one definition of the
// gate-critical best-of-N wall-clock loops so the CI gates cannot silently
// diverge in how they time their legs.
#pragma once

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "edc/core/system.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

namespace macro_survey {

/// Best-of-`repeats` wall time (ms) of running `base` with macro stepping
/// toggled; `result` receives the (deterministic) last run's results. The
/// gated ratios divide two of these, so repeats only filter scheduler
/// hiccups out of the measurement — a macro leg in the single-digit
/// milliseconds would otherwise flake its gate on one preemption.
/// Instantiation (source/index construction) is deliberately inside the
/// timed window: it is part of the price a sweep pays per point.
inline double wall_millis(const edc::spec::SystemSpec& base,
                          edc::sim::SimResult& result, bool macro_stepping,
                          int repeats) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    edc::spec::SystemSpec s = base;
    s.sim.macro_stepping = macro_stepping;
    auto system = edc::spec::instantiate(s);
    const auto start = std::chrono::steady_clock::now();
    result = system.run();
    best = std::min(best, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  return best;
}

/// Best-of-`repeats` wall time (ms) of running `grid` through the sweep
/// Runner with the batch strategy toggled; `rows` receives the
/// (deterministic) last run's results. Single worker thread in both legs,
/// so a gated scalar/batch ratio measures the SoA kernel alone, not pool
/// parallelism — the same protocol as BM_BatchPair in bench/perf_micro.
inline double sweep_wall_millis(const edc::sweep::Grid& grid,
                                std::vector<edc::sim::SimResult>& rows,
                                bool batch, int repeats) {
  edc::sweep::RunnerOptions options;
  options.threads = 1;
  options.batch = batch;
  const edc::sweep::Runner runner(options);
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    rows = runner.run(grid);
    best = std::min(best, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  return best;
}

/// Fraction of the run's dt steps the quiescent engine covered
/// analytically (the SimResult step-mix diagnostics).
inline double span_coverage(const edc::sim::SimResult& result) {
  const auto total = result.fine_steps + result.span_steps;
  return total == 0 ? 0.0
                    : static_cast<double>(result.span_steps) /
                          static_cast<double>(total);
}

}  // namespace macro_survey
