// §II.B task-based transient systems: WISPCam [4], dynamic energy-burst
// scaling [5], and Monjolo [6].
//
// Reproduces the behavioural claims: WISPCam takes one photo per charge of
// its 6 mF supercapacitor and streams it out over RFID when the field
// allows; the burst policy executes tasks only when the capacitor holds a
// task of energy; Monjolo's ping frequency is proportional to the harvested
// power, so the receiver can meter power from ping arrival rates alone.
#include <cstdio>
#include <iostream>

#include "common_flags.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/taskmodel/monjolo.h"
#include "edc/taskmodel/wispcam.h"
#include "edc/workloads/sensing.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  // ------------------------------------------------------------ Monjolo ----
  std::printf("=== Monjolo [6]: charge-and-fire energy metering ===\n\n");
  taskmodel::MonjoloMeter meter({});
  sim::Table monjolo_table({"primary load power (true)", "pings in 60 s",
                            "mean ping interval (s)", "receiver estimate",
                            "estimate error"});
  bool monotone = true;
  std::size_t last_pings = 0;
  for (Watts p : {1e-3, 2e-3, 4e-3, 8e-3}) {
    trace::ConstantPowerSource source(p);
    const auto result = meter.run(source, 60.0);
    const Watts est = result.mean_estimate(5.0, 55.0);
    const Watts truth = p * 0.70;  // harvest efficiency
    const double interval =
        result.pings.size() > 1
            ? (result.pings.back() - result.pings.front()) /
                  static_cast<double>(result.pings.size() - 1)
            : 0.0;
    monjolo_table.add_row({sim::Table::eng(p, "W", 1),
                           std::to_string(result.pings.size()),
                           sim::Table::num(interval, 2), sim::Table::eng(est, "W", 2),
                           sim::Table::num(100.0 * std::abs(est - truth) /
                                           (truth > 0 ? truth : 1.0), 1) + " %"});
    if (result.pings.size() < last_pings) monotone = false;
    last_pings = result.pings.size();
  }
  monjolo_table.print(std::cout);

  std::printf("\nShape checks:\n");
  check(monotone, "ping frequency grows monotonically with harvested power");
  {
    trace::ConstantPowerSource a(2e-3), b(4e-3);
    const auto ra = meter.run(a, 60.0);
    const auto rb = meter.run(b, 60.0);
    const double ratio =
        static_cast<double>(rb.pings.size()) / static_cast<double>(ra.pings.size());
    check(ratio > 1.6 && ratio < 2.4, "2x power => ~2x ping rate (receiver meters power)");
    const Watts est = rb.mean_estimate(5.0, 55.0);
    check(std::abs(est - 4e-3 * 0.7) < 0.25 * 4e-3 * 0.7,
          "receiver estimate within 25% of the true harvested power");
  }

  // ------------------------------------------------------------ WISPCam ----
  std::printf("\n=== WISPCam [4]: battery-free RFID camera (6 mF supercap) ===\n\n");
  taskmodel::WispCam camera({});
  sim::Table cam_table({"RF field power", "photos captured", "photos delivered",
                        "mean capture->delivery latency (s)", "interrupted phases"});
  int strong_captured = 0, weak_captured = 0;
  for (Watts field : {1.5e-3, 3e-3}) {
    trace::RfFieldSource::Params rf;
    rf.field_power = field;
    rf.burst_length = 8.0;
    rf.burst_period = 10.0;
    trace::RfFieldSource source(rf, 3, 300.0);
    const auto result = camera.run(source, 300.0);
    cam_table.add_row({sim::Table::eng(field, "W", 1),
                       std::to_string(result.photos_captured),
                       std::to_string(result.photos_transferred),
                       sim::Table::num(result.mean_latency(), 1),
                       std::to_string(result.interrupted_phases)});
    if (field > 2e-3) {
      strong_captured = result.photos_captured;
    } else {
      weak_captured = result.photos_captured;
    }
  }
  cam_table.print(std::cout);

  std::printf("\nShape checks:\n");
  check(strong_captured > 0, "photos captured and stored in NVM per supercap charge");
  check(strong_captured >= weak_captured,
        "stronger field => photos at least as often (faster recharge)");

  // -------------------------------------------------------- Burst policy ---
  std::printf("\n=== Dynamic energy-burst scaling [5]: sense tasks from an 80 uF buffer ===\n\n");
  sim::Table burst_table({"harvested power", "done", "t_done (s)", "task commits",
                          "wake threshold (V)"});
  bool all_done = true;
  for (Watts p : {0.8e-3, 1.6e-3, 3.2e-3}) {
    core::SystemBuilder builder;
    taskmodel::BurstTaskPolicy::Config config;
    config.task_energy = 12e-6;
    builder.power_source(std::make_unique<trace::ConstantPowerSource>(p))
        .capacitance(80e-6)
        .bleed(20000.0)
        .program(std::make_unique<workloads::SensingProgram>(64, 5))
        .policy_burst(config);
    auto system = builder.build();
    const auto& policy = dynamic_cast<const taskmodel::BurstTaskPolicy&>(system.policy());
    const auto result = system.run(30.0);
    all_done = all_done && result.mcu.completed;
    burst_table.add_row({sim::Table::eng(p, "W", 1),
                         result.mcu.completed ? "yes" : "NO",
                         result.mcu.completed
                             ? sim::Table::num(result.mcu.completion_time, 2)
                             : "-",
                         std::to_string(result.mcu.saves_completed),
                         sim::Table::num(policy.wake_threshold(), 2)});
  }
  burst_table.print(std::cout);

  std::printf("\nShape checks:\n");
  check(all_done, "tasks complete whenever the buffer accumulates one task of energy");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
