// §IV extension — power proportionality and power-neutral operation.
//
// "While promising, better power proportionality (i.e. the range over which
// the power can be controlled) is needed." A DFS governor can only track
// the harvested power down to the MCU's static floor (i_base): the worse
// the proportionality (the larger the static share), the less a
// power-neutral system gains from frequency scaling. This bench sweeps
// i_base and measures the useful work extracted from the same gusty source.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common_flags.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/workloads/crc32.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct Outcome {
  double forward_mcycles = 0.0;
  Joules energy = 0.0;
  std::uint64_t saves = 0;

  [[nodiscard]] double mcycles_per_mj() const {
    return energy > 0 ? forward_mcycles / (energy * 1e3) : 0.0;
  }
};

Outcome run(Amps i_base, bool with_governor) {
  core::SystemBuilder builder;
  mcu::McuParams params;
  params.power.i_base = i_base;
  sim::SimConfig config;
  config.t_end = 6.0;
  config.stop_on_completion = false;
  trace::WindTurbineSource::Params wind;
  wind.peak_voltage = 5.0;
  builder.wind_source(wind, /*seed=*/3, /*horizon=*/6.0)
      .capacitance(47e-6)
      .bleed(10000.0)
      .mcu_params(params)
      .program(std::make_unique<workloads::Crc32Program>(1024 * 1024, 9))
      .policy_hibernus()
      .sim_config(config);
  if (with_governor) builder.governor_power_neutral();
  auto system = builder.build();
  const auto result = system.run(6.0);
  Outcome outcome;
  outcome.forward_mcycles = result.mcu.forward_cycles / 1e6;
  outcome.energy = result.mcu.energy_total();
  outcome.saves = result.mcu.saves_completed;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Power proportionality vs power-neutral benefit (one wind gust) ===\n\n");
  std::printf("i_base is the MCU's static (frequency-independent) current; the\n");
  std::printf("dynamic share at 8 MHz is ~600 uA. Proportionality = dynamic share.\n\n");

  sim::Table table({"i_base", "proportionality @8MHz", "fwd Mcyc (PN)",
                    "fwd Mcyc (fixed-f)", "PN gain", "Mcyc/mJ (PN)"});
  std::vector<double> gains;
  std::vector<double> efficiency;
  for (Amps i_base : {40e-6, 120e-6, 400e-6, 1200e-6}) {
    const auto pn = run(i_base, true);
    const auto fixed = run(i_base, false);
    const double gain =
        fixed.forward_mcycles > 0 ? pn.forward_mcycles / fixed.forward_mcycles : 0.0;
    const double dynamic_share = 600e-6 / (600e-6 + i_base);
    gains.push_back(gain);
    efficiency.push_back(pn.mcycles_per_mj());
    table.add_row({sim::Table::eng(i_base, "A", 0),
                   sim::Table::num(dynamic_share * 100, 0) + " %",
                   sim::Table::num(pn.forward_mcycles, 2),
                   sim::Table::num(fixed.forward_mcycles, 2),
                   sim::Table::num(gain, 2) + "x",
                   sim::Table::num(pn.mcycles_per_mj(), 1)});
  }
  table.print(std::cout);

  std::printf("\nShape checks (the paper's §IV observation):\n");
  check(gains.front() >= 1.0, "with good proportionality, PN at least matches fixed-f");
  check(efficiency.front() > 2.0 * efficiency.back(),
        "cycles-per-joule collapses as the static floor grows");
  check(gains.front() > 0.95 * gains.back() || gains.back() < 1.05,
        "the PN advantage does not grow with a worse static floor");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
