// Eq 5 — The hibernus vs QuickRecall crossover.
//
// Unified-FRAM execution (QuickRecall) pays a constant power premium but
// snapshots almost nothing; SRAM execution (hibernus) is cheaper to run but
// pays a full RAM copy (plus restore) per outage. Eq 5 predicts the
// break-even supply interruption frequency:
//
//     f_crossover = (P_FRAM - P_SRAM) / (E_hibernus - E_quickrecall)
//
// The bench sweeps the interruption frequency of a square-wave supply on a
// leaky 10 uF node (so outages stay real across the sweep) with the sweep
// engine (f x policy grid), measures total MCU energy per unit of forward
// progress for both policies, and compares the empirical crossover against
// the analytic prediction.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "edc/checkpoint/thresholds.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/workloads/fft.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct RunOutcome {
  double joules_per_mcycle = std::numeric_limits<double>::infinity();
  bool completed = false;
  std::uint64_t saves = 0;
};

}  // namespace

int main() {
  std::printf("=== Eq 5: hibernus vs QuickRecall crossover frequency ===\n\n");

  mcu::McuPowerModel power;
  workloads::FftProgram probe_program(10, 5);
  const std::size_t image = probe_program.ram_footprint();
  const Hertz predicted =
      checkpoint::crossover_frequency_for_image(power, image, 8e6, 3.0);

  const Watts p_fram = power.active_current(8e6, mcu::MemoryMode::unified_fram) * 3.0;
  const Watts p_sram = power.active_current(8e6, mcu::MemoryMode::sram_execution) * 3.0;
  std::printf("P_FRAM = %.2f mW, P_SRAM = %.2f mW (at 8 MHz, 3 V)\n", p_fram * 1e3,
              p_sram * 1e3);
  std::printf("RAM image: %zu B (+%zu B registers)\n", image,
              power.register_file_bytes);
  std::printf("Eq 5 predicted crossover: %.0f Hz "
              "(50%% supply duty halves the usable on-time => expect ~%.0f Hz)\n\n",
              predicted, predicted / 2);

  // Margin sized for the strong board bleed that drains the node in
  // parallel with the save (see Eq 4 discussion in DESIGN.md).
  checkpoint::InterruptPolicy::Config config;
  config.margin = 3.0;
  config.restore_headroom = 0.15;

  spec::SystemSpec base;
  base.storage.capacitance = 10e-6;
  base.storage.bleed = 1000.0;
  base.workload.factory = [] { return std::make_unique<workloads::FftProgram>(10, 5); };
  base.sim.t_end = 20.0;

  const std::vector<Hertz> sweep = {5, 10, 20, 40, 80, 160, 320};
  sweep::Grid grid(std::move(base));
  grid.numeric_axis(
          "f_interrupt (Hz)", sweep,
          [](spec::SystemSpec& s, double f) {
            s.source = spec::SquareSource{3.3, f, 0.5, 0.0, 50.0};
          },
          [](double f) { return sim::Table::num(f, 0); })
      .axis("policy", {{"hibernus",
                        [config](spec::SystemSpec& s) {
                          s.policy = spec::Hibernus{config};
                        }},
                       {"quickrecall", [config](spec::SystemSpec& s) {
                          s.policy = spec::QuickRecall{config};
                        }}});

  const sweep::Runner runner;
  const auto outcomes = runner.map<RunOutcome>(
      grid, [](const sweep::Point&, core::EnergyDrivenSystem&,
               const sim::SimResult& result) {
        RunOutcome outcome;
        outcome.completed = result.mcu.completed;
        outcome.saves = result.mcu.saves_completed;
        if (result.mcu.forward_cycles > 1000.0) {
          outcome.joules_per_mcycle =
              result.mcu.energy_total() / (result.mcu.forward_cycles / 1e6);
        }
        return outcome;
      });

  // Row-major order: frequency outer, policy inner.
  const auto at = [&](std::size_t f_index, std::size_t p_index) -> const RunOutcome& {
    return outcomes[f_index * 2 + p_index];
  };

  sim::Table table({"f_interrupt (Hz)", "hibernus (uJ/Mcycle)",
                    "quickrecall (uJ/Mcycle)", "winner", "hib saves", "qr saves"});
  Hertz empirical_crossover = 0.0;
  bool previous_hibernus_wins = true;
  bool first = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunOutcome& hibernus = at(i, 0);
    const RunOutcome& quickrecall = at(i, 1);
    const bool hibernus_wins =
        hibernus.joules_per_mcycle <= quickrecall.joules_per_mcycle;
    if (!first && previous_hibernus_wins && !hibernus_wins &&
        empirical_crossover == 0.0) {
      empirical_crossover = sweep[i];
    }
    previous_hibernus_wins = hibernus_wins;
    first = false;
    auto fmt = [](double v) {
      return std::isinf(v) ? std::string("no progress") : sim::Table::num(v * 1e6, 2);
    };
    table.add_row({sim::Table::num(sweep[i], 0), fmt(hibernus.joules_per_mcycle),
                   fmt(quickrecall.joules_per_mcycle),
                   hibernus_wins ? "hibernus" : "quickrecall",
                   std::to_string(hibernus.saves),
                   std::to_string(quickrecall.saves)});
  }
  table.print(std::cout);

  std::printf("\nEmpirical crossover: first quickrecall win at %.0f Hz\n",
              empirical_crossover);

  std::printf("\nShape checks vs the paper:\n");
  check(predicted > 0.0, "Eq 5 yields a positive crossover for FRAM > SRAM power");
  check(empirical_crossover > 0.0, "a crossover exists within the sweep");
  check(empirical_crossover >= predicted / 8 && empirical_crossover <= predicted * 8,
        "empirical crossover within an order of magnitude of Eq 5");
  const RunOutcome& low_f_hib = at(0, 0);
  const RunOutcome& low_f_qr = at(0, 1);
  check(low_f_hib.joules_per_mcycle < low_f_qr.joules_per_mcycle,
        "at low interruption rates hibernus is more efficient (SRAM execution)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
