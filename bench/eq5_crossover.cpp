// Eq 5 — The hibernus vs QuickRecall crossover.
//
// Unified-FRAM execution (QuickRecall) pays a constant power premium but
// snapshots almost nothing; SRAM execution (hibernus) is cheaper to run but
// pays a full RAM copy (plus restore) per outage. Eq 5 predicts the
// break-even supply interruption frequency:
//
//     f_crossover = (P_FRAM - P_SRAM) / (E_hibernus - E_quickrecall)
//
// The bench sweeps the interruption frequency of a square-wave supply on a
// leaky 10 uF node (so outages stay real across the sweep) with the sweep
// engine (f x policy grid), measures total MCU energy per unit of forward
// progress for both policies, and compares the empirical crossover against
// the analytic prediction.
//
// The grid is pure spec data, so it also serves as the process-sharding
// demo (scripts/shard_merge_smoke.cmake):
//
//   eq5_crossover --shard 0/2 --csv a.csv      # half the grid
//   eq5_crossover --shard 1/2 --csv b.csv      # the other half
//   sweep_merge merged.csv a.csv b.csv         # == unsharded --csv output
//
// --shard runs only the owned points and writes the shard CSV (no table,
// no shape checks); --csv without --shard writes the unsharded CSV next to
// the normal report; --cache memoises either mode; --t-end shortens the
// horizon for smoke tests (shape checks are skipped — they are tuned for
// the full 20 s horizon).
//
// --batch runs the grid through the batched SoA kernel (sweep/batch.h) —
// bit-identical rows, amortized lane-cost timings tagged provenance 'b'.
//
// --solve answers the crossover question with sweep::Search instead of the
// dense sweep: bracketed bisection over a *refined* frequency lattice
// (5 Hz .. 320 Hz, 8 points per octave — 49 frequencies where the dense
// sweep has 7) locates the crossover cell in O(log) probes. The dense
// seven frequencies are an exact floating-point sub-lattice (5 * 2^k =
// lattice[8k]), so probe specs — and therefore cache keys and rows — are
// byte-identical with the dense sweep's at shared frequencies.
// --solve-check runs the solver *first* (cold-probe accounting stays
// honest), then the dense grid, and asserts the refined bracket lies
// inside the dense crossover cell. --search-csv FILE appends the
// "name,probes,simulated,warm,grid_points" telemetry row bench_gate
// --points-gate asserts in CI (--search-name renames it, default
// Eq5Solve).
//
// --shard-plan TIMING.csv closes the cost-weighted sharding loop (ROADMAP)
// end to end: an unsharded run *emits* the per-point timing CSV
// ("index,micros,provenance" — measured, or replayed from the cache on a
// warm grid), and a --shard k/N run *consumes* it, replacing index
// striding with the LPT-balanced partition of
// sweep::ShardAssignment::balanced. A plan mixing scalar and batch
// provenance is rejected (amortized lane costs are not comparable with
// per-point wall times) unless --mixed-plan-ok. Every shard
// process computes the identical partition from the identical file, and
// the v2 shard CSVs merge through sweep_merge exactly like striding ones:
//
//   eq5_crossover --csv base.csv --cache c --shard-plan timing.csv   # emit
//   eq5_crossover --shard 0/2 --csv a.csv --cache c --shard-plan timing.csv
//   eq5_crossover --shard 1/2 --csv b.csv --cache c --shard-plan timing.csv
//   sweep_merge merged.csv a.csv b.csv     # == base.csv, LPT-balanced run
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <vector>

#include "common_flags.h"
#include "edc/checkpoint/thresholds.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/spec/fleet_spec.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/fleet.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/report.h"
#include "edc/sweep/runner.h"
#include "edc/sweep/search.h"
#include "edc/workloads/fft.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

double joules_per_mcycle(const sim::SimResult& result) {
  if (result.mcu.forward_cycles <= 1000.0) {
    return std::numeric_limits<double>::infinity();
  }
  return result.mcu.energy_total() / (result.mcu.forward_cycles / 1e6);
}

/// The --solve frequency lattice: 5 Hz .. 320 Hz at 8 points per octave
/// (49 values; dense-equivalent grid 49 x 2 policies = 98 points). The
/// dense sweep's seven frequencies are the exact floating-point
/// sub-lattice at i = 8k (ldexp keeps 5 * 2^k exact; pow(2, 0/8) == 1), so
/// a probe at a shared frequency serializes to the same cache key — and
/// replays the same bytes — as the dense grid point.
std::vector<double> refined_lattice() {
  std::vector<double> lattice;
  lattice.reserve(49);
  for (int i = 0; i <= 48; ++i) {
    lattice.push_back(std::ldexp(5.0, i / 8) * std::pow(2.0, (i % 8) / 8.0));
  }
  return lattice;
}

/// Writes the "index,micros,provenance" timing plan a later --shard run
/// consumes. The provenance column ('s' scalar / 'b' batch, see
/// sweep/batch.h) records which execution path measured each cost.
bool write_shard_plan(const char* path, const std::vector<double>& micros,
                      const std::vector<char>& provenance) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path);
    return false;
  }
  out << "index,micros,provenance\n";
  for (std::size_t i = 0; i < micros.size(); ++i) {
    out << i << ',' << micros[i] << ',' << provenance[i] << '\n';
  }
  if (!out.good()) {
    std::fprintf(stderr, "write to '%s' failed\n", path);
    return false;
  }
  return true;
}

/// Reads the timing plan back: one positive cost per grid point, every
/// index covered exactly once. Loud failure — a stale or truncated plan
/// must never silently degrade into a partial partition (the merge would
/// reject the mismatched shards anyway, but this fails with the reason).
///
/// Plans without the provenance column (written before the batch path
/// existed) still parse. Plans that *mix* scalar and batch provenance are
/// rejected unless `mixed_ok`: a batch cost is a lane group's wall time
/// amortized over its lanes, a scalar cost is the point's own wall time,
/// and LPT-balancing a partition over incommensurable costs silently
/// skews every shard. Re-emit the plan from one mode, or pass
/// --mixed-plan-ok to accept the skew knowingly.
bool read_shard_plan(const char* path, std::size_t grid_size,
                     std::vector<double>& micros, bool mixed_ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open shard plan '%s' (run unsharded with "
                 "--shard-plan first to emit it)\n", path);
    return false;
  }
  std::string line;
  bool with_provenance = false;
  if (!std::getline(in, line) ||
      (line != "index,micros" && line != "index,micros,provenance")) {
    std::fprintf(stderr, "'%s' is not a shard plan (bad header)\n", path);
    return false;
  }
  with_provenance = line == "index,micros,provenance";
  micros.assign(grid_size, 0.0);
  std::vector<bool> covered(grid_size, false);
  bool saw_scalar = false;
  bool saw_batch = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    char* end = nullptr;
    const unsigned long long index = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != ',' || index >= grid_size) {
      std::fprintf(stderr, "bad shard-plan row in '%s': %s\n", path, line.c_str());
      return false;
    }
    const double cost = std::strtod(end + 1, &end);
    if (!(cost > 0.0) || (*end != '\0' && (!with_provenance || *end != ','))) {
      std::fprintf(stderr, "bad shard-plan cost in '%s': %s\n", path, line.c_str());
      return false;
    }
    if (with_provenance) {
      if (end[0] != ',' || (end[1] != 's' && end[1] != 'b') || end[2] != '\0') {
        std::fprintf(stderr, "bad shard-plan provenance in '%s': %s\n", path,
                     line.c_str());
        return false;
      }
      (end[1] == 'b' ? saw_batch : saw_scalar) = true;
    }
    if (covered[index]) {
      std::fprintf(stderr, "duplicate shard-plan index %llu in '%s'\n", index, path);
      return false;
    }
    covered[index] = true;
    micros[index] = cost;
  }
  for (std::size_t i = 0; i < grid_size; ++i) {
    if (!covered[i]) {
      std::fprintf(stderr, "shard plan '%s' misses point %zu (grid has %zu "
                   "points — stale plan?)\n", path, i, grid_size);
      return false;
    }
  }
  if (saw_scalar && saw_batch && !mixed_ok) {
    std::fprintf(stderr,
                 "shard plan '%s' mixes scalar ('s') and batch ('b') "
                 "provenance: batch costs are amortized over a lane group and "
                 "are not comparable with per-point scalar wall times, so an "
                 "LPT partition over them would be skewed. Re-emit the plan "
                 "from a single mode (with or without --batch, cold cache), "
                 "or pass --mixed-plan-ok to proceed anyway.\n",
                 path);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<sweep::Shard> shard;
  std::optional<sweep::Cache> cache;
  const char* csv_path = nullptr;
  const char* timing_csv_path = nullptr;
  const char* shard_plan_path = nullptr;
  double t_end = 20.0;
  bool t_end_overridden = false;
  bool macro = false;
  bool batch = false;
  bool mixed_plan_ok = false;
  bool solve = false;
  bool solve_check = false;
  bool fleet_mode = false;
  std::size_t fleet_nodes = 3;
  const char* search_csv_path = nullptr;
  const char* search_name = "Eq5Solve";
  bench::FlagParser flags;
  flags.on_value("--shard", "k/N",
                 [&](const char* v) { shard = sweep::Shard::parse(v); return true; })
      .on_value("--csv", "FILE", [&](const char* v) { csv_path = v; return true; })
      .on_value("--timing-csv", "FILE",
                [&](const char* v) { timing_csv_path = v; return true; })
      .on_value("--shard-plan", "FILE",
                [&](const char* v) { shard_plan_path = v; return true; })
      .on_value("--cache", "DIR", [&](const char* v) { cache.emplace(v); return true; })
      // Event-horizon macro-stepping across the whole grid: the low-f
      // points are outage-dominated (long brown-out tails), which is
      // exactly the regime the macro stepper collapses to O(1) per span.
      .on("--macro", [&] { macro = true; })
      // Batched SoA execution (sweep/batch.h): the two policies at each
      // interrupt frequency share a source, so they step as one two-lane
      // group. Rows are bit-identical to the scalar path; per-point
      // timings become amortized lane costs (provenance 'b' in the
      // timing CSV and shard plan).
      .on("--batch", [&] { batch = true; })
      .on("--mixed-plan-ok", [&] { mixed_plan_ok = true; })
      .on("--solve", [&] { solve = true; })
      .on("--solve-check", [&] { solve = true; solve_check = true; })
      // Fleet mode: ignore the crossover grid and run the canonical
      // shared-RF example fleet (spec::example_rf_fleet) through the
      // sweep runner instead — the end-to-end path scripts/fleet_smoke
      // gates cold and warm.
      .on("--fleet", [&] { fleet_mode = true; })
      .on_value("--fleet-nodes", "N",
                [&](const char* v) {
                  char* end = nullptr;
                  const unsigned long long n = std::strtoull(v, &end, 10);
                  if (end == v || *end != '\0' || n < 1) {
                    std::fprintf(stderr,
                                 "--fleet-nodes needs a positive integer, got "
                                 "'%s'\n", v);
                    return false;
                  }
                  fleet_nodes = static_cast<std::size_t>(n);
                  return true;
                })
      .on_value("--search-csv", "FILE",
                [&](const char* v) { search_csv_path = v; return true; })
      .on_value("--search-name", "NAME",
                [&](const char* v) { search_name = v; return true; })
      .on_value("--t-end", "SECONDS", [&](const char* v) {
        char* end = nullptr;
        t_end = std::strtod(v, &end);
        if (end == v || *end != '\0' || !(t_end > 0.0)) {
          std::fprintf(stderr, "--t-end needs a positive number, got '%s'\n", v);
          return false;
        }
        t_end_overridden = true;
        return true;
      });
  if (!flags.parse(argc, argv)) return 2;
  if (shard.has_value() && csv_path == nullptr) {
    std::fprintf(stderr, "--shard requires --csv FILE (the shard's output)\n");
    return 2;
  }
  if (solve && shard.has_value()) {
    std::fprintf(stderr, "--solve and --shard are mutually exclusive\n");
    return 2;
  }
  if (fleet_mode && (solve || shard.has_value())) {
    std::fprintf(stderr, "--fleet is mutually exclusive with --solve/--shard\n");
    return 2;
  }

  mcu::McuPowerModel power;
  workloads::FftProgram probe_program(10, 5);
  const std::size_t image = probe_program.ram_footprint();
  const Hertz predicted =
      checkpoint::crossover_frequency_for_image(power, image, 8e6, 3.0);

  // Margin sized for the strong board bleed that drains the node in
  // parallel with the save (see Eq 4 discussion in DESIGN.md).
  checkpoint::InterruptPolicy::Config config;
  config.margin = 3.0;
  config.restore_headroom = 0.15;

  spec::SystemSpec base;
  base.storage.capacitance = 10e-6;
  base.storage.bleed = 1000.0;
  base.workload.kind = "fft";  // FftProgram(10, seed) — pure data, cacheable
  base.workload.seed = 5;
  base.sim.t_end = t_end;
  base.sim.macro_stepping = macro;

  // The frequency/policy axis definitions are shared between the dense
  // grid and the --solve search, so a probe's spec — and cache key — is
  // byte-identical to the dense grid point at the same frequency.
  const auto set_frequency = [](spec::SystemSpec& s, double f) {
    s.source = spec::SquareSource{3.3, f, 0.5, 0.0, 50.0};
  };
  const auto frequency_label = [](double f) { return sim::Table::num(f, 0); };
  const std::vector<sweep::AxisValue> policies = {
      {"hibernus",
       [config](spec::SystemSpec& s) { s.policy = spec::Hibernus{config}; }},
      {"quickrecall",
       [config](spec::SystemSpec& s) { s.policy = spec::QuickRecall{config}; }}};

  const std::vector<Hertz> sweep = {5, 10, 20, 40, 80, 160, 320};
  sweep::Grid grid(base);
  grid.numeric_axis("f_interrupt (Hz)", sweep, set_frequency, frequency_label)
      .axis("policy", policies);

  sweep::RunnerOptions options;
  if (cache.has_value()) options.cache = &*cache;
  options.batch = batch;
  const sweep::Runner runner(options);

  const auto report_cache = [&] {
    if (!cache.has_value()) return;
    const sweep::CacheStats stats = cache->stats();
    std::fprintf(stderr,
                 "cache: %llu hits, %llu misses, %llu stored, %llu non-cacheable\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.stores),
                 static_cast<unsigned long long>(stats.non_cacheable));
  };

  if (fleet_mode) {
    // Fleet mode: the canonical N-node shared-RF scenario — one jittered
    // reader field, inverse-square-law per-node gains, staggered
    // basestation harvest windows, adaptive-buffer commits. Lowered fleet
    // nodes are ordinary cacheable sweep points, so --cache gives the
    // usual cold/warm accounting (fresh == N cold, 0 warm).
    std::printf("=== Shared-RF fleet (%zu nodes) under the sweep runner ===\n\n",
                fleet_nodes);
    const spec::FleetSpec fleet = spec::example_rf_fleet(fleet_nodes);
    const auto& rf = std::get<spec::SharedRfCoupling>(fleet.coupling);

    sweep::RunReport fleet_report;
    const sim::FleetResult result = sweep::run_fleet(fleet, runner, &fleet_report);

    sim::Table table({"node", "gain", "phase (s)", "completed",
                      "harvested (uJ)", "consumed (uJ)", "commits", "torn"});
    for (std::size_t i = 0; i < result.size(); ++i) {
      const sim::SimResult& node = result.nodes[i];
      table.add_row({"node" + std::to_string(i), sim::Table::num(rf.gains[i], 3),
                     sim::Table::num(rf.phases.empty() ? 0.0 : rf.phases[i], 2),
                     node.mcu.completed ? "yes" : "no",
                     sim::Table::num(node.harvested * 1e6, 1),
                     sim::Table::num(node.consumed * 1e6, 1),
                     std::to_string(node.nvm_commits),
                     std::to_string(node.nvm_torn_writes)});
    }
    table.print(std::cout);

    std::printf("\nfleet: %zu/%zu nodes completed, %llu commits, %llu torn "
                "writes fleet-wide\n",
                result.completed_nodes(), result.size(),
                static_cast<unsigned long long>(result.total_nvm_commits()),
                static_cast<unsigned long long>(result.total_nvm_torn_writes()));
    std::printf("fleet: simulated %zu of %zu nodes, %zu replayed warm\n",
                fleet_report.fresh_count(), result.size(),
                fleet_report.warm_count());
    report_cache();

    if (csv_path != nullptr) {
      std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n", csv_path);
        return 1;
      }
      sweep::write_csv(out, sweep::fleet_grid(fleet), result.nodes);
      if (!out.good()) {
        std::fprintf(stderr, "write to '%s' failed\n", csv_path);
        return 1;
      }
    }
    return 0;
  }

  if (solve) {
    // Solver-guided mode: answer the crossover question with bracketed
    // bisection over the refined lattice instead of simulating the grid.
    // The objective is the QuickRecall-minus-hibernus energy gap per
    // Mcycle: positive while hibernus wins (low f), negative once
    // QuickRecall wins (high f) — sign-falling along the axis, so the
    // declared direction turns an accidentally mirrored objective into a
    // loud kReversed error.
    std::printf("=== Eq 5 crossover via sweep::Search (solver-guided) ===\n\n");
    const std::vector<double> lattice = refined_lattice();
    const std::size_t dense_points = lattice.size() * policies.size();

    sweep::SearchOptions search_options;
    search_options.runner = options;
    search_options.direction = -1;
    sweep::Search search(
        base, {"f_interrupt (Hz)", set_frequency, frequency_label}, "policy",
        policies,
        [](double, const std::vector<sim::SimResult>& rows) {
          return (joules_per_mcycle(rows[1]) - joules_per_mcycle(rows[0])) * 1e6;
        },
        search_options);

    sweep::SearchOutcome outcome;
    try {
      outcome = search.bracket_on(lattice);
    } catch (const sweep::SearchError& error) {
      std::fprintf(stderr, "search failed (%s): %s\n",
                   sweep::search_error_kind_name(error.kind()), error.what());
      return 1;
    }

    sim::Table probe_table({"probe", "f (Hz)", "hibernus (uJ/Mcycle)",
                            "quickrecall (uJ/Mcycle)", "qr - hib", "origin"});
    for (std::size_t i = 0; i < outcome.probes.size(); ++i) {
      const sweep::SearchProbe& probe = outcome.probes[i];
      probe_table.add_row(
          {std::to_string(i), sim::Table::num(probe.x, 1),
           sim::Table::num(joules_per_mcycle(probe.rows[0]) * 1e6, 2),
           sim::Table::num(joules_per_mcycle(probe.rows[1]) * 1e6, 2),
           sim::Table::num(probe.value, 2),
           probe.warm == 0 ? "fresh" : (probe.simulated == 0 ? "warm" : "mixed")});
    }
    probe_table.print(std::cout);

    std::printf("\ncrossover bracket: hibernus wins at %.1f Hz, quickrecall at "
                "%.1f Hz (lattice cell %zu..%zu of %zu)\n",
                outcome.lo, outcome.hi, outcome.lo_index, outcome.hi_index,
                lattice.size() - 1);
    std::printf("simulated %zu of %zu dense-equivalent points (%.0f%%), "
                "%zu replayed warm\n",
                outcome.simulated_points(), dense_points,
                100.0 * static_cast<double>(outcome.simulated_points()) /
                    static_cast<double>(dense_points),
                outcome.warm_points());
    report_cache();

    if (search_csv_path != nullptr) {
      sweep::append_search_telemetry(search_csv_path, search_name, search,
                                     dense_points);
      std::fprintf(stderr, "search telemetry -> %s (%s)\n", search_csv_path,
                   search_name);
    }

    if (solve_check) {
      // Dense cross-check: the solver ran FIRST, so its cold-probe counts
      // above were unaffected by this sweep warming the shared cache.
      std::printf("\ndense cross-check (%zu points):\n", grid.size());
      const auto results = runner.run(grid);
      std::size_t first_qr_win = sweep.size();
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const double hib = joules_per_mcycle(results[i * 2]);
        const double qr = joules_per_mcycle(results[i * 2 + 1]);
        if (qr < hib) {
          first_qr_win = i;
          break;
        }
      }
      check(first_qr_win > 0 && first_qr_win < sweep.size(),
            "dense sweep finds an interior crossover cell");
      if (first_qr_win > 0 && first_qr_win < sweep.size()) {
        const double cell_lo = sweep[first_qr_win - 1];
        const double cell_hi = sweep[first_qr_win];
        std::printf("  dense crossover cell: [%.0f, %.0f] Hz\n", cell_lo, cell_hi);
        check(outcome.lo >= cell_lo && outcome.hi <= cell_hi,
              "solver bracket lies inside the dense crossover cell");
      }
      std::printf("\n%s\n", g_failures == 0 ? "SOLVE CHECK PASSED"
                                            : "SOLVE CHECK FAILED");
      return g_failures == 0 ? 0 : 1;
    }
    return 0;
  }

  if (shard.has_value()) {
    // Shard mode: simulate the owned slice, emit the mergeable CSV, done.
    // With a --shard-plan, ownership comes from the LPT-balanced partition
    // of the plan's measured per-point costs instead of index striding —
    // every shard process derives the identical partition from the
    // identical file, so the slices still cover the grid exactly once.
    sweep::RunReport shard_report;
    std::vector<sim::SimResult> rows;
    std::optional<sweep::ShardAssignment> assignment;
    std::size_t owned_count = 0;
    if (shard_plan_path != nullptr) {
      std::vector<double> plan;
      if (!read_shard_plan(shard_plan_path, grid.size(), plan, mixed_plan_ok)) {
        return 1;
      }
      assignment = sweep::ShardAssignment::balanced(plan, shard->count);
      rows = runner.run_assignment(grid, *assignment, shard->index, &shard_report);
      owned_count = assignment->owned[shard->index].size();
      std::fprintf(stderr,
                   "shard plan '%s': LPT makespan %.0f us vs striding %.0f us\n",
                   shard_plan_path, assignment->makespan(plan),
                   sweep::ShardAssignment::striding(grid.size(), shard->count)
                       .makespan(plan));
    } else {
      rows = runner.run_shard(grid, *shard, &shard_report);
      owned_count = shard->owned_count(grid.size());
    }
    std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", csv_path);
      return 1;
    }
    if (assignment.has_value()) {
      sweep::write_assignment_shard_csv(out, grid, *assignment, shard->index, rows);
    } else {
      sweep::write_shard_csv(out, grid, *shard, rows);
    }
    if (!out.good()) {
      std::fprintf(stderr, "write to '%s' failed\n", csv_path);
      return 1;
    }
    if (timing_csv_path != nullptr) {
      // Per-shard timing: global point index + wall time + execution-path
      // provenance, the per-point costs a cost-weighted re-shard of this
      // grid would consume. (The mergeable shard CSV format itself stays
      // timing-free so merged output is byte-comparable with a serial
      // run.)
      std::ofstream timing(timing_csv_path, std::ios::binary | std::ios::trunc);
      if (!timing) {
        std::fprintf(stderr, "cannot open '%s' for writing\n", timing_csv_path);
        return 1;
      }
      timing << "index,micros,provenance\n";
      const std::vector<std::size_t> owned =
          assignment.has_value() ? assignment->owned[shard->index]
                                 : shard->owned_points(grid.size());
      for (std::size_t pos = 0; pos < owned.size(); ++pos) {
        timing << owned[pos] << ',' << shard_report.micros[pos] << ','
               << shard_report.provenance[pos] << '\n';
      }
      if (!timing.good()) {
        std::fprintf(stderr, "write to '%s' failed\n", timing_csv_path);
        return 1;
      }
    }
    report_cache();
    std::printf("shard %s%s: simulated %zu of %zu points -> %s\n",
                shard->to_string().c_str(),
                assignment.has_value() ? " (LPT plan)" : "", owned_count,
                grid.size(), csv_path);
    return 0;
  }

  std::printf("=== Eq 5: hibernus vs QuickRecall crossover frequency ===\n\n");

  const Watts p_fram = power.active_current(8e6, mcu::MemoryMode::unified_fram) * 3.0;
  const Watts p_sram = power.active_current(8e6, mcu::MemoryMode::sram_execution) * 3.0;
  std::printf("P_FRAM = %.2f mW, P_SRAM = %.2f mW (at 8 MHz, 3 V)\n", p_fram * 1e3,
              p_sram * 1e3);
  std::printf("RAM image: %zu B (+%zu B registers)\n", image,
              power.register_file_bytes);
  std::printf("Eq 5 predicted crossover: %.0f Hz "
              "(50%% supply duty halves the usable on-time => expect ~%.0f Hz)\n\n",
              predicted, predicted / 2);

  sweep::RunReport run_report;
  const auto results = runner.run(grid, &run_report);
  report_cache();

  if (shard_plan_path != nullptr) {
    // Emit the timing plan for LPT-balanced --shard re-runs (cache hits
    // replay each point's original cost and provenance, so a warm grid
    // re-emits the same plan without simulating).
    if (!write_shard_plan(shard_plan_path, run_report.micros,
                          run_report.provenance)) {
      return 1;
    }
    std::fprintf(stderr, "shard plan -> %s (%zu points)\n", shard_plan_path,
                 run_report.micros.size());
  }

  if (csv_path != nullptr) {
    std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", csv_path);
      return 1;
    }
    sweep::write_csv(out, grid, results);
    if (!out.good()) {
      std::fprintf(stderr, "write to '%s' failed\n", csv_path);
      return 1;
    }
  }

  if (timing_csv_path != nullptr) {
    // The same rows with the per-point wall-time and provenance columns
    // appended — the measured input a cost-weighted shard assignment
    // would consume, tagged with the execution path that measured it.
    std::ofstream out(timing_csv_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", timing_csv_path);
      return 1;
    }
    sweep::write_csv(out, grid, results, &run_report.micros,
                     &run_report.provenance);
    if (!out.good()) {
      std::fprintf(stderr, "write to '%s' failed\n", timing_csv_path);
      return 1;
    }
  }

  // Row-major order: frequency outer, policy inner.
  const auto at = [&](std::size_t f_index, std::size_t p_index) -> const sim::SimResult& {
    return results[f_index * 2 + p_index];
  };

  sim::Table table({"f_interrupt (Hz)", "hibernus (uJ/Mcycle)",
                    "quickrecall (uJ/Mcycle)", "winner", "hib saves", "qr saves"});
  Hertz empirical_crossover = 0.0;
  bool previous_hibernus_wins = true;
  bool first = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double hibernus = joules_per_mcycle(at(i, 0));
    const double quickrecall = joules_per_mcycle(at(i, 1));
    const bool hibernus_wins = hibernus <= quickrecall;
    if (!first && previous_hibernus_wins && !hibernus_wins &&
        empirical_crossover == 0.0) {
      empirical_crossover = sweep[i];
    }
    previous_hibernus_wins = hibernus_wins;
    first = false;
    auto fmt = [](double v) {
      return std::isinf(v) ? std::string("no progress") : sim::Table::num(v * 1e6, 2);
    };
    table.add_row({sim::Table::num(sweep[i], 0), fmt(hibernus), fmt(quickrecall),
                   hibernus_wins ? "hibernus" : "quickrecall",
                   std::to_string(at(i, 0).mcu.saves_completed),
                   std::to_string(at(i, 1).mcu.saves_completed)});
  }
  table.print(std::cout);

  std::printf("\nEmpirical crossover: first quickrecall win at %.0f Hz\n",
              empirical_crossover);

  if (t_end_overridden) {
    std::printf("\n(--t-end overridden: shape checks skipped — they are tuned "
                "for the 20 s horizon)\n");
    return 0;
  }

  std::printf("\nShape checks vs the paper:\n");
  check(predicted > 0.0, "Eq 5 yields a positive crossover for FRAM > SRAM power");
  check(empirical_crossover > 0.0, "a crossover exists within the sweep");
  check(empirical_crossover >= predicted / 8 && empirical_crossover <= predicted * 8,
        "empirical crossover within an order of magnitude of Eq 5");
  check(joules_per_mcycle(at(0, 0)) < joules_per_mcycle(at(0, 1)),
        "at low interruption rates hibernus is more efficient (SRAM execution)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
