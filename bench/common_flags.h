// Shared command-line flag parsing for the bench programs.
//
// Every bench used to hand-roll the same strcmp loop (and the flagless
// ones ignored argv entirely, so a typo like --cahce silently ran the
// wrong experiment). FlagParser centralises the loop: register each flag
// with a handler, then parse(). Anything unregistered — including any
// argument to a flagless bench — fails loudly with an auto-generated
// usage line and a non-zero exit.
//
//   bench::FlagParser flags;
//   flags.on("--macro", [&] { macro = true; });
//   flags.on_value("--cache", "DIR", [&](const char* v) {
//     cache.emplace(v);
//     return true;                      // false = invalid value, exit 2
//   });
//   if (!flags.parse(argc, argv)) return 2;
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace bench {

class FlagParser {
 public:
  /// Boolean flag: `handler` runs when the flag appears (repeats allowed,
  /// matching the historical loops).
  FlagParser& on(std::string name, std::function<void()> handler);

  /// Value flag: `--name VALUE`. `value_name` is the usage placeholder
  /// (e.g. "DIR"). The handler returns false to reject the value — parse()
  /// then fails without printing the usage line (the handler is expected
  /// to have printed its own diagnostic, matching --t-end's behaviour).
  FlagParser& on_value(std::string name, std::string value_name,
                       std::function<bool(const char*)> handler);

  /// Walks argv. Returns false — after printing a usage line to stderr for
  /// unknown flags and missing values — when the caller should exit 2.
  [[nodiscard]] bool parse(int argc, char** argv) const;

 private:
  struct Flag {
    std::string name;
    std::string value_name;                       // empty = boolean
    std::function<bool(const char*)> handler;     // arg is nullptr for booleans
  };

  void print_usage(const char* argv0) const;

  std::vector<Flag> flags_;
};

}  // namespace bench
