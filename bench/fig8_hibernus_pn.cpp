// Fig 8 — Power-neutral operation: a microcontroller dynamically adapts its
// core frequency (DFS) to modulate its power consumption in response to the
// half-wave rectified output of a micro wind turbine [14].
//
// Runs the same system twice — fixed-frequency hibernus vs hibernus-PN
// (hibernus + the DFS governor) — on one wind gust. Plots V_CC and the
// selected frequency, and checks the Fig 8 claims: the frequency gracefully
// rises and falls with the harvested power, and around the gust peak the
// system rides through the AC troughs without hibernating (the paper's
// 0.4-1.1 s window).
#include <cstdio>
#include <iostream>

#include "edc/core/system.h"
#include "edc/sim/ascii_plot.h"
#include "edc/sim/table.h"
#include "edc/workloads/crc32.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

sim::SimResult run_once(bool with_governor, trace::TraceSet* probes_out) {
  core::SystemBuilder builder;
  trace::WindTurbineSource::Params wind;
  wind.peak_voltage = 5.0;
  wind.peak_frequency = 6.0;
  sim::SimConfig config;
  config.t_end = 6.0;
  config.stop_on_completion = false;  // observe the whole gust
  config.probe_interval = 1e-3;
  builder.wind_source(wind, /*seed=*/3, /*horizon=*/6.0)
      .capacitance(47e-6)
      .bleed(10000.0)
      .program(std::make_unique<workloads::Crc32Program>(512 * 1024, 9))
      .policy_hibernus()
      .sim_config(config);
  if (with_governor) {
    neutral::McuDfsGovernor::Config governor;
    governor.v_ref = 2.9;
    governor.band = 0.2;
    governor.period = 2e-3;
    builder.governor_power_neutral(governor);
  }
  auto system = builder.build();
  auto result = system.run(6.0);
  if (probes_out != nullptr) *probes_out = std::move(result.probes);
  return result;
}

/// Longest interval (s) with no off/sleep period, from the state probe.
Seconds longest_uninterrupted_run(const trace::Waveform& state) {
  Seconds best = 0.0, current = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const auto s = static_cast<mcu::McuState>(static_cast<int>(state.samples()[i]));
    if (s == mcu::McuState::active || s == mcu::McuState::saving ||
        s == mcu::McuState::restoring) {
      current += state.dt();
      best = std::max(best, current);
    } else {
      current = 0.0;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== Fig 8: hibernus-PN on a micro wind turbine ===\n\n");

  trace::TraceSet pn_probes;
  const auto pn = run_once(true, &pn_probes);
  const auto fixed = run_once(false, nullptr);

  const auto* vcc = pn_probes.find("vcc");
  const auto* freq = pn_probes.find("freq_mhz");
  if (vcc != nullptr) {
    sim::PlotOptions options;
    options.title = "V_CC from the rectified micro wind turbine (hibernus-PN)";
    options.y_label = "V_CC (V)";
    options.width = 110;
    options.height = 14;
    sim::plot(std::cout, "vcc", *vcc, options);
  }
  if (freq != nullptr) {
    sim::PlotOptions options;
    options.title = "DFS-selected core frequency tracking the harvested power";
    options.y_label = "frequency (MHz)";
    options.width = 110;
    options.height = 10;
    sim::plot(std::cout, "f", *freq, options);
  }

  sim::Table table({"configuration", "snapshots", "restores", "outages",
                    "forward Mcycles", "longest uninterrupted run"});
  const auto* pn_state = pn_probes.find("state");
  const Seconds pn_streak = pn_state != nullptr ? longest_uninterrupted_run(*pn_state) : 0.0;
  table.add_row({"hibernus-PN (DFS governor)", std::to_string(pn.mcu.saves_completed),
                 std::to_string(pn.mcu.restores), std::to_string(pn.mcu.brownouts),
                 sim::Table::num(pn.mcu.forward_cycles / 1e6, 2),
                 sim::Table::num(pn_streak, 2) + " s"});
  table.add_row({"hibernus (fixed 8 MHz)", std::to_string(fixed.mcu.saves_completed),
                 std::to_string(fixed.mcu.restores), std::to_string(fixed.mcu.brownouts),
                 sim::Table::num(fixed.mcu.forward_cycles / 1e6, 2), "-"});
  std::printf("\n");
  table.print(std::cout);

  // Frequency range exercised by the governor.
  double f_min = 1e12, f_max = 0.0;
  if (freq != nullptr) {
    for (double f : freq->samples()) {
      if (f <= 0.0) continue;
      f_min = std::min(f_min, f);
      f_max = std::max(f_max, f);
    }
  }
  std::printf("\nDFS range exercised: %.0f .. %.0f MHz\n", f_min, f_max);

  std::printf("\nShape checks vs the paper:\n");
  check(f_max > f_min, "frequency gracefully modulated up and down (DFS)");
  check(f_max >= 16.0, "upshifts to high frequency at the gust peak");
  check(f_min <= 2.0, "degrades to low frequency as the gust decays");
  check(pn_streak >= 0.4,
        "a sustained window rides through the AC troughs without interruption");
  check(pn.mcu.saves_completed <= fixed.mcu.saves_completed,
        "power-neutral operation avoids hibernate/restore overheads vs fixed-f");
  check(pn.mcu.forward_cycles > 0.8 * fixed.mcu.forward_cycles,
        "comparable or better forward progress than the fixed configuration");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
