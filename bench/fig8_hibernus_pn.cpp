// Fig 8 — Power-neutral operation: a microcontroller dynamically adapts its
// core frequency (DFS) to modulate its power consumption in response to the
// half-wave rectified output of a micro wind turbine [14].
//
// Runs the same system twice — fixed-frequency hibernus vs hibernus-PN
// (hibernus + the DFS governor) — on one wind gust. Plots V_CC and the
// selected frequency, and checks the Fig 8 claims: the frequency gracefully
// rises and falls with the harvested power, and around the gust peak the
// system rides through the AC troughs without hibernating (the paper's
// 0.4-1.1 s window).
//
// --macro reruns both configurations with quiescent-engine macro-stepping
// (SimConfig::macro_stepping), reports the wall-clock speedup and the
// macro-vs-fine deltas, and then validates the *macro* results against the
// Fig 8 shape checks — the governed leg of the accuracy contract
// (BENCH_7.json tracks the same pair as BM_MacroPair/Fig8Wind_*). It also
// runs the *wind survey*: the same design point riding the turbine's
// native multi-gust schedule (one gust every ~10 s) for 30 s — the Fig
// 8-class regime where the stochastic source used to publish no quiet
// hints at all and macro-stepping sat at ~1.0x. The wind source's
// quiet-segment index (built per seed over the gust schedule) claims the
// inter-gust gaps, the stalled stretches and the sub-conduction arcs, and
// the survey speedup is gated so the index can never silently regress
// (BM_MacroPair/Fig8WindSurvey_* records the same pair).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>

#include "common_flags.h"
#include "edc/core/system.h"
#include "edc/sim/ascii_plot.h"
#include "edc/sim/result_io.h"
#include "edc/sim/table.h"
#include "edc/spec/system_spec.h"
#include "edc/workloads/crc32.h"
#include "fig8_scenarios.h"
#include "macro_survey.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

sim::SimResult run_once(bool with_governor, trace::TraceSet* probes_out,
                        bool macro = false, double* wall_ms = nullptr) {
  // bench/fig8_scenarios.h: the governed leg is the exact scenario
  // BM_MacroPair/Fig8Wind_* records in BENCH_7.json.
  spec::SystemSpec s =
      with_governor ? fig8::governed_figure_spec() : fig8::figure_spec();
  s.sim.macro_stepping = macro;
  auto system = spec::instantiate(s);
  const auto start = std::chrono::steady_clock::now();
  auto result = system.run();
  if (wall_ms != nullptr) {
    *wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  }
  if (probes_out != nullptr) *probes_out = std::move(result.probes);
  return result;
}

/// Longest interval (s) with no off/sleep period, from the state probe.
Seconds longest_uninterrupted_run(const trace::Waveform& state) {
  Seconds best = 0.0, current = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const auto s = static_cast<mcu::McuState>(static_cast<int>(state.samples()[i]));
    if (s == mcu::McuState::active || s == mcu::McuState::saving ||
        s == mcu::McuState::restoring) {
      current += state.dt();
      best = std::max(best, current);
    } else {
      current = 0.0;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool macro = false;
  bool batch = false;
  bench::FlagParser flags;
  flags.on("--macro", [&] { macro = true; }).on("--batch", [&] { batch = true; });
  if (!flags.parse(argc, argv)) return 2;

  std::printf("=== Fig 8: hibernus-PN on a micro wind turbine ===\n\n");

  if (batch) {
    // Batched-sweep survey: the Fig 8 design point across 16 node
    // capacitances on one seeded gust (bench/fig8_scenarios.h — the exact
    // grid BM_BatchPair/Fig8Wind_* records in BENCH_7.json), scalar
    // runner vs the SoA batch kernel, single worker thread in both legs.
    // The WindSource spec serializes, so the whole grid is one batch
    // group and the turbine EMF is evaluated once per substep for all 16
    // lanes; rows must stay bit-identical by the kernel's contract.
    const sweep::Grid grid = fig8::batch_survey_grid();
    std::vector<sim::SimResult> scalar_rows, batch_rows;
    const double scalar_ms =
        macro_survey::sweep_wall_millis(grid, scalar_rows, false, /*repeats=*/2);
    const double batch_ms =
        macro_survey::sweep_wall_millis(grid, batch_rows, true, /*repeats=*/5);
    const double speedup = scalar_ms / batch_ms;
    std::printf("batched-sweep survey (16-lane capacitance grid, wind gust): "
                "%.1f ms batch vs %.1f ms scalar (%.2fx)\n",
                batch_ms, scalar_ms, speedup);
    bool identical = scalar_rows.size() == batch_rows.size();
    for (std::size_t i = 0; identical && i < scalar_rows.size(); ++i) {
      identical = sim::serialize_result(scalar_rows[i]) ==
                  sim::serialize_result(batch_rows[i]);
    }
    check(identical, "batch rows are bit-identical to the scalar rows");
    // An uncontended Release build measures ~3.4x here (BENCH_7.json) —
    // the wind harvester's power model is the expensive per-substep
    // evaluation, and the batch path prices it once per substep instead
    // of once per lane. The hard gate sits at 2x so shared-runner noise
    // has headroom while a regression to scalar-equivalent (~1x) still
    // fails loudly.
    check(speedup >= 2.0,
          "batched-sweep speedup is in the >=3.4x class "
          "(hard gate at 2x for contended-runner headroom)");
    std::printf("\n");
  }

  trace::TraceSet pn_probes;
  double pn_ms = 0.0, fixed_ms = 0.0;
  const auto pn = run_once(true, &pn_probes, macro, &pn_ms);
  const auto fixed = run_once(false, nullptr, macro, &fixed_ms);

  if (macro) {
    // Fine-path reference pair for the speedup and accuracy deltas (the
    // shape checks below then validate the macro results).
    double pn_fine_ms = 0.0, fixed_fine_ms = 0.0;
    const auto pn_fine = run_once(true, nullptr, false, &pn_fine_ms);
    const auto fixed_fine = run_once(false, nullptr, false, &fixed_fine_ms);
    std::printf("macro-stepping: hibernus-PN %.1f ms vs %.1f ms fine (%.1fx), "
                "fixed-f %.1f ms vs %.1f ms fine (%.1fx)\n",
                pn_ms, pn_fine_ms, pn_fine_ms / pn_ms, fixed_ms, fixed_fine_ms,
                fixed_fine_ms / fixed_ms);
    std::printf("deltas (PN): harvested %+.3g J, consumed %+.3g J, "
                "saves %+lld, outages %+lld\n",
                pn.harvested - pn_fine.harvested, pn.consumed - pn_fine.consumed,
                static_cast<long long>(pn.mcu.saves_completed) -
                    static_cast<long long>(pn_fine.mcu.saves_completed),
                static_cast<long long>(pn.mcu.brownouts) -
                    static_cast<long long>(pn_fine.mcu.brownouts));

    // Wind survey: the turbine's native multi-gust schedule over 30 s —
    // the Fig 8-class regime that sat at ~1.0x while the wind source
    // published no quiet hints. The quiet-segment index claims inter-gust
    // gaps, stalled stretches and sub-conduction arcs.
    sim::SimResult survey_macro, survey_fine;
    // bench/macro_survey.h owns the best-of-N timing loop; the survey is
    // the exact scenario BM_MacroPair/Fig8WindSurvey_* records in
    // BENCH_7.json (bench/fig8_scenarios.h).
    const double survey_macro_ms = macro_survey::wall_millis(
        fig8::wind_survey_spec(), survey_macro, true, /*repeats=*/3);
    const double survey_fine_ms = macro_survey::wall_millis(
        fig8::wind_survey_spec(), survey_fine, false, /*repeats=*/2);
    const double survey_speedup = survey_fine_ms / survey_macro_ms;
    std::printf("wind survey (multi-gust, 30 s horizon): %.1f ms vs %.1f ms "
                "fine (%.1fx, %.1f%% of steps analytic); deltas: harvested "
                "%+.3g J, consumed %+.3g J\n\n",
                survey_macro_ms, survey_fine_ms, survey_speedup,
                100.0 * macro_survey::span_coverage(survey_macro),
                survey_macro.harvested - survey_fine.harvested,
                survey_macro.consumed - survey_fine.consumed);
    // An uncontended Release build measures ~12x here (BENCH_7.json): the
    // certified piecewise-linear chain (ramp spans + chord-certified dark
    // windows) claims the gust arcs the quiet-index cells alone could not,
    // on top of the inter-gust gaps. The hard gate sits at 10x so a
    // regression to the constant-window-only ~5x class — let alone the
    // hint-less ~1.0x class — fails loudly, with ~20% headroom for
    // shared-runner noise.
    check(survey_speedup >= 10.0,
          "wind-survey macro speedup is in the >=12x class "
          "(hard gate at 10x: constant-window-only ~5x must fail)");
    check(survey_macro.mcu.boots == survey_fine.mcu.boots &&
              survey_macro.mcu.brownouts == survey_fine.mcu.brownouts &&
              survey_macro.mcu.saves_completed == survey_fine.mcu.saves_completed &&
              survey_macro.transitions.size() == survey_fine.transitions.size(),
          "wind-survey event sequence matches the fine path");
  }

  const auto* vcc = pn_probes.find("vcc");
  const auto* freq = pn_probes.find("freq_mhz");
  if (vcc != nullptr) {
    sim::PlotOptions options;
    options.title = "V_CC from the rectified micro wind turbine (hibernus-PN)";
    options.y_label = "V_CC (V)";
    options.width = 110;
    options.height = 14;
    sim::plot(std::cout, "vcc", *vcc, options);
  }
  if (freq != nullptr) {
    sim::PlotOptions options;
    options.title = "DFS-selected core frequency tracking the harvested power";
    options.y_label = "frequency (MHz)";
    options.width = 110;
    options.height = 10;
    sim::plot(std::cout, "f", *freq, options);
  }

  sim::Table table({"configuration", "snapshots", "restores", "outages",
                    "forward Mcycles", "longest uninterrupted run"});
  const auto* pn_state = pn_probes.find("state");
  const Seconds pn_streak = pn_state != nullptr ? longest_uninterrupted_run(*pn_state) : 0.0;
  table.add_row({"hibernus-PN (DFS governor)", std::to_string(pn.mcu.saves_completed),
                 std::to_string(pn.mcu.restores), std::to_string(pn.mcu.brownouts),
                 sim::Table::num(pn.mcu.forward_cycles / 1e6, 2),
                 sim::Table::num(pn_streak, 2) + " s"});
  table.add_row({"hibernus (fixed 8 MHz)", std::to_string(fixed.mcu.saves_completed),
                 std::to_string(fixed.mcu.restores), std::to_string(fixed.mcu.brownouts),
                 sim::Table::num(fixed.mcu.forward_cycles / 1e6, 2), "-"});
  std::printf("\n");
  table.print(std::cout);

  // Frequency range exercised by the governor.
  double f_min = 1e12, f_max = 0.0;
  if (freq != nullptr) {
    for (double f : freq->samples()) {
      if (f <= 0.0) continue;
      f_min = std::min(f_min, f);
      f_max = std::max(f_max, f);
    }
  }
  std::printf("\nDFS range exercised: %.0f .. %.0f MHz\n", f_min, f_max);

  std::printf("\nShape checks vs the paper:\n");
  check(f_max > f_min, "frequency gracefully modulated up and down (DFS)");
  check(f_max >= 16.0, "upshifts to high frequency at the gust peak");
  check(f_min <= 2.0, "degrades to low frequency as the gust decays");
  check(pn_streak >= 0.4,
        "a sustained window rides through the AC troughs without interruption");
  check(pn.mcu.saves_completed <= fixed.mcu.saves_completed,
        "power-neutral operation avoids hibernate/restore overheads vs fixed-f");
  check(pn.mcu.forward_cycles > 0.8 * fixed.mcu.forward_cycles,
        "comparable or better forward progress than the fixed configuration");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
