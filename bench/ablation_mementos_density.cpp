// Checkpoint-placement density ablation (the Fig 2 adaptation arc).
//
// Mementos' compile-time instrumentation density trades polling overhead
// against re-execution: polling at every loop boundary catches the supply
// early but taxes every iteration with an ADC conversion; sparse candidates
// (approaching task granularity) poll rarely but replay long stretches of
// work after every outage. The sweep varies the poll stride from 1 (every
// loop) to 256 (nearly function/task-grained) and reports the split.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common_flags.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/workloads/crc32.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct Outcome {
  bool completed = false;
  Seconds t_done = 0.0;
  double overhead_mcycles = 0.0;
  double reexec_mcycles = 0.0;
  double forward_mcycles = 0.0;
  std::uint64_t saves = 0;
};

Outcome run(unsigned stride) {
  core::SystemBuilder builder;
  checkpoint::MementosPolicy::Config config;
  config.mode = checkpoint::MementosPolicy::Mode::loop;
  config.poll_stride = stride;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.4, 0.0, 50.0))
      .capacitance(22e-6)
      .bleed(10000.0)
      .program(std::make_unique<workloads::Crc32Program>(128 * 1024, 5))
      .policy_mementos(config);
  auto system = builder.build();
  const auto result = system.run(40.0);
  Outcome outcome;
  outcome.completed = result.mcu.completed;
  outcome.t_done = result.mcu.completion_time;
  outcome.overhead_mcycles = result.mcu.poll_cycles / 1e6;
  outcome.reexec_mcycles = result.mcu.reexecuted_cycles / 1e6;
  outcome.forward_mcycles = result.mcu.forward_cycles / 1e6;
  outcome.saves = result.mcu.saves_completed;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  // Flagless bench: any argument is a loud error (bench/common_flags.h).
  if (!bench::FlagParser().parse(argc, argv)) return 2;

  std::printf("=== Mementos checkpoint-placement density sweep (CRC-128KiB) ===\n\n");
  std::printf("poll stride 1 = check V_CC at every loop boundary;\n");
  std::printf("larger strides approach task-based granularity (Fig 2's arc).\n\n");

  const std::vector<unsigned> strides = {1, 4, 16, 64, 256};
  sim::Table table({"stride", "done", "t_done (s)", "polls (Mcyc)", "re-exec (Mcyc)",
                    "saves", "overhead+re-exec"});
  Outcome dense, sparse;
  for (unsigned stride : strides) {
    const auto outcome = run(stride);
    table.add_row({std::to_string(stride), outcome.completed ? "yes" : "NO",
                   outcome.completed ? sim::Table::num(outcome.t_done, 2) : "-",
                   sim::Table::num(outcome.overhead_mcycles, 3),
                   sim::Table::num(outcome.reexec_mcycles, 3),
                   std::to_string(outcome.saves),
                   sim::Table::num(outcome.overhead_mcycles + outcome.reexec_mcycles, 3)});
    if (stride == 1) dense = outcome;
    if (stride == 256) sparse = outcome;
  }
  table.print(std::cout);

  std::printf("\nShape checks vs the paper (Mementos downsides, §II.B):\n");
  check(dense.completed, "dense placement completes");
  check(dense.overhead_mcycles > sparse.overhead_mcycles * 4,
        "dense placement pays far more polling overhead (downside 1)");
  check(sparse.reexec_mcycles >= dense.reexec_mcycles,
        "sparse placement re-executes at least as much work (downside 3)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
