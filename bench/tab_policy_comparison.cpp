// §II.B quantitative evaluation (ENSsys'15 [13] style): every checkpointing
// approach on the same intermittent supplies.
//
// For each (source x policy) cell the harness reports: completion, time to
// completion, committed/torn snapshots, restores, forward vs re-executed
// cycles, policy overhead (ADC polls/calibration) and total MCU energy.
// The full grid runs on the parallel sweep engine; the shape claims of the
// paper are then checked: hibernus saves once per outage where Mementos
// saves redundantly and re-executes; the baseline without checkpointing
// makes no forward progress at all.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/workloads/fft.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

struct Cell {
  sim::SimResult result;
  std::uint64_t torn = 0;
};

}  // namespace

int main() {
  std::printf("=== Policy comparison across sources (ENSsys'15-style, FFT-2048) ===\n");

  spec::SystemSpec base;
  base.storage.capacitance = 22e-6;
  base.storage.bleed = 10000.0;
  base.workload.factory = [] { return std::make_unique<workloads::FftProgram>(11, 17); };
  base.sim.t_end = 40.0;

  checkpoint::InterruptPolicy::Config interrupt_config;
  interrupt_config.restore_headroom = 0.3;

  checkpoint::MementosPolicy::Config mementos_loop;
  mementos_loop.mode = checkpoint::MementosPolicy::Mode::loop;
  mementos_loop.poll_stride = 4;
  checkpoint::MementosPolicy::Config mementos_timer;
  mementos_timer.mode = checkpoint::MementosPolicy::Mode::timer;
  mementos_timer.timer_interval = 10e-3;

  sweep::Grid grid(std::move(base));
  grid.axis("source",
            {{"square-10Hz",
              [](spec::SystemSpec& s) {
                s.source = spec::SquareSource{3.3, 10.0, 0.4, 0.0, 50.0};
              }},
             {"sine-4Hz",
              [](spec::SystemSpec& s) { s.source = spec::SineSource{3.3, 4.0}; }},
             {"markov-rf",
              [](spec::SystemSpec& s) {
                s.source = spec::MarkovPower{6e-3, 0.05, 0.05, 77, 40.0};
              }}})
      .axis("policy",
            {{"none (restart)",
              [](spec::SystemSpec& s) { s.policy = spec::NoCheckpoint{}; }},
             {"mementos-loop",
              [mementos_loop](spec::SystemSpec& s) {
                s.policy = spec::Mementos{mementos_loop};
              }},
             {"mementos-timer",
              [mementos_timer](spec::SystemSpec& s) {
                s.policy = spec::Mementos{mementos_timer};
              }},
             {"quickrecall",
              [interrupt_config](spec::SystemSpec& s) {
                s.policy = spec::QuickRecall{interrupt_config};
              }},
             {"nvp",
              [interrupt_config](spec::SystemSpec& s) {
                s.policy = spec::Nvp{interrupt_config};
              }},
             {"hibernus",
              [interrupt_config](spec::SystemSpec& s) {
                s.policy = spec::Hibernus{interrupt_config};
              }},
             {"hibernus++",
              [](spec::SystemSpec& s) { s.policy = spec::HibernusPlusPlus{}; }}});

  const sweep::Runner runner;
  const auto cells = runner.map<Cell>(
      grid, [](const sweep::Point&, core::EnergyDrivenSystem& system,
               const sim::SimResult& result) {
        Cell cell;
        cell.result = result;
        cell.torn = system.mcu().nvm().torn_writes();
        return cell;
      });

  // Row-major order: source outer, policy inner.
  const auto& sources = grid.axes()[0].values;
  const auto& policies = grid.axes()[1].values;
  const auto at = [&](std::size_t s_index, std::size_t p_index) -> const Cell& {
    return cells[s_index * policies.size() + p_index];
  };

  for (std::size_t s = 0; s < sources.size(); ++s) {
    std::printf("\n--- source: %s ---\n", sources[s].label.c_str());
    sim::Table table({"policy", "done", "t_done (s)", "saves", "torn", "restores",
                      "fwd Mcyc", "re-exec Mcyc", "overhead Mcyc", "energy (mJ)"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const Cell& cell = at(s, p);
      const auto& m = cell.result.mcu;
      table.add_row({policies[p].label, m.completed ? "yes" : "NO",
                     m.completed ? sim::Table::num(m.completion_time, 2) : "-",
                     std::to_string(m.saves_completed), std::to_string(cell.torn),
                     std::to_string(m.restores),
                     sim::Table::num(m.forward_cycles / 1e6, 2),
                     sim::Table::num(m.reexecuted_cycles / 1e6, 2),
                     sim::Table::num(m.poll_cycles / 1e6, 2),
                     sim::Table::num(m.energy_total() * 1e3, 2)});
    }
    table.print(std::cout);
  }

  // Select the shape-check cells by axis label, so reordering an axis
  // cannot silently re-aim a check at the wrong cell.
  const auto labelled = [](const std::vector<sweep::AxisValue>& values,
                           const std::string& label) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i].label == label) return i;
    }
    std::fprintf(stderr, "axis value '%s' not found\n", label.c_str());
    std::abort();
  };
  const std::size_t square = labelled(sources, "square-10Hz");
  const Cell& square_none = at(square, labelled(policies, "none (restart)"));
  const Cell& square_mementos = at(square, labelled(policies, "mementos-loop"));
  const Cell& square_qr = at(square, labelled(policies, "quickrecall"));
  const Cell& square_hibernus = at(square, labelled(policies, "hibernus"));

  std::printf("\nShape checks vs the paper (square-10Hz column):\n");
  check(!square_none.result.mcu.completed,
        "without checkpointing the workload never completes (restart loop)");
  check(square_hibernus.result.mcu.completed && square_mementos.result.mcu.completed,
        "both Mementos and hibernus complete the workload");
  check(square_hibernus.result.mcu.saves_completed <
            square_mementos.result.mcu.saves_completed,
        "hibernus commits fewer snapshots than Mementos (one per outage)");
  check(square_hibernus.result.mcu.saves_completed <=
            square_hibernus.result.mcu.brownouts + 1,
        "hibernus: at most one committed snapshot per supply failure");
  check(square_mementos.result.mcu.poll_cycles >
            square_hibernus.result.mcu.poll_cycles,
        "Mementos pays ADC polling overhead; hibernus is interrupt-driven");
  check(square_hibernus.result.mcu.completed &&
            square_qr.result.mcu.completed &&
            square_hibernus.result.mcu.completion_time > 0 &&
            square_qr.result.mcu.completion_time > 0,
        "QuickRecall and hibernus both sustain computation (Eq 5 decides winner)");
  check(square_hibernus.result.mcu.reexecuted_cycles <=
            square_mementos.result.mcu.reexecuted_cycles,
        "late (interrupt-driven) snapshots minimise re-executed work");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
