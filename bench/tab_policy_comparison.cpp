// §II.B quantitative evaluation (ENSsys'15 [13] style): every checkpointing
// approach on the same intermittent supplies.
//
// For each (source x policy) cell the harness reports: completion, time to
// completion, committed/torn snapshots, restores, forward vs re-executed
// cycles, policy overhead (ADC polls/calibration) and total MCU energy.
// The full grid runs on the parallel sweep engine; the shape claims of the
// paper are then checked: hibernus saves once per outage where Mementos
// saves redundantly and re-executes; the baseline without checkpointing
// makes no forward progress at all.
//
// The whole grid is cacheable (every cell is plain spec data — the FFT-2048
// workload is the standard "fft-large" kind, not a factory callback), so
//
//   tab_policy_comparison --cache /tmp/edc-cache    # cold: simulates 21 points
//   tab_policy_comparison --cache /tmp/edc-cache    # warm: simulates 0 points
//
// produces a bit-identical table on the second run while simulating
// nothing. Cache statistics go to stderr, so stdout stays byte-comparable
// between cold and warm runs (scripts/cache_smoke.cmake relies on this).
//
// --trace-dir DIR swaps the synthetic source axis for a measured-dataset
// axis: one grid column per "time,volts" CSV in DIR (label = filename,
// via Grid::voltage_trace_dir_axis), so comparing every policy across a
// directory of recorded harvester traces is a one-liner:
//
//   tab_policy_comparison --trace-dir datasets/office/
//
// Shape checks are skipped in that mode — they are tuned to the synthetic
// sources.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common_flags.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<sweep::Cache> cache;
  const char* trace_dir = nullptr;
  bench::FlagParser flags;
  flags.on_value("--cache", "DIR", [&](const char* v) { cache.emplace(v); return true; })
      .on_value("--trace-dir", "DIR",
                [&](const char* v) { trace_dir = v; return true; });
  if (!flags.parse(argc, argv)) return 2;

  std::printf("=== Policy comparison across sources (ENSsys'15-style, FFT-2048) ===\n");

  spec::SystemSpec base;
  base.storage.capacitance = 22e-6;
  base.storage.bleed = 10000.0;
  base.workload.kind = "fft-large";
  base.workload.seed = 17;
  base.sim.t_end = 40.0;

  checkpoint::InterruptPolicy::Config interrupt_config;
  interrupt_config.restore_headroom = 0.3;

  checkpoint::MementosPolicy::Config mementos_loop;
  mementos_loop.mode = checkpoint::MementosPolicy::Mode::loop;
  mementos_loop.poll_stride = 4;
  checkpoint::MementosPolicy::Config mementos_timer;
  mementos_timer.mode = checkpoint::MementosPolicy::Mode::timer;
  mementos_timer.timer_interval = 10e-3;

  sweep::Grid grid(std::move(base));
  if (trace_dir != nullptr) {
    // Measured-dataset mode: one source column per recorded trace in the
    // directory, everything else identical.
    grid.voltage_trace_dir_axis("source", trace_dir);
  } else {
    grid.axis("source",
              {{"square-10Hz",
                [](spec::SystemSpec& s) {
                  s.source = spec::SquareSource{3.3, 10.0, 0.4, 0.0, 50.0};
                }},
               {"sine-4Hz",
                [](spec::SystemSpec& s) { s.source = spec::SineSource{3.3, 4.0}; }},
               {"markov-rf",
                [](spec::SystemSpec& s) {
                  s.source = spec::MarkovPower{6e-3, 0.05, 0.05, 77, 40.0};
                }}});
  }
  grid.axis("policy",
            {{"none (restart)",
              [](spec::SystemSpec& s) { s.policy = spec::NoCheckpoint{}; }},
             {"mementos-loop",
              [mementos_loop](spec::SystemSpec& s) {
                s.policy = spec::Mementos{mementos_loop};
              }},
             {"mementos-timer",
              [mementos_timer](spec::SystemSpec& s) {
                s.policy = spec::Mementos{mementos_timer};
              }},
             {"quickrecall",
              [interrupt_config](spec::SystemSpec& s) {
                s.policy = spec::QuickRecall{interrupt_config};
              }},
             {"nvp",
              [interrupt_config](spec::SystemSpec& s) {
                s.policy = spec::Nvp{interrupt_config};
              }},
             {"hibernus",
              [interrupt_config](spec::SystemSpec& s) {
                s.policy = spec::Hibernus{interrupt_config};
              }},
             {"hibernus++",
              [](spec::SystemSpec& s) { s.policy = spec::HibernusPlusPlus{}; }}});

  sweep::RunnerOptions options;
  if (cache.has_value()) options.cache = &*cache;
  const sweep::Runner runner(options);
  sweep::RunReport report;
  const auto cells = runner.run(grid, &report);

  // Per-point wall-time summary on stderr (stdout stays byte-comparable
  // across cold/warm runs): on a warm cache these are the points' original
  // simulation costs replayed from the entries.
  double micros_total = 0.0, micros_max = 0.0;
  for (const double m : report.micros) {
    micros_total += m;
    micros_max = std::max(micros_max, m);
  }
  std::fprintf(stderr, "points: %zu, wall time %.0f us total, %.0f us max\n",
               grid.size(), micros_total, micros_max);

  if (cache.has_value()) {
    const sweep::CacheStats stats = cache->stats();
    std::fprintf(stderr,
                 "cache: %llu hits, %llu misses, %llu stored, %llu non-cacheable; "
                 "simulated %llu of %zu points\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.stores),
                 static_cast<unsigned long long>(stats.non_cacheable),
                 static_cast<unsigned long long>(stats.misses + stats.non_cacheable),
                 grid.size());
  }

  // Row-major order: source outer, policy inner.
  const auto& sources = grid.axes()[0].values;
  const auto& policies = grid.axes()[1].values;
  const auto at = [&](std::size_t s_index, std::size_t p_index) -> const sim::SimResult& {
    return cells[s_index * policies.size() + p_index];
  };

  for (std::size_t s = 0; s < sources.size(); ++s) {
    std::printf("\n--- source: %s ---\n", sources[s].label.c_str());
    sim::Table table({"policy", "done", "t_done (s)", "saves", "torn", "restores",
                      "fwd Mcyc", "re-exec Mcyc", "overhead Mcyc", "energy (mJ)"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const sim::SimResult& cell = at(s, p);
      const auto& m = cell.mcu;
      table.add_row({policies[p].label, m.completed ? "yes" : "NO",
                     m.completed ? sim::Table::num(m.completion_time, 2) : "-",
                     std::to_string(m.saves_completed),
                     std::to_string(cell.nvm_torn_writes),
                     std::to_string(m.restores),
                     sim::Table::num(m.forward_cycles / 1e6, 2),
                     sim::Table::num(m.reexecuted_cycles / 1e6, 2),
                     sim::Table::num(m.poll_cycles / 1e6, 2),
                     sim::Table::num(m.energy_total() * 1e3, 2)});
    }
    table.print(std::cout);
  }

  if (trace_dir != nullptr) {
    std::printf("\n(--trace-dir mode: shape checks skipped — they are tuned "
                "for the synthetic sources)\n");
    return 0;
  }

  // Select the shape-check cells by axis label, so reordering an axis
  // cannot silently re-aim a check at the wrong cell.
  const auto labelled = [](const std::vector<sweep::AxisValue>& values,
                           const std::string& label) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i].label == label) return i;
    }
    std::fprintf(stderr, "axis value '%s' not found\n", label.c_str());
    std::abort();
  };
  const std::size_t square = labelled(sources, "square-10Hz");
  const sim::SimResult& square_none = at(square, labelled(policies, "none (restart)"));
  const sim::SimResult& square_mementos = at(square, labelled(policies, "mementos-loop"));
  const sim::SimResult& square_qr = at(square, labelled(policies, "quickrecall"));
  const sim::SimResult& square_hibernus = at(square, labelled(policies, "hibernus"));

  std::printf("\nShape checks vs the paper (square-10Hz column):\n");
  check(!square_none.mcu.completed,
        "without checkpointing the workload never completes (restart loop)");
  check(square_hibernus.mcu.completed && square_mementos.mcu.completed,
        "both Mementos and hibernus complete the workload");
  check(square_hibernus.mcu.saves_completed < square_mementos.mcu.saves_completed,
        "hibernus commits fewer snapshots than Mementos (one per outage)");
  check(square_hibernus.mcu.saves_completed <= square_hibernus.mcu.brownouts + 1,
        "hibernus: at most one committed snapshot per supply failure");
  check(square_mementos.mcu.poll_cycles > square_hibernus.mcu.poll_cycles,
        "Mementos pays ADC polling overhead; hibernus is interrupt-driven");
  check(square_hibernus.mcu.completed && square_qr.mcu.completed &&
            square_hibernus.mcu.completion_time > 0 &&
            square_qr.mcu.completion_time > 0,
        "QuickRecall and hibernus both sustain computation (Eq 5 decides winner)");
  check(square_hibernus.mcu.reexecuted_cycles <= square_mementos.mcu.reexecuted_cycles,
        "late (interrupt-driven) snapshots minimise re-executed work");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
