// §II.B quantitative evaluation (ENSsys'15 [13] style): every checkpointing
// approach on the same intermittent supplies.
//
// For each (policy x source) cell the harness reports: completion, time to
// completion, committed/torn snapshots, restores, forward vs re-executed
// cycles, policy overhead (ADC polls/calibration) and total MCU energy.
// The shape claims of the paper are then checked: hibernus saves once per
// outage where Mementos saves redundantly and re-executes; the baseline
// without checkpointing makes no forward progress at all.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/workloads/fft.h"

using namespace edc;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

enum class Policy { none, mementos_loop, mementos_timer, quickrecall, nvp, hibernus,
                    hibernus_pp };

const char* name_of(Policy policy) {
  switch (policy) {
    case Policy::none: return "none (restart)";
    case Policy::mementos_loop: return "mementos-loop";
    case Policy::mementos_timer: return "mementos-timer";
    case Policy::quickrecall: return "quickrecall";
    case Policy::nvp: return "nvp";
    case Policy::hibernus: return "hibernus";
    case Policy::hibernus_pp: return "hibernus++";
  }
  return "?";
}

struct Cell {
  sim::SimResult result;
  std::uint64_t torn = 0;
};

Cell run(Policy policy, const std::string& source, std::uint64_t seed) {
  core::SystemBuilder builder;
  if (source == "square-10Hz") {
    builder.voltage_source(
        std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.4, 0.0, 50.0));
  } else if (source == "sine-4Hz") {
    builder.sine_source(3.3, 4.0);
  } else {  // markov RF-like supply
    builder.power_source(
        std::make_unique<trace::MarkovOnOffPowerSource>(6e-3, 0.05, 0.05, 77, 40.0));
  }
  builder.capacitance(22e-6)
      .bleed(10000.0)
      .program(std::make_unique<workloads::FftProgram>(11, seed));

  checkpoint::InterruptPolicy::Config interrupt_config;
  interrupt_config.restore_headroom = 0.3;
  switch (policy) {
    case Policy::none:
      builder.policy_none();
      break;
    case Policy::mementos_loop: {
      checkpoint::MementosPolicy::Config config;
      config.mode = checkpoint::MementosPolicy::Mode::loop;
      config.poll_stride = 4;
      builder.policy_mementos(config);
      break;
    }
    case Policy::mementos_timer: {
      checkpoint::MementosPolicy::Config config;
      config.mode = checkpoint::MementosPolicy::Mode::timer;
      config.timer_interval = 10e-3;
      builder.policy_mementos(config);
      break;
    }
    case Policy::quickrecall:
      builder.policy_quickrecall(interrupt_config);
      break;
    case Policy::nvp:
      builder.policy_nvp(interrupt_config);
      break;
    case Policy::hibernus:
      builder.policy_hibernus(interrupt_config);
      break;
    case Policy::hibernus_pp:
      builder.policy_hibernus_pp();
      break;
  }
  auto system = builder.build();
  Cell cell;
  cell.result = system.run(40.0);
  cell.torn = system.mcu().nvm().torn_writes();
  return cell;
}

}  // namespace

int main() {
  std::printf("=== Policy comparison across sources (ENSsys'15-style, FFT-2048) ===\n");

  const std::vector<Policy> policies = {Policy::none, Policy::mementos_loop,
                                        Policy::mementos_timer, Policy::quickrecall,
                                        Policy::nvp, Policy::hibernus,
                                        Policy::hibernus_pp};
  const std::vector<std::string> sources = {"square-10Hz", "sine-4Hz", "markov-rf"};

  // Stash the square-wave cells for the shape checks.
  Cell square_none, square_mementos, square_hibernus, square_qr;

  for (const auto& source : sources) {
    std::printf("\n--- source: %s ---\n", source.c_str());
    sim::Table table({"policy", "done", "t_done (s)", "saves", "torn", "restores",
                      "fwd Mcyc", "re-exec Mcyc", "overhead Mcyc", "energy (mJ)"});
    for (Policy policy : policies) {
      const Cell cell = run(policy, source, 17);
      const auto& m = cell.result.mcu;
      table.add_row({name_of(policy), m.completed ? "yes" : "NO",
                     m.completed ? sim::Table::num(m.completion_time, 2) : "-",
                     std::to_string(m.saves_completed), std::to_string(cell.torn),
                     std::to_string(m.restores),
                     sim::Table::num(m.forward_cycles / 1e6, 2),
                     sim::Table::num(m.reexecuted_cycles / 1e6, 2),
                     sim::Table::num(m.poll_cycles / 1e6, 2),
                     sim::Table::num(m.energy_total() * 1e3, 2)});
      if (source == "square-10Hz") {
        if (policy == Policy::none) square_none = cell;
        if (policy == Policy::mementos_loop) square_mementos = cell;
        if (policy == Policy::hibernus) square_hibernus = cell;
        if (policy == Policy::quickrecall) square_qr = cell;
      }
    }
    table.print(std::cout);
  }

  std::printf("\nShape checks vs the paper (square-10Hz column):\n");
  check(!square_none.result.mcu.completed,
        "without checkpointing the workload never completes (restart loop)");
  check(square_hibernus.result.mcu.completed && square_mementos.result.mcu.completed,
        "both Mementos and hibernus complete the workload");
  check(square_hibernus.result.mcu.saves_completed <
            square_mementos.result.mcu.saves_completed,
        "hibernus commits fewer snapshots than Mementos (one per outage)");
  check(square_hibernus.result.mcu.saves_completed <=
            square_hibernus.result.mcu.brownouts + 1,
        "hibernus: at most one committed snapshot per supply failure");
  check(square_mementos.result.mcu.poll_cycles >
            square_hibernus.result.mcu.poll_cycles,
        "Mementos pays ADC polling overhead; hibernus is interrupt-driven");
  check(square_hibernus.result.mcu.completed &&
            square_qr.result.mcu.completed &&
            square_hibernus.result.mcu.completion_time > 0 &&
            square_qr.result.mcu.completion_time > 0,
        "QuickRecall and hibernus both sustain computation (Eq 5 decides winner)");
  check(square_hibernus.result.mcu.reexecuted_cycles <=
            square_mementos.result.mcu.reexecuted_cycles,
        "late (interrupt-driven) snapshots minimise re-executed work");

  std::printf("\n%s\n", g_failures == 0 ? "ALL SHAPE CHECKS PASSED"
                                        : "SOME SHAPE CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
