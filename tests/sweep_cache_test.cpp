// Cache correctness: a warm-cache rerun is bit-identical to the cold run,
// mutating any spec field or SimConfig knob invalidates exactly that
// point, non-cacheable specs always re-simulate, and SimResult itself
// round-trips through its canonical serialization byte-for-byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "edc/sim/result_io.h"
#include "edc/spec/serialize.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/workloads/program.h"

namespace {

using namespace edc;

// A cheap but non-trivial base: powered DC supply, real checkpointing
// policy, and a short horizon so every test point simulates in
// milliseconds while still booting, executing and saving.
spec::SystemSpec cheap_spec() {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 25.0, 0.5, 0.0, 50.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 20000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = 3;
  s.sim.t_end = 0.4;
  return s;
}

sweep::Grid cheap_grid() {
  sweep::Grid grid(cheap_spec());
  grid.capacitance_axis({10e-6, 22e-6})
      .workload_seed_axis({1, 2});
  return grid;
}

std::filesystem::path fresh_cache_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / ("edc_cache_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::string> serialized_rows(const std::vector<sim::SimResult>& rows) {
  std::vector<std::string> texts;
  texts.reserve(rows.size());
  for (const auto& row : rows) texts.push_back(sim::serialize_result(row));
  return texts;
}

TEST(ResultIo, RoundTripIsByteIdentical) {
  // Probe waveforms and state transitions exercise every section of the
  // result format.
  spec::SystemSpec s = cheap_spec();
  s.sim.probe_interval = 1e-3;
  auto system = spec::instantiate(s);
  const sim::SimResult result = system.run();
  ASSERT_FALSE(result.transitions.empty());
  ASSERT_FALSE(result.probes.names.empty());

  const std::string text = sim::serialize_result(result);
  const sim::SimResult reparsed = sim::parse_result(text);
  EXPECT_EQ(text, sim::serialize_result(reparsed));

  EXPECT_EQ(result.end_time, reparsed.end_time);
  EXPECT_EQ(result.harvested, reparsed.harvested);
  EXPECT_EQ(result.mcu.completed, reparsed.mcu.completed);
  EXPECT_EQ(result.mcu.saves_completed, reparsed.mcu.saves_completed);
  EXPECT_EQ(result.nvm_torn_writes, reparsed.nvm_torn_writes);
  EXPECT_EQ(result.nvm_commits, reparsed.nvm_commits);
  EXPECT_EQ(result.transitions.size(), reparsed.transitions.size());
  EXPECT_EQ(result.probes.names, reparsed.probes.names);
}

TEST(ResultIo, RejectsCorruptText) {
  auto system = spec::instantiate(cheap_spec());
  const std::string text = sim::serialize_result(system.run());
  EXPECT_THROW((void)sim::parse_result(""), canon::FormatError);
  EXPECT_THROW((void)sim::parse_result(text + "junk 1\n"), canon::FormatError);
  std::string unknown = text;
  unknown.insert(unknown.find("harvested"), "surprise 1\n");
  EXPECT_THROW((void)sim::parse_result(unknown), canon::FormatError);
}

TEST(SweepCache, WarmRerunIsBitIdenticalAndSimulatesNothing) {
  const auto dir = fresh_cache_dir("warm");
  const sweep::Grid grid = cheap_grid();

  sweep::Cache cold_cache(dir);
  sweep::RunnerOptions options;
  options.cache = &cold_cache;
  const auto cold = sweep::Runner(options).run(grid);
  const sweep::CacheStats cold_stats = cold_cache.stats();
  EXPECT_EQ(cold_stats.hits, 0u);
  EXPECT_EQ(cold_stats.misses, grid.size());
  EXPECT_EQ(cold_stats.stores, grid.size());

  // A brand-new Cache object over the same directory (a fresh process).
  sweep::Cache warm_cache(dir);
  options.cache = &warm_cache;
  const auto warm = sweep::Runner(options).run(grid);
  const sweep::CacheStats warm_stats = warm_cache.stats();
  EXPECT_EQ(warm_stats.hits, grid.size());
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_EQ(warm_stats.stores, 0u);

  EXPECT_EQ(serialized_rows(cold), serialized_rows(warm));

  // And both match an uncached run bit-for-bit.
  const auto uncached = sweep::Runner().run(grid);
  EXPECT_EQ(serialized_rows(uncached), serialized_rows(warm));
}

TEST(SweepCache, MutatingOneAxisValueInvalidatesExactlyThatPoint) {
  const auto dir = fresh_cache_dir("mutate");

  sweep::Cache cache(dir);
  sweep::RunnerOptions options;
  options.cache = &cache;

  sweep::Grid before(cheap_spec());
  before.capacitance_axis({10e-6, 22e-6, 47e-6});
  (void)sweep::Runner(options).run(before);
  EXPECT_EQ(cache.stats().stores, 3u);

  // Same grid with one axis value changed: the two unchanged points hit,
  // only the new value simulates.
  cache.reset_stats();
  sweep::Grid after(cheap_spec());
  after.capacitance_axis({10e-6, 33e-6, 47e-6});
  (void)sweep::Runner(options).run(after);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SweepCache, AnySimConfigKnobInvalidatesThePoint) {
  const auto dir = fresh_cache_dir("simconfig");
  sweep::Cache cache(dir);
  sweep::RunnerOptions options;
  options.cache = &cache;

  spec::SystemSpec s = cheap_spec();
  (void)sweep::Runner(options).run(sweep::Grid(s));
  EXPECT_EQ(cache.stats().stores, 1u);

  // dt is part of the canonical key even though it is "just" a solver
  // knob — a different step gives a numerically different trajectory.
  cache.reset_stats();
  s.sim.dt = 20e-6;
  (void)sweep::Runner(options).run(sweep::Grid(s));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.reset_stats();
  s.sim.dt = 10e-6;  // back to the original -> warm again
  (void)sweep::Runner(options).run(sweep::Grid(s));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SweepCache, NonCacheableSpecsAlwaysResimulate) {
  const auto dir = fresh_cache_dir("noncacheable");
  sweep::Cache cache(dir);
  sweep::RunnerOptions options;
  options.cache = &cache;

  spec::SystemSpec s = cheap_spec();
  s.workload.kind.clear();
  s.workload.factory = [] { return workloads::make_program("fft-small", 3); };
  ASSERT_FALSE(spec::is_cacheable(s));

  const sweep::Grid grid(s);
  const auto first = sweep::Runner(options).run(grid);
  const auto second = sweep::Runner(options).run(grid);
  const sweep::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.non_cacheable, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.stores, 0u);
  // Determinism still holds — it is only the memoisation that is skipped.
  EXPECT_EQ(serialized_rows(first), serialized_rows(second));
}

TEST(SweepCache, CorruptOrForeignEntriesDegradeToMisses) {
  const auto dir = fresh_cache_dir("corrupt");
  sweep::Cache cache(dir);

  const spec::SystemSpec s = cheap_spec();
  const std::string key = spec::serialize(s);

  auto system = spec::instantiate(s);
  const sim::SimResult result = system.run();
  cache.store(key, result);
  ASSERT_TRUE(cache.load(key).has_value());

  // Truncate the entry on disk: load must miss, not misparse.
  const std::filesystem::path entry = cache.entry_path(key);
  ASSERT_TRUE(std::filesystem::exists(entry));
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << "edc.CacheEntry v1\nspec_bytes 3\nabc";
  }
  EXPECT_FALSE(cache.load(key).has_value());

  // A different spec hashing (hypothetically) to the same file must also
  // miss: simulate a collision by storing entry bytes for another key at
  // our path.
  spec::SystemSpec other = s;
  other.workload.seed += 1;
  const std::string other_key = spec::serialize(other);
  cache.store(other_key, result);
  std::filesystem::copy_file(cache.entry_path(other_key), entry,
                             std::filesystem::copy_options::overwrite_existing);
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(cache.load(other_key).has_value());
}

TEST(SweepCache, WallTimeSurvivesTheEntryRoundTrip) {
  const auto dir = fresh_cache_dir("micros");
  sweep::Cache cache(dir);
  const spec::SystemSpec s = cheap_spec();
  const std::string key = spec::serialize(s);
  auto system = spec::instantiate(s);
  cache.store(key, system.run(), 1234.5);
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->micros, 1234.5);
}

TEST(SweepCache, RunnerReportsTheOriginalCostOnWarmRuns) {
  // A warm re-run replays each point's *first* simulation cost from the
  // entry (not the near-zero load time) — the input a cost-weighted shard
  // assignment of the warm grid needs.
  const auto dir = fresh_cache_dir("warm_micros");
  const sweep::Grid grid = cheap_grid();

  sweep::Cache cold_cache(dir);
  sweep::RunnerOptions options;
  options.cache = &cold_cache;
  sweep::RunReport cold_report;
  (void)sweep::Runner(options).run(grid, &cold_report);
  ASSERT_EQ(cold_report.micros.size(), grid.size());
  for (const double m : cold_report.micros) EXPECT_GT(m, 0.0);
  EXPECT_EQ(cold_report.fresh_count(), grid.size());

  sweep::Cache warm_cache(dir);
  options.cache = &warm_cache;
  sweep::RunReport warm_report;
  (void)sweep::Runner(options).run(grid, &warm_report);
  EXPECT_EQ(warm_cache.stats().hits, grid.size());
  EXPECT_EQ(warm_report.warm_count(), grid.size());
  // The canonical double encoding round-trips exactly, so the replayed
  // costs match the measured ones bit for bit.
  EXPECT_EQ(warm_report.micros, cold_report.micros);
}

TEST(SweepCache, FsckAcceptsHealthyAndFlagsCorruptEntries) {
  const auto dir = fresh_cache_dir("fsck");
  sweep::Cache cache(dir);
  const spec::SystemSpec s = cheap_spec();
  const std::string key = spec::serialize(s);
  auto system = spec::instantiate(s);
  cache.store(key, system.run(), 10.0);

  const std::filesystem::path entry = cache.entry_path(key);
  EXPECT_EQ(sweep::Cache::fsck_entry(entry), "");

  // A renamed entry no longer matches its embedded key's hash.
  const std::filesystem::path renamed =
      entry.parent_path() / "0000000000000000.edcres";
  std::filesystem::copy_file(entry, renamed);
  EXPECT_NE(sweep::Cache::fsck_entry(renamed), "");

  // Truncation is undecodable.
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << "edc.CacheEntry v2\nmicros 1\nspec_bytes 3\nab";
  }
  EXPECT_NE(sweep::Cache::fsck_entry(entry), "");
}

TEST(SweepCache, MapBypassesTheCache) {
  const auto dir = fresh_cache_dir("map");
  sweep::Cache cache(dir);
  sweep::RunnerOptions options;
  options.cache = &cache;
  const sweep::Grid grid(cheap_spec());

  const auto rows = sweep::Runner(options).map<int>(
      grid, [](const sweep::Point&, core::EnergyDrivenSystem&,
               const sim::SimResult&) { return 1; });
  EXPECT_EQ(rows.size(), 1u);
  const sweep::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.stores, 0u);
}

}  // namespace
