// Tests for the simulation loop, probes, tables and plots (edc/sim).
#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "edc/core/system.h"
#include "edc/sim/ascii_plot.h"
#include "edc/sim/table.h"
#include "edc/trace/csv.h"
#include "edc/workloads/crc32.h"

namespace edc::sim {
namespace {

core::EnergyDrivenSystem make_system(Seconds probe_interval = 0.0) {
  core::SystemBuilder builder;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.3, 0.0, 50.0))
      .capacitance(22e-6)
      .bleed(10000.0)
      .program(std::make_unique<workloads::Crc32Program>(64 * 1024, 3))
      .policy_hibernus();
  if (probe_interval > 0.0) builder.probe(probe_interval);
  return builder.build();
}

TEST(Simulator, EnergyLedgerResidualIsTiny) {
  auto system = make_system();
  const auto result = system.run(5.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_GT(result.harvested, 0.0);
  EXPECT_GT(result.consumed, 0.0);
  EXPECT_LT(std::abs(result.ledger_residual()), 1e-6 + 1e-6 * result.harvested);
}

TEST(Simulator, ProbesRecordedWhenRequested) {
  auto system = make_system(1e-3);
  const auto result = system.run(5.0);
  ASSERT_NE(result.probes.find("vcc"), nullptr);
  ASSERT_NE(result.probes.find("freq_mhz"), nullptr);
  ASSERT_NE(result.probes.find("state"), nullptr);
  ASSERT_NE(result.probes.find("power_mw"), nullptr);
  const auto* vcc = result.probes.find("vcc");
  EXPECT_GT(vcc->size(), 100u);
  EXPECT_GE(vcc->min(), 0.0);
  EXPECT_LT(vcc->max(), 3.5);
}

TEST(Simulator, NoProbesByDefault) {
  auto system = make_system();
  const auto result = system.run(5.0);
  EXPECT_EQ(result.probes.find("vcc"), nullptr);
}

TEST(Simulator, ProbeTimeBaseMatchesSampleInstants) {
  // Probe samples are end-of-step values — the first one is captured at the
  // end of the step that began at t = 0 — so the waveform must start at
  // t = dt, not t = 0 (the historical off-by-one skewed every trace by one
  // step).
  auto system = make_system(1e-3);
  const auto result = system.run(5.0);
  const auto* vcc = result.probes.find("vcc");
  ASSERT_NE(vcc, nullptr);
  const Seconds dt = sim::SimConfig{}.dt;  // make_system keeps the default dt
  EXPECT_DOUBLE_EQ(vcc->t0(), dt);
  EXPECT_DOUBLE_EQ(result.probes.find("state")->t0(), dt);
}

TEST(Simulator, QuiescentFastPathIsBitExact) {
  // A duty-cycled RF field leaves long spans with the node clamped at 0 V
  // and the MCU off — exactly what the fast path skips. The skipped steps
  // must not change a single bit of the outcome.
  auto run_with_fast_path = [](bool enabled) {
    core::SystemBuilder builder;
    sim::SimConfig config;
    config.t_end = 4.0;
    config.quiescent_fast_path = enabled;
    trace::RfFieldSource::Params rf;
    rf.field_power = 2e-3;
    rf.burst_length = 0.5;
    rf.burst_period = 2.0;
    builder.power_source(std::make_unique<trace::RfFieldSource>(rf, 11, 4.0))
        .capacitance(22e-6)
        .bleed(5000.0)
        .workload("crc", 3)
        .policy_hibernus()
        .sim_config(config)
        .probe(1e-3);
    auto system = builder.build();
    return system.run(4.0);
  };
  const auto fast = run_with_fast_path(true);
  const auto slow = run_with_fast_path(false);
  EXPECT_EQ(fast.end_time, slow.end_time);
  EXPECT_EQ(fast.harvested, slow.harvested);
  EXPECT_EQ(fast.consumed, slow.consumed);
  EXPECT_EQ(fast.dissipated, slow.dissipated);
  EXPECT_EQ(fast.stored_final, slow.stored_final);
  EXPECT_EQ(fast.mcu.completed, slow.mcu.completed);
  EXPECT_EQ(fast.mcu.completion_time, slow.mcu.completion_time);
  EXPECT_EQ(fast.mcu.boots, slow.mcu.boots);
  EXPECT_EQ(fast.mcu.brownouts, slow.mcu.brownouts);
  EXPECT_EQ(fast.mcu.saves_completed, slow.mcu.saves_completed);
  EXPECT_EQ(fast.mcu.energy_total(), slow.mcu.energy_total());
  EXPECT_EQ(fast.mcu.time_off, slow.mcu.time_off);
  EXPECT_EQ(fast.transitions.size(), slow.transitions.size());
  const auto* fast_vcc = fast.probes.find("vcc");
  const auto* slow_vcc = slow.probes.find("vcc");
  ASSERT_NE(fast_vcc, nullptr);
  ASSERT_NE(slow_vcc, nullptr);
  ASSERT_EQ(fast_vcc->size(), slow_vcc->size());
  EXPECT_EQ(fast_vcc->samples(), slow_vcc->samples());
}

TEST(Simulator, TransitionsIncludeSaveAndRestore) {
  auto system = make_system();
  const auto result = system.run(5.0);
  bool saw_saving = false, saw_restoring = false, saw_off = false;
  for (const auto& change : result.transitions) {
    if (change.to == mcu::McuState::saving) saw_saving = true;
    if (change.to == mcu::McuState::restoring) saw_restoring = true;
    if (change.to == mcu::McuState::off) saw_off = true;
    EXPECT_GE(change.time, 0.0);
    EXPECT_LE(change.time, result.end_time + 1e-9);
  }
  EXPECT_TRUE(saw_saving);
  EXPECT_TRUE(saw_restoring);
  EXPECT_TRUE(saw_off);
}

TEST(Simulator, StopsOnCompletion) {
  auto system = make_system();
  const auto result = system.run(100.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_LT(result.end_time, 10.0);
}

TEST(Simulator, HonoursHorizonWhenIncomplete) {
  core::SystemBuilder builder;
  auto system = builder
                    .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                        3.3, 20.0, 0.5, 0.0, 50.0))
                    .capacitance(22e-6)
                    .bleed(2000.0)
                    .workload("fft", 3)
                    .policy_none()  // never completes across outages
                    .build();
  const auto result = system.run(1.0);
  EXPECT_FALSE(result.mcu.completed);
  EXPECT_NEAR(result.end_time, 1.0, 1e-3);
}

TEST(Simulator, StepSizeConvergence) {
  // Halving dt should not change the outcome qualitatively: completion and
  // save counts stay stable.
  auto run_with_dt = [](Seconds dt) {
    core::SystemBuilder builder;
    sim::SimConfig config;
    config.dt = dt;
    builder
        .voltage_source(
            std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.3, 0.0, 50.0))
        .capacitance(22e-6)
        .bleed(10000.0)
        .program(std::make_unique<workloads::Crc32Program>(64 * 1024, 3))
        .policy_hibernus()
        .sim_config(config);
    auto system = builder.build();
    return system.run(5.0);
  };
  const auto coarse = run_with_dt(2e-5);
  const auto fine = run_with_dt(5e-6);
  ASSERT_TRUE(coarse.mcu.completed);
  ASSERT_TRUE(fine.mcu.completed);
  EXPECT_NEAR(coarse.mcu.completion_time, fine.mcu.completion_time,
              0.15 * fine.mcu.completion_time);
  EXPECT_LE(
      std::abs(static_cast<long>(coarse.mcu.saves_completed) -
               static_cast<long>(fine.mcu.saves_completed)),
      2);
}

// -------------------------------------------------------- CSV playback -----

TEST(TracePlayback, RecordedCsvTraceReproducesTheLiveRun) {
  // The workflow behind the paper's dataset DOI: record a source trace,
  // export it as CSV, load it back, and drive the same system from the
  // recorded file. The played-back run must complete with the identical
  // digest (and near-identical timing, up to trace sampling).
  const auto turbine = trace::WindTurbineSource::single_gust();
  const auto recorded = trace::Waveform::sample(
      [&](Seconds t) { return turbine.open_circuit_voltage(t); }, 0.0, 8.0, 160001);

  std::stringstream csv;
  trace::write_csv(csv, "v_oc", recorded);
  const auto loaded = trace::read_csv(csv);

  auto run_from = [](std::unique_ptr<trace::VoltageSource> source) {
    core::SystemBuilder builder;
    builder.voltage_source(std::move(source))
        .capacitance(47e-6)
        .bleed(10000.0)
        .program(std::make_unique<workloads::Crc32Program>(32 * 1024, 3))
        .policy_hibernus();
    auto system = builder.build();
    auto result = system.run(8.0);
    return std::make_pair(result.mcu.completed ? 1 : 0,
                          result.mcu.completed ? system.program().result_digest() : 0);
  };

  const auto live = run_from(std::make_unique<trace::WaveformVoltageSource>(
      recorded, 220.0, "live"));
  const auto playback = run_from(std::make_unique<trace::WaveformVoltageSource>(
      loaded, 220.0, "playback"));
  ASSERT_EQ(live.first, 1);
  ASSERT_EQ(playback.first, 1);
  EXPECT_EQ(live.second, playback.second);
}

// ----------------------------------------------------------------- Table ---

TEST(Table, FormatsAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"bb", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EngineeringFormat) {
  EXPECT_EQ(Table::eng(4.7e-6, "F", 1), "4.7 uF");
  EXPECT_EQ(Table::eng(2.2e3, "Hz", 1), "2.2 kHz");
  EXPECT_EQ(Table::eng(0.0, "J", 1), "0 J");
}

// ------------------------------------------------------------ AsciiPlot ----

TEST(AsciiPlot, RendersWaveform) {
  const auto wave = trace::Waveform::sample(
      [](Seconds t) { return std::sin(2 * M_PI * t); }, 0.0, 1.0, 101);
  std::ostringstream out;
  PlotOptions options;
  options.title = "test";
  options.width = 60;
  options.height = 10;
  plot(out, "sine", wave, options);
  const std::string text = out.str();
  EXPECT_NE(text.find("test"), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
  // 10 data rows plus axis/legend lines.
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 10);
}

TEST(AsciiPlot, MarkersDrawn) {
  const auto wave = trace::Waveform::sample(
      [](Seconds t) { return 2.0 + std::sin(2 * M_PI * t); }, 0.0, 1.0, 101);
  std::ostringstream out;
  PlotOptions options;
  options.width = 60;
  options.height = 12;
  plot_with_markers(out, "vcc", wave, {{2.5, "VH"}, {2.9, "VR"}}, options);
  const std::string text = out.str();
  EXPECT_NE(text.find("VH"), std::string::npos);
  EXPECT_NE(text.find("VR"), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);
}

}  // namespace
}  // namespace edc::sim
