// Sweep-service suite: wire-protocol round-trips and strict rejection of
// malformed frames, Engine cold/warm/single-flight/deadline semantics,
// socket-level end-to-end byte identity, bounded-queue backpressure, and
// graceful degradation under an injected fault storm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "edc/serve/protocol.h"
#include "edc/serve/service.h"
#include "edc/serve/socket.h"
#include "edc/sim/result_io.h"
#include "edc/spec/serialize.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/fault_injector.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

namespace {

using namespace edc;
namespace fs = std::filesystem;

spec::SystemSpec cheap_spec(std::uint64_t seed = 3) {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 25.0, 0.5, 0.0, 50.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 20000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = seed;
  s.sim.t_end = 0.3;
  return s;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("edc_serve_" + name);
  fs::remove_all(dir);
  return dir;
}

std::string serial_row(const spec::SystemSpec& s) {
  sweep::RunnerOptions options;
  options.threads = 1;
  return sim::serialize_result(sweep::Runner(options).run(sweep::Grid(s)).at(0));
}

std::uint64_t stat_of(const std::string& stats_text, const std::string& key) {
  const std::string prefix = key + ' ';
  std::size_t pos = 0;
  while (pos < stats_text.size()) {
    const std::size_t end = stats_text.find('\n', pos);
    const std::string line = stats_text.substr(pos, end - pos);
    if (line.rfind(prefix, 0) == 0) {
      return std::strtoull(line.c_str() + prefix.size(), nullptr, 10);
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return 0;
}

TEST(ServeProtocol, RequestRoundTripsThroughTheCodec) {
  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.deadline_ms = 1234.5;
  request.points = {spec::serialize(cheap_spec(1)), "raw\nbytes with\nnewlines",
                    ""};
  serve::StringSource in(serve::encode_request(request));
  std::string error;
  const auto decoded = serve::read_request(in, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(decoded->op, serve::Request::Op::kRun);
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, 1234.5);
  EXPECT_EQ(decoded->points, request.points);

  for (const auto op : {serve::Request::Op::kStats, serve::Request::Op::kPing,
                        serve::Request::Op::kShutdown}) {
    serve::Request simple;
    simple.op = op;
    serve::StringSource simple_in(serve::encode_request(simple));
    const auto simple_decoded = serve::read_request(simple_in, &error);
    ASSERT_TRUE(simple_decoded.has_value()) << error;
    EXPECT_EQ(simple_decoded->op, op);
    EXPECT_TRUE(simple_decoded->points.empty());
  }
}

TEST(ServeProtocol, ResponseRoundTripsThroughTheCodec) {
  serve::Response ok;
  ok.status = serve::Response::Status::kOk;
  ok.rows = {"row one\n", "", "binary\0ish"};
  ok.rows[2].push_back('\0');
  ok.stats_text = "warm 2\nsimulated 1\n";
  serve::StringSource in(serve::encode_response(ok));
  std::string error;
  auto decoded = serve::read_response(in, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(decoded->status, serve::Response::Status::kOk);
  EXPECT_EQ(decoded->rows, ok.rows);
  EXPECT_EQ(decoded->stats_text, ok.stats_text);

  serve::Response busy;
  busy.status = serve::Response::Status::kBusy;
  serve::StringSource busy_in(serve::encode_response(busy));
  decoded = serve::read_response(busy_in, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, serve::Response::Status::kBusy);

  serve::Response failed;
  failed.status = serve::Response::Status::kError;
  failed.error = "deadline exceeded \"while\"\nwaiting";
  serve::StringSource failed_in(serve::encode_response(failed));
  decoded = serve::read_response(failed_in, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, serve::Response::Status::kError);
  EXPECT_EQ(decoded->error, failed.error);
}

TEST(ServeProtocol, MalformedFramesAreRejectedLoudlyAndBounded) {
  const auto rejects = [](const std::string& frame) {
    serve::StringSource in(frame);
    std::string error;
    const auto decoded = serve::read_request(in, &error);
    EXPECT_FALSE(decoded.has_value());
    EXPECT_FALSE(error.empty());
  };
  rejects("");                                    // empty
  rejects("not the magic\nop ping\nend\n");       // bad magic
  rejects("edc.serve v1\nop explode\nend\n");     // unknown op
  rejects("edc.serve v1\nop run\npoints x\nend\n");  // malformed count
  rejects("edc.serve v1\nop run\npoints 1\npoint_bytes 10\nshort");  // short block
  rejects("edc.serve v1\nop run\npoints 0\n");    // missing end
  rejects("edc.serve v1\nop run\ndeadline_ms -5\npoints 0\nend\n");  // bad deadline
  // Oversized counts and blocks are rejected BEFORE allocation.
  rejects("edc.serve v1\nop run\npoints " +
          std::to_string(serve::kMaxPoints + 1) + "\nend\n");
  rejects("edc.serve v1\nop run\npoints 1\npoint_bytes " +
          std::to_string(serve::kMaxBlockBytes + 1) + "\nx\nend\n");
  // A well-formed frame with trailing garbage is detectable via exhausted().
  serve::StringSource in("edc.serve v1\nop ping\nend\ntrailing junk\n");
  std::string error;
  ASSERT_TRUE(serve::read_request(in, &error).has_value());
  EXPECT_FALSE(in.exhausted());
}

TEST(ServeEngine, ColdThenWarmIsByteIdenticalAndSkipsTheSimulator) {
  sweep::Cache cache(fresh_dir("engine_warm"));
  serve::ServiceOptions options;
  options.cache = &cache;
  serve::Engine engine(options);

  serve::Request request;
  request.op = serve::Request::Op::kRun;
  std::vector<std::string> reference;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    request.points.push_back(spec::serialize(cheap_spec(seed)));
    reference.push_back(serial_row(cheap_spec(seed)));
  }

  const auto cold = engine.execute(request);
  ASSERT_EQ(cold.status, serve::Response::Status::kOk) << cold.error;
  EXPECT_EQ(cold.rows, reference);
  EXPECT_EQ(stat_of(cold.stats_text, "warm"), 0u);
  EXPECT_EQ(stat_of(cold.stats_text, "simulated"), 3u);

  const auto warm = engine.execute(request);
  ASSERT_EQ(warm.status, serve::Response::Status::kOk) << warm.error;
  EXPECT_EQ(warm.rows, reference);
  EXPECT_EQ(stat_of(warm.stats_text, "warm"), 3u);
  EXPECT_EQ(stat_of(warm.stats_text, "simulated"), 0u);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.points, 6u);
  EXPECT_EQ(stats.warm_hits, 3u);
  EXPECT_EQ(stats.simulated, 3u);
}

TEST(ServeEngine, DuplicatePointsInsideOneRequestSimulateOnce) {
  sweep::Cache cache(fresh_dir("engine_dup"));
  serve::ServiceOptions options;
  options.cache = &cache;
  serve::Engine engine(options);

  const std::string point = spec::serialize(cheap_spec(31));
  const std::string reference = serial_row(cheap_spec(31));
  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.points = {point, point, point};
  const auto response = engine.execute(request);
  ASSERT_EQ(response.status, serve::Response::Status::kOk) << response.error;
  for (const auto& row : response.rows) EXPECT_EQ(row, reference);
  EXPECT_EQ(stat_of(response.stats_text, "simulated"), 1u);
  EXPECT_EQ(stat_of(response.stats_text, "merged"), 2u);
}

TEST(ServeEngine, SingleFlightMergesConcurrentIdenticalPoints) {
  // The owner's simulation is slowed to 150 ms; a follower arriving 30 ms
  // in must wait on the flight and reuse its row (merged), not simulate.
  sweep::Cache cache(fresh_dir("engine_flight"));
  sweep::FaultPlan plan;
  plan.seed = 5;
  plan.slow_point = 1.0;
  plan.slow_millis = 150.0;
  sweep::FaultInjector chaos(plan);
  cache.set_fault_injector(&chaos);
  serve::ServiceOptions options;
  options.cache = &cache;
  options.fault_injector = &chaos;
  options.point_timeout_ms = 5000.0;  // follower waits, never requeues
  serve::Engine engine(options);

  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.points.push_back(spec::serialize(cheap_spec(41)));
  const std::string reference = serial_row(cheap_spec(41));

  serve::Response owner_response;
  std::thread owner([&] { owner_response = engine.execute(request); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto follower_response = engine.execute(request);
  owner.join();

  ASSERT_EQ(owner_response.status, serve::Response::Status::kOk);
  ASSERT_EQ(follower_response.status, serve::Response::Status::kOk);
  EXPECT_EQ(owner_response.rows.at(0), reference);
  EXPECT_EQ(follower_response.rows.at(0), reference);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.simulated + stats.warm_hits, 1u)
      << "the duplicate point must not simulate twice";
  EXPECT_EQ(stats.merged, 1u);
  EXPECT_EQ(stats.requeued, 0u);
}

TEST(ServeEngine, WatchdogRequeuesFollowersStuckBehindASlowOwner) {
  // Owner slowed to 300 ms but the point timeout is 60 ms: the follower
  // must give up on the flight (stuck) and simulate the point itself.
  sweep::Cache cache(fresh_dir("engine_stuck"));
  sweep::FaultPlan plan;
  plan.seed = 6;
  plan.slow_point = 1.0;
  plan.slow_millis = 300.0;
  sweep::FaultInjector chaos(plan);
  cache.set_fault_injector(&chaos);
  serve::ServiceOptions options;
  options.cache = &cache;
  options.fault_injector = &chaos;
  options.point_timeout_ms = 60.0;
  serve::Engine engine(options);

  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.points.push_back(spec::serialize(cheap_spec(51)));
  const std::string reference = serial_row(cheap_spec(51));

  serve::Response owner_response;
  std::thread owner([&] { owner_response = engine.execute(request); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto follower_response = engine.execute(request);
  owner.join();

  ASSERT_EQ(owner_response.status, serve::Response::Status::kOk);
  ASSERT_EQ(follower_response.status, serve::Response::Status::kOk);
  EXPECT_EQ(owner_response.rows.at(0), reference);
  EXPECT_EQ(follower_response.rows.at(0), reference);
  EXPECT_GE(engine.stats().requeued, 1u);
}

TEST(ServeEngine, DeadlineExpiryAnswersALoudError) {
  // slow 200 ms + kill-on-first-attempt + 100 ms deadline: attempt one
  // burns the deadline and dies, the retry loop notices and reports.
  sweep::FaultPlan plan;
  plan.seed = 7;
  plan.slow_point = 1.0;
  plan.slow_millis = 200.0;
  plan.kill_worker = 1.0;
  sweep::FaultInjector chaos(plan);
  serve::ServiceOptions options;
  options.fault_injector = &chaos;
  serve::Engine engine(options);

  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.deadline_ms = 100.0;
  request.points.push_back(spec::serialize(cheap_spec(61)));
  const auto response = engine.execute(request);
  EXPECT_EQ(response.status, serve::Response::Status::kError);
  EXPECT_NE(response.error.find("deadline"), std::string::npos)
      << response.error;
  EXPECT_EQ(engine.stats().deadline_expired, 1u);
  EXPECT_EQ(engine.stats().errors, 1u);
}

TEST(ServeEngine, NonCanonicalPointsAreRejectedUpFront) {
  serve::Engine engine(serve::ServiceOptions{});
  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.points = {"this is not a spec"};
  const auto response = engine.execute(request);
  EXPECT_EQ(response.status, serve::Response::Status::kError);
  EXPECT_NE(response.error.find("canonical"), std::string::npos);

  serve::Request empty;
  empty.op = serve::Request::Op::kRun;
  const auto ok = engine.execute(empty);
  EXPECT_EQ(ok.status, serve::Response::Status::kOk);
  EXPECT_TRUE(ok.rows.empty());
}

TEST(ServeEngine, QuarantinesCorruptEntriesAndStillAnswersCorrectly) {
  // A cache entry corrupted on disk behind the service's back: the next
  // request quarantines it, re-simulates, and the response bytes never
  // waver.
  sweep::Cache cache(fresh_dir("engine_corrupt"));
  serve::ServiceOptions options;
  options.cache = &cache;
  serve::Engine engine(options);

  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.points.push_back(spec::serialize(cheap_spec(71)));
  const std::string reference = serial_row(cheap_spec(71));
  ASSERT_EQ(engine.execute(request).status, serve::Response::Status::kOk);

  {  // Bit-rot the stored entry.
    std::ofstream out(cache.entry_path(request.points[0]),
                      std::ios::binary | std::ios::trunc);
    out << "rotten";
  }
  const auto healed = engine.execute(request);
  ASSERT_EQ(healed.status, serve::Response::Status::kOk) << healed.error;
  EXPECT_EQ(healed.rows.at(0), reference);
  EXPECT_EQ(stat_of(healed.stats_text, "simulated"), 1u);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  // Third time: the re-stored entry is warm again.
  const auto warm = engine.execute(request);
  EXPECT_EQ(stat_of(warm.stats_text, "warm"), 1u);
  EXPECT_EQ(warm.rows.at(0), reference);
}

TEST(ServeService, EndToEndOverSocketsColdWarmPingStatsShutdown) {
  sweep::Cache cache(fresh_dir("socket_e2e"));
  serve::ServiceOptions options;
  options.cache = &cache;
  serve::Service service(options, 0);  // ephemeral port
  service.start();
  const std::uint16_t port = service.port();
  ASSERT_NE(port, 0);

  serve::Request ping;
  ping.op = serve::Request::Op::kPing;
  std::string error;
  auto response = serve::call_service(port, ping, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->status, serve::Response::Status::kOk);

  serve::Request run;
  run.op = serve::Request::Op::kRun;
  run.points = {spec::serialize(cheap_spec(81)), spec::serialize(cheap_spec(82))};
  const std::vector<std::string> reference = {serial_row(cheap_spec(81)),
                                              serial_row(cheap_spec(82))};
  response = serve::call_service(port, run, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->status, serve::Response::Status::kOk) << response->error;
  EXPECT_EQ(response->rows, reference);

  response = serve::call_service(port, run, &error);  // warm round trip
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->rows, reference);
  EXPECT_EQ(stat_of(response->stats_text, "warm"), 2u);

  serve::Request stats_op;
  stats_op.op = serve::Request::Op::kStats;
  response = serve::call_service(port, stats_op, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_GE(stat_of(response->stats_text, "requests"), 3u);
  EXPECT_EQ(stat_of(response->stats_text, "warm_hits"), 2u);

  serve::Request shutdown;
  shutdown.op = serve::Request::Op::kShutdown;
  response = serve::call_service(port, shutdown, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->status, serve::Response::Status::kOk);
  service.wait();  // the shutdown op stops the daemon; wait() returns
}

TEST(ServeService, FullQueueAnswersBusyInsteadOfGrowing) {
  // queue_capacity 0: every accepted connection exceeds the bound, so the
  // accept loop answers `busy` immediately — deterministic backpressure.
  serve::ServiceOptions options;
  options.queue_capacity = 0;
  options.request_workers = 1;
  serve::Service service(options, 0);
  service.start();

  serve::Request ping;
  ping.op = serve::Request::Op::kPing;
  std::string error;
  const auto response = serve::call_service(service.port(), ping, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->status, serve::Response::Status::kBusy);
  EXPECT_GE(service.stats().busy, 1u);
}

TEST(ServeService, MalformedBytesCostOneErrorReplyNeverTheDaemon) {
  serve::ServiceOptions options;
  serve::Service service(options, 0);
  service.start();

  serve::Socket socket = serve::connect_local(service.port());
  ASSERT_TRUE(socket.valid());
  serve::Stream stream(std::move(socket));
  ASSERT_TRUE(stream.write_all("GET / HTTP/1.1\r\n\r\n"));
  std::string error;
  const auto response = serve::read_response(stream, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->status, serve::Response::Status::kError);
  EXPECT_NE(response->error.find("malformed"), std::string::npos);

  // The daemon survived: a clean ping still answers.
  serve::Request ping;
  ping.op = serve::Request::Op::kPing;
  const auto alive = serve::call_service(service.port(), ping, &error);
  ASSERT_TRUE(alive.has_value()) << error;
  EXPECT_EQ(alive->status, serve::Response::Status::kOk);
}

TEST(ServeService, SurvivesAFaultStormWithByteIdenticalRows) {
  // Injected cache chaos + killed workers under concurrent duplicate
  // clients: every ok response must match the clean serial reference.
  sweep::Cache cache(fresh_dir("socket_storm"));
  sweep::FaultPlan plan;
  plan.seed = 8;
  plan.read_error = 0.3;
  plan.truncate_read = 0.3;
  plan.write_error = 0.2;
  plan.kill_worker = 0.5;
  sweep::FaultInjector chaos(plan);
  cache.set_fault_injector(&chaos);
  serve::ServiceOptions options;
  options.cache = &cache;
  options.fault_injector = &chaos;
  options.request_workers = 2;
  options.max_attempts = 6;
  serve::Service service(options, 0);
  service.start();
  const std::uint16_t port = service.port();

  serve::Request run;
  run.op = serve::Request::Op::kRun;
  std::vector<std::string> reference;
  for (std::uint64_t seed : {91u, 92u, 93u, 94u}) {
    run.points.push_back(spec::serialize(cheap_spec(seed)));
    reference.push_back(serial_row(cheap_spec(seed)));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        std::string error;
        const auto response = serve::call_service(port, run, &error);
        if (!response || response->status != serve::Response::Status::kOk ||
            response->rows != reference) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
