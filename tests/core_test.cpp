// Tests for the taxonomy engine and the system-builder facade (edc/core).
#include <gtest/gtest.h>

#include "edc/core/system.h"
#include "edc/core/taxonomy.h"

namespace edc::core {
namespace {

// ------------------------------------------------------------ Taxonomy -----

SystemDescriptor find(const std::string& name) {
  for (const auto& d : canonical_catalogue()) {
    if (d.name == name) return d;
  }
  ADD_FAILURE() << "missing catalogue entry " << name;
  return {};
}

TEST(Taxonomy, DesktopIsEnergyNeutralOnly) {
  const auto c = classify(find("desktop-pc"));
  EXPECT_TRUE(c.energy_neutral);
  EXPECT_FALSE(c.transient);
  EXPECT_FALSE(c.power_neutral);
  EXPECT_FALSE(c.energy_driven);
}

TEST(Taxonomy, SmartphoneIsEnergyNeutralOnly) {
  const auto c = classify(find("smartphone"));
  EXPECT_TRUE(c.energy_neutral);
  EXPECT_FALSE(c.transient);
  EXPECT_FALSE(c.energy_driven);
}

TEST(Taxonomy, LaptopWithHibernationIsTransientButNotEnergyDriven) {
  const auto c = classify(find("laptop-hibernate"));
  EXPECT_TRUE(c.energy_neutral);
  EXPECT_TRUE(c.transient);
  EXPECT_FALSE(c.energy_driven);  // not designed around harvesting
}

TEST(Taxonomy, KansalWsnIsEnergyNeutralNotEnergyDriven) {
  // Fig 2 places the energy-neutral WSN on the traditional side: plenty of
  // added storage makes the harvester look like a battery.
  const auto c = classify(find("wsn-kansal[3]"));
  EXPECT_TRUE(c.energy_neutral);
  EXPECT_FALSE(c.transient);
  EXPECT_FALSE(c.power_neutral);  // adaptation is slow/buffered, not Eq 3
  EXPECT_FALSE(c.energy_driven);
}

TEST(Taxonomy, HibernusFamilyIsTransientEnergyDriven) {
  for (const char* name : {"mementos[7]", "quickrecall[8]", "hibernus[9]",
                           "hibernus++[2]", "nvp[10]"}) {
    const auto c = classify(find(name));
    EXPECT_TRUE(c.transient) << name;
    EXPECT_TRUE(c.energy_driven) << name;
    EXPECT_FALSE(c.energy_neutral) << name;
    EXPECT_TRUE(c.at_practical_minimum) << name;
  }
}

TEST(Taxonomy, TaskBasedSystemsAreTransientEnergyDriven) {
  for (const char* name : {"wispcam[4]", "debs-burst[5]", "monjolo[6]"}) {
    const auto c = classify(find(name));
    EXPECT_TRUE(c.transient) << name;
    EXPECT_TRUE(c.energy_driven) << name;
  }
}

TEST(Taxonomy, PnMpsocIsPowerNeutralNotTransient) {
  const auto c = classify(find("pn-mpsoc[11]"));
  EXPECT_TRUE(c.power_neutral);
  EXPECT_TRUE(c.energy_neutral);  // paper: it sits on the energy-neutral axis
  EXPECT_FALSE(c.transient);
  EXPECT_TRUE(c.energy_driven);
}

TEST(Taxonomy, HibernusPnIsTransientAndPowerNeutral) {
  const auto c = classify(find("hibernus-pn[14]"));
  EXPECT_TRUE(c.transient);
  EXPECT_TRUE(c.power_neutral);
  EXPECT_TRUE(c.energy_driven);
}

TEST(Taxonomy, PowerNeutralRequiresSmallStorage) {
  SystemDescriptor d;
  d.name = "big-buffer-modulating";
  d.storage = 100.0;  // 100 J buffer
  d.modulates_power = true;
  d.adaptation = AdaptationKind::continuous;
  d.harvesting_in_design = true;
  d.added_storage = true;
  EXPECT_FALSE(classify(d).power_neutral);
  d.storage = 1e-3;
  EXPECT_TRUE(classify(d).power_neutral);
}

TEST(Taxonomy, StorageCoordinateIsLog10) {
  SystemDescriptor d;
  d.storage = 1e-3;
  EXPECT_NEAR(classify(d).storage_log10_j, -3.0, 1e-9);
}

TEST(Taxonomy, CatalogueCoversAllAdaptationKinds) {
  bool none = false, task = false, continuous = false;
  for (const auto& d : canonical_catalogue()) {
    none |= d.adaptation == AdaptationKind::none;
    task |= d.adaptation == AdaptationKind::task_based;
    continuous |= d.adaptation == AdaptationKind::continuous;
  }
  EXPECT_TRUE(none);
  EXPECT_TRUE(task);
  EXPECT_TRUE(continuous);
}

// ------------------------------------------------------------- Builder -----

TEST(Builder, QuickstartTwoLiner) {
  // The Fig 6 promise: wrap any workload in a couple of lines.
  auto system = SystemBuilder().sine_source(3.3, 2.0).workload("fft-small").build();
  const auto result = system.run(10.0);
  EXPECT_TRUE(result.mcu.completed);
}

TEST(Builder, RequiresSource) {
  SystemBuilder builder;
  builder.workload("crc");
  EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(Builder, RequiresWorkload) {
  SystemBuilder builder;
  builder.sine_source(3.3, 2.0);
  EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(Builder, DefaultPolicyIsHibernus) {
  auto system = SystemBuilder().sine_source(3.3, 2.0).workload("crc").build();
  EXPECT_EQ(system.policy_name(), "hibernus");
}

TEST(Builder, CustomProgramAndPolicy) {
  struct CountingPolicy final : checkpoint::PolicyBase {
    int boots = 0;
    void on_boot(mcu::Mcu& mcu, Seconds t) override {
      ++boots;
      mcu.start_program_fresh(t);
    }
    [[nodiscard]] std::string name() const override { return "counting"; }
  };
  auto policy = std::make_unique<CountingPolicy>();
  auto* policy_ptr = policy.get();
  auto system = SystemBuilder()
                    .dc_source(3.3)
                    .capacitance(47e-6)
                    .program(workloads::make_program("sense", 3))
                    .policy(std::move(policy))
                    .build();
  const auto result = system.run(5.0);
  EXPECT_TRUE(result.mcu.completed);
  EXPECT_EQ(policy_ptr->boots, 1);
  EXPECT_EQ(system.policy_name(), "counting");
}

TEST(Builder, HibernusDefaultsToNodeCapacitance) {
  auto system = SystemBuilder()
                    .sine_source(3.3, 2.0)
                    .capacitance(100e-6)
                    .workload("crc")
                    .policy_hibernus()
                    .build();
  const auto& policy =
      dynamic_cast<const checkpoint::InterruptPolicy&>(system.policy());
  // Threshold for 100 uF should sit very close to v_min (lots of decay
  // energy available).
  EXPECT_LT(policy.hibernate_threshold(), 2.0);
}

TEST(Builder, WindSourceRunsTransientWorkload) {
  auto system = SystemBuilder()
                    .wind_source(7, 30.0)
                    .capacitance(22e-6)
                    .workload("sense", 3)
                    .policy_hibernus()
                    .build();
  const auto result = system.run(30.0);
  // The wind gusts must power at least some execution.
  EXPECT_GT(result.mcu.time_active, 0.0);
}

TEST(Builder, ReusableForSweeps) {
  for (Farads c : {10e-6, 22e-6, 47e-6}) {
    SystemBuilder builder;
    auto system = builder.sine_source(3.3, 2.0).capacitance(c).workload("crc", 3)
                      .policy_hibernus().build();
    const auto result = system.run(10.0);
    EXPECT_TRUE(result.mcu.completed) << c;
  }
}

}  // namespace
}  // namespace edc::core
