// Shard equivalence: for several grid shapes and every N in {1, 2, 3, 7},
// the merged union of the k/N shard CSVs is byte-identical to the
// unsharded serial run, and the merge rejects incomplete or inconsistent
// partitions loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "edc/sim/result_io.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/report.h"
#include "edc/sweep/runner.h"
#include "edc/sweep/shard.h"

namespace {

using namespace edc;

spec::SystemSpec cheap_spec() {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 25.0, 0.5, 0.0, 50.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 20000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = 3;
  s.sim.t_end = 0.25;
  return s;
}

sweep::Grid one_axis_grid() {
  sweep::Grid grid(cheap_spec());
  grid.capacitance_axis({4.7e-6, 10e-6, 22e-6, 33e-6, 47e-6});
  return grid;
}

sweep::Grid two_axis_grid() {
  sweep::Grid grid(cheap_spec());
  grid.capacitance_axis({10e-6, 22e-6, 47e-6})
      .axis("policy",
            {{"hibernus",
              [](spec::SystemSpec& s) { s.policy = spec::Hibernus{}; }},
             {"none", [](spec::SystemSpec& s) { s.policy = spec::NoCheckpoint{}; }},
             {"quickrecall",
              [](spec::SystemSpec& s) { s.policy = spec::QuickRecall{}; }},
             {"nvp", [](spec::SystemSpec& s) { s.policy = spec::Nvp{}; }}});
  return grid;
}

sweep::Grid three_axis_grid() {
  sweep::Grid grid(cheap_spec());
  grid.capacitance_axis({10e-6, 22e-6})
      .workload_seed_axis({1, 2, 3})
      .axis("fast-path",
            {{"on", [](spec::SystemSpec& s) { s.sim.quiescent_fast_path = true; }},
             {"off",
              [](spec::SystemSpec& s) { s.sim.quiescent_fast_path = false; }}});
  return grid;
}

std::string full_csv(const sweep::Grid& grid,
                     const std::vector<sim::SimResult>& rows) {
  std::ostringstream out;
  sweep::write_csv(out, grid, rows);
  return out.str();
}

std::string shard_csv(const sweep::Grid& grid, const sweep::Shard& shard,
                      const std::vector<sim::SimResult>& rows) {
  std::ostringstream out;
  sweep::write_shard_csv(out, grid, shard, rows);
  return out.str();
}

TEST(Shard, ParseAndOwnership) {
  const sweep::Shard shard = sweep::Shard::parse("2/7");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 7u);
  EXPECT_EQ(shard.to_string(), "2/7");
  EXPECT_FALSE(shard.is_full());
  EXPECT_TRUE(sweep::Shard{}.is_full());

  EXPECT_THROW((void)sweep::Shard::parse("3"), std::invalid_argument);
  EXPECT_THROW((void)sweep::Shard::parse("/2"), std::invalid_argument);
  EXPECT_THROW((void)sweep::Shard::parse("1/"), std::invalid_argument);
  EXPECT_THROW((void)sweep::Shard::parse("a/b"), std::invalid_argument);
  EXPECT_THROW((void)sweep::Shard::parse("2/2"), std::invalid_argument);
  EXPECT_THROW((void)sweep::Shard::parse("0/0"), std::invalid_argument);

  // Every point is owned by exactly one shard, and owned_points matches
  // owns()/owned_count() for awkward sizes.
  for (std::size_t grid_size : {1u, 5u, 12u, 13u}) {
    for (std::size_t count : {1u, 2u, 3u, 7u}) {
      std::vector<int> owners(grid_size, 0);
      for (std::size_t k = 0; k < count; ++k) {
        const sweep::Shard s{k, count};
        const auto points = s.owned_points(grid_size);
        EXPECT_EQ(points.size(), s.owned_count(grid_size));
        for (std::size_t p : points) {
          EXPECT_TRUE(s.owns(p));
          owners[p] += 1;
        }
      }
      for (std::size_t p = 0; p < grid_size; ++p) {
        EXPECT_EQ(owners[p], 1) << "point " << p << " with N=" << count;
      }
    }
  }
}

TEST(Shard, MergedShardsAreByteIdenticalToSerialRun) {
  const sweep::Runner runner;
  const std::vector<sweep::Grid> grids = {one_axis_grid(), two_axis_grid(),
                                          three_axis_grid()};
  for (std::size_t g = 0; g < grids.size(); ++g) {
    const sweep::Grid& grid = grids[g];
    const auto serial_rows = runner.run(grid);
    const std::string serial_text = full_csv(grid, serial_rows);

    for (std::size_t count : {1u, 2u, 3u, 7u}) {
      SCOPED_TRACE("grid " + std::to_string(g) + " N=" + std::to_string(count));
      std::vector<std::string> shard_texts;
      for (std::size_t k = 0; k < count; ++k) {
        const sweep::Shard shard{k, count};
        const auto rows = runner.run_shard(grid, shard);

        // Row payloads match the serial run bit-for-bit at the owned
        // global indices.
        const auto owned = shard.owned_points(grid.size());
        ASSERT_EQ(rows.size(), owned.size());
        for (std::size_t pos = 0; pos < owned.size(); ++pos) {
          EXPECT_EQ(sim::serialize_result(rows[pos]),
                    sim::serialize_result(serial_rows[owned[pos]]));
        }

        shard_texts.push_back(shard_csv(grid, shard, rows));
      }

      std::ostringstream merged;
      sweep::merge_shard_csvs(shard_texts, merged);
      EXPECT_EQ(merged.str(), serial_text);
    }
  }
}

TEST(Shard, MergeRejectsBrokenPartitions) {
  const sweep::Runner runner;
  const sweep::Grid grid = one_axis_grid();

  const sweep::Shard s0{0, 2};
  const sweep::Shard s1{1, 2};
  const std::string text0 = shard_csv(grid, s0, runner.run_shard(grid, s0));
  const std::string text1 = shard_csv(grid, s1, runner.run_shard(grid, s1));

  std::ostringstream sink;
  // Missing shard.
  EXPECT_THROW(sweep::merge_shard_csvs({text0}, sink), std::invalid_argument);
  // Duplicate shard.
  EXPECT_THROW(sweep::merge_shard_csvs({text0, text0}, sink),
               std::invalid_argument);
  // Mixed partition sizes.
  const sweep::Shard t0{0, 3};
  const std::string text_t0 = shard_csv(grid, t0, runner.run_shard(grid, t0));
  EXPECT_THROW(sweep::merge_shard_csvs({text_t0, text1}, sink),
               std::invalid_argument);
  // Disagreeing headers (different grid axes).
  const sweep::Grid other = two_axis_grid();
  const sweep::Shard o1{1, 2};
  const std::string text_other = shard_csv(other, o1, runner.run_shard(other, o1));
  EXPECT_THROW(sweep::merge_shard_csvs({text0, text_other}, sink),
               std::invalid_argument);
  // Not a shard CSV at all.
  EXPECT_THROW(sweep::merge_shard_csvs({"hello\n"}, sink), std::invalid_argument);
  EXPECT_THROW(sweep::merge_shard_csvs({}, sink), std::invalid_argument);
}

TEST(Shard, ShardedRunnerComposesWithEmptyShards) {
  // N greater than the point count: the excess shards own nothing and
  // write header-only files that still merge cleanly.
  sweep::Grid grid(cheap_spec());
  grid.capacitance_axis({10e-6, 22e-6});  // 2 points, N = 3
  const sweep::Runner runner;
  const std::string serial_text = full_csv(grid, runner.run(grid));

  std::vector<std::string> shard_texts;
  for (std::size_t k = 0; k < 3; ++k) {
    const sweep::Shard shard{k, 3};
    const auto rows = runner.run_shard(grid, shard);
    if (k == 2) EXPECT_TRUE(rows.empty());
    shard_texts.push_back(shard_csv(grid, shard, rows));
  }
  std::ostringstream merged;
  sweep::merge_shard_csvs(shard_texts, merged);
  EXPECT_EQ(merged.str(), serial_text);
}

// ------------------------------------- cost-weighted shard scheduling ----

TEST(ShardAssignment, StridingMatchesShardOwnership) {
  const auto assignment = sweep::ShardAssignment::striding(11, 3);
  ASSERT_EQ(assignment.count(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(assignment.owned[k], (sweep::Shard{k, 3}.owned_points(11)));
  }
}

TEST(ShardAssignment, BalancedBeatsStridingOnSkewedCosts) {
  // One pathological straggler point plus uniform cheap points: striding
  // stacks the straggler on top of a full stride of cheap work, LPT gives
  // the straggler a shard of its own.
  std::vector<double> micros(12, 100.0);
  micros[0] = 1000.0;
  const auto lpt = sweep::ShardAssignment::balanced(micros, 3);
  const auto strided = sweep::ShardAssignment::striding(micros.size(), 3);
  EXPECT_LT(lpt.makespan(micros), strided.makespan(micros));
  // LPT bound: within 4/3 of the ideal split (here the straggler alone).
  EXPECT_LE(lpt.makespan(micros), 1000.0 + 100.0);

  // Every point owned exactly once.
  std::vector<std::size_t> all;
  for (const auto& points : lpt.owned) {
    EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
    all.insert(all.end(), points.begin(), points.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::size_t> expected(micros.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);

  // Deterministic: the identical timing vector yields the identical plan.
  const auto again = sweep::ShardAssignment::balanced(micros, 3);
  EXPECT_EQ(lpt.owned, again.owned);
}

TEST(ShardAssignment, FallsBackToStridingWithoutTimings) {
  // Timings absent entirely, or incomplete (a never-simulated point has no
  // positive cost): both degrade to index striding.
  const auto empty = sweep::ShardAssignment::balanced({}, 2);
  EXPECT_EQ(empty.owned, sweep::ShardAssignment::striding(0, 2).owned);

  std::vector<double> partial(6, 50.0);
  partial[4] = 0.0;
  const auto fallback = sweep::ShardAssignment::balanced(partial, 2);
  EXPECT_EQ(fallback.owned, sweep::ShardAssignment::striding(6, 2).owned);
}

TEST(ShardAssignment, AssignmentShardCsvsMergeByteIdenticallyToSerialRun) {
  // The cost-weighted CSV loop: LPT slices written as v2 assignment shard
  // CSVs must merge into the exact write_csv bytes of the unsharded run,
  // for skewed partitions striding could never produce.
  const sweep::Grid grid = two_axis_grid();
  const sweep::Runner runner;
  sweep::RunReport report;
  const auto serial = runner.run(grid, &report);
  const std::string expected = full_csv(grid, serial);

  for (std::size_t count : {1u, 2u, 3u, 5u}) {
    const auto assignment = sweep::ShardAssignment::balanced(report.micros, count);
    std::vector<std::string> shard_texts;
    for (std::size_t k = 0; k < assignment.count(); ++k) {
      const auto rows = runner.run_assignment(grid, assignment, k);
      std::ostringstream out;
      sweep::write_assignment_shard_csv(out, grid, assignment, k, rows);
      shard_texts.push_back(out.str());
    }
    std::ostringstream merged;
    sweep::merge_shard_csvs(shard_texts, merged);
    EXPECT_EQ(merged.str(), expected) << "N=" << count;

    // Assignment shards still fail loudly on incomplete partitions.
    if (count > 1) {
      std::ostringstream sink;
      EXPECT_THROW(sweep::merge_shard_csvs({shard_texts[0]}, sink),
                   std::invalid_argument);
    }
  }
}

TEST(ShardAssignment, RunAssignmentMatchesRunBitIdentically) {
  // The cost-weighted re-run path: rows of every LPT slice must be the
  // exact rows of the unsharded run, in each slice's ascending order.
  const sweep::Grid grid = two_axis_grid();
  const sweep::Runner runner;
  sweep::RunReport report;
  const auto serial = runner.run(grid, &report);
  ASSERT_EQ(report.micros.size(), grid.size());

  const auto assignment = sweep::ShardAssignment::balanced(report.micros, 3);
  std::size_t covered = 0;
  for (std::size_t k = 0; k < assignment.count(); ++k) {
    const auto rows = runner.run_assignment(grid, assignment, k);
    ASSERT_EQ(rows.size(), assignment.owned[k].size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(sim::serialize_result(rows[i]),
                sim::serialize_result(serial[assignment.owned[k][i]]))
          << "shard " << k << " row " << i;
    }
    covered += rows.size();
  }
  EXPECT_EQ(covered, grid.size());
}

}  // namespace
