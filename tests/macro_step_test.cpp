// Differential suite for the quiescent-state engine
// (sim/quiescent_engine) — analytic macro-stepping of MCU-off spans *and*
// comparator-watched sleep/wait/done spans.
//
// The macro path replaces the fine path's Euler substepping through
// quiescent spans with the closed-form decay and driver activity hints, so
// it is *not* bit-identical — but it must agree with the fine-stepped
// reference within the fine path's own discretisation error:
//
//   * end state (voltage / stored energy) within a few macro_v_tol,
//   * discrete event counts (boots, brownouts, saves, restores) equal,
//   * transition times matching to a handful of dt,
//   * probe/governor schedules in lock-step (same sample counts),
//   * the energy ledger closing exactly (macro spans book a zero-residual
//     split by construction).
//
// Also covers the building blocks: the DecaySolution closed form against
// numerical integration, the ActivityIndex over recorded traces, the
// never-overclaim contract of every quiescent_until/bounded_until/
// dormant_until override, and bit-identity of the (hint-accelerated)
// quiescent fast path when macro-stepping stays off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/circuit/comparator.h"
#include "edc/circuit/rectifier.h"
#include "edc/circuit/supply_driver.h"
#include "edc/circuit/supply_node.h"
#include "edc/spec/system_spec.h"
#include "edc/core/system.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/voltage_sources.h"
#include "edc/trace/waveform.h"

namespace {

using namespace edc;

// ------------------------------------------------------------ DecaySolution

TEST(DecaySolution, MatchesNumericalIntegrationWithBleedAndLoad) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::DecaySolution decay = node.decay_from(2.5, 5e-6);

  // Reference: forward Euler at a step far finer than the simulator's.
  double v = 2.5;
  double load_energy = 0.0;
  const double h = 1e-7;
  const double horizon = 0.25;  // ~1.8 tau
  for (double t = 0.0; t < horizon; t += h) {
    const double i_bleed = v / 3000.0;
    const double i_load = v > 0.0 ? 5e-6 : 0.0;
    load_energy += i_load * v * h;
    v = std::max(v - (i_bleed + i_load) / 47e-6 * h, 0.0);
  }
  EXPECT_NEAR(decay.voltage_at(horizon), v, 1e-4);
  EXPECT_NEAR(decay.load_energy(horizon), load_energy, 1e-9);
}

TEST(DecaySolution, PureLeakageRampReachesGroundExactly) {
  circuit::SupplyNode node(10e-6);  // no bleed
  const circuit::DecaySolution decay = node.decay_from(1.0, 1e-6);
  const Seconds t_zero = decay.time_to_zero();
  EXPECT_NEAR(t_zero, 10e-6 * 1.0 / 1e-6, 1e-9);  // C*V/I = 10 s
  EXPECT_DOUBLE_EQ(decay.voltage_at(t_zero * 2.0), 0.0);
  // Past ground the load draws nothing more: energy saturates at the full
  // stored energy 0.5*C*V0^2.
  EXPECT_NEAR(decay.load_energy(t_zero * 2.0), 0.5 * 10e-6, 1e-12);
}

TEST(DecaySolution, BleedOnlyNeverTouchesGround) {
  circuit::SupplyNode node(10e-6);
  node.set_bleed(10000.0);
  const circuit::DecaySolution decay = node.decay_from(2.0, 0.0);
  EXPECT_TRUE(std::isinf(decay.time_to_zero()));
  EXPECT_GT(decay.voltage_at(10.0), 0.0);
  EXPECT_DOUBLE_EQ(decay.load_energy(10.0), 0.0);
}

/// Numeric reference for time_to_reach: bisection on the (monotone)
/// closed-form trajectory itself.
Seconds bisect_time_to_reach(const circuit::DecaySolution& decay, Volts v,
                             Seconds hi) {
  Seconds lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Seconds mid = 0.5 * (lo + hi);
    if (decay.voltage_at(mid) > v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TEST(DecaySolution, TimeToReachMatchesNumericRootFinding) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::DecaySolution decay = node.decay_from(2.5, 5e-6);
  for (const Volts v : {2.2, 1.8, 1.0, 0.3, 0.05}) {
    const Seconds analytic = decay.time_to_reach(v);
    const Seconds numeric = bisect_time_to_reach(decay, v, 10.0);
    EXPECT_NEAR(analytic, numeric, 1e-9) << "target " << v;
    // Inverse property: following the trajectory to the solved instant
    // lands on the target voltage.
    EXPECT_NEAR(decay.voltage_at(analytic), v, 1e-9) << "target " << v;
  }
}

TEST(DecaySolution, TimeToReachPureRampAndEdgeCases) {
  circuit::SupplyNode node(10e-6);  // no bleed: constant-current ramp
  const circuit::DecaySolution ramp = node.decay_from(2.0, 1e-6);
  EXPECT_NEAR(ramp.time_to_reach(1.0), 10e-6 * 1.0 / 1e-6, 1e-12);  // C*dV/I
  EXPECT_DOUBLE_EQ(ramp.time_to_reach(2.0), 0.0);  // already there
  EXPECT_DOUBLE_EQ(ramp.time_to_reach(2.5), 0.0);  // above the start
  EXPECT_NEAR(ramp.time_to_reach(0.0), ramp.time_to_zero(), 1e-12);

  // Exponential tail: the asymptote is ground, so 0 V is never reached.
  node.set_bleed(10000.0);
  const circuit::DecaySolution tail = node.decay_from(2.0, 0.0);
  EXPECT_TRUE(std::isinf(tail.time_to_reach(0.0)));
  EXPECT_NEAR(tail.time_to_reach(1.0), 10e-6 * 10000.0 * std::log(2.0), 1e-9);

  // No bleed, no load: the voltage holds forever.
  circuit::SupplyNode held(10e-6);
  EXPECT_TRUE(std::isinf(held.decay_from(2.0, 0.0).time_to_reach(1.0)));
}

TEST(ComparatorBank, PlanFallingCrossingFindsTheHighestArmedTrip) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::DecaySolution decay = node.decay_from(3.0, 1e-6);

  circuit::ComparatorBank bank;
  bank.add(circuit::Comparator("VR", 2.5, 0.0));
  bank.add(circuit::Comparator("VH", 2.0, 0.0));
  bank.reset(3.0);  // both outputs high: armed for falling trips

  Volts trip = 0.0;
  const Seconds t = bank.plan_falling_crossing(decay, &trip);
  EXPECT_DOUBLE_EQ(trip, 2.5);  // the decay hits VR first
  EXPECT_NEAR(t, decay.time_to_reach(2.5), 1e-12);

  // Fire VR (output low): the next crossing is VH.
  (void)bank.at(0).update(3.0, 0.0, 2.4, 1.0);
  const Seconds t2 = bank.plan_falling_crossing(decay, &trip);
  EXPECT_DOUBLE_EQ(trip, 2.0);
  EXPECT_NEAR(t2, decay.time_to_reach(2.0), 1e-12);

  // A decay starting below every armed trip can never fire: planning from
  // v0 = 1.5 with both comparators latched low claims no crossing.
  bank.reset(1.0);
  EXPECT_TRUE(std::isinf(bank.plan_falling_crossing(node.decay_from(1.5, 1e-6))));
}

TEST(DecaySolution, LedgerSplitClosesExactly) {
  circuit::SupplyNode node(22e-6);
  node.set_bleed(5000.0);
  const circuit::DecaySolution decay = node.decay_from(1.7, 0.05e-6);
  const Seconds span = 0.4;
  const Volts v1 = decay.voltage_at(span);
  const Joules delta = 0.5 * 22e-6 * (1.7 * 1.7 - v1 * v1);
  const Joules consumed = decay.load_energy(span);
  // consumed + dissipated == delta by construction; consumed must fit.
  EXPECT_LE(consumed, delta + 1e-15);
  EXPECT_GE(consumed, 0.0);
}

// ------------------------------------------------------------ ActivityIndex

TEST(ActivityIndex, FindsZeroSpansBetweenBursts) {
  // 0 on [0,1), 2.0 on [1,2), 0 on [2,4] — sampled at 10 Hz.
  const auto wave = trace::Waveform::sample(
      [](Seconds t) { return (t >= 1.0 && t < 2.0) ? 2.0 : 0.0; }, 0.0, 4.0, 41);
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.segment_count(), 1u);
  // Inside the leading zero span: quiet until just before the burst (the
  // cell whose right endpoint is the first nonzero sample is active).
  const Seconds u = index.zero_until(0.2);
  EXPECT_GE(u, 0.8);
  EXPECT_LE(u, 1.0);
  // Inside the burst: no claim.
  EXPECT_EQ(index.zero_until(1.5), 1.5);
  // In the trailing zero span: quiet forever (the trace ends at zero and
  // clamps there).
  EXPECT_TRUE(std::isinf(index.zero_until(3.0)));
}

TEST(ActivityIndex, EdgeClampingExtendsActivityBeyondTheSpan) {
  // Ends on a nonzero sample: the clamp keeps it active forever after.
  const trace::Waveform wave(0.0, 1.0, {0.0, 0.0, 1.5});
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.zero_until(5.0), 5.0);
  // And the leading zero region is still quiet.
  const Seconds u = index.zero_until(0.0);
  EXPECT_GE(u, 1.0);
  EXPECT_LE(u, 2.0);
}

TEST(ActivityIndex, AllZeroTraceIsQuietForever) {
  const trace::Waveform wave(0.0, 1.0, {0.0, 0.0, 0.0});
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.segment_count(), 0u);
  EXPECT_TRUE(std::isinf(index.zero_until(-3.0)));
  EXPECT_TRUE(std::isinf(index.zero_until(100.0)));
}

TEST(ActivityIndex, NonzeroHeadClampsActiveBeforeTheSpan) {
  const trace::Waveform wave(1.0, 1.0, {2.0, 0.0, 0.0});
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.zero_until(0.0), 0.0);  // clamped to the nonzero head
  EXPECT_TRUE(std::isinf(index.zero_until(2.5)));
}

// ------------------------------------------- never-overclaim contracts ----

/// Samples the driver densely over every span its quiescent_until claims
/// quiet (for node voltages at and above the floor) and fails on any
/// injected current — the one property macro-stepping correctness rests on.
void expect_never_overclaims(const circuit::SupplyDriver& driver, Volts v_floor,
                             Seconds horizon) {
  const int kQueries = 400;
  const int kSamplesPerSpan = 250;
  for (int q = 0; q < kQueries; ++q) {
    const Seconds t = horizon * static_cast<double>(q) / kQueries;
    const Seconds u = driver.quiescent_until(v_floor, t);
    ASSERT_GE(u, t);
    const Seconds end = std::min(u, horizon + 1.0);
    if (end <= t) continue;
    for (int s = 0; s < kSamplesPerSpan; ++s) {
      // Half-open span: sample strictly before u.
      const Seconds instant =
          t + (end - t) * (static_cast<double>(s) / kSamplesPerSpan);
      for (const Volts v : {v_floor, v_floor + 0.7, v_floor + 3.0}) {
        ASSERT_EQ(driver.current_into(v, instant), 0.0)
            << "driver '" << driver.name() << "' claimed quiet at t=" << t
            << " until u=" << u << " but conducts at " << instant << " (v=" << v
            << ")";
      }
    }
  }
}

TEST(QuiescentUntil, NullDriverIsQuietForever) {
  const circuit::NullDriver driver;
  EXPECT_TRUE(std::isinf(driver.quiescent_until(0.0, 12.5)));
}

TEST(QuiescentUntil, RectifiedSquareNeverOverclaims) {
  const trace::SquareVoltageSource source(3.3, 7.0, 0.35, 0.0, 50.0);
  const circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  expect_never_overclaims(driver, 0.0, 1.0);
  expect_never_overclaims(driver, 1.4, 1.0);
}

TEST(QuiescentUntil, RectifiedSineNeverOverclaimsHalfAndFullWave) {
  const trace::SineVoltageSource source(3.3, 6.0);
  const circuit::RectifiedSourceDriver half(source, circuit::RectifierParams{});
  expect_never_overclaims(half, 0.0, 1.0);
  expect_never_overclaims(half, 2.1, 1.0);
  circuit::RectifierParams full;
  full.kind = circuit::RectifierKind::full_wave;
  const circuit::RectifiedSourceDriver full_driver(source, full);
  expect_never_overclaims(full_driver, 0.0, 1.0);
  expect_never_overclaims(full_driver, 2.1, 1.0);
}

TEST(QuiescentUntil, OffsetSineNeverOverclaims) {
  // A DC offset moves both band edges into play.
  const trace::SineVoltageSource source(1.2, 3.0, 1.0);
  const circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  expect_never_overclaims(driver, 0.0, 2.0);
  expect_never_overclaims(driver, 0.9, 2.0);
}

TEST(QuiescentUntil, HarvesterRfFieldNeverOverclaims) {
  trace::RfFieldSource::Params rf;
  rf.burst_length = 0.25;
  rf.burst_period = 1.5;
  rf.jitter = 0.3;
  const trace::RfFieldSource source(rf, 42, 8.0);
  const circuit::HarvesterPowerDriver driver(source, {});
  expect_never_overclaims(driver, 0.0, 8.0);
}

TEST(QuiescentUntil, HarvesterMarkovNeverOverclaims) {
  const trace::MarkovOnOffPowerSource source(1e-3, 0.05, 0.4, 7, 6.0);
  const circuit::HarvesterPowerDriver driver(source, {});
  expect_never_overclaims(driver, 0.0, 6.0);
}

TEST(QuiescentUntil, HarvesterSolarNightNeverOverclaims) {
  trace::OutdoorSolarSource::Params params;
  const trace::OutdoorSolarSource source(params, 3, 2);
  const circuit::HarvesterPowerDriver driver(source, {});
  // Query across the two modelled days plus the permanent night beyond.
  const int kQueries = 300;
  for (int q = 0; q < kQueries; ++q) {
    const Seconds t = 3.0 * 86400.0 * q / kQueries;
    const Seconds u = driver.quiescent_until(0.0, t);
    ASSERT_GE(u, t);
    if (u <= t) continue;
    const Seconds end = std::min(u, 3.0 * 86400.0);
    for (int s = 0; s < 200; ++s) {
      const Seconds instant = t + (end - t) * (s / 200.0);
      ASSERT_EQ(driver.current_into(0.0, instant), 0.0) << "t=" << t << " u=" << u;
    }
  }
}

TEST(QuiescentUntil, TraceBackedSourcesNeverOverclaim) {
  const auto envelope = trace::Waveform::sample(
      [](Seconds t) {
        const double cycle = t - std::floor(t / 2.0) * 2.0;
        return cycle < 0.4 ? 3.0 : 0.0;
      },
      0.0, 8.0, 8001);
  const trace::WaveformVoltageSource vsource(envelope, 50.0);
  const circuit::RectifiedSourceDriver vdriver(vsource, circuit::RectifierParams{});
  expect_never_overclaims(vdriver, 0.0, 8.0);

  const trace::WaveformPowerSource psource(
      envelope.map([](double v) { return v * 1e-3; }));
  const circuit::HarvesterPowerDriver pdriver(psource, {});
  expect_never_overclaims(pdriver, 0.0, 8.0);
}

// ------------------------------------------------- macro vs fine runs -----

spec::SystemSpec square_brownout_spec() {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 2.0, 0.3, 0.0, 50.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 5000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = 3;
  s.sim.t_end = 4.0;
  s.sim.stop_on_completion = false;  // exercise every brown-out tail
  return s;
}

spec::SystemSpec rf_duty_cycle_spec() {
  spec::SystemSpec s;
  trace::RfFieldSource::Params rf;
  rf.field_power = 2e-3;
  rf.burst_length = 0.4;
  rf.burst_period = 2.5;
  s.source = spec::RfFieldPower{rf, 11, 10.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 5000.0;
  s.workload.kind = "crc";
  s.workload.seed = 3;
  s.sim.t_end = 10.0;
  s.sim.stop_on_completion = false;
  return s;
}

spec::SystemSpec trace_source_spec() {
  // A recorded bursty open-circuit voltage with exact zero gaps.
  const auto wave = trace::Waveform::sample(
      [](Seconds t) {
        const double cycle = t - std::floor(t / 2.0) * 2.0;
        return cycle < 0.5 ? 3.3 : 0.0;
      },
      0.0, 6.0, 60001);
  spec::SystemSpec s;
  s.source = spec::VoltageTraceSource{wave, 50.0, "burst-trace"};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 8000.0;
  s.workload.kind = "crc";
  s.workload.seed = 5;
  s.sim.t_end = 6.0;
  s.sim.stop_on_completion = false;
  return s;
}

struct Pair {
  sim::SimResult fine;
  sim::SimResult macro;
};

Pair run_pair(spec::SystemSpec s) {
  s.sim.macro_stepping = false;
  auto fine_system = spec::instantiate(s);
  Pair pair;
  pair.fine = fine_system.run();
  s.sim.macro_stepping = true;
  auto macro_system = spec::instantiate(s);
  pair.macro = macro_system.run();
  return pair;
}

/// The documented macro-vs-fine agreement contract (see README
/// "Performance"): discrete event counts equal, times within a small
/// number of steps, energies within 1%, ledger closed.
void expect_agreement(const Pair& pair, Seconds dt, Farads c = 22e-6,
                      Seconds time_slack = 0.0) {
  if (time_slack <= 0.0) time_slack = 50.0 * dt;
  const auto& f = pair.fine;
  const auto& m = pair.macro;

  // Discrete events.
  EXPECT_EQ(f.mcu.boots, m.mcu.boots);
  EXPECT_EQ(f.mcu.brownouts, m.mcu.brownouts);
  EXPECT_EQ(f.mcu.saves_completed, m.mcu.saves_completed);
  EXPECT_EQ(f.mcu.restores, m.mcu.restores);
  EXPECT_EQ(f.mcu.completed, m.mcu.completed);

  // Wall-clock bookkeeping: the time split may shift by a few steps per
  // power cycle, never more.
  const Seconds slack = 50.0 * dt * static_cast<double>(std::max<std::uint64_t>(
                                        f.mcu.brownouts + 1, 1));
  EXPECT_NEAR(f.end_time, m.end_time, dt);
  EXPECT_NEAR(f.mcu.time_off, m.mcu.time_off, slack);
  EXPECT_NEAR(f.mcu.time_active, m.mcu.time_active, slack);

  // Energies within 1% (the fine path's own discretisation scale).
  const auto near_rel = [](double a, double b, double rel, double abs_floor) {
    EXPECT_NEAR(a, b, std::max(std::abs(b) * rel, abs_floor)) << a << " vs " << b;
  };
  near_rel(m.harvested, f.harvested, 0.01, 1e-9);
  near_rel(m.consumed, f.consumed, 0.01, 1e-9);
  near_rel(m.dissipated, f.dissipated, 0.01, 1e-9);
  near_rel(m.mcu.energy_total(), f.mcu.energy_total(), 0.01, 1e-9);

  // End state: voltages agree to millivolts.
  const auto to_volts = [](Joules stored, Farads cap) {
    return std::sqrt(std::max(2.0 * stored / cap, 0.0));
  };
  EXPECT_NEAR(to_volts(m.stored_final, c), to_volts(f.stored_final, c), 5e-3);

  // The ledger closes on both paths (macro spans close exactly by
  // construction, so the macro residual must not be worse).
  EXPECT_LT(std::abs(f.ledger_residual()), 1e-6 + 1e-6 * f.harvested);
  EXPECT_LT(std::abs(m.ledger_residual()), 1e-6 + 1e-6 * m.harvested);

  // Transition timelines: same state sequence, times within a few steps
  // (or the caller's slack — a DFS governor quantizes frequency, so
  // sub-millivolt span-boundary differences can shift a control window).
  ASSERT_EQ(f.transitions.size(), m.transitions.size());
  for (std::size_t i = 0; i < f.transitions.size(); ++i) {
    EXPECT_EQ(f.transitions[i].from, m.transitions[i].from) << "transition " << i;
    EXPECT_EQ(f.transitions[i].to, m.transitions[i].to) << "transition " << i;
    EXPECT_NEAR(f.transitions[i].time, m.transitions[i].time, time_slack)
        << "transition " << i;
  }
}

TEST(MacroStep, SquareSupplyBrownoutTailsAgree) {
  const auto pair = run_pair(square_brownout_spec());
  ASSERT_GT(pair.fine.mcu.brownouts, 2u);  // the scenario must brown out
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, RfDutyCycleAgrees) {
  const auto pair = run_pair(rf_duty_cycle_spec());
  ASSERT_GT(pair.fine.mcu.brownouts, 1u);
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, RecordedTraceAgrees) {
  const auto pair = run_pair(trace_source_spec());
  ASSERT_GT(pair.fine.mcu.brownouts, 1u);
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, GovernedRunStaysLockStep) {
  spec::SystemSpec s = square_brownout_spec();
  s.governor = neutral::McuDfsGovernor::Config{};
  const auto pair = run_pair(s);
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, ProbeScheduleStaysLockStep) {
  spec::SystemSpec s = square_brownout_spec();
  s.sim.probe_interval = 1e-3;
  const auto pair = run_pair(s);
  const auto* fine_vcc = pair.fine.probes.find("vcc");
  const auto* macro_vcc = pair.macro.probes.find("vcc");
  ASSERT_NE(fine_vcc, nullptr);
  ASSERT_NE(macro_vcc, nullptr);
  // Lock-step schedule: exactly the same sample count and time base.
  ASSERT_EQ(fine_vcc->size(), macro_vcc->size());
  EXPECT_DOUBLE_EQ(fine_vcc->t0(), macro_vcc->t0());
  // Values track within tens of millivolts everywhere (the decay tails are
  // analytic vs Euler; the bursts are simulated identically up to span
  // boundary shifts).
  double worst = 0.0;
  for (std::size_t i = 0; i < fine_vcc->size(); ++i) {
    worst = std::max(worst,
                     std::abs(fine_vcc->samples()[i] - macro_vcc->samples()[i]));
  }
  EXPECT_LT(worst, 0.05);
  // The other channels stay lock-step too.
  EXPECT_EQ(pair.fine.probes.find("state")->size(),
            pair.macro.probes.find("state")->size());
}

TEST(MacroStep, CompletionDigestMatchesFinePath) {
  // The workload's result must be bit-identical: macro spans never touch
  // program state.
  spec::SystemSpec s = square_brownout_spec();
  s.sim.stop_on_completion = true;
  s.sim.t_end = 20.0;

  s.sim.macro_stepping = false;
  auto fine = spec::instantiate(s);
  const auto fine_result = fine.run();
  s.sim.macro_stepping = true;
  auto macro = spec::instantiate(s);
  const auto macro_result = macro.run();
  ASSERT_TRUE(fine_result.mcu.completed);
  ASSERT_TRUE(macro_result.mcu.completed);
  EXPECT_EQ(fine.program().result_digest(), macro.program().result_digest());
  EXPECT_NEAR(fine_result.mcu.completion_time, macro_result.mcu.completion_time,
              1e-3);
}

// --------------------------------------------- sleep-span macro tests -----
// The quiescent engine's new regime: the MCU asleep (or waiting/done) with
// live comparators, macro-stepped to the analytic comparator/v_min
// crossing. Hibernus on the Fig 7 / Fig 8 scenario classes is the paper's
// own exhibit for this.

/// Hibernus that records every comparator callback, so fine and macro runs
/// can be compared event for event (name, edge, interpolated time) — the
/// contract that sleep spans re-enter fine stepping before every crossing.
struct EventLog {
  std::vector<circuit::ComparatorEvent> events;
};

class RecordingHibernus final : public checkpoint::InterruptPolicy {
 public:
  RecordingHibernus(const Config& config, std::shared_ptr<EventLog> log)
      : InterruptPolicy(config, "recording-hibernus"), log_(std::move(log)) {}

  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override {
    log_->events.push_back(event);
    InterruptPolicy::on_comparator(mcu, event);
  }

 private:
  std::shared_ptr<EventLog> log_;
};

/// The Fig 7 configuration with an event-recording hibernus attached.
spec::SystemSpec fig7_spec(const std::shared_ptr<EventLog>& log) {
  spec::SystemSpec s;
  s.source = spec::SineSource{3.3, 6.0};
  s.storage.capacitance = 47e-6;
  s.storage.bleed = 3000.0;
  s.workload.kind = "fft-large";
  s.workload.seed = 7;
  checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;
  config.restore_headroom = 0.35;
  s.policy = spec::CustomPolicy{
      [config, log](const std::function<Farads()>&, Farads node_capacitance) {
        checkpoint::InterruptPolicy::Config c = config;
        c.capacitance = node_capacitance;
        return std::make_unique<RecordingHibernus>(c, log);
      }};
  s.sim.t_end = 2.0;
  s.sim.stop_on_completion = false;
  return s;
}

/// The Fig 7 system across harvesting gaps (the fig7_hibernus_fft --macro
/// survey, shortened): 0.5 s bursts of the 6 Hz sine every 5 s with
/// decay-to-zero intervals — save -> sleep -> brown-out -> dead node.
spec::SystemSpec fig7_gapped_spec(const std::shared_ptr<EventLog>& log) {
  auto s = fig7_spec(log);
  const auto wave = trace::Waveform::sample(
      [](Seconds t) {
        const double cycle = t - std::floor(t / 5.0) * 5.0;
        return cycle < 0.5 ? 3.3 * std::sin(2.0 * M_PI * 6.0 * t) : 0.0;
      },
      0.0, 10.0, 200001);
  s.source = spec::VoltageTraceSource{wave, 50.0, "fig7-gapped"};
  s.sim.t_end = 10.0;
  return s;
}

struct LoggedRun {
  sim::SimResult result;
  std::shared_ptr<EventLog> log;
};

LoggedRun run_logged(spec::SystemSpec (*make_spec)(const std::shared_ptr<EventLog>&),
                     bool macro) {
  LoggedRun run;
  run.log = std::make_shared<EventLog>();
  spec::SystemSpec s = make_spec(run.log);
  s.sim.macro_stepping = macro;
  auto system = spec::instantiate(s);
  run.result = system.run();
  return run;
}

void expect_identical_event_sequences(const EventLog& fine, const EventLog& macro,
                                      Seconds dt) {
  ASSERT_EQ(fine.events.size(), macro.events.size());
  for (std::size_t i = 0; i < fine.events.size(); ++i) {
    EXPECT_EQ(fine.events[i].name, macro.events[i].name) << "event " << i;
    EXPECT_EQ(fine.events[i].edge, macro.events[i].edge) << "event " << i;
    EXPECT_DOUBLE_EQ(fine.events[i].threshold, macro.events[i].threshold)
        << "event " << i;
    EXPECT_NEAR(fine.events[i].time, macro.events[i].time, 50.0 * dt)
        << "event " << i;
  }
}

TEST(SleepSpan, Fig7HibernusEventSequenceAndLedgerAgree) {
  const LoggedRun fine = run_logged(fig7_spec, false);
  const LoggedRun macro = run_logged(fig7_spec, true);
  // The scenario must actually exercise the sleep machinery.
  ASSERT_GT(fine.result.mcu.saves_completed, 0u);
  ASSERT_GT(fine.result.mcu.time_sleep, 0.0);
  ASSERT_GT(fine.log->events.size(), 4u);

  expect_identical_event_sequences(*fine.log, *macro.log, 10e-6);
  expect_agreement(Pair{fine.result, macro.result}, 10e-6, 47e-6);
  EXPECT_EQ(fine.result.mcu.direct_resumes, macro.result.mcu.direct_resumes);
  // The sleep ledger split must track, not just the totals.
  EXPECT_NEAR(fine.result.mcu.time_sleep, macro.result.mcu.time_sleep, 1e-3);
  EXPECT_NEAR(fine.result.mcu.energy_sleep, macro.result.mcu.energy_sleep,
              std::max(1e-9, 0.02 * fine.result.mcu.energy_sleep));
}

TEST(SleepSpan, Fig7HarvestingGapsEventSequenceAndLedgerAgree) {
  const LoggedRun fine = run_logged(fig7_gapped_spec, false);
  const LoggedRun macro = run_logged(fig7_gapped_spec, true);
  ASSERT_GT(fine.result.mcu.brownouts, 1u);
  ASSERT_GT(fine.log->events.size(), 4u);

  expect_identical_event_sequences(*fine.log, *macro.log, 10e-6);
  expect_agreement(Pair{fine.result, macro.result}, 10e-6, 47e-6);
  EXPECT_EQ(fine.result.mcu.restores, macro.result.mcu.restores);
  EXPECT_EQ(fine.result.nvm_commits, macro.result.nvm_commits);
}

/// A sleep-*dominated* scenario with analytic driver hints: a low-duty
/// square supply (exact edge arithmetic) on a big, lightly-bled node, so
/// each gap starts with a long comparator-watched sleep decay before the
/// v_min brown-out. This is the span class PR 3 could not touch.
spec::SystemSpec sleepy_square_spec() {
  spec::SystemSpec s;
  // 0.1 s bursts every 4 s: too short to finish the raytrace, so every gap
  // begins with a live workload hibernating through V_H.
  s.source = spec::SquareSource{3.3, 0.25, 0.025, 0.0, 50.0};
  s.storage.capacitance = 100e-6;
  s.storage.bleed = 10000.0;
  s.workload.kind = "raytrace";  // ~1.4 Mcycles: needs several bursts
  s.workload.seed = 3;
  checkpoint::InterruptPolicy::Config config;
  // Designer-pinned V_H well above v_min: the hibernate band 2.2 V ->
  // 1.8 V is then a ~0.2 s comparator-watched sleep decay per gap (Eq 4
  // would put V_H a hair above v_min on a 100 uF node and leave no band).
  config.v_hibernate = 2.2;
  config.restore_headroom = 0.4;
  s.policy = spec::Hibernus{config};
  s.sim.t_end = 16.0;
  s.sim.stop_on_completion = false;
  s.sim.probe_interval = 1e-3;
  return s;
}

TEST(SleepSpan, SleepDominatedSquareAgreesAndKeepsProbesLockStep) {
  const auto pair = run_pair(sleepy_square_spec());
  // The scenario must spend real time asleep with live comparators.
  ASSERT_GT(pair.fine.mcu.time_sleep, 0.05);
  ASSERT_GT(pair.fine.mcu.saves_completed, 0u);
  expect_agreement(pair, 10e-6, 100e-6);
  EXPECT_NEAR(pair.fine.mcu.time_sleep, pair.macro.mcu.time_sleep, 1e-3);

  const auto* fine_state = pair.fine.probes.find("state");
  const auto* macro_state = pair.macro.probes.find("state");
  ASSERT_NE(fine_state, nullptr);
  ASSERT_NE(macro_state, nullptr);
  ASSERT_EQ(fine_state->size(), macro_state->size());
  // The replayed probe schedule must report the same state trajectory up
  // to a handful of samples around span boundaries.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < fine_state->size(); ++i) {
    if (fine_state->samples()[i] != macro_state->samples()[i]) ++mismatches;
  }
  EXPECT_LT(mismatches, fine_state->size() / 100);
}

TEST(SleepSpan, GovernedSleepRunStaysLockStep) {
  // Governor deadlines cap sleep-class spans exactly like off spans. The
  // governed run finishes the workload early (DFS keeps it alive through
  // the gaps' heads) and then idles *done* through every gap — the done
  // spans must stay in lock-step with the governor's control schedule.
  spec::SystemSpec s = sleepy_square_spec();
  s.governor = neutral::McuDfsGovernor::Config{};
  const auto pair = run_pair(s);
  ASSERT_GT(pair.fine.mcu.time_done, 0.5);
  expect_agreement(pair, 10e-6, 100e-6, /*time_slack=*/5e-3);
  EXPECT_NEAR(pair.fine.mcu.time_done, pair.macro.mcu.time_done, 1e-2);
}

TEST(SleepSpan, FlagOffSleepScenarioStaysBitIdentical) {
  // With macro_stepping off, a sleep-heavy run must stay bit-identical
  // whether the (default-on) quiescent fast path is enabled or not — the
  // engine's dead-node skip is the only active regime and it is exact.
  auto run_with_fast_path = [](bool enabled) {
    spec::SystemSpec s = sleepy_square_spec();
    s.sim.quiescent_fast_path = enabled;
    auto system = spec::instantiate(s);
    return system.run();
  };
  const auto fast = run_with_fast_path(true);
  const auto slow = run_with_fast_path(false);
  EXPECT_EQ(fast.end_time, slow.end_time);
  EXPECT_EQ(fast.harvested, slow.harvested);
  EXPECT_EQ(fast.consumed, slow.consumed);
  EXPECT_EQ(fast.dissipated, slow.dissipated);
  EXPECT_EQ(fast.stored_final, slow.stored_final);
  EXPECT_EQ(fast.mcu.time_off, slow.mcu.time_off);
  EXPECT_EQ(fast.mcu.time_sleep, slow.mcu.time_sleep);
  EXPECT_EQ(fast.mcu.energy_sleep, slow.mcu.energy_sleep);
  EXPECT_EQ(fast.mcu.boots, slow.mcu.boots);
  EXPECT_EQ(fast.mcu.saves_completed, slow.mcu.saves_completed);
  const auto* fast_vcc = fast.probes.find("vcc");
  const auto* slow_vcc = slow.probes.find("vcc");
  ASSERT_NE(fast_vcc, nullptr);
  ASSERT_NE(slow_vcc, nullptr);
  EXPECT_EQ(fast_vcc->samples(), slow_vcc->samples());
}

TEST(MacroStep, FlagOffStaysBitIdenticalWithHintedFastPath) {
  // The quiescent fast path now consults driver hints (one virtual call
  // per dead span instead of one per substep), which must not change a
  // single bit while macro_stepping is off. Complements the RF-source
  // regression in sim_test.cpp with the square-voltage hint path.
  auto run_with_fast_path = [](bool enabled) {
    spec::SystemSpec s;
    s.source = spec::SquareSource{3.3, 0.5, 0.2, 0.0, 50.0};
    s.storage.capacitance = 22e-6;
    s.storage.bleed = 1000.0;  // fast decay: the node reaches exactly 0 V
    s.workload.kind = "crc";
    s.workload.seed = 3;
    s.sim.t_end = 6.0;
    s.sim.stop_on_completion = false;
    s.sim.probe_interval = 1e-3;
    s.sim.quiescent_fast_path = enabled;
    auto system = spec::instantiate(s);
    return system.run();
  };
  const auto fast = run_with_fast_path(true);
  const auto slow = run_with_fast_path(false);
  EXPECT_EQ(fast.end_time, slow.end_time);
  EXPECT_EQ(fast.harvested, slow.harvested);
  EXPECT_EQ(fast.consumed, slow.consumed);
  EXPECT_EQ(fast.dissipated, slow.dissipated);
  EXPECT_EQ(fast.stored_final, slow.stored_final);
  EXPECT_EQ(fast.mcu.time_off, slow.mcu.time_off);
  EXPECT_EQ(fast.mcu.boots, slow.mcu.boots);
  const auto* fast_vcc = fast.probes.find("vcc");
  const auto* slow_vcc = slow.probes.find("vcc");
  ASSERT_NE(fast_vcc, nullptr);
  ASSERT_NE(slow_vcc, nullptr);
  EXPECT_EQ(fast_vcc->samples(), slow_vcc->samples());
}

}  // namespace
