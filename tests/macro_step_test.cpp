// Differential suite for the quiescent-state engine
// (sim/quiescent_engine) — analytic macro-stepping of MCU-off spans *and*
// comparator-watched sleep/wait/done spans.
//
// The macro path replaces the fine path's Euler substepping through
// quiescent spans with the closed-form decay and driver activity hints, so
// it is *not* bit-identical — but it must agree with the fine-stepped
// reference within the fine path's own discretisation error:
//
//   * end state (voltage / stored energy) within a few macro_v_tol,
//   * discrete event counts (boots, brownouts, saves, restores) equal,
//   * transition times matching to a handful of dt,
//   * probe/governor schedules in lock-step (same sample counts),
//   * the energy ledger closing exactly (macro spans book a zero-residual
//     split by construction).
//
// Also covers the building blocks: the DecaySolution closed form against
// numerical integration, the ActivityIndex over recorded traces, the
// never-overclaim contract of every quiescent_until/bounded_until/
// dormant_until override, and bit-identity of the (hint-accelerated)
// quiescent fast path when macro-stepping stays off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/circuit/comparator.h"
#include "edc/circuit/rectifier.h"
#include "edc/circuit/supply_driver.h"
#include "edc/circuit/supply_node.h"
#include "edc/spec/system_spec.h"
#include "edc/core/system.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/voltage_sources.h"
#include "edc/trace/waveform.h"

namespace {

using namespace edc;

// ------------------------------------------------------------ DecaySolution

TEST(DecaySolution, MatchesNumericalIntegrationWithBleedAndLoad) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::DecaySolution decay = node.decay_from(2.5, 5e-6);

  // Reference: forward Euler at a step far finer than the simulator's.
  double v = 2.5;
  double load_energy = 0.0;
  const double h = 1e-7;
  const double horizon = 0.25;  // ~1.8 tau
  for (double t = 0.0; t < horizon; t += h) {
    const double i_bleed = v / 3000.0;
    const double i_load = v > 0.0 ? 5e-6 : 0.0;
    load_energy += i_load * v * h;
    v = std::max(v - (i_bleed + i_load) / 47e-6 * h, 0.0);
  }
  EXPECT_NEAR(decay.voltage_at(horizon), v, 1e-4);
  EXPECT_NEAR(decay.load_energy(horizon), load_energy, 1e-9);
}

TEST(DecaySolution, PureLeakageRampReachesGroundExactly) {
  circuit::SupplyNode node(10e-6);  // no bleed
  const circuit::DecaySolution decay = node.decay_from(1.0, 1e-6);
  const Seconds t_zero = decay.time_to_zero();
  EXPECT_NEAR(t_zero, 10e-6 * 1.0 / 1e-6, 1e-9);  // C*V/I = 10 s
  EXPECT_DOUBLE_EQ(decay.voltage_at(t_zero * 2.0), 0.0);
  // Past ground the load draws nothing more: energy saturates at the full
  // stored energy 0.5*C*V0^2.
  EXPECT_NEAR(decay.load_energy(t_zero * 2.0), 0.5 * 10e-6, 1e-12);
}

TEST(DecaySolution, BleedOnlyNeverTouchesGround) {
  circuit::SupplyNode node(10e-6);
  node.set_bleed(10000.0);
  const circuit::DecaySolution decay = node.decay_from(2.0, 0.0);
  EXPECT_TRUE(std::isinf(decay.time_to_zero()));
  EXPECT_GT(decay.voltage_at(10.0), 0.0);
  EXPECT_DOUBLE_EQ(decay.load_energy(10.0), 0.0);
}

/// Numeric reference for time_to_reach: bisection on the (monotone)
/// closed-form trajectory itself.
Seconds bisect_time_to_reach(const circuit::DecaySolution& decay, Volts v,
                             Seconds hi) {
  Seconds lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Seconds mid = 0.5 * (lo + hi);
    if (decay.voltage_at(mid) > v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TEST(DecaySolution, TimeToReachMatchesNumericRootFinding) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::DecaySolution decay = node.decay_from(2.5, 5e-6);
  for (const Volts v : {2.2, 1.8, 1.0, 0.3, 0.05}) {
    const Seconds analytic = decay.time_to_reach(v);
    const Seconds numeric = bisect_time_to_reach(decay, v, 10.0);
    EXPECT_NEAR(analytic, numeric, 1e-9) << "target " << v;
    // Inverse property: following the trajectory to the solved instant
    // lands on the target voltage.
    EXPECT_NEAR(decay.voltage_at(analytic), v, 1e-9) << "target " << v;
  }
}

TEST(DecaySolution, TimeToReachPureRampAndEdgeCases) {
  circuit::SupplyNode node(10e-6);  // no bleed: constant-current ramp
  const circuit::DecaySolution ramp = node.decay_from(2.0, 1e-6);
  EXPECT_NEAR(ramp.time_to_reach(1.0), 10e-6 * 1.0 / 1e-6, 1e-12);  // C*dV/I
  EXPECT_DOUBLE_EQ(ramp.time_to_reach(2.0), 0.0);  // already there
  EXPECT_DOUBLE_EQ(ramp.time_to_reach(2.5), 0.0);  // above the start
  EXPECT_NEAR(ramp.time_to_reach(0.0), ramp.time_to_zero(), 1e-12);

  // Exponential tail: the asymptote is ground, so 0 V is never reached.
  node.set_bleed(10000.0);
  const circuit::DecaySolution tail = node.decay_from(2.0, 0.0);
  EXPECT_TRUE(std::isinf(tail.time_to_reach(0.0)));
  EXPECT_NEAR(tail.time_to_reach(1.0), 10e-6 * 10000.0 * std::log(2.0), 1e-9);

  // No bleed, no load: the voltage holds forever.
  circuit::SupplyNode held(10e-6);
  EXPECT_TRUE(std::isinf(held.decay_from(2.0, 0.0).time_to_reach(1.0)));
}

TEST(ComparatorBank, PlanFallingCrossingFindsTheHighestArmedTrip) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::DecaySolution decay = node.decay_from(3.0, 1e-6);

  circuit::ComparatorBank bank;
  bank.add(circuit::Comparator("VR", 2.5, 0.0));
  bank.add(circuit::Comparator("VH", 2.0, 0.0));
  bank.reset(3.0);  // both outputs high: armed for falling trips

  Volts trip = 0.0;
  const Seconds t = bank.plan_falling_crossing(decay, &trip);
  EXPECT_DOUBLE_EQ(trip, 2.5);  // the decay hits VR first
  EXPECT_NEAR(t, decay.time_to_reach(2.5), 1e-12);

  // Fire VR (output low): the next crossing is VH.
  (void)bank.at(0).update(3.0, 0.0, 2.4, 1.0);
  const Seconds t2 = bank.plan_falling_crossing(decay, &trip);
  EXPECT_DOUBLE_EQ(trip, 2.0);
  EXPECT_NEAR(t2, decay.time_to_reach(2.0), 1e-12);

  // A decay starting below every armed trip can never fire: planning from
  // v0 = 1.5 with both comparators latched low claims no crossing.
  bank.reset(1.0);
  EXPECT_TRUE(std::isinf(bank.plan_falling_crossing(node.decay_from(1.5, 1e-6))));
}

TEST(DecaySolution, LedgerSplitClosesExactly) {
  circuit::SupplyNode node(22e-6);
  node.set_bleed(5000.0);
  const circuit::DecaySolution decay = node.decay_from(1.7, 0.05e-6);
  const Seconds span = 0.4;
  const Volts v1 = decay.voltage_at(span);
  const Joules delta = 0.5 * 22e-6 * (1.7 * 1.7 - v1 * v1);
  const Joules consumed = decay.load_energy(span);
  // consumed + dissipated == delta by construction; consumed must fit.
  EXPECT_LE(consumed, delta + 1e-15);
  EXPECT_GE(consumed, 0.0);
}

// ------------------------------------------------------------ ActivityIndex

TEST(ActivityIndex, FindsZeroSpansBetweenBursts) {
  // 0 on [0,1), 2.0 on [1,2), 0 on [2,4] — sampled at 10 Hz.
  const auto wave = trace::Waveform::sample(
      [](Seconds t) { return (t >= 1.0 && t < 2.0) ? 2.0 : 0.0; }, 0.0, 4.0, 41);
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.segment_count(), 1u);
  // Inside the leading zero span: quiet until just before the burst (the
  // cell whose right endpoint is the first nonzero sample is active).
  const Seconds u = index.zero_until(0.2);
  EXPECT_GE(u, 0.8);
  EXPECT_LE(u, 1.0);
  // Inside the burst: no claim.
  EXPECT_EQ(index.zero_until(1.5), 1.5);
  // In the trailing zero span: quiet forever (the trace ends at zero and
  // clamps there).
  EXPECT_TRUE(std::isinf(index.zero_until(3.0)));
}

TEST(ActivityIndex, EdgeClampingExtendsActivityBeyondTheSpan) {
  // Ends on a nonzero sample: the clamp keeps it active forever after.
  const trace::Waveform wave(0.0, 1.0, {0.0, 0.0, 1.5});
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.zero_until(5.0), 5.0);
  // And the leading zero region is still quiet.
  const Seconds u = index.zero_until(0.0);
  EXPECT_GE(u, 1.0);
  EXPECT_LE(u, 2.0);
}

TEST(ActivityIndex, AllZeroTraceIsQuietForever) {
  const trace::Waveform wave(0.0, 1.0, {0.0, 0.0, 0.0});
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.segment_count(), 0u);
  EXPECT_TRUE(std::isinf(index.zero_until(-3.0)));
  EXPECT_TRUE(std::isinf(index.zero_until(100.0)));
}

TEST(ActivityIndex, NonzeroHeadClampsActiveBeforeTheSpan) {
  const trace::Waveform wave(1.0, 1.0, {2.0, 0.0, 0.0});
  const trace::ActivityIndex index(wave);
  EXPECT_EQ(index.zero_until(0.0), 0.0);  // clamped to the nonzero head
  EXPECT_TRUE(std::isinf(index.zero_until(2.5)));
}

// ------------------------------------------------------- ChargeSolution ---

TEST(ChargeSolution, MatchesNumericalIntegrationWithBleedAndLoad) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  // A 3.05 V rectified source through 50 ohm into the bled node with the
  // sleep draw — the Fig 7 charging-ramp configuration.
  const circuit::ChargeSolution charge = node.charge_from(0.4, 3.05, 50.0, 1.5e-6);

  double v = 0.4;
  double load_energy = 0.0, bleed_energy = 0.0;
  const double h = 1e-7;
  const double horizon = 6e-3;  // ~2.5 tau
  for (double t = 0.0; t < horizon; t += h) {
    const double i_in = (3.05 - v) / 50.0;
    const double i_bleed = v / 3000.0;
    const double i_load = 1.5e-6;
    load_energy += i_load * v * h;
    bleed_energy += i_bleed * v * h;
    v += (i_in - i_bleed - i_load) / 47e-6 * h;
  }
  EXPECT_NEAR(charge.voltage_at(horizon), v, 1e-4);
  EXPECT_NEAR(charge.load_energy(horizon), load_energy, 1e-11);
  EXPECT_NEAR(charge.bleed_energy(horizon), bleed_energy,
              1e-6 * bleed_energy + 1e-12);
  // The asymptote sits strictly below the source (the bleed drops some of
  // it) and the trajectory approaches it from below.
  EXPECT_LT(charge.asymptote(), 3.05);
  EXPECT_GT(charge.asymptote(), charge.voltage_at(horizon));
}

/// Numeric reference for the rising inverse: bisection on the closed-form
/// trajectory itself.
Seconds bisect_time_to_climb(const circuit::ChargeSolution& charge, Volts v,
                             Seconds hi) {
  Seconds lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Seconds mid = 0.5 * (lo + hi);
    if (charge.voltage_at(mid) < v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TEST(ChargeSolution, TimeToReachMatchesNumericRootFindingAndEdgeCases) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::ChargeSolution charge = node.charge_from(0.0, 3.05, 50.0, 0.05e-6);
  const Volts v_inf = charge.asymptote();
  for (const Volts v : {0.5, 1.8, 2.0, 2.5, v_inf * 0.999}) {
    const Seconds analytic = charge.time_to_reach(v);
    const Seconds numeric = bisect_time_to_climb(charge, v, 1.0);
    EXPECT_NEAR(analytic, numeric, 1e-9) << "target " << v;
    EXPECT_NEAR(charge.voltage_at(analytic), v, 1e-9) << "target " << v;
  }
  EXPECT_DOUBLE_EQ(charge.time_to_reach(0.0), 0.0);      // already there
  EXPECT_TRUE(std::isinf(charge.time_to_reach(v_inf)));  // asymptote: never
  EXPECT_TRUE(std::isinf(charge.time_to_reach(3.05)));   // beyond it: never

  // Sagging direction (started above the equilibrium): monotone down.
  const circuit::ChargeSolution sag = node.charge_from(2.9, 1.0, 50.0, 0.0);
  EXPECT_LT(sag.asymptote(), 2.9);
  EXPECT_DOUBLE_EQ(sag.time_to_reach(2.9), 0.0);
  const Seconds down = sag.time_to_reach(1.5);
  EXPECT_GT(down, 0.0);
  EXPECT_NEAR(sag.voltage_at(down), 1.5, 1e-9);
}

TEST(ChargeSolution, LedgerDerivedHarvestIsExact) {
  // The engine books harvested = stored delta + load + bleed; against the
  // analytic input integral int i_in * V dt the residual must be pure
  // rounding.
  circuit::SupplyNode node(22e-6);
  node.set_bleed(5000.0);
  const circuit::ChargeSolution charge = node.charge_from(0.2, 3.0, 100.0, 2e-6);
  const Seconds span = 4e-3;
  const Volts v1 = charge.voltage_at(span);
  const Joules delta = 0.5 * 22e-6 * (v1 * v1 - 0.2 * 0.2);
  const Joules harvested = delta + charge.load_energy(span) + charge.bleed_energy(span);
  double input = 0.0;  // numeric int i_in * V dt
  double v = 0.2;
  const double h = 1e-7;
  for (double t = 0.0; t < span; t += h) {
    const double i_in = (3.0 - v) / 100.0;
    input += i_in * v * h;
    v += (i_in - v / 5000.0 - 2e-6) / 22e-6 * h;
  }
  EXPECT_NEAR(harvested, input, 1e-5 * input);
  EXPECT_GE(harvested, 0.0);
}

// --------------------------------------------------- LinearRampSolution ---
// The affine-source closed form behind ramp spans: C dV/dt =
// (Vs0 + m*t - V)/Rs - V/Rb - I.

TEST(LinearRampSolution, MatchesNumericalIntegrationWithBleedAndLoad) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  // A sine-arc chord: source ramping 2.8 -> 3.4 V over the window through
  // 50 ohm into the bled node with the sleep draw.
  const circuit::LinearRampSolution ramp =
      node.ramp_from(0.4, 2.8, 100.0, 50.0, 1.5e-6);

  double v = 0.4;
  double load_energy = 0.0, bleed_energy = 0.0;
  const double h = 1e-7;
  const double horizon = 6e-3;  // ~2.5 tau
  for (double t = 0.0; t < horizon; t += h) {
    const double i_in = (2.8 + 100.0 * t - v) / 50.0;
    const double i_bleed = v / 3000.0;
    const double i_load = 1.5e-6;
    load_energy += i_load * v * h;
    bleed_energy += i_bleed * v * h;
    v += (i_in - i_bleed - i_load) / 47e-6 * h;
  }
  EXPECT_NEAR(ramp.voltage_at(horizon), v, 1e-4);
  EXPECT_NEAR(ramp.load_energy(horizon), load_energy, 1e-11);
  EXPECT_NEAR(ramp.bleed_energy(horizon), bleed_energy,
              1e-5 * bleed_energy + 1e-12);
  // Zero slope must reduce to the constant-window charge solution exactly.
  const circuit::LinearRampSolution flat =
      node.ramp_from(0.4, 3.05, 0.0, 50.0, 1.5e-6);
  const circuit::ChargeSolution charge = node.charge_from(0.4, 3.05, 50.0, 1.5e-6);
  for (const Seconds s : {1e-4, 1e-3, 5e-3}) {
    EXPECT_NEAR(flat.voltage_at(s), charge.voltage_at(s), 1e-9);
    EXPECT_NEAR(flat.load_energy(s), charge.load_energy(s), 1e-13);
    EXPECT_NEAR(flat.bleed_energy(s), charge.bleed_energy(s), 1e-12);
  }
}

TEST(LinearRampSolution, LedgerDerivedHarvestIsExact) {
  // harvested = stored delta + load + bleed against the numeric
  // int i_in * V dt: the residual must be pure rounding.
  circuit::SupplyNode node(22e-6);
  node.set_bleed(5000.0);
  const circuit::LinearRampSolution ramp =
      node.ramp_from(0.2, 3.0, -120.0, 100.0, 2e-6);
  const Seconds span = 4e-3;
  const Volts v1 = ramp.voltage_at(span);
  const Joules delta = 0.5 * 22e-6 * (v1 * v1 - 0.2 * 0.2);
  const Joules harvested = delta + ramp.load_energy(span) + ramp.bleed_energy(span);
  double input = 0.0;  // numeric int i_in * V dt
  double v = 0.2;
  const double h = 1e-7;
  for (double t = 0.0; t < span; t += h) {
    const double i_in = (3.0 - 120.0 * t - v) / 100.0;
    input += i_in * v * h;
    v += (i_in - v / 5000.0 - 2e-6) / 22e-6 * h;
  }
  EXPECT_NEAR(harvested, input, 1e-5 * input);
  EXPECT_GE(harvested, 0.0);
}

/// Numeric reference for the ramp inverse: dense forward scan for the
/// first closed-form instant at or past the target (handles the
/// non-monotone overshoot cases bisection-from-outside would miss).
Seconds scan_time_to_reach(const circuit::LinearRampSolution& ramp, Volts v,
                           Seconds t_max) {
  const Seconds h = t_max / 4e6;
  const bool from_below = ramp.voltage_at(0.0) < v;
  for (Seconds t = 0.0; t <= t_max; t += h) {
    const Volts now = ramp.voltage_at(t);
    if (from_below ? now >= v : now <= v) return t;
  }
  return std::numeric_limits<Seconds>::infinity();
}

TEST(LinearRampSolution, TimeToReachMatchesNumericScanAndEdgeCases) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  // Rising ramp from below: monotone climb through every target.
  const circuit::LinearRampSolution up =
      node.ramp_from(0.5, 2.0, 300.0, 50.0, 1e-6);
  for (const Volts v : {1.0, 1.9, 2.5}) {
    const Seconds analytic = up.time_to_reach(v, 20e-3);
    const Seconds numeric = scan_time_to_reach(up, v, 20e-3);
    ASSERT_TRUE(std::isfinite(analytic)) << "target " << v;
    EXPECT_NEAR(analytic, numeric, 1e-7) << "target " << v;
    // The bisection returns the conservative (lower) bracket: at or just
    // before the crossing, never past it by more than the bracket width.
    EXPECT_NEAR(up.voltage_at(analytic), v, 1e-5) << "target " << v;
  }
  EXPECT_DOUBLE_EQ(up.time_to_reach(0.5, 20e-3), 0.0);  // already there
  EXPECT_TRUE(std::isinf(up.time_to_reach(9.0, 20e-3)));  // beyond the window

  // Falling source from a high node: the transient dips *through* targets
  // the endpoint pair would miss — the interior-extremum split must find
  // the first crossing, and the dip's floor must match min_voltage.
  const circuit::LinearRampSolution dip =
      node.ramp_from(3.0, 0.5, 400.0, 50.0, 0.5e-6);
  const Seconds window = 30e-3;
  const Volts floor_v = dip.min_voltage(window);
  EXPECT_LT(floor_v, std::min(dip.voltage_at(0.0), dip.voltage_at(window)));
  const Volts target = floor_v + 0.05;
  const Seconds analytic = dip.time_to_reach(target, window);
  const Seconds numeric = scan_time_to_reach(dip, target, window);
  ASSERT_TRUE(std::isfinite(analytic));
  EXPECT_NEAR(analytic, numeric, 1e-6);
  // The dip recrosses the target on the way back up: the solve must report
  // the *first* crossing (the falling one), not the later rising one.
  EXPECT_LT(analytic, window / 2);

  // min/max and the conduction margin against dense sampling.
  Volts lo = 1e9, hi = -1e9, margin = 1e9;
  for (int i = 0; i <= 400000; ++i) {
    const Seconds t = window * static_cast<double>(i) / 400000.0;
    const Volts v = dip.voltage_at(t);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    margin = std::min(margin, (0.5 + 400.0 * t) - v);
  }
  EXPECT_NEAR(dip.min_voltage(window), lo, 1e-8);
  EXPECT_NEAR(dip.max_voltage(window), hi, 1e-8);
  EXPECT_NEAR(dip.min_source_margin(window), margin, 1e-6);
}

TEST(ComparatorBank, PlanRampCrossingUsesBandEntryOnBothEdges) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::LinearRampSolution up =
      node.ramp_from(0.5, 2.0, 300.0, 50.0, 1e-6);

  circuit::ComparatorBank bank;
  bank.add(circuit::Comparator("VR", 2.5, 0.0));
  bank.add(circuit::Comparator("VH", 2.0, 0.0));
  bank.reset(0.5);  // both outputs low: armed for rising trips

  const Volts pad = 1e-4;
  Volts trip = 0.0;
  const Seconds t = bank.plan_ramp_crossing(up, pad, 20e-3, &trip);
  ASSERT_TRUE(std::isfinite(t));
  EXPECT_DOUBLE_EQ(trip, 2.0);  // the rise enters VH's band first
  // Band entry from below: the first instant the trajectory reaches
  // trip - pad, which bounds every possible fire from below.
  EXPECT_NEAR(t, up.time_to_reach(2.0 - pad, 20e-3), 1e-12);
  EXPECT_LE(up.voltage_at(t), 2.0 - pad + 1e-9);

  // A ramp already inside a band cannot certify any span: entry now.
  const circuit::LinearRampSolution inside =
      node.ramp_from(2.0, 2.6, 100.0, 50.0, 1e-6);
  EXPECT_DOUBLE_EQ(bank.plan_ramp_crossing(inside, pad, 20e-3, &trip), 0.0);

  // Output state does not disarm a trip on a non-monotone ramp: a high
  // output watches its *falling* trip even while the source ramps upward.
  circuit::ComparatorBank high;
  high.add(circuit::Comparator("VH", 2.0, 0.0));
  high.reset(3.0);  // output high: armed falling
  const circuit::LinearRampSolution sag =
      node.ramp_from(3.0, 0.5, 400.0, 50.0, 0.5e-6);
  const Seconds fall = high.plan_ramp_crossing(sag, pad, 30e-3, &trip);
  ASSERT_TRUE(std::isfinite(fall));
  EXPECT_DOUBLE_EQ(trip, 2.0);
  EXPECT_NEAR(fall, sag.time_to_reach(2.0 + pad, 30e-3), 1e-12);
}

TEST(ComparatorBank, PlanRisingCrossingFindsTheLowestArmedTrip) {
  circuit::SupplyNode node(47e-6);
  node.set_bleed(3000.0);
  const circuit::ChargeSolution charge = node.charge_from(0.5, 3.05, 50.0, 1e-6);

  circuit::ComparatorBank bank;
  bank.add(circuit::Comparator("VR", 2.5, 0.0));
  bank.add(circuit::Comparator("VH", 2.0, 0.0));
  bank.reset(0.5);  // both outputs low: armed for rising trips

  Volts trip = 0.0;
  const Seconds t = bank.plan_rising_crossing(charge, &trip);
  EXPECT_DOUBLE_EQ(trip, 2.0);  // the rise hits VH first
  EXPECT_NEAR(t, charge.time_to_reach(2.0), 1e-12);

  // Fire VH (output high): the next rising crossing is VR.
  (void)bank.at(1).update(1.9, 0.0, 2.1, 1.0);
  const Seconds t2 = bank.plan_rising_crossing(charge, &trip);
  EXPECT_DOUBLE_EQ(trip, 2.5);
  EXPECT_NEAR(t2, charge.time_to_reach(2.5), 1e-12);

  // A rise starting above every armed trip can never fire them; and a trip
  // beyond the asymptote is never reached.
  bank.reset(2.6);
  EXPECT_TRUE(std::isinf(bank.plan_rising_crossing(node.charge_from(2.6, 3.05, 50.0, 1e-6))));
  circuit::ComparatorBank high_bank;
  high_bank.add(circuit::Comparator("HI", 3.2, 0.0));
  high_bank.reset(0.5);
  EXPECT_TRUE(std::isinf(high_bank.plan_rising_crossing(charge)));
}

// ------------------------------------------------- charge-span certs ------

/// Samples the driver densely over every window plan_charge_span certifies
/// and fails unless the output is exactly the certified Thevenin form —
/// the exactness contract charge spans rest on.
void expect_exact_charge_certs(const circuit::SupplyDriver& driver, Seconds horizon) {
  const int kQueries = 300;
  const int kSamplesPerWindow = 200;
  int certified = 0;
  for (int q = 0; q < kQueries; ++q) {
    const Seconds t = horizon * static_cast<double>(q) / kQueries;
    const circuit::ChargeSpanCert cert = driver.plan_charge_span(t);
    if (!cert.valid) continue;
    ++certified;
    ASSERT_GT(cert.until, t);
    ASSERT_GT(cert.r_series, 0.0);
    const Seconds end = std::min(cert.until, horizon + 1.0);
    for (int s = 0; s < kSamplesPerWindow; ++s) {
      const Seconds instant =
          t + (end - t) * (static_cast<double>(s) / kSamplesPerWindow);
      for (const Volts v : {0.0, 0.7, cert.v_source * 0.5, cert.v_source + 0.5}) {
        const Amps expected =
            std::max(0.0, (cert.v_source - v) / cert.r_series);
        ASSERT_EQ(driver.current_into(v, instant), expected)
            << "driver '" << driver.name() << "' certified v_source="
            << cert.v_source << " at t=" << t << " until " << cert.until
            << " but diverges at " << instant << " (v=" << v << ")";
      }
    }
  }
  EXPECT_GT(certified, 0) << "driver never certified a window";
}

TEST(ChargeSpanCert, RectifiedSquareIsExactOverEveryWindow) {
  const trace::SquareVoltageSource source(3.3, 7.0, 0.35, 0.0, 50.0);
  const circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  expect_exact_charge_certs(driver, 1.0);
}

TEST(ChargeSpanCert, RectifiedDcIsCertifiedForever) {
  const trace::SineVoltageSource dc(0.0, 0.0, 3.3, 50.0);
  const circuit::RectifiedSourceDriver driver(dc, circuit::RectifierParams{});
  const circuit::ChargeSpanCert cert = driver.plan_charge_span(0.25);
  ASSERT_TRUE(cert.valid);
  EXPECT_TRUE(std::isinf(cert.until));
  EXPECT_DOUBLE_EQ(cert.v_source, 3.3 - 0.25);  // one diode drop
  // A live sine certifies nothing.
  const trace::SineVoltageSource live(3.3, 6.0);
  const circuit::RectifiedSourceDriver live_driver(live, circuit::RectifierParams{});
  EXPECT_FALSE(live_driver.plan_charge_span(0.25).valid);
}

TEST(ChargeSpanCert, RecordedConstantRunsAreExact) {
  // A trace alternating DC plateaus and a ramp: the run-length walk must
  // certify the plateaus exactly and never the ramp cells.
  std::vector<double> samples;
  for (int i = 0; i < 40; ++i) samples.push_back(2.0);
  for (int i = 0; i < 20; ++i) samples.push_back(2.0 + 0.05 * i);
  for (int i = 0; i < 40; ++i) samples.push_back(0.0);
  const trace::Waveform wave(0.0, 0.01, samples);
  const trace::WaveformVoltageSource source(wave, 50.0);
  const circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  expect_exact_charge_certs(driver, 1.2);
  // Inside the plateau the window must reach (nearly) the plateau's end —
  // which includes the ramp's first sample (also 2.0; the cell after it
  // interpolates away from 2.0 and must not be certified).
  Volts value = 0.0;
  const Seconds u = source.constant_until(0.05, &value);
  EXPECT_DOUBLE_EQ(value, 2.0);
  EXPECT_GT(u, 0.39);
  EXPECT_LE(u, 0.40 + 1e-9);
  // The trailing zero run extends forever through the clamp.
  EXPECT_TRUE(std::isinf(source.constant_until(0.85, &value)));
  EXPECT_DOUBLE_EQ(value, 0.0);
}

// ------------------------------------------- never-overclaim contracts ----

/// Samples the driver densely over every span its quiescent_until claims
/// quiet (for node voltages at and above the floor) and fails on any
/// injected current — the one property macro-stepping correctness rests on.
void expect_never_overclaims(const circuit::SupplyDriver& driver, Volts v_floor,
                             Seconds horizon) {
  const int kQueries = 400;
  const int kSamplesPerSpan = 250;
  for (int q = 0; q < kQueries; ++q) {
    const Seconds t = horizon * static_cast<double>(q) / kQueries;
    const Seconds u = driver.quiescent_until(v_floor, t);
    ASSERT_GE(u, t);
    const Seconds end = std::min(u, horizon + 1.0);
    if (end <= t) continue;
    for (int s = 0; s < kSamplesPerSpan; ++s) {
      // Half-open span: sample strictly before u.
      const Seconds instant =
          t + (end - t) * (static_cast<double>(s) / kSamplesPerSpan);
      for (const Volts v : {v_floor, v_floor + 0.7, v_floor + 3.0}) {
        ASSERT_EQ(driver.current_into(v, instant), 0.0)
            << "driver '" << driver.name() << "' claimed quiet at t=" << t
            << " until u=" << u << " but conducts at " << instant << " (v=" << v
            << ")";
      }
    }
  }
}

TEST(QuiescentUntil, NullDriverIsQuietForever) {
  const circuit::NullDriver driver;
  EXPECT_TRUE(std::isinf(driver.quiescent_until(0.0, 12.5)));
}

TEST(QuiescentUntil, RectifiedSquareNeverOverclaims) {
  const trace::SquareVoltageSource source(3.3, 7.0, 0.35, 0.0, 50.0);
  const circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  expect_never_overclaims(driver, 0.0, 1.0);
  expect_never_overclaims(driver, 1.4, 1.0);
}

TEST(QuiescentUntil, RectifiedSineNeverOverclaimsHalfAndFullWave) {
  const trace::SineVoltageSource source(3.3, 6.0);
  const circuit::RectifiedSourceDriver half(source, circuit::RectifierParams{});
  expect_never_overclaims(half, 0.0, 1.0);
  expect_never_overclaims(half, 2.1, 1.0);
  circuit::RectifierParams full;
  full.kind = circuit::RectifierKind::full_wave;
  const circuit::RectifiedSourceDriver full_driver(source, full);
  expect_never_overclaims(full_driver, 0.0, 1.0);
  expect_never_overclaims(full_driver, 2.1, 1.0);
}

TEST(QuiescentUntil, OffsetSineNeverOverclaims) {
  // A DC offset moves both band edges into play.
  const trace::SineVoltageSource source(1.2, 3.0, 1.0);
  const circuit::RectifiedSourceDriver driver(source, circuit::RectifierParams{});
  expect_never_overclaims(driver, 0.0, 2.0);
  expect_never_overclaims(driver, 0.9, 2.0);
}

TEST(QuiescentUntil, HarvesterRfFieldNeverOverclaims) {
  trace::RfFieldSource::Params rf;
  rf.burst_length = 0.25;
  rf.burst_period = 1.5;
  rf.jitter = 0.3;
  const trace::RfFieldSource source(rf, 42, 8.0);
  const circuit::HarvesterPowerDriver driver(source, {});
  expect_never_overclaims(driver, 0.0, 8.0);
}

TEST(QuiescentUntil, HarvesterMarkovNeverOverclaims) {
  const trace::MarkovOnOffPowerSource source(1e-3, 0.05, 0.4, 7, 6.0);
  const circuit::HarvesterPowerDriver driver(source, {});
  expect_never_overclaims(driver, 0.0, 6.0);
}

TEST(QuiescentUntil, HarvesterSolarNightNeverOverclaims) {
  trace::OutdoorSolarSource::Params params;
  const trace::OutdoorSolarSource source(params, 3, 2);
  const circuit::HarvesterPowerDriver driver(source, {});
  // Query across the two modelled days plus the permanent night beyond.
  const int kQueries = 300;
  for (int q = 0; q < kQueries; ++q) {
    const Seconds t = 3.0 * 86400.0 * q / kQueries;
    const Seconds u = driver.quiescent_until(0.0, t);
    ASSERT_GE(u, t);
    if (u <= t) continue;
    const Seconds end = std::min(u, 3.0 * 86400.0);
    for (int s = 0; s < 200; ++s) {
      const Seconds instant = t + (end - t) * (s / 200.0);
      ASSERT_EQ(driver.current_into(0.0, instant), 0.0) << "t=" << t << " u=" << u;
    }
  }
}

// ---------------------------------------------------- QuietSegmentIndex ---

TEST(QuietSegmentIndex, WalksCellsAndHonoursHeadAndTail) {
  // Three cells of 1 s: [-1,1], [0,0], [2,3]; zero head, constant-2 tail.
  const trace::QuietSegmentIndex index(
      10.0, 1.0, {{-1.0, 1.0}, {0.0, 0.0}, {2.0, 3.0}}, {0.0, 0.0}, {2.0, 2.0});
  // Query before the span: head ok, then cells 0 and 1 fit [-1, 1.5], cell
  // 2 violates -> quiet until its start.
  EXPECT_DOUBLE_EQ(index.bounded_until(-1.0, 1.5, 3.0), 12.0);
  // A band the first cell violates claims nothing.
  EXPECT_DOUBLE_EQ(index.bounded_until(-0.5, 0.5, 10.5), 10.5);
  // From inside the last cell with a wide band: the tail fits too ->
  // forever.
  EXPECT_TRUE(std::isinf(index.bounded_until(0.0, 3.0, 12.5)));
  // Past the span only the tail matters.
  EXPECT_TRUE(std::isinf(index.bounded_until(1.5, 2.5, 99.0)));
  EXPECT_DOUBLE_EQ(index.bounded_until(0.0, 1.0, 99.0), 99.0);
  // Inverted bands claim nothing.
  EXPECT_DOUBLE_EQ(index.bounded_until(1.0, 0.0, 3.0), 3.0);
  // An empty index is the all-zero signal.
  const trace::QuietSegmentIndex zero;
  EXPECT_TRUE(std::isinf(zero.bounded_until(0.0, 0.0, 5.0)));
}

TEST(QuietSegmentIndex, BoundaryQueriesNeverReturnSliverClaims) {
  // Cell 0 fits the band, cell 1 violates it: the claim boundary is 11 s.
  const trace::QuietSegmentIndex index(
      10.0, 1.0, {{0.0, 0.5}, {2.0, 3.0}}, {0.0, 0.0}, {0.0, 0.0});
  // A genuine claim from mid-cell runs to the violating cell's start.
  EXPECT_DOUBLE_EQ(index.bounded_until(-1.0, 1.0, 10.5), 11.0);
  // One ulp before the boundary the nominal claim end (11.0) exceeds t by
  // ~2e-15 — a "span" no simulation step fits inside. The sliver guard must
  // claim nothing rather than send the engine around its plan/fine-step
  // loop without advancing (the loud zero-progress check in the simulator
  // is the other half of this contract).
  const Seconds t_edge = std::nextafter(11.0, 0.0);
  EXPECT_DOUBLE_EQ(index.bounded_until(-1.0, 1.0, t_edge), t_edge);
  // Exactly at the boundary the home cell itself violates: nothing.
  EXPECT_DOUBLE_EQ(index.bounded_until(-1.0, 1.0, 11.0), 11.0);
  // Dense ladder across the boundary: every answer is either no-claim
  // (== t) or usably wide (> t by more than the guard's rounding margin) —
  // never a positive-but-unusable sliver.
  for (int k = -50; k <= 50; ++k) {
    const Seconds t = 11.0 + static_cast<double>(k) * 1e-13;
    const Seconds u = index.bounded_until(-1.0, 1.0, t);
    const Seconds margin = 1e-12 * std::abs(t);
    EXPECT_TRUE(u == t || u > t + margin) << "sliver claim at k=" << k;
  }
}

/// Samples the source densely over every span its bounded_until claims and
/// fails on any excursion outside the band — the one property the wind /
/// kinetic quiet hints rest on (the stochastic mirror of
/// expect_never_overclaims, one level down the driver stack).
void expect_band_never_overclaims(const trace::VoltageSource& source,
                                  Volts floor, Volts ceiling, Seconds horizon) {
  const int kQueries = 400;
  const int kSamplesPerSpan = 400;
  int claimed = 0;
  for (int q = 0; q < kQueries; ++q) {
    const Seconds t = horizon * static_cast<double>(q) / kQueries;
    const Seconds u = source.bounded_until(floor, ceiling, t);
    ASSERT_GE(u, t);
    if (u <= t) continue;
    ++claimed;
    const Seconds end = std::min(u, horizon + 2.0);
    for (int s = 0; s < kSamplesPerSpan; ++s) {
      const Seconds instant =
          t + (end - t) * (static_cast<double>(s) / kSamplesPerSpan);
      const Volts v = source.open_circuit_voltage(instant);
      ASSERT_GE(v, floor) << source.name() << " claimed [" << floor << ", "
                          << ceiling << "] at t=" << t << " until " << u
                          << " but reads " << v << " at " << instant;
      ASSERT_LE(v, ceiling) << source.name() << " claimed [" << floor << ", "
                            << ceiling << "] at t=" << t << " until " << u
                            << " but reads " << v << " at " << instant;
    }
  }
  EXPECT_GT(claimed, 0) << "the index never claimed a span for ["
                        << floor << ", " << ceiling << "]";
}

TEST(QuietSegmentIndex, WindTurbineNeverOverclaims) {
  trace::WindTurbineSource::Params params;
  params.peak_voltage = 5.0;
  params.peak_frequency = 6.0;
  for (const std::uint64_t seed : {3u, 11u, 42u}) {
    const trace::WindTurbineSource source(params, seed, 25.0);
    ASSERT_GT(source.quiet_index().cell_count(), 0u);
    // The rectifier's conduction bands at a dead node, a sleeping node and
    // a nearly-charged node (half-wave: floor is unbounded).
    const double inf = std::numeric_limits<double>::infinity();
    expect_band_never_overclaims(source, -inf, 0.25, 30.0);
    expect_band_never_overclaims(source, -inf, 2.3, 30.0);
    expect_band_never_overclaims(source, -3.0, 3.0, 30.0);  // full-wave style
  }
}

TEST(QuietSegmentIndex, KineticHarvesterNeverOverclaims) {
  trace::KineticHarvesterSource::Params params;
  for (const std::uint64_t seed : {3u, 11u}) {
    const trace::KineticHarvesterSource source(params, seed, 12.0);
    ASSERT_GT(source.quiet_index().cell_count(), 0u);
    const double inf = std::numeric_limits<double>::infinity();
    expect_band_never_overclaims(source, -inf, 0.25, 15.0);
    expect_band_never_overclaims(source, -1.0, 1.0, 15.0);
  }
}

TEST(QuietSegmentIndex, RecordedTraceAnswersArbitraryBands) {
  // A sine burst trace: the index must claim the sub-ceiling arcs inside
  // the burst, not just the zero gap — and never overclaim either.
  const auto wave = trace::Waveform::sample(
      [](Seconds t) {
        return t < 1.0 ? 3.3 * std::sin(2.0 * M_PI * 6.0 * t) : 0.0;
      },
      0.0, 3.0, 30001);
  const trace::WaveformVoltageSource source(wave, 50.0);
  const double inf = std::numeric_limits<double>::infinity();
  expect_band_never_overclaims(source, -inf, 2.5, 3.0);
  expect_band_never_overclaims(source, -inf, 0.25, 3.0);
  // Inside the burst, below-ceiling stretches must actually be claimed
  // (t = 0.09 sits past a positive peak... pick the negative half-cycle).
  const Seconds u = source.bounded_until(-inf, 0.25, 0.09);
  EXPECT_GT(u, 0.09);
}

/// Queries linear_until over a t x horizon lattice, densely samples the
/// true source over every certified window, and fails on any instant where
/// the deviation from the chord escapes the certified envelope — the
/// never-overclaim property every ramp span rests on (the interval mirror
/// of expect_band_never_overclaims). Horizons span the contractor's range:
/// sub-cell slivers through multi-cell runs.
void expect_cert_never_overclaims(const trace::VoltageSource& source,
                                  Seconds t_end) {
  const int kQueries = 240;
  const int kSamples = 160;
  int certified = 0;
  for (const Seconds horizon : {5e-4, 4e-3, 32e-3}) {
    for (int q = 0; q < kQueries; ++q) {
      const Seconds t = t_end * static_cast<double>(q) / kQueries;
      const trace::VoltageSource::LinearCert cert = source.linear_until(t, horizon);
      if (!cert.valid) continue;
      ASSERT_GT(cert.until, t) << "valid certificate with an empty window";
      ASSERT_LE(cert.until, t + horizon * (1.0 + 1e-12))
          << "certificate outruns the requested horizon";
      ASSERT_LE(cert.err_lo, 0.0);
      ASSERT_GE(cert.err_hi, 0.0);
      ++certified;
      // The contract is half-open [t, until): sample up to one ulp short.
      const Seconds end = std::nextafter(cert.until, t);
      for (int s = 0; s <= kSamples; ++s) {
        const Seconds offs = (end - t) * (static_cast<double>(s) / kSamples);
        const Volts truth = source.open_circuit_voltage(t + offs);
        const Volts chord = cert.value + cert.slope * offs;
        const Volts dev = truth - chord;
        const Volts slack = 1e-12 * (1.0 + std::abs(truth));
        ASSERT_GE(dev, cert.err_lo - slack)
            << source.name() << " escapes its envelope low side at t=" << t
            << " offs=" << offs << " (dev " << dev << " < " << cert.err_lo << ")";
        ASSERT_LE(dev, cert.err_hi + slack)
            << source.name() << " escapes its envelope high side at t=" << t
            << " offs=" << offs << " (dev " << dev << " > " << cert.err_hi << ")";
      }
    }
  }
  EXPECT_GT(certified, 0) << source.name() << " never certified a chord";
}

TEST(LinearCert, SineChordsNeverOverclaim) {
  expect_cert_never_overclaims(trace::SineVoltageSource(3.3, 6.0, 0.5), 1.0);
  expect_cert_never_overclaims(trace::SineVoltageSource(5.0, 20.0), 0.4);
  // A degenerate sine is DC: the exact constant certificate, zero envelope.
  const trace::SineVoltageSource dc(0.0, 6.0, 2.5);
  const auto flat = dc.linear_until(0.3, 1e-3);
  ASSERT_TRUE(flat.valid);
  EXPECT_DOUBLE_EQ(flat.slope, 0.0);
  EXPECT_DOUBLE_EQ(flat.err_lo, 0.0);
  EXPECT_DOUBLE_EQ(flat.err_hi, 0.0);
  EXPECT_DOUBLE_EQ(flat.value, 2.5);
}

TEST(LinearCert, WindChordsNeverOverclaimIncludingGustTails) {
  trace::WindTurbineSource::Params params;
  params.peak_voltage = 5.0;
  params.peak_frequency = 6.0;
  for (const std::uint64_t seed : {3u, 11u, 42u}) {
    // Query 2 s past the built horizon so the gust tails — decaying
    // envelopes beyond the last indexed cell — are exercised too.
    const trace::WindTurbineSource source(params, seed, 10.0);
    expect_cert_never_overclaims(source, 12.0);
  }
}

TEST(LinearCert, RecordedTraceChordsNeverOverclaim) {
  const auto wave = trace::Waveform::sample(
      [](Seconds t) {
        return t < 1.0 ? 3.3 * std::sin(2.0 * M_PI * 6.0 * t) : 0.0;
      },
      0.0, 3.0, 30001);
  expect_cert_never_overclaims(trace::WaveformVoltageSource(wave, 50.0), 3.0);
}

TEST(QuiescentUntil, RectifiedWindAndKineticNeverOverclaim) {
  // The full driver stack over the stochastic sources: quiescent_until
  // derives its band from the diode drop + node floor and must inherit the
  // index's conservativeness.
  trace::WindTurbineSource::Params wind;
  wind.peak_voltage = 5.0;
  wind.peak_frequency = 6.0;
  const trace::WindTurbineSource wind_source(wind, 3, 10.0);
  const circuit::RectifiedSourceDriver wind_driver(wind_source,
                                                   circuit::RectifierParams{});
  expect_never_overclaims(wind_driver, 0.0, 12.0);
  expect_never_overclaims(wind_driver, 2.0, 12.0);

  const trace::KineticHarvesterSource kinetic({}, 7, 8.0);
  const circuit::RectifiedSourceDriver kinetic_driver(kinetic,
                                                      circuit::RectifierParams{});
  expect_never_overclaims(kinetic_driver, 0.0, 10.0);
}

TEST(QuiescentUntil, TraceBackedSourcesNeverOverclaim) {
  const auto envelope = trace::Waveform::sample(
      [](Seconds t) {
        const double cycle = t - std::floor(t / 2.0) * 2.0;
        return cycle < 0.4 ? 3.0 : 0.0;
      },
      0.0, 8.0, 8001);
  const trace::WaveformVoltageSource vsource(envelope, 50.0);
  const circuit::RectifiedSourceDriver vdriver(vsource, circuit::RectifierParams{});
  expect_never_overclaims(vdriver, 0.0, 8.0);

  const trace::WaveformPowerSource psource(
      envelope.map([](double v) { return v * 1e-3; }));
  const circuit::HarvesterPowerDriver pdriver(psource, {});
  expect_never_overclaims(pdriver, 0.0, 8.0);
}

// ------------------------------------------------- macro vs fine runs -----

spec::SystemSpec square_brownout_spec() {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 2.0, 0.3, 0.0, 50.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 5000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = 3;
  s.sim.t_end = 4.0;
  s.sim.stop_on_completion = false;  // exercise every brown-out tail
  return s;
}

spec::SystemSpec rf_duty_cycle_spec() {
  spec::SystemSpec s;
  trace::RfFieldSource::Params rf;
  rf.field_power = 2e-3;
  rf.burst_length = 0.4;
  rf.burst_period = 2.5;
  s.source = spec::RfFieldPower{rf, 11, 10.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 5000.0;
  s.workload.kind = "crc";
  s.workload.seed = 3;
  s.sim.t_end = 10.0;
  s.sim.stop_on_completion = false;
  return s;
}

spec::SystemSpec trace_source_spec() {
  // A recorded bursty open-circuit voltage with exact zero gaps.
  const auto wave = trace::Waveform::sample(
      [](Seconds t) {
        const double cycle = t - std::floor(t / 2.0) * 2.0;
        return cycle < 0.5 ? 3.3 : 0.0;
      },
      0.0, 6.0, 60001);
  spec::SystemSpec s;
  s.source = spec::VoltageTraceSource{wave, 50.0, "burst-trace"};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 8000.0;
  s.workload.kind = "crc";
  s.workload.seed = 5;
  s.sim.t_end = 6.0;
  s.sim.stop_on_completion = false;
  return s;
}

struct Pair {
  sim::SimResult fine;
  sim::SimResult macro;
};

Pair run_pair(spec::SystemSpec s) {
  s.sim.macro_stepping = false;
  auto fine_system = spec::instantiate(s);
  Pair pair;
  pair.fine = fine_system.run();
  s.sim.macro_stepping = true;
  auto macro_system = spec::instantiate(s);
  pair.macro = macro_system.run();
  return pair;
}

/// The documented macro-vs-fine agreement contract (see README
/// "Performance"): discrete event counts equal, times within a small
/// number of steps, energies within 1%, ledger closed.
void expect_agreement(const Pair& pair, Seconds dt, Farads c = 22e-6,
                      Seconds time_slack = 0.0, double energy_rel = 0.01) {
  if (time_slack <= 0.0) time_slack = 50.0 * dt;
  const auto& f = pair.fine;
  const auto& m = pair.macro;

  // Discrete events.
  EXPECT_EQ(f.mcu.boots, m.mcu.boots);
  EXPECT_EQ(f.mcu.brownouts, m.mcu.brownouts);
  EXPECT_EQ(f.mcu.saves_completed, m.mcu.saves_completed);
  EXPECT_EQ(f.mcu.restores, m.mcu.restores);
  EXPECT_EQ(f.mcu.completed, m.mcu.completed);

  // Wall-clock bookkeeping: the time split may shift by a few steps per
  // power cycle (or by the caller's slack when a governor quantizes).
  const Seconds slack =
      std::max(50.0 * dt, time_slack) *
      static_cast<double>(std::max<std::uint64_t>(f.mcu.brownouts + 1, 1));
  EXPECT_NEAR(f.end_time, m.end_time, dt);
  EXPECT_NEAR(f.mcu.time_off, m.mcu.time_off, slack);
  EXPECT_NEAR(f.mcu.time_active, m.mcu.time_active, slack);

  // Energies within 1% (the fine path's own discretisation scale) unless
  // the caller widened the band — a DFS governor turns sub-millivolt
  // trajectory differences into discrete frequency choices, so governed
  // scenarios legitimately spread further while the event sequence and the
  // workload result stay identical.
  const auto near_rel = [](double a, double b, double rel, double abs_floor) {
    EXPECT_NEAR(a, b, std::max(std::abs(b) * rel, abs_floor)) << a << " vs " << b;
  };
  near_rel(m.harvested, f.harvested, energy_rel, 1e-9);
  near_rel(m.consumed, f.consumed, energy_rel, 1e-9);
  near_rel(m.dissipated, f.dissipated, energy_rel, 1e-9);
  near_rel(m.mcu.energy_total(), f.mcu.energy_total(), energy_rel, 1e-9);

  // End state: voltages agree to millivolts.
  const auto to_volts = [](Joules stored, Farads cap) {
    return std::sqrt(std::max(2.0 * stored / cap, 0.0));
  };
  EXPECT_NEAR(to_volts(m.stored_final, c), to_volts(f.stored_final, c), 5e-3);

  // The ledger closes on both paths (macro spans close exactly by
  // construction, so the macro residual must not be worse).
  EXPECT_LT(std::abs(f.ledger_residual()), 1e-6 + 1e-6 * f.harvested);
  EXPECT_LT(std::abs(m.ledger_residual()), 1e-6 + 1e-6 * m.harvested);

  // Transition timelines: same state sequence, times within a few steps
  // (or the caller's slack — a DFS governor quantizes frequency, so
  // sub-millivolt span-boundary differences can shift a control window).
  ASSERT_EQ(f.transitions.size(), m.transitions.size());
  for (std::size_t i = 0; i < f.transitions.size(); ++i) {
    EXPECT_EQ(f.transitions[i].from, m.transitions[i].from) << "transition " << i;
    EXPECT_EQ(f.transitions[i].to, m.transitions[i].to) << "transition " << i;
    EXPECT_NEAR(f.transitions[i].time, m.transitions[i].time, time_slack)
        << "transition " << i;
  }
}

TEST(MacroStep, SquareSupplyBrownoutTailsAgree) {
  const auto pair = run_pair(square_brownout_spec());
  ASSERT_GT(pair.fine.mcu.brownouts, 2u);  // the scenario must brown out
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, RfDutyCycleAgrees) {
  const auto pair = run_pair(rf_duty_cycle_spec());
  ASSERT_GT(pair.fine.mcu.brownouts, 1u);
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, RecordedTraceAgrees) {
  const auto pair = run_pair(trace_source_spec());
  ASSERT_GT(pair.fine.mcu.brownouts, 1u);
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, GovernedRunStaysLockStep) {
  spec::SystemSpec s = square_brownout_spec();
  s.governor = neutral::McuDfsGovernor::Config{};
  const auto pair = run_pair(s);
  // The governed contract holds at the *default* 1% / 50-step band: with
  // interval-certified crossings every span provably ends outside the
  // watchers' error envelopes, so span-boundary voltages no longer flip
  // DFS frequency decisions (PR 5's ad-hoc 3%/5 ms escape is retired;
  // MacroStep.SpanBoundaryPerturbationKeepsDfsDecisions pins the
  // mechanism).
  expect_agreement(pair, 10e-6);
}

TEST(MacroStep, SpanBoundaryPerturbationKeepsDfsDecisions) {
  // The bug the 3% escape papered over: span-boundary voltages deviating
  // from the fine trajectory by well under a millivolt flipped discrete
  // DFS frequency choices at control instants near the dead-band edge.
  // With interval-certified crossings the macro path must now make the
  // *identical decision sequence*: the governed frequency trajectory,
  // sampled every control period and run-length encoded (so a decision is
  // compared by value and order, not by the +/- one-sample timing shift
  // the transition slack already allows), matches the fine path exactly.
  spec::SystemSpec s = square_brownout_spec();
  s.governor = neutral::McuDfsGovernor::Config{};
  s.sim.probe_interval = 1e-3;  // == the control period: every decision sampled
  const auto pair = run_pair(s);
  const auto* fine_f = pair.fine.probes.find("freq_mhz");
  const auto* macro_f = pair.macro.probes.find("freq_mhz");
  ASSERT_NE(fine_f, nullptr);
  ASSERT_NE(macro_f, nullptr);
  const auto decisions = [](const trace::Waveform& w) {
    std::vector<double> rle;
    for (double f : w.samples()) {
      if (rle.empty() || rle.back() != f) rle.push_back(f);
    }
    return rle;
  };
  const auto fine_rle = decisions(*fine_f);
  const auto macro_rle = decisions(*macro_f);
  // The scenario must actually exercise the quantizer, or the test proves
  // nothing: several distinct decisions across the brown-out cycles.
  ASSERT_GT(fine_rle.size(), 4u);
  EXPECT_EQ(fine_rle, macro_rle);
}

TEST(MacroStep, ProbeScheduleStaysLockStep) {
  spec::SystemSpec s = square_brownout_spec();
  s.sim.probe_interval = 1e-3;
  const auto pair = run_pair(s);
  const auto* fine_vcc = pair.fine.probes.find("vcc");
  const auto* macro_vcc = pair.macro.probes.find("vcc");
  ASSERT_NE(fine_vcc, nullptr);
  ASSERT_NE(macro_vcc, nullptr);
  // Lock-step schedule: exactly the same sample count and time base.
  ASSERT_EQ(fine_vcc->size(), macro_vcc->size());
  EXPECT_DOUBLE_EQ(fine_vcc->t0(), macro_vcc->t0());
  // Values track within tens of millivolts everywhere (the decay tails are
  // analytic vs Euler; the bursts are simulated identically up to span
  // boundary shifts).
  double worst = 0.0;
  for (std::size_t i = 0; i < fine_vcc->size(); ++i) {
    worst = std::max(worst,
                     std::abs(fine_vcc->samples()[i] - macro_vcc->samples()[i]));
  }
  EXPECT_LT(worst, 0.05);
  // The other channels stay lock-step too.
  EXPECT_EQ(pair.fine.probes.find("state")->size(),
            pair.macro.probes.find("state")->size());
}

TEST(MacroStep, CompletionDigestMatchesFinePath) {
  // The workload's result must be bit-identical: macro spans never touch
  // program state.
  spec::SystemSpec s = square_brownout_spec();
  s.sim.stop_on_completion = true;
  s.sim.t_end = 20.0;

  s.sim.macro_stepping = false;
  auto fine = spec::instantiate(s);
  const auto fine_result = fine.run();
  s.sim.macro_stepping = true;
  auto macro = spec::instantiate(s);
  const auto macro_result = macro.run();
  ASSERT_TRUE(fine_result.mcu.completed);
  ASSERT_TRUE(macro_result.mcu.completed);
  EXPECT_EQ(fine.program().result_digest(), macro.program().result_digest());
  EXPECT_NEAR(fine_result.mcu.completion_time, macro_result.mcu.completion_time,
              1e-3);
}

// --------------------------------------------- sleep-span macro tests -----
// The quiescent engine's new regime: the MCU asleep (or waiting/done) with
// live comparators, macro-stepped to the analytic comparator/v_min
// crossing. Hibernus on the Fig 7 / Fig 8 scenario classes is the paper's
// own exhibit for this.

/// Hibernus that records every comparator callback, so fine and macro runs
/// can be compared event for event (name, edge, interpolated time) — the
/// contract that sleep spans re-enter fine stepping before every crossing.
struct EventLog {
  std::vector<circuit::ComparatorEvent> events;
};

class RecordingHibernus final : public checkpoint::InterruptPolicy {
 public:
  RecordingHibernus(const Config& config, std::shared_ptr<EventLog> log)
      : InterruptPolicy(config, "recording-hibernus"), log_(std::move(log)) {}

  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override {
    log_->events.push_back(event);
    InterruptPolicy::on_comparator(mcu, event);
  }

 private:
  std::shared_ptr<EventLog> log_;
};

/// The Fig 7 configuration with an event-recording hibernus attached.
spec::SystemSpec fig7_spec(const std::shared_ptr<EventLog>& log) {
  spec::SystemSpec s;
  s.source = spec::SineSource{3.3, 6.0};
  s.storage.capacitance = 47e-6;
  s.storage.bleed = 3000.0;
  s.workload.kind = "fft-large";
  s.workload.seed = 7;
  checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;
  config.restore_headroom = 0.35;
  s.policy = spec::CustomPolicy{
      [config, log](const std::function<Farads()>&, Farads node_capacitance) {
        checkpoint::InterruptPolicy::Config c = config;
        c.capacitance = node_capacitance;
        return std::make_unique<RecordingHibernus>(c, log);
      }};
  s.sim.t_end = 2.0;
  s.sim.stop_on_completion = false;
  return s;
}

/// The Fig 7 system across harvesting gaps (the fig7_hibernus_fft --macro
/// survey, shortened): 0.5 s bursts of the 6 Hz sine every 5 s with
/// decay-to-zero intervals — save -> sleep -> brown-out -> dead node.
spec::SystemSpec fig7_gapped_spec(const std::shared_ptr<EventLog>& log) {
  auto s = fig7_spec(log);
  const auto wave = trace::Waveform::sample(
      [](Seconds t) {
        const double cycle = t - std::floor(t / 5.0) * 5.0;
        return cycle < 0.5 ? 3.3 * std::sin(2.0 * M_PI * 6.0 * t) : 0.0;
      },
      0.0, 10.0, 200001);
  s.source = spec::VoltageTraceSource{wave, 50.0, "fig7-gapped"};
  s.sim.t_end = 10.0;
  return s;
}

struct LoggedRun {
  sim::SimResult result;
  std::shared_ptr<EventLog> log;
};

LoggedRun run_logged(spec::SystemSpec (*make_spec)(const std::shared_ptr<EventLog>&),
                     bool macro) {
  LoggedRun run;
  run.log = std::make_shared<EventLog>();
  spec::SystemSpec s = make_spec(run.log);
  s.sim.macro_stepping = macro;
  auto system = spec::instantiate(s);
  run.result = system.run();
  return run;
}

void expect_identical_event_sequences(const EventLog& fine, const EventLog& macro,
                                      Seconds dt) {
  ASSERT_EQ(fine.events.size(), macro.events.size());
  for (std::size_t i = 0; i < fine.events.size(); ++i) {
    EXPECT_EQ(fine.events[i].name, macro.events[i].name) << "event " << i;
    EXPECT_EQ(fine.events[i].edge, macro.events[i].edge) << "event " << i;
    EXPECT_DOUBLE_EQ(fine.events[i].threshold, macro.events[i].threshold)
        << "event " << i;
    EXPECT_NEAR(fine.events[i].time, macro.events[i].time, 50.0 * dt)
        << "event " << i;
  }
}

TEST(SleepSpan, Fig7HibernusEventSequenceAndLedgerAgree) {
  const LoggedRun fine = run_logged(fig7_spec, false);
  const LoggedRun macro = run_logged(fig7_spec, true);
  // The scenario must actually exercise the sleep machinery.
  ASSERT_GT(fine.result.mcu.saves_completed, 0u);
  ASSERT_GT(fine.result.mcu.time_sleep, 0.0);
  ASSERT_GT(fine.log->events.size(), 4u);

  expect_identical_event_sequences(*fine.log, *macro.log, 10e-6);
  expect_agreement(Pair{fine.result, macro.result}, 10e-6, 47e-6);
  EXPECT_EQ(fine.result.mcu.direct_resumes, macro.result.mcu.direct_resumes);
  // The sleep ledger split must track, not just the totals.
  EXPECT_NEAR(fine.result.mcu.time_sleep, macro.result.mcu.time_sleep, 1e-3);
  EXPECT_NEAR(fine.result.mcu.energy_sleep, macro.result.mcu.energy_sleep,
              std::max(1e-9, 0.02 * fine.result.mcu.energy_sleep));
}

TEST(SleepSpan, Fig7HarvestingGapsEventSequenceAndLedgerAgree) {
  const LoggedRun fine = run_logged(fig7_gapped_spec, false);
  const LoggedRun macro = run_logged(fig7_gapped_spec, true);
  ASSERT_GT(fine.result.mcu.brownouts, 1u);
  ASSERT_GT(fine.log->events.size(), 4u);

  expect_identical_event_sequences(*fine.log, *macro.log, 10e-6);
  expect_agreement(Pair{fine.result, macro.result}, 10e-6, 47e-6);
  EXPECT_EQ(fine.result.mcu.restores, macro.result.mcu.restores);
  EXPECT_EQ(fine.result.nvm_commits, macro.result.nvm_commits);
}

/// A sleep-*dominated* scenario with analytic driver hints: a low-duty
/// square supply (exact edge arithmetic) on a big, lightly-bled node, so
/// each gap starts with a long comparator-watched sleep decay before the
/// v_min brown-out. This is the span class PR 3 could not touch.
spec::SystemSpec sleepy_square_spec() {
  spec::SystemSpec s;
  // 0.1 s bursts every 4 s: too short to finish the raytrace, so every gap
  // begins with a live workload hibernating through V_H.
  s.source = spec::SquareSource{3.3, 0.25, 0.025, 0.0, 50.0};
  s.storage.capacitance = 100e-6;
  s.storage.bleed = 10000.0;
  s.workload.kind = "raytrace";  // ~1.4 Mcycles: needs several bursts
  s.workload.seed = 3;
  checkpoint::InterruptPolicy::Config config;
  // Designer-pinned V_H well above v_min: the hibernate band 2.2 V ->
  // 1.8 V is then a ~0.2 s comparator-watched sleep decay per gap (Eq 4
  // would put V_H a hair above v_min on a 100 uF node and leave no band).
  config.v_hibernate = 2.2;
  config.restore_headroom = 0.4;
  s.policy = spec::Hibernus{config};
  s.sim.t_end = 16.0;
  s.sim.stop_on_completion = false;
  s.sim.probe_interval = 1e-3;
  return s;
}

TEST(SleepSpan, SleepDominatedSquareAgreesAndKeepsProbesLockStep) {
  const auto pair = run_pair(sleepy_square_spec());
  // The scenario must spend real time asleep with live comparators.
  ASSERT_GT(pair.fine.mcu.time_sleep, 0.05);
  ASSERT_GT(pair.fine.mcu.saves_completed, 0u);
  expect_agreement(pair, 10e-6, 100e-6);
  EXPECT_NEAR(pair.fine.mcu.time_sleep, pair.macro.mcu.time_sleep, 1e-3);

  const auto* fine_state = pair.fine.probes.find("state");
  const auto* macro_state = pair.macro.probes.find("state");
  ASSERT_NE(fine_state, nullptr);
  ASSERT_NE(macro_state, nullptr);
  ASSERT_EQ(fine_state->size(), macro_state->size());
  // The replayed probe schedule must report the same state trajectory up
  // to a handful of samples around span boundaries.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < fine_state->size(); ++i) {
    if (fine_state->samples()[i] != macro_state->samples()[i]) ++mismatches;
  }
  EXPECT_LT(mismatches, fine_state->size() / 100);
}

TEST(SleepSpan, GovernedSleepRunStaysLockStep) {
  // Governor deadlines cap sleep-class spans exactly like off spans. The
  // governed run finishes the workload early (DFS keeps it alive through
  // the gaps' heads) and then idles *done* through every gap — the done
  // spans must stay in lock-step with the governor's control schedule.
  spec::SystemSpec s = sleepy_square_spec();
  s.governor = neutral::McuDfsGovernor::Config{};
  const auto pair = run_pair(s);
  ASSERT_GT(pair.fine.mcu.time_done, 0.5);
  // Default 1% / 50-step band — governed runs get no widened escape (see
  // MacroStep.GovernedRunStaysLockStep).
  expect_agreement(pair, 10e-6, 100e-6);
  EXPECT_NEAR(pair.fine.mcu.time_done, pair.macro.mcu.time_done, 1e-2);
}

// --------------------------------------------- charge-span macro tests ----
// The charge-span planner: certified piecewise-constant driver windows
// jump MCU-off/wait/sleep/done charging ramps to the analytic power-on /
// rising-comparator crossing (circuit::ChargeSolution).

/// The Fig 7 design point fed 50 ms DC bursts every 5 s (the charge-ramp
/// survey, shortened and with bursts too short to finish the FFT in one
/// go, so every burst end hibernates through a save): every burst is one
/// certified constant window, so boot ramps, wait-for-V_R ramps and the
/// parked equilibrium all become charge spans, separated by the usual
/// decay-to-zero gaps.
spec::SystemSpec charge_ramp_spec(const std::shared_ptr<EventLog>& log) {
  auto s = fig7_spec(log);
  s.source = spec::SquareSource{3.3, 0.2, 0.01, 0.0, 50.0};
  s.sim.t_end = 10.0;
  return s;
}

TEST(ChargeSpan, Fig7ChargeRampEventSequenceAndLedgerAgree) {
  const LoggedRun fine = run_logged(charge_ramp_spec, false);
  const LoggedRun macro = run_logged(charge_ramp_spec, true);
  // The scenario must exercise the full hibernate cycle across ramps.
  ASSERT_GT(fine.result.mcu.boots, 1u);
  ASSERT_GT(fine.result.mcu.saves_completed, 0u);
  ASSERT_GT(fine.log->events.size(), 4u);
  // The macro run must actually take charge spans (the whole point): with
  // bursts 0.5 s of every 5 s and all regimes analytic, the fine-stepped
  // remainder must be a small fraction of the horizon.
  EXPECT_GT(macro.result.span_steps, 4 * macro.result.fine_steps);

  expect_identical_event_sequences(*fine.log, *macro.log, 10e-6);
  expect_agreement(Pair{fine.result, macro.result}, 10e-6, 47e-6);
  EXPECT_EQ(fine.result.mcu.restores, macro.result.mcu.restores);
  EXPECT_EQ(fine.result.nvm_commits, macro.result.nvm_commits);
  // Charge spans book real harvested energy; the ledger must still close.
  ASSERT_GT(macro.result.harvested, 0.0);
}

TEST(ChargeSpan, DisablingTheFlagStillAgreesAndIsReallySlowerPathed) {
  // charge_spans=false under macro_stepping must fall back to decay-only
  // planning: same accuracy contract, strictly fewer span steps (the
  // charging ramps run finely again) — the ablation knob works.
  auto log = std::make_shared<EventLog>();
  spec::SystemSpec s = charge_ramp_spec(log);
  s.sim.macro_stepping = true;
  auto with_system = spec::instantiate(s);
  const auto with_spans = with_system.run();
  s.sim.charge_spans = false;
  auto without_system = spec::instantiate(s);
  const auto without_spans = without_system.run();
  EXPECT_EQ(with_spans.mcu.boots, without_spans.mcu.boots);
  EXPECT_EQ(with_spans.mcu.saves_completed, without_spans.mcu.saves_completed);
  EXPECT_GT(with_spans.span_steps, without_spans.span_steps);
}

TEST(ChargeSpan, FlagOffFineRunStaysBitIdentical) {
  // Without macro_stepping the charge_spans flag must never be read: the
  // fine path over the charge-heavy scenario is bit-identical whichever
  // way it is set.
  auto run_fine = [](bool charge_spans) {
    auto log = std::make_shared<EventLog>();
    spec::SystemSpec s = charge_ramp_spec(log);
    s.sim.macro_stepping = false;
    s.sim.charge_spans = charge_spans;
    auto system = spec::instantiate(s);
    return system.run();
  };
  const auto on = run_fine(true);
  const auto off = run_fine(false);
  EXPECT_EQ(on.end_time, off.end_time);
  EXPECT_EQ(on.harvested, off.harvested);
  EXPECT_EQ(on.consumed, off.consumed);
  EXPECT_EQ(on.dissipated, off.dissipated);
  EXPECT_EQ(on.stored_final, off.stored_final);
  EXPECT_EQ(on.fine_steps, off.fine_steps);
  EXPECT_EQ(on.mcu.boots, off.mcu.boots);
  EXPECT_EQ(on.mcu.saves_completed, off.mcu.saves_completed);
}

// ----------------------------------------------- wind-survey macro tests --
// The stochastic quiet-segment index: Fig 8-class scenarios where the
// seeded wind/kinetic sample paths publish conservative per-cell bounds.

/// The Fig 8 design point (ungoverned): one gust over 6 s plus the start
/// of the tail, with an event-recording hibernus attached.
spec::SystemSpec fig8_wind_spec(const std::shared_ptr<EventLog>& log) {
  spec::SystemSpec s = fig7_spec(log);  // reuse the recording policy wiring
  trace::WindTurbineSource::Params wind;
  wind.peak_voltage = 5.0;
  wind.peak_frequency = 6.0;
  s.source = spec::WindSource{wind, 3, 8.0};
  s.storage.bleed = 10000.0;
  s.workload.kind = "crc";
  s.workload.seed = 9;
  s.sim.t_end = 8.0;
  return s;
}

TEST(WindSpan, Fig8WindEventSequenceAndLedgerAgree) {
  const LoggedRun fine = run_logged(fig8_wind_spec, false);
  const LoggedRun macro = run_logged(fig8_wind_spec, true);
  ASSERT_GT(fine.result.mcu.boots, 0u);
  ASSERT_GT(fine.log->events.size(), 2u);
  // The quiet-segment index must light the engine up on the wind source
  // (this sat at zero span steps before the index existed).
  EXPECT_GT(macro.result.span_steps, macro.result.fine_steps);

  expect_identical_event_sequences(*fine.log, *macro.log, 10e-6);
  expect_agreement(Pair{fine.result, macro.result}, 10e-6, 47e-6);
  EXPECT_EQ(fine.result.mcu.brownouts, macro.result.mcu.brownouts);
}

TEST(WindSpan, KineticHarvesterAgrees) {
  auto make_spec = [](const std::shared_ptr<EventLog>& log) {
    spec::SystemSpec s = fig7_spec(log);
    trace::KineticHarvesterSource::Params kinetic;
    s.source = spec::KineticSource{kinetic, 11, 6.0};
    s.storage.bleed = 10000.0;
    s.workload.kind = "crc";
    s.workload.seed = 5;
    s.sim.t_end = 6.0;
    return s;
  };
  const auto pair = [&] {
    spec::SystemSpec s = make_spec(std::make_shared<EventLog>());
    return run_pair(s);
  }();
  expect_agreement(pair, 10e-6, 47e-6);
  // The ring-down tails between steps must be claimed.
  EXPECT_GT(pair.macro.span_steps, 0u);
}

TEST(SleepSpan, FlagOffSleepScenarioStaysBitIdentical) {
  // With macro_stepping off, a sleep-heavy run must stay bit-identical
  // whether the (default-on) quiescent fast path is enabled or not — the
  // engine's dead-node skip is the only active regime and it is exact.
  auto run_with_fast_path = [](bool enabled) {
    spec::SystemSpec s = sleepy_square_spec();
    s.sim.quiescent_fast_path = enabled;
    auto system = spec::instantiate(s);
    return system.run();
  };
  const auto fast = run_with_fast_path(true);
  const auto slow = run_with_fast_path(false);
  EXPECT_EQ(fast.end_time, slow.end_time);
  EXPECT_EQ(fast.harvested, slow.harvested);
  EXPECT_EQ(fast.consumed, slow.consumed);
  EXPECT_EQ(fast.dissipated, slow.dissipated);
  EXPECT_EQ(fast.stored_final, slow.stored_final);
  EXPECT_EQ(fast.mcu.time_off, slow.mcu.time_off);
  EXPECT_EQ(fast.mcu.time_sleep, slow.mcu.time_sleep);
  EXPECT_EQ(fast.mcu.energy_sleep, slow.mcu.energy_sleep);
  EXPECT_EQ(fast.mcu.boots, slow.mcu.boots);
  EXPECT_EQ(fast.mcu.saves_completed, slow.mcu.saves_completed);
  const auto* fast_vcc = fast.probes.find("vcc");
  const auto* slow_vcc = slow.probes.find("vcc");
  ASSERT_NE(fast_vcc, nullptr);
  ASSERT_NE(slow_vcc, nullptr);
  EXPECT_EQ(fast_vcc->samples(), slow_vcc->samples());
}

TEST(MacroStep, FlagOffStaysBitIdenticalWithHintedFastPath) {
  // The quiescent fast path now consults driver hints (one virtual call
  // per dead span instead of one per substep), which must not change a
  // single bit while macro_stepping is off. Complements the RF-source
  // regression in sim_test.cpp with the square-voltage hint path.
  auto run_with_fast_path = [](bool enabled) {
    spec::SystemSpec s;
    s.source = spec::SquareSource{3.3, 0.5, 0.2, 0.0, 50.0};
    s.storage.capacitance = 22e-6;
    s.storage.bleed = 1000.0;  // fast decay: the node reaches exactly 0 V
    s.workload.kind = "crc";
    s.workload.seed = 3;
    s.sim.t_end = 6.0;
    s.sim.stop_on_completion = false;
    s.sim.probe_interval = 1e-3;
    s.sim.quiescent_fast_path = enabled;
    auto system = spec::instantiate(s);
    return system.run();
  };
  const auto fast = run_with_fast_path(true);
  const auto slow = run_with_fast_path(false);
  EXPECT_EQ(fast.end_time, slow.end_time);
  EXPECT_EQ(fast.harvested, slow.harvested);
  EXPECT_EQ(fast.consumed, slow.consumed);
  EXPECT_EQ(fast.dissipated, slow.dissipated);
  EXPECT_EQ(fast.stored_final, slow.stored_final);
  EXPECT_EQ(fast.mcu.time_off, slow.mcu.time_off);
  EXPECT_EQ(fast.mcu.boots, slow.mcu.boots);
  const auto* fast_vcc = fast.probes.find("vcc");
  const auto* slow_vcc = slow.probes.find("vcc");
  ASSERT_NE(fast_vcc, nullptr);
  ASSERT_NE(slow_vcc, nullptr);
  EXPECT_EQ(fast_vcc->samples(), slow_vcc->samples());
}

}  // namespace
