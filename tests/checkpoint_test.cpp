// Tests for the checkpoint policies and the paper's Eq 4 / Eq 5 math.
#include <cmath>

#include <gtest/gtest.h>

#include "edc/checkpoint/hibernus_pp.h"
#include "edc/checkpoint/interrupt_policy.h"
#include "edc/checkpoint/mementos.h"
#include "edc/checkpoint/null_policy.h"
#include "edc/checkpoint/thresholds.h"
#include "edc/core/system.h"
#include "edc/workloads/crc32.h"
#include "edc/workloads/fft.h"

namespace edc::checkpoint {
namespace {

// ------------------------------------------------------------- Eq 4 --------

TEST(Eq4, ThresholdInvertsDecayEnergy) {
  const Farads c = 10e-6;
  const Volts v_min = 1.8;
  for (Joules e : {1e-6, 5e-6, 20e-6}) {
    const Volts v_h = hibernate_threshold(e, c, v_min);
    EXPECT_NEAR(decay_energy(v_h, v_min, c), e, 1e-12);
    EXPECT_TRUE(save_feasible(e * 0.999, v_h, v_min, c));
    EXPECT_FALSE(save_feasible(e * 1.01, v_h, v_min, c));
  }
}

TEST(Eq4, ThresholdDecreasesWithCapacitance) {
  const Volts small_c = hibernate_threshold(5e-6, 4.7e-6, 1.8);
  const Volts large_c = hibernate_threshold(5e-6, 100e-6, 1.8);
  EXPECT_GT(small_c, large_c);
  EXPECT_GT(large_c, 1.8);
}

TEST(Eq4, FixedPointConvergesForImage) {
  mcu::McuPowerModel power;
  const Volts v_h = hibernate_threshold_for_image(power, 2048, 8e6, 10e-6, 1.25);
  // Self-consistency: the energy to save at v_h must fit in the decay
  // budget with the margin.
  const Joules e_s = 1.25 * power.save_energy(2048, 8e6, v_h);
  EXPECT_NEAR(decay_energy(v_h, power.v_min, 10e-6), e_s, 1e-9);
  EXPECT_GT(v_h, power.v_min);
  EXPECT_LT(v_h, 4.0);
}

// ------------------------------------------------------------- Eq 5 --------

TEST(Eq5, CrossoverFormula) {
  EXPECT_NEAR(crossover_frequency(3e-3, 2e-3, 11e-6, 1e-6), 100.0, 1e-9);
  EXPECT_THROW(crossover_frequency(2e-3, 3e-3, 11e-6, 1e-6), std::invalid_argument);
  EXPECT_THROW(crossover_frequency(3e-3, 2e-3, 1e-6, 11e-6), std::invalid_argument);
}

TEST(Eq5, CrossoverForTypicalImagesIsTensToHundredsOfHz) {
  mcu::McuPowerModel power;
  const Hertz f = crossover_frequency_for_image(power, 2048, 8e6, 3.0);
  EXPECT_GT(f, 5.0);
  EXPECT_LT(f, 2000.0);
}

TEST(Eq5, CrossoverDropsForLargerImages) {
  // Bigger RAM images make hibernus snapshots dearer, so QuickRecall wins
  // from a lower interruption frequency onward.
  mcu::McuPowerModel power;
  EXPECT_GT(crossover_frequency_for_image(power, 512, 8e6, 3.0),
            crossover_frequency_for_image(power, 8192, 8e6, 3.0));
}

// -------------------------------------------------- InterruptPolicy --------

TEST(Hibernus, ThresholdsComputedAtAttach) {
  core::SystemBuilder builder;
  auto system = builder.sine_source(3.3, 2.0)
                    .capacitance(22e-6)
                    .workload("fft-small")
                    .policy_hibernus()
                    .build();
  const auto& policy = dynamic_cast<const InterruptPolicy&>(system.policy());
  EXPECT_GT(policy.hibernate_threshold(), system.mcu().power().v_min);
  EXPECT_GT(policy.restore_threshold(), policy.hibernate_threshold());
}

TEST(Hibernus, CompletesAcrossOutagesWithOneSavePerOutage) {
  core::SystemBuilder builder;
  auto system = builder
                    .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                        3.3, 10.0, 0.3, 0.0, 50.0))
                    .capacitance(22e-6)
                    .bleed(10000.0)
                    .program(std::make_unique<workloads::FftProgram>(12, 3))
                    .policy_hibernus()
                    .build();
  const auto result = system.run(5.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_GT(result.mcu.brownouts, 1u);  // the supply really was intermittent
  // Reactive checkpointing: at most one committed save per outage (plus the
  // occasional save on the final dip).
  EXPECT_LE(result.mcu.saves_completed, result.mcu.brownouts + 1);
  EXPECT_GE(result.mcu.restores, 1u);
  workloads::FftProgram golden(12, 3);
  EXPECT_EQ(system.program().result_digest(), workloads::golden_digest(golden));
}

TEST(Hibernus, DirectResumeWhenSupplyDipsWithoutBrownout) {
  // A shallow dip crosses V_H (snapshot) but recovers above V_R before
  // v_min: the policy must resume from RAM without a restore.
  core::SystemBuilder builder;
  checkpoint::InterruptPolicy::Config config;
  config.v_hibernate = 2.4;  // designer-chosen threshold well above v_min
  config.v_restore = 2.8;
  // Sine dipping to ~2.1 V: rectified minimum 1.85 V stays above v_min, so
  // the node never browns out while the MCU sleeps through the trough.
  auto system = builder
                    .voltage_source(std::make_unique<trace::SineVoltageSource>(
                        0.70, 4.0, 2.80, 20.0))
                    .capacitance(10e-6)
                    .program(std::make_unique<workloads::Crc32Program>(256 * 1024, 5))
                    .policy_hibernus(config)
                    .build();
  const auto result = system.run(4.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_EQ(result.mcu.brownouts, 0u);
  EXPECT_GT(result.mcu.saves_completed, 0u);   // it did hibernate
  EXPECT_GT(result.mcu.direct_resumes, 0u);    // and resumed from RAM
  EXPECT_EQ(result.mcu.restores, 0u);          // never paid a restore
}

TEST(QuickRecall, SnapshotsAreRegisterSized) {
  core::SystemBuilder builder;
  auto system = builder.sine_source(3.3, 2.0)
                    .capacitance(22e-6)
                    .workload("fft-small")
                    .policy_quickrecall()
                    .build();
  EXPECT_EQ(system.mcu().memory_mode(), mcu::MemoryMode::unified_fram);
  EXPECT_EQ(system.mcu().snapshot_image_bytes(),
            system.mcu().power().register_file_bytes);
}

TEST(QuickRecall, LowerHibernateThresholdThanHibernus) {
  // Registers-only snapshots need less decay energy, so V_H sits lower.
  core::SystemBuilder b1, b2;
  auto hib = b1.sine_source(3.3, 2.0).capacitance(22e-6).workload("fft").policy_hibernus().build();
  auto qr = b2.sine_source(3.3, 2.0).capacitance(22e-6).workload("fft").policy_quickrecall().build();
  const auto& hib_policy = dynamic_cast<const InterruptPolicy&>(hib.policy());
  const auto& qr_policy = dynamic_cast<const InterruptPolicy&>(qr.policy());
  EXPECT_LT(qr_policy.hibernate_threshold(), hib_policy.hibernate_threshold());
}

// ------------------------------------------------------- Hibernus++ --------

TEST(HibernusPP, CalibratesOnFirstBoot) {
  core::SystemBuilder builder;
  auto system = builder
                    .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                        3.3, 20.0, 0.5, 0.0, 50.0))
                    .capacitance(22e-6)
                    .workload("fft-small", 3)
                    .policy_hibernus_pp()
                    .build();
  const auto result = system.run(5.0);
  ASSERT_TRUE(result.mcu.completed);
  const auto& policy = dynamic_cast<const HibernusPlusPlusPolicy&>(system.policy());
  EXPECT_TRUE(policy.calibrated());
  EXPECT_GE(policy.calibration_count(), 1);
  // Calibration overhead was paid.
  EXPECT_GE(result.mcu.poll_cycles, 40000.0);
}

TEST(HibernusPP, SurvivesStorageUnknownAtDesignTime) {
  // hibernus characterised for 100 uF but deployed on 4.7 uF fails to save
  // in time (torn snapshots, no forward progress across outages);
  // hibernus++ measures the real capacitance and completes.
  const Farads real_c = 4.7e-6;
  auto square = [] {
    return std::make_unique<trace::SquareVoltageSource>(3.3, 20.0, 0.5, 0.0, 50.0);
  };

  core::SystemBuilder b1;
  checkpoint::InterruptPolicy::Config wrong;
  wrong.capacitance = 100e-6;  // design-time characterisation of the wrong board
  auto hib = b1.voltage_source(square())
                 .capacitance(real_c)
                 .workload("fft", 3)
                 .policy_hibernus(wrong)
                 .build();
  const auto hib_result = hib.run(3.0);

  core::SystemBuilder b2;
  auto hpp = b2.voltage_source(square())
                 .capacitance(real_c)
                 .workload("fft", 3)
                 .policy_hibernus_pp()
                 .build();
  const auto hpp_result = hpp.run(3.0);

  EXPECT_FALSE(hib_result.mcu.completed);
  EXPECT_GT(hib_result.mcu.brownouts, 0u);
  EXPECT_GT(hpp.mcu().nvm().commits() + hpp_result.mcu.saves_completed, 0u);
  EXPECT_TRUE(hpp_result.mcu.completed);
}

// --------------------------------------------------------- Mementos --------

TEST(Mementos, SavesOnlyBelowThreshold) {
  core::SystemBuilder builder;
  MementosPolicy::Config config;
  config.v_threshold = 2.4;
  auto system = builder
                    .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                        3.3, 10.0, 0.5, 0.0, 50.0))
                    .capacitance(47e-6)
                    .bleed(3000.0)
                    .program(std::make_unique<workloads::Crc32Program>(64 * 1024, 3))
                    .policy_mementos(config)
                    .build();
  const auto result = system.run(5.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_GT(result.mcu.saves_completed, 0u);
  EXPECT_GT(result.mcu.poll_cycles, 0.0);
}

TEST(Mementos, RedundantSnapshotsExceedHibernus) {
  // The paper's downside #1: polling checkpoints save repeatedly during a
  // decay, where hibernus saves exactly once.
  auto square = [] {
    return std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.5, 0.0, 50.0);
  };
  core::SystemBuilder b1, b2;
  auto mem = b1.voltage_source(square())
                 .capacitance(47e-6)
                 .bleed(3000.0)
                 .program(std::make_unique<workloads::Crc32Program>(64 * 1024, 3))
                 .policy_mementos()
                 .build();
  checkpoint::InterruptPolicy::Config hib_config;
  hib_config.margin = 2.2;  // cover the bleed share during the save
  auto hib = b2.voltage_source(square())
                 .capacitance(47e-6)
                 .bleed(3000.0)
                 .program(std::make_unique<workloads::Crc32Program>(64 * 1024, 3))
                 .policy_hibernus(hib_config)
                 .build();
  const auto mem_result = mem.run(5.0);
  const auto hib_result = hib.run(5.0);
  ASSERT_TRUE(mem_result.mcu.completed);
  ASSERT_TRUE(hib_result.mcu.completed);
  EXPECT_GT(mem_result.mcu.saves_completed, hib_result.mcu.saves_completed);
}

TEST(Mementos, TimerModeSavesPeriodically) {
  core::SystemBuilder builder;
  MementosPolicy::Config config;
  config.mode = MementosPolicy::Mode::timer;
  config.timer_interval = 2e-3;
  auto system = builder.dc_source(3.3)  // steady supply: no outages at all
                    .capacitance(47e-6)
                    .workload("crc", 3)
                    .policy_mementos(config)
                    .build();
  const auto result = system.run(2.0);
  ASSERT_TRUE(result.mcu.completed);
  // Unconditional periodic saves happen even on a steady supply.
  EXPECT_GT(result.mcu.saves_completed, 3u);
}

TEST(Mementos, FunctionModeSavesLessOftenThanLoopMode) {
  auto square = [] {
    return std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.5, 0.0, 50.0);
  };
  core::SystemBuilder b1, b2;
  MementosPolicy::Config loop_cfg;
  loop_cfg.mode = MementosPolicy::Mode::loop;
  MementosPolicy::Config fn_cfg;
  fn_cfg.mode = MementosPolicy::Mode::function;
  auto loop_sys = b1.voltage_source(square()).capacitance(47e-6).workload("crc", 3)
                      .policy_mementos(loop_cfg).build();
  auto fn_sys = b2.voltage_source(square()).capacitance(47e-6).workload("crc", 3)
                    .policy_mementos(fn_cfg).build();
  const auto loop_result = loop_sys.run(5.0);
  const auto fn_result = fn_sys.run(5.0);
  ASSERT_TRUE(loop_result.mcu.completed);
  ASSERT_TRUE(fn_result.mcu.completed);
  // Fewer candidates => fewer polls (and usually fewer snapshots).
  EXPECT_LT(fn_result.mcu.poll_cycles, loop_result.mcu.poll_cycles);
}

// ------------------------------------------------------------- Null --------

TEST(NullPolicy, RestartsFromScratchEveryOutage) {
  // Workload bigger than one on-period: never completes without
  // checkpointing (forward progress impossible).
  core::SystemBuilder builder;
  auto system = builder
                    .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                        3.3, 20.0, 0.5, 0.0, 50.0))
                    .capacitance(4.7e-6)
                    .bleed(2000.0)
                    .workload("fft", 3)  // ~42 ms of compute vs 25 ms windows
                    .policy_none()
                    .build();
  const auto result = system.run(3.0);
  EXPECT_FALSE(result.mcu.completed);
  EXPECT_GT(result.mcu.brownouts, 10u);
  EXPECT_GT(result.mcu.reexecuted_cycles, 0.0);
}

TEST(NullPolicy, CompletesWhenWorkloadFitsOneWindow) {
  core::SystemBuilder builder;
  auto system = builder
                    .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                        3.3, 2.0, 0.5, 0.0, 50.0))
                    .capacitance(22e-6)
                    .workload("fft-small", 3)  // ~8.5 ms vs 250 ms window
                    .policy_none()
                    .build();
  const auto result = system.run(2.0);
  EXPECT_TRUE(result.mcu.completed);
  EXPECT_EQ(result.mcu.saves_completed, 0u);
}

}  // namespace
}  // namespace edc::checkpoint
