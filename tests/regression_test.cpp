// Regression tests for subtle behaviours found while building the system,
// plus discretisation-convergence sweeps.
#include <cmath>

#include <gtest/gtest.h>

#include "edc/checkpoint/hibernus_pp.h"
#include "edc/checkpoint/interrupt_policy.h"
#include "edc/checkpoint/null_policy.h"
#include "edc/core/system.h"
#include "edc/workloads/crc32.h"
#include "edc/workloads/fft.h"

namespace edc {
namespace {

// ---------------------------------------------------------------------------
// Comparator re-arm after a threshold change (the Hibernus++ recalibration
// path): lowering a threshold below the present supply must leave the
// comparator armed for the next *falling* crossing.
TEST(Regression, ComparatorRearmsAfterThresholdLowered) {
  auto program = workloads::make_program("crc", 1);
  checkpoint::NullPolicy policy;
  mcu::Mcu mcu(mcu::McuParams{}, *program, policy);
  policy.attach(mcu);
  mcu.supply_update(0.0, 0.0, 3.0, 1e-5);  // power on; comparators armed at 3.0

  const std::size_t index = mcu.add_comparator("X", 3.5, 0.0);
  // Output is low (3.0 < 3.5). Lower the threshold below the present supply:
  mcu.set_comparator_threshold(index, 2.0);
  // A subsequent fall through 2.0 must fire even though the supply never
  // rose through the new threshold after the change.
  bool fired = false;
  struct Spy final : checkpoint::PolicyBase {
    bool* fired;
    void on_comparator(mcu::Mcu&, const circuit::ComparatorEvent& e) override {
      if (e.name == "X" && e.edge == circuit::Edge::falling) *fired = true;
    }
    [[nodiscard]] std::string name() const override { return "spy"; }
  };
  // Rewire through a fresh Mcu (policy is fixed at construction).
  Spy spy;
  spy.fired = &fired;
  mcu::Mcu mcu2(mcu::McuParams{}, *program, spy);
  mcu2.supply_update(0.0, 0.0, 3.0, 1e-5);
  const std::size_t index2 = mcu2.add_comparator("X", 3.5, 0.0);
  mcu2.set_comparator_threshold(index2, 2.0);
  mcu2.supply_update(3.0, 1e-3, 1.9, 2e-3);
  EXPECT_TRUE(fired);
}

// ---------------------------------------------------------------------------
// The hysteresis-stranding hazard: a policy that sleeps below its wake level
// must always see the wake edge when the supply recovers (this deadlocked
// the burst policy before its comparators went to zero hysteresis).
TEST(Regression, SleepWakeCycleNeverStrands) {
  core::SystemBuilder builder;
  taskmodel::BurstTaskPolicy::Config config;
  config.task_energy = 8e-6;
  auto system = builder
                    .power_source(std::make_unique<trace::ConstantPowerSource>(1.2e-3))
                    .capacitance(100e-6)
                    .workload("sense", 3)
                    .policy_burst(config)
                    .build();
  const auto result = system.run(30.0);
  // On a constant source the system must never end up parked asleep:
  // completion is the proof.
  EXPECT_TRUE(result.mcu.completed);
}

// ---------------------------------------------------------------------------
// Hibernus++ raises its margin after observing torn saves.
TEST(Regression, HibernusPpGrowsMarginAfterTornSaves) {
  // Deploy on less storage than even the calibration can handle at the
  // initial margin: the first save tears, the policy recalibrates with a
  // larger margin and then makes progress.
  checkpoint::HibernusPlusPlusPolicy::PlusConfig config;
  config.initial_margin = 1.01;  // deliberately razor thin
  config.measurement_error = 0.0;
  core::SystemBuilder builder;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.3, 0.0, 50.0))
      .capacitance(10e-6)
      .bleed(2000.0)  // the bleed share is what the thin margin misses
      .program(std::make_unique<workloads::FftProgram>(10, 3))
      .policy_hibernus_pp(config);
  auto system = builder.build();
  const auto& policy =
      dynamic_cast<const checkpoint::HibernusPlusPlusPolicy&>(system.policy());
  const auto result = system.run(20.0);
  EXPECT_GT(policy.current_margin(), config.initial_margin);
  EXPECT_GE(policy.calibration_count(), 2);
  EXPECT_TRUE(result.mcu.completed);
}

// ---------------------------------------------------------------------------
// dt-convergence: the discrete-step simulator's behaviour converges as the
// step shrinks, for every interrupt-driven policy.
enum class Pol { hibernus, quickrecall, nvp };

class DtConvergenceTest : public ::testing::TestWithParam<Pol> {};

TEST_P(DtConvergenceTest, CompletionTimeConvergesWithStepSize) {
  auto run_with = [&](Seconds dt) {
    core::SystemBuilder builder;
    sim::SimConfig config;
    config.dt = dt;
    checkpoint::InterruptPolicy::Config pc;
    pc.restore_headroom = 0.3;
    builder
        .voltage_source(
            std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.3, 0.0, 50.0))
        .capacitance(22e-6)
        .bleed(10000.0)
        .program(std::make_unique<workloads::Crc32Program>(64 * 1024, 3))
        .sim_config(config);
    switch (GetParam()) {
      case Pol::hibernus: builder.policy_hibernus(pc); break;
      case Pol::quickrecall: builder.policy_quickrecall(pc); break;
      case Pol::nvp: builder.policy_nvp(pc); break;
    }
    auto system = builder.build();
    return system.run(5.0);
  };
  const auto coarse = run_with(4e-5);
  const auto medium = run_with(1e-5);
  const auto fine = run_with(4e-6);
  ASSERT_TRUE(coarse.mcu.completed);
  ASSERT_TRUE(medium.mcu.completed);
  ASSERT_TRUE(fine.mcu.completed);
  // Successive refinements approach each other.
  const double err_coarse =
      std::abs(coarse.mcu.completion_time - fine.mcu.completion_time);
  const double err_medium =
      std::abs(medium.mcu.completion_time - fine.mcu.completion_time);
  EXPECT_LE(err_medium, err_coarse + 1e-4);
  EXPECT_LT(err_medium, 0.1 * fine.mcu.completion_time);
}

INSTANTIATE_TEST_SUITE_P(Policies, DtConvergenceTest,
                         ::testing::Values(Pol::hibernus, Pol::quickrecall, Pol::nvp),
                         [](const auto& info) {
                           switch (info.param) {
                             case Pol::hibernus: return "hibernus";
                             case Pol::quickrecall: return "quickrecall";
                             case Pol::nvp: return "nvp";
                           }
                           return "?";
                         });

// ---------------------------------------------------------------------------
// Eq 4 feasibility predicts hibernus survival across a capacitance sweep
// (the quantitative version of the ablation bench).
class CapacitanceSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CapacitanceSweepTest, SurvivalMatchesEq4Feasibility) {
  const Farads c = GetParam();
  core::SystemBuilder builder;
  checkpoint::InterruptPolicy::Config config;
  config.restore_headroom = 0.3;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.3, 0.0, 50.0))
      .capacitance(c)
      .bleed(10000.0)
      .program(std::make_unique<workloads::FftProgram>(10, 3))
      .policy_hibernus(config);
  auto system = builder.build();
  const auto& policy =
      dynamic_cast<const checkpoint::InterruptPolicy&>(system.policy());
  // Self-characterised hibernus: V_H from the true C. If V_R fits under the
  // rectified supply ceiling, the system must complete; if Eq 4 pushes V_R
  // above what the source can deliver, it must never start.
  // above what the source can deliver, it must never start. Near the exact
  // boundary (within the bleed-dependent loading of the node) either
  // behaviour is legitimate.
  const Volts supply_ceiling = 3.05;
  const auto result = system.run(10.0);
  if (policy.restore_threshold() < supply_ceiling - 0.10) {
    EXPECT_TRUE(result.mcu.completed) << "C = " << c;
  } else if (policy.restore_threshold() > supply_ceiling) {
    EXPECT_EQ(result.mcu.forward_cycles, 0.0) << "C = " << c;
  } else {
    GTEST_SKIP() << "V_R within the boundary band";
  }
}

INSTANTIATE_TEST_SUITE_P(Capacitances, CapacitanceSweepTest,
                         ::testing::Values(2.2e-6, 4.7e-6, 10e-6, 22e-6, 47e-6,
                                           100e-6),
                         [](const auto& info) {
                           return "c" + std::to_string(static_cast<int>(
                                            info.param * 1e7));
                         });

// ---------------------------------------------------------------------------
// Frequency scaling interacts correctly with Eq 4: the threshold the policy
// derives at a lower clock must be higher (saves take longer in seconds).
TEST(Regression, LowerClockRaisesHibernateThreshold) {
  auto threshold_at = [](Hertz f) {
    core::SystemBuilder builder;
    mcu::McuParams params;
    params.initial_frequency = f;
    builder.sine_source(3.3, 2.0)
        .capacitance(22e-6)
        .mcu_params(params)
        .workload("fft", 3)
        .policy_hibernus();
    auto system = builder.build();
    return dynamic_cast<const checkpoint::InterruptPolicy&>(system.policy())
        .hibernate_threshold();
  };
  // At a lower clock the save takes longer but also draws less; in this
  // power model energy per save grows as f drops (the static share bites),
  // so V_H must rise.
  EXPECT_GT(threshold_at(1e6), threshold_at(8e6));
}

}  // namespace
}  // namespace edc
