// Batch-vs-scalar differential suite (ctest label: batchdiff).
//
// The batched SoA kernel (sim/batch_kernel.h + sweep/batch.h) promises
// *bit-identity* with the scalar simulator: only the node ODE integration
// is restructured (gather → shared-source SoA substeps → scatter, with the
// exact scalar expression sequence per lane), while every discrete action
// — supply events, MCU advance, policies, governor, probes, termination —
// replays the scalar loop's order per lane. These tests hold that contract
// across every source family and checkpoint-policy family, with probes and
// the DFS governor on, and through the divergence machinery: lanes that
// macro-step analytic spans at different times, and lanes that finish at
// different times (compaction). Identity is asserted on the canonical
// result serialization, which covers the full SimResult — energy ledger,
// metrics, NVM counters, transitions, probe waveforms — bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/sim/result_io.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/batch.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/taskmodel/burst_policy.h"
#include "edc/trace/voltage_sources.h"
#include "edc/trace/waveform.h"

namespace edc::sweep {
namespace {

/// Runs `grid` through the scalar runner and the batched runner (both
/// serial, so failures reproduce deterministically) and asserts row-wise
/// bit-identity of the canonical result serialization. When
/// `expect_batched` is set, additionally asserts the batch path actually
/// engaged (provenance 'b') — a silently-scalar "pass" would prove nothing.
void expect_bit_identical(const Grid& grid, int lanes = 4,
                          bool expect_batched = true) {
  RunnerOptions scalar_options;
  scalar_options.threads = 1;
  const auto scalar_rows = Runner(scalar_options).run(grid);

  RunnerOptions batch_options;
  batch_options.threads = 1;
  batch_options.batch = true;
  batch_options.batch_lanes = lanes;
  RunReport report;
  const auto batch_rows = Runner(batch_options).run(grid, &report);

  ASSERT_EQ(batch_rows.size(), scalar_rows.size());
  for (std::size_t i = 0; i < scalar_rows.size(); ++i) {
    EXPECT_EQ(sim::serialize_result(batch_rows[i]),
              sim::serialize_result(scalar_rows[i]))
        << "batch result diverges from scalar at point " << i;
    if (expect_batched) {
      EXPECT_EQ(report.provenance[i], kProvenanceBatch)
          << "point " << i << " silently fell back to the scalar path";
    }
    EXPECT_GT(report.micros[i], 0.0) << "point " << i << " reported no cost";
  }
}

TEST(BatchAmortize, OddLaneGroupRemainderIsSumPreserving) {
  // 1000 us over 7 lanes: wall/n = 142.857..., whose serialized copies sum
  // to anything but the measurement; the amortizer pins the column total to
  // the measured wall time exactly.
  const std::vector<double> lanes = amortize_lane_micros(1000.0, 7);
  ASSERT_EQ(lanes.size(), 7u);
  double total = 0.0;
  for (const double m : lanes) total += m;
  EXPECT_DOUBLE_EQ(total, 1000.0);
  // floor split is 142 with remainder 6: six lanes carry one extra us, and
  // no lane strays more than 1 us from the even split.
  EXPECT_EQ(std::count(lanes.begin(), lanes.end(), 143.0), 6);
  EXPECT_EQ(std::count(lanes.begin(), lanes.end(), 142.0), 1);
  for (const double m : lanes) EXPECT_NEAR(m, 1000.0 / 7.0, 1.0);
  // Fractional measurements round to the nearest whole us before splitting.
  const std::vector<double> frac = amortize_lane_micros(10.6, 3);
  ASSERT_EQ(frac.size(), 3u);
  EXPECT_DOUBLE_EQ(frac[0] + frac[1] + frac[2], 11.0);
  // Degenerate shapes stay well-defined.
  EXPECT_TRUE(amortize_lane_micros(5.0, 0).empty());
  EXPECT_DOUBLE_EQ(amortize_lane_micros(-2.0, 2)[0], 0.0);
}

/// Storage + policy axes shared by the per-source-family grids: three
/// capacitances x {no-checkpoint, hibernus} — enough lanes that a group
/// chunk always mixes diverging policies.
Grid family_grid(spec::SystemSpec base) {
  base.workload.kind = "crc";
  base.storage.bleed = 20000.0;
  base.sim.t_end = 0.4;
  Grid grid(std::move(base));
  grid.capacitance_axis({10e-6, 22e-6, 47e-6})
      .axis("policy", {{"none",
                        [](spec::SystemSpec& s) {
                          s.policy = spec::NoCheckpoint{};
                        }},
                       {"hibernus", [](spec::SystemSpec& s) {
                          s.policy = spec::Hibernus{};
                        }}});
  return grid;
}

// ------------------------------------------------ every source family

TEST(BatchDiff, SineFamily) {
  spec::SystemSpec base;
  base.source = spec::SineSource{3.3, 5.0, 0.0, 50.0};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, DcFamily) {
  spec::SystemSpec base;
  base.source = spec::DcSource{3.3, 50.0};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, SquareFamily) {
  spec::SystemSpec base;
  base.source = spec::SquareSource{3.3, 10.0, 0.5, 0.0, 50.0};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, WindFamily) {
  spec::SystemSpec base;
  base.source = spec::WindSource{{}, 3, 1.0};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, KineticFamily) {
  spec::SystemSpec base;
  base.source = spec::KineticSource{{}, 5, 1.0};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, VoltageTraceFamily) {
  // A coarse recorded ramp/plateau trace through the rectifier front-end.
  std::vector<double> samples;
  for (int i = 0; i <= 40; ++i) {
    samples.push_back(i % 10 < 6 ? 3.3 : 0.0);
  }
  spec::SystemSpec base;
  base.source = spec::VoltageTraceSource{trace::Waveform(0.0, 0.01, samples), 50.0,
                                         "trace"};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, ConstantPowerFamily) {
  spec::SystemSpec base;
  base.source = spec::ConstantPower{2e-3};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, MarkovPowerFamily) {
  spec::SystemSpec base;
  base.source = spec::MarkovPower{4e-3, 0.05, 0.05, 11, 1.0};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, RfFieldFamily) {
  trace::RfFieldSource::Params params;
  params.burst_length = 0.1;
  params.burst_period = 0.25;
  spec::SystemSpec base;
  base.source = spec::RfFieldPower{params, 2, 1.0};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, IndoorPvFamily) {
  spec::SystemSpec base;
  base.source = spec::IndoorPvPower{{}, 4, 1};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, SolarFamily) {
  spec::SystemSpec base;
  base.source = spec::SolarPower{{}, 6, 1};
  expect_bit_identical(family_grid(std::move(base)));
}

TEST(BatchDiff, PowerTraceFamily) {
  std::vector<double> samples;
  for (int i = 0; i <= 40; ++i) {
    samples.push_back(i % 8 < 5 ? 3e-3 : 0.0);
  }
  spec::SystemSpec base;
  base.source = spec::PowerTraceSource{trace::Waveform(0.0, 0.01, samples), "ptrace"};
  expect_bit_identical(family_grid(std::move(base)));
}

// ------------------------------------------------ every policy family

TEST(BatchDiff, AllPolicyFamilies) {
  spec::SystemSpec base;
  base.source = spec::SineSource{3.3, 5.0, 0.0, 50.0};
  base.storage.bleed = 20000.0;
  base.workload.kind = "crc";
  base.sim.t_end = 0.4;
  Grid grid(std::move(base));
  grid.capacitance_axis({10e-6, 47e-6})
      .axis("policy",
            {{"none", [](spec::SystemSpec& s) { s.policy = spec::NoCheckpoint{}; }},
             {"hibernus", [](spec::SystemSpec& s) { s.policy = spec::Hibernus{}; }},
             {"hibernus++",
              [](spec::SystemSpec& s) { s.policy = spec::HibernusPlusPlus{}; }},
             {"quickrecall",
              [](spec::SystemSpec& s) { s.policy = spec::QuickRecall{}; }},
             {"nvp", [](spec::SystemSpec& s) { s.policy = spec::Nvp{}; }},
             {"mementos", [](spec::SystemSpec& s) { s.policy = spec::Mementos{}; }},
             {"burst", [](spec::SystemSpec& s) { s.policy = spec::BurstTask{}; }}});
  expect_bit_identical(grid, 5);
}

// ------------------------------------- probed + governed toggles

TEST(BatchDiff, ProbedAndGoverned) {
  spec::SystemSpec base;
  base.source = spec::SquareSource{3.3, 10.0, 0.5, 0.0, 50.0};
  base.storage.bleed = 20000.0;
  base.workload.kind = "crc";
  base.policy = spec::Hibernus{};
  base.sim.t_end = 0.4;
  Grid grid(std::move(base));
  grid.capacitance_axis({10e-6, 22e-6, 47e-6})
      .axis("mode",
            {{"plain", [](spec::SystemSpec&) {}},
             {"probed",
              [](spec::SystemSpec& s) { s.sim.probe_interval = 1e-3; }},
             {"governed", [](spec::SystemSpec& s) { s.governor.emplace(); }},
             {"probed+governed", [](spec::SystemSpec& s) {
                s.sim.probe_interval = 1e-3;
                s.governor.emplace();
              }}});
  expect_bit_identical(grid, 6);
}

// ------------------------------------- divergence / compaction stress

TEST(BatchDiff, StaggeredQuiescentSpansAcrossLanes) {
  // Macro-stepping on: each lane's quiescent engine plans analytic spans
  // whose lengths depend on its capacitance/bleed, so lanes jump ahead of
  // the lockstep front at different instants and rejoin later — the
  // wait/compact machinery must keep every lane on the scalar trajectory.
  spec::SystemSpec base;
  base.source = spec::SquareSource{3.3, 4.0, 0.25, 0.0, 50.0};
  base.storage.bleed = 5000.0;
  base.workload.kind = "crc";
  base.policy = spec::Hibernus{};
  base.sim.t_end = 0.6;
  base.sim.macro_stepping = true;
  Grid grid(std::move(base));
  grid.capacitance_axis({4.7e-6, 10e-6, 22e-6, 33e-6, 47e-6, 100e-6})
      .axis("bleed", {{"5k", [](spec::SystemSpec& s) { s.storage.bleed = 5000.0; }},
                      {"50k", [](spec::SystemSpec& s) { s.storage.bleed = 50000.0; }}});
  expect_bit_identical(grid, 6);
}

TEST(BatchDiff, StaggeredCompletionPeelsLanesOut) {
  // stop_on_completion with per-lane capacitances and workload seeds:
  // lanes finish (or brown out onto different trajectories) at different
  // steps and are peeled from the working set while the rest keep
  // lockstepping.
  spec::SystemSpec base;
  base.source = spec::DcSource{3.3, 50.0};
  base.workload.kind = "sort";
  base.policy = spec::Hibernus{};
  base.sim.t_end = 1.0;
  Grid grid(std::move(base));
  grid.capacitance_axis({10e-6, 47e-6}).workload_seed_axis({1, 2, 3});
  expect_bit_identical(grid, 6);
}

// ------------------------------------- fallbacks, determinism, provenance

TEST(BatchDiff, CustomSourcesFallBackToScalarProvenance) {
  spec::SystemSpec base;
  base.source = spec::CustomVoltageSource{[] {
    return std::make_unique<trace::SineVoltageSource>(3.3, 5.0);
  }};
  base.workload.kind = "crc";
  base.policy = spec::Hibernus{};
  base.sim.t_end = 0.2;
  Grid grid(std::move(base));
  grid.capacitance_axis({10e-6, 22e-6});

  ASSERT_FALSE(batch_group_key(grid.point(0).spec).has_value());

  RunnerOptions batch_options;
  batch_options.threads = 1;
  batch_options.batch = true;
  RunReport report;
  const auto batch_rows = Runner(batch_options).run(grid, &report);

  RunnerOptions scalar_options;
  scalar_options.threads = 1;
  const auto scalar_rows = Runner(scalar_options).run(grid);
  ASSERT_EQ(batch_rows.size(), scalar_rows.size());
  for (std::size_t i = 0; i < scalar_rows.size(); ++i) {
    EXPECT_EQ(sim::serialize_result(batch_rows[i]),
              sim::serialize_result(scalar_rows[i]));
    EXPECT_EQ(report.provenance[i], kProvenanceScalar);
  }
}

TEST(BatchDiff, GroupKeySplitsOnSharedLatticeAxesOnly) {
  spec::SystemSpec a;
  a.source = spec::SineSource{3.3, 5.0, 0.0, 50.0};
  spec::SystemSpec b = a;
  b.storage.capacitance = 47e-6;           // per-lane axis: same group
  b.policy = spec::QuickRecall{};          // per-lane axis: same group
  b.sim.t_end = 99.0;                      // per-lane horizon: same group
  EXPECT_EQ(batch_group_key(a), batch_group_key(b));

  spec::SystemSpec c = a;
  c.sim.dt = 20e-6;                        // lattice axis: different group
  EXPECT_NE(batch_group_key(a), batch_group_key(c));
  spec::SystemSpec d = a;
  std::get<spec::SineSource>(d.source).frequency = 7.0;  // source axis
  EXPECT_NE(batch_group_key(a), batch_group_key(d));
}

TEST(BatchDiff, ParallelBatchMatchesSerialBatch) {
  spec::SystemSpec base;
  base.source = spec::SineSource{3.3, 5.0, 0.0, 50.0};
  base.workload.kind = "crc";
  base.policy = spec::Hibernus{};
  base.sim.t_end = 0.3;
  Grid grid(std::move(base));
  grid.capacitance_axis({4.7e-6, 10e-6, 22e-6, 33e-6, 47e-6, 100e-6});

  RunnerOptions serial;
  serial.threads = 1;
  serial.batch = true;
  serial.batch_lanes = 3;
  RunnerOptions parallel = serial;
  parallel.threads = 3;
  const auto serial_rows = Runner(serial).run(grid);
  const auto parallel_rows = Runner(parallel).run(grid);
  ASSERT_EQ(parallel_rows.size(), serial_rows.size());
  for (std::size_t i = 0; i < serial_rows.size(); ++i) {
    EXPECT_EQ(sim::serialize_result(parallel_rows[i]),
              sim::serialize_result(serial_rows[i]));
  }
}

TEST(BatchDiff, CacheReplaysBatchProvenanceOnWarmHits) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "edc-batchdiff-cache";
  std::filesystem::remove_all(dir);
  Cache cache(dir);

  spec::SystemSpec base;
  base.source = spec::SineSource{3.3, 5.0, 0.0, 50.0};
  base.workload.kind = "crc";
  base.policy = spec::Hibernus{};
  base.sim.t_end = 0.3;
  Grid grid(std::move(base));
  grid.capacitance_axis({10e-6, 22e-6, 47e-6});

  RunnerOptions batch_options;
  batch_options.threads = 1;
  batch_options.batch = true;
  batch_options.cache = &cache;
  RunReport cold_report;
  const auto cold = Runner(batch_options).run(grid, &cold_report);
  EXPECT_EQ(cache.stats().stores, grid.size());

  // A warm *scalar* run must replay both the rows and the batch provenance
  // + amortized costs recorded by the batched run — never relabel them.
  RunnerOptions scalar_options;
  scalar_options.threads = 1;
  scalar_options.cache = &cache;
  RunReport warm_report;
  const auto warm = Runner(scalar_options).run(grid, &warm_report);
  ASSERT_EQ(warm.size(), cold.size());
  EXPECT_EQ(cold_report.warm_count(), 0u);
  EXPECT_EQ(warm_report.warm_count(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(sim::serialize_result(warm[i]), sim::serialize_result(cold[i]));
    EXPECT_EQ(cold_report.provenance[i], kProvenanceBatch);
    EXPECT_EQ(warm_report.provenance[i], kProvenanceBatch);
    EXPECT_EQ(warm_report.micros[i], cold_report.micros[i]);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace edc::sweep
