// Unit tests for the energy-environment substrate (edc/trace).
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "edc/trace/csv.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/rng.h"
#include "edc/trace/statistics.h"
#include "edc/trace/voltage_sources.h"
#include "edc/trace/waveform.h"

namespace edc::trace {
namespace {

// ---------------------------------------------------------------- Rng ------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

// ------------------------------------------------------------ Waveform -----

TEST(Waveform, SampleAndInterpolate) {
  const auto wave = Waveform::sample([](Seconds t) { return 2.0 * t; }, 0.0, 1.0, 11);
  EXPECT_EQ(wave.size(), 11u);
  EXPECT_DOUBLE_EQ(wave.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wave.at(0.5), 1.0);
  EXPECT_NEAR(wave.at(0.55), 1.1, 1e-12);
  // Clamping outside the span.
  EXPECT_DOUBLE_EQ(wave.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(wave.at(2.0), 2.0);
}

TEST(Waveform, IntegralOfConstant) {
  const auto wave = Waveform::sample([](Seconds) { return 3.0; }, 0.0, 2.0, 21);
  EXPECT_NEAR(wave.integral(), 6.0, 1e-12);
}

TEST(Waveform, IntegralOfRamp) {
  const auto wave = Waveform::sample([](Seconds t) { return t; }, 0.0, 1.0, 101);
  EXPECT_NEAR(wave.integral(), 0.5, 1e-9);
}

TEST(Waveform, Statistics) {
  const auto wave =
      Waveform::sample([](Seconds t) { return std::sin(2 * M_PI * t); }, 0.0, 1.0, 1001);
  const auto stats = summarize(wave);
  EXPECT_NEAR(stats.mean, 0.0, 1e-3);
  EXPECT_NEAR(stats.rms, 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(stats.max, 1.0, 1e-4);
  EXPECT_NEAR(stats.min, -1.0, 1e-4);
}

TEST(Waveform, ResamplePreservesShape) {
  const auto wave = Waveform::sample([](Seconds t) { return t * t; }, 0.0, 1.0, 501);
  const auto coarse = wave.resample(51);
  EXPECT_EQ(coarse.size(), 51u);
  EXPECT_NEAR(coarse.at(0.7), 0.49, 1e-3);
}

TEST(Waveform, MapTransforms) {
  const auto wave = Waveform::sample([](Seconds t) { return t; }, 0.0, 1.0, 11);
  const auto scaled = wave.map([](double v) { return 10.0 * v; });
  EXPECT_DOUBLE_EQ(scaled.at(0.5), 5.0);
}

TEST(Waveform, EmptyThrows) {
  Waveform wave;
  EXPECT_TRUE(wave.empty());
  EXPECT_THROW(wave.at(0.0), std::invalid_argument);
  EXPECT_THROW(wave.min(), std::invalid_argument);
}

// ------------------------------------------------------------- Outages -----

TEST(Outages, FindsSubThresholdIntervals) {
  // 1 Hz square-ish: below threshold in the middle third.
  const auto wave = Waveform::sample(
      [](Seconds t) { return (t > 1.0 && t < 2.0) ? 0.0 : 3.0; }, 0.0, 3.0, 3001);
  const auto outages = find_outages(wave, 1.5);
  ASSERT_EQ(outages.size(), 1u);
  EXPECT_NEAR(outages[0].start, 1.0, 0.01);
  EXPECT_NEAR(outages[0].duration, 1.0, 0.01);
  const auto stats = outage_stats(wave, 1.5);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_NEAR(stats.availability, 2.0 / 3.0, 0.01);
}

TEST(Outages, NoneWhenAlwaysAbove) {
  const auto wave = Waveform::sample([](Seconds) { return 5.0; }, 0.0, 1.0, 101);
  EXPECT_TRUE(find_outages(wave, 1.0).empty());
  EXPECT_DOUBLE_EQ(outage_stats(wave, 1.0).availability, 1.0);
}

TEST(Outages, DominantFrequencyOfSine) {
  const auto wave = Waveform::sample(
      [](Seconds t) { return std::sin(2 * M_PI * 7.0 * t); }, 0.0, 2.0, 20001);
  EXPECT_NEAR(dominant_frequency(wave), 7.0, 0.1);
}

// ------------------------------------------------------------- Sources -----

TEST(SineSource, AmplitudeAndOffset) {
  SineVoltageSource source(2.0, 1.0, 0.5);
  EXPECT_NEAR(source.open_circuit_voltage(0.25), 2.5, 1e-9);
  EXPECT_NEAR(source.open_circuit_voltage(0.75), -1.5, 1e-9);
}

TEST(SquareSource, DutyCycle) {
  SquareVoltageSource source(3.3, 10.0, 0.3);
  EXPECT_DOUBLE_EQ(source.open_circuit_voltage(0.01), 3.3);
  EXPECT_DOUBLE_EQ(source.open_circuit_voltage(0.05), 0.0);
}

TEST(WindTurbine, SingleGustShape) {
  // Fig 1a: AC voltage peaking near +/-5 V with a few-Hz electrical
  // frequency, rising then decaying over several seconds.
  const auto turbine = WindTurbineSource::single_gust();
  const auto wave = Waveform::sample(
      [&](Seconds t) { return turbine.open_circuit_voltage(t); }, 0.0, 8.0, 16001);
  EXPECT_GT(wave.max(), 4.0);
  EXPECT_LT(wave.max(), 6.0);
  EXPECT_LT(wave.min(), -4.0);
  // The envelope peaks somewhere in the first half and decays after.
  const auto turbine_env = [&](Seconds t) { return turbine.envelope(t); };
  double peak_t = 0.0, peak_v = 0.0;
  for (Seconds t = 0.0; t < 8.0; t += 0.01) {
    if (turbine_env(t) > peak_v) {
      peak_v = turbine_env(t);
      peak_t = t;
    }
  }
  EXPECT_GT(peak_t, 0.5);
  EXPECT_LT(peak_t, 4.0);
  EXPECT_LT(turbine_env(8.0), 0.3 * peak_v);
}

TEST(WindTurbine, FrequencyTracksEnvelope) {
  // Electrical frequency at the gust peak should approach peak_frequency.
  const auto turbine = WindTurbineSource::single_gust();
  // Count zero crossings in a window around the envelope peak.
  const auto wave = Waveform::sample(
      [&](Seconds t) { return turbine.open_circuit_voltage(t); }, 1.5, 3.0, 6001);
  const Hertz f = dominant_frequency(wave);
  EXPECT_GT(f, 3.0);
  EXPECT_LT(f, 7.5);
}

TEST(WindTurbine, StochasticGustsDeterministic) {
  const WindTurbineSource::Params params;
  WindTurbineSource a(params, 99, 30.0), b(params, 99, 30.0);
  for (Seconds t = 0.0; t < 30.0; t += 0.37) {
    EXPECT_DOUBLE_EQ(a.open_circuit_voltage(t), b.open_circuit_voltage(t));
  }
}

TEST(IndoorPv, DiurnalRange) {
  // Fig 1b: ~290 uA at night, ~420-430 uA during the day, over two days.
  IndoorPhotovoltaicSource pv({}, 1, 2);
  const double night = pv.current_ua(3.5 * 3600);       // 03:30 day 1
  const double midday = pv.current_ua(13.0 * 3600);     // 13:00 day 1
  const double night2 = pv.current_ua(86400 + 2.0 * 3600);
  EXPECT_NEAR(night, 292.0, 15.0);
  EXPECT_GT(midday, 380.0);
  EXPECT_LT(midday, 460.0);
  EXPECT_NEAR(night2, 292.0, 15.0);
}

TEST(IndoorPv, PowerMatchesCurrent) {
  IndoorPhotovoltaicSource pv({}, 1, 1);
  const Seconds t = 12 * 3600;
  EXPECT_NEAR(pv.available_power(t), pv.current_ua(t) * 1e-6 * 3.0, 1e-9);
}

TEST(OutdoorSolar, ZeroAtNightPeakAtNoon) {
  OutdoorSolarSource solar({}, 5, 3);
  EXPECT_DOUBLE_EQ(solar.available_power(2.0 * 3600), 0.0);      // 02:00
  EXPECT_DOUBLE_EQ(solar.available_power(22.0 * 3600), 0.0);     // 22:00
  EXPECT_GT(solar.available_power(13.0 * 3600), 0.0);            // 13:00
  // Noon clear-sky output beats morning.
  EXPECT_GT(solar.clear_sky_power(13.0 * 3600), solar.clear_sky_power(7.0 * 3600));
}

TEST(OutdoorSolar, CloudsOnlyAttenuate) {
  OutdoorSolarSource solar({}, 5, 2);
  for (Seconds t = 0.0; t < 2 * 86400.0; t += 1800.0) {
    EXPECT_LE(solar.available_power(t), solar.clear_sky_power(t) + 1e-12);
    EXPECT_GE(solar.available_power(t), 0.0);
  }
}

TEST(OutdoorSolar, DeterministicPerSeed) {
  OutdoorSolarSource a({}, 9, 2), b({}, 9, 2);
  for (Seconds t = 0.0; t < 2 * 86400.0; t += 3600.0) {
    EXPECT_DOUBLE_EQ(a.available_power(t), b.available_power(t));
  }
}

TEST(OutdoorSolar, DailyEnergyIsReasonable) {
  // A 50 mW-peak panel over a 14 h day yields roughly peak * daylight * 2/pi
  // (the sine's mean), modulated by weather.
  OutdoorSolarSource::Params params;
  params.cloud_depth = 0.0;
  params.day_to_day_jitter = 0.0;
  OutdoorSolarSource solar(params, 1, 1);
  const auto wave = Waveform::sample(
      [&](Seconds t) { return solar.available_power(t); }, 0.0, 86400.0, 8641);
  const Joules daily = wave.integral();
  const Joules expected = 50e-3 * (14.0 * 3600.0) * 2.0 / 3.14159265358979;
  EXPECT_NEAR(daily, expected, 0.05 * expected);
}

TEST(RfField, BurstTiming) {
  RfFieldSource::Params params;
  params.burst_length = 1.0;
  params.burst_period = 4.0;
  RfFieldSource rf(params, 5, 20.0);
  EXPECT_GT(rf.available_power(0.5), 0.0);
  EXPECT_DOUBLE_EQ(rf.available_power(2.0), 0.0);
  EXPECT_GT(rf.available_power(4.5), 0.0);
}

TEST(MarkovOnOff, AvailabilityMatchesDutyRatio) {
  // mean_on 0.2 s / mean_off 0.2 s => ~50% availability.
  MarkovOnOffPowerSource source(1e-3, 0.2, 0.2, 17, 2000.0);
  double on_time = 0.0;
  const Seconds dt = 0.01;
  for (Seconds t = 0.0; t < 2000.0; t += dt) {
    if (source.available_power(t) > 0.0) on_time += dt;
  }
  EXPECT_NEAR(on_time / 2000.0, 0.5, 0.05);
}

TEST(KineticSource, RingsAfterImpulse) {
  KineticHarvesterSource::Params params;
  KineticHarvesterSource source(params, 3, 10.0);
  // Shortly after the first impulse (t=0.05) there is substantial output.
  double peak = 0.0;
  for (Seconds t = 0.05; t < 0.2; t += 0.0005) {
    peak = std::max(peak, std::abs(source.open_circuit_voltage(t)));
  }
  EXPECT_GT(peak, 1.0);
}

// ----------------------------------------------------------------- CSV -----

TEST(Csv, RoundTrip) {
  const auto wave = Waveform::sample([](Seconds t) { return 3.0 * t + 1.0; }, 0.0,
                                     1.0, 101);
  std::stringstream buffer;
  write_csv(buffer, "v", wave);
  const auto back = read_csv(buffer);
  ASSERT_EQ(back.size(), wave.size());
  EXPECT_NEAR(back.at(0.42), wave.at(0.42), 1e-9);
}

TEST(Csv, MultiColumn) {
  TraceSet set;
  set.add("a", Waveform::sample([](Seconds t) { return t; }, 0.0, 1.0, 11));
  set.add("b", Waveform::sample([](Seconds t) { return 2 * t; }, 0.0, 1.0, 11));
  std::stringstream buffer;
  write_csv(buffer, set);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "time,a,b");
}

TEST(Csv, RejectsNonUniform) {
  std::stringstream buffer("time,v\n0,1\n1,2\n3,4\n");
  EXPECT_THROW(read_csv(buffer), std::invalid_argument);
}

TEST(TraceSet, FindByName) {
  TraceSet set;
  set.add("vcc", Waveform::sample([](Seconds) { return 1.0; }, 0.0, 1.0, 2));
  EXPECT_NE(set.find("vcc"), nullptr);
  EXPECT_EQ(set.find("nope"), nullptr);
}

}  // namespace
}  // namespace edc::trace
