// sweep::Search — solver-guided design queries (sweep/search.h).
//
// The contract under test, in order of importance:
//
//  1. Equivalence: bracket_on() finds exactly the crossover cell a dense
//     sweep of the same lattice finds (several lattice shapes), while
//     probing strictly fewer points.
//  2. Bit-identity: a probe's rows are byte-identical (canonical result
//     serialization) to the dense grid's rows at the same axis value, and
//     a cached probe replays the same bytes — so a warm rerun of the same
//     query simulates ZERO points.
//  3. Loud failure: flat, sign-degenerate, reversed and non-monotone
//     objectives throw structured SearchErrors instead of returning a
//     plausible-but-wrong root; the neighbour-verification pass catches a
//     locally noisy flip plain bisection would silently step over.
//
// Synthetic-objective tests drive the control flow from the axis value
// (the objective sees x; the simulated rows are irrelevant) over a
// minimal DC spec whose simulations cost microseconds, so the error
// matrix stays cheap. The equivalence tests run the real Eq 5 objective
// (QuickRecall minus hibernus energy per Mcycle) on a shortened horizon.
#include "edc/sweep/search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "edc/sim/result_io.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/runner.h"

namespace edc {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test for cache-backed searches.
class SearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("edc_search_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// Microsecond-cheap base spec for synthetic-objective tests: a DC source
/// into a huge capacitance that never reaches turn-on within the 1 ms
/// horizon, so every probe is a few quiescent-path steps.
spec::SystemSpec tiny_spec() {
  spec::SystemSpec s;
  s.source = spec::DcSource{3.3};
  s.storage.capacitance = 10e-6;
  s.workload.kind = "fft";
  s.workload.seed = 1;
  s.sim.t_end = 1e-3;
  return s;
}

/// A numeric axis that routes x into the (irrelevant) bleed resistance —
/// the synthetic objectives read x, not the rows.
sweep::SearchAxis bleed_axis() {
  return {"bleed", [](spec::SystemSpec& s, double x) { s.storage.bleed = x; }, {}};
}

/// Objective computed from the axis value alone.
sweep::SearchObjective from_x(double (*fn)(double)) {
  return [fn](double x, const std::vector<sim::SimResult>&) { return fn(x); };
}

/// The Eq 5 bench's grid pieces (bench/eq5_crossover.cpp), shrunk to a 2 s
/// horizon: square supply frequency axis x {hibernus, quickrecall}.
spec::SystemSpec eq5_spec() {
  spec::SystemSpec s;
  s.storage.capacitance = 10e-6;
  s.storage.bleed = 1000.0;
  s.workload.kind = "fft";
  s.workload.seed = 5;
  s.sim.t_end = 2.0;
  return s;
}

sweep::SearchAxis eq5_axis() {
  return {"f_interrupt (Hz)", [](spec::SystemSpec& s, double f) {
            s.source = spec::SquareSource{3.3, f, 0.5, 0.0, 50.0};
          }};
}

std::vector<sweep::AxisValue> eq5_policies() {
  checkpoint::InterruptPolicy::Config config;
  config.margin = 3.0;
  config.restore_headroom = 0.15;
  return {{"hibernus",
           [config](spec::SystemSpec& s) { s.policy = spec::Hibernus{config}; }},
          {"quickrecall",
           [config](spec::SystemSpec& s) { s.policy = spec::QuickRecall{config}; }}};
}

double eq5_joules_per_mcycle(const sim::SimResult& result) {
  if (result.mcu.forward_cycles <= 1000.0) {
    return std::numeric_limits<double>::infinity();
  }
  return result.mcu.energy_total() / (result.mcu.forward_cycles / 1e6);
}

double eq5_objective(const std::vector<sim::SimResult>& rows) {
  return eq5_joules_per_mcycle(rows[1]) - eq5_joules_per_mcycle(rows[0]);
}

sweep::Search make_eq5_search(sweep::SearchOptions options = {}) {
  return sweep::Search(
      eq5_spec(), eq5_axis(), "policy", eq5_policies(),
      [](double, const std::vector<sim::SimResult>& rows) {
        return eq5_objective(rows);
      },
      options);
}

/// The dense reference: simulate every lattice frequency and scan for the
/// first sign flip of the objective, returning the flip cell's indices.
std::pair<std::size_t, std::size_t> dense_crossover_cell(
    const std::vector<double>& lattice) {
  sweep::Grid grid(eq5_spec());
  const sweep::SearchAxis axis = eq5_axis();
  grid.numeric_axis(axis.name, lattice, axis.set).axis("policy", eq5_policies());
  const auto rows = sweep::Runner().run(grid);
  std::size_t flip = 0;
  int previous = 0;
  for (std::size_t i = 0; i < lattice.size(); ++i) {
    const double value =
        eq5_objective({rows[i * 2], rows[i * 2 + 1]});
    const int sign = value > 0.0 ? 1 : -1;
    if (i > 0 && sign != previous && flip == 0) flip = i;
    previous = sign;
  }
  EXPECT_GT(flip, 0u) << "dense sweep found no crossover";
  return {flip - 1, flip};
}

// ---- 1. equivalence with the dense sweep ----------------------------------

// Three lattice shapes over the same frequency range: the bench's 7 dense
// values, a 13-value (4 per octave) refinement and the --solve 49-value
// (8 per octave) refinement. The solver must locate exactly the cell the
// dense scan of the same lattice locates, in strictly fewer simulations.
TEST_F(SearchTest, FindsDenseCrossoverCellAcrossLatticeShapes) {
  std::vector<std::vector<double>> shapes;
  shapes.push_back({5, 10, 20, 40, 80, 160, 320});
  for (const int per_octave : {4, 8}) {
    std::vector<double> lattice;
    for (int i = 0; i <= 6 * per_octave; ++i) {
      lattice.push_back(std::ldexp(5.0, i / per_octave) *
                        std::pow(2.0, (i % per_octave) / double(per_octave)));
    }
    shapes.push_back(std::move(lattice));
  }

  for (const std::vector<double>& lattice : shapes) {
    SCOPED_TRACE("lattice size " + std::to_string(lattice.size()));
    const auto [dense_lo, dense_hi] = dense_crossover_cell(lattice);

    sweep::Search search = make_eq5_search();
    const sweep::SearchOutcome outcome = search.bracket_on(lattice);
    EXPECT_EQ(outcome.lo_index, dense_lo);
    EXPECT_EQ(outcome.hi_index, dense_hi);
    EXPECT_EQ(outcome.lo, lattice[dense_lo]);
    EXPECT_EQ(outcome.hi, lattice[dense_hi]);
    EXPECT_EQ(outcome.direction, -1);  // hibernus wins low f: falling
    EXPECT_LT(outcome.probe_count(), lattice.size());
    EXPECT_LT(outcome.simulated_points(), lattice.size() * 2);
    EXPECT_EQ(outcome.warm_points(), 0u);
  }
}

// ---- 2. bit-identity and warm reruns --------------------------------------

// A probe's rows must serialize to the same bytes as the dense grid's rows
// at the same axis value — the "probes go through the ordinary grid path"
// contract that makes solver results trustworthy stand-ins for sweep rows.
TEST_F(SearchTest, ProbeRowsByteIdenticalToDenseRows) {
  const std::vector<double> lattice = {5, 10, 20, 40, 80, 160, 320};

  sweep::Search search = make_eq5_search();
  const sweep::SearchOutcome outcome = search.bracket_on(lattice);

  sweep::Grid dense = search.dense_grid(lattice);
  const auto dense_rows = sweep::Runner().run(dense);
  for (const sweep::SearchProbe& probe : outcome.probes) {
    const auto at = std::find(lattice.begin(), lattice.end(), probe.x);
    ASSERT_NE(at, lattice.end());
    const std::size_t f = static_cast<std::size_t>(at - lattice.begin());
    ASSERT_EQ(probe.rows.size(), 2u);
    for (std::size_t v = 0; v < 2; ++v) {
      EXPECT_EQ(sim::serialize_result(probe.rows[v]),
                sim::serialize_result(dense_rows[f * 2 + v]))
          << "f = " << probe.x << " variant " << v;
    }
  }
}

// A rerun of the same query against the same cache must not simulate a
// single point — and must still return byte-identical rows.
TEST_F(SearchTest, WarmRerunSimulatesZeroPoints) {
  const std::vector<double> lattice = {5, 10, 20, 40, 80, 160, 320};

  sweep::Cache cache(dir_.string());
  sweep::SearchOptions options;
  options.runner.cache = &cache;

  sweep::Search cold = make_eq5_search(options);
  const sweep::SearchOutcome first = cold.bracket_on(lattice);
  EXPECT_GT(first.simulated_points(), 0u);
  EXPECT_EQ(first.warm_points(), 0u);

  sweep::Search warm = make_eq5_search(options);
  const sweep::SearchOutcome second = warm.bracket_on(lattice);
  EXPECT_EQ(second.simulated_points(), 0u);
  EXPECT_EQ(second.warm_points(), first.simulated_points());
  EXPECT_EQ(second.lo_index, first.lo_index);
  EXPECT_EQ(second.hi_index, first.hi_index);
  ASSERT_EQ(second.probes.size(), first.probes.size());
  for (std::size_t i = 0; i < first.probes.size(); ++i) {
    ASSERT_EQ(first.probes[i].rows.size(), second.probes[i].rows.size());
    for (std::size_t v = 0; v < first.probes[i].rows.size(); ++v) {
      EXPECT_EQ(sim::serialize_result(first.probes[i].rows[v]),
                sim::serialize_result(second.probes[i].rows[v]));
    }
  }
}

// Probing the same x twice on one Search costs nothing the second time
// (memoised above the cache), and results accumulate across operations.
TEST_F(SearchTest, ProbesAreMemoised) {
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return 50.0 - x; }));
  search.probe(10.0);
  EXPECT_EQ(search.simulated_points(), 1u);
  search.probe(10.0);
  EXPECT_EQ(search.simulated_points(), 1u);
  EXPECT_EQ(search.probes().size(), 1u);
}

// ---- continuous contraction ------------------------------------------------

TEST_F(SearchTest, ContractConvergesToTolerance) {
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return 37.25 - x; }));
  const sweep::SearchOutcome outcome = search.contract(1.0, 1000.0, 0.5);
  EXPECT_LE(outcome.hi - outcome.lo, 0.5);
  EXPECT_LE(outcome.lo, 37.25);
  EXPECT_GE(outcome.hi, 37.25);
  EXPECT_EQ(outcome.direction, -1);
  EXPECT_GT(outcome.value_lo, 0.0);
  EXPECT_LT(outcome.value_hi, 0.0);
  EXPECT_EQ(outcome.lo_index, sweep::SearchOutcome::npos);
  // 2 endpoints + at most ceil(log2(range / tol)) bisection probes — the
  // O(log(range/tol)) contract.
  const auto budget =
      2u + static_cast<std::size_t>(std::ceil(std::log2(999.0 / 0.5)));
  EXPECT_LE(outcome.probe_count(), budget);
  EXPECT_GE(outcome.probe_count(), 4u);
}

// ---- 3. the failure matrix -------------------------------------------------

TEST_F(SearchTest, FlatObjectiveThrowsNoBracket) {
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double) { return 1.0; }));
  try {
    search.bracket_on({1, 2, 4, 8, 16});
    FAIL() << "expected SearchError";
  } catch (const sweep::SearchError& error) {
    EXPECT_EQ(error.kind(), sweep::SearchErrorKind::kNoBracket);
    EXPECT_NE(std::string(error.what()).find("no-bracket"), std::string::npos);
  }
  EXPECT_EQ(search.simulated_points(), 2u);  // endpoints only
}

TEST_F(SearchTest, ZeroObjectiveThrowsDegenerate) {
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return x - 1.0; }));
  try {
    search.bracket_on({1, 2, 4, 8});  // objective is exactly 0 at x = 1
    FAIL() << "expected SearchError";
  } catch (const sweep::SearchError& error) {
    EXPECT_EQ(error.kind(), sweep::SearchErrorKind::kDegenerate);
  }
}

TEST_F(SearchTest, NonFiniteObjectiveThrowsDegenerate) {
  sweep::Search search(tiny_spec(), bleed_axis(), from_x(+[](double x) {
                         return x < 5.0 ? std::numeric_limits<double>::quiet_NaN()
                                        : 1.0;
                       }));
  EXPECT_THROW(search.bracket_on({1, 2, 4, 8}), sweep::SearchError);
}

TEST_F(SearchTest, ReversedSignThrowsWithDeclaredDirection) {
  sweep::SearchOptions options;
  options.direction = -1;  // declared falling...
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return x - 50.0; }),  // ...rises
                       options);
  try {
    search.bracket_on({1, 2, 4, 8, 16, 32, 64, 128});
    FAIL() << "expected SearchError";
  } catch (const sweep::SearchError& error) {
    EXPECT_EQ(error.kind(), sweep::SearchErrorKind::kReversed);
  }
}

TEST_F(SearchTest, UndeclaredDirectionAcceptsEitherOrientation) {
  sweep::Search rising(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return x - 50.0; }));
  EXPECT_EQ(rising.bracket_on({1, 2, 4, 8, 16, 32, 64, 128}).direction, 1);
  sweep::Search falling(tiny_spec(), bleed_axis(),
                        from_x(+[](double x) { return 50.0 - x; }));
  EXPECT_EQ(falling.bracket_on({1, 2, 4, 8, 16, 32, 64, 128}).direction, -1);
}

// A locally noisy flip that plain bisection steps over: positive up to 7,
// negative beyond — except a positive blip at exactly 9. Bisection lands
// on cell (9, 10); the neighbour pass probes 8, the trail reads
// ... 7:+ 8:- 9:+ 10:- ... (two flips), and the search fails loudly
// instead of certifying the wrong cell.
double noisy_flip(double x) {
  if (x == 9.0) return 1.0;
  return x < 7.5 ? 1.0 : -1.0;
}

TEST_F(SearchTest, NeighborVerificationCatchesNoisyFlip) {
  std::vector<double> lattice;
  for (int i = 0; i <= 15; ++i) lattice.push_back(i + 1.0);

  sweep::Search search(tiny_spec(), bleed_axis(), from_x(&noisy_flip));
  try {
    search.bracket_on(lattice);
    FAIL() << "expected SearchError";
  } catch (const sweep::SearchError& error) {
    EXPECT_EQ(error.kind(), sweep::SearchErrorKind::kNonMonotone);
  }

  // Without the neighbour pass the same search silently converges — the
  // two extra probes are exactly what buys the loud failure.
  sweep::SearchOptions options;
  options.verify_neighbors = false;
  sweep::Search unverified(tiny_spec(), bleed_axis(), from_x(&noisy_flip),
                           options);
  EXPECT_NO_THROW(unverified.bracket_on(lattice));
}

TEST_F(SearchTest, ExhaustedBudgetThrows) {
  sweep::SearchOptions options;
  options.max_probes = 4;
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return 500.0 - x; }), options);
  try {
    search.contract(1.0, 1000.0, 1e-6);
    FAIL() << "expected SearchError";
  } catch (const sweep::SearchError& error) {
    EXPECT_EQ(error.kind(), sweep::SearchErrorKind::kBudget);
  }
  EXPECT_EQ(search.probes().size(), 4u);
}

TEST_F(SearchTest, RejectsMalformedLattices) {
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return 50.0 - x; }));
  EXPECT_THROW(search.bracket_on({1.0}), std::invalid_argument);
  EXPECT_THROW(search.bracket_on({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(search.bracket_on({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(search.contract(5.0, 5.0, 0.1), std::invalid_argument);
  EXPECT_THROW(search.contract(1.0, 5.0, 0.0), std::invalid_argument);
}

// ---- telemetry -------------------------------------------------------------

TEST_F(SearchTest, TelemetryAppendsHeaderOnceAndRows) {
  sweep::Search search(tiny_spec(), bleed_axis(),
                       from_x(+[](double x) { return 50.0 - x; }));
  search.bracket_on({1, 2, 4, 8, 16, 32, 64, 128});

  const std::string path = (dir_ / "search.csv").string();
  sweep::append_search_telemetry(path, "UnitCold", search, 128);
  sweep::append_search_telemetry(path, "UnitAgain", search, 128);

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "name,probes,simulated,warm,grid_points");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("UnitCold,", 0), 0u);
  const std::string expected =
      "UnitCold," + std::to_string(search.probes().size()) + "," +
      std::to_string(search.simulated_points()) + ",0,128";
  EXPECT_EQ(line, expected);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("UnitAgain,", 0), 0u);
  EXPECT_FALSE(std::getline(in, line));
}

}  // namespace
}  // namespace edc
