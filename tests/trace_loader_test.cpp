// CSV trace loaders for the spec layer: measured-dataset waveforms become
// VoltageTraceSource/PowerTraceSource values that sweep, serialize, hash
// and therefore cache/shard exactly like synthetic sources.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "edc/spec/serialize.h"
#include "edc/spec/trace_loaders.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/voltage_sources.h"

namespace {

using namespace edc;

const std::string kFixtures = std::string(EDC_TESTS_DIR) + "/fixtures";

TEST(TraceLoader, LoadsPowerTraceFixture) {
  const spec::PowerTraceSource source =
      spec::load_power_trace_csv(kFixtures + "/pv_power_trace.csv");
  EXPECT_EQ(source.label, "pv_power_trace.csv");
  ASSERT_EQ(source.wave.size(), 12u);
  EXPECT_DOUBLE_EQ(source.wave.t0(), 0.0);
  EXPECT_DOUBLE_EQ(source.wave.dt(), 0.5);
  EXPECT_DOUBLE_EQ(source.wave.front(), 0.00029);
  EXPECT_DOUBLE_EQ(source.wave.back(), 0.0003);
  EXPECT_DOUBLE_EQ(source.wave.max(), 0.00071);

  // The loaded waveform drives the harvester path like any power source.
  const trace::WaveformPowerSource playback(source.wave, source.label);
  EXPECT_DOUBLE_EQ(playback.available_power(1.0), 0.00042);
  EXPECT_DOUBLE_EQ(playback.available_power(1.25), (0.00042 + 0.00055) / 2);
}

TEST(TraceLoader, LoadsVoltageTraceFixture) {
  const spec::VoltageTraceSource source =
      spec::load_voltage_trace_csv(kFixtures + "/gust_voltage_trace.csv", 220.0);
  EXPECT_EQ(source.label, "gust_voltage_trace.csv");
  EXPECT_DOUBLE_EQ(source.series_resistance, 220.0);
  ASSERT_EQ(source.wave.size(), 16u);
  EXPECT_DOUBLE_EQ(source.wave.dt(), 0.1);
  EXPECT_DOUBLE_EQ(source.wave.max(), 5.0);

  const trace::WaveformVoltageSource playback(source.wave, source.series_resistance,
                                              source.label);
  EXPECT_DOUBLE_EQ(playback.open_circuit_voltage(0.5), 5.0);
  EXPECT_DOUBLE_EQ(playback.series_resistance(), 220.0);
}

TEST(TraceLoader, MissingOrMalformedFileThrows) {
  EXPECT_THROW((void)spec::load_power_trace_csv(kFixtures + "/does_not_exist.csv"),
               std::invalid_argument);

  const std::string bad = std::string(testing::TempDir()) + "/bad_trace.csv";
  {
    std::ofstream out(bad, std::ios::trunc);
    out << "time,volts\n0,1\n1,2\n5,3\n";  // non-uniform time column
  }
  EXPECT_THROW((void)spec::load_voltage_trace_csv(bad), std::invalid_argument);
}

TEST(TraceLoader, LoadedTracesAreCacheableSpecData) {
  spec::SystemSpec s;
  s.source = spec::load_power_trace_csv(kFixtures + "/pv_power_trace.csv");
  s.storage.capacitance = 47e-6;
  s.workload.kind = "sense";
  s.sim.t_end = 0.2;

  ASSERT_TRUE(spec::is_cacheable(s));
  const std::string text = spec::serialize(s);
  EXPECT_EQ(text, spec::serialize(spec::parse_spec(text)));

  // Two independent loads of the same file produce the same canonical
  // bytes — the cache key is a pure function of the file contents.
  spec::SystemSpec again = s;
  again.source = spec::load_power_trace_csv(kFixtures + "/pv_power_trace.csv");
  EXPECT_EQ(spec::spec_hash(s), spec::spec_hash(again));

  // And the loaded source actually simulates (harvests from the trace).
  auto system = spec::instantiate(s);
  const sim::SimResult result = system.run();
  EXPECT_GT(result.harvested, 0.0);
}

/// Builds a throwaway dataset directory with a few uniformly-sampled
/// voltage CSVs (plus a non-CSV distractor).
std::string make_dataset_dir(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto write = [&dir](const std::string& file, double scale) {
    std::ofstream out(dir / file, std::ios::trunc);
    out << "time,volts\n";
    for (int i = 0; i < 8; ++i) {
      out << i * 0.1 << ',' << scale * (i % 4 == 0 ? 0.0 : 3.0) << '\n';
    }
  };
  write("b_office.csv", 1.0);
  write("a_window.csv", 1.5);
  write("c_lab.csv", 0.5);
  std::ofstream(dir / "README.txt", std::ios::trunc) << "not a trace\n";
  return dir.string();
}

TEST(TraceLoader, ListTraceCsvsSortsAndValidates) {
  const std::string dir = make_dataset_dir("dataset_list");
  const auto paths = spec::list_trace_csvs(dir);
  ASSERT_EQ(paths.size(), 3u);  // README.txt skipped
  // Sorted by filename, so every process enumerates identically.
  EXPECT_NE(paths[0].find("a_window.csv"), std::string::npos);
  EXPECT_NE(paths[1].find("b_office.csv"), std::string::npos);
  EXPECT_NE(paths[2].find("c_lab.csv"), std::string::npos);

  EXPECT_THROW((void)spec::list_trace_csvs(dir + "/does_not_exist"),
               std::invalid_argument);
  const std::string empty_dir = std::string(testing::TempDir()) + "/dataset_empty";
  std::filesystem::create_directories(empty_dir);
  EXPECT_THROW((void)spec::list_trace_csvs(empty_dir), std::invalid_argument);
}

TEST(TraceLoader, TraceDirAxisMakesDatasetComparisonsOneLiners) {
  const std::string dir = make_dataset_dir("dataset_axis");

  spec::SystemSpec base;
  base.storage.capacitance = 22e-6;
  base.workload.kind = "sense";
  base.sim.t_end = 0.3;

  sweep::Grid grid(base);
  grid.voltage_trace_dir_axis("harvester", dir).capacitance_axis({10e-6, 22e-6});
  ASSERT_EQ(grid.size(), 6u);  // 3 datasets x 2 capacitances
  ASSERT_EQ(grid.axes()[0].name, "harvester");
  // Labels are the dataset file basenames, in sorted order.
  EXPECT_EQ(grid.axes()[0].values[0].label, "a_window.csv");
  EXPECT_EQ(grid.axes()[0].values[1].label, "b_office.csv");
  EXPECT_EQ(grid.axes()[0].values[2].label, "c_lab.csv");

  // Every point carries its dataset as plain spec data: cacheable and
  // simulable like any synthetic source.
  const auto point = grid.point(0);
  EXPECT_EQ(point.labels[0], "a_window.csv");
  EXPECT_TRUE(spec::is_cacheable(point.spec));
  const auto rows = sweep::Runner().run(grid);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) EXPECT_GT(row.harvested, 0.0);
}

TEST(TraceLoader, VoltageTraceSweepsLikeAnyOtherSource) {
  spec::SystemSpec base;
  base.source = spec::load_voltage_trace_csv(kFixtures + "/gust_voltage_trace.csv");
  base.storage.capacitance = 22e-6;
  base.workload.kind = "fft-small";
  base.sim.t_end = 0.3;

  sweep::Grid grid(base);
  grid.capacitance_axis({10e-6, 22e-6});
  const auto rows = sweep::Runner().run(grid);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[0].harvested, 0.0);
  EXPECT_GT(rows[1].harvested, 0.0);
}

}  // namespace
