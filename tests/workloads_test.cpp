// Unit + property tests for the resumable workloads (edc/workloads).
//
// The central property: slicing execution arbitrarily and round-tripping the
// volatile state through save/restore yields the exact golden digest.
#include <algorithm>

#include <gtest/gtest.h>

#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"
#include "edc/workloads/crc32.h"
#include "edc/workloads/fft.h"
#include "edc/workloads/program.h"
#include "edc/workloads/sort.h"

namespace edc::workloads {
namespace {

// ------------------------------------------------- generic per-kind --------

class ProgramKindTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProgramKindTest, GoldenDigestIsStable) {
  auto a = make_program(GetParam(), 7);
  auto b = make_program(GetParam(), 7);
  EXPECT_EQ(golden_digest(*a), golden_digest(*b));
}

TEST_P(ProgramKindTest, DigestDependsOnSeed) {
  auto a = make_program(GetParam(), 7);
  auto b = make_program(GetParam(), 8);
  EXPECT_NE(golden_digest(*a), golden_digest(*b));
}

TEST_P(ProgramKindTest, TicksAreMonotoneAndProgressReachesOne) {
  auto program = make_program(GetParam(), 3);
  program->reset();
  std::uint64_t last_tick = program->ticks_done();
  double last_progress = 0.0;
  while (!program->done()) {
    ASSERT_GT(program->next_tick_cost(), 0u);
    program->run_tick();
    EXPECT_EQ(program->ticks_done(), last_tick + 1);
    last_tick = program->ticks_done();
    EXPECT_GE(program->progress() + 1e-12, last_progress);
    last_progress = program->progress();
  }
  EXPECT_DOUBLE_EQ(program->progress(), 1.0);
}

TEST_P(ProgramKindTest, TotalCyclesMatchesSumOfTicks) {
  auto program = make_program(GetParam(), 3);
  program->reset();
  Cycles total = 0;
  while (!program->done()) {
    total += program->next_tick_cost();
    program->run_tick();
  }
  EXPECT_EQ(total, program->total_cycles());
}

TEST_P(ProgramKindTest, SaveRestoreRoundTripMidway) {
  auto program = make_program(GetParam(), 5);
  const std::uint64_t golden = golden_digest(*program);

  program->reset();
  // Run ~40% of the ticks, snapshot, clobber by resetting, restore, finish.
  std::uint64_t ticks_total = 0;
  {
    auto probe = make_program(GetParam(), 5);
    probe->reset();
    while (!probe->done()) {
      probe->run_tick();
      ++ticks_total;
    }
  }
  const std::uint64_t cut = ticks_total * 2 / 5;
  for (std::uint64_t i = 0; i < cut; ++i) program->run_tick();
  const auto state = program->save_state();
  program->reset();  // power loss without the snapshot would lose all work
  program->restore_state(state);
  EXPECT_EQ(program->ticks_done(), cut);
  while (!program->done()) program->run_tick();
  EXPECT_EQ(program->result_digest(), golden);
}

TEST_P(ProgramKindTest, ManyRandomInterruptionsStillExact) {
  auto program = make_program(GetParam(), 9);
  const std::uint64_t golden = golden_digest(*program);

  trace::Rng rng(0xabcdef ^ std::hash<std::string>{}(GetParam()));
  program->reset();
  std::vector<std::byte> snapshot = program->save_state();
  int interruptions = 0;
  while (!program->done()) {
    // Run a random burst of ticks.
    const std::uint64_t burst = 1 + rng.below(97);
    for (std::uint64_t i = 0; i < burst && !program->done(); ++i) program->run_tick();
    if (program->done()) break;
    if (rng.uniform() < 0.5) {
      snapshot = program->save_state();  // checkpoint
    }
    if (rng.uniform() < 0.5) {
      program->restore_state(snapshot);  // outage + rollback
      ++interruptions;
    }
  }
  EXPECT_GT(interruptions, 0);
  EXPECT_EQ(program->result_digest(), golden);
}

TEST_P(ProgramKindTest, RestoreRejectsTruncatedState) {
  auto program = make_program(GetParam(), 2);
  program->reset();
  program->run_tick();
  auto state = program->save_state();
  state.resize(state.size() / 2);  // torn snapshot
  EXPECT_THROW(program->restore_state(state), std::invalid_argument);
}

TEST_P(ProgramKindTest, RamFootprintPositiveAndStable) {
  auto program = make_program(GetParam(), 2);
  const std::size_t before = program->ram_footprint();
  EXPECT_GT(before, 0u);
  program->run_tick();
  EXPECT_EQ(program->ram_footprint(), before);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ProgramKindTest,
                         ::testing::ValuesIn(standard_program_kinds()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ------------------------------------------------------- kind-specific -----

TEST(Crc32, MatchesDirectComputation) {
  // Independently fold the same generated stream through a reference CRC.
  const std::uint64_t seed = 31;
  Crc32Program program(1024, seed);
  program.reset();
  while (!program.done()) program.run_tick();

  // Reference: identical generator + textbook bitwise CRC-32.
  std::uint32_t crc = 0xffffffffu;
  for (std::uint64_t block = 0; block < 1024 / 64; ++block) {
    std::uint64_t sm = seed ^ (block * 0x9e3779b97f4a7c15ULL + 1);
    for (std::size_t i = 0; i < 64; i += 8) {
      std::uint64_t word = trace::splitmix64(sm);
      for (std::size_t b = 0; b < 8; ++b) {
        crc ^= static_cast<std::uint8_t>(word >> (8 * b));
        for (int k = 0; k < 8; ++k) {
          crc = (crc & 1u) ? 0xedb88320u ^ (crc >> 1) : (crc >> 1);
        }
      }
    }
  }
  EXPECT_EQ(program.crc(), crc ^ 0xffffffffu);
}

TEST(Sort, ProducesSortedPermutation) {
  SortProgram program(512, 77);
  program.reset();
  // Capture the input multiset.
  auto state = program.save_state();
  while (!program.done()) program.run_tick();
  const auto& out = program.result();
  ASSERT_EQ(out.size(), 512u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  // Same elements: compare sorted copies of input and output.
  SortProgram fresh(512, 77);
  fresh.restore_state(state);
  // The serialized buf0_ holds the input; sort it with std::sort for truth.
  // (Re-run the program and compare against std::sort of a regenerated input.)
  SortProgram regen(512, 77);
  regen.reset();
  std::vector<std::int32_t> truth;
  {
    // Extract input by sorting a copy through the reference path.
    auto s = regen.save_state();
    // The first vector in the state is buf0_ (the input).
    // Safer: run regen to completion and compare digests instead.
    while (!regen.done()) regen.run_tick();
    truth = regen.result();
  }
  EXPECT_EQ(truth, out);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  // DFT of a unit impulse at n=0 is flat: with per-stage 1/2 scaling over
  // log2(N) stages, every output bin should be x[0]/N up to +/-1 LSB of
  // fixed-point rounding. Inject the input through the documented RAM-image
  // layout (re_, im_, then the cursors).
  const unsigned log2n = 8;
  const std::uint32_t n = 1u << log2n;
  FftProgram program(log2n, 1);
  program.reset();

  ByteWriter w;
  std::vector<std::int16_t> re(n, 0), im(n, 0);
  re[0] = 2048;
  w.write_vector(re);
  w.write_vector(im);
  w.write(static_cast<std::uint8_t>(0));  // phase = bit_reverse
  w.write(std::uint32_t{0});              // br_index
  w.write(std::uint32_t{2});              // stage_len
  w.write(std::uint32_t{0});              // pair_index
  w.write(std::uint64_t{0});              // ticks_done
  w.write(static_cast<std::uint8_t>(0));  // last boundary
  program.restore_state(std::move(w).take());

  while (!program.done()) program.run_tick();

  // Read back through the same layout.
  const auto out = program.save_state();
  ByteReader r(out);
  const auto re_out = r.read_vector<std::int16_t>();
  const auto im_out = r.read_vector<std::int16_t>();
  const int expected = 2048 >> log2n;  // = 8
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(re_out[k], expected, 1) << "bin " << k;
    EXPECT_NEAR(im_out[k], 0, 1) << "bin " << k;
  }
}

TEST(GoldenDigest, ResetsBeforeRunning) {
  auto program = make_program("crc", 4);
  program->reset();
  program->run_tick();
  const auto digest = golden_digest(*program);  // must reset internally
  auto fresh = make_program("crc", 4);
  EXPECT_EQ(digest, golden_digest(*fresh));
}

TEST(MakeProgram, RejectsUnknownKind) {
  EXPECT_THROW(make_program("not-a-kind", 1), std::invalid_argument);
}

}  // namespace
}  // namespace edc::workloads
