// Fault-injection and crash-safety suite for the sweep cache and runner
// seams: injected read/truncate/write/rename faults degrade gracefully
// (quarantine + resimulate, never a wrong row), kill-during-store cannot
// expose a partial entry (atomic tmp+rename), an unwritable cache dir
// degrades to simulate-everything, and the fault schedule itself is a
// deterministic function of (seed, op, key, occurrence).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "edc/sim/result_io.h"
#include "edc/spec/serialize.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/fault_injector.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

namespace {

using namespace edc;
namespace fs = std::filesystem;

spec::SystemSpec cheap_spec(std::uint64_t seed = 3) {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 25.0, 0.5, 0.0, 50.0};
  s.storage.capacitance = 22e-6;
  s.storage.bleed = 20000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = seed;
  s.sim.t_end = 0.3;
  return s;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("edc_fault_" + name);
  fs::remove_all(dir);
  return dir;
}

std::string serial_row(const spec::SystemSpec& s) {
  sweep::RunnerOptions options;
  options.threads = 1;
  return sim::serialize_result(sweep::Runner(options).run(sweep::Grid(s)).at(0));
}

/// True when `dir` holds no visible cache entry (no *.edcres anywhere) —
/// tmp debris and .bad quarantine files don't count.
bool no_visible_entries(const fs::path& dir) {
  std::error_code ec;
  for (const auto& item : fs::recursive_directory_iterator(dir, ec)) {
    if (item.is_regular_file(ec) && item.path().extension() == ".edcres") {
      return false;
    }
  }
  return true;
}

TEST(CacheFault, InjectedReadErrorsAreTransientMissesNotQuarantines) {
  sweep::Cache cache(fresh_dir("read"));
  const spec::SystemSpec s = cheap_spec();
  const std::string key = spec::serialize(s);
  const sim::SimResult result = sim::parse_result(serial_row(s));
  cache.store(key, result);
  ASSERT_TRUE(cache.load(key).has_value());

  sweep::FaultPlan plan;
  plan.seed = 11;
  plan.read_error = 1.0;
  sweep::FaultInjector chaos(plan);
  cache.set_fault_injector(&chaos);
  // Every read reports an I/O error: a miss, but the entry is NOT corrupt
  // and must stay in place for the retry that will succeed.
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_GE(chaos.counters().read_errors, 2u);
  EXPECT_EQ(cache.stats().quarantined, 0u);
  EXPECT_TRUE(fs::exists(cache.entry_path(key)));

  cache.set_fault_injector(nullptr);
  const auto healed = cache.load(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(sim::serialize_result(healed->result), serial_row(s));
}

TEST(CacheFault, TruncatedReadQuarantinesTheEntry) {
  sweep::Cache cache(fresh_dir("truncate"));
  const spec::SystemSpec s = cheap_spec();
  const std::string key = spec::serialize(s);
  cache.store(key, sim::parse_result(serial_row(s)));

  sweep::FaultPlan plan;
  plan.seed = 12;
  plan.truncate_read = 1.0;
  sweep::FaultInjector chaos(plan);
  cache.set_fault_injector(&chaos);
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
  // Quarantine renames to .bad: out of the load namespace, bytes kept for
  // post-mortem.
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
  EXPECT_TRUE(fs::exists(cache.entry_path(key).string() + ".bad"));

  // The slot is free again: a re-store + clean load round-trips.
  cache.set_fault_injector(nullptr);
  cache.store(key, sim::parse_result(serial_row(s)));
  const auto healed = cache.load(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(sim::serialize_result(healed->result), serial_row(s));
}

TEST(CacheFault, InjectedWriteAndRenameFailuresLeaveNoDebris) {
  for (const bool rename_side : {false, true}) {
    sweep::Cache cache(fresh_dir(rename_side ? "rename" : "write"));
    sweep::FaultPlan plan;
    plan.seed = 13;
    if (rename_side) plan.rename_error = 1.0;
    else plan.write_error = 1.0;
    sweep::FaultInjector chaos(plan);
    cache.set_fault_injector(&chaos);

    const spec::SystemSpec s = cheap_spec();
    const std::string key = spec::serialize(s);
    cache.store(key, sim::parse_result(serial_row(s)));
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_FALSE(fs::exists(cache.entry_path(key)));
    // The failed store cleans up its temp file: the cache directory holds
    // nothing at all (a "disk full" loop can't fill the disk with debris).
    std::size_t files = 0;
    std::error_code ec;
    for (const auto& item :
         fs::recursive_directory_iterator(cache.directory(), ec)) {
      if (item.is_regular_file(ec)) ++files;
    }
    EXPECT_EQ(files, 0u) << (rename_side ? "rename" : "write");
    const auto counters = chaos.counters();
    EXPECT_GE(rename_side ? counters.rename_errors : counters.write_errors, 1u);
  }
}

TEST(CacheFault, KillDuringStoreNeverExposesAPartialEntry) {
  // Two crash instants: mid-write (tmp file half-written) and post-write /
  // pre-rename. In both, the child dies via _exit(9) inside store() and
  // the entry path must never become visible to any reader.
  const spec::SystemSpec s = cheap_spec();
  const std::string key = spec::serialize(s);
  const sim::SimResult result = sim::parse_result(serial_row(s));

  for (const bool before_rename : {false, true}) {
    const fs::path dir =
        fresh_dir(before_rename ? "crash_rename" : "crash_write");
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      sweep::FaultPlan plan;
      plan.seed = 14;
      if (before_rename) plan.crash_before_rename = 1.0;
      else plan.crash_mid_write = 1.0;
      sweep::FaultInjector chaos(plan);
      sweep::Cache cache(dir);
      cache.set_fault_injector(&chaos);
      cache.store(key, result);  // dies inside
      ::_exit(0);                // unreachable if the crash seam fired
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 9) << "crash seam did not fire";

    // The kill left (at most) tmp debris — never a visible .edcres entry.
    sweep::Cache cache(dir);
    EXPECT_TRUE(no_visible_entries(dir));
    EXPECT_FALSE(cache.load(key).has_value());

    // And the survivor recovers: a clean store round-trips as usual.
    cache.store(key, result);
    const auto healed = cache.load(key);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(sim::serialize_result(healed->result), serial_row(s));
  }
}

TEST(CacheFault, UnwritableCacheDirDegradesToSimulateEverything) {
  // Root the cache under a regular *file*: every create_directories and
  // store fails with ENOTDIR (works even when the test runs as root,
  // where permission bits are ignored). The Runner must degrade to
  // simulate-everything with correct stats and bit-identical rows.
  const fs::path blocker = fresh_dir("blocker");
  fs::create_directories(blocker);
  const fs::path file = blocker / "occupied";
  { std::ofstream(file.string()) << "not a directory\n"; }
  sweep::Cache cache(file / "cache");

  sweep::Grid grid(cheap_spec());
  grid.workload_seed_axis({1, 2, 3});
  sweep::RunnerOptions clean;
  clean.threads = 1;
  const auto reference = sweep::Runner(clean).run(grid);

  sweep::RunnerOptions options;
  options.threads = 1;
  options.cache = &cache;
  for (int round = 0; round < 2; ++round) {
    const auto rows = sweep::Runner(options).run(grid);
    ASSERT_EQ(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(sim::serialize_result(rows[i]),
                sim::serialize_result(reference[i]));
    }
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u * grid.size());
}

TEST(CacheFault, RunnerSeamKillsAWorkerOncePerKeyThenRecovers) {
  sweep::FaultPlan plan;
  plan.seed = 15;
  plan.kill_worker = 1.0;
  sweep::FaultInjector chaos(plan);
  sweep::RunnerOptions options;
  options.threads = 1;
  options.fault_injector = &chaos;

  const sweep::Grid grid(cheap_spec(7));
  // First attempt: the point's worker dies; the Runner surfaces it like
  // any worker exception.
  EXPECT_THROW((void)sweep::Runner(options).run(grid),
               sweep::WorkerKilledError);
  EXPECT_EQ(chaos.counters().worker_kills, 1u);
  // kill_worker is once per key: the retry runs to completion and matches
  // the clean reference byte for byte.
  const auto rows = sweep::Runner(options).run(grid);
  EXPECT_EQ(sim::serialize_result(rows.at(0)), serial_row(cheap_spec(7)));
  EXPECT_EQ(chaos.counters().worker_kills, 1u);
}

TEST(CacheFault, RunnerSeamInjectsLatency) {
  sweep::FaultPlan plan;
  plan.seed = 16;
  plan.slow_point = 1.0;
  plan.slow_millis = 60.0;
  sweep::FaultInjector chaos(plan);
  sweep::RunnerOptions options;
  options.threads = 1;
  options.fault_injector = &chaos;

  const auto start = std::chrono::steady_clock::now();
  const auto rows = sweep::Runner(options).run(sweep::Grid(cheap_spec(8)));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 50.0);
  EXPECT_GE(chaos.counters().slow_points, 1u);
  EXPECT_EQ(sim::serialize_result(rows.at(0)), serial_row(cheap_spec(8)));
}

TEST(CacheFault, FaultScheduleIsDeterministicPerSeed) {
  sweep::FaultPlan plan;
  plan.seed = 99;
  plan.read_error = 0.5;
  const sweep::FaultInjector a(plan);
  const sweep::FaultInjector b(plan);
  plan.seed = 100;
  const sweep::FaultInjector c(plan);

  std::vector<bool> seq_a, seq_b, seq_c;
  for (int i = 0; i < 64; ++i) {
    seq_a.push_back(a.fail_read(0xfeedu));
    seq_b.push_back(b.fail_read(0xfeedu));
    seq_c.push_back(c.fail_read(0xfeedu));
  }
  // Same seed => the same schedule, occurrence by occurrence; a different
  // seed => a different schedule (64 draws at p=0.5 colliding by chance is
  // a 2^-64 event).
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);
  // Distinct keys get independent occurrence streams.
  std::vector<bool> key2;
  for (int i = 0; i < 64; ++i) key2.push_back(a.fail_read(0xbeefu));
  EXPECT_NE(seq_a, key2);
}

TEST(CacheFault, FaultedStormStaysByteIdenticalUnderCacheChaos) {
  // The acceptance shape at unit scale: a grid run repeatedly through a
  // faulted cache (failed reads, truncation-quarantines, failed writes /
  // renames) must produce bit-identical rows every round — chaos degrades
  // performance, never results.
  sweep::Cache cache(fresh_dir("storm"));
  sweep::FaultPlan plan;
  plan.seed = 21;
  plan.read_error = 0.3;
  plan.truncate_read = 0.3;
  plan.write_error = 0.2;
  plan.rename_error = 0.2;
  sweep::FaultInjector chaos(plan);
  cache.set_fault_injector(&chaos);

  sweep::Grid grid(cheap_spec());
  grid.workload_seed_axis({10, 11, 12, 13});
  sweep::RunnerOptions clean;
  clean.threads = 1;
  const auto reference = sweep::Runner(clean).run(grid);

  sweep::RunnerOptions options;
  options.threads = 1;
  options.cache = &cache;
  for (int round = 0; round < 8; ++round) {
    const auto rows = sweep::Runner(options).run(grid);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(sim::serialize_result(rows[i]),
                sim::serialize_result(reference[i]))
          << "round " << round << " point " << i;
    }
  }
  const auto counters = chaos.counters();
  EXPECT_GE(counters.read_errors + counters.truncated_reads, 1u)
      << "the storm never stormed";
}

}  // namespace
