// Tests for the task-based transient systems (edc/taskmodel).
#include <gtest/gtest.h>

#include "edc/core/system.h"
#include "edc/taskmodel/adaptive_buffer_policy.h"
#include "edc/taskmodel/burst_policy.h"
#include "edc/taskmodel/monjolo.h"
#include "edc/taskmodel/wispcam.h"
#include "edc/trace/power_sources.h"

namespace edc::taskmodel {
namespace {

// --------------------------------------------------------- BurstPolicy -----

TEST(BurstPolicy, WakesAboveTaskThresholdOnly) {
  core::SystemBuilder builder;
  BurstTaskPolicy::Config config;
  config.task_energy = 40e-6;
  auto system = builder
                    .power_source(std::make_unique<trace::ConstantPowerSource>(1.5e-3))
                    .capacitance(100e-6)
                    .workload("sense", 3)
                    .policy_burst(config)
                    .build();
  const auto& policy = dynamic_cast<const BurstTaskPolicy&>(system.policy());
  EXPECT_GT(policy.wake_threshold(), system.mcu().power().v_min);
  const auto result = system.run(10.0);
  ASSERT_TRUE(result.mcu.completed);
  // Progress commits at every task (function) boundary.
  EXPECT_GT(result.mcu.saves_completed, 4u);
}

TEST(BurstPolicy, CompletesOnIntermittentField) {
  core::SystemBuilder builder;
  BurstTaskPolicy::Config config;
  config.task_energy = 30e-6;
  auto system = builder
                    .power_source(std::make_unique<trace::MarkovOnOffPowerSource>(
                        4e-3, 0.05, 0.05, 7, 30.0))
                    .capacitance(220e-6)
                    .workload("sense", 3)
                    .policy_burst(config)
                    .build();
  const auto result = system.run(30.0);
  ASSERT_TRUE(result.mcu.completed);
  // One commit per completed phase/task boundary, several per round.
  EXPECT_GE(result.mcu.saves_completed, 8u);
}

TEST(BurstPolicy, WakeThresholdMonotoneInTaskEnergy) {
  auto threshold_for = [](Joules task_energy) {
    core::SystemBuilder builder;
    BurstTaskPolicy::Config config;
    config.task_energy = task_energy;
    auto system = builder
                      .power_source(std::make_unique<trace::ConstantPowerSource>(1e-3))
                      .capacitance(100e-6)
                      .workload("sense", 1)
                      .policy_burst(config)
                      .build();
    return dynamic_cast<const BurstTaskPolicy&>(system.policy()).wake_threshold();
  };
  EXPECT_LT(threshold_for(10e-6), threshold_for(50e-6));
  EXPECT_LT(threshold_for(50e-6), threshold_for(200e-6));
}

TEST(BurstPolicy, TaskEnergyHelperIsPositiveAndScalesWithCycles) {
  core::SystemBuilder builder;
  auto system = builder.power_source(std::make_unique<trace::ConstantPowerSource>(1e-3))
                    .capacitance(100e-6)
                    .workload("sense", 1)
                    .policy_burst()
                    .build();
  const Joules small = BurstTaskPolicy::task_energy(system.mcu(), 1000, 3.0);
  const Joules large = BurstTaskPolicy::task_energy(system.mcu(), 100000, 3.0);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

// ------------------------------------------------- AdaptiveBufferPolicy -----

TEST(AdaptiveBufferPolicy, BufferWidensUnderStrongHarvest) {
  core::SystemBuilder builder;
  AdaptiveBufferPolicy::Config config;
  config.task_energy = 30e-6;
  auto system = builder
                    .power_source(std::make_unique<trace::ConstantPowerSource>(3e-3))
                    .capacitance(100e-6)
                    .workload("sense", 6)
                    .policy_adaptive_buffer(config)
                    .build();
  const auto& policy = dynamic_cast<const AdaptiveBufferPolicy&>(system.policy());
  EXPECT_GT(policy.wake_threshold(), system.mcu().power().v_min);
  EXPECT_EQ(policy.buffer_target(), config.min_buffer);  // cautious until measured
  const auto result = system.run(20.0);
  ASSERT_TRUE(result.mcu.completed);
  // A steady 3 mW harvester is far above rate_reference: once the EWMA has
  // samples, the commit cadence opens up beyond commit-per-task.
  EXPECT_GT(policy.harvest_rate(), 0.0);
  EXPECT_GT(policy.buffer_target(), config.min_buffer);
  EXPECT_LE(policy.buffer_target(), config.max_buffer);
}

TEST(AdaptiveBufferPolicy, CommitsLessThanBurstWhenEnergyIsPlentiful) {
  const auto commits_with = [](auto&& policy_setter) {
    core::SystemBuilder builder;
    builder.power_source(std::make_unique<trace::ConstantPowerSource>(3e-3))
        .capacitance(100e-6)
        .workload("sense", 6);
    policy_setter(builder);
    auto system = builder.build();
    const auto result = system.run(20.0);
    EXPECT_TRUE(result.mcu.completed);
    return result.mcu.saves_completed;
  };
  BurstTaskPolicy::Config burst;
  burst.task_energy = 30e-6;
  AdaptiveBufferPolicy::Config adaptive;
  adaptive.task_energy = 30e-6;
  const auto burst_commits =
      commits_with([&](core::SystemBuilder& b) { b.policy_burst(burst); });
  const auto adaptive_commits = commits_with(
      [&](core::SystemBuilder& b) { b.policy_adaptive_buffer(adaptive); });
  EXPECT_GT(burst_commits, 0u);
  EXPECT_LT(adaptive_commits, burst_commits);
}

TEST(AdaptiveBufferPolicy, ScarceHarvestKeepsCommitPerTask) {
  core::SystemBuilder builder;
  AdaptiveBufferPolicy::Config config;
  config.task_energy = 30e-6;
  // Rate reference far above anything a 50 uW harvester can deliver: the
  // buffer must stay pinned at min_buffer, i.e. commit-per-task.
  config.rate_reference = 1.0;
  auto system = builder
                    .power_source(std::make_unique<trace::ConstantPowerSource>(50e-6))
                    .capacitance(220e-6)
                    .workload("sense", 3)
                    .policy_adaptive_buffer(config)
                    .build();
  const auto& policy = dynamic_cast<const AdaptiveBufferPolicy&>(system.policy());
  (void)system.run(30.0);
  EXPECT_EQ(policy.buffer_target(), config.min_buffer);
}

TEST(AdaptiveBufferPolicy, CompletesOnIntermittentField) {
  core::SystemBuilder builder;
  AdaptiveBufferPolicy::Config config;
  config.task_energy = 30e-6;
  auto system = builder
                    .power_source(std::make_unique<trace::MarkovOnOffPowerSource>(
                        4e-3, 0.05, 0.05, 7, 30.0))
                    .capacitance(220e-6)
                    .workload("sense", 3)
                    .policy_adaptive_buffer(config)
                    .build();
  const auto result = system.run(30.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_GT(result.mcu.saves_completed, 0u);
}

// ------------------------------------------------------------- Monjolo -----

TEST(Monjolo, PingRateTracksHarvestedPower) {
  MonjoloMeter meter({});
  trace::ConstantPowerSource p1(2e-3);
  trace::ConstantPowerSource p2(4e-3);
  const auto r1 = meter.run(p1, 60.0);
  const auto r2 = meter.run(p2, 60.0);
  ASSERT_GT(r1.pings.size(), 5u);
  ASSERT_GT(r2.pings.size(), 5u);
  // Double the power -> about double the ping rate.
  const double ratio = static_cast<double>(r2.pings.size()) /
                       static_cast<double>(r1.pings.size());
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(Monjolo, ReceiverEstimateMatchesTrueHarvest) {
  MonjoloMeter::Config config;
  MonjoloMeter meter(config);
  trace::ConstantPowerSource source(3e-3);
  const auto result = meter.run(source, 120.0);
  // The receiver sees eta * P_in minus leakage; estimate within 20 %.
  const Watts est = result.mean_estimate(10.0, 110.0);
  const Watts truth = 3e-3 * config.harvest_efficiency;
  EXPECT_NEAR(est, truth, 0.2 * truth);
}

TEST(Monjolo, NoPingsWithoutPower) {
  MonjoloMeter meter({});
  trace::ConstantPowerSource source(0.0);
  const auto result = meter.run(source, 10.0);
  EXPECT_TRUE(result.pings.empty());
}

TEST(Monjolo, EstimatedPowerSeriesIsPositive) {
  MonjoloMeter meter({});
  trace::ConstantPowerSource source(2e-3);
  const auto result = meter.run(source, 60.0);
  const auto estimates = result.estimated_power();
  ASSERT_FALSE(estimates.empty());
  for (const auto& [t, p] : estimates) {
    EXPECT_GT(p, 0.0);
    EXPECT_GE(t, 0.0);
  }
}

// ------------------------------------------------------------- WISPCam -----

TEST(WispCam, CapturesAndTransfersUnderStrongField) {
  WispCam camera({});
  trace::RfFieldSource::Params rf;
  rf.field_power = 3e-3;
  rf.burst_length = 8.0;
  rf.burst_period = 10.0;
  trace::RfFieldSource source(rf, 3, 300.0);
  const auto result = camera.run(source, 300.0);
  EXPECT_GT(result.photos_captured, 0);
  EXPECT_GT(result.photos_transferred, 0);
  EXPECT_LE(result.photos_transferred, result.photos_captured);
  EXPECT_GT(result.mean_latency(), 0.0);
}

TEST(WispCam, WeakerFieldMeansFewerPhotos) {
  WispCam camera({});
  trace::RfFieldSource::Params strong;
  strong.field_power = 3e-3;
  strong.burst_length = 8.0;
  strong.burst_period = 10.0;
  trace::RfFieldSource strong_src(strong, 3, 200.0);
  auto weak = strong;
  weak.field_power = 1.2e-3;
  trace::RfFieldSource weak_src(weak, 3, 200.0);
  const auto strong_result = camera.run(strong_src, 200.0);
  const auto weak_result = camera.run(weak_src, 200.0);
  EXPECT_GE(strong_result.photos_captured, weak_result.photos_captured);
}

TEST(WispCam, NothingHappensWithoutField) {
  WispCam camera({});
  trace::ConstantPowerSource source(0.0);
  const auto result = camera.run(source, 60.0);
  EXPECT_EQ(result.photos_captured, 0);
  EXPECT_EQ(result.photos_transferred, 0);
}

TEST(WispCam, VoltageProbeStaysBounded) {
  WispCam camera({});
  trace::RfFieldSource::Params rf;
  rf.field_power = 3e-3;
  trace::RfFieldSource source(rf, 3, 60.0);
  const auto result = camera.run(source, 60.0);
  EXPECT_GE(result.voltage.min(), 0.0);
  EXPECT_LT(result.voltage.max(), 10.0);
}

}  // namespace
}  // namespace edc::taskmodel
