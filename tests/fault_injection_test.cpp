// Fault injection: kill the supply at adversarial instants and verify the
// system's integrity invariants.
//
//  * A brown-out mid-save tears the write; the previously committed
//    snapshot must survive untouched (NVM double-buffer semantics).
//  * A brown-out mid-restore loses the volatile state but not the NVM copy;
//    the next restore succeeds and the final digest stays exact.
//  * Random brown-out storms (parameterised over seeds) never corrupt the
//    result: either the workload completes bit-exactly or it simply has
//    not finished yet.
#include <gtest/gtest.h>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/core/system.h"
#include "edc/trace/power_sources.h"
#include "edc/workloads/fft.h"

namespace edc {
namespace {

// A power source that is ON except during scripted kill windows.
class ScriptedKillSource final : public trace::PowerSource {
 public:
  ScriptedKillSource(Watts on_power, std::vector<std::pair<Seconds, Seconds>> kills)
      : on_power_(on_power), kills_(std::move(kills)) {}

  [[nodiscard]] Watts available_power(Seconds t) const override {
    for (const auto& [start, duration] : kills_) {
      if (t >= start && t < start + duration) return 0.0;
    }
    return on_power_;
  }
  [[nodiscard]] std::string name() const override { return "scripted-kill"; }

 private:
  Watts on_power_;
  std::vector<std::pair<Seconds, Seconds>> kills_;
};

struct KilledRun {
  sim::SimResult result;
  std::uint64_t torn = 0;
  std::uint64_t commits = 0;
  std::uint64_t digest = 0;
  bool digest_valid = false;
};

KilledRun run_with_kills(std::vector<std::pair<Seconds, Seconds>> kills,
                         Seconds horizon) {
  core::SystemBuilder builder;
  checkpoint::InterruptPolicy::Config config;
  config.restore_headroom = 0.3;
  builder
      .power_source(std::make_unique<ScriptedKillSource>(8e-3, std::move(kills)))
      .capacitance(22e-6)
      .bleed(2000.0)  // fast discharge so kills actually brown the node out
      .program(std::make_unique<workloads::FftProgram>(11, 3))
      .policy_hibernus(config);
  auto system = builder.build();
  KilledRun run;
  run.result = system.run(horizon);
  run.torn = system.mcu().nvm().torn_writes();
  run.commits = system.mcu().nvm().commits();
  if (run.result.mcu.completed) {
    run.digest = system.program().result_digest();
    run.digest_valid = true;
  }
  return run;
}

std::uint64_t golden() {
  workloads::FftProgram program(11, 3);
  return workloads::golden_digest(program);
}

TEST(FaultInjection, CleanRunCompletesExactly) {
  const auto run = run_with_kills({}, 5.0);
  ASSERT_TRUE(run.result.mcu.completed);
  EXPECT_EQ(run.digest, golden());
  EXPECT_EQ(run.result.mcu.brownouts, 0u);
}

TEST(FaultInjection, KillSweepAcrossTheWholeRun) {
  // Kill the supply once, at 30 different instants across the computation
  // (including instants that land mid-save and mid-restore), for 60 ms —
  // long enough to fully brown out the node. Every run must still finish
  // with the exact digest.
  const std::uint64_t expected = golden();
  for (int i = 0; i < 30; ++i) {
    const Seconds kill_at = 0.005 + 0.004 * static_cast<double>(i);
    const auto run = run_with_kills({{kill_at, 0.060}}, 8.0);
    ASSERT_TRUE(run.result.mcu.completed) << "kill at " << kill_at;
    EXPECT_EQ(run.digest, expected) << "kill at " << kill_at;
  }
}

TEST(FaultInjection, DoubleKillStraddlingRestore) {
  // First kill forces a snapshot + brown-out. The second kill lands right
  // after recovery, typically mid-restore; the NVM copy must survive and
  // the third attempt completes.
  const auto run = run_with_kills({{0.020, 0.050}, {0.087, 0.050}}, 8.0);
  ASSERT_TRUE(run.result.mcu.completed);
  EXPECT_EQ(run.digest, golden());
  EXPECT_GE(run.result.mcu.brownouts, 2u);
}

TEST(FaultInjection, TornWritesNeverDestroyCommittedSnapshots) {
  // A dense storm of short kills produces torn saves; the commit counter
  // and result integrity must be unaffected by them.
  std::vector<std::pair<Seconds, Seconds>> kills;
  for (int i = 0; i < 40; ++i) {
    kills.emplace_back(0.010 + 0.017 * i, 0.012);
  }
  const auto run = run_with_kills(kills, 10.0);
  ASSERT_TRUE(run.result.mcu.completed);
  EXPECT_EQ(run.digest, golden());
}

class BrownoutStormTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrownoutStormTest, RandomStormsPreserveExactness) {
  // Markov on/off with a mean on-time shorter than the whole computation
  // and hard off-times: dozens of randomly-placed brown-outs per run.
  const std::uint64_t seed = GetParam();
  core::SystemBuilder builder;
  checkpoint::InterruptPolicy::Config config;
  config.restore_headroom = 0.3;
  builder
      .power_source(std::make_unique<trace::MarkovOnOffPowerSource>(
          8e-3, 0.030, 0.020, seed, 40.0))
      .capacitance(22e-6)
      .bleed(2000.0)
      .program(std::make_unique<workloads::FftProgram>(12, 3))
      .policy_hibernus(config);
  auto system = builder.build();
  const auto result = system.run(40.0);
  ASSERT_TRUE(result.mcu.completed) << "storm seed " << seed;
  workloads::FftProgram storm_golden(12, 3);
  EXPECT_EQ(system.program().result_digest(), workloads::golden_digest(storm_golden));
  EXPECT_GE(result.mcu.brownouts + result.mcu.saves_completed, 1u);
  // Ledger sanity under the storm.
  EXPECT_NEAR(result.ledger_residual(), 0.0, 1e-6 + 1e-6 * result.harvested);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrownoutStormTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(FaultInjection, SnapshotSequenceNumbersIncrease) {
  mcu::NvmStore nvm;
  for (int i = 0; i < 5; ++i) {
    nvm.begin_write(mcu::Snapshot{{std::byte{static_cast<unsigned char>(i)}}, 0.0, 0});
    nvm.commit();
    EXPECT_EQ(nvm.snapshot().sequence, static_cast<std::uint64_t>(i + 1));
  }
  // A torn write does not advance the sequence.
  nvm.begin_write(mcu::Snapshot{{std::byte{99}}, 0.0, 0});
  nvm.abandon_write();
  EXPECT_EQ(nvm.snapshot().sequence, 5u);
}

}  // namespace
}  // namespace edc
