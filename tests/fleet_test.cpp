// Fleet differential suite (ctest label: fleet).
//
// The fleet API's load-bearing promise is that node-count-N adds structure
// without perturbation: an N=1 uncoupled fleet is *bit-identical* to the
// scalar simulator (asserted on the canonical result serialization, which
// covers the full SimResult), coupling lowers to ordinary serializable
// per-node specs, and fleet sweeps ride the Cache/Runner stack unchanged —
// a warm rerun of a cached 3-node shared-RF fleet simulates zero points
// and replays byte-identical rows. The CoupledRfFieldSource that realizes
// the shared-RF coupling is held to the PowerSource quiet-claim contract:
// dormant_until may only name instants the gated field really is dead.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "edc/sim/fleet.h"
#include "edc/sim/result_io.h"
#include "edc/spec/fleet_spec.h"
#include "edc/spec/serialize.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/fleet.h"
#include "edc/sweep/runner.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/waveform.h"

namespace edc::spec {
namespace {

// --------------------------------------------- CoupledRfFieldSource -----

trace::RfFieldSource::Params test_field() {
  trace::RfFieldSource::Params params;
  params.field_power = 1e-3;
  params.burst_length = 0.5;
  params.burst_period = 1.5;
  params.jitter = 0.2;
  return params;
}

TEST(CoupledRfField, GainScalesTheSharedField) {
  const auto params = test_field();
  const trace::RfFieldSource field(params, 42, 10.0);
  // Always-open window (period 0): the coupled source is gain x field.
  const trace::CoupledRfFieldSource coupled(params, 42, 10.0, 0.25, 0.0, 1.0,
                                            0.0);
  for (int i = 0; i <= 1000; ++i) {
    const Seconds t = i * 0.01;
    EXPECT_DOUBLE_EQ(coupled.available_power(t), 0.25 * field.available_power(t))
        << "at t=" << t;
  }
}

TEST(CoupledRfField, WindowGatesTheField) {
  const auto params = test_field();
  const trace::CoupledRfFieldSource coupled(params, 42, 10.0, 1.0, 2.0, 0.5,
                                            0.25);
  const trace::RfFieldSource field(params, 42, 10.0);
  for (int i = 0; i <= 1000; ++i) {
    const Seconds t = i * 0.01;
    if (coupled.window_open(t)) {
      EXPECT_DOUBLE_EQ(coupled.available_power(t), field.available_power(t));
    } else {
      EXPECT_DOUBLE_EQ(coupled.available_power(t), 0.0);
    }
  }
  // The 50%-duty window starting at phase 0.25 really closes sometimes.
  EXPECT_TRUE(coupled.window_open(0.3));
  EXPECT_FALSE(coupled.window_open(1.5));
}

TEST(CoupledRfField, DormantUntilClaimsOnlyDeadSpans) {
  // The PowerSource contract: dormant_until(t) > t may only be returned
  // when the source is zero on the whole claimed span. Sample the gated
  // field densely and audit every claim.
  const auto params = test_field();
  const trace::CoupledRfFieldSource coupled(params, 7, 8.0, 0.8, 1.7, 0.4,
                                            0.3);
  const Seconds dt = 1e-3;
  for (int i = 0; i < 8000; ++i) {
    const Seconds t = i * dt;
    if (coupled.available_power(t) > 0.0) continue;
    const Seconds until = coupled.dormant_until(t);
    ASSERT_GE(until, t);
    const Seconds end = std::min(until, 8.0);
    for (Seconds s = t; s < end; s += dt) {
      ASSERT_EQ(coupled.available_power(s), 0.0)
          << "dormant_until(" << t << ") = " << until
          << " over-claims: field live at " << s;
    }
  }
}

TEST(CoupledRfField, ZeroGainIsNeverActive) {
  const trace::CoupledRfFieldSource coupled(test_field(), 1, 5.0, 0.0, 0.0,
                                            1.0, 0.0);
  EXPECT_EQ(coupled.available_power(1.0), 0.0);
  EXPECT_EQ(coupled.dormant_until(0.0), trace::kNeverActive);
}

// ------------------------------------------------- validation errors -----

FleetSpec coupled_fleet(std::size_t n) {
  SystemSpec node;
  node.workload.kind = "crc";
  node.sim.t_end = 0.4;
  FleetSpec fleet;
  fleet.nodes.assign(n, node);
  SharedRfCoupling rf;
  rf.field = test_field();
  rf.horizon = 0.4;
  rf.gains.assign(n, 1.0);
  fleet.coupling = rf;
  return fleet;
}

TEST(FleetValidation, RejectsIllFormedFleets) {
  EXPECT_THROW(validate_fleet(FleetSpec{}), std::invalid_argument);

  // One gain per node, non-negative.
  FleetSpec fleet = coupled_fleet(3);
  std::get<SharedRfCoupling>(fleet.coupling).gains.resize(2);
  EXPECT_THROW(validate_fleet(fleet), std::invalid_argument);
  fleet = coupled_fleet(3);
  std::get<SharedRfCoupling>(fleet.coupling).gains[1] = -0.5;
  EXPECT_THROW(validate_fleet(fleet), std::invalid_argument);

  // Phases empty or one per node.
  fleet = coupled_fleet(3);
  std::get<SharedRfCoupling>(fleet.coupling).phases = {0.0, 1.0};
  EXPECT_THROW(validate_fleet(fleet), std::invalid_argument);

  // Window duty in (0, 1] once a period is set.
  fleet = coupled_fleet(2);
  std::get<SharedRfCoupling>(fleet.coupling).window_period = 1.0;
  std::get<SharedRfCoupling>(fleet.coupling).window_duty = 0.0;
  EXPECT_THROW(validate_fleet(fleet), std::invalid_argument);

  // Coupled nodes must leave their source to the coupling.
  fleet = coupled_fleet(2);
  fleet.nodes[1].source = SineSource{3.3, 5.0, 0.0, 50.0};
  EXPECT_THROW(validate_fleet(fleet), std::invalid_argument);

  // Coupled nodes must agree on the shared dt lattice.
  fleet = coupled_fleet(2);
  fleet.nodes[1].sim.t_end = 0.5;
  EXPECT_THROW(validate_fleet(fleet), std::invalid_argument);

  EXPECT_NO_THROW(validate_fleet(coupled_fleet(3)));
}

TEST(FleetLowering, SubstitutesTheCoupledSource) {
  FleetSpec fleet = coupled_fleet(3);
  auto& rf = std::get<SharedRfCoupling>(fleet.coupling);
  rf.gains = {1.0, 0.5, 0.25};
  rf.window_period = 1.0;
  rf.window_duty = 0.5;
  rf.phases = {0.0, 0.25, 0.5};

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const SystemSpec lowered = fleet_node_spec(fleet, i);
    const auto* source = std::get_if<CoupledRfPower>(&lowered.source);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->gain, rf.gains[i]);
    EXPECT_EQ(source->window_phase, rf.phases[i]);
    EXPECT_EQ(source->seed, rf.seed);
  }
  EXPECT_THROW(fleet_node_spec(fleet, 3), std::invalid_argument);
}

TEST(FleetLowering, UncoupledLoweringIsTheIdentity) {
  SystemSpec node;
  node.source = SineSource{3.3, 5.0, 0.0, 50.0};
  node.workload.kind = "crc";
  node.sim.t_end = 0.4;
  FleetSpec fleet;
  fleet.nodes = {node};
  EXPECT_EQ(serialize(fleet_node_spec(fleet, 0)), serialize(node));
}

// ------------------------------------------- fleet spec serialization -----

TEST(FleetSerial, RoundTripIsByteIdentical) {
  const FleetSpec fleet = example_rf_fleet(3);
  const std::string text = serialize_fleet(fleet);
  const FleetSpec reparsed = parse_fleet(text);
  EXPECT_EQ(serialize_fleet(reparsed), text);
  EXPECT_EQ(fleet_hash(reparsed), fleet_hash(fleet));

  // An uncoupled heterogeneous fleet round-trips too.
  SystemSpec a, b;
  a.source = SineSource{3.3, 5.0, 0.0, 50.0};
  a.workload.kind = "crc";
  b.source = ConstantPower{2e-3};
  b.workload.kind = "sense";
  b.storage.capacitance = 47e-6;
  FleetSpec plain;
  plain.nodes = {a, b};
  const std::string plain_text = serialize_fleet(plain);
  EXPECT_EQ(serialize_fleet(parse_fleet(plain_text)), plain_text);
  EXPECT_NE(fleet_hash(plain), fleet_hash(fleet));
}

TEST(FleetSerial, StrictParserFailsLoudly) {
  const std::string text = serialize_fleet(example_rf_fleet(2));
  EXPECT_THROW(parse_fleet(text + "trailing"), SpecFormatError);
  EXPECT_THROW(parse_fleet(text.substr(0, text.size() / 2)), SpecFormatError);
  std::string tampered = text;
  tampered.replace(tampered.find("shared_rf"), 9, "sharedorf");
  EXPECT_THROW(parse_fleet(tampered), SpecFormatError);
  EXPECT_THROW(parse_fleet("edc.OtherThing v6\n"), SpecFormatError);
}

TEST(FleetSerial, OpaqueNodesAreNonCacheableWithNodeIndex) {
  FleetSpec fleet;
  SystemSpec plain;
  plain.source = SineSource{3.3, 5.0, 0.0, 50.0};
  SystemSpec opaque = plain;
  opaque.policy = CustomPolicy{[](const std::function<Farads()>&, Farads) {
    return std::unique_ptr<checkpoint::PolicyBase>();
  }};
  fleet.nodes = {plain, opaque};
  EXPECT_FALSE(is_cacheable(fleet));
  const std::string reason = non_cacheable_reason(fleet);
  EXPECT_NE(reason.find("node 1"), std::string::npos) << reason;
  EXPECT_THROW(serialize_fleet(fleet), SpecFormatError);
  EXPECT_TRUE(is_cacheable(example_rf_fleet(2)));
}

// ------------------------------------------ fleet result serialization -----

TEST(FleetResultIo, RoundTripIsByteIdentical) {
  const sim::FleetResult result = sim::FleetSimulator(coupled_fleet(2)).run();
  ASSERT_EQ(result.size(), 2u);
  const std::string text = sim::serialize_fleet_result(result);
  const sim::FleetResult reparsed = sim::parse_fleet_result(text);
  ASSERT_EQ(reparsed.size(), result.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(sim::serialize_result(reparsed.nodes[i]),
              sim::serialize_result(result.nodes[i]));
  }
  EXPECT_EQ(sim::serialize_fleet_result(reparsed), text);
}

TEST(FleetResultIo, StrictParserFailsLoudly) {
  sim::FleetResult result;
  result.nodes.resize(1);
  const std::string text = sim::serialize_fleet_result(result);
  EXPECT_THROW(sim::parse_fleet_result(text + "x"), canon::FormatError);
  EXPECT_THROW(sim::parse_fleet_result(text.substr(0, text.size() - 4)),
               canon::FormatError);
  EXPECT_THROW(sim::parse_fleet_result("edc.FleetResult v999\nnodes 0\n"),
               canon::FormatError);
  EXPECT_THROW(sim::parse_fleet_result(""), canon::FormatError);
}

// --------------------------------- N=1 bit-identity vs the scalar path -----

/// Runs `node` standalone through the scalar simulator and as a 1-node
/// uncoupled fleet, asserting byte equality of the canonical result
/// serialization (full SimResult: ledger, metrics, NVM counters,
/// transitions, probe waveforms).
void expect_scalar_identity(SystemSpec node) {
  node.sim.t_end = 0.4;
  node.storage.bleed = 20000.0;
  node.sim.probe_interval = 0.01;

  const sim::SimResult scalar = instantiate(node).run();

  FleetSpec fleet;
  fleet.nodes = {node};
  const sim::FleetResult via_fleet = sim::FleetSimulator(fleet).run();
  ASSERT_EQ(via_fleet.size(), 1u);
  EXPECT_EQ(sim::serialize_result(via_fleet.nodes[0]),
            sim::serialize_result(scalar));

  // And through the sweep adapter (grid + runner path).
  sweep::RunnerOptions options;
  options.threads = 1;
  const sim::FleetResult via_sweep = sweep::run_fleet(fleet, sweep::Runner(options));
  ASSERT_EQ(via_sweep.size(), 1u);
  EXPECT_EQ(sim::serialize_result(via_sweep.nodes[0]),
            sim::serialize_result(scalar));
}

SystemSpec crc_node() {
  SystemSpec node;
  node.workload.kind = "crc";
  node.workload.seed = 11;
  node.policy = Hibernus{};
  return node;
}

TEST(FleetScalarIdentity, SineFamily) {
  SystemSpec node = crc_node();
  node.source = SineSource{3.3, 5.0, 0.0, 50.0};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, DcFamily) {
  SystemSpec node = crc_node();
  node.source = DcSource{3.3, 50.0};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, SquareFamily) {
  SystemSpec node = crc_node();
  node.source = SquareSource{3.3, 10.0, 0.5, 0.0, 50.0};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, WindFamily) {
  SystemSpec node = crc_node();
  node.source = WindSource{{}, 3, 1.0};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, KineticFamily) {
  SystemSpec node = crc_node();
  node.source = KineticSource{{}, 5, 1.0};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, VoltageTraceFamily) {
  SystemSpec node = crc_node();
  std::vector<double> samples;
  for (int i = 0; i < 50; ++i) samples.push_back(i % 10 < 6 ? 3.3 : 0.0);
  node.source = VoltageTraceSource{trace::Waveform(0.0, 0.01, samples), 50.0,
                                   "fixture"};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, ConstantPowerFamily) {
  SystemSpec node = crc_node();
  node.source = ConstantPower{2e-3};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, MarkovPowerFamily) {
  SystemSpec node = crc_node();
  node.source = MarkovPower{4e-3, 0.05, 0.05, 11, 1.0};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, RfFieldFamily) {
  SystemSpec node = crc_node();
  node.source = RfFieldPower{test_field(), 2, 1.0};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, CoupledRfFamily) {
  // The lowering target itself is an ordinary source family: a 1-node
  // *standalone* spec carrying CoupledRfPower behaves identically through
  // the fleet wrapper.
  SystemSpec node = crc_node();
  CoupledRfPower source;
  source.field = test_field();
  source.seed = 9;
  source.horizon = 1.0;
  source.gain = 0.7;
  source.window_period = 0.3;
  source.window_duty = 0.5;
  node.source = source;
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, IndoorPvFamily) {
  SystemSpec node = crc_node();
  node.source = IndoorPvPower{{}, 4, 1};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, SolarFamily) {
  SystemSpec node = crc_node();
  node.source = SolarPower{{}, 6, 1};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, PowerTraceFamily) {
  SystemSpec node = crc_node();
  std::vector<double> samples;
  for (int i = 0; i < 50; ++i) samples.push_back(i % 7 < 4 ? 3e-3 : 0.0);
  node.source = PowerTraceSource{trace::Waveform(0.0, 0.01, samples), "ptrace"};
  expect_scalar_identity(node);
}

SystemSpec sine_node() {
  SystemSpec node;
  node.source = SineSource{3.3, 5.0, 0.0, 50.0};
  node.workload.kind = "crc";
  node.workload.seed = 11;
  return node;
}

TEST(FleetScalarIdentity, NoCheckpointPolicy) {
  SystemSpec node = sine_node();
  node.policy = NoCheckpoint{};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, HibernusPolicy) {
  SystemSpec node = sine_node();
  node.policy = Hibernus{};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, HibernusPlusPlusPolicy) {
  SystemSpec node = sine_node();
  node.policy = HibernusPlusPlus{};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, QuickRecallPolicy) {
  SystemSpec node = sine_node();
  node.policy = QuickRecall{};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, NvpPolicy) {
  SystemSpec node = sine_node();
  node.policy = Nvp{};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, MementosPolicy) {
  SystemSpec node = sine_node();
  node.policy = Mementos{};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, BurstTaskPolicy) {
  SystemSpec node = sine_node();
  node.workload.kind = "sense";
  node.policy = BurstTask{};
  expect_scalar_identity(node);
}

TEST(FleetScalarIdentity, AdaptiveBufferPolicy) {
  SystemSpec node = sine_node();
  node.workload.kind = "sense";
  taskmodel::AdaptiveBufferPolicy::Config config;
  config.task_energy = 30e-6;
  config.capacitance = 0.0;  // filled with the node capacitance
  node.policy = AdaptiveBuffer{config};
  expect_scalar_identity(node);
}

// -------------------------------------------- fleet runs and the cache -----

TEST(FleetRun, SimulatorAndSweepAdapterAgreeBitForBit) {
  const FleetSpec fleet = example_rf_fleet(3);
  const sim::FleetResult direct = sim::FleetSimulator(fleet).run();
  sweep::RunnerOptions options;
  options.threads = 1;
  const sim::FleetResult swept = sweep::run_fleet(fleet, sweep::Runner(options));
  ASSERT_EQ(direct.size(), 3u);
  ASSERT_EQ(swept.size(), 3u);
  EXPECT_EQ(sim::serialize_fleet_result(swept),
            sim::serialize_fleet_result(direct));
  // Distinct gains/windows really differentiate the nodes.
  EXPECT_NE(sim::serialize_result(direct.nodes[0]),
            sim::serialize_result(direct.nodes[1]));
  EXPECT_GT(direct.nodes[0].harvested, direct.nodes[1].harvested);
}

TEST(FleetRun, RepeatRunsAreDeterministic) {
  const sim::FleetSimulator simulator(example_rf_fleet(2));
  EXPECT_EQ(sim::serialize_fleet_result(simulator.run()),
            sim::serialize_fleet_result(simulator.run()));
}

TEST(FleetRun, ColdWarmCacheRoundTrip) {
  const FleetSpec fleet = example_rf_fleet(3);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "edc_fleet_cache_test";
  std::filesystem::remove_all(dir);

  sweep::Cache cache(dir);
  sweep::RunnerOptions options;
  options.cache = &cache;
  const sweep::Runner runner(options);

  sweep::RunReport cold_report;
  const sim::FleetResult cold = sweep::run_fleet(fleet, runner, &cold_report);
  EXPECT_EQ(cold_report.fresh_count(), 3u);
  EXPECT_EQ(cold_report.warm_count(), 0u);

  sweep::RunReport warm_report;
  const sim::FleetResult warm = sweep::run_fleet(fleet, runner, &warm_report);
  EXPECT_EQ(warm_report.fresh_count(), 0u);
  EXPECT_EQ(warm_report.warm_count(), 3u);

  // Warm rows replay the cold bytes exactly.
  EXPECT_EQ(sim::serialize_fleet_result(warm), sim::serialize_fleet_result(cold));

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace edc::spec
