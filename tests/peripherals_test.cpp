// Tests for the peripheral-state extension (the paper's §IV open problem).
#include <gtest/gtest.h>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/core/system.h"
#include "edc/workloads/sensing.h"

namespace edc {
namespace {

core::EnergyDrivenSystem make_system(bool snapshot_peripherals,
                                     mcu::McuParams params = {}) {
  core::SystemBuilder builder;
  checkpoint::InterruptPolicy::Config config;
  config.margin = 2.2;
  config.restore_headroom = 0.3;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.4, 0.0, 50.0))
      .capacitance(22e-6)
      .bleed(3000.0)
      .mcu_params(params)
      .snapshot_peripherals(snapshot_peripherals)
      .program(std::make_unique<workloads::SensingProgram>(256, 5))
      .policy_hibernus(config);
  return builder.build();
}

TEST(Peripherals, ImageGrowsWhenSnapshotted) {
  mcu::McuParams params;
  params.peripheral_file_bytes = 256;
  auto with = make_system(true, params);
  auto without = make_system(false, params);
  EXPECT_EQ(with.mcu().snapshot_image_bytes(),
            without.mcu().snapshot_image_bytes() + 256);
}

TEST(Peripherals, ReinitPaidPerOutageWhenNotSnapshotted) {
  auto system = make_system(false);
  const auto result = system.run(20.0);
  ASSERT_TRUE(result.mcu.completed);
  ASSERT_GT(result.mcu.brownouts, 0u);
  // One re-init at first boot plus one per restore after brown-out.
  EXPECT_EQ(result.mcu.peripheral_reinits, 1 + result.mcu.restores);
}

TEST(Peripherals, NoReinitAfterRestoreWhenSnapshotted) {
  auto system = make_system(true);
  const auto result = system.run(20.0);
  ASSERT_TRUE(result.mcu.completed);
  ASSERT_GT(result.mcu.restores, 0u);
  // Only the first-boot initialisation.
  EXPECT_EQ(result.mcu.peripheral_reinits, 1u);
}

TEST(Peripherals, ExactnessUnaffectedByStrategy) {
  workloads::SensingProgram golden(256, 5);
  const std::uint64_t expected = workloads::golden_digest(golden);
  for (bool snapshot : {false, true}) {
    auto system = make_system(snapshot);
    const auto result = system.run(20.0);
    ASSERT_TRUE(result.mcu.completed) << snapshot;
    EXPECT_EQ(system.program().result_digest(), expected) << snapshot;
  }
}

TEST(Peripherals, DirectResumeSkipsReinit) {
  // A supply that dips below V_H but never browns out: peripherals stay
  // configured, so direct resumes must not pay the re-init cost.
  core::SystemBuilder builder;
  checkpoint::InterruptPolicy::Config config;
  config.v_hibernate = 2.4;
  config.v_restore = 2.8;
  builder
      .voltage_source(
          std::make_unique<trace::SineVoltageSource>(0.70, 4.0, 2.80, 20.0))
      .capacitance(10e-6)
      .snapshot_peripherals(false)
      .program(std::make_unique<workloads::SensingProgram>(512, 5))
      .policy_hibernus(config);
  auto system = builder.build();
  const auto result = system.run(6.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_EQ(result.mcu.brownouts, 0u);
  EXPECT_GT(result.mcu.direct_resumes, 0u);
  EXPECT_EQ(result.mcu.peripheral_reinits, 1u);  // first boot only
}

TEST(Peripherals, ReinitRaisesEq4Threshold) {
  // Snapshotting peripherals makes the image bigger, so Eq 4 yields a
  // higher hibernate threshold.
  mcu::McuParams params;
  params.peripheral_file_bytes = 4096;  // an extreme peripheral file
  auto with = make_system(true, params);
  auto without = make_system(false, params);
  const auto& with_policy =
      dynamic_cast<const checkpoint::InterruptPolicy&>(with.policy());
  const auto& without_policy =
      dynamic_cast<const checkpoint::InterruptPolicy&>(without.policy());
  EXPECT_GT(with_policy.hibernate_threshold(), without_policy.hibernate_threshold());
}

}  // namespace
}  // namespace edc
