// Wall-clock validation of the sweep engine's parallel speedup (ROADMAP:
// "parallel speedup validation on multi-core hardware") plus a 2-shard
// merge smoke test, labelled `multicore` in CMake so CI can run exactly
// this file on a multi-core runner (ctest -L multicore).
//
// The speedup test self-skips below 4 cores (the 1-core dev container
// cannot show wall-clock scaling; bit-identity is covered by
// tests/sweep_test.cpp). Thresholds are deliberately conservative —
// ~linear scaling is expected for a 16-point grid of equal-cost points,
// and we assert >= 3x on 8 cores (>= 1.8x on 4) to stay robust against
// noisy shared CI machines.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "edc/sim/result_io.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/report.h"
#include "edc/sweep/runner.h"

namespace {

using namespace edc;

/// A grid point with deterministic, substantial cost: a steadily powered
/// node stepping finely for the full horizon (no completion stop, no
/// quiescent spans to fast-path away).
spec::SystemSpec busy_spec() {
  spec::SystemSpec s;
  s.source = spec::DcSource{3.3, 50.0};
  s.storage.capacitance = 47e-6;
  s.workload.kind = "crc";
  // ~60 ms of fine-stepped simulation per point on a 2020s x86 core: long
  // enough that a 16-point serial run (~1 s) dwarfs scheduler noise when
  // the speedup ratio is measured on CI.
  s.sim.t_end = 8.0;
  s.sim.stop_on_completion = false;
  return s;
}

sweep::Grid sixteen_point_grid() {
  sweep::Grid grid(busy_spec());
  grid.capacitance_axis({22e-6, 33e-6, 47e-6, 68e-6})
      .workload_seed_axis({1, 2, 3, 4});
  return grid;
}

double seconds_to_run(const sweep::Runner& runner, const sweep::Grid& grid,
                      std::vector<sim::SimResult>& rows) {
  const auto start = std::chrono::steady_clock::now();
  rows = runner.run(grid);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

TEST(SweepScaling, ParallelSpeedupOnMultiCoreHardware) {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have " << cores
                 << " (wall-clock scaling cannot manifest)";
  }
  const int parallel_threads = static_cast<int>(cores < 8 ? cores : 8u);
  const double required_speedup = cores >= 8 ? 3.0 : 1.8;

  const sweep::Grid grid = sixteen_point_grid();
  ASSERT_EQ(grid.size(), 16u);

  sweep::RunnerOptions serial_options;
  serial_options.threads = 1;
  sweep::RunnerOptions parallel_options;
  parallel_options.threads = parallel_threads;

  // Warm-up (page in code/data) with a truncated grid so timing is clean.
  {
    sweep::Grid warmup(busy_spec());
    (void)sweep::Runner(serial_options).run(warmup);
  }

  std::vector<sim::SimResult> serial_rows, parallel_rows;
  const double serial_s =
      seconds_to_run(sweep::Runner(serial_options), grid, serial_rows);
  const double parallel_s =
      seconds_to_run(sweep::Runner(parallel_options), grid, parallel_rows);

  const double speedup = serial_s / parallel_s;
  RecordProperty("serial_seconds", std::to_string(serial_s));
  RecordProperty("parallel_seconds", std::to_string(parallel_s));
  RecordProperty("speedup", std::to_string(speedup));
  std::printf("16-point grid: serial %.2fs, %d-thread %.2fs -> speedup %.2fx "
              "(require >= %.1fx on %u cores)\n",
              serial_s, parallel_threads, parallel_s, speedup, required_speedup,
              cores);

  EXPECT_GE(speedup, required_speedup)
      << "parallel sweep scaled worse than expected on " << cores << " cores";

  // Scaling must not cost determinism: parallel rows are bit-identical.
  ASSERT_EQ(serial_rows.size(), parallel_rows.size());
  for (std::size_t i = 0; i < serial_rows.size(); ++i) {
    EXPECT_EQ(sim::serialize_result(serial_rows[i]),
              sim::serialize_result(parallel_rows[i]));
  }
}

TEST(SweepScaling, TwoShardMergeSmoke) {
  // Runs everywhere (no core gate): the in-process half of the CI shard
  // smoke; the subprocess half goes through the benches and sweep_merge
  // (scripts/shard_merge_smoke.cmake).
  spec::SystemSpec s = busy_spec();
  s.sim.t_end = 0.1;
  sweep::Grid grid(s);
  grid.capacitance_axis({22e-6, 33e-6, 47e-6})
      .workload_seed_axis({1, 2});

  const sweep::Runner runner;
  std::ostringstream serial;
  sweep::write_csv(serial, grid, runner.run(grid));

  std::vector<std::string> shard_texts;
  for (std::size_t k = 0; k < 2; ++k) {
    const sweep::Shard shard{k, 2};
    std::ostringstream out;
    sweep::write_shard_csv(out, grid, shard, runner.run_shard(grid, shard));
    shard_texts.push_back(out.str());
  }
  std::ostringstream merged;
  sweep::merge_shard_csvs(shard_texts, merged);
  EXPECT_EQ(merged.str(), serial.str());
}

}  // namespace
