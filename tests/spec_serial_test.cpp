// Determinism lock-down for the canonical SystemSpec serialization
// (edc/spec/serialize): byte-identical round-trips for every spec variant,
// loud failures on unknown/future fields, run-to-run stable hashes pinned
// by a golden file, and the non_cacheable opt-out for opaque callbacks.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "edc/checkpoint/null_policy.h"
#include "edc/spec/fleet_spec.h"
#include "edc/spec/serialize.h"
#include "edc/spec/system_spec.h"
#include "edc/workloads/program.h"

namespace {

using namespace edc;

// One deterministically-constructed spec per serializable variant, with
// non-default values so every field actually round-trips. Do NOT change
// existing entries lightly: their hashes are pinned in
// tests/golden/spec_hashes.txt, and a change there means the cache format
// version must be bumped (see serialize.h versioning policy).
struct NamedSpec {
  std::string name;
  spec::SystemSpec spec;
};

spec::SystemSpec base_spec() {
  spec::SystemSpec s;
  s.source = spec::DcSource{3.1, 47.0};
  s.storage.capacitance = 33e-6;
  s.storage.initial_voltage = 0.5;
  s.storage.bleed = 56000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = 7;
  s.sim.t_end = 1.25;
  return s;
}

trace::Waveform fixture_wave() {
  return trace::Waveform(0.25, 0.5, {0.0, 1.5, 3.25, 2.125, 0.375});
}

std::vector<NamedSpec> covering_specs() {
  std::vector<NamedSpec> specs;

  {
    NamedSpec n{"sine-hibernus", base_spec()};
    n.spec.source = spec::SineSource{3.3, 4.5, 0.25, 51.0};
    checkpoint::InterruptPolicy::Config c;
    c.capacitance = 20e-6;
    c.margin = 1.75;
    c.restore_headroom = 0.35;
    n.spec.policy = spec::Hibernus{c};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"dc-nocheckpoint", base_spec()};
    n.spec.policy = spec::NoCheckpoint{};
    n.spec.snapshot_peripherals = true;
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"square-mementos-timer", base_spec()};
    n.spec.source = spec::SquareSource{3.2, 12.5, 0.375, 0.125, 49.0};
    checkpoint::MementosPolicy::Config c;
    c.mode = checkpoint::MementosPolicy::Mode::timer;
    c.v_threshold = 2.375;
    c.timer_interval = 7.5e-3;
    c.poll_stride = 3;
    n.spec.policy = spec::Mementos{c};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"wind-hibernuspp-default", base_spec()};
    spec::WindSource w;
    w.params.peak_voltage = 5.5;
    w.params.gust_period = 8.25;
    w.seed = 99;
    w.horizon = 25.0;
    n.spec.source = w;
    n.spec.policy = spec::HibernusPlusPlus{};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"kinetic-hibernuspp-set", base_spec()};
    spec::KineticSource k;
    k.params.impulse_peak = 4.25;
    k.params.resonance = 47.5;
    k.seed = 3;
    k.horizon = 12.0;
    n.spec.source = k;
    checkpoint::HibernusPlusPlusPolicy::PlusConfig c;
    c.measurement_error = 0.045;
    c.calibration_cycles = 35000;
    c.initial_margin = 1.25;
    c.restore_headroom = 0.4;
    c.seed = 1234;
    n.spec.policy = spec::HibernusPlusPlus{c};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"voltage-trace-quickrecall", base_spec()};
    spec::VoltageTraceSource t;
    t.wave = fixture_wave();
    t.series_resistance = 75.0;
    t.label = "bench \"A\",\ttrace";  // exercises string escaping
    n.spec.source = t;
    checkpoint::InterruptPolicy::Config c;
    c.margin = 2.5;
    n.spec.policy = spec::QuickRecall{c};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"constant-power-nvp", base_spec()};
    n.spec.source = spec::ConstantPower{2.5e-3};
    checkpoint::InterruptPolicy::Config c;
    c.v_hibernate = 2.25;
    c.v_restore = 2.75;
    n.spec.policy = spec::Nvp{c};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"markov-burst", base_spec()};
    n.spec.source = spec::MarkovPower{4e-3, 0.125, 0.25, 21, 30.0};
    taskmodel::BurstTaskPolicy::Config c;
    c.task_energy = 65e-6;
    c.capacitance = 150e-6;
    c.margin = 1.4;
    n.spec.policy = spec::BurstTask{c};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"rf-governed", base_spec()};
    spec::RfFieldPower r;
    r.params.field_power = 300e-6;
    r.params.burst_length = 1.5;
    r.params.burst_period = 5.5;
    r.params.jitter = 0.125;
    r.seed = 11;
    r.horizon = 45.0;
    n.spec.source = r;
    neutral::McuDfsGovernor::Config g;
    g.v_ref = 2.85;
    g.band = 0.125;
    g.period = 1.25e-3;
    g.frequencies = {1e6, 4e6, 16e6};
    n.spec.governor = g;
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"indoor-pv", base_spec()};
    spec::IndoorPvPower p;
    p.params.night_current_ua = 280.0;
    p.params.day_current_ua = 430.5;
    p.params.noise_ua = 3.5;
    p.seed = 5;
    p.days = 2;
    n.spec.source = p;
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"solar-full-wave", base_spec()};
    spec::SolarPower p;
    p.params.panel_peak = 65e-3;
    p.params.cloud_depth = 0.625;
    p.seed = 8;
    p.days = 3;
    n.spec.source = p;
    n.spec.rectifier.kind = circuit::RectifierKind::full_wave;
    n.spec.rectifier.diode_drop = 0.3;
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"power-trace-tuned-mcu", base_spec()};
    spec::PowerTraceSource p;
    p.wave = fixture_wave();
    p.label = "office_pv.csv";
    n.spec.source = p;
    n.spec.harvester.efficiency = 0.85;
    n.spec.harvester.v_ceiling = 4.75;
    n.spec.harvester.i_max = 0.25;
    n.spec.harvester.v_floor = 0.35;
    n.spec.mcu.power.v_min = 1.9;
    n.spec.mcu.power.i_base = 110e-6;
    n.spec.mcu.power.boot_cycles = 2500;
    n.spec.mcu.power.register_file_bytes = 128;
    n.spec.mcu.initial_frequency = 16e6;
    n.spec.mcu.memory_mode = mcu::MemoryMode::unified_fram;
    n.spec.mcu.peripheral_file_bytes = 96;
    n.spec.mcu.peripheral_reinit_cycles = 15000;
    n.spec.sim.dt = 5e-6;
    n.spec.sim.node_substeps = 8;
    n.spec.sim.stop_on_completion = false;
    n.spec.sim.probe_interval = 1e-3;
    n.spec.sim.quiescent_fast_path = false;
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"unspecified-source", base_spec()};
    n.spec.source = std::monostate{};
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"coupled-rf-windowed", base_spec()};
    spec::CoupledRfPower c;
    c.field.field_power = 1.5e-3;
    c.field.burst_length = 0.75;
    c.field.burst_period = 2.25;
    c.field.jitter = 0.1875;
    c.seed = 17;
    c.horizon = 15.0;
    c.gain = 0.375;
    c.window_period = 3.0;
    c.window_duty = 0.25;
    c.window_phase = 1.5;
    n.spec.source = c;
    specs.push_back(std::move(n));
  }
  {
    NamedSpec n{"sine-adaptive-buffer", base_spec()};
    n.spec.source = spec::SineSource{3.3, 4.5, 0.25, 51.0};
    n.spec.workload.kind = "sense";
    taskmodel::AdaptiveBufferPolicy::Config c;
    c.task_energy = 35e-6;
    c.capacitance = 180e-6;
    c.margin = 1.5;
    c.ewma_alpha = 0.375;
    c.rate_reference = 2.5e-4;
    c.min_buffer = 2;
    c.max_buffer = 6;
    n.spec.policy = spec::AdaptiveBuffer{c};
    specs.push_back(std::move(n));
  }

  return specs;
}

// Fleet counterparts: hashes pinned in tests/golden/fleet_hashes.txt under
// the same versioning contract (the fleet container shares
// kSpecFormatVersion with the node body).
struct NamedFleet {
  std::string name;
  spec::FleetSpec fleet;
};

std::vector<NamedFleet> covering_fleets() {
  std::vector<NamedFleet> fleets;
  fleets.push_back({"rf-fleet-1", spec::example_rf_fleet(1)});
  fleets.push_back({"rf-fleet-3", spec::example_rf_fleet(3)});
  {
    NamedFleet n{"uncoupled-pair", {}};
    spec::SystemSpec a = base_spec();
    a.source = spec::SineSource{3.3, 4.5, 0.25, 51.0};
    spec::SystemSpec b = base_spec();
    b.source = spec::ConstantPower{2.5e-3};
    b.storage.capacitance = 47e-6;
    n.fleet.nodes = {a, b};
    fleets.push_back(std::move(n));
  }
  return fleets;
}

TEST(SpecSerial, RoundTripIsByteIdentical) {
  for (const NamedSpec& named : covering_specs()) {
    SCOPED_TRACE(named.name);
    const std::string text = spec::serialize(named.spec);
    const spec::SystemSpec reparsed = spec::parse_spec(text);
    EXPECT_EQ(text, spec::serialize(reparsed));
    EXPECT_EQ(spec::spec_hash(named.spec), spec::spec_hash(reparsed));
  }
}

TEST(SpecSerial, SerializationIsDeterministicWithinRun) {
  for (const NamedSpec& named : covering_specs()) {
    SCOPED_TRACE(named.name);
    EXPECT_EQ(spec::serialize(named.spec), spec::serialize(named.spec));
  }
}

TEST(SpecSerial, EveryCoveringSpecHashesDistinctly) {
  std::map<std::uint64_t, std::string> seen;
  for (const NamedSpec& named : covering_specs()) {
    const std::uint64_t hash = spec::spec_hash(named.spec);
    const auto [it, inserted] = seen.emplace(hash, named.name);
    EXPECT_TRUE(inserted) << named.name << " collides with " << it->second;
  }
}

TEST(SpecSerial, MutatingAnyKnobChangesTheHash) {
  const spec::SystemSpec base = base_spec();
  const std::uint64_t base_hash = spec::spec_hash(base);

  const std::vector<std::pair<std::string, std::function<void(spec::SystemSpec&)>>>
      mutations = {
          {"storage.capacitance", [](auto& s) { s.storage.capacitance *= 2; }},
          {"storage.bleed", [](auto& s) { s.storage.bleed += 1000; }},
          {"workload.seed", [](auto& s) { s.workload.seed += 1; }},
          {"workload.kind", [](auto& s) { s.workload.kind = "crc"; }},
          {"source voltage", [](auto& s) { s.source = spec::DcSource{3.2, 47.0}; }},
          {"policy margin",
           [](auto& s) {
             checkpoint::InterruptPolicy::Config c;
             c.margin = 9.0;
             s.policy = spec::Hibernus{c};
           }},
          {"mcu.power.i_base", [](auto& s) { s.mcu.power.i_base *= 1.5; }},
          {"sim.dt", [](auto& s) { s.sim.dt *= 0.5; }},
          {"sim.t_end", [](auto& s) { s.sim.t_end += 1; }},
          {"sim.quiescent_fast_path",
           [](auto& s) { s.sim.quiescent_fast_path = false; }},
          {"snapshot_peripherals", [](auto& s) { s.snapshot_peripherals = true; }},
      };
  for (const auto& [what, mutate] : mutations) {
    SCOPED_TRACE(what);
    spec::SystemSpec mutated = base;
    mutate(mutated);
    EXPECT_NE(spec::spec_hash(mutated), base_hash);
  }
}

TEST(SpecSerial, UnknownFieldFailsLoudly) {
  const std::string text = spec::serialize(base_spec());

  // An extra (future) field anywhere must be rejected, not skipped.
  const std::string marker = "  capacitance ";
  const std::size_t at = text.find(marker);
  ASSERT_NE(at, std::string::npos);
  std::string with_unknown = text;
  with_unknown.insert(at, "  esr_ohms 0.125\n");
  EXPECT_THROW((void)spec::parse_spec(with_unknown), spec::SpecFormatError);

  // Trailing garbage after a complete spec.
  EXPECT_THROW((void)spec::parse_spec(text + "extra 1\n"), spec::SpecFormatError);

  // Truncation (drop the last line).
  const std::size_t last_newline = text.rfind('\n', text.size() - 2);
  ASSERT_NE(last_newline, std::string::npos);
  EXPECT_THROW((void)spec::parse_spec(text.substr(0, last_newline + 1)),
               spec::SpecFormatError);

  // Missing trailing newline.
  EXPECT_THROW((void)spec::parse_spec(text.substr(0, text.size() - 1)),
               spec::SpecFormatError);

  // Future format version.
  std::string future = text;
  const std::string version_line =
      "edc.SystemSpec v" + std::to_string(spec::kSpecFormatVersion);
  ASSERT_EQ(future.rfind(version_line, 0), 0u);
  future.replace(0, version_line.size(), "edc.SystemSpec v999");
  EXPECT_THROW((void)spec::parse_spec(future), spec::SpecFormatError);

  // Empty input.
  EXPECT_THROW((void)spec::parse_spec(""), spec::SpecFormatError);
}

TEST(SpecSerial, MalformedValuesFailLoudly) {
  const std::string text = spec::serialize(base_spec());
  const std::string needle = "capacitance 3.3e-05";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos) << text;

  std::string bad = text;
  bad.replace(at, needle.size(), "capacitance 3.3e-05x");
  EXPECT_THROW((void)spec::parse_spec(bad), spec::SpecFormatError);

  bad = text;
  bad.replace(at, needle.size(), "capacitance");
  EXPECT_THROW((void)spec::parse_spec(bad), spec::SpecFormatError);
}

TEST(SpecSerial, OpaqueCallbacksAreNonCacheable) {
  {
    spec::SystemSpec s = base_spec();
    s.source = spec::CustomVoltageSource{[] {
      return std::make_unique<trace::SineVoltageSource>(3.3, 2.0);
    }};
    EXPECT_FALSE(spec::is_cacheable(s));
    EXPECT_NE(spec::non_cacheable_reason(s).find("source"), std::string::npos);
    EXPECT_THROW((void)spec::serialize(s), spec::SpecFormatError);
    EXPECT_THROW((void)spec::spec_hash(s), spec::SpecFormatError);
  }
  {
    spec::SystemSpec s = base_spec();
    s.source = spec::CustomPowerSource{[] {
      return std::make_unique<trace::ConstantPowerSource>(1e-3);
    }};
    EXPECT_FALSE(spec::is_cacheable(s));
    EXPECT_THROW((void)spec::serialize(s), spec::SpecFormatError);
  }
  {
    spec::SystemSpec s = base_spec();
    s.workload.factory = [] { return workloads::make_program("fft-small", 1); };
    EXPECT_FALSE(spec::is_cacheable(s));
    EXPECT_NE(spec::non_cacheable_reason(s).find("workload"), std::string::npos);
    EXPECT_THROW((void)spec::serialize(s), spec::SpecFormatError);
  }
  {
    spec::SystemSpec s = base_spec();
    s.policy = spec::CustomPolicy{
        [](const std::function<Farads()>&, Farads) {
          return std::unique_ptr<checkpoint::PolicyBase>(
              std::make_unique<checkpoint::NullPolicy>());
        }};
    EXPECT_FALSE(spec::is_cacheable(s));
    EXPECT_NE(spec::non_cacheable_reason(s).find("policy"), std::string::npos);
    EXPECT_THROW((void)spec::serialize(s), spec::SpecFormatError);
  }
  {
    spec::SystemSpec s = base_spec();
    checkpoint::HibernusPlusPlusPolicy::PlusConfig c;
    c.capacitance_probe = [] { return 10e-6; };
    s.policy = spec::HibernusPlusPlus{c};
    EXPECT_FALSE(spec::is_cacheable(s));
    EXPECT_NE(spec::non_cacheable_reason(s).find("probe"), std::string::npos);
    EXPECT_THROW((void)spec::serialize(s), spec::SpecFormatError);
  }
  // All covering specs are cacheable by construction.
  for (const NamedSpec& named : covering_specs()) {
    EXPECT_TRUE(spec::is_cacheable(named.spec)) << named.name;
    EXPECT_EQ(spec::non_cacheable_reason(named.spec), "") << named.name;
  }
}

// ---------------------------------------------------- golden registry -----
// Every golden file under tests/golden/ is registered here with the
// function that computes its expected content. EDC_UPDATE_GOLDEN=1
// regenerates *all* of them in one pass; the checking run compares all of
// them and fails once, listing every stale file — so an intentional format
// change is always a single regenerate-and-commit, never a
// fix-one-discover-the-next loop. A diff in any of these files means
// every existing cache entry is invalidated: bump spec::kSpecFormatVersion
// alongside the regeneration (see serialize.h versioning policy).

std::string hash_hex(std::uint64_t hash) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(hash));
  return hex;
}

struct GoldenFile {
  std::string name;  // file name under tests/golden/
  std::string what;  // one-line description for the file header
  std::map<std::string, std::string> (*compute)();
};

const std::vector<GoldenFile>& golden_registry() {
  static const std::vector<GoldenFile> registry = {
      {"spec_hashes.txt", "covering SystemSpecs (spec::spec_hash)",
       [] {
         std::map<std::string, std::string> entries;
         for (const NamedSpec& named : covering_specs()) {
           entries[named.name] = hash_hex(spec::spec_hash(named.spec));
         }
         return entries;
       }},
      {"fleet_hashes.txt", "covering FleetSpecs (spec::fleet_hash)",
       [] {
         std::map<std::string, std::string> entries;
         for (const NamedFleet& named : covering_fleets()) {
           entries[named.name] = hash_hex(spec::fleet_hash(named.fleet));
         }
         return entries;
       }},
  };
  return registry;
}

// The golden files pin the canonical hashes across runs, machines and
// compilers. Regenerate with EDC_UPDATE_GOLDEN=1 after an *intentional*
// format change — and bump spec::kSpecFormatVersion when you do.
TEST(SpecSerial, GoldenHashesAreStableAcrossRuns) {
  const std::string golden_dir = std::string(EDC_TESTS_DIR) + "/golden/";

  if (std::getenv("EDC_UPDATE_GOLDEN") != nullptr) {
    // One pass regenerates every registered golden file.
    for (const GoldenFile& file : golden_registry()) {
      const std::string path = golden_dir + file.name;
      std::ofstream out(path, std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << "# FNV-1a-64 of the canonical serialization (spec format v"
          << spec::kSpecFormatVersion << ") of tests/spec_serial_test.cpp's\n"
          << "# " << file.what << ". EDC_UPDATE_GOLDEN=1 regenerates every\n"
          << "# golden file in one pass; a diff here invalidates every cache\n"
          << "# entry, so bump spec::kSpecFormatVersion alongside it.\n";
      for (const auto& [name, hex] : file.compute()) out << name << ' ' << hex << '\n';
    }
    GTEST_SKIP() << "golden files regenerated under " << golden_dir;
  }

  std::vector<std::string> stale;
  for (const GoldenFile& file : golden_registry()) {
    SCOPED_TRACE(file.name);
    const std::string path = golden_dir + file.name;
    std::ifstream in(path);
    if (!in.good()) {
      ADD_FAILURE() << "missing golden file " << path;
      stale.push_back(file.name + " (missing)");
      continue;
    }
    std::map<std::string, std::string> golden;
    std::string line;
    bool malformed = false;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string name, hex;
      if (!(fields >> name >> hex)) {
        ADD_FAILURE() << "malformed golden line in " << file.name << ": " << line;
        malformed = true;
        break;
      }
      golden[name] = hex;
    }
    if (malformed) {
      stale.push_back(file.name + " (malformed)");
      continue;
    }
    const std::map<std::string, std::string> actual = file.compute();
    EXPECT_EQ(actual, golden) << "canonical hashes drifted from tests/golden/"
                              << file.name;
    if (actual != golden) stale.push_back(file.name);
  }

  EXPECT_TRUE(stale.empty())
      << "stale golden files: " << [&] {
           std::string joined;
           for (const std::string& name : stale) {
             if (!joined.empty()) joined += ", ";
             joined += name;
           }
           return joined;
         }() << " — if the format change is intentional, bump "
                "spec::kSpecFormatVersion and regenerate ALL golden files in "
                "one pass with EDC_UPDATE_GOLDEN=1";
}

// ------------------------------------------------- fleet hash coverage -----

TEST(SpecSerial, FleetCoveringSpecsRoundTripAndHashDistinctly) {
  std::map<std::uint64_t, std::string> seen;
  for (const NamedFleet& named : covering_fleets()) {
    SCOPED_TRACE(named.name);
    const std::string text = spec::serialize_fleet(named.fleet);
    EXPECT_EQ(spec::serialize_fleet(spec::parse_fleet(text)), text);
    const std::uint64_t hash = spec::fleet_hash(named.fleet);
    const auto [it, inserted] = seen.emplace(hash, named.name);
    EXPECT_TRUE(inserted) << named.name << " collides with " << it->second;
  }
}

TEST(SpecSerial, FleetHashIsNotTheNodeHash) {
  // A 1-node uncoupled fleet must not collide with its node's own hash:
  // the container header is part of the content address.
  spec::FleetSpec fleet;
  fleet.nodes = {base_spec()};
  EXPECT_NE(spec::fleet_hash(fleet), spec::spec_hash(base_spec()));
}

}  // namespace
