// Unit tests for the analog supply substrate (edc/circuit).
#include <cmath>

#include <gtest/gtest.h>

#include "edc/circuit/comparator.h"
#include "edc/circuit/converter.h"
#include "edc/circuit/rectifier.h"
#include "edc/circuit/supply_node.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/voltage_sources.h"

namespace edc::circuit {
namespace {

// ---------------------------------------------------------- SupplyNode -----

TEST(SupplyNode, RcDischargeMatchesAnalytic) {
  // V(t) = V0 * exp(-t/RC) for a pure RC discharge.
  const Farads c = 100e-6;
  const Ohms r = 1000.0;
  SupplyNode node(c, 5.0);
  NullDriver none;
  ResistiveLoad load(r);
  const Seconds dt = 1e-5;
  Seconds t = 0.0;
  while (t < 0.1) {
    node.step(t, dt, none, load, 2);
    t += dt;
  }
  const Volts expected = 5.0 * std::exp(-0.1 / (r * c));
  EXPECT_NEAR(node.voltage(), expected, 0.01);
}

TEST(SupplyNode, ChargeTowardsRectifiedSource) {
  // DC source through a half-wave rectifier charges the node to
  // (V_oc - V_diode) asymptotically.
  trace::SineVoltageSource source(0.0, 0.0, 3.3, 100.0);  // constant 3.3 V
  RectifiedSourceDriver driver(source, RectifierParams{RectifierKind::half_wave, 0.3});
  SupplyNode node(10e-6, 0.0);
  ConstantCurrentLoad load(0.0);
  Seconds t = 0.0;
  while (t < 0.05) {
    node.step(t, 1e-5, driver, load, 2);
    t += 1e-5;
  }
  EXPECT_NEAR(node.voltage(), 3.0, 0.01);
}

TEST(SupplyNode, EnergyLedgerBalances) {
  trace::SineVoltageSource source(3.3, 5.0, 0.0, 50.0);
  RectifiedSourceDriver driver(source, RectifierParams{});
  SupplyNode node(47e-6, 0.0);
  ResistiveLoad load(5000.0);
  const Joules stored0 = node.stored_energy();
  Joules harvested = 0.0, consumed = 0.0;
  Seconds t = 0.0;
  while (t < 1.0) {
    const auto step = node.step(t, 1e-5, driver, load, 4);
    harvested += step.harvested;
    consumed += step.consumed;
    t += 1e-5;
  }
  const Joules delta = node.stored_energy() - stored0;
  EXPECT_NEAR(harvested - consumed, delta, 1e-9 + 1e-6 * harvested);
}

TEST(SupplyNode, VoltageNeverNegative) {
  SupplyNode node(1e-6, 0.5);
  NullDriver none;
  ConstantCurrentLoad load(10e-3);  // heavy drain
  Seconds t = 0.0;
  while (t < 0.01) {
    node.step(t, 1e-5, none, load, 2);
    t += 1e-5;
  }
  EXPECT_GE(node.voltage(), 0.0);
}

TEST(SupplyNode, RejectsBadArguments) {
  EXPECT_THROW(SupplyNode(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(SupplyNode(-1e-6, 1.0), std::invalid_argument);
  EXPECT_THROW(SupplyNode(1e-6, -0.1), std::invalid_argument);
  SupplyNode node(1e-6, 0.0);
  NullDriver none;
  ConstantCurrentLoad load(0.0);
  EXPECT_THROW(node.step(0.0, -1.0, none, load), std::invalid_argument);
}

// ----------------------------------------------------------- Rectifier -----

TEST(Rectifier, HalfWaveBlocksNegativeHalf) {
  trace::SineVoltageSource source(3.0, 1.0, 0.0, 100.0);
  RectifiedSourceDriver driver(source, RectifierParams{RectifierKind::half_wave, 0.25});
  EXPECT_GT(driver.current_into(0.0, 0.25), 0.0);   // positive peak
  EXPECT_DOUBLE_EQ(driver.current_into(0.0, 0.75), 0.0);  // negative peak
}

TEST(Rectifier, FullWaveConductsBothHalves) {
  trace::SineVoltageSource source(3.0, 1.0, 0.0, 100.0);
  RectifiedSourceDriver driver(source, RectifierParams{RectifierKind::full_wave, 0.25});
  EXPECT_GT(driver.current_into(0.0, 0.25), 0.0);
  EXPECT_GT(driver.current_into(0.0, 0.75), 0.0);
}

TEST(Rectifier, DiodeDropReducesOutput) {
  trace::SineVoltageSource source(3.0, 1.0, 0.0, 100.0);
  RectifiedSourceDriver drop0(source, RectifierParams{RectifierKind::half_wave, 0.0});
  RectifiedSourceDriver drop5(source, RectifierParams{RectifierKind::half_wave, 0.5});
  EXPECT_GT(drop0.rectified_open_circuit(0.25), drop5.rectified_open_circuit(0.25));
  EXPECT_NEAR(drop0.rectified_open_circuit(0.25) - drop5.rectified_open_circuit(0.25),
              0.5, 1e-9);
}

TEST(Rectifier, NoReverseCurrentIntoHighNode) {
  trace::SineVoltageSource source(3.0, 1.0, 0.0, 100.0);
  RectifiedSourceDriver driver(source, RectifierParams{});
  EXPECT_DOUBLE_EQ(driver.current_into(5.0, 0.25), 0.0);
}

// ----------------------------------------------------- HarvesterDriver -----

TEST(HarvesterDriver, DeliversEfficiencyScaledPower) {
  trace::ConstantPowerSource source(1e-3);
  HarvesterPowerDriver::Params params;
  params.efficiency = 0.8;
  HarvesterPowerDriver driver(source, params);
  const Volts v = 2.0;
  EXPECT_NEAR(driver.current_into(v, 0.0) * v, 0.8e-3, 1e-9);
}

TEST(HarvesterDriver, StopsAtCeiling) {
  trace::ConstantPowerSource source(1e-3);
  HarvesterPowerDriver::Params params;
  params.v_ceiling = 3.0;
  HarvesterPowerDriver driver(source, params);
  EXPECT_DOUBLE_EQ(driver.current_into(3.1, 0.0), 0.0);
}

TEST(HarvesterDriver, CurrentComplianceAtLowVoltage) {
  trace::ConstantPowerSource source(1.0);  // 1 W into a dead-short node
  HarvesterPowerDriver::Params params;
  params.i_max = 0.1;
  HarvesterPowerDriver driver(source, params);
  EXPECT_DOUBLE_EQ(driver.current_into(0.0, 0.0), 0.1);
}

// ----------------------------------------------------------- Comparator ----

TEST(Comparator, FallingEdgeDetectedWithInterpolatedTime) {
  Comparator comparator("VH", 2.0, 0.0);
  comparator.reset(3.0);
  EXPECT_TRUE(comparator.output());
  const auto event = comparator.update(2.5, 0.0, 1.5, 1.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->edge, Edge::falling);
  EXPECT_NEAR(event->time, 0.5, 1e-9);
}

TEST(Comparator, RisingEdge) {
  Comparator comparator("VR", 2.5, 0.0);
  comparator.reset(1.0);
  const auto event = comparator.update(2.0, 0.0, 3.0, 1.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->edge, Edge::rising);
  EXPECT_NEAR(event->time, 0.5, 1e-9);
}

TEST(Comparator, HysteresisPreventsChatter) {
  Comparator comparator("VH", 2.0, 0.2);
  comparator.reset(3.0);
  // Dips to 1.95 (above the falling trip of 1.9): no event.
  EXPECT_FALSE(comparator.update(2.05, 0.0, 1.95, 1.0).has_value());
  // Falls through 1.9: falling event.
  ASSERT_TRUE(comparator.update(1.95, 1.0, 1.85, 2.0).has_value());
  // Recovers to 2.05 (below rising trip 2.1): no event.
  EXPECT_FALSE(comparator.update(1.85, 2.0, 2.05, 3.0).has_value());
  // Rises through 2.1: rising event.
  EXPECT_TRUE(comparator.update(2.05, 3.0, 2.15, 4.0).has_value());
}

TEST(Comparator, NoEventWithoutCrossing) {
  Comparator comparator("VH", 2.0, 0.0);
  comparator.reset(3.0);
  EXPECT_FALSE(comparator.update(3.0, 0.0, 2.5, 1.0).has_value());
  EXPECT_FALSE(comparator.update(2.5, 1.0, 2.1, 2.0).has_value());
}

TEST(ComparatorBank, EventsSortedByTime) {
  ComparatorBank bank;
  bank.add(Comparator("A", 2.8, 0.0));
  bank.add(Comparator("B", 2.2, 0.0));
  bank.reset(3.0);
  // One step falls through both: B crosses later than A in time? No: falling
  // from 3.0 to 2.0, A (2.8) crosses first in time.
  const auto events = bank.update(3.0, 0.0, 2.0, 1.0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "A");
  EXPECT_EQ(events[1].name, "B");
  EXPECT_LT(events[0].time, events[1].time);
}

// ------------------------------------------------------------ Converter ----

TEST(Converter, EfficiencyRisesWithLoad) {
  Converter converter(0.9, 1e-3);
  EXPECT_LT(converter.efficiency(1e-4), converter.efficiency(1e-2));
  EXPECT_NEAR(converter.efficiency(1.0), 0.9, 0.01);
  EXPECT_DOUBLE_EQ(converter.efficiency(0.0), 0.0);
}

TEST(EnergyBuffer, ChargeDischargeRoundTrip) {
  EnergyBuffer buffer(10.0, 5.0, 0.9);
  const Joules taken = buffer.charge(2.0);
  EXPECT_DOUBLE_EQ(taken, 2.0);
  EXPECT_NEAR(buffer.level(), 5.0 + 1.8, 1e-12);
  const Joules got = buffer.discharge(100.0);
  EXPECT_NEAR(got, 6.8, 1e-12);
  EXPECT_TRUE(buffer.empty());
}

TEST(EnergyBuffer, ClampsAtCapacity) {
  EnergyBuffer buffer(10.0, 9.5, 1.0);
  const Joules taken = buffer.charge(5.0);
  EXPECT_NEAR(taken, 0.5, 1e-12);
  EXPECT_NEAR(buffer.level(), 10.0, 1e-12);
}

}  // namespace
}  // namespace edc::circuit
