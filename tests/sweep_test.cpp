// Tests for the value-semantic spec layer (edc/spec) and the parallel sweep
// engine (edc/sweep): grid enumeration, parallel/serial bit-identity,
// per-point RNG seed isolation, and sweep reporting.
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/core/system.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/report.h"
#include "edc/sweep/runner.h"

namespace edc::sweep {
namespace {

/// A small stochastic scenario: Markov on/off RF-like supply driving a CRC.
/// Stochastic on purpose — parallel/serial identity must hold through the
/// seeded RNG paths, not just closed-form sources.
spec::SystemSpec markov_base() {
  spec::SystemSpec base;
  base.source = spec::MarkovPower{6e-3, 0.05, 0.05, 7, 5.0};
  base.storage.capacitance = 22e-6;
  base.storage.bleed = 10000.0;
  base.workload.kind = "crc";
  checkpoint::InterruptPolicy::Config config;
  config.restore_headroom = 0.3;
  base.policy = spec::Hibernus{config};
  base.sim.t_end = 3.0;
  return base;
}

Grid markov_grid() {
  Grid grid(markov_base());
  grid.capacitance_axis({22e-6, 47e-6})
      .axis("source seed", {{"7",
                             [](spec::SystemSpec& s) {
                               std::get<spec::MarkovPower>(s.source).seed = 7;
                             }},
                            {"8",
                             [](spec::SystemSpec& s) {
                               std::get<spec::MarkovPower>(s.source).seed = 8;
                             }},
                            {"9", [](spec::SystemSpec& s) {
                               std::get<spec::MarkovPower>(s.source).seed = 9;
                             }}});
  return grid;
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b,
                      std::size_t row) {
  EXPECT_EQ(a.end_time, b.end_time) << "row " << row;
  EXPECT_EQ(a.harvested, b.harvested) << "row " << row;
  EXPECT_EQ(a.consumed, b.consumed) << "row " << row;
  EXPECT_EQ(a.dissipated, b.dissipated) << "row " << row;
  EXPECT_EQ(a.stored_initial, b.stored_initial) << "row " << row;
  EXPECT_EQ(a.stored_final, b.stored_final) << "row " << row;
  EXPECT_EQ(a.transitions.size(), b.transitions.size()) << "row " << row;
  for (std::size_t i = 0; i < std::min(a.transitions.size(), b.transitions.size());
       ++i) {
    EXPECT_EQ(a.transitions[i].time, b.transitions[i].time) << "row " << row;
    EXPECT_EQ(a.transitions[i].to, b.transitions[i].to) << "row " << row;
  }
  const auto& ma = a.mcu;
  const auto& mb = b.mcu;
  EXPECT_EQ(ma.completed, mb.completed) << "row " << row;
  EXPECT_EQ(ma.completion_time, mb.completion_time) << "row " << row;
  EXPECT_EQ(ma.boots, mb.boots) << "row " << row;
  EXPECT_EQ(ma.brownouts, mb.brownouts) << "row " << row;
  EXPECT_EQ(ma.saves_started, mb.saves_started) << "row " << row;
  EXPECT_EQ(ma.saves_completed, mb.saves_completed) << "row " << row;
  EXPECT_EQ(ma.restores, mb.restores) << "row " << row;
  EXPECT_EQ(ma.cycles_active, mb.cycles_active) << "row " << row;
  EXPECT_EQ(ma.forward_cycles, mb.forward_cycles) << "row " << row;
  EXPECT_EQ(ma.reexecuted_cycles, mb.reexecuted_cycles) << "row " << row;
  EXPECT_EQ(ma.poll_cycles, mb.poll_cycles) << "row " << row;
  EXPECT_EQ(ma.energy_total(), mb.energy_total()) << "row " << row;
  EXPECT_EQ(ma.time_off, mb.time_off) << "row " << row;
  EXPECT_EQ(ma.time_active, mb.time_active) << "row " << row;
}

// ------------------------------------------------------------- Spec --------

TEST(SystemSpec, IsCopyableAndRepeatable) {
  const spec::SystemSpec original = markov_base();
  const spec::SystemSpec copy = original;  // value semantics

  auto system_a = spec::instantiate(copy);
  auto system_b = spec::instantiate(copy);  // same spec, fresh components
  const auto result_a = system_a.run();
  const auto result_b = system_b.run();
  expect_identical(result_a, result_b, 0);
}

TEST(SystemSpec, RequiresSource) {
  spec::SystemSpec spec;
  spec.workload.kind = "crc";
  EXPECT_THROW(spec::instantiate(spec), std::invalid_argument);
}

TEST(SystemSpec, RequiresWorkload) {
  spec::SystemSpec spec;
  spec.source = spec::SineSource{};
  EXPECT_THROW(spec::instantiate(spec), std::invalid_argument);
}

TEST(SystemSpec, BuilderRoundTripsThroughSpec) {
  core::SystemBuilder builder;
  builder.sine_source(3.3, 2.0).capacitance(47e-6).workload("crc", 3);
  auto from_builder = builder.build();
  auto from_spec = spec::instantiate(builder.to_spec());
  const auto result_a = from_builder.run(5.0);
  const auto result_b = from_spec.run(5.0);
  expect_identical(result_a, result_b, 0);
}

// ------------------------------------------------------------- Grid --------

TEST(Grid, EnumeratesCartesianProductRowMajor) {
  Grid grid = markov_grid();
  ASSERT_EQ(grid.size(), 6u);  // 2 capacitances x 3 seeds
  ASSERT_EQ(grid.axes().size(), 2u);

  // Row-major: the first axis (capacitance) varies slowest.
  const Farads expected_c[] = {22e-6, 22e-6, 22e-6, 47e-6, 47e-6, 47e-6};
  const std::uint64_t expected_seed[] = {7, 8, 9, 7, 8, 9};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point point = grid.point(i);
    EXPECT_EQ(point.index, i);
    ASSERT_EQ(point.labels.size(), 2u);
    EXPECT_DOUBLE_EQ(point.spec.storage.capacitance, expected_c[i]) << i;
    EXPECT_EQ(std::get<spec::MarkovPower>(point.spec.source).seed,
              expected_seed[i])
        << i;
  }
  EXPECT_EQ(grid.point(0).labels[1], "7");
  EXPECT_EQ(grid.point(5).labels[1], "9");
  EXPECT_THROW(grid.point(6), std::invalid_argument);
}

TEST(Grid, BaseSpecAloneIsOnePoint) {
  Grid grid(markov_base());
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid.point(0).labels.empty());
}

TEST(Grid, RejectsEmptyAxis) {
  Grid grid(markov_base());
  EXPECT_THROW(grid.axis("empty", {}), std::invalid_argument);
}

// ------------------------------------------------------------- Runner ------

TEST(Runner, ParallelMatchesSerialBitExactly) {
  const Grid grid = markov_grid();

  const Runner serial(RunnerOptions{.threads = 1});
  const Runner parallel(RunnerOptions{.threads = 4});
  EXPECT_EQ(parallel.thread_count(grid.size()), 4);

  const auto serial_rows = serial.run(grid);
  const auto parallel_rows = parallel.run(grid);

  ASSERT_EQ(serial_rows.size(), grid.size());
  ASSERT_EQ(parallel_rows.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_identical(serial_rows[i], parallel_rows[i], i);
  }
}

TEST(Runner, ParallelIsDeterministicAcrossRepeats) {
  const Grid grid = markov_grid();
  const Runner parallel(RunnerOptions{.threads = 4});
  const auto first = parallel.run(grid);
  const auto second = parallel.run(grid);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_identical(first[i], second[i], i);
  }
}

TEST(Runner, PointSeedsAreIsolated) {
  // Three different source seeds at fixed capacitance must produce three
  // genuinely different harvest histories (each point owns its RNG: seeds
  // are consumed at source construction inside the point's instantiation,
  // never shared across worker threads).
  const Grid grid = markov_grid();
  const Runner parallel(RunnerOptions{.threads = 4});
  const auto rows = parallel.run(grid);
  EXPECT_NE(rows[0].harvested, rows[1].harvested);
  EXPECT_NE(rows[1].harvested, rows[2].harvested);
  EXPECT_NE(rows[0].harvested, rows[2].harvested);
}

TEST(Runner, MapExposesLiveSystem) {
  Grid grid(markov_base());
  grid.axis("policy", {{"hibernus",
                        [](spec::SystemSpec& s) {
                          s.policy = spec::Hibernus{};
                        }},
                       {"none", [](spec::SystemSpec& s) {
                          s.policy = spec::NoCheckpoint{};
                        }}});
  const Runner runner(RunnerOptions{.threads = 2});
  const auto names = runner.map<std::string>(
      grid, [](const Point&, core::EnergyDrivenSystem& system,
               const sim::SimResult&) { return system.policy_name(); });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "hibernus");
  EXPECT_EQ(names[1], "none");
}

TEST(Runner, WorkerExceptionsPropagate) {
  Grid grid(markov_base());
  grid.axis("boom", {{"ok", [](spec::SystemSpec&) {}},
                     {"bad", [](spec::SystemSpec& s) {
                        s.storage.capacitance = -1.0;  // instantiate() throws
                      }}});
  const Runner parallel(RunnerOptions{.threads = 2});
  EXPECT_THROW(parallel.run(grid), std::invalid_argument);
}

// ------------------------------------------------------------- Report ------

TEST(Report, SummaryTableAndCsvCoverEveryPoint) {
  const Grid grid = markov_grid();
  const Runner runner(RunnerOptions{.threads = 2});
  const auto rows = runner.run(grid);

  const auto header = summary_header(grid);
  ASSERT_GE(header.size(), 2u);
  EXPECT_EQ(header[0], "capacitance");
  EXPECT_EQ(header[1], "source seed");

  std::ostringstream table_out;
  summary_table(grid, rows).print(table_out);
  EXPECT_NE(table_out.str().find("22.0 uF"), std::string::npos);

  std::ostringstream csv;
  write_csv(csv, grid, rows);
  std::size_t lines = 0;
  for (char c : csv.str()) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, grid.size() + 1);  // header + one row per point
}

}  // namespace
}  // namespace edc::sweep
