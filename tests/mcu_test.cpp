// Unit tests for the MCU model (edc/mcu): power model, NVM commit
// semantics, boot/brown-out behaviour, snapshot mechanics and accounting.
#include <gtest/gtest.h>

#include "edc/checkpoint/null_policy.h"
#include "edc/checkpoint/policy_base.h"
#include "edc/mcu/mcu.h"
#include "edc/mcu/nvm.h"
#include "edc/mcu/power_model.h"
#include "edc/workloads/program.h"

namespace edc::mcu {
namespace {

// ----------------------------------------------------------- PowerModel ----

TEST(PowerModel, ActiveCurrentMonotoneInFrequency) {
  McuPowerModel power;
  EXPECT_LT(power.active_current(1e6, MemoryMode::sram_execution),
            power.active_current(8e6, MemoryMode::sram_execution));
}

TEST(PowerModel, FramExecutionCostsMoreThanSram) {
  McuPowerModel power;
  for (Hertz f : {1e6, 8e6, 24e6}) {
    EXPECT_GT(power.active_current(f, MemoryMode::unified_fram),
              power.active_current(f, MemoryMode::sram_execution));
    EXPECT_GT(power.active_current(f, MemoryMode::nv_processor),
              power.active_current(f, MemoryMode::sram_execution));
    EXPECT_LT(power.active_current(f, MemoryMode::nv_processor),
              power.active_current(f, MemoryMode::unified_fram));
  }
}

TEST(PowerModel, SaveEnergyScalesWithImage) {
  McuPowerModel power;
  const Joules small = power.save_energy(128, 8e6, 3.0);
  const Joules large = power.save_energy(4096, 8e6, 3.0);
  EXPECT_GT(large, 2.0 * small);
}

TEST(PowerModel, SaveCurrentExceedsActive) {
  McuPowerModel power;
  EXPECT_GT(power.save_current(8e6),
            power.active_current(8e6, MemoryMode::sram_execution));
}

// ----------------------------------------------------------------- NVM -----

TEST(Nvm, CommitMakesSnapshotValid) {
  NvmStore nvm;
  EXPECT_FALSE(nvm.has_valid_snapshot());
  nvm.begin_write(Snapshot{{std::byte{1}}, 0.0, 0});
  EXPECT_FALSE(nvm.has_valid_snapshot());  // not yet committed
  nvm.commit();
  EXPECT_TRUE(nvm.has_valid_snapshot());
  EXPECT_EQ(nvm.commits(), 1u);
}

TEST(Nvm, AbandonKeepsPreviousSnapshot) {
  NvmStore nvm;
  nvm.begin_write(Snapshot{{std::byte{1}}, 0.0, 0});
  nvm.commit();
  nvm.begin_write(Snapshot{{std::byte{2}}, 0.0, 0});
  nvm.abandon_write();  // torn
  EXPECT_TRUE(nvm.has_valid_snapshot());
  EXPECT_EQ(nvm.snapshot().program_state[0], std::byte{1});
  EXPECT_EQ(nvm.torn_writes(), 1u);
}

TEST(Nvm, OverlappingWritesCountTorn) {
  NvmStore nvm;
  nvm.begin_write(Snapshot{{std::byte{1}}, 0.0, 0});
  nvm.begin_write(Snapshot{{std::byte{2}}, 0.0, 0});  // replaces in-progress
  EXPECT_EQ(nvm.torn_writes(), 1u);
  nvm.commit();
  EXPECT_EQ(nvm.snapshot().program_state[0], std::byte{2});
}

TEST(Nvm, SnapshotWithoutCommitThrows) {
  NvmStore nvm;
  EXPECT_THROW(nvm.snapshot(), std::invalid_argument);
  EXPECT_THROW(nvm.commit(), std::invalid_argument);
}

// ----------------------------------------------------------------- Mcu -----

struct McuFixture : ::testing::Test {
  McuFixture()
      : program(workloads::make_program("crc", 1)), mcu(McuParams{}, *program, policy) {}

  void power_to(Volts v_from, Volts v_to, Seconds t0, Seconds t1) {
    mcu.supply_update(v_from, t0, v_to, t1);
  }

  std::unique_ptr<workloads::Program> program;
  checkpoint::NullPolicy policy;
  Mcu mcu;
};

TEST_F(McuFixture, StartsOff) {
  EXPECT_EQ(mcu.state(), McuState::off);
  EXPECT_FALSE(mcu.ram_valid());
}

TEST_F(McuFixture, BootsWhenSupplyReachesVon) {
  policy.attach(mcu);
  power_to(0.0, 2.5, 0.0, 1e-5);
  EXPECT_EQ(mcu.state(), McuState::boot);
  EXPECT_EQ(mcu.metrics().boots, 1u);
}

TEST_F(McuFixture, RunsProgramOnSteadySupply) {
  policy.attach(mcu);
  power_to(0.0, 3.0, 0.0, 1e-5);
  Seconds t = 0.0;
  while (t < 1.0 && !mcu.metrics().completed) {
    mcu.advance(t, 1e-4, 3.0);
    t += 1e-4;
  }
  EXPECT_TRUE(mcu.metrics().completed);
  EXPECT_EQ(mcu.state(), McuState::done);
  // crc = 256 blocks * 640 cycles = 163840 cycles at 8 MHz ~ 20.5 ms + boot.
  EXPECT_NEAR(mcu.metrics().completion_time, 0.0207, 0.002);
}

TEST_F(McuFixture, BrownOutLosesVolatileState) {
  policy.attach(mcu);
  power_to(0.0, 3.0, 0.0, 1e-5);
  mcu.advance(0.0, 1e-3, 3.0);  // boot + some execution
  EXPECT_EQ(mcu.state(), McuState::active);
  power_to(3.0, 1.0, 1e-3, 2e-3);  // below v_min
  EXPECT_EQ(mcu.state(), McuState::off);
  EXPECT_FALSE(mcu.ram_valid());
  EXPECT_EQ(mcu.metrics().brownouts, 1u);
}

TEST_F(McuFixture, CurrentDrawDependsOnState) {
  const Amps off = mcu.current_draw(3.0, 0.0);
  policy.attach(mcu);
  power_to(0.0, 3.0, 0.0, 1e-5);
  mcu.advance(0.0, 1e-3, 3.0);
  const Amps active = mcu.current_draw(3.0, 0.0);
  EXPECT_GT(active, 100.0 * off);
  EXPECT_NEAR(active, mcu.power().active_current(8e6, MemoryMode::sram_execution),
              1e-9);
}

TEST_F(McuFixture, EnergyAttributionSumsToTotal) {
  policy.attach(mcu);
  power_to(0.0, 3.0, 0.0, 1e-5);
  Seconds t = 0.0;
  while (t < 0.05) {
    mcu.advance(t, 1e-4, 3.0);
    t += 1e-4;
  }
  const auto& m = mcu.metrics();
  EXPECT_GT(m.energy_total(), 0.0);
  EXPECT_NEAR(m.time_on() + m.time_off, 0.05, 1e-6);
}

TEST_F(McuFixture, PollVccCostsCycles) {
  policy.attach(mcu);
  power_to(0.0, 3.0, 0.0, 1e-5);
  mcu.advance(0.0, 1e-3, 3.0);
  const double before = mcu.metrics().poll_cycles;
  EXPECT_DOUBLE_EQ(mcu.poll_vcc(), 3.0);
  EXPECT_GT(mcu.metrics().poll_cycles, before);
}

TEST_F(McuFixture, SetFrequencyValidates) {
  EXPECT_THROW(mcu.set_frequency(0.0), std::invalid_argument);
  mcu.set_frequency(1e6);
  EXPECT_DOUBLE_EQ(mcu.frequency(), 1e6);
}

TEST_F(McuFixture, SnapshotImageBytesByMode) {
  const std::size_t sram = mcu.snapshot_image_bytes();
  EXPECT_EQ(sram, program->ram_footprint() + mcu.power().register_file_bytes);
  mcu.set_memory_mode(MemoryMode::unified_fram);
  EXPECT_EQ(mcu.snapshot_image_bytes(), mcu.power().register_file_bytes);
}

// A policy that saves once at a fixed boundary count, to exercise the save
// path deterministically.
struct SaveOncePolicy final : checkpoint::PolicyBase {
  int boundaries = 0;
  int save_at = 10;
  void on_boot(Mcu& mcu, Seconds t) override { mcu.start_program_fresh(t); }
  void on_boundary(Mcu& mcu, workloads::Boundary, Seconds t) override {
    if (++boundaries == save_at) mcu.request_save(t);
  }
  void on_save_complete(Mcu& mcu, Seconds t) override { mcu.resume_execution(t); }
  [[nodiscard]] std::string name() const override { return "save-once"; }
};

TEST(McuSave, SaveCommitsAndRestoreResumesExactly) {
  auto program = workloads::make_program("fft-small", 3);
  const auto golden = workloads::golden_digest(*program);

  SaveOncePolicy policy;
  Mcu mcu(McuParams{}, *program, policy);
  mcu.supply_update(0.0, 0.0, 3.0, 1e-5);
  Seconds t = 0.0;
  while (t < 0.01 && mcu.nvm().commits() == 0) {
    mcu.advance(t, 1e-4, 3.0);
    t += 1e-4;
  }
  ASSERT_EQ(mcu.nvm().commits(), 1u);
  EXPECT_EQ(mcu.metrics().saves_started, 1u);
  EXPECT_EQ(mcu.metrics().saves_completed, 1u);
  EXPECT_GT(mcu.metrics().time_saving, 0.0);

  // Kill the power, then bring it back: policy restarts fresh (it is not a
  // restoring policy), so instead restore manually and check exactness.
  mcu.supply_update(3.0, t, 0.5, t + 1e-5);
  EXPECT_EQ(mcu.state(), McuState::off);
  mcu.supply_update(0.5, t, 3.0, t + 2e-5);
  // Finish boot.
  mcu.advance(t, 1e-3, 3.0);
  // Force a restore through the public API.
  mcu.enter_wait(t);
  mcu.request_restore(t);
  while (!mcu.metrics().completed && t < 1.0) {
    mcu.advance(t, 1e-4, 3.0);
    t += 1e-4;
  }
  ASSERT_TRUE(mcu.metrics().completed);
  EXPECT_EQ(program->result_digest(), golden);
  EXPECT_EQ(mcu.metrics().restores, 1u);
}

TEST(McuSave, TornSaveKeepsNvmEmpty) {
  auto program = workloads::make_program("fft", 3);  // big image: slow save
  SaveOncePolicy policy;
  policy.save_at = 5;
  Mcu mcu(McuParams{}, *program, policy);
  mcu.supply_update(0.0, 0.0, 3.0, 1e-5);
  Seconds t = 0.0;
  // Run until the save starts.
  while (t < 0.01 && mcu.state() != McuState::saving) {
    mcu.advance(t, 1e-5, 3.0);
    t += 1e-5;
  }
  ASSERT_EQ(mcu.state(), McuState::saving);
  // Brown out mid-save.
  mcu.supply_update(3.0, t, 1.0, t + 1e-5);
  EXPECT_EQ(mcu.state(), McuState::off);
  EXPECT_FALSE(mcu.nvm().has_valid_snapshot());
  EXPECT_EQ(mcu.nvm().torn_writes(), 1u);
  EXPECT_EQ(mcu.metrics().saves_completed, 0u);
}

TEST(McuReexec, ReexecutedCyclesCountedAfterRollback) {
  auto program = workloads::make_program("crc", 2);
  SaveOncePolicy policy;
  policy.save_at = 20;
  Mcu mcu(McuParams{}, *program, policy);
  mcu.supply_update(0.0, 0.0, 3.0, 1e-5);
  Seconds t = 0.0;
  while (mcu.nvm().commits() == 0 && t < 0.1) {
    mcu.advance(t, 1e-4, 3.0);
    t += 1e-4;
  }
  ASSERT_EQ(mcu.nvm().commits(), 1u);
  // Let it run past the snapshot, then kill and restore: the work between
  // snapshot and outage re-executes.
  for (int i = 0; i < 50; ++i) {
    mcu.advance(t, 1e-4, 3.0);
    t += 1e-4;
  }
  mcu.supply_update(3.0, t, 0.0, t + 1e-5);
  mcu.supply_update(0.0, t, 3.0, t + 2e-5);
  mcu.advance(t, 1e-3, 3.0);  // boot
  mcu.enter_wait(t);
  mcu.request_restore(t);
  while (!mcu.metrics().completed && t < 1.0) {
    mcu.advance(t, 1e-4, 3.0);
    t += 1e-4;
  }
  ASSERT_TRUE(mcu.metrics().completed);
  EXPECT_GT(mcu.metrics().reexecuted_cycles, 0.0);
  EXPECT_GT(mcu.metrics().forward_cycles, mcu.metrics().reexecuted_cycles);
}

}  // namespace
}  // namespace edc::mcu
