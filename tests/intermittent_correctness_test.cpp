// The central transient-computing property (DESIGN.md §4):
//
//   For every (policy x workload x source), a computation executed across an
//   intermittent supply — with snapshots, restores, re-execution and
//   brown-outs — produces the exact digest of an uninterrupted golden run,
//   and the simulator's energy ledger balances.
//
// Parameterised sweep over the policy and workload matrix on a square-wave
// supply that guarantees multiple outages, plus a stochastic Markov supply
// for the flagship policies.
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "edc/core/system.h"
#include "edc/workloads/aes.h"
#include "edc/workloads/crc32.h"
#include "edc/workloads/fft.h"
#include "edc/workloads/matmul.h"
#include "edc/workloads/sensing.h"
#include "edc/workloads/sort.h"

namespace edc {
namespace {

using core::SystemBuilder;

enum class PolicyKind { hibernus, hibernus_pp, quickrecall, nvp, mementos_loop,
                        mementos_function, burst };

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::hibernus: return "hibernus";
    case PolicyKind::hibernus_pp: return "hibernuspp";
    case PolicyKind::quickrecall: return "quickrecall";
    case PolicyKind::nvp: return "nvp";
    case PolicyKind::mementos_loop: return "mementosloop";
    case PolicyKind::mementos_function: return "mementosfn";
    case PolicyKind::burst: return "burst";
  }
  return "?";
}

void apply_policy(SystemBuilder& builder, PolicyKind kind) {
  // Interrupt-driven policies keep a modest restore headroom so that even
  // large-image workloads (matmul's ~20 KiB) fit their V_R under the 3.05 V
  // rectified supply ceiling.
  checkpoint::InterruptPolicy::Config interrupt_config;
  interrupt_config.restore_headroom = 0.25;
  switch (kind) {
    case PolicyKind::hibernus:
      builder.policy_hibernus(interrupt_config);
      break;
    case PolicyKind::hibernus_pp:
      builder.policy_hibernus_pp();
      break;
    case PolicyKind::quickrecall:
      builder.policy_quickrecall(interrupt_config);
      break;
    case PolicyKind::nvp:
      builder.policy_nvp(interrupt_config);
      break;
    case PolicyKind::mementos_loop: {
      checkpoint::MementosPolicy::Config config;
      config.mode = checkpoint::MementosPolicy::Mode::loop;
      config.poll_stride = 4;  // keep the sweep fast; stride 1 covered elsewhere
      builder.policy_mementos(config);
      break;
    }
    case PolicyKind::mementos_function: {
      checkpoint::MementosPolicy::Config config;
      config.mode = checkpoint::MementosPolicy::Mode::function;
      // Function boundaries are sparse (an FFT stage is ~17 ms of work), so
      // polling must begin well above the brown-out region for a candidate
      // to land inside the feasible save window at all — the placement-
      // granularity weakness of compile-time instrumentation (§II.B).
      config.v_threshold = 2.8;
      builder.policy_mementos(config);
      break;
    }
    case PolicyKind::burst: {
      taskmodel::BurstTaskPolicy::Config config;
      config.task_energy = 8e-6;  // sized to one sensing round on 22 uF
      builder.policy_burst(config);
      break;
    }
  }
}

// Workloads sized to span several supply windows (20 ms on / 80 ms off), so
// completion is impossible without checkpoint-based forward progress.
std::unique_ptr<workloads::Program> make_spanning_program(const std::string& kind,
                                                          std::uint64_t seed) {
  if (kind == "fft") return std::make_unique<workloads::FftProgram>(12, seed);
  if (kind == "crc") return std::make_unique<workloads::Crc32Program>(64 * 1024, seed);
  if (kind == "aes") return std::make_unique<workloads::AesProgram>(128, seed);
  if (kind == "matmul") return std::make_unique<workloads::MatMulProgram>(40, seed);
  if (kind == "sense") return std::make_unique<workloads::SensingProgram>(256, seed);
  ADD_FAILURE() << "unknown kind " << kind;
  return nullptr;
}

using MatrixParam = std::tuple<PolicyKind, std::string>;

class IntermittentMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(IntermittentMatrixTest, DigestMatchesGoldenOnSquareWaveSupply) {
  const auto [policy, workload] = GetParam();
  if (policy == PolicyKind::mementos_function && workload == "fft") {
    // Function-granularity candidates on stage-grained code livelock on a
    // perfectly periodic supply; covered by MementosFunctionGranularity
    // below as a documented pathological case.
    GTEST_SKIP();
  }
  const std::uint64_t seed = 11;
  auto golden_program = make_spanning_program(workload, seed);
  const std::uint64_t golden = workloads::golden_digest(*golden_program);

  SystemBuilder builder;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.2, 0.0, 50.0))
      .capacitance(22e-6)
      .bleed(10000.0)  // board leakage: the node really discharges between bursts
      .program(make_spanning_program(workload, seed));
  apply_policy(builder, policy);
  auto system = builder.build();
  const auto result = system.run(20.0);

  ASSERT_TRUE(result.mcu.completed)
      << "policy " << to_string(policy) << " did not finish " << workload;
  EXPECT_EQ(system.program().result_digest(), golden);
  // The supply must actually have been intermittent for the test to mean
  // anything.
  EXPECT_GT(result.mcu.brownouts, 0u);
  // Energy ledger balances to numerical noise.
  EXPECT_NEAR(result.ledger_residual(), 0.0, 1e-6 + 1e-6 * result.harvested);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadMatrix, IntermittentMatrixTest,
    ::testing::Combine(::testing::Values(PolicyKind::hibernus, PolicyKind::hibernus_pp,
                                         PolicyKind::quickrecall, PolicyKind::nvp,
                                         PolicyKind::mementos_loop,
                                         PolicyKind::mementos_function,
                                         PolicyKind::burst),
                       ::testing::Values("fft", "crc", "aes", "matmul", "sense")),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      name += "_";
      for (char c : std::get<1>(info.param)) {
        if (c != '-') name += c;
      }
      return name;
    });

// Mementos' compile-time placement fails when candidate spacing exceeds the
// feasible save window: on a perfectly periodic supply, a candidate that
// misses the window misses it every cycle, and the system re-executes the
// same stage forever (§II.B downside 3, taken to its limit).
TEST(MementosFunctionGranularity, LivelocksOnStageGrainedCodeUnderPeriodicSupply) {
  SystemBuilder builder;
  checkpoint::MementosPolicy::Config config;
  config.mode = checkpoint::MementosPolicy::Mode::function;
  config.v_threshold = 2.8;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.2, 0.0, 50.0))
      .capacitance(22e-6)
      .bleed(10000.0)
      .program(std::make_unique<workloads::FftProgram>(12, 11))
      .policy_mementos(config);
  auto system = builder.build();
  const auto result = system.run(10.0);
  EXPECT_FALSE(result.mcu.completed);
  // It works hard but re-executes most of it.
  EXPECT_GT(result.mcu.reexecuted_cycles, result.mcu.forward_cycles);
}

class StochasticSupplyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(StochasticSupplyTest, DigestMatchesGoldenOnMarkovSupply) {
  const std::uint64_t seed = 23;
  // Register-only policies checkpoint so cheaply that they ride through
  // almost anything; give them a workload long enough to meet deep outages.
  // SRAM-image policies cannot hibernate a larger sort from 22 uF at all
  // (Eq 4 would put V_H above the harvester ceiling).
  const std::size_t sort_n =
      (GetParam() == PolicyKind::quickrecall || GetParam() == PolicyKind::nvp) ? 16384
                                                                               : 4096;
  workloads::SortProgram golden_program(sort_n, seed);
  const std::uint64_t golden = workloads::golden_digest(golden_program);

  // Markov on/off harvested power: mean on 60 ms, mean off 80 ms, 9 mW,
  // charging toward a 4 V converter ceiling.
  SystemBuilder builder;
  circuit::HarvesterPowerDriver::Params harvester;
  harvester.v_ceiling = 4.0;
  builder
      .power_source(
          std::make_unique<trace::MarkovOnOffPowerSource>(9e-3, 0.06, 0.08, 5, 120.0),
          harvester)
      .capacitance(22e-6)
      .bleed(5000.0)
      .program(std::make_unique<workloads::SortProgram>(sort_n, seed));
  apply_policy(builder, GetParam());
  auto system = builder.build();
  const auto result = system.run(120.0);

  ASSERT_TRUE(result.mcu.completed);
  EXPECT_EQ(system.program().result_digest(), golden);
  EXPECT_GT(result.mcu.saves_completed + result.mcu.direct_resumes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, StochasticSupplyTest,
                         ::testing::Values(PolicyKind::hibernus, PolicyKind::hibernus_pp,
                                           PolicyKind::quickrecall, PolicyKind::nvp),
                         [](const auto& info) { return to_string(info.param); });

TEST(IntermittentDeterminism, IdenticalRunsProduceIdenticalMetrics) {
  auto make = [] {
    SystemBuilder builder;
    builder
        .voltage_source(
            std::make_unique<trace::SquareVoltageSource>(3.3, 20.0, 0.5, 0.0, 50.0))
        .capacitance(22e-6)
        .workload("aes", 3)
        .policy_hibernus();
    return builder.build();
  };
  auto a = make();
  auto b = make();
  const auto ra = a.run(20.0);
  const auto rb = b.run(20.0);
  ASSERT_TRUE(ra.mcu.completed);
  EXPECT_DOUBLE_EQ(ra.mcu.completion_time, rb.mcu.completion_time);
  EXPECT_EQ(ra.mcu.saves_completed, rb.mcu.saves_completed);
  EXPECT_EQ(ra.mcu.brownouts, rb.mcu.brownouts);
  EXPECT_DOUBLE_EQ(ra.harvested, rb.harvested);
  EXPECT_DOUBLE_EQ(ra.consumed, rb.consumed);
}

TEST(IntermittentPowerNeutral, GovernorPreservesExactness) {
  // hibernus-PN: DFS modulation on top of hibernus must not affect results.
  const std::uint64_t seed = 29;
  auto golden_program = workloads::make_program("fft-small", seed);
  const std::uint64_t golden = workloads::golden_digest(*golden_program);

  SystemBuilder builder;
  builder
      .voltage_source(
          std::make_unique<trace::SquareVoltageSource>(3.3, 10.0, 0.6, 0.0, 220.0))
      .capacitance(47e-6)
      .workload("fft-small", seed)
      .policy_hibernus()
      .governor_power_neutral();
  auto system = builder.build();
  const auto result = system.run(30.0);
  ASSERT_TRUE(result.mcu.completed);
  EXPECT_EQ(system.program().result_digest(), golden);
}

}  // namespace
}  // namespace edc
