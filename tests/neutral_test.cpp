// Tests for energy-neutral and power-neutral operation (edc/neutral).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "edc/core/system.h"
#include "edc/neutral/dfs_governor.h"
#include "edc/neutral/energy_neutral.h"
#include "edc/neutral/mpsoc.h"
#include "edc/trace/power_sources.h"

namespace edc::neutral {
namespace {

// ---------------------------------------------------------------- MPSoC ----

TEST(Mpsoc, PowerSpansAnOrderOfMagnitude) {
  // Fig 5's central observation: DVFS x hot-plug modulates power by ~10x.
  BigLittleMpsoc model;
  const auto points = model.enumerate_points();
  ASSERT_GT(points.size(), 100u);
  double p_min = 1e9, p_max = 0.0;
  for (const auto& point : points) {
    p_min = std::min(p_min, point.power);
    p_max = std::max(p_max, point.power);
  }
  EXPECT_GT(p_max / p_min, 10.0);
  EXPECT_LT(p_max, 25.0);  // ODROID-XU4-ish ceiling
  EXPECT_GT(p_min, 0.2);
}

TEST(Mpsoc, FpsMonotoneInFrequencyAndCores) {
  BigLittleMpsoc model;
  OperatingPoint slow{4, 600e6, 0, 0.0};
  OperatingPoint fast{4, 1400e6, 0, 0.0};
  EXPECT_GT(model.fps(fast), model.fps(slow));
  OperatingPoint one_big{0, 0.0, 1, 1800e6};
  OperatingPoint four_big{0, 0.0, 4, 1800e6};
  EXPECT_GT(model.fps(four_big), model.fps(one_big));
}

TEST(Mpsoc, FpsInPaperRange) {
  // Fig 5 y-axis tops out near 0.22 FPS on the full machine.
  BigLittleMpsoc model;
  const auto points = model.enumerate_points();
  double best = 0.0;
  for (const auto& point : points) best = std::max(best, point.fps);
  EXPECT_GT(best, 0.10);
  EXPECT_LT(best, 0.40);
}

TEST(Mpsoc, ParetoFrontierIsMonotone) {
  BigLittleMpsoc model;
  const auto frontier = model.pareto_frontier();
  ASSERT_GT(frontier.size(), 3u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].power, frontier[i - 1].power);
    EXPECT_GT(frontier[i].fps, frontier[i - 1].fps);
  }
}

TEST(Mpsoc, BigCoresFasterButHungrier) {
  BigLittleMpsoc model;
  OperatingPoint little{4, 1400e6, 0, 0.0};
  OperatingPoint big{0, 0.0, 4, 2000e6};
  EXPECT_GT(model.fps(big), model.fps(little));
  EXPECT_GT(model.power(big), model.power(little));
}

TEST(MpsocGovernor, SelectsWithinBudget) {
  BigLittleMpsoc model;
  MpsocPowerNeutralGovernor governor(model);
  for (Watts budget : {1.0, 3.0, 6.0, 12.0}) {
    const auto decision = governor.select(budget);
    EXPECT_LE(decision.chosen.power, budget);
    EXPECT_TRUE(decision.feasible);
  }
}

TEST(MpsocGovernor, HigherBudgetNeverSlower) {
  BigLittleMpsoc model;
  MpsocPowerNeutralGovernor governor(model);
  double last_fps = 0.0;
  for (Watts budget = 1.0; budget < 16.0; budget += 0.5) {
    const auto decision = governor.select(budget);
    EXPECT_GE(decision.chosen.fps + 1e-12, last_fps);
    last_fps = decision.chosen.fps;
  }
}

TEST(MpsocGovernor, InfeasibleBelowFloor) {
  BigLittleMpsoc model;
  MpsocPowerNeutralGovernor governor(model);
  const auto decision = governor.select(0.1);
  EXPECT_FALSE(decision.feasible);
}

TEST(MpsocGovernor, TracksVaryingBudget) {
  BigLittleMpsoc model;
  MpsocPowerNeutralGovernor governor(model);
  std::vector<Watts> budget;
  for (int i = 0; i < 200; ++i) {
    budget.push_back(2.0 + 6.0 * (0.5 + 0.5 * std::sin(i * 0.1)));
  }
  const auto result = governor.track(budget, 0.1);
  ASSERT_EQ(result.times.size(), budget.size());
  for (std::size_t i = 0; i < budget.size(); ++i) {
    EXPECT_LE(result.power[i], budget[i] + 1e-12);
  }
  EXPECT_GT(result.frames_rendered, 0.0);
  EXPECT_DOUBLE_EQ(result.infeasible_fraction, 0.0);
}

// --------------------------------------------------------- DfsGovernor -----

TEST(DfsGovernor, ShiftsWithVoltage) {
  core::SystemBuilder builder;
  auto system = builder.power_source(std::make_unique<trace::ConstantPowerSource>(2e-3))
                    .capacitance(47e-6)
                    .workload("crc", 3)
                    .policy_hibernus()
                    .governor_power_neutral()
                    .build();
  const auto result = system.run(5.0);
  ASSERT_TRUE(result.mcu.completed);
}

TEST(DfsGovernor, UpshiftsOnHighVoltage) {
  McuDfsGovernor governor({});
  auto program = workloads::make_program("crc", 1);
  checkpoint::NullPolicy policy;
  mcu::McuParams params;
  params.initial_frequency = 8e6;
  mcu::Mcu mcu(params, *program, policy);
  policy.attach(mcu);
  mcu.supply_update(0.0, 0.0, 3.4, 1e-5);
  mcu.advance(0.0, 1e-3, 3.4);  // boot + run
  ASSERT_EQ(mcu.state(), mcu::McuState::active);
  governor.control(mcu, 3.4, 0.0);  // far above v_ref = 2.9
  EXPECT_GT(mcu.frequency(), 8e6);
  EXPECT_EQ(governor.upshifts(), 1);
}

TEST(DfsGovernor, DownshiftsOnLowVoltage) {
  McuDfsGovernor governor({});
  auto program = workloads::make_program("crc", 1);
  checkpoint::NullPolicy policy;
  mcu::McuParams params;
  params.initial_frequency = 8e6;
  mcu::Mcu mcu(params, *program, policy);
  policy.attach(mcu);
  mcu.supply_update(0.0, 0.0, 3.0, 1e-5);
  mcu.advance(0.0, 1e-3, 3.0);
  ASSERT_EQ(mcu.state(), mcu::McuState::active);
  governor.control(mcu, 2.2, 0.0);  // below v_ref - band/2
  EXPECT_LT(mcu.frequency(), 8e6);
  EXPECT_EQ(governor.downshifts(), 1);
}

TEST(DfsGovernor, DeadBandHolds) {
  McuDfsGovernor governor({});
  auto program = workloads::make_program("crc", 1);
  checkpoint::NullPolicy policy;
  mcu::Mcu mcu(mcu::McuParams{}, *program, policy);
  policy.attach(mcu);
  mcu.supply_update(0.0, 0.0, 3.0, 1e-5);
  mcu.advance(0.0, 1e-3, 3.0);
  governor.control(mcu, 2.9, 0.0);  // exactly v_ref
  EXPECT_DOUBLE_EQ(mcu.frequency(), 8e6);
}

TEST(DfsGovernor, ReducesHibernationsOnSaggingSupply) {
  // hibernus-PN's raison d'etre (Fig 8): riding through a trough at reduced
  // frequency avoids hibernate/restore round trips.
  auto run = [](bool with_governor) {
    core::SystemBuilder builder;
    builder
        .power_source(std::make_unique<trace::WaveformPowerSource>(
            trace::Waveform::sample(
                [](Seconds t) {
                  // Sags periodically to a level that sustains only low f.
                  return 1.2e-3 + 1.1e-3 * std::sin(2 * M_PI * 1.0 * t);
                },
                0.0, 30.0, 30001),
            "sagging"))
        .capacitance(47e-6)
        .workload("sort", 3)
        .policy_hibernus();
    if (with_governor) builder.governor_power_neutral();
    auto system = builder.build();
    return system.run(30.0);
  };
  const auto with = run(true);
  const auto without = run(false);
  ASSERT_TRUE(with.mcu.completed);
  EXPECT_LE(with.mcu.saves_completed, without.mcu.saves_completed);
}

// ------------------------------------------------------- EnergyNeutral -----

TEST(EnergyNeutral, NoDepletionOnDiurnalSource) {
  trace::IndoorPhotovoltaicSource pv({}, 1, 4);
  EnergyNeutralController::Config config;
  config.p_active = 2.4e-3;  // scaled to the ~1 mW harvest of indoor PV
  config.p_sleep = 20e-6;
  config.battery_capacity = 20.0;
  EnergyNeutralController controller(config);
  const auto result = controller.run(pv, 4 * 86400.0);
  EXPECT_EQ(result.depletion_events, 0);
  EXPECT_GT(result.harvested_total, 0.0);
}

TEST(EnergyNeutral, Eq1ResidualSmall) {
  trace::IndoorPhotovoltaicSource pv({}, 1, 4);
  EnergyNeutralController::Config config;
  config.p_active = 2.4e-3;
  config.p_sleep = 20e-6;
  config.battery_capacity = 20.0;
  EnergyNeutralController controller(config);
  const auto result = controller.run(pv, 4 * 86400.0);
  // Consumption tracks harvest over whole periods (battery closes the gap).
  EXPECT_LT(result.eq1_relative_residual(), 0.02);
  EXPECT_NEAR(result.consumed_total / result.harvested_total, 1.0, 0.15);
}

TEST(EnergyNeutral, DutyFollowsDiurnalHarvest) {
  trace::IndoorPhotovoltaicSource pv({}, 1, 3);
  EnergyNeutralController::Config config;
  config.p_active = 2.4e-3;
  config.p_sleep = 20e-6;
  config.battery_capacity = 20.0;
  EnergyNeutralController controller(config);
  const auto result = controller.run(pv, 3 * 86400.0);
  // Mean duty during day 3 daytime should exceed mean duty at night.
  double day_duty = 0.0, night_duty = 0.0;
  int day_n = 0, night_n = 0;
  for (const auto& slot : result.slots) {
    if (slot.t < 2 * 86400.0) continue;  // judge the adapted (3rd) day
    const double hour = std::fmod(slot.t, 86400.0) / 3600.0;
    if (hour > 9.0 && hour < 18.0) {
      day_duty += slot.duty;
      ++day_n;
    } else if (hour < 6.0 || hour > 21.0) {
      night_duty += slot.duty;
      ++night_n;
    }
  }
  ASSERT_GT(day_n, 0);
  ASSERT_GT(night_n, 0);
  EXPECT_GT(day_duty / day_n, night_duty / night_n);
}

TEST(EnergyNeutral, WorksOnOutdoorSolarOverAWeek) {
  // The paper's canonical Eq 1 period: outdoor solar with T = 24 h.
  trace::OutdoorSolarSource solar({}, 3, 7);
  neutral::EnergyNeutralController::Config config;
  config.p_active = 60e-3;  // a 50 mW-peak panel feeding a full WSN node
  config.p_sleep = 30e-6;
  config.battery_capacity = 2000.0;  // ~a full day of harvest buffered
  neutral::EnergyNeutralController controller(config);
  const auto result = controller.run(solar, 7 * 86400.0);
  EXPECT_EQ(result.depletion_events, 0);
  EXPECT_LT(result.eq1_relative_residual(), 0.05);
  EXPECT_GT(result.consumed_total, 0.7 * result.harvested_total);
}

TEST(EnergyNeutral, UndersizedBatteryDepletes) {
  // Eq 2 failure mode: too little buffering for the diurnal swing.
  trace::IndoorPhotovoltaicSource pv({}, 1, 3);
  EnergyNeutralController::Config config;
  config.p_active = 40e-3;       // grossly over-consuming node
  config.p_sleep = 20e-6;
  config.duty_min = 0.5;         // refuses to throttle
  config.battery_capacity = 1.0;
  EnergyNeutralController controller(config);
  const auto result = controller.run(pv, 3 * 86400.0);
  EXPECT_GT(result.depletion_events, 0);
}

TEST(EnergyNeutral, PredictorConvergesAcrossDays) {
  trace::IndoorPhotovoltaicSource pv({}, 1, 4);
  EnergyNeutralController::Config config;
  config.p_active = 2.4e-3;
  config.p_sleep = 20e-6;
  config.battery_capacity = 20.0;
  EnergyNeutralController controller(config);
  const auto result = controller.run(pv, 4 * 86400.0);
  // Once the EWMA has seen a few days, the per-slot prediction error is a
  // small fraction of the mean harvested power (bounded below by genuine
  // day-to-day variation).
  double err = 0.0, mean = 0.0;
  int n = 0;
  for (const auto& slot : result.slots) {
    if (slot.t >= 3 * 86400.0) {
      err += std::abs(slot.predicted - slot.harvested);
      mean += slot.harvested;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(err / n, 0.05 * (mean / n));
}

}  // namespace
}  // namespace edc::neutral
