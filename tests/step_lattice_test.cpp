// Pins the step-lattice helper shared by the scalar simulator loop and the
// batched kernel (sim/step_lattice.h): steps_starting_before must never
// claim a step whose lattice start dt * (step + k) lands at or past the
// limit, even when ceil((limit - t) / dt) rounds up across a representable
// boundary. A historical over-claim: limit = 3 * 0.1 (which is
// 0.30000000000000004 > 0.3), dt = 0.1, step = 0 — the raw ceil yields 4,
// but the 4th step would start at dt * 3 == limit exactly, i.e. *at* the
// deadline the caller promised to stop before.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "edc/sim/step_lattice.h"

namespace edc::sim {
namespace {

/// The defining property, checked directly on the lattice: n steps fit iff
/// the last claimed start dt*(step+n-1) lies strictly before the limit and
/// (maximality, when asserted) the next one does not.
void expect_exact(std::uint64_t step, Seconds limit, Seconds dt) {
  const std::uint64_t n = steps_starting_before(step, limit, dt);
  if (dt * static_cast<double>(step) >= limit) {
    EXPECT_EQ(n, 0u) << "step " << step << " already at/past the limit";
    return;
  }
  ASSERT_GE(n, 1u);
  EXPECT_LT(dt * static_cast<double>(step + (n - 1)), limit)
      << "over-claim: claimed start at/past the limit";
  EXPECT_GE(dt * static_cast<double>(step + n), limit)
      << "under-claim: an unclaimed start is still before the limit";
}

TEST(StepsStartingBefore, PinsTheRoundUpOverClaimCase) {
  // 3 * 0.1 rounds up past 0.3, so the naive ceil((limit - 0) / 0.1) is 4;
  // the guard must walk it back to 3 because dt * 3 == limit exactly.
  const double dt = 0.1;
  const double limit = 3 * 0.1;
  ASSERT_GT(limit, 0.3);  // the premise of the scenario
  EXPECT_EQ(steps_starting_before(0, limit, dt), 3u);
  expect_exact(0, limit, dt);
}

TEST(StepsStartingBefore, ZeroAtOrPastTheLimit) {
  EXPECT_EQ(steps_starting_before(5, 0.5, 0.1), 0u);   // dt*5 == 0.5 == limit
  EXPECT_EQ(steps_starting_before(7, 0.5, 0.1), 0u);   // past it
  EXPECT_EQ(steps_starting_before(0, 0.0, 0.1), 0u);   // degenerate limit
}

TEST(StepsStartingBefore, OffLatticeLimitCountsTheStraddlingStep) {
  // Starts at 0, .1, .2, dt*3 = 0.30000000000000004 < 0.35 — four steps
  // begin before an off-lattice limit.
  EXPECT_EQ(steps_starting_before(0, 0.35, 0.1), 4u);
  expect_exact(0, 0.35, 0.1);
}

TEST(StepsStartingBefore, ExactOnLatticeLimitsAcrossAwkwardDts) {
  // Lattice limits dt*K must yield exactly K - step for every dt whose
  // multiples are inexact, from any starting step.
  const std::vector<double> dts = {0.1, 1.0 / 3.0, 10e-6, 7e-3, 0.2};
  for (const double dt : dts) {
    for (const std::uint64_t k : {1u, 2u, 3u, 7u, 100u, 4999u}) {
      const double limit = dt * static_cast<double>(k);
      for (const std::uint64_t step : {0u, 1u, 2u, 5u, 99u}) {
        if (step >= k) {
          EXPECT_EQ(steps_starting_before(step, limit, dt), 0u)
              << "dt=" << dt << " k=" << k << " step=" << step;
        } else {
          EXPECT_EQ(steps_starting_before(step, limit, dt), k - step)
              << "dt=" << dt << " k=" << k << " step=" << step;
        }
      }
    }
  }
}

TEST(StepsStartingBefore, PropertyHoldsOnADenseScan) {
  // Brute-force the invariant over a dense set of off-lattice limits.
  const double dt = 0.1;
  for (int i = 1; i <= 400; ++i) {
    const double limit = 0.01 * i + 0.003;
    for (std::uint64_t step = 0; step < 12; ++step) {
      expect_exact(step, limit, dt);
    }
  }
}

}  // namespace
}  // namespace edc::sim
