// Quickstart: make a computation survive an intermittent supply.
//
// The library analogue of the paper's Fig 6 — wrapping an application in
// hibernus takes a couple of lines. We run a 1024-point FFT from a 2 Hz
// half-wave rectified sine (a supply that dies five times per second is
// fatal to a conventional system), and verify the result is bit-exact
// against an uninterrupted run.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "edc/core/system.h"

int main() {
  using namespace edc;

  // The golden result, computed without any interruption.
  auto golden_program = workloads::make_program("fft", /*seed=*/42);
  const std::uint64_t golden = workloads::golden_digest(*golden_program);

  // The same workload on an energy-driven system: a rectified 2 Hz sine,
  // 22 uF of decoupling capacitance (no added storage!), hibernus.
  auto system = core::SystemBuilder()
                    .sine_source(3.3, 2.0)
                    .capacitance(22e-6)
                    .bleed(10000.0)  // board leakage
                    .workload("fft", 42)
                    .policy_hibernus()
                    .build();

  const auto result = system.run(/*t_end=*/10.0);

  std::printf("workload:        %s\n", system.program().name().c_str());
  std::printf("completed:       %s after %.1f ms\n",
              result.mcu.completed ? "yes" : "no",
              result.mcu.completion_time * 1e3);
  std::printf("supply outages:  %llu\n",
              static_cast<unsigned long long>(result.mcu.brownouts));
  std::printf("snapshots:       %llu (restores: %llu)\n",
              static_cast<unsigned long long>(result.mcu.saves_completed),
              static_cast<unsigned long long>(result.mcu.restores));
  std::printf("energy consumed: %.1f uJ\n", result.mcu.energy_total() * 1e6);
  std::printf("result exact:    %s\n",
              system.program().result_digest() == golden ? "yes (bit-identical)"
                                                         : "NO (BUG!)");
  return result.mcu.completed && system.program().result_digest() == golden ? 0 : 1;
}
