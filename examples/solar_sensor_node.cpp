// An energy-neutral solar sensor node (the paper's §II.A, after Kansal [3]).
//
// A WSN node runs from the indoor photovoltaic cell of Fig 1(b) with a
// small battery buffer. The energy-neutral controller adapts the sensing
// duty cycle so that, over each day, consumption equals harvest (Eq 1)
// without ever emptying the battery (Eq 2). This is the "make the harvester
// look like a battery" end of the taxonomy — contrast with quickstart.cpp.
//
// Build & run:  ./solar_sensor_node
#include <cstdio>

#include "edc/neutral/energy_neutral.h"
#include "edc/trace/power_sources.h"

int main() {
  using namespace edc;

  const int days = 5;
  trace::IndoorPhotovoltaicSource pv({}, /*seed=*/2024, days);

  neutral::EnergyNeutralController::Config config;
  config.p_active = 2.4e-3;        // radio + sensor + MCU while awake
  config.p_sleep = 20e-6;          // deep sleep floor
  config.battery_capacity = 20.0;  // ~1.5 mAh at 3.7 V
  config.slot = 300.0;             // re-plan every 5 minutes

  neutral::EnergyNeutralController controller(config);
  const auto result = controller.run(pv, days * 86400.0);

  std::printf("energy-neutral solar sensor node, %d days on indoor PV\n\n", days);
  std::printf("harvested:  %.1f J\n", result.harvested_total);
  std::printf("consumed:   %.1f J  (%.1f%% of harvest put to work)\n",
              result.consumed_total,
              100.0 * result.consumed_total / result.harvested_total);
  std::printf("battery:    %.1f J -> %.1f J (capacity %.0f J)\n",
              result.battery_initial, result.battery_final, config.battery_capacity);
  std::printf("Eq 1 residual: %.2f%% over %d periods\n",
              100.0 * result.eq1_relative_residual(), days);
  std::printf("Eq 2 violations (battery empty): %d\n", result.depletion_events);

  // A sample of the plan: duty at 4 points of the final day.
  std::printf("\nadapted plan, day %d:\n", days);
  for (double hour : {3.0, 10.0, 14.0, 22.0}) {
    const auto slot_index =
        static_cast<std::size_t>(((days - 1) * 86400.0 + hour * 3600.0) / config.slot);
    if (slot_index < result.slots.size()) {
      const auto& slot = result.slots[slot_index];
      std::printf("  %05.2fh  harvest %.2f mW  duty %.1f%%  battery %.0f%%\n", hour,
                  slot.harvested * 1e3, slot.duty * 100.0, slot.soc * 100.0);
    }
  }
  return result.depletion_events == 0 ? 0 : 1;
}
