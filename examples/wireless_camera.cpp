// A battery-free wireless camera (WISPCam [4], §II.B).
//
// The camera charges its 6 mF supercapacitor from an RFID reader's field,
// takes a photo into NVM once enough energy accumulated, and streams the
// stored photo out in chunks whenever the field is present. Losing power
// mid-way loses nothing: the photo persists in NVM — task-based transient
// computing in its purest form.
//
// Build & run:  ./wireless_camera
#include <cstdio>

#include "edc/taskmodel/wispcam.h"
#include "edc/trace/power_sources.h"

int main() {
  using namespace edc;

  taskmodel::WispCam camera({});

  // A reader that activates its field for 8 s out of every 10 s.
  trace::RfFieldSource::Params rf;
  rf.field_power = 2.5e-3;
  rf.burst_length = 8.0;
  rf.burst_period = 10.0;
  rf.jitter = 0.1;
  trace::RfFieldSource reader(rf, /*seed=*/7, /*horizon=*/600.0);

  const auto result = camera.run(reader, 600.0);

  std::printf("WISPCam, 10 minutes in a duty-cycled RFID field (%.1f mW)\n\n",
              rf.field_power * 1e3);
  std::printf("photos captured:     %d\n", result.photos_captured);
  std::printf("photos delivered:    %d\n", result.photos_transferred);
  std::printf("capture -> delivery: %.1f s mean latency\n", result.mean_latency());
  std::printf("phases interrupted by brown-out (and retried): %d\n",
              result.interrupted_phases);
  std::printf("supercap voltage excursion: %.2f .. %.2f V\n", result.voltage.min(),
              result.voltage.max());
  std::printf("\nExpression (2) was violated between bursts, yet every delivered\n");
  std::printf("photo is complete: the NVM carries the state across outages.\n");
  return result.photos_transferred > 0 ? 0 : 1;
}
