// A home energy monitor that is its own sensor (Monjolo [6], §II.B).
//
// A current clamp around a mains cable harvests induction energy into a
// 500 uF capacitor. Every time the capacitor fills, the node transmits one
// ping and goes dark. The receiver never sees a power measurement — it
// *infers* the monitored load's power from the ping arrival rate. We sweep
// a simulated household load and recover it from pings alone.
//
// Build & run:  ./home_energy_monitor
#include <cstdio>

#include "edc/taskmodel/monjolo.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/waveform.h"

int main() {
  using namespace edc;

  taskmodel::MonjoloMeter meter({});

  // The clamp's harvest is proportional to the primary current: model a
  // household load stepping through 100 W -> 600 W -> 2 kW -> 300 W, with
  // the clamp harvesting ~2 uW per watt of primary load.
  const double uw_per_primary_watt = 2.0;
  auto primary_watts = [](Seconds t) -> double {
    if (t < 150.0) return 100.0;
    if (t < 300.0) return 600.0;
    if (t < 450.0) return 2000.0;
    return 300.0;
  };
  const auto harvest = trace::Waveform::sample(
      [&](Seconds t) { return primary_watts(t) * uw_per_primary_watt * 1e-6; }, 0.0,
      600.0, 6001);
  trace::WaveformPowerSource source(harvest, "current-clamp");

  const auto result = meter.run(source, 600.0);

  std::printf("Monjolo home energy monitor, 10 minutes, %zu pings\n\n",
              result.pings.size());
  std::printf("energy per charge-fire cycle: %.0f uJ\n",
              result.energy_per_cycle * 1e6);

  std::printf("\n%-22s %-22s %-20s\n", "interval", "true primary load",
              "estimate from pings");
  struct Window { Seconds t0, t1; };
  for (const Window w : {Window{30, 140}, Window{180, 290}, Window{330, 440},
                         Window{480, 590}}) {
    const Watts est_harvest = result.mean_estimate(w.t0, w.t1);
    // Invert the clamp model (receiver-side calibration): harvested power =
    // primary_watts * clamp coupling * converter efficiency.
    const double est_primary =
        est_harvest / (uw_per_primary_watt * 1e-6 * 0.70);
    std::printf("%5.0f .. %-5.0f s        %6.0f W               %6.0f W\n", w.t0, w.t1,
                primary_watts((w.t0 + w.t1) / 2), est_primary);
  }

  std::printf("\nThe node contains no voltmeter and no battery: the *frequency of\n");
  std::printf("its own power-ups* is the measurement.\n");
  return result.pings.size() > 10 ? 0 : 1;
}
