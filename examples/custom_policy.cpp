// Writing your own checkpoint policy — and sweeping it.
//
// The policy hook API (edc/checkpoint/policy_base.h) exposes everything the
// built-in policies use: comparator configuration, boundary callbacks, the
// save/restore/resume commands and V_CC polling. This example implements a
// simple hybrid — "eager hibernus" — that snapshots at V_H like hibernus
// but also commits a periodic background snapshot while the supply is
// healthy, trading extra NVM writes for less re-execution if the reactive
// save is ever torn.
//
// A custom policy enters the sweep engine through spec::CustomPolicy: the
// factory is called once per grid point, so every point gets a fresh,
// independent policy and the whole grid can run across worker threads. The
// sweep below compares plain hibernus against eager hibernus at several
// background periods on the same supply, workload and storage.
//
// Build & run:  ./custom_policy
#include <cstdio>
#include <iostream>
#include <string>

#include "edc/checkpoint/policy_base.h"
#include "edc/checkpoint/thresholds.h"
#include "edc/core/system.h"
#include "edc/sim/table.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"
#include "edc/workloads/crc32.h"

namespace {

using namespace edc;

class EagerHibernusPolicy final : public checkpoint::PolicyBase {
 public:
  EagerHibernusPolicy(Farads capacitance, Seconds background_period)
      : capacitance_(capacitance), background_period_(background_period) {}

  void attach(mcu::Mcu& mcu) override {
    v_hibernate_ = checkpoint::hibernate_threshold_for_image(
        mcu.power(), mcu.snapshot_image_bytes(), mcu.frequency(), capacitance_, 2.0);
    v_restore_ = v_hibernate_ + 0.4;
    mcu.add_comparator("VH", v_hibernate_, 0.0);
    mcu.add_comparator("VR", v_restore_, 0.0);
  }

  void on_boot(mcu::Mcu& mcu, Seconds t) override {
    if (mcu.vcc() >= v_restore_) {
      begin(mcu, t);
    } else {
      mcu.enter_wait(t);
    }
  }

  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override {
    if (event.name == "VH" && event.edge == circuit::Edge::falling &&
        mcu.state() == mcu::McuState::active) {
      mcu.request_save(event.time);
    } else if (event.name == "VR" && event.edge == circuit::Edge::rising &&
               (mcu.state() == mcu::McuState::wait ||
                mcu.state() == mcu::McuState::sleep)) {
      begin(mcu, event.time);
    }
  }

  void on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary, Seconds t) override {
    // The eager part: a background snapshot every background_period_ while
    // the supply is comfortably high.
    if (boundary == workloads::Boundary::function &&
        t - last_background_save_ > background_period_ && mcu.vcc() > v_restore_) {
      last_background_save_ = t;
      ++background_saves_;
      mcu.request_save(t);
    }
  }

  void on_save_complete(mcu::Mcu& mcu, Seconds t) override {
    if (mcu.vcc() >= v_restore_) {
      mcu.resume_execution(t);  // background save or recovered supply
    } else {
      mcu.enter_sleep(t);
    }
  }

  [[nodiscard]] std::string name() const override { return "eager-hibernus"; }
  [[nodiscard]] int background_saves() const noexcept { return background_saves_; }

 private:
  void begin(mcu::Mcu& mcu, Seconds t) {
    if (mcu.ram_valid()) {
      mcu.resume_execution(t);
    } else if (mcu.nvm().has_valid_snapshot()) {
      mcu.request_restore(t);
    } else {
      mcu.start_program_fresh(t);
    }
  }

  Farads capacitance_;
  Seconds background_period_;
  Volts v_hibernate_ = 0.0;
  Volts v_restore_ = 0.0;
  Seconds last_background_save_ = -1e9;
  int background_saves_ = 0;
};

struct Row {
  bool completed = false;
  bool exact = false;
  std::uint64_t saves = 0;
  int background_saves = 0;
  std::uint64_t restores = 0;
  double reexec_mcycles = 0.0;
};

/// Axis value that swaps in an eager-hibernus factory with the given
/// background period (the node capacitance arrives from the spec).
sweep::AxisValue eager_policy(Seconds background_period) {
  char label[32];
  std::snprintf(label, sizeof(label), "eager %.0f ms", background_period * 1e3);
  return {label, [background_period](spec::SystemSpec& s) {
            s.policy = spec::CustomPolicy{
                [background_period](const std::function<Farads()>&,
                                    Farads node_capacitance) {
                  return std::make_unique<EagerHibernusPolicy>(node_capacitance,
                                                               background_period);
                }};
          }};
}

}  // namespace

int main() {
  using namespace edc;

  workloads::Crc32Program golden_program(128 * 1024, 7);
  const std::uint64_t golden = workloads::golden_digest(golden_program);

  spec::SystemSpec base;
  base.source = spec::SquareSource{3.3, 10.0, 0.4, 0.0, 50.0};
  base.storage.capacitance = 22e-6;
  base.storage.bleed = 10000.0;
  base.workload.factory = [] {
    return std::make_unique<workloads::Crc32Program>(128 * 1024, 7);
  };
  base.sim.t_end = 20.0;

  sweep::Grid grid(std::move(base));
  grid.axis("policy", {{"hibernus",
                        [](spec::SystemSpec& s) {
                          checkpoint::InterruptPolicy::Config config;
                          config.margin = 2.0;
                          config.restore_headroom = 0.4;
                          s.policy = spec::Hibernus{config};
                        }},
                       eager_policy(25e-3), eager_policy(50e-3),
                       eager_policy(100e-3)});

  const sweep::Runner runner;
  const auto rows = runner.map<Row>(
      grid, [golden](const sweep::Point&, core::EnergyDrivenSystem& system,
                     const sim::SimResult& result) {
        Row row;
        row.completed = result.mcu.completed;
        row.exact = result.mcu.completed &&
                    system.program().result_digest() == golden;
        row.saves = result.mcu.saves_completed;
        row.restores = result.mcu.restores;
        row.reexec_mcycles = result.mcu.reexecuted_cycles / 1e6;
        if (const auto* eager =
                dynamic_cast<const EagerHibernusPolicy*>(&system.policy())) {
          row.background_saves = eager->background_saves();
        }
        return row;
      });

  std::printf("custom policy sweep: hibernus vs eager-hibernus (CRC-128KiB)\n\n");
  sim::Table table({"policy", "done", "exact", "saves", "background", "restores",
                    "re-exec Mcyc"});
  bool all_exact = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    all_exact = all_exact && row.exact;
    table.add_row({grid.point(i).labels[0], row.completed ? "yes" : "NO",
                   row.exact ? "yes" : "NO", std::to_string(row.saves),
                   std::to_string(row.background_saves),
                   std::to_string(row.restores),
                   sim::Table::num(row.reexec_mcycles, 2)});
  }
  table.print(std::cout);

  std::printf("\nevery policy variant must reproduce the golden digest: %s\n",
              all_exact ? "yes (bit-identical)" : "NO (BUG!)");
  return all_exact ? 0 : 1;
}
