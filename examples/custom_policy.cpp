// Writing your own checkpoint policy.
//
// The policy hook API (edc/checkpoint/policy_base.h) exposes everything the
// built-in policies use: comparator configuration, boundary callbacks, the
// save/restore/resume commands and V_CC polling. This example implements a
// simple hybrid — "eager hibernus" — that snapshots at V_H like hibernus
// but also commits a periodic background snapshot while the supply is
// healthy, trading extra NVM writes for less re-execution if the reactive
// save is ever torn.
//
// Build & run:  ./custom_policy
#include <cstdio>

#include "edc/checkpoint/policy_base.h"
#include "edc/checkpoint/thresholds.h"
#include "edc/core/system.h"
#include "edc/workloads/crc32.h"

namespace {

using namespace edc;

class EagerHibernusPolicy final : public checkpoint::PolicyBase {
 public:
  EagerHibernusPolicy(Farads capacitance, Seconds background_period)
      : capacitance_(capacitance), background_period_(background_period) {}

  void attach(mcu::Mcu& mcu) override {
    v_hibernate_ = checkpoint::hibernate_threshold_for_image(
        mcu.power(), mcu.snapshot_image_bytes(), mcu.frequency(), capacitance_, 2.0);
    v_restore_ = v_hibernate_ + 0.4;
    mcu.add_comparator("VH", v_hibernate_, 0.0);
    mcu.add_comparator("VR", v_restore_, 0.0);
  }

  void on_boot(mcu::Mcu& mcu, Seconds t) override {
    if (mcu.vcc() >= v_restore_) {
      begin(mcu, t);
    } else {
      mcu.enter_wait(t);
    }
  }

  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override {
    if (event.name == "VH" && event.edge == circuit::Edge::falling &&
        mcu.state() == mcu::McuState::active) {
      mcu.request_save(event.time);
    } else if (event.name == "VR" && event.edge == circuit::Edge::rising &&
               (mcu.state() == mcu::McuState::wait ||
                mcu.state() == mcu::McuState::sleep)) {
      begin(mcu, event.time);
    }
  }

  void on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary, Seconds t) override {
    // The eager part: a background snapshot every background_period_ while
    // the supply is comfortably high.
    if (boundary == workloads::Boundary::function &&
        t - last_background_save_ > background_period_ && mcu.vcc() > v_restore_) {
      last_background_save_ = t;
      ++background_saves_;
      mcu.request_save(t);
    }
  }

  void on_save_complete(mcu::Mcu& mcu, Seconds t) override {
    if (mcu.vcc() >= v_restore_) {
      mcu.resume_execution(t);  // background save or recovered supply
    } else {
      mcu.enter_sleep(t);
    }
  }

  [[nodiscard]] std::string name() const override { return "eager-hibernus"; }
  [[nodiscard]] int background_saves() const noexcept { return background_saves_; }

 private:
  void begin(mcu::Mcu& mcu, Seconds t) {
    if (mcu.ram_valid()) {
      mcu.resume_execution(t);
    } else if (mcu.nvm().has_valid_snapshot()) {
      mcu.request_restore(t);
    } else {
      mcu.start_program_fresh(t);
    }
  }

  Farads capacitance_;
  Seconds background_period_;
  Volts v_hibernate_ = 0.0;
  Volts v_restore_ = 0.0;
  Seconds last_background_save_ = -1e9;
  int background_saves_ = 0;
};

}  // namespace

int main() {
  using namespace edc;

  workloads::Crc32Program golden_program(128 * 1024, 7);
  const std::uint64_t golden = workloads::golden_digest(golden_program);

  auto policy = std::make_unique<EagerHibernusPolicy>(22e-6, 50e-3);
  const auto* policy_view = policy.get();

  auto system = core::SystemBuilder()
                    .voltage_source(std::make_unique<trace::SquareVoltageSource>(
                        3.3, 10.0, 0.4, 0.0, 50.0))
                    .capacitance(22e-6)
                    .bleed(10000.0)
                    .program(std::make_unique<workloads::Crc32Program>(128 * 1024, 7))
                    .policy(std::move(policy))
                    .build();

  const auto result = system.run(20.0);

  std::printf("custom policy: %s\n\n", system.policy_name().c_str());
  std::printf("completed:         %s\n", result.mcu.completed ? "yes" : "no");
  std::printf("total snapshots:   %llu (background: %d)\n",
              static_cast<unsigned long long>(result.mcu.saves_completed),
              policy_view->background_saves());
  std::printf("restores:          %llu\n",
              static_cast<unsigned long long>(result.mcu.restores));
  std::printf("re-executed work:  %.2f Mcycles\n",
              result.mcu.reexecuted_cycles / 1e6);
  const bool exact =
      result.mcu.completed && system.program().result_digest() == golden;
  std::printf("result exact:      %s\n", exact ? "yes" : "NO");
  return exact ? 0 : 1;
}
