// Power-neutral performance scaling on a big.LITTLE MPSoC ([11], §II.C).
//
// An eight-core MPSoC runs a ray tracer directly from a harvested power
// budget. The governor continuously selects the Pareto-optimal operating
// point (core hot-plug x per-cluster DVFS) whose power fits the
// instantaneous budget — performance gracefully rises and degrades with
// the environment instead of the system browning out (Eq 3).
//
// Build & run:  ./power_neutral_mpsoc
#include <cmath>
#include <cstdio>

#include "edc/neutral/mpsoc.h"

int main() {
  using namespace edc;

  neutral::BigLittleMpsoc mpsoc;
  neutral::MpsocPowerNeutralGovernor governor(mpsoc);

  // A gusty harvested-power budget: 2 W floor, gust peaks near 14 W.
  const Seconds control_period = 0.1;
  std::vector<Watts> budget;
  for (int i = 0; i < 600; ++i) {
    const double t = i * control_period;
    const double gust = std::exp(-std::pow(std::fmod(t, 20.0) - 8.0, 2) / 8.0);
    budget.push_back(2.0 + 12.0 * gust);
  }

  const auto tracking = governor.track(budget, control_period);

  std::printf("power-neutral MPSoC: 60 s of gusty harvest, %zu control steps\n\n",
              budget.size());
  std::printf("%-8s %-12s %-12s %-10s %s\n", "t (s)", "budget (W)", "chosen (W)",
              "fps", "operating point");
  for (std::size_t i = 0; i < tracking.times.size(); i += 60) {
    const auto decision = governor.select(tracking.budget[i]);
    std::printf("%-8.1f %-12.2f %-12.2f %-10.4f %s\n", tracking.times[i],
                tracking.budget[i], tracking.power[i], tracking.fps[i],
                decision.chosen.point.label().c_str());
  }

  std::printf("\nframes rendered:        %.1f\n", tracking.frames_rendered);
  std::printf("time below lowest point: %.1f%%\n",
              tracking.infeasible_fraction * 100.0);

  // What a fixed configuration would have done: the largest point that fits
  // the *minimum* budget (never browns out), and the full-machine point
  // (browns out whenever the budget sags below it).
  double min_budget = 1e9;
  for (Watts w : budget) min_budget = std::min(min_budget, w);
  const auto conservative = governor.select(min_budget);
  double conservative_frames =
      conservative.chosen.fps * control_period * static_cast<double>(budget.size());
  std::printf("\nfixed conservative config (%s): %.1f frames (%.0f%% of power-neutral)\n",
              conservative.chosen.point.label().c_str(), conservative_frames,
              100.0 * conservative_frames / tracking.frames_rendered);
  return tracking.frames_rendered > conservative_frames ? 0 : 1;
}
