// sweep_cache — inspect, prune and verify an on-disk sweep cache
// (sweep::Cache; ROADMAP "Cache eviction & inspection").
//
//   sweep_cache stats <dir>
//       Per version directory (<dir>/v<S>-<R>): entry count, total bytes,
//       and the age span of the entries (by mtime, which load() refreshes
//       on every hit — so "age" means time since last *use*).
//
//   sweep_cache prune <dir> --max-bytes <N>
//       Deletes least-recently-used entries (oldest mtime first, across
//       all version directories) until the cache fits in N bytes. Entries
//       from stale format versions age out first in practice because
//       nothing refreshes them.
//
//   sweep_cache fsck <dir> [--delete | --quarantine]
//       Verifies every entry of the *current* format version: decodable
//       blocks, filename matching the FNV-1a-64 of the embedded canonical
//       key text, parseable stored result. Reports broken entries; with
//       --delete removes them, with --quarantine moves them aside (renamed
//       to <entry>.bad, the same self-healing rename Cache::load applies
//       on a corrupt read — bytes preserved for post-mortem, entry out of
//       the load/fsck/prune namespace). Entries under other v<S>-<R>
//       directories belong to other binaries and are skipped, not judged —
//       the versioned layout exists so releases can share one directory.
//       Healthy caches exit 0; corruption exits 1.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "edc/sweep/cache.h"

namespace fs = std::filesystem;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " stats <dir>\n"
            << "       " << argv0 << " prune <dir> --max-bytes <N>\n"
            << "       " << argv0 << " fsck <dir> [--delete | --quarantine]\n"
            << "Inspects (stats), LRU-evicts (prune) or verifies (fsck) an\n"
            << "on-disk sweep cache written by sweep::Cache. fsck --quarantine\n"
            << "renames broken entries to <entry>.bad instead of deleting them.\n";
  return 2;
}

struct Entry {
  fs::path path;
  std::uintmax_t bytes = 0;
  fs::file_time_type mtime;
};

/// All .edcres entries under every version directory of the cache root.
std::vector<Entry> collect_entries(const fs::path& root) {
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& item : fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec)) {
    if (!item.is_regular_file(ec)) continue;
    if (item.path().extension() != ".edcres") continue;
    Entry entry;
    entry.path = item.path();
    entry.bytes = item.file_size(ec);
    if (ec) continue;
    entry.mtime = item.last_write_time(ec);
    if (ec) continue;
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// Quarantined (.bad) files under a directory — load()/fsck self-healing
/// residue awaiting post-mortem or deletion.
std::size_t count_quarantined(const fs::path& root) {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& item : fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec)) {
    if (item.is_regular_file(ec) && item.path().extension() == ".bad") ++count;
  }
  return count;
}

double hours_since(fs::file_time_type mtime) {
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double, std::ratio<3600>>(age).count();
}

int cmd_stats(const fs::path& root) {
  std::error_code ec;
  if (!fs::exists(root, ec)) {
    std::cerr << "sweep_cache: no cache at '" << root.string() << "'\n";
    return 1;
  }
  std::uintmax_t total_bytes = 0;
  std::size_t total_entries = 0;
  std::cout << "cache " << root.string() << "\n";
  // One row per version directory (v<S>-<R>), so stale-format residue is
  // visible at a glance.
  std::vector<fs::path> versions;
  for (const auto& item : fs::directory_iterator(root, ec)) {
    if (item.is_directory() && item.path().filename().string().rfind("v", 0) == 0) {
      versions.push_back(item.path());
    }
  }
  std::sort(versions.begin(), versions.end());
  for (const auto& version : versions) {
    const auto entries = collect_entries(version);
    std::uintmax_t bytes = 0;
    double oldest_h = 0.0;
    double newest_h = std::numeric_limits<double>::infinity();
    for (const auto& entry : entries) {
      bytes += entry.bytes;
      const double age = hours_since(entry.mtime);
      oldest_h = std::max(oldest_h, age);
      newest_h = std::min(newest_h, age);
    }
    total_bytes += bytes;
    total_entries += entries.size();
    std::cout << "  " << version.filename().string() << ": " << entries.size()
              << " entries, " << bytes << " bytes";
    if (!entries.empty()) {
      std::cout << ", last used between " << newest_h << "h and " << oldest_h
                << "h ago";
    }
    const std::size_t quarantined = count_quarantined(version);
    if (quarantined > 0) std::cout << ", " << quarantined << " quarantined";
    std::cout << "\n";
  }
  std::cout << "  total: " << total_entries << " entries, " << total_bytes
            << " bytes";
  const std::size_t quarantined = count_quarantined(root);
  if (quarantined > 0) std::cout << ", " << quarantined << " quarantined";
  std::cout << "\n";
  return 0;
}

int cmd_prune(const fs::path& root, std::uintmax_t max_bytes) {
  auto entries = collect_entries(root);
  std::uintmax_t total = 0;
  for (const auto& entry : entries) total += entry.bytes;
  if (total <= max_bytes) {
    std::cout << "sweep_cache: " << total << " bytes <= " << max_bytes
              << ", nothing to prune\n";
    return 0;
  }
  // Least recently used first (load() refreshes mtime on every hit).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::size_t removed = 0;
  std::uintmax_t freed = 0;
  for (const auto& entry : entries) {
    if (total - freed <= max_bytes) break;
    std::error_code ec;
    if (fs::remove(entry.path, ec) && !ec) {
      freed += entry.bytes;
      ++removed;
    }
  }
  std::cout << "sweep_cache: pruned " << removed << " entries, freed " << freed
            << " bytes (" << (total - freed) << " bytes remain)\n";
  return 0;
}

enum class FsckAction { kReport, kDelete, kQuarantine };

int cmd_fsck(const fs::path& root, FsckAction action) {
  // Only the current format version's entries can be judged by this
  // binary; other v<S>-<R> directories are counted but left alone.
  const edc::sweep::Cache cache(root);
  const fs::path current = cache.versioned_directory();
  std::size_t foreign = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(root, ec)) {
    if (item.is_directory(ec) && item.path() != current &&
        item.path().filename().string().rfind("v", 0) == 0) {
      foreign += collect_entries(item.path()).size();
    }
  }

  const auto entries = collect_entries(current);
  std::size_t broken = 0;
  for (const auto& entry : entries) {
    const std::string reason = edc::sweep::Cache::fsck_entry(entry.path);
    if (reason.empty()) continue;
    ++broken;
    std::cout << "BROKEN " << entry.path.string() << ": " << reason << "\n";
    if (action == FsckAction::kDelete) {
      std::error_code remove_ec;
      fs::remove(entry.path, remove_ec);
      if (remove_ec) {
        std::cout << "  (removal failed: " << remove_ec.message() << ")\n";
      }
    } else if (action == FsckAction::kQuarantine) {
      if (!edc::sweep::Cache::quarantine_entry(entry.path)) {
        std::cout << "  (quarantine failed)\n";
      }
    }
  }
  std::cout << "sweep_cache: fsck checked " << entries.size() << " entries, "
            << broken << " broken"
            << (broken == 0                         ? ""
                : action == FsckAction::kDelete     ? " (removed)"
                : action == FsckAction::kQuarantine ? " (quarantined)"
                                                    : "");
  if (foreign > 0) {
    std::cout << "; " << foreign << " entries under other format versions skipped";
  }
  std::cout << "\n";
  return broken == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string command = argv[1];
  const fs::path root = argv[2];

  if (command == "stats" && argc == 3) return cmd_stats(root);

  if (command == "prune") {
    if (argc != 5 || std::strcmp(argv[3], "--max-bytes") != 0) return usage(argv[0]);
    char* end = nullptr;
    const unsigned long long max_bytes = std::strtoull(argv[4], &end, 10);
    if (end == argv[4] || *end != '\0') {
      std::cerr << "sweep_cache: --max-bytes needs a non-negative integer, got '"
                << argv[4] << "'\n";
      return 2;
    }
    return cmd_prune(root, static_cast<std::uintmax_t>(max_bytes));
  }

  if (command == "fsck") {
    FsckAction action = FsckAction::kReport;
    if (argc == 4 && std::strcmp(argv[3], "--delete") == 0) {
      action = FsckAction::kDelete;
    } else if (argc == 4 && std::strcmp(argv[3], "--quarantine") == 0) {
      action = FsckAction::kQuarantine;
    } else if (argc != 3) {
      return usage(argv[0]);
    }
    return cmd_fsck(root, action);
  }

  return usage(argv[0]);
}
