// design_query — answer inverse design questions with sweep::Search.
//
// The paper's sizing questions ("what is the minimum storage that survives
// this harvester trace?", "how slow can the reader field pulse before the
// workload stops completing?") are inverse problems over one spec axis.
// This tool asks them directly: pick a base spec, a continuous axis, and a
// pass/fail objective, and the solver brackets the threshold in O(log)
// simulations instead of a dense sweep's O(grid).
//
//   design_query --demo
//       The minimum-capacitance question on the micro wind turbine
//       (5 V / 6 Hz, seeded gusts): smallest C in [1 uF, 1 mF] that rides
//       through the full 10 s trace with zero brownouts, to 1 uF.
//
//   design_query --spec system.spec --axis capacitance --lo 1e-6 --hi 1e-3 \
//                --objective brownouts --target 0 --tol 1e-6
//       The same question on any canonical spec (see spec/serialize.h;
//       "-" reads the spec from stdin, --print-spec emits the demo's).
//
// Axes: capacitance, bleed, t-end (horizon), frequency, duty, amplitude
// (the last three mutate the source in place and require a compatible
// source family). Objectives (positive = pass, negative = fail):
//
//   completed          +1 when the workload completed, -1 otherwise
//   brownouts          (target + 0.5) - brownouts     (pass: <= target)
//   forward-cycles     forward_cycles - target + 0.5  (pass: >= target)
//   final-energy       stored_final - target          (pass: >= target J)
//
// Integer objectives are biased half a count off zero so the crossing is a
// strict sign change (sweep::Search rejects sign-degenerate probes loudly).
//
// The default strategy is continuous interval contraction to --tol;
// --lattice N / --log-lattice N switch to discrete bisection over an
// N-point linear/geometric lattice (with neighbour verification, see
// sweep/search.h). --cache memoises probes on disk — a warm rerun of the
// same query simulates zero points — and --search-csv appends the
// "name,probes,simulated,warm,grid_points" telemetry row that
// tools/bench_gate --points-gate asserts in CI.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "edc/sim/table.h"
#include "edc/spec/fleet_spec.h"
#include "edc/spec/serialize.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/search.h"
#include "edc/trace/voltage_sources.h"

using namespace edc;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--demo | --fleet-demo | --spec FILE|-)\n"
      "          [--axis capacitance|bleed|t-end|frequency|duty|amplitude]\n"
      "          [--lo X --hi X] [--tol X | --lattice N | --log-lattice N]\n"
      "          [--objective completed|brownouts|forward-cycles|final-energy]\n"
      "          [--target X] [--max-probes N] [--cache DIR]\n"
      "          [--search-csv FILE] [--search-name NAME] [--print-spec]\n",
      argv0);
  return 2;
}

/// The --demo base spec: the Fig 1a micro wind turbine (5 V / 6 Hz peak,
/// seeded gusts) feeding a leaky node, CRC workload looping over the full
/// 10 s trace (stop_on_completion off — survival means riding out the
/// whole trace, not finishing one pass). Macro-stepping collapses the
/// outage tails the small-C candidates spend most of the trace in.
spec::SystemSpec demo_spec() {
  spec::SystemSpec s;
  trace::WindTurbineSource::Params wind;
  wind.peak_voltage = 5.0;
  wind.peak_frequency = 6.0;
  s.source = spec::WindSource{wind, 3, 10.0};
  s.storage.capacitance = 10e-6;
  s.storage.bleed = 10000.0;
  s.workload.kind = "crc";
  s.workload.seed = 9;
  s.sim.t_end = 10.0;
  s.sim.stop_on_completion = false;
  s.sim.macro_stepping = true;
  return s;
}

/// Mutates the source's fundamental frequency in place, whatever family
/// the spec carries (the axis requires a frequency-bearing source).
void set_source_frequency(spec::SystemSpec& s, double x) {
  if (auto* sine = std::get_if<spec::SineSource>(&s.source)) {
    sine->frequency = x;
  } else if (auto* square = std::get_if<spec::SquareSource>(&s.source)) {
    square->frequency = x;
  } else if (auto* wind = std::get_if<spec::WindSource>(&s.source)) {
    wind->params.peak_frequency = x;
  } else {
    throw std::invalid_argument(
        "--axis frequency needs a sine, square or wind source");
  }
}

void set_source_duty(spec::SystemSpec& s, double x) {
  if (auto* square = std::get_if<spec::SquareSource>(&s.source)) {
    square->duty = x;
  } else {
    throw std::invalid_argument("--axis duty needs a square source");
  }
}

void set_source_amplitude(spec::SystemSpec& s, double x) {
  if (auto* sine = std::get_if<spec::SineSource>(&s.source)) {
    sine->amplitude = x;
  } else if (auto* square = std::get_if<spec::SquareSource>(&s.source)) {
    square->high = x;
  } else if (auto* dc = std::get_if<spec::DcSource>(&s.source)) {
    dc->voltage = x;
  } else if (auto* wind = std::get_if<spec::WindSource>(&s.source)) {
    wind->params.peak_voltage = x;
  } else {
    throw std::invalid_argument(
        "--axis amplitude needs a sine, square, dc or wind source");
  }
}

sweep::SearchAxis make_axis(const std::string& name) {
  if (name == "capacitance") {
    return {"capacitance (F)",
            [](spec::SystemSpec& s, double x) { s.storage.capacitance = x; },
            [](double x) { return sim::Table::eng(x, "F", 1); }};
  }
  if (name == "bleed") {
    return {"bleed (Ohm)",
            [](spec::SystemSpec& s, double x) { s.storage.bleed = x; },
            {}};
  }
  if (name == "t-end") {
    return {"t_end (s)", [](spec::SystemSpec& s, double x) { s.sim.t_end = x; },
            {}};
  }
  if (name == "frequency") {
    return {"frequency (Hz)", set_source_frequency, {}};
  }
  if (name == "duty") {
    return {"duty", set_source_duty, {}};
  }
  if (name == "amplitude") {
    return {"amplitude (V)", set_source_amplitude, {}};
  }
  throw std::invalid_argument("unknown --axis '" + name + "'");
}

sweep::SearchObjective make_objective(const std::string& name, double target) {
  if (name == "completed") {
    return [](double, const std::vector<sim::SimResult>& rows) {
      return rows[0].mcu.completed ? 1.0 : -1.0;
    };
  }
  if (name == "brownouts") {
    return [target](double, const std::vector<sim::SimResult>& rows) {
      return (target + 0.5) - static_cast<double>(rows[0].mcu.brownouts);
    };
  }
  if (name == "forward-cycles") {
    return [target](double, const std::vector<sim::SimResult>& rows) {
      return rows[0].mcu.forward_cycles - target + 0.5;
    };
  }
  if (name == "final-energy") {
    return [target](double, const std::vector<sim::SimResult>& rows) {
      return rows[0].stored_final - target;
    };
  }
  throw std::invalid_argument("unknown --objective '" + name + "'");
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool fleet_demo = false;
  bool print_spec = false;
  const char* spec_path = nullptr;
  std::string axis_name = "capacitance";
  std::string objective_name = "brownouts";
  double target = 0.0;
  double lo = 1e-6;
  double hi = 1e-3;
  bool hi_overridden = false;
  double tol = 1e-6;
  long lattice_n = 0;
  bool log_lattice = false;
  long max_probes = 64;
  std::optional<sweep::Cache> cache;
  const char* search_csv_path = nullptr;
  const char* search_name = "DesignQuery";

  for (int i = 1; i < argc; ++i) {
    const auto number_flag = [&](const char* flag, double& out) {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return false;
      if (!parse_double(argv[i + 1], out)) {
        std::fprintf(stderr, "%s needs a number, got '%s'\n", flag, argv[i + 1]);
        std::exit(2);
      }
      ++i;
      return true;
    };
    double probes_value = 0.0;
    double lattice_value = 0.0;
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--fleet-demo") == 0) {
      fleet_demo = true;
    } else if (std::strcmp(argv[i], "--print-spec") == 0) {
      print_spec = true;
    } else if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (std::strcmp(argv[i], "--axis") == 0 && i + 1 < argc) {
      axis_name = argv[++i];
    } else if (std::strcmp(argv[i], "--objective") == 0 && i + 1 < argc) {
      objective_name = argv[++i];
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache.emplace(argv[++i]);
    } else if (std::strcmp(argv[i], "--search-csv") == 0 && i + 1 < argc) {
      search_csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--search-name") == 0 && i + 1 < argc) {
      search_name = argv[++i];
    } else if (number_flag("--hi", hi)) {
      hi_overridden = true;
    } else if (number_flag("--target", target) || number_flag("--lo", lo) ||
               number_flag("--tol", tol)) {
      // parsed in the condition
    } else if (number_flag("--max-probes", probes_value)) {
      max_probes = static_cast<long>(probes_value);
    } else if (number_flag("--lattice", lattice_value)) {
      lattice_n = static_cast<long>(lattice_value);
      log_lattice = false;
    } else if (number_flag("--log-lattice", lattice_value)) {
      lattice_n = static_cast<long>(lattice_value);
      log_lattice = true;
    } else {
      return usage(argv[0]);
    }
  }
  if ((demo ? 1 : 0) + (fleet_demo ? 1 : 0) + (spec_path != nullptr ? 1 : 0) != 1) {
    std::fprintf(stderr,
                 "pick exactly one of --demo / --fleet-demo / --spec FILE\n");
    return usage(argv[0]);
  }
  if (!(lo < hi) || !(tol > 0.0) || max_probes < 2 ||
      (lattice_n != 0 && lattice_n < 2)) {
    std::fprintf(stderr, "need --lo < --hi, --tol > 0, --max-probes >= 2 and "
                         "--lattice/--log-lattice >= 2\n");
    return 2;
  }
  if (log_lattice && !(lo > 0.0)) {
    std::fprintf(stderr, "--log-lattice needs --lo > 0\n");
    return 2;
  }

  if (fleet_demo) {
    // Fleet inverse question on the canonical shared-RF example
    // (spec::example_rf_fleet): the smallest node capacitance at which
    // *every* coupled node rides its staggered harvest windows to workload
    // completion. The fleet's node axis becomes the search's variant axis
    // — each probe simulates all N lowered nodes at the candidate C and
    // the objective sees all rows — so the solver brackets the fleet-wide
    // threshold in O(log) simulations, cacheable like any other probes.
    //
    // The example fleet is homogeneous apart from the lowered per-node
    // source, so the variants substitute only the source; the capacitance
    // axis (applied first, see sweep::Grid axis order) then composes with
    // every variant.
    const spec::FleetSpec fleet = spec::example_rf_fleet(3);
    if (!hi_overridden) {
      // The generic 1 mF ceiling is past the fleet's pass band (a huge
      // node never charges to v_on through its duty-cycled window inside
      // the horizon, so both endpoints would fail). Default to the example
      // node's own 220 uF — a known all-complete endpoint.
      hi = fleet.nodes[0].storage.capacitance;
    }
    std::vector<sweep::AxisValue> node_variants;
    node_variants.reserve(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      node_variants.push_back(
          {"node" + std::to_string(i),
           [source = spec::fleet_node_spec(fleet, i).source](
               spec::SystemSpec& s) { s.source = source; }});
    }

    sweep::SearchOptions options;
    options.max_probes = static_cast<std::size_t>(max_probes);
    if (cache.has_value()) options.runner.cache = &*cache;

    try {
      sweep::Search search(
          fleet.nodes[0], make_axis("capacitance"), "node", node_variants,
          [](double, const std::vector<sim::SimResult>& rows) {
            // +1 when every node completed, -1 as soon as one did not:
            // sign-rising in C (more storage rides longer window gaps).
            for (const sim::SimResult& row : rows) {
              if (!row.mcu.completed) return -1.0;
            }
            return 1.0;
          },
          options);

      // Geometric capacitance lattice, 16 cells across [lo, hi].
      std::vector<double> lattice;
      const long n = lattice_n > 0 ? lattice_n : 17;
      lattice.reserve(static_cast<std::size_t>(n));
      for (long i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(n - 1);
        lattice.push_back(lo * std::pow(hi / lo, t));
      }
      const std::size_t dense_points = lattice.size() * fleet.size();
      const sweep::SearchOutcome outcome = search.bracket_on(lattice);

      sim::Table table({"probe", "capacitance", "nodes completed", "objective",
                        "origin"});
      for (std::size_t i = 0; i < outcome.probes.size(); ++i) {
        const sweep::SearchProbe& probe = outcome.probes[i];
        std::size_t completed = 0;
        for (const sim::SimResult& row : probe.rows) {
          completed += row.mcu.completed ? 1 : 0;
        }
        table.add_row({std::to_string(i), sim::Table::eng(probe.x, "F", 1),
                       std::to_string(completed) + "/" +
                           std::to_string(probe.rows.size()),
                       sim::Table::num(probe.value, 0),
                       probe.warm == 0 ? "fresh"
                                       : (probe.simulated == 0 ? "warm" : "mixed")});
      }
      std::printf("=== fleet design query: min capacitance completing all %zu "
                  "shared-RF nodes ===\n\n",
                  fleet.size());
      table.print(std::cout);

      std::printf("\nthreshold bracket: some node fails at %s, all complete at "
                  "%s\n",
                  sim::Table::eng(outcome.lo, "F", 1).c_str(),
                  sim::Table::eng(outcome.hi, "F", 1).c_str());
      std::printf("simulated %zu of %zu dense-equivalent points, %zu replayed "
                  "warm (%zu probes)\n",
                  outcome.simulated_points(), dense_points,
                  outcome.warm_points(), outcome.probe_count());

      if (search_csv_path != nullptr) {
        sweep::append_search_telemetry(search_csv_path, search_name, search,
                                       dense_points);
        std::fprintf(stderr, "search telemetry -> %s (%s)\n", search_csv_path,
                     search_name);
      }
    } catch (const sweep::SearchError& error) {
      std::fprintf(stderr, "search failed (%s): %s\n",
                   sweep::search_error_kind_name(error.kind()), error.what());
      return 1;
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 2;
    }

    if (cache.has_value()) {
      const sweep::CacheStats stats = cache->stats();
      std::fprintf(stderr, "cache: %llu hits, %llu misses, %llu stored\n",
                   static_cast<unsigned long long>(stats.hits),
                   static_cast<unsigned long long>(stats.misses),
                   static_cast<unsigned long long>(stats.stores));
    }
    return 0;
  }

  spec::SystemSpec base;
  if (demo) {
    base = demo_spec();
  } else {
    std::string text;
    if (std::strcmp(spec_path, "-") == 0) {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      text = buffer.str();
    } else {
      std::ifstream in(spec_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open spec '%s'\n", spec_path);
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
    try {
      base = spec::parse_spec(text);
    } catch (const spec::SpecFormatError& error) {
      std::fprintf(stderr, "bad spec '%s': %s\n", spec_path, error.what());
      return 1;
    }
  }
  if (print_spec) {
    std::cout << spec::serialize(base);
    return 0;
  }

  sweep::SearchOptions options;
  options.max_probes = static_cast<std::size_t>(max_probes);
  if (cache.has_value()) options.runner.cache = &*cache;

  sweep::SearchOutcome outcome;
  std::size_t dense_points = 0;
  try {
    sweep::Search search(base, make_axis(axis_name),
                         make_objective(objective_name, target), options);
    if (lattice_n > 0) {
      std::vector<double> lattice;
      lattice.reserve(static_cast<std::size_t>(lattice_n));
      for (long i = 0; i < lattice_n; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(lattice_n - 1);
        lattice.push_back(log_lattice ? lo * std::pow(hi / lo, t)
                                      : lo + (hi - lo) * t);
      }
      dense_points = lattice.size();
      outcome = search.bracket_on(lattice);
    } else {
      // Dense-equivalent resolution: the grid a tolerance-matched linear
      // sweep would need (one point per tol-sized cell, inclusive ends).
      dense_points =
          static_cast<std::size_t>(std::ceil((hi - lo) / tol)) + 1;
      outcome = search.contract(lo, hi, tol);
    }

    sim::Table table({"probe", axis_name, "objective", "origin"});
    for (std::size_t i = 0; i < outcome.probes.size(); ++i) {
      const sweep::SearchProbe& probe = outcome.probes[i];
      table.add_row({std::to_string(i), sim::Table::num(probe.x, 9),
                     sim::Table::num(probe.value, 3),
                     probe.warm == 0 ? "fresh"
                                     : (probe.simulated == 0 ? "warm" : "mixed")});
    }
    std::printf("=== design query: %s vs %s (objective %s, target %g) ===\n\n",
                objective_name.c_str(), axis_name.c_str(), objective_name.c_str(),
                target);
    table.print(std::cout);

    const bool pass_high = outcome.direction > 0;
    std::printf("\nthreshold bracket: fails at %s = %.9g, passes at %.9g\n",
                axis_name.c_str(), pass_high ? outcome.lo : outcome.hi,
                pass_high ? outcome.hi : outcome.lo);
    std::printf("simulated %zu of %zu dense-equivalent points, %zu replayed "
                "warm (%zu probes)\n",
                outcome.simulated_points(), dense_points, outcome.warm_points(),
                outcome.probe_count());

    if (search_csv_path != nullptr) {
      sweep::append_search_telemetry(search_csv_path, search_name, search,
                                     dense_points);
      std::fprintf(stderr, "search telemetry -> %s (%s)\n", search_csv_path,
                   search_name);
    }
  } catch (const sweep::SearchError& error) {
    std::fprintf(stderr, "search failed (%s): %s\n",
                 sweep::search_error_kind_name(error.kind()), error.what());
    return 1;
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }

  if (cache.has_value()) {
    const sweep::CacheStats stats = cache->stats();
    std::fprintf(stderr, "cache: %llu hits, %llu misses, %llu stored\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.stores));
  }
  return 0;
}
