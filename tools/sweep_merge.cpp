// sweep_merge — reassembles per-shard sweep CSVs into grid order.
//
//   sweep_merge <output.csv|-> <shard0.csv> <shard1.csv> ...
//
// The inputs are the files written by sweep::write_shard_csv (a bench's
// --shard k/N --csv mode); the output is byte-identical to the CSV an
// unsharded run of the same grid would have written. The merge is strict:
// every shard of the k/N partition must be present exactly once and the
// shards must agree on grid size and header, so a lost or duplicated
// shard fails the merge instead of silently truncating the table.
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "edc/sweep/report.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <output.csv|-> <shard.csv> [<shard.csv> ...]\n"
            << "Merges per-shard sweep CSVs (write_shard_csv / a bench's\n"
            << "--shard k/N --csv mode) into the byte stream of the unsharded\n"
            << "run. '-' writes to stdout.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);

  std::vector<std::string> shard_texts;
  shard_texts.reserve(static_cast<std::size_t>(argc - 2));
  for (int i = 2; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "sweep_merge: cannot open shard file '" << argv[i] << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    shard_texts.push_back(buffer.str());
  }

  std::ostringstream merged;
  try {
    edc::sweep::merge_shard_csvs(shard_texts, merged);
  } catch (const std::invalid_argument& error) {
    std::cerr << "sweep_merge: " << error.what() << '\n';
    return 1;
  }

  const std::string out_name = argv[1];
  if (out_name == "-") {
    std::cout << merged.str();
    return 0;
  }
  std::ofstream out(out_name, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "sweep_merge: cannot open output file '" << out_name << "'\n";
    return 1;
  }
  out << merged.str();
  if (!out.good()) {
    std::cerr << "sweep_merge: write to '" << out_name << "' failed\n";
    return 1;
  }
  return 0;
}
