// sweep_served — the fault-tolerant sweep service daemon and its client
// (serve::Service / serve::Engine; ROADMAP "Sweep service").
//
//   sweep_served serve <port> [--cache <dir>] [--workers N] [--queue N]
//                [--timeout-ms X] [--deadline-ms X] [--max-attempts N]
//                [--port-file <path>]
//                [--fault-seed S --fault-read P --fault-truncate P
//                 --fault-write P --fault-rename P --fault-slow P
//                 --fault-slow-ms X --fault-kill P]
//       Binds 127.0.0.1:<port> (0 = ephemeral), prints `listening <port>`
//       and serves until a `shutdown` op arrives. The --fault-* knobs arm
//       a deterministic sweep::FaultInjector across the cache and runner
//       seams — chaos testing a live daemon is one flag set, not a fork
//       of the code.
//
//   sweep_served request <port> [--deadline-ms X] <spec-file>...
//       Sends the canonical spec texts in the given files as one `run`
//       request; prints each row as `row <i> <bytes>` + raw block to
//       stdout and the per-request tallies to stderr.
//
//   sweep_served stats|ping|shutdown <port>
//       The matching one-shot ops.
//
//   sweep_served demo-spec <index>
//       Prints the canonical spec text of demo point <index> (a cheap
//       square-supply checkpointing system; the family request storms and
//       fan-out tests feed the service).
//
//   sweep_served smoke [--dir <work-dir>]
//       The acceptance storm (ctest `service_smoke`): concurrent cold +
//       warm + duplicate requests against a daemon under a seeded fault
//       schedule (injected cache read/truncate/write/rename errors, slow
//       points past the watchdog timeout, killed workers). Asserts every
//       response is byte-identical to a clean serial Runner::run, the
//       chaos really fired (nonzero quarantines / retries / kills /
//       requeues), and a healed warm pass answers everything from cache
//       with zero simulations. Exits 0 only if all of it holds.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "edc/serve/service.h"
#include "edc/sim/result_io.h"
#include "edc/spec/serialize.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/fault_injector.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

namespace fs = std::filesystem;
using namespace edc;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " serve <port> [--cache <dir>] [options]\n"
      << "       " << argv0 << " request <port> [--deadline-ms X] <spec-file>...\n"
      << "       " << argv0 << " stats|ping|shutdown <port>\n"
      << "       " << argv0 << " demo-spec <index>\n"
      << "       " << argv0 << " smoke [--dir <work-dir>]\n"
      << "Fault-tolerant sweep service daemon over the on-disk sweep cache.\n"
      << "serve options: --workers N --queue N --timeout-ms X --deadline-ms X\n"
      << "  --max-attempts N --port-file <path> --fault-seed S --fault-read P\n"
      << "  --fault-truncate P --fault-write P --fault-rename P --fault-slow P\n"
      << "  --fault-slow-ms X --fault-kill P\n";
  return 2;
}

/// Demo point family: the cheap-but-complete system the cache tests use
/// (square supply, real checkpointing, short horizon), fanned out over
/// capacitance and workload seed so every index is a distinct cache key.
spec::SystemSpec demo_spec(std::uint64_t index) {
  spec::SystemSpec s;
  s.source = spec::SquareSource{3.3, 25.0, 0.5, 0.0, 50.0};
  s.storage.capacitance = (index % 3 == 0)   ? 10e-6
                          : (index % 3 == 1) ? 22e-6
                                             : 47e-6;
  s.storage.bleed = 20000.0;
  s.workload.kind = "fft-small";
  s.workload.seed = 100 + index;
  s.sim.t_end = 0.3;
  return s;
}

/// Clean serial reference row: what a faultless, cacheless Runner::run of
/// this spec returns — the byte-identity oracle for every service path.
std::string serial_row(const spec::SystemSpec& s) {
  sweep::RunnerOptions options;
  options.threads = 1;
  const auto rows = sweep::Runner(options).run(sweep::Grid(s));
  return sim::serialize_result(rows.at(0));
}

bool parse_u16(const char* text, std::uint16_t* out) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value > 65535) return false;
  *out = static_cast<std::uint16_t>(value);
  return true;
}

std::uint64_t stat_of(const std::string& stats_text, const std::string& key) {
  std::istringstream in(stats_text);
  std::string line;
  const std::string prefix = key + ' ';
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      return std::strtoull(line.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return 0;
}

int cmd_simple_op(std::uint16_t port, serve::Request::Op op) {
  serve::Request request;
  request.op = op;
  std::string error;
  const auto response = serve::call_service(port, request, &error);
  if (!response) {
    std::cerr << "sweep_served: " << error << "\n";
    return 1;
  }
  if (response->status != serve::Response::Status::kOk) {
    std::cerr << "sweep_served: " << response->error << "\n";
    return 1;
  }
  std::cout << response->stats_text;
  return 0;
}

int cmd_request(std::uint16_t port, double deadline_ms,
                const std::vector<std::string>& files) {
  serve::Request request;
  request.op = serve::Request::Op::kRun;
  request.deadline_ms = deadline_ms;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "sweep_served: cannot read '" << file << "'\n";
      return 2;
    }
    std::ostringstream bytes;
    bytes << in.rdbuf();
    request.points.push_back(bytes.str());
  }
  std::string error;
  const auto response = serve::call_service(port, request, &error);
  if (!response) {
    std::cerr << "sweep_served: " << error << "\n";
    return 1;
  }
  if (response->status == serve::Response::Status::kBusy) {
    std::cerr << "sweep_served: service busy (bounded queue full)\n";
    return 3;
  }
  if (response->status != serve::Response::Status::kOk) {
    std::cerr << "sweep_served: " << response->error << "\n";
    return 1;
  }
  for (std::size_t i = 0; i < response->rows.size(); ++i) {
    std::cout << "row " << i << ' ' << response->rows[i].size() << '\n'
              << response->rows[i];
  }
  std::cerr << response->stats_text;
  return 0;
}

int cmd_serve(std::uint16_t port, int argc, char** argv, int first_option) {
  fs::path cache_dir;
  fs::path port_file;
  serve::ServiceOptions options;
  sweep::FaultPlan plan;
  bool faulted = false;

  for (int i = first_option; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sweep_served: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = value();
    if (v == nullptr) return 2;
    if (flag == "--cache") cache_dir = v;
    else if (flag == "--port-file") port_file = v;
    else if (flag == "--workers") options.request_workers = std::atoi(v);
    else if (flag == "--queue") options.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    else if (flag == "--timeout-ms") options.point_timeout_ms = std::atof(v);
    else if (flag == "--deadline-ms") options.default_deadline_ms = std::atof(v);
    else if (flag == "--max-attempts") options.max_attempts = std::atoi(v);
    else if (flag == "--fault-seed") { plan.seed = std::strtoull(v, nullptr, 10); faulted = true; }
    else if (flag == "--fault-read") { plan.read_error = std::atof(v); faulted = true; }
    else if (flag == "--fault-truncate") { plan.truncate_read = std::atof(v); faulted = true; }
    else if (flag == "--fault-write") { plan.write_error = std::atof(v); faulted = true; }
    else if (flag == "--fault-rename") { plan.rename_error = std::atof(v); faulted = true; }
    else if (flag == "--fault-slow") { plan.slow_point = std::atof(v); faulted = true; }
    else if (flag == "--fault-slow-ms") { plan.slow_millis = std::atof(v); faulted = true; }
    else if (flag == "--fault-kill") { plan.kill_worker = std::atof(v); faulted = true; }
    else {
      std::cerr << "sweep_served: unknown flag '" << flag << "'\n";
      return 2;
    }
  }

  std::optional<sweep::Cache> cache;
  if (!cache_dir.empty()) cache.emplace(cache_dir);
  std::optional<sweep::FaultInjector> injector;
  if (faulted) injector.emplace(plan);
  if (cache && injector) cache->set_fault_injector(&*injector);
  options.cache = cache ? &*cache : nullptr;
  options.fault_injector = injector ? &*injector : nullptr;

  serve::Service service(options, port);
  service.start();
  std::cout << "listening " << service.port() << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << service.port() << "\n";
  }
  service.wait();
  std::cout << "stopped\n";
  return 0;
}

// ---- smoke ---------------------------------------------------------------

struct SmokeFailure {
  std::mutex mutex;
  std::vector<std::string> reasons;
  void add(const std::string& reason) {
    const std::lock_guard<std::mutex> lock(mutex);
    reasons.push_back(reason);
  }
  [[nodiscard]] bool failed() {
    const std::lock_guard<std::mutex> lock(mutex);
    return !reasons.empty();
  }
};

/// Sends one run request for the demo indices in `subset`, retrying busy
/// rejections, and byte-checks every row against the serial references.
void storm_request(std::uint16_t port, const std::vector<std::uint64_t>& subset,
                   const std::vector<std::string>& point_texts,
                   const std::vector<std::string>& reference_rows,
                   SmokeFailure* failures) {
  serve::Request request;
  request.op = serve::Request::Op::kRun;
  for (const std::uint64_t i : subset) request.points.push_back(point_texts[i]);
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::string error;
    const auto response = serve::call_service(port, request, &error);
    if (!response) {
      failures->add("transport failure: " + error);
      return;
    }
    if (response->status == serve::Response::Status::kBusy) {
      // Loud backpressure: back off briefly and retry the whole request.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    if (response->status != serve::Response::Status::kOk) {
      failures->add("request failed: " + response->error);
      return;
    }
    if (response->rows.size() != subset.size()) {
      failures->add("row count mismatch");
      return;
    }
    for (std::size_t j = 0; j < subset.size(); ++j) {
      if (response->rows[j] != reference_rows[subset[j]]) {
        failures->add("row bytes diverged from clean serial reference (point " +
                      std::to_string(subset[j]) + ")");
        return;
      }
    }
    return;
  }
  failures->add("still busy after 200 attempts");
}

int cmd_smoke(const fs::path& work_dir) {
  std::cout << "service smoke: work dir " << work_dir.string() << "\n";
  fs::remove_all(work_dir);
  fs::create_directories(work_dir);

  constexpr std::uint64_t kPoints = 12;
  std::vector<std::string> point_texts;
  std::vector<std::string> reference_rows;
  for (std::uint64_t i = 0; i < kPoints; ++i) {
    const spec::SystemSpec s = demo_spec(i);
    point_texts.push_back(spec::serialize(s));
    reference_rows.push_back(serial_row(s));
  }
  std::cout << "service smoke: " << kPoints << " reference rows simulated\n";

  // ---- Phase A: request storm under a seeded fault schedule. ----
  sweep::Cache cache(work_dir / "cache");
  sweep::FaultPlan plan;
  plan.seed = 42;
  plan.read_error = 0.20;
  plan.truncate_read = 0.20;
  plan.write_error = 0.15;
  plan.rename_error = 0.10;
  plan.slow_point = 0.10;
  plan.slow_millis = 40.0;
  plan.kill_worker = 0.30;
  sweep::FaultInjector chaos(plan);
  cache.set_fault_injector(&chaos);

  SmokeFailure failures;
  std::uint64_t storm_requests = 0;
  {
    serve::ServiceOptions options;
    options.cache = &cache;
    options.fault_injector = &chaos;
    options.request_workers = 3;
    options.sim_threads = 1;
    options.queue_capacity = 8;
    options.point_timeout_ms = 500.0;
    options.max_attempts = 6;
    serve::Service service(options, 0);
    service.start();
    const std::uint16_t port = service.port();

    // Four concurrent clients, overlapping and duplicated subsets: cold
    // points, warm re-reads, and identical in-flight points all at once.
    const std::vector<std::vector<std::uint64_t>> subsets = {
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
        {0, 2, 4, 6, 8, 10, 0, 2},          // duplicates inside one request
        {1, 3, 5, 7, 9, 11},
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},  // duplicate of client 0
    };
    std::vector<std::thread> clients;
    for (const auto& subset : subsets) {
      clients.emplace_back([&, subset] {
        for (int round = 0; round < 3; ++round) {
          storm_request(port, subset, point_texts, reference_rows, &failures);
        }
      });
    }
    for (auto& client : clients) client.join();
    storm_requests = subsets.size() * 3;

    // The schedule is deterministic, but "the storm stormed" must hold by
    // construction, not by luck: keep poking until a worker kill and a
    // quarantine have demonstrably fired (bounded, loud on exhaustion).
    std::uint64_t extra = kPoints;
    while (chaos.counters().worker_kills == 0 && extra < kPoints + 40 &&
           !failures.failed()) {
      const spec::SystemSpec s = demo_spec(extra);
      point_texts.push_back(spec::serialize(s));
      reference_rows.push_back(serial_row(s));
      storm_request(port, {extra}, point_texts, reference_rows, &failures);
      ++extra;
    }
    for (int round = 0; round < 40 && cache.stats().quarantined == 0 &&
                        !failures.failed();
         ++round) {
      storm_request(port, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, point_texts,
                    reference_rows, &failures);
    }

    const serve::ServiceStats stats = service.stats();
    const sweep::FaultCounters counters = chaos.counters();
    std::cout << "service smoke: storm done — " << stats.requests
              << " requests, " << stats.simulated << " simulated, "
              << stats.warm_hits << " warm, " << stats.merged << " merged, "
              << stats.requeued << " requeued, " << stats.retries
              << " retries\n";
    std::cout << "service smoke: chaos — " << counters.read_errors
              << " read errors, " << counters.truncated_reads
              << " truncated reads, " << counters.write_errors
              << " write errors, " << counters.rename_errors
              << " rename errors, " << counters.slow_points << " slow points, "
              << counters.worker_kills << " worker kills; "
              << cache.stats().quarantined << " quarantined\n";
    if (counters.worker_kills == 0) failures.add("no worker kill ever fired");
    if (cache.stats().quarantined == 0) failures.add("no entry was quarantined");
    if (stats.retries == 0) failures.add("no simulation retry was recorded");
    if (stats.requests < storm_requests) {
      failures.add("service under-counted its requests");
    }
    // Service (and its engine/watchdog) shut down at scope exit.
  }

  // ---- Phase B: healed warm pass — cache answers everything, the
  // simulator is never touched. ----
  cache.set_fault_injector(nullptr);
  if (!failures.failed()) {
    serve::ServiceOptions options;
    options.cache = &cache;
    options.request_workers = 2;
    options.queue_capacity = 8;
    serve::Service service(options, 0);
    service.start();

    serve::Request request;
    request.op = serve::Request::Op::kRun;
    for (std::uint64_t i = 0; i < kPoints; ++i) {
      request.points.push_back(point_texts[i]);
    }
    std::string error;
    // Backfill: repair any holes the write/rename faults left behind.
    auto backfill = serve::call_service(service.port(), request, &error);
    if (!backfill || backfill->status != serve::Response::Status::kOk) {
      failures.add("warm backfill request failed");
    }
    const auto warm = serve::call_service(service.port(), request, &error);
    if (!warm || warm->status != serve::Response::Status::kOk) {
      failures.add("warm request failed");
    } else {
      const std::uint64_t warm_hits = stat_of(warm->stats_text, "warm");
      const std::uint64_t simulated = stat_of(warm->stats_text, "simulated");
      std::cout << "service smoke: warm pass — " << warm_hits << " warm, "
                << simulated << " simulated\n";
      if (warm_hits != kPoints || simulated != 0) {
        failures.add("warm pass touched the simulator (warm " +
                     std::to_string(warm_hits) + ", simulated " +
                     std::to_string(simulated) + ")");
      }
      for (std::uint64_t i = 0; i < kPoints; ++i) {
        if (warm->rows[i] != reference_rows[i]) {
          failures.add("warm row " + std::to_string(i) + " diverged");
          break;
        }
      }
    }
  }

  // ---- Phase C: watchdog requeue — a follower stuck behind a slow owner
  // simulates the point itself instead of hanging. ----
  if (!failures.failed()) {
    bool requeued = false;
    for (int round = 0; round < 3 && !requeued; ++round) {
      const fs::path slow_dir = work_dir / ("slow-" + std::to_string(round));
      sweep::Cache slow_cache(slow_dir);
      sweep::FaultPlan slow_plan;
      slow_plan.seed = 7;
      slow_plan.slow_point = 1.0;
      slow_plan.slow_millis = 250.0;
      sweep::FaultInjector slow_chaos(slow_plan);
      slow_cache.set_fault_injector(&slow_chaos);
      serve::ServiceOptions options;
      options.cache = &slow_cache;
      options.fault_injector = &slow_chaos;
      options.point_timeout_ms = 80.0;
      serve::Engine engine(options);

      const std::uint64_t index = 200 + static_cast<std::uint64_t>(round);
      const spec::SystemSpec s = demo_spec(index);
      const std::string text = spec::serialize(s);
      const std::string reference = serial_row(s);
      serve::Request request;
      request.op = serve::Request::Op::kRun;
      request.points.push_back(text);

      std::thread owner([&] {
        const auto response = engine.execute(request);
        if (response.status != serve::Response::Status::kOk ||
            response.rows.at(0) != reference) {
          failures.add("slow owner's row diverged");
        }
      });
      // Give the owner a head start so this thread follows its flight.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      const auto follower = engine.execute(request);
      owner.join();
      if (follower.status != serve::Response::Status::kOk ||
          follower.rows.at(0) != reference) {
        failures.add("requeued follower's row diverged");
      }
      requeued = engine.stats().requeued > 0;
    }
    if (!requeued) failures.add("no follower was ever requeued");
    else std::cout << "service smoke: watchdog requeue fired\n";
  }

  if (failures.failed()) {
    for (const std::string& reason : failures.reasons) {
      std::cerr << "service smoke FAILED: " << reason << "\n";
    }
    return 1;
  }
  fs::remove_all(work_dir);
  std::cout << "service smoke OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];

  if (command == "demo-spec") {
    if (argc != 3) return usage(argv[0]);
    const std::uint64_t index = std::strtoull(argv[2], nullptr, 10);
    std::cout << spec::serialize(demo_spec(index));
    return 0;
  }

  if (command == "smoke") {
    fs::path dir = fs::temp_directory_path() /
                   ("edc_serve_smoke_" + std::to_string(::getpid()));
    if (argc == 4 && std::strcmp(argv[2], "--dir") == 0) {
      dir = argv[3];
    } else if (argc != 2) {
      return usage(argv[0]);
    }
    try {
      return cmd_smoke(dir);
    } catch (const std::exception& e) {
      std::cerr << "service smoke FAILED: " << e.what() << "\n";
      return 1;
    }
  }

  if (argc < 3) return usage(argv[0]);
  std::uint16_t port = 0;
  if (!parse_u16(argv[2], &port)) {
    std::cerr << "sweep_served: bad port '" << argv[2] << "'\n";
    return 2;
  }

  if (command == "serve") return cmd_serve(port, argc, argv, 3);
  if (command == "stats") return cmd_simple_op(port, serve::Request::Op::kStats);
  if (command == "ping") return cmd_simple_op(port, serve::Request::Op::kPing);
  if (command == "shutdown") {
    return cmd_simple_op(port, serve::Request::Op::kShutdown);
  }
  if (command == "request") {
    double deadline_ms = 0.0;
    std::vector<std::string> files;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
        deadline_ms = std::atof(argv[++i]);
      } else {
        files.emplace_back(argv[i]);
      }
    }
    if (files.empty()) return usage(argv[0]);
    return cmd_request(port, deadline_ms, files);
  }

  return usage(argv[0]);
}
