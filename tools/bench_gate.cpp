// bench_gate — turns the perf-trajectory's recorded speedups into gates.
//
// Reads one or more google-benchmark JSON files (the BENCH_<pr>.json the
// CI perf job emits), pairs up the BM_MacroPair/<Name>_fine and
// BM_MacroPair/<Name>_macro entries, and asserts each named pair's
// fine/macro real-time ratio against a per-pair threshold:
//
//   bench_gate BENCH_6.json --gate Fig7Gapped=15 --gate Fig8WindSurvey=3
//
// --batch-gate does the same for the batched-sweep pairs
// BM_BatchPair/<Name>_scalar and _batch (sweep/batch.h), asserting the
// scalar/batch ratio — the SoA kernel's speedup on that grid class:
//
//   bench_gate BENCH_6.json --batch-gate Fig7Survey=2 --batch-gate Eq5Grid=1.2
//
// Exit status 0 iff every gated pair is present and at or above its
// threshold — so a quiescent-engine or batch-kernel speedup that silently
// regresses turns the CI job red instead of merely shrinking a number in
// an archived artifact. Multiple JSON files merge their entries (later
// files win), which lets a sharded benchmark run feed one gate invocation.
//
// The parser is deliberately minimal: it scans for the "name",
// "real_time" and "time_unit" keys of each benchmark object in the order
// google-benchmark emits them. Unknown pairs and non-BM_MacroPair entries
// are ignored.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Sample {
  double real_time = 0.0;
  std::string unit;
};

/// Extracts the JSON string that starts at text[pos] (pos at the opening
/// quote). No escape handling beyond \": benchmark names never need more.
std::string parse_string(const std::string& text, std::size_t pos) {
  std::string out;
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      out.push_back(text[++i]);
      continue;
    }
    if (text[i] == '"') break;
    out.push_back(text[i]);
  }
  return out;
}

/// Value of `"key": <scalar>` at/after `from` and before `until`.
/// Returns the raw scalar text ("" when absent).
std::string find_scalar(const std::string& text, const std::string& key,
                        std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return "";
  std::size_t i = text.find(':', at + needle.size());
  if (i == std::string::npos || i >= until) return "";
  ++i;
  while (i < until && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i < until && text[i] == '"') return parse_string(text, i);
  std::string out;
  while (i < until && text[i] != ',' && text[i] != '\n' && text[i] != '}') {
    out.push_back(text[i++]);
  }
  return out;
}

/// Collects name -> (real_time, unit) for every benchmark entry in the
/// google-benchmark JSON `text`.
void collect(const std::string& text, std::map<std::string, Sample>& out) {
  // Entries live in the "benchmarks" array; each starts with a "name" key.
  std::size_t at = text.find("\"benchmarks\"");
  if (at == std::string::npos) return;
  const std::string needle = "\"name\"";
  at = text.find(needle, at);
  while (at != std::string::npos) {
    const std::size_t next = text.find(needle, at + needle.size());
    const std::size_t until = next == std::string::npos ? text.size() : next;
    std::size_t q = text.find(':', at + needle.size());
    if (q == std::string::npos) break;
    q = text.find('"', q);
    if (q == std::string::npos || q >= until) break;
    const std::string name = parse_string(text, q);
    Sample sample;
    const std::string rt = find_scalar(text, "real_time", q, until);
    sample.unit = find_scalar(text, "time_unit", q, until);
    if (!rt.empty()) {
      char* end = nullptr;
      sample.real_time = std::strtod(rt.c_str(), &end);
      if (end != rt.c_str()) out[name] = sample;
    }
    at = next;
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BENCH.json [MORE.json ...] --gate Pair=MinRatio "
               "[--batch-gate Pair=MinRatio ...]\n"
               "  --gate       Pair names a BM_MacroPair/<Pair>_fine & _macro "
               "pair; asserts fine/macro >= MinRatio.\n"
               "  --batch-gate Pair names a BM_BatchPair/<Pair>_scalar & "
               "_batch pair; asserts scalar/batch >= MinRatio.\n",
               argv0);
  return 2;
}

}  // namespace

struct Gate {
  std::string pair;
  double min_ratio = 0.0;
  /// false: BM_MacroPair/<pair>_{fine,macro}; true:
  /// BM_BatchPair/<pair>_{scalar,batch}.
  bool batch = false;
};

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<Gate> gates;
  for (int i = 1; i < argc; ++i) {
    const bool is_gate = std::strcmp(argv[i], "--gate") == 0;
    const bool is_batch_gate = std::strcmp(argv[i], "--batch-gate") == 0;
    if ((is_gate || is_batch_gate) && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return usage(argv[0]);
      char* end = nullptr;
      const double min_ratio = std::strtod(spec.c_str() + eq + 1, &end);
      if (end == spec.c_str() + eq + 1 || *end != '\0' || !(min_ratio > 0.0)) {
        std::fprintf(stderr, "bad %s ratio: '%s'\n", argv[i - 1], spec.c_str());
        return 2;
      }
      gates.push_back({spec.substr(0, eq), min_ratio, is_batch_gate});
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty() || gates.empty()) return usage(argv[0]);

  std::map<std::string, Sample> samples;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    collect(text.str(), samples);
  }

  int failures = 0;
  for (const Gate& gate : gates) {
    // The slow (reference) leg over the fast (gated) leg, in both families.
    const char* prefix = gate.batch ? "BM_BatchPair/" : "BM_MacroPair/";
    const char* slow_suffix = gate.batch ? "_scalar" : "_fine";
    const char* fast_suffix = gate.batch ? "_batch" : "_macro";
    const auto slow = samples.find(prefix + gate.pair + slow_suffix);
    const auto fast = samples.find(prefix + gate.pair + fast_suffix);
    if (slow == samples.end() || fast == samples.end()) {
      std::printf("[FAIL] %-18s missing %s entry\n", gate.pair.c_str(),
                  slow == samples.end() ? slow_suffix : fast_suffix);
      ++failures;
      continue;
    }
    if (slow->second.unit != fast->second.unit) {
      std::printf("[FAIL] %-18s %s/%s time units differ (%s vs %s)\n",
                  gate.pair.c_str(), slow_suffix + 1, fast_suffix + 1,
                  slow->second.unit.c_str(), fast->second.unit.c_str());
      ++failures;
      continue;
    }
    if (!(fast->second.real_time > 0.0)) {
      std::printf("[FAIL] %-18s non-positive %s time\n", gate.pair.c_str(),
                  fast_suffix + 1);
      ++failures;
      continue;
    }
    const double ratio = slow->second.real_time / fast->second.real_time;
    const bool ok = ratio >= gate.min_ratio;
    std::printf("[%s] %-18s %8.2f %s %s / %8.2f %s %s = %6.2fx (gate %.2fx)\n",
                ok ? "PASS" : "FAIL", gate.pair.c_str(), slow->second.real_time,
                slow->second.unit.c_str(), slow_suffix + 1,
                fast->second.real_time, fast->second.unit.c_str(),
                fast_suffix + 1, ratio, gate.min_ratio);
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
