// bench_gate — turns the perf-trajectory's recorded speedups into gates.
//
// Reads one or more google-benchmark JSON files (the BENCH_<pr>.json the
// CI perf job emits), pairs up the BM_MacroPair/<Name>_fine and
// BM_MacroPair/<Name>_macro entries, and asserts each named pair's
// fine/macro real-time ratio against a per-pair threshold:
//
//   bench_gate BENCH_6.json --gate Fig7Gapped=15 --gate Fig8WindSurvey=3
//
// --batch-gate does the same for the batched-sweep pairs
// BM_BatchPair/<Name>_scalar and _batch (sweep/batch.h), asserting the
// scalar/batch ratio — the SoA kernel's speedup on that grid class:
//
//   bench_gate BENCH_6.json --batch-gate Fig7Survey=2 --batch-gate Eq5Grid=1.2
//
// --points-gate turns the solver-guided searches' probe accounting into
// gates: --points-csv FILE reads the search telemetry CSVs that
// eq5_crossover --solve / design_query emit
// ("name,probes,simulated,warm,grid_points", see sweep/search.h) and
// --points-gate Name=MaxPoints asserts the named search simulated at most
// MaxPoints cold points. MaxPoints may be 0 — the warm-rerun gate: a
// cached query must contract with zero simulations:
//
//   bench_gate --points-csv search.csv --points-gate Eq5Solve=24 \
//              --points-gate Eq5SolveWarm=0
//
// Exit status 0 iff every gated pair is present and at or above its
// threshold — so a quiescent-engine or batch-kernel speedup that silently
// regresses turns the CI job red instead of merely shrinking a number in
// an archived artifact. The same applies to a search that quietly starts
// probing half the grid. Multiple JSON files merge their entries (later
// files win), which lets a sharded benchmark run feed one gate invocation;
// multiple telemetry CSVs merge the same way (later rows win per name).
//
// The parser is deliberately minimal: it scans for the "name",
// "real_time" and "time_unit" keys of each benchmark object in the order
// google-benchmark emits them. Unknown pairs and non-BM_MacroPair entries
// are ignored.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Sample {
  double real_time = 0.0;
  std::string unit;
};

/// Extracts the JSON string that starts at text[pos] (pos at the opening
/// quote). No escape handling beyond \": benchmark names never need more.
std::string parse_string(const std::string& text, std::size_t pos) {
  std::string out;
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      out.push_back(text[++i]);
      continue;
    }
    if (text[i] == '"') break;
    out.push_back(text[i]);
  }
  return out;
}

/// Value of `"key": <scalar>` at/after `from` and before `until`.
/// Returns the raw scalar text ("" when absent).
std::string find_scalar(const std::string& text, const std::string& key,
                        std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return "";
  std::size_t i = text.find(':', at + needle.size());
  if (i == std::string::npos || i >= until) return "";
  ++i;
  while (i < until && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i < until && text[i] == '"') return parse_string(text, i);
  std::string out;
  while (i < until && text[i] != ',' && text[i] != '\n' && text[i] != '}') {
    out.push_back(text[i++]);
  }
  return out;
}

/// Collects name -> (real_time, unit) for every benchmark entry in the
/// google-benchmark JSON `text`.
void collect(const std::string& text, std::map<std::string, Sample>& out) {
  // Entries live in the "benchmarks" array; each starts with a "name" key.
  std::size_t at = text.find("\"benchmarks\"");
  if (at == std::string::npos) return;
  const std::string needle = "\"name\"";
  at = text.find(needle, at);
  while (at != std::string::npos) {
    const std::size_t next = text.find(needle, at + needle.size());
    const std::size_t until = next == std::string::npos ? text.size() : next;
    std::size_t q = text.find(':', at + needle.size());
    if (q == std::string::npos) break;
    q = text.find('"', q);
    if (q == std::string::npos || q >= until) break;
    const std::string name = parse_string(text, q);
    Sample sample;
    const std::string rt = find_scalar(text, "real_time", q, until);
    sample.unit = find_scalar(text, "time_unit", q, until);
    if (!rt.empty()) {
      char* end = nullptr;
      sample.real_time = std::strtod(rt.c_str(), &end);
      if (end != rt.c_str()) out[name] = sample;
    }
    at = next;
  }
}

/// One row of a sweep::Search telemetry CSV (sweep/search.h).
struct PointsRow {
  unsigned long long probes = 0;
  unsigned long long simulated = 0;
  unsigned long long warm = 0;
  unsigned long long grid_points = 0;
};

/// Parses a "name,probes,simulated,warm,grid_points" telemetry CSV into
/// `out` (later rows win per name). Loud failure on a malformed file — a
/// truncated telemetry row must fail the gate run, not skip the gate.
bool collect_points(const std::string& path,
                    std::map<std::string, PointsRow>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  if (!std::getline(in, line) ||
      line != "name,probes,simulated,warm,grid_points") {
    std::fprintf(stderr, "'%s' is not a search telemetry CSV (bad header)\n",
                 path.c_str());
    return false;
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos || comma == 0) {
      std::fprintf(stderr, "bad telemetry row in '%s': %s\n", path.c_str(),
                   line.c_str());
      return false;
    }
    PointsRow row;
    const char* cursor = line.c_str() + comma + 1;
    unsigned long long* fields[] = {&row.probes, &row.simulated, &row.warm,
                                    &row.grid_points};
    bool ok = true;
    for (std::size_t f = 0; f < 4 && ok; ++f) {
      char* end = nullptr;
      *fields[f] = std::strtoull(cursor, &end, 10);
      ok = end != cursor && (f == 3 ? *end == '\0' : *end == ',');
      cursor = end + 1;
    }
    if (!ok) {
      std::fprintf(stderr, "bad telemetry row in '%s': %s\n", path.c_str(),
                   line.c_str());
      return false;
    }
    out[line.substr(0, comma)] = row;
  }
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [BENCH.json ...] [--gate Pair=MinRatio ...] "
               "[--batch-gate Pair=MinRatio ...]\n"
               "          [--points-csv SEARCH.csv ...] "
               "[--points-gate Name=MaxPoints ...]\n"
               "  --gate       Pair names a BM_MacroPair/<Pair>_fine & _macro "
               "pair; asserts fine/macro >= MinRatio.\n"
               "  --batch-gate Pair names a BM_BatchPair/<Pair>_scalar & "
               "_batch pair; asserts scalar/batch >= MinRatio.\n"
               "  --points-csv reads a search telemetry CSV "
               "(name,probes,simulated,warm,grid_points).\n"
               "  --points-gate asserts the named search simulated <= "
               "MaxPoints cold points (0 = fully warm).\n",
               argv0);
  return 2;
}

}  // namespace

struct Gate {
  std::string pair;
  double min_ratio = 0.0;
  /// false: BM_MacroPair/<pair>_{fine,macro}; true:
  /// BM_BatchPair/<pair>_{scalar,batch}.
  bool batch = false;
};

struct PointsGate {
  std::string name;
  unsigned long long max_points = 0;
};

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> points_files;
  std::vector<Gate> gates;
  std::vector<PointsGate> points_gates;
  for (int i = 1; i < argc; ++i) {
    const bool is_gate = std::strcmp(argv[i], "--gate") == 0;
    const bool is_batch_gate = std::strcmp(argv[i], "--batch-gate") == 0;
    if ((is_gate || is_batch_gate) && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return usage(argv[0]);
      char* end = nullptr;
      const double min_ratio = std::strtod(spec.c_str() + eq + 1, &end);
      if (end == spec.c_str() + eq + 1 || *end != '\0' || !(min_ratio > 0.0)) {
        std::fprintf(stderr, "bad %s ratio: '%s'\n", argv[i - 1], spec.c_str());
        return 2;
      }
      gates.push_back({spec.substr(0, eq), min_ratio, is_batch_gate});
    } else if (std::strcmp(argv[i], "--points-csv") == 0 && i + 1 < argc) {
      points_files.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--points-gate") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return usage(argv[0]);
      char* end = nullptr;
      const unsigned long long max_points =
          std::strtoull(spec.c_str() + eq + 1, &end, 10);
      if (end == spec.c_str() + eq + 1 || *end != '\0') {
        std::fprintf(stderr, "bad --points-gate count: '%s'\n", spec.c_str());
        return 2;
      }
      points_gates.push_back({spec.substr(0, eq), max_points});
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (gates.empty() && points_gates.empty()) return usage(argv[0]);
  if (!gates.empty() && files.empty()) return usage(argv[0]);
  if (!points_gates.empty() && points_files.empty()) return usage(argv[0]);

  std::map<std::string, Sample> samples;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    collect(text.str(), samples);
  }
  std::map<std::string, PointsRow> points;
  for (const std::string& path : points_files) {
    if (!collect_points(path, points)) return 1;
  }

  int failures = 0;
  for (const PointsGate& gate : points_gates) {
    const auto row = points.find(gate.name);
    if (row == points.end()) {
      std::printf("[FAIL] %-18s missing telemetry row\n", gate.name.c_str());
      ++failures;
      continue;
    }
    const bool ok = row->second.simulated <= gate.max_points;
    std::printf("[%s] %-18s simulated %llu of %llu grid points in %llu probes "
                "(%llu warm; gate <= %llu)\n",
                ok ? "PASS" : "FAIL", gate.name.c_str(), row->second.simulated,
                row->second.grid_points, row->second.probes, row->second.warm,
                gate.max_points);
    if (!ok) ++failures;
  }
  for (const Gate& gate : gates) {
    // The slow (reference) leg over the fast (gated) leg, in both families.
    const char* prefix = gate.batch ? "BM_BatchPair/" : "BM_MacroPair/";
    const char* slow_suffix = gate.batch ? "_scalar" : "_fine";
    const char* fast_suffix = gate.batch ? "_batch" : "_macro";
    const auto slow = samples.find(prefix + gate.pair + slow_suffix);
    const auto fast = samples.find(prefix + gate.pair + fast_suffix);
    if (slow == samples.end() || fast == samples.end()) {
      std::printf("[FAIL] %-18s missing %s entry\n", gate.pair.c_str(),
                  slow == samples.end() ? slow_suffix : fast_suffix);
      ++failures;
      continue;
    }
    if (slow->second.unit != fast->second.unit) {
      std::printf("[FAIL] %-18s %s/%s time units differ (%s vs %s)\n",
                  gate.pair.c_str(), slow_suffix + 1, fast_suffix + 1,
                  slow->second.unit.c_str(), fast->second.unit.c_str());
      ++failures;
      continue;
    }
    if (!(fast->second.real_time > 0.0)) {
      std::printf("[FAIL] %-18s non-positive %s time\n", gate.pair.c_str(),
                  fast_suffix + 1);
      ++failures;
      continue;
    }
    const double ratio = slow->second.real_time / fast->second.real_time;
    const bool ok = ratio >= gate.min_ratio;
    std::printf("[%s] %-18s %8.2f %s %s / %8.2f %s %s = %6.2fx (gate %.2fx)\n",
                ok ? "PASS" : "FAIL", gate.pair.c_str(), slow->second.real_time,
                slow->second.unit.c_str(), slow_suffix + 1,
                fast->second.real_time, fast->second.unit.c_str(),
                fast_suffix + 1, ratio, gate.min_ratio);
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
