# bench_gate end-to-end smoke (ctest `bench_gate_smoke`): drive the real CLI
# against the committed google-benchmark fixture and check all three verdict
# classes — gates that hold (exit 0), a gate the recorded ratio misses
# (exit 1), and a gate naming a pair the file does not carry (exit 1).
#
# The probe-count gates (--points-csv/--points-gate) are smoked the same
# way against the committed search telemetry fixture: a cold-budget gate
# that holds, the zero-point warm gate, a budget the recorded count
# exceeds, and a search the file does not carry.
#
# Invoked as:
#   cmake -DGATE=<bench_gate> -DFIXTURE=<bench_gate_sample.json>
#         -DPOINTS_FIXTURE=<search_points_sample.csv> -P this_file

if(NOT GATE OR NOT FIXTURE OR NOT POINTS_FIXTURE)
  message(FATAL_ERROR "usage: cmake -DGATE=... -DFIXTURE=... -DPOINTS_FIXTURE=... -P bench_gate_smoke.cmake")
endif()

# 1. All recorded pairs clear their gates (60x and ~4.3x macro, 4x batch in
# the fixture) — macro and batch gates mixed in one invocation.
execute_process(
  COMMAND ${GATE} ${FIXTURE} --gate BrownoutTail=8 --gate Fig8WindSurvey=3
          --batch-gate Fig7Survey=2
  RESULT_VARIABLE pass_result OUTPUT_VARIABLE pass_out)
if(NOT pass_result EQUAL 0)
  message(FATAL_ERROR "expected gates to pass, got exit ${pass_result}:\n${pass_out}")
endif()
if(NOT pass_out MATCHES "\\[PASS\\] BrownoutTail")
  message(FATAL_ERROR "missing PASS verdict for BrownoutTail:\n${pass_out}")
endif()
if(NOT pass_out MATCHES "\\[PASS\\] Fig7Survey")
  message(FATAL_ERROR "missing PASS verdict for Fig7Survey:\n${pass_out}")
endif()

# 2. An unreachable threshold must fail loudly.
execute_process(
  COMMAND ${GATE} ${FIXTURE} --gate Fig8WindSurvey=100
  RESULT_VARIABLE fail_result OUTPUT_VARIABLE fail_out)
if(fail_result EQUAL 0)
  message(FATAL_ERROR "expected the 100x gate to fail:\n${fail_out}")
endif()
if(NOT fail_out MATCHES "\\[FAIL\\] Fig8WindSurvey")
  message(FATAL_ERROR "missing FAIL verdict for Fig8WindSurvey:\n${fail_out}")
endif()

# 3. A pair the file does not record must fail, not silently pass.
execute_process(
  COMMAND ${GATE} ${FIXTURE} --gate NoSuchPair=2
  RESULT_VARIABLE missing_result OUTPUT_VARIABLE missing_out)
if(missing_result EQUAL 0)
  message(FATAL_ERROR "expected the missing pair to fail:\n${missing_out}")
endif()

# 4. Batch gates have the same fail/missing behaviour: an unreachable
# threshold (the fixture records 4x) and a pair with no BM_BatchPair
# entries (BrownoutTail is a BM_MacroPair — --batch-gate must not pair up
# with the macro entries).
execute_process(
  COMMAND ${GATE} ${FIXTURE} --batch-gate Fig7Survey=100
  RESULT_VARIABLE batch_fail_result OUTPUT_VARIABLE batch_fail_out)
if(batch_fail_result EQUAL 0)
  message(FATAL_ERROR "expected the 100x batch gate to fail:\n${batch_fail_out}")
endif()
if(NOT batch_fail_out MATCHES "\\[FAIL\\] Fig7Survey")
  message(FATAL_ERROR "missing FAIL verdict for Fig7Survey:\n${batch_fail_out}")
endif()
execute_process(
  COMMAND ${GATE} ${FIXTURE} --batch-gate BrownoutTail=2
  RESULT_VARIABLE batch_missing_result OUTPUT_VARIABLE batch_missing_out)
if(batch_missing_result EQUAL 0)
  message(FATAL_ERROR
          "expected --batch-gate on a macro-only pair to fail:\n${batch_missing_out}")
endif()

# 5. Probe-count gates: the recorded cold search (16 simulated points)
# clears its budget, the warm rerun clears the zero-point gate — both in
# one invocation, alongside a ratio gate (mixed gate families must
# compose).
execute_process(
  COMMAND ${GATE} ${FIXTURE} --gate BrownoutTail=8
          --points-csv ${POINTS_FIXTURE}
          --points-gate Eq5Solve=24 --points-gate Eq5SolveWarm=0
  RESULT_VARIABLE points_pass_result OUTPUT_VARIABLE points_pass_out)
if(NOT points_pass_result EQUAL 0)
  message(FATAL_ERROR "expected points gates to pass, got exit ${points_pass_result}:\n${points_pass_out}")
endif()
if(NOT points_pass_out MATCHES "\\[PASS\\] Eq5SolveWarm")
  message(FATAL_ERROR "missing PASS verdict for Eq5SolveWarm:\n${points_pass_out}")
endif()

# 6. A budget the recorded count exceeds must fail loudly, and a search the
# telemetry file does not carry must fail, not silently pass.
execute_process(
  COMMAND ${GATE} --points-csv ${POINTS_FIXTURE} --points-gate Eq5Solve=5
  RESULT_VARIABLE points_fail_result OUTPUT_VARIABLE points_fail_out)
if(points_fail_result EQUAL 0)
  message(FATAL_ERROR "expected the 5-point budget to fail:\n${points_fail_out}")
endif()
if(NOT points_fail_out MATCHES "\\[FAIL\\] Eq5Solve")
  message(FATAL_ERROR "missing FAIL verdict for Eq5Solve:\n${points_fail_out}")
endif()
execute_process(
  COMMAND ${GATE} --points-csv ${POINTS_FIXTURE} --points-gate NoSuchSearch=10
  RESULT_VARIABLE points_missing_result OUTPUT_VARIABLE points_missing_out)
if(points_missing_result EQUAL 0)
  message(FATAL_ERROR "expected the missing search to fail:\n${points_missing_out}")
endif()

message(STATUS "bench_gate smoke: pass/fail/missing verdicts all correct")
