# End-to-end shard workflow smoke test (registered in ctest as
# shard_merge_smoke): runs the eq5_crossover bench as two independent
# processes on halves of its grid, merges the per-shard CSVs with
# sweep_merge, and requires the result to be byte-identical to the
# unsharded run's CSV.
#
#   cmake -DEQ5=<eq5_crossover> -DMERGE=<sweep_merge> -DWORK=<dir> -P this
#
# A short --t-end keeps the smoke fast; byte-identity of the *full*
# horizon is covered in-process by tests/sweep_shard_test.cpp.
foreach(var EQ5 MERGE WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
set(T_END 2)

execute_process(
  COMMAND "${EQ5}" --t-end ${T_END} --csv "${WORK}/full.csv"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "unsharded eq5_crossover run failed (${rc})")
endif()

foreach(k RANGE 1)
  execute_process(
    COMMAND "${EQ5}" --t-end ${T_END} --shard ${k}/2 --csv "${WORK}/shard${k}.csv"
    RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "shard ${k}/2 run failed (${rc})")
  endif()
endforeach()

execute_process(
  COMMAND "${MERGE}" "${WORK}/merged.csv" "${WORK}/shard0.csv" "${WORK}/shard1.csv"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep_merge failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${WORK}/full.csv" "${WORK}/merged.csv"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "merged shard CSV differs from the unsharded run")
endif()

# A merge with a missing shard must fail loudly, not truncate.
execute_process(
  COMMAND "${MERGE}" "${WORK}/bad.csv" "${WORK}/shard0.csv"
  RESULT_VARIABLE rc ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "sweep_merge accepted an incomplete partition")
endif()

message(STATUS "shard -> merge workflow is byte-identical to the unsharded run")
