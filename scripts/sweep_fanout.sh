#!/usr/bin/env bash
# sweep_fanout.sh — launch a sharded sweep across processes or hosts, then
# merge and verify (ROADMAP: remote/cluster launcher).
#
# The sharding CLI contract (bench --shard k/N --csv FILE, reassembled by
# sweep_merge) is process-complete but launching the N processes was manual.
# This driver closes the loop:
#
#   # 4 local processes:
#   scripts/sweep_fanout.sh -n 4 -o merged.csv -- ./build/eq5_crossover
#
#   # one shard per host over ssh (repo built at the same path everywhere),
#   # via GNU parallel when available, plain ssh otherwise:
#   scripts/sweep_fanout.sh -H hostA,hostB -o merged.csv -- ./build/eq5_crossover
#
# Every shard k of N runs `BENCH ARGS --shard k/N --csv WORKDIR/shard_k.csv`;
# after all shards exit, sweep_merge reassembles the per-shard CSVs into a
# byte stream identical to the unsharded run (the merge itself re-verifies
# the partition: missing/duplicated shards fail loudly). The final exit
# status is the combined "shards done, merged, verified" answer: 0 only if
# every shard succeeded AND the merge validated.
set -u

usage() {
  cat >&2 <<EOF
usage: $0 [-n SHARDS] [-H host1,host2,...] [-o OUT.csv] [-w WORKDIR] [-m SWEEP_MERGE] -- BENCH [ARGS...]
  -n SHARDS   number of shards (default: one per host, else nproc)
  -H HOSTS    comma-separated ssh hosts; each must see BENCH at the same
              path (shared filesystem or identical build). Shards are
              assigned round-robin. Default: run locally.
  -o OUT.csv  merged output (default: WORKDIR/merged.csv)
  -w WORKDIR  scratch directory for shard CSVs (default: mktemp -d)
  -m PATH     sweep_merge binary (default: next to BENCH, else \$PATH)
EOF
  exit 2
}

shards=""
hosts=""
out=""
workdir=""
merge_bin=""
while getopts "n:H:o:w:m:h" opt; do
  case "$opt" in
    n) shards="$OPTARG" ;;
    H) hosts="$OPTARG" ;;
    o) out="$OPTARG" ;;
    w) workdir="$OPTARG" ;;
    m) merge_bin="$OPTARG" ;;
    *) usage ;;
  esac
done
shift $((OPTIND - 1))
[ $# -ge 1 ] || usage
bench=$1
shift

IFS=',' read -r -a host_list <<< "${hosts}"
[ -n "${hosts}" ] || host_list=()

if [ -z "${shards}" ]; then
  if [ ${#host_list[@]} -gt 0 ]; then
    shards=${#host_list[@]}
  else
    shards=$(nproc 2>/dev/null || echo 2)
  fi
fi
case "$shards" in
  ''|*[!0-9]*|0) echo "sweep_fanout: -n must be a positive integer" >&2; exit 2 ;;
esac

if [ -z "${workdir}" ]; then
  workdir=$(mktemp -d "${TMPDIR:-/tmp}/sweep_fanout.XXXXXX")
fi
mkdir -p "${workdir}"
[ -n "${out}" ] || out="${workdir}/merged.csv"

if [ -z "${merge_bin}" ]; then
  if [ -x "$(dirname "${bench}")/sweep_merge" ]; then
    merge_bin="$(dirname "${bench}")/sweep_merge"
  else
    merge_bin="sweep_merge"
  fi
fi

# One launch command per shard; stdout/stderr captured per shard so a
# failure names its log instead of interleaving 16 tables.
launch_cmds=()
for ((k = 0; k < shards; ++k)); do
  csv="${workdir}/shard_${k}.csv"
  cmd="$(printf '%q ' "${bench}" "$@") --shard ${k}/${shards} --csv $(printf '%q' "${csv}")"
  if [ ${#host_list[@]} -gt 0 ]; then
    host="${host_list[$((k % ${#host_list[@]}))]}"
    # The hosts share the filesystem (or an identical checkout): run in the
    # current directory so relative bench paths keep working. The remote
    # command ships as one %q-escaped argv (surviving the local re-parse),
    # with the working directory %q-quoted *inside* it for the remote
    # shell's own parse.
    remote_cmd="cd $(printf '%q' "$(pwd)") && ${cmd}"
    cmd="ssh -o BatchMode=yes $(printf '%q' "${host}") $(printf '%q' "${remote_cmd}")"
  fi
  launch_cmds+=("${cmd} > $(printf '%q' "${workdir}/shard_${k}.log") 2>&1")
done

echo "sweep_fanout: ${shards} shards, $([ ${#host_list[@]} -gt 0 ] && echo "hosts: ${hosts}" || echo "local"), workdir ${workdir}" >&2

failed=0
if command -v parallel >/dev/null 2>&1; then
  # GNU parallel drives the fan-out (and caps concurrency at shard count).
  printf '%s\n' "${launch_cmds[@]}" | parallel -j "${shards}" || failed=1
else
  pids=()
  for cmd in "${launch_cmds[@]}"; do
    bash -c "${cmd}" &
    pids+=($!)
  done
  for ((k = 0; k < ${#pids[@]}; ++k)); do
    if ! wait "${pids[$k]}"; then
      echo "sweep_fanout: shard ${k} FAILED (log: ${workdir}/shard_${k}.log)" >&2
      failed=1
    fi
  done
fi

if [ "${failed}" -ne 0 ]; then
  echo "sweep_fanout: shards done: FAILED (logs in ${workdir})" >&2
  exit 1
fi
echo "sweep_fanout: shards done: ok" >&2

shard_csvs=()
for ((k = 0; k < shards; ++k)); do
  shard_csvs+=("${workdir}/shard_${k}.csv")
done
if ! "${merge_bin}" "${out}" "${shard_csvs[@]}"; then
  echo "sweep_fanout: merged, verified: FAILED" >&2
  exit 1
fi
echo "sweep_fanout: merged, verified: ok -> ${out}" >&2
exit 0
