#!/usr/bin/env bash
# sweep_fanout.sh — launch a sharded sweep across processes or hosts with
# per-shard retries, then merge and verify (ROADMAP: remote/cluster
# launcher; PR 8 hardened it for flaky shards and hosts).
#
#   # 4 local processes:
#   scripts/sweep_fanout.sh -n 4 -o merged.csv -- ./build/eq5_crossover
#
#   # one shard per host over ssh (repo built at the same path everywhere):
#   scripts/sweep_fanout.sh -H hostA,hostB -o merged.csv -- ./build/eq5_crossover
#
# Every shard k of N runs `BENCH ARGS --shard k/N --csv WORKDIR/shard_k.csv`;
# after all shards exit, sweep_merge reassembles the per-shard CSVs into a
# byte stream identical to the unsharded run (the merge itself re-verifies
# the partition: missing/duplicated shards fail loudly).
#
# Fault tolerance: a failed shard is retried up to -r times with capped
# exponential backoff between rounds, and host failures are isolated — a
# retried shard moves to the host with the fewest recorded failures, so one
# sick machine cannot take the whole sweep down with it. Shards are
# idempotent (same shard -> same CSV bytes, the cache absorbs re-simulation
# cost), which is what makes blind retries safe.
#
# Exit status is the combined "shards done, merged, verified" answer:
#   0  every shard succeeded first try AND the merge validated
#   3  recovered: some shard needed a retry, but everything succeeded and
#      the merge validated (alert-worthy, not failure-worthy)
#   1  gave up: a shard exhausted its attempts, or the merge failed
set -u

usage() {
  cat >&2 <<EOF
usage: $0 [-n SHARDS] [-H host1,host2,...] [-o OUT.csv] [-w WORKDIR] [-m SWEEP_MERGE] [-r ATTEMPTS] [-b BACKOFF_MS] -- BENCH [ARGS...]
  -n SHARDS     number of shards (default: one per host, else nproc)
  -H HOSTS      comma-separated ssh hosts; each must see BENCH at the same
                path (shared filesystem or identical build). Shards are
                assigned round-robin; retries prefer the healthiest host.
                Default: run locally.
  -o OUT.csv    merged output (default: WORKDIR/merged.csv)
  -w WORKDIR    scratch directory for shard CSVs (default: mktemp -d)
  -m PATH       sweep_merge binary (default: next to BENCH, else \$PATH)
  -r ATTEMPTS   max attempts per shard (default 3; 1 = no retries)
  -b BACKOFF_MS base backoff between retry rounds, doubled each round and
                capped at 8x (default 500)
exit status: 0 clean, 3 recovered after retries, 1 gave up / merge failed
EOF
  exit 2
}

shards=""
hosts=""
out=""
workdir=""
merge_bin=""
max_attempts=3
backoff_ms=500
while getopts "n:H:o:w:m:r:b:h" opt; do
  case "$opt" in
    n) shards="$OPTARG" ;;
    H) hosts="$OPTARG" ;;
    o) out="$OPTARG" ;;
    w) workdir="$OPTARG" ;;
    m) merge_bin="$OPTARG" ;;
    r) max_attempts="$OPTARG" ;;
    b) backoff_ms="$OPTARG" ;;
    *) usage ;;
  esac
done
shift $((OPTIND - 1))
[ $# -ge 1 ] || usage
bench=$1
shift

case "$max_attempts" in
  ''|*[!0-9]*|0) echo "sweep_fanout: -r must be a positive integer" >&2; exit 2 ;;
esac
case "$backoff_ms" in
  ''|*[!0-9]*) echo "sweep_fanout: -b must be a non-negative integer" >&2; exit 2 ;;
esac

IFS=',' read -r -a host_list <<< "${hosts}"
[ -n "${hosts}" ] || host_list=()

if [ -z "${shards}" ]; then
  if [ ${#host_list[@]} -gt 0 ]; then
    shards=${#host_list[@]}
  else
    shards=$(nproc 2>/dev/null || echo 2)
  fi
fi
case "$shards" in
  ''|*[!0-9]*|0) echo "sweep_fanout: -n must be a positive integer" >&2; exit 2 ;;
esac

if [ -z "${workdir}" ]; then
  workdir=$(mktemp -d "${TMPDIR:-/tmp}/sweep_fanout.XXXXXX")
fi
mkdir -p "${workdir}"
[ -n "${out}" ] || out="${workdir}/merged.csv"

if [ -z "${merge_bin}" ]; then
  if [ -x "$(dirname "${bench}")/sweep_merge" ]; then
    merge_bin="$(dirname "${bench}")/sweep_merge"
  else
    merge_bin="sweep_merge"
  fi
fi

# Per-host failure counters (index-aligned with host_list) for retry
# placement: a retried shard goes to the host with the fewest failures.
host_failures=()
for ((h = 0; h < ${#host_list[@]}; ++h)); do host_failures[h]=0; done

healthiest_host_index() {
  local best=0 h
  for ((h = 1; h < ${#host_list[@]}; ++h)); do
    if [ "${host_failures[h]}" -lt "${host_failures[best]}" ]; then best=$h; fi
  done
  echo "$best"
}

# Builds the (logged, possibly ssh-wrapped) launch command for shard k on
# host index h (-1 = local).
shard_cmd() {
  local k=$1 h=$2
  shift 2  # remaining args: the bench argv
  local csv="${workdir}/shard_${k}.csv"
  local cmd
  cmd="$(printf '%q ' "${bench}" "$@") --shard ${k}/${shards} --csv $(printf '%q' "${csv}")"
  if [ "$h" -ge 0 ]; then
    # The hosts share the filesystem (or an identical checkout): run in the
    # current directory so relative bench paths keep working. The remote
    # command ships as one %q-escaped argv (surviving the local re-parse),
    # with the working directory %q-quoted *inside* it for the remote
    # shell's own parse.
    local remote_cmd="cd $(printf '%q' "$(pwd)") && ${cmd}"
    cmd="ssh -o BatchMode=yes $(printf '%q' "${host_list[h]}") $(printf '%q' "${remote_cmd}")"
  fi
  echo "${cmd} > $(printf '%q' "${workdir}/shard_${k}.log") 2>&1"
}

echo "sweep_fanout: ${shards} shards, $([ ${#host_list[@]} -gt 0 ] && echo "hosts: ${hosts}" || echo "local"), workdir ${workdir}, up to ${max_attempts} attempts/shard" >&2

pending=()
for ((k = 0; k < shards; ++k)); do pending+=("$k"); done
attempts_of=()
for ((k = 0; k < shards; ++k)); do attempts_of[k]=0; done

retried=0
gave_up=0
round=1
while [ ${#pending[@]} -gt 0 ] && [ "${gave_up}" -eq 0 ]; do
  if [ "${round}" -gt 1 ]; then
    # Capped exponential backoff between retry rounds: base, 2x, 4x, 8x, 8x...
    exp=$((round - 2)); [ "${exp}" -gt 3 ] && exp=3
    delay_ms=$((backoff_ms * (1 << exp)))
    echo "sweep_fanout: retry round ${round} for shards [${pending[*]}] after ${delay_ms}ms" >&2
    sleep "$(awk "BEGIN { printf \"%.3f\", ${delay_ms} / 1000 }")"
  fi

  pids=()
  launched=()
  ran_on=()
  for k in "${pending[@]}"; do
    h=-1
    if [ ${#host_list[@]} -gt 0 ]; then
      if [ "${round}" -eq 1 ]; then
        h=$((k % ${#host_list[@]}))       # initial spread: round-robin
      else
        h=$(healthiest_host_index)        # retries avoid sick hosts
      fi
    fi
    attempts_of[k]=$((attempts_of[k] + 1))
    bash -c "$(shard_cmd "$k" "$h" "$@")" &
    pids+=($!)
    launched+=("$k")
    ran_on+=("$h")
  done

  next_pending=()
  for ((i = 0; i < ${#pids[@]}; ++i)); do
    k=${launched[i]}
    if wait "${pids[i]}"; then
      if [ "${attempts_of[k]}" -gt 1 ]; then
        echo "sweep_fanout: shard ${k} recovered on attempt ${attempts_of[k]}" >&2
        retried=1
      fi
      continue
    fi
    h=${ran_on[i]}
    if [ "$h" -ge 0 ]; then
      host_failures[h]=$((host_failures[h] + 1))
      where=" on ${host_list[h]}"
    else
      where=""
    fi
    if [ "${attempts_of[k]}" -ge "${max_attempts}" ]; then
      echo "sweep_fanout: shard ${k} FAILED${where} after ${attempts_of[k]} attempts (log: ${workdir}/shard_${k}.log)" >&2
      gave_up=1
    else
      echo "sweep_fanout: shard ${k} failed${where} (attempt ${attempts_of[k]}/${max_attempts}), will retry" >&2
      next_pending+=("$k")
    fi
  done
  pending=("${next_pending[@]:-}")
  [ -n "${pending[0]:-}" ] || pending=()
  round=$((round + 1))
done

if [ "${gave_up}" -ne 0 ]; then
  echo "sweep_fanout: shards done: GAVE UP (logs in ${workdir})" >&2
  exit 1
fi
if [ "${retried}" -ne 0 ]; then
  echo "sweep_fanout: shards done: ok (recovered after retries)" >&2
else
  echo "sweep_fanout: shards done: ok" >&2
fi

shard_csvs=()
for ((k = 0; k < shards; ++k)); do
  shard_csvs+=("${workdir}/shard_${k}.csv")
done
if ! "${merge_bin}" "${out}" "${shard_csvs[@]}"; then
  echo "sweep_fanout: merged, verified: FAILED" >&2
  exit 1
fi
echo "sweep_fanout: merged, verified: ok -> ${out}" >&2
[ "${retried}" -ne 0 ] && exit 3
exit 0
