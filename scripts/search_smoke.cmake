# Solver-guided design queries end to end (ctest `search_smoke`): drive
# eq5_crossover --solve-check and design_query --demo through the real
# CLIs, cold and warm against one cache, and assert the probe accounting
# with bench_gate --points-gate:
#
#   * cold --solve-check passes its own dense cross-check (the refined
#     bracket lies inside the dense crossover cell) while simulating at
#     most 25% of the dense-equivalent grid (24 of 98 points);
#   * the warm rerun of the same query simulates ZERO points;
#   * design_query --demo brackets the minimum wind-surviving capacitance
#     cold, and its warm rerun also simulates zero points.
#
# Invoked as:
#   cmake -DEQ5=<eq5_crossover> -DDQ=<design_query> -DGATE=<bench_gate>
#         -DWORK=<scratch dir> -P search_smoke.cmake

if(NOT EQ5 OR NOT DQ OR NOT GATE OR NOT WORK)
  message(FATAL_ERROR "usage: cmake -DEQ5=... -DDQ=... -DGATE=... -DWORK=... -P search_smoke.cmake")
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})
set(CSV ${WORK}/search.csv)

# 1. Cold solver-guided Eq 5 crossover with the built-in dense cross-check
# (the solver runs before the dense sweep, so its cold-probe counts are
# unaffected by the sweep warming the shared cache).
execute_process(
  COMMAND ${EQ5} --solve-check --t-end 2 --cache ${WORK}/cache
          --search-csv ${CSV}
  RESULT_VARIABLE cold_result OUTPUT_VARIABLE cold_out ERROR_VARIABLE cold_err)
if(NOT cold_result EQUAL 0)
  message(FATAL_ERROR "cold --solve-check failed (${cold_result}):\n${cold_out}\n${cold_err}")
endif()
if(NOT cold_out MATCHES "SOLVE CHECK PASSED")
  message(FATAL_ERROR "cold --solve-check did not pass its dense cross-check:\n${cold_out}")
endif()

# 2. Warm rerun of the same query against the same cache.
execute_process(
  COMMAND ${EQ5} --solve --t-end 2 --cache ${WORK}/cache
          --search-csv ${CSV} --search-name Eq5SolveWarm
  RESULT_VARIABLE warm_result OUTPUT_VARIABLE warm_out ERROR_VARIABLE warm_err)
if(NOT warm_result EQUAL 0)
  message(FATAL_ERROR "warm --solve failed (${warm_result}):\n${warm_out}\n${warm_err}")
endif()

# 3. design_query --demo: minimum wind-surviving capacitance, cold + warm.
execute_process(
  COMMAND ${DQ} --demo --cache ${WORK}/demo_cache --search-csv ${CSV}
  RESULT_VARIABLE demo_result OUTPUT_VARIABLE demo_out ERROR_VARIABLE demo_err)
if(NOT demo_result EQUAL 0)
  message(FATAL_ERROR "design_query --demo failed (${demo_result}):\n${demo_out}\n${demo_err}")
endif()
if(NOT demo_out MATCHES "threshold bracket")
  message(FATAL_ERROR "design_query --demo reported no bracket:\n${demo_out}")
endif()
execute_process(
  COMMAND ${DQ} --demo --cache ${WORK}/demo_cache --search-csv ${CSV}
          --search-name DesignQueryWarm
  RESULT_VARIABLE demo_warm_result OUTPUT_VARIABLE demo_warm_out
  ERROR_VARIABLE demo_warm_err)
if(NOT demo_warm_result EQUAL 0)
  message(FATAL_ERROR "warm design_query --demo failed (${demo_warm_result}):\n${demo_warm_out}\n${demo_warm_err}")
endif()

# 4. Gate the recorded probe counts: the cold Eq 5 solve within 25% of the
# dense-equivalent 98-point grid, both warm reruns at zero simulations.
execute_process(
  COMMAND ${GATE} --points-csv ${CSV}
          --points-gate Eq5Solve=24 --points-gate Eq5SolveWarm=0
          --points-gate DesignQuery=30 --points-gate DesignQueryWarm=0
  RESULT_VARIABLE gate_result OUTPUT_VARIABLE gate_out)
if(NOT gate_result EQUAL 0)
  message(FATAL_ERROR "probe-budget gates failed:\n${gate_out}")
endif()

message(STATUS "search smoke: solver bracket verified, warm reruns simulate zero points\n${gate_out}")
