#!/usr/bin/env bash
# fanout_retry_smoke.sh — end-to-end check of sweep_fanout.sh's retry path
# (ctest `fanout_retry_smoke`).
#
#   fanout_retry_smoke.sh FANOUT_SH BENCH SWEEP_MERGE WORKDIR
#
# Three scenarios against the real launcher:
#   1. a clean run exits 0;
#   2. a flaky bench that fails the FIRST attempt of every shard exits 3
#      ("recovered after retries") and its merged CSV is byte-identical to
#      the clean run's;
#   3. a bench that always fails exhausts its attempts and exits 1.
set -eu

[ $# -eq 4 ] || { echo "usage: $0 FANOUT_SH BENCH SWEEP_MERGE WORKDIR" >&2; exit 2; }
fanout=$1
bench=$2
merge=$3
work=$4

rm -rf "${work}"
mkdir -p "${work}/markers"

fail() { echo "fanout_retry_smoke FAILED: $*" >&2; exit 1; }

# A wrapper that injects one failure per distinct shard argv, then defers
# to the real bench — the "transient worker death" a retry must absorb.
flaky="${work}/flaky_bench.sh"
cat > "${flaky}" <<EOF
#!/usr/bin/env bash
marker="${work}/markers/\$(echo "\$*" | tr -c 'A-Za-z0-9' '_')"
if [ ! -e "\${marker}" ]; then
  touch "\${marker}"
  echo "flaky_bench: injected first-attempt failure" >&2
  exit 1
fi
exec $(printf '%q' "${bench}") "\$@"
EOF
chmod +x "${flaky}"

# A bench that never succeeds — the launcher must give up loudly.
broken="${work}/broken_bench.sh"
cat > "${broken}" <<'EOF'
#!/usr/bin/env bash
echo "broken_bench: permanent failure" >&2
exit 1
EOF
chmod +x "${broken}"

echo "fanout_retry_smoke: clean run" >&2
rc=0
bash "${fanout}" -n 2 -w "${work}/clean" -o "${work}/clean.csv" \
  -m "${merge}" -r 3 -b 50 -- "${bench}" --t-end 0.3 || rc=$?
[ "${rc}" -eq 0 ] || fail "clean run exited ${rc}, want 0"

echo "fanout_retry_smoke: flaky run (every shard fails once)" >&2
rc=0
bash "${fanout}" -n 2 -w "${work}/flaky" -o "${work}/flaky.csv" \
  -m "${merge}" -r 3 -b 50 -- "${flaky}" --t-end 0.3 || rc=$?
[ "${rc}" -eq 3 ] || fail "flaky run exited ${rc}, want 3 (recovered after retries)"
cmp -s "${work}/clean.csv" "${work}/flaky.csv" \
  || fail "recovered merge differs from the clean merge"

echo "fanout_retry_smoke: broken run (every attempt fails)" >&2
rc=0
bash "${fanout}" -n 2 -w "${work}/broken" -o "${work}/broken.csv" \
  -m "${merge}" -r 2 -b 50 -- "${broken}" --t-end 0.3 || rc=$?
[ "${rc}" -eq 1 ] || fail "broken run exited ${rc}, want 1 (gave up)"
[ ! -e "${work}/broken.csv" ] || fail "gave-up run still produced a merged CSV"

echo "fanout_retry_smoke OK" >&2
exit 0
