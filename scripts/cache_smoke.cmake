# End-to-end sweep-cache smoke test (registered in ctest as cache_smoke):
# runs the tab_policy_comparison bench twice against a fresh cache
# directory and requires that the warm rerun (a) simulates 0 points and
# (b) prints a bit-identical table (the bench writes cache statistics to
# stderr precisely so stdout stays byte-comparable).
#
#   cmake -DBENCH=<tab_policy_comparison> -DWORK=<dir> -P this
foreach(var BENCH WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

execute_process(
  COMMAND "${BENCH}" --cache "${WORK}/cache"
  OUTPUT_FILE "${WORK}/cold.out" ERROR_FILE "${WORK}/cold.err"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold bench run failed (${rc})")
endif()

execute_process(
  COMMAND "${BENCH}" --cache "${WORK}/cache"
  OUTPUT_FILE "${WORK}/warm.out" ERROR_FILE "${WORK}/warm.err"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm bench run failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${WORK}/cold.out" "${WORK}/warm.out"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm-cache rerun did not reproduce the table bit-identically")
endif()

file(READ "${WORK}/warm.err" warm_err)
if(NOT warm_err MATCHES "simulated 0 of")
  message(FATAL_ERROR "warm rerun still simulated points: ${warm_err}")
endif()
file(READ "${WORK}/cold.err" cold_err)
if(NOT cold_err MATCHES "0 hits")
  message(FATAL_ERROR "cold run unexpectedly hit a fresh cache: ${cold_err}")
endif()

message(STATUS "warm-cache rerun simulated 0 points with a bit-identical table")
