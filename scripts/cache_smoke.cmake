# End-to-end sweep-cache smoke test (registered in ctest as cache_smoke):
# runs the tab_policy_comparison bench twice against a fresh cache
# directory and requires that the warm rerun (a) simulates 0 points and
# (b) prints a bit-identical table (the bench writes cache statistics to
# stderr precisely so stdout stays byte-comparable). Then corrupts one
# entry and drives the self-healing CLI loop: fsck flags it (exit 1),
# fsck --quarantine moves it aside to <entry>.bad, and a re-check comes
# back clean (exit 0).
#
#   cmake -DBENCH=<tab_policy_comparison> -DSWEEP_CACHE=<sweep_cache>
#         -DWORK=<dir> -P this
foreach(var BENCH SWEEP_CACHE WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

execute_process(
  COMMAND "${BENCH}" --cache "${WORK}/cache"
  OUTPUT_FILE "${WORK}/cold.out" ERROR_FILE "${WORK}/cold.err"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold bench run failed (${rc})")
endif()

execute_process(
  COMMAND "${BENCH}" --cache "${WORK}/cache"
  OUTPUT_FILE "${WORK}/warm.out" ERROR_FILE "${WORK}/warm.err"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm bench run failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${WORK}/cold.out" "${WORK}/warm.out"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm-cache rerun did not reproduce the table bit-identically")
endif()

file(READ "${WORK}/warm.err" warm_err)
if(NOT warm_err MATCHES "simulated 0 of")
  message(FATAL_ERROR "warm rerun still simulated points: ${warm_err}")
endif()
file(READ "${WORK}/cold.err" cold_err)
if(NOT cold_err MATCHES "0 hits")
  message(FATAL_ERROR "cold run unexpectedly hit a fresh cache: ${cold_err}")
endif()

message(STATUS "warm-cache rerun simulated 0 points with a bit-identical table")

# ---- self-healing CLI loop: corrupt -> fsck -> quarantine -> clean ----------

file(GLOB_RECURSE entries "${WORK}/cache/*.edcres")
list(LENGTH entries entry_count)
if(entry_count EQUAL 0)
  message(FATAL_ERROR "warm cache holds no entries to corrupt")
endif()
list(GET entries 0 victim)
file(WRITE "${victim}" "deliberately rotten bytes")

execute_process(COMMAND "${SWEEP_CACHE}" fsck "${WORK}/cache"
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "fsck missed a deliberately corrupted entry")
endif()

execute_process(COMMAND "${SWEEP_CACHE}" fsck "${WORK}/cache" --quarantine
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "fsck --quarantine reported a clean cache while quarantining")
endif()
if(EXISTS "${victim}")
  message(FATAL_ERROR "fsck --quarantine left the corrupt entry in place")
endif()
if(NOT EXISTS "${victim}.bad")
  message(FATAL_ERROR "fsck --quarantine did not produce ${victim}.bad")
endif()

execute_process(COMMAND "${SWEEP_CACHE}" fsck "${WORK}/cache"
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cache still dirty after fsck --quarantine")
endif()

message(STATUS "fsck --quarantine healed the corrupted entry (moved to .bad)")
