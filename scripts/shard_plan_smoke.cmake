# End-to-end cost-weighted sharding smoke test (registered in ctest as
# shard_plan_smoke): an unsharded eq5_crossover run emits the per-point
# timing plan, two LPT-balanced shard processes consume it, sweep_merge
# reassembles the v2 shard CSVs, and the result must be byte-identical to
# the unsharded run's CSV — the cost-weighted loop of ROADMAP "surface
# cost-weighted sharding in the CLIs", driven through the real binaries.
#
#   cmake -DEQ5=<eq5_crossover> -DMERGE=<sweep_merge> -DWORK=<dir> -P this
#
# The shared cache keeps the shard runs warm (hits replay each point's
# original cost), so the smoke also exercises the plan's cache interplay.
foreach(var EQ5 MERGE WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
set(T_END 2)

execute_process(
  COMMAND "${EQ5}" --t-end ${T_END} --csv "${WORK}/full.csv"
          --cache "${WORK}/cache" --shard-plan "${WORK}/timing.csv"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "unsharded plan-emitting run failed (${rc})")
endif()
if(NOT EXISTS "${WORK}/timing.csv")
  message(FATAL_ERROR "--shard-plan did not emit ${WORK}/timing.csv")
endif()

foreach(k RANGE 1)
  execute_process(
    COMMAND "${EQ5}" --t-end ${T_END} --shard ${k}/2 --csv "${WORK}/shard${k}.csv"
            --cache "${WORK}/cache" --shard-plan "${WORK}/timing.csv"
    RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "LPT shard ${k}/2 run failed (${rc})")
  endif()
endforeach()

execute_process(
  COMMAND "${MERGE}" "${WORK}/merged.csv" "${WORK}/shard0.csv" "${WORK}/shard1.csv"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep_merge failed on assignment shards (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${WORK}/full.csv" "${WORK}/merged.csv"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "merged LPT shard CSV differs from the unsharded run")
endif()

# A shard run pointed at a missing plan must fail loudly, not silently
# fall back to striding (the partition would no longer match its peers).
execute_process(
  COMMAND "${EQ5}" --t-end ${T_END} --shard 0/2 --csv "${WORK}/bad.csv"
          --shard-plan "${WORK}/no-such-plan.csv"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "shard run accepted a missing timing plan")
endif()

message(STATUS "plan-emit -> LPT shards -> merge is byte-identical to the unsharded run")
