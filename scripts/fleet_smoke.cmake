# Fleet scenarios end to end (ctest `fleet_smoke`): drive the canonical
# 3-node shared-RF example fleet (spec::example_rf_fleet) through the real
# CLIs, cold and warm against one cache, and assert the fleet acceptance
# contract:
#
#   * cold eq5_crossover --fleet simulates all 3 nodes and completes the
#     whole fleet;
#   * the warm rerun simulates ZERO nodes (all 3 replay from the cache)
#     and its CSV is byte-identical to the cold run's;
#   * design_query --fleet-demo brackets the smallest capacitance at which
#     every coupled node completes, cold, and its warm rerun replays every
#     probe from the cache.
#
# Invoked as:
#   cmake -DEQ5=<eq5_crossover> -DDQ=<design_query> -DWORK=<scratch dir>
#         -P fleet_smoke.cmake

if(NOT EQ5 OR NOT DQ OR NOT WORK)
  message(FATAL_ERROR "usage: cmake -DEQ5=... -DDQ=... -DWORK=... -P fleet_smoke.cmake")
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

# 1. Cold fleet sweep: every node simulated fresh, whole fleet completes.
execute_process(
  COMMAND ${EQ5} --fleet --cache ${WORK}/cache --csv ${WORK}/cold.csv
  RESULT_VARIABLE cold_result OUTPUT_VARIABLE cold_out ERROR_VARIABLE cold_err)
if(NOT cold_result EQUAL 0)
  message(FATAL_ERROR "cold --fleet failed (${cold_result}):\n${cold_out}\n${cold_err}")
endif()
if(NOT cold_out MATCHES "fleet: simulated 3 of 3 nodes, 0 replayed warm")
  message(FATAL_ERROR "cold --fleet did not simulate all 3 nodes:\n${cold_out}")
endif()
if(NOT cold_out MATCHES "fleet: 3/3 nodes completed")
  message(FATAL_ERROR "cold --fleet did not complete the whole fleet:\n${cold_out}")
endif()

# 2. Warm rerun: zero simulations, every node replayed from the cache,
# byte-identical CSV.
execute_process(
  COMMAND ${EQ5} --fleet --cache ${WORK}/cache --csv ${WORK}/warm.csv
  RESULT_VARIABLE warm_result OUTPUT_VARIABLE warm_out ERROR_VARIABLE warm_err)
if(NOT warm_result EQUAL 0)
  message(FATAL_ERROR "warm --fleet failed (${warm_result}):\n${warm_out}\n${warm_err}")
endif()
if(NOT warm_out MATCHES "fleet: simulated 0 of 3 nodes, 3 replayed warm")
  message(FATAL_ERROR "warm --fleet rerun simulated nodes it should have replayed:\n${warm_out}")
endif()
file(READ ${WORK}/cold.csv cold_csv)
file(READ ${WORK}/warm.csv warm_csv)
if(NOT cold_csv STREQUAL warm_csv)
  message(FATAL_ERROR "warm fleet CSV differs from the cold run's:\n--- cold\n${cold_csv}\n--- warm\n${warm_csv}")
endif()

# 3. design_query --fleet-demo: smallest capacitance at which every coupled
# node completes, cold then warm against one cache.
execute_process(
  COMMAND ${DQ} --fleet-demo --cache ${WORK}/dq_cache
  RESULT_VARIABLE dq_result OUTPUT_VARIABLE dq_out ERROR_VARIABLE dq_err)
if(NOT dq_result EQUAL 0)
  message(FATAL_ERROR "design_query --fleet-demo failed (${dq_result}):\n${dq_out}\n${dq_err}")
endif()
if(NOT dq_out MATCHES "threshold bracket")
  message(FATAL_ERROR "design_query --fleet-demo reported no bracket:\n${dq_out}")
endif()
execute_process(
  COMMAND ${DQ} --fleet-demo --cache ${WORK}/dq_cache
  RESULT_VARIABLE dq_warm_result OUTPUT_VARIABLE dq_warm_out
  ERROR_VARIABLE dq_warm_err)
if(NOT dq_warm_result EQUAL 0)
  message(FATAL_ERROR "warm design_query --fleet-demo failed (${dq_warm_result}):\n${dq_warm_out}\n${dq_warm_err}")
endif()
if(NOT dq_warm_out MATCHES "threshold bracket")
  message(FATAL_ERROR "warm design_query --fleet-demo lost its bracket:\n${dq_warm_out}")
endif()
if(NOT dq_warm_out MATCHES "simulated 0 of")
  message(FATAL_ERROR "warm design_query --fleet-demo simulated probes it should have replayed:\n${dq_warm_out}")
endif()

message(STATUS "fleet smoke: 3-node shared-RF sweep round-trips the cache; warm reruns simulate zero nodes")
