#include "edc/workloads/raytrace.h"

#include <cmath>

#include "edc/common/check.h"
#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"

namespace edc::workloads {

namespace {
// Ray-sphere tests + shading in fixed point on a small core.
constexpr Cycles kCyclesPerPixel = 1800;
constexpr std::int64_t kOne = 1 << 16;  // Q16

// Integer square root (binary search); deterministic across platforms.
std::int64_t isqrt(std::int64_t v) {
  if (v <= 0) return 0;
  std::int64_t lo = 0, hi = 3037000499LL;  // floor(sqrt(2^63-1))
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    if (mid <= v / mid) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}
}  // namespace

RaytraceProgram::RaytraceProgram(unsigned width, unsigned height, std::uint64_t seed)
    : width_(width), height_(height), seed_(seed) {
  EDC_CHECK(width >= 8 && width <= 256, "width must be in [8,256]");
  EDC_CHECK(height >= 8 && height <= 256, "height must be in [8,256]");
  // Deterministic scene: a ground sphere plus a few floating spheres.
  trace::Rng rng(seed ^ 0x5ca1ab1eULL);
  scene_.push_back(Sphere{0, -200 * kOne, 60 * kOne, 198 * kOne, 64});
  for (int i = 0; i < 5; ++i) {
    Sphere s;
    s.cx = static_cast<std::int64_t>((rng.uniform() - 0.5) * 30.0 * kOne);
    s.cy = static_cast<std::int64_t>((rng.uniform() - 0.2) * 10.0 * kOne);
    s.cz = static_cast<std::int64_t>((20.0 + rng.uniform() * 30.0) * kOne);
    s.r = static_cast<std::int64_t>((2.0 + rng.uniform() * 4.0) * kOne);
    s.albedo = static_cast<std::int32_t>(100 + rng.below(156));
    scene_.push_back(s);
  }
  reset();
}

void RaytraceProgram::reset() {
  framebuffer_.assign(static_cast<std::size_t>(width_) * height_, 0);
  pixel_ = 0;
  last_boundary_ = Boundary::none;
}

Cycles RaytraceProgram::cycles_per_pixel() noexcept { return kCyclesPerPixel; }

Cycles RaytraceProgram::next_tick_cost() const {
  EDC_CHECK(!done(), "program finished");
  return kCyclesPerPixel;
}

std::uint8_t RaytraceProgram::shade_pixel(unsigned px, unsigned py) const {
  // Camera at origin looking +z; pixel -> direction in Q16 (unnormalised,
  // the intersection test tolerates scale).
  const std::int64_t dx =
      (static_cast<std::int64_t>(px) * 2 - width_) * kOne / static_cast<std::int64_t>(width_);
  const std::int64_t dy =
      (static_cast<std::int64_t>(height_) - static_cast<std::int64_t>(py) * 2) * kOne /
      static_cast<std::int64_t>(height_);
  const std::int64_t dz = kOne;

  std::int64_t best_t = INT64_MAX;
  std::int32_t best_albedo = 0;
  std::int64_t best_ny = 0;

  for (const Sphere& s : scene_) {
    // |o + t*d - c|^2 = r^2 with o = 0:  (d.d) t^2 - 2 (d.c) t + c.c - r^2 = 0
    const std::int64_t dd = (dx * dx + dy * dy + dz * dz) >> 16;
    const std::int64_t dc = (dx * s.cx + dy * s.cy + dz * s.cz) >> 16;
    const std::int64_t cc =
        ((s.cx * s.cx + s.cy * s.cy + s.cz * s.cz) >> 16) - ((s.r * s.r) >> 16);
    const std::int64_t disc = ((dc >> 8) * (dc >> 8)) - ((dd >> 8) * (cc >> 8));
    if (disc <= 0) continue;
    const std::int64_t sq = isqrt(disc) << 8;
    const std::int64_t t_hit = ((dc - sq) << 16) / (dd == 0 ? 1 : dd);
    if (t_hit > (kOne >> 4) && t_hit < best_t) {
      best_t = t_hit;
      best_albedo = s.albedo;
      // Surface normal y-component for Lambertian-ish top light.
      const std::int64_t hy = (t_hit * dy) >> 16;
      best_ny = ((hy - s.cy) << 8) / (s.r >> 8 == 0 ? 1 : (s.r >> 8));
    }
  }
  if (best_t == INT64_MAX) {
    // Sky gradient.
    return static_cast<std::uint8_t>(40 + (py * 40) / height_);
  }
  std::int64_t light = (best_ny + kOne) >> 9;  // map [-1,1] Q16 -> [0,256]
  if (light < 16) light = 16;
  if (light > 255) light = 255;
  return static_cast<std::uint8_t>((light * best_albedo) >> 8);
}

void RaytraceProgram::run_tick() {
  EDC_CHECK(!done(), "program finished");
  const unsigned px = pixel_ % width_;
  const unsigned py = pixel_ / width_;
  framebuffer_[pixel_] = shade_pixel(px, py);
  ++pixel_;
  last_boundary_ = (pixel_ % width_ == 0) ? Boundary::function : Boundary::loop;
}

Boundary RaytraceProgram::boundary() const { return last_boundary_; }

bool RaytraceProgram::done() const {
  return pixel_ >= static_cast<std::uint32_t>(width_) * height_;
}

double RaytraceProgram::progress() const {
  return static_cast<double>(pixel_) /
         (static_cast<double>(width_) * static_cast<double>(height_));
}

Cycles RaytraceProgram::total_cycles() const {
  return static_cast<Cycles>(width_) * height_ * kCyclesPerPixel;
}

std::vector<std::byte> RaytraceProgram::save_state() const {
  ByteWriter w;
  w.write_vector(framebuffer_);
  w.write(pixel_);
  w.write(static_cast<std::uint8_t>(last_boundary_));
  return std::move(w).take();
}

void RaytraceProgram::restore_state(std::span<const std::byte> state) {
  ByteReader r(state);
  framebuffer_ = r.read_vector<std::uint8_t>();
  pixel_ = r.read<std::uint32_t>();
  last_boundary_ = static_cast<Boundary>(r.read<std::uint8_t>());
  EDC_CHECK(r.exhausted(), "trailing bytes in raytrace state");
  EDC_CHECK(framebuffer_.size() == static_cast<std::size_t>(width_) * height_,
            "raytrace state size mismatch");
}

std::size_t RaytraceProgram::ram_footprint() const {
  return framebuffer_.size() + 32;
}

std::uint64_t RaytraceProgram::result_digest() const { return fnv1a_of(framebuffer_); }

std::string RaytraceProgram::name() const {
  return "raytrace-" + std::to_string(width_) + "x" + std::to_string(height_);
}

}  // namespace edc::workloads
