#include "edc/workloads/aes.h"

#include "edc/common/check.h"
#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"

namespace edc::workloads {

namespace {

// Software AES on a 16-bit MCU: ~6k cycles/block => ~550/round.
constexpr Cycles kCyclesPerRound = 550;

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe,
    0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4,
    0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7,
    0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3,
    0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09,
    0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3,
    0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe,
    0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92,
    0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c,
    0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2,
    0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5,
    0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86,
    0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e,
    0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42,
    0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

}  // namespace

AesProgram::AesProgram(std::size_t blocks, std::uint64_t seed)
    : total_blocks_(blocks), seed_(seed) {
  EDC_CHECK(blocks >= 1, "need at least one block");
  reset();
}

void AesProgram::reset() {
  // Key from seed; schedule expanded into RAM (as embedded AES does).
  std::uint64_t sm = seed_;
  for (int i = 0; i < 16; i += 8) {
    const std::uint64_t word = trace::splitmix64(sm);
    for (int b = 0; b < 8; ++b) {
      round_keys_[static_cast<std::size_t>(i + b)] =
          static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  std::uint8_t rcon = 1;
  for (int i = 16; i < 176; i += 4) {
    std::array<std::uint8_t, 4> temp = {
        round_keys_[static_cast<std::size_t>(i - 4)],
        round_keys_[static_cast<std::size_t>(i - 3)],
        round_keys_[static_cast<std::size_t>(i - 2)],
        round_keys_[static_cast<std::size_t>(i - 1)]};
    if (i % 16 == 0) {
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
      rcon = xtime(rcon);
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[static_cast<std::size_t>(i + b)] = static_cast<std::uint8_t>(
          round_keys_[static_cast<std::size_t>(i + b - 16)] ^
          temp[static_cast<std::size_t>(b)]);
    }
  }
  block_index_ = 0;
  round_ = 0;
  digest_ = 0xcbf29ce484222325ULL;
  last_boundary_ = Boundary::none;
  load_block();
}

void AesProgram::load_block() {
  std::uint64_t sm = seed_ ^ ((block_index_ + 1) * 0xd1b54a32d192ed03ULL);
  for (int i = 0; i < 16; i += 8) {
    const std::uint64_t word = trace::splitmix64(sm);
    for (int b = 0; b < 8; ++b) {
      state_[static_cast<std::size_t>(i + b)] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

void AesProgram::add_round_key(unsigned round) {
  for (std::size_t i = 0; i < 16; ++i) {
    state_[i] ^= round_keys_[round * 16 + i];
  }
}

void AesProgram::sub_bytes_shift_rows() {
  std::array<std::uint8_t, 16> out;
  // Column-major state layout: byte (r, c) at index c*4 + r.
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      out[c * 4 + r] = kSbox[state_[((c + r) % 4) * 4 + r]];
    }
  }
  state_ = out;
}

void AesProgram::mix_columns() {
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint8_t a0 = state_[c * 4 + 0];
    const std::uint8_t a1 = state_[c * 4 + 1];
    const std::uint8_t a2 = state_[c * 4 + 2];
    const std::uint8_t a3 = state_[c * 4 + 3];
    state_[c * 4 + 0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3);
    state_[c * 4 + 1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3);
    state_[c * 4 + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3);
    state_[c * 4 + 3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3));
  }
}

Cycles AesProgram::next_tick_cost() const {
  EDC_CHECK(!done(), "program finished");
  return kCyclesPerRound;
}

void AesProgram::run_tick() {
  EDC_CHECK(!done(), "program finished");
  if (round_ == 0) {
    add_round_key(0);
    round_ = 1;
    last_boundary_ = Boundary::loop;
    return;
  }
  sub_bytes_shift_rows();
  if (round_ < 10) {
    mix_columns();
  }
  add_round_key(round_);
  if (round_ == 10) {
    // Block complete: fold the ciphertext into the chained digest.
    digest_ = fnv1a(std::as_bytes(std::span<const std::uint8_t>(state_)), digest_);
    ++block_index_;
    round_ = 0;
    last_boundary_ = Boundary::function;
    if (!done()) load_block();
  } else {
    ++round_;
    last_boundary_ = Boundary::loop;
  }
}

Boundary AesProgram::boundary() const { return last_boundary_; }

bool AesProgram::done() const { return block_index_ >= total_blocks_; }

double AesProgram::progress() const {
  const double per_block = 11.0;
  const double ticks = static_cast<double>(block_index_) * per_block +
                       (round_ == 0 ? 0.0 : static_cast<double>(round_));
  return done() ? 1.0 : ticks / (static_cast<double>(total_blocks_) * per_block);
}

Cycles AesProgram::total_cycles() const {
  return static_cast<Cycles>(total_blocks_) * 11 * kCyclesPerRound;
}

std::vector<std::byte> AesProgram::save_state() const {
  ByteWriter w;
  w.write(round_keys_);
  w.write(state_);
  w.write(block_index_);
  w.write(round_);
  w.write(digest_);
  w.write(static_cast<std::uint8_t>(last_boundary_));
  return std::move(w).take();
}

void AesProgram::restore_state(std::span<const std::byte> state) {
  ByteReader r(state);
  round_keys_ = r.read<std::array<std::uint8_t, 176>>();
  state_ = r.read<std::array<std::uint8_t, 16>>();
  block_index_ = r.read<std::uint64_t>();
  round_ = r.read<std::uint8_t>();
  digest_ = r.read<std::uint64_t>();
  last_boundary_ = static_cast<Boundary>(r.read<std::uint8_t>());
  EDC_CHECK(r.exhausted(), "trailing bytes in AES state");
  EDC_CHECK(round_ <= 10, "AES round out of range");
}

std::size_t AesProgram::ram_footprint() const {
  return sizeof(round_keys_) + sizeof(state_) + 64;
}

std::uint64_t AesProgram::result_digest() const { return digest_; }

std::string AesProgram::name() const {
  return "aes128-" + std::to_string(total_blocks_) + "blk";
}

}  // namespace edc::workloads
