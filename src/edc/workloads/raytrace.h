// A small sphere-scene ray tracer (the application of Fig 5 [11]).
//
// Integer/fixed-point ray-sphere intersection with Lambertian shading over
// a deterministic scene; tick = one pixel. Used both as an intermittent
// workload and as the reference kernel whose per-pixel cost calibrates the
// MPSoC performance model in edc/neutral.
#pragma once

#include <cstdint>
#include <vector>

#include "edc/workloads/program.h"

namespace edc::workloads {

class RaytraceProgram final : public Program {
 public:
  RaytraceProgram(unsigned width, unsigned height, std::uint64_t seed);

  void reset() override;
  [[nodiscard]] Cycles next_tick_cost() const override;
  void run_tick() override;
  [[nodiscard]] Boundary boundary() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] double progress() const override;
  [[nodiscard]] std::uint64_t ticks_done() const override { return pixel_; }
  [[nodiscard]] Cycles total_cycles() const override;
  [[nodiscard]] std::vector<std::byte> save_state() const override;
  void restore_state(std::span<const std::byte> state) override;
  [[nodiscard]] std::size_t ram_footprint() const override;
  [[nodiscard]] std::uint64_t result_digest() const override;
  [[nodiscard]] std::string name() const override;

  /// Cycles required per rendered pixel (the MPSoC calibration constant).
  static Cycles cycles_per_pixel() noexcept;

 private:
  struct Sphere {  // fixed-point Q16 coordinates
    std::int64_t cx, cy, cz, r;
    std::int32_t albedo;
  };

  [[nodiscard]] std::uint8_t shade_pixel(unsigned px, unsigned py) const;

  // ROM.
  unsigned width_;
  unsigned height_;
  std::uint64_t seed_;
  std::vector<Sphere> scene_;

  // RAM image.
  std::vector<std::uint8_t> framebuffer_;
  std::uint32_t pixel_ = 0;
  Boundary last_boundary_ = Boundary::none;
};

}  // namespace edc::workloads
