// Streaming CRC-32 over sensor-style data.
//
// Models an RFID-scale device integrity-checking a stream: each tick fetches
// one 64-byte block (regenerated deterministically from the seed, as if read
// from a sensor FIFO) and folds it into the running CRC. The volatile state
// is tiny (~tens of bytes), which is the regime where QuickRecall-style
// register-only snapshots shine.
#pragma once

#include <array>
#include <cstdint>

#include "edc/workloads/program.h"

namespace edc::workloads {

class Crc32Program final : public Program {
 public:
  /// Processes `total_bytes` (multiple of 64) of generated data.
  Crc32Program(std::size_t total_bytes, std::uint64_t seed);

  void reset() override;
  [[nodiscard]] Cycles next_tick_cost() const override;
  void run_tick() override;
  [[nodiscard]] Boundary boundary() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] double progress() const override;
  [[nodiscard]] std::uint64_t ticks_done() const override { return block_index_; }
  [[nodiscard]] Cycles total_cycles() const override;
  [[nodiscard]] std::vector<std::byte> save_state() const override;
  void restore_state(std::span<const std::byte> state) override;
  [[nodiscard]] std::size_t ram_footprint() const override;
  [[nodiscard]] std::uint64_t result_digest() const override;
  [[nodiscard]] std::string name() const override;

  /// The final CRC value (valid once done()).
  [[nodiscard]] std::uint32_t crc() const noexcept { return crc_ ^ 0xffffffffu; }

 private:
  static constexpr std::size_t kBlockBytes = 64;

  // ROM.
  std::size_t total_blocks_;
  std::uint64_t seed_;
  std::array<std::uint32_t, 256> table_{};

  // RAM image.
  std::uint64_t block_index_ = 0;
  std::uint32_t crc_ = 0xffffffffu;
  Boundary last_boundary_ = Boundary::none;
};

}  // namespace edc::workloads
