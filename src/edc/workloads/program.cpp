#include "edc/workloads/program.h"

#include "edc/common/check.h"
#include "edc/workloads/aes.h"
#include "edc/workloads/crc32.h"
#include "edc/workloads/fft.h"
#include "edc/workloads/matmul.h"
#include "edc/workloads/raytrace.h"
#include "edc/workloads/sensing.h"
#include "edc/workloads/sort.h"

namespace edc::workloads {

std::uint64_t golden_digest(Program& program) {
  program.reset();
  while (!program.done()) program.run_tick();
  return program.result_digest();
}

std::unique_ptr<Program> make_program(const std::string& kind, std::uint64_t seed) {
  if (kind == "fft") return std::make_unique<FftProgram>(10, seed);
  if (kind == "fft-small") return std::make_unique<FftProgram>(8, seed);
  if (kind == "fft-large") return std::make_unique<FftProgram>(11, seed);
  if (kind == "crc") return std::make_unique<Crc32Program>(16 * 1024, seed);
  if (kind == "aes") return std::make_unique<AesProgram>(64, seed);
  if (kind == "matmul") return std::make_unique<MatMulProgram>(24, seed);
  if (kind == "sort") return std::make_unique<SortProgram>(2048, seed);
  if (kind == "sense") return std::make_unique<SensingProgram>(8, seed);
  if (kind == "raytrace") return std::make_unique<RaytraceProgram>(32, 24, seed);
  EDC_CHECK(false, "unknown program kind: " + kind);
  return nullptr;
}

std::vector<std::string> standard_program_kinds() {
  return {"fft",  "fft-small", "fft-large", "crc",      "aes",
          "matmul", "sort",    "sense",     "raytrace"};
}

}  // namespace edc::workloads
