#include "edc/workloads/sort.h"

#include <algorithm>

#include "edc/common/check.h"
#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"

namespace edc::workloads {

namespace {
// Compare + move on a 16-bit MCU with 32-bit elements: ~12 cycles/element.
constexpr Cycles kCyclesPerElement = 12;
}  // namespace

SortProgram::SortProgram(std::size_t n, std::uint64_t seed) : n_(n), seed_(seed) {
  EDC_CHECK(n >= 16 && n <= 65536, "n must be in [16, 65536]");
  passes_ = 0;
  for (std::size_t w = 1; w < n_; w *= 2) ++passes_;
  reset();
}

void SortProgram::reset() {
  trace::Rng rng(seed_);
  buf0_.assign(n_, 0);
  buf1_.assign(n_, 0);
  for (auto& x : buf0_) x = static_cast<std::int32_t>(rng() & 0x7fffffffu);
  src_is_0_ = 1;
  width_ = 1;
  pair_start_ = 0;
  finished_ = (passes_ == 0) ? 1 : 0;
  ticks_done_ = 0;
  last_boundary_ = Boundary::none;
  if (!finished_) open_pair();
}

void SortProgram::open_pair() {
  i_ = pair_start_;
  j_ = static_cast<std::uint32_t>(
      std::min<std::size_t>(pair_start_ + width_, n_));
  k_ = pair_start_;
}

Cycles SortProgram::next_tick_cost() const {
  EDC_CHECK(!done(), "program finished");
  const auto pair_end = static_cast<std::uint32_t>(
      std::min<std::size_t>(pair_start_ + 2ull * width_, n_));
  const std::uint32_t remaining = pair_end - k_;
  return static_cast<Cycles>(std::min(kBatch, remaining)) * kCyclesPerElement;
}

void SortProgram::run_tick() {
  EDC_CHECK(!done(), "program finished");
  const auto& src = src_is_0_ ? buf0_ : buf1_;
  auto& dst = src_is_0_ ? buf1_ : buf0_;
  const auto left_end = static_cast<std::uint32_t>(
      std::min<std::size_t>(pair_start_ + width_, n_));
  const auto pair_end = static_cast<std::uint32_t>(
      std::min<std::size_t>(pair_start_ + 2ull * width_, n_));

  std::uint32_t produced = 0;
  while (produced < kBatch && k_ < pair_end) {
    if (i_ < left_end && (j_ >= pair_end || src[i_] <= src[j_])) {
      dst[k_++] = src[i_++];
    } else {
      dst[k_++] = src[j_++];
    }
    ++produced;
  }
  ++ticks_done_;
  last_boundary_ = Boundary::loop;

  if (k_ == pair_end) {
    pair_start_ = pair_end;
    if (pair_start_ >= n_) {
      // Pass complete: the destination becomes the new source.
      src_is_0_ = static_cast<std::uint8_t>(!src_is_0_);
      pair_start_ = 0;
      last_boundary_ = Boundary::function;
      if (static_cast<std::size_t>(width_) * 2 >= n_) {
        finished_ = 1;
        return;
      }
      width_ *= 2;
    }
    open_pair();
  }
}

Boundary SortProgram::boundary() const { return last_boundary_; }

bool SortProgram::done() const { return finished_ != 0; }

double SortProgram::progress() const {
  if (done()) return 1.0;
  std::uint32_t pass_index = 0;
  for (std::uint32_t w = 1; w < width_; w *= 2) ++pass_index;
  const double total = static_cast<double>(passes_) * static_cast<double>(n_);
  return (static_cast<double>(pass_index) * static_cast<double>(n_) +
          static_cast<double>(k_)) /
         total;
}

Cycles SortProgram::total_cycles() const {
  return static_cast<Cycles>(passes_) * n_ * kCyclesPerElement;
}

std::vector<std::byte> SortProgram::save_state() const {
  ByteWriter w;
  w.write_vector(buf0_);
  w.write_vector(buf1_);
  w.write(src_is_0_);
  w.write(width_);
  w.write(pair_start_);
  w.write(i_);
  w.write(j_);
  w.write(k_);
  w.write(finished_);
  w.write(ticks_done_);
  w.write(static_cast<std::uint8_t>(last_boundary_));
  return std::move(w).take();
}

void SortProgram::restore_state(std::span<const std::byte> state) {
  ByteReader r(state);
  buf0_ = r.read_vector<std::int32_t>();
  buf1_ = r.read_vector<std::int32_t>();
  src_is_0_ = r.read<std::uint8_t>();
  width_ = r.read<std::uint32_t>();
  pair_start_ = r.read<std::uint32_t>();
  i_ = r.read<std::uint32_t>();
  j_ = r.read<std::uint32_t>();
  k_ = r.read<std::uint32_t>();
  finished_ = r.read<std::uint8_t>();
  ticks_done_ = r.read<std::uint64_t>();
  last_boundary_ = static_cast<Boundary>(r.read<std::uint8_t>());
  EDC_CHECK(r.exhausted(), "trailing bytes in sort state");
  EDC_CHECK(buf0_.size() == n_ && buf1_.size() == n_, "sort state size mismatch");
}

std::size_t SortProgram::ram_footprint() const {
  return 2 * n_ * sizeof(std::int32_t) + 48;
}

const std::vector<std::int32_t>& SortProgram::result() const {
  EDC_CHECK(done(), "sort not finished");
  return src_is_0_ ? buf0_ : buf1_;
}

std::uint64_t SortProgram::result_digest() const { return fnv1a_of(result()); }

std::string SortProgram::name() const { return "sort-" + std::to_string(n_); }

}  // namespace edc::workloads
