#include "edc/workloads/matmul.h"

#include "edc/common/check.h"
#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"

namespace edc::workloads {

namespace {
// MAC on a 16-bit MCU with 32-bit accumulate: ~8 cycles incl. addressing.
constexpr Cycles kCyclesPerMac = 8;
}  // namespace

MatMulProgram::MatMulProgram(std::size_t n, std::uint64_t seed) : n_(n), seed_(seed) {
  EDC_CHECK(n >= 2 && n <= 64, "n must be in [2,64]");
  reset();
}

void MatMulProgram::reset() {
  trace::Rng rng(seed_);
  a_.assign(n_ * n_, 0);
  b_.assign(n_ * n_, 0);
  c_.assign(n_ * n_, 0);
  for (auto& x : a_) x = static_cast<std::int32_t>(rng.below(2048)) - 1024;
  for (auto& x : b_) x = static_cast<std::int32_t>(rng.below(2048)) - 1024;
  element_ = 0;
  last_boundary_ = Boundary::none;
}

Cycles MatMulProgram::next_tick_cost() const {
  EDC_CHECK(!done(), "program finished");
  return static_cast<Cycles>(n_) * kCyclesPerMac;
}

void MatMulProgram::run_tick() {
  EDC_CHECK(!done(), "program finished");
  const std::size_t row = element_ / n_;
  const std::size_t col = element_ % n_;
  std::int32_t acc = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    acc += a_[row * n_ + k] * b_[k * n_ + col];
  }
  c_[row * n_ + col] = acc;
  ++element_;
  last_boundary_ = (element_ % n_ == 0) ? Boundary::function : Boundary::loop;
}

Boundary MatMulProgram::boundary() const { return last_boundary_; }

bool MatMulProgram::done() const { return element_ >= n_ * n_; }

double MatMulProgram::progress() const {
  return static_cast<double>(element_) / static_cast<double>(n_ * n_);
}

Cycles MatMulProgram::total_cycles() const {
  return static_cast<Cycles>(n_ * n_ * n_) * kCyclesPerMac;
}

std::vector<std::byte> MatMulProgram::save_state() const {
  ByteWriter w;
  w.write_vector(a_);
  w.write_vector(b_);
  w.write_vector(c_);
  w.write(element_);
  w.write(static_cast<std::uint8_t>(last_boundary_));
  return std::move(w).take();
}

void MatMulProgram::restore_state(std::span<const std::byte> state) {
  ByteReader r(state);
  a_ = r.read_vector<std::int32_t>();
  b_ = r.read_vector<std::int32_t>();
  c_ = r.read_vector<std::int32_t>();
  element_ = r.read<std::uint32_t>();
  last_boundary_ = static_cast<Boundary>(r.read<std::uint8_t>());
  EDC_CHECK(r.exhausted(), "trailing bytes in matmul state");
  EDC_CHECK(a_.size() == n_ * n_ && b_.size() == n_ * n_ && c_.size() == n_ * n_,
            "matmul state size mismatch");
}

std::size_t MatMulProgram::ram_footprint() const {
  return 3 * n_ * n_ * sizeof(std::int32_t) + 32;
}

std::uint64_t MatMulProgram::result_digest() const { return fnv1a_of(c_); }

std::string MatMulProgram::name() const {
  return "matmul-" + std::to_string(n_) + "x" + std::to_string(n_);
}

}  // namespace edc::workloads
