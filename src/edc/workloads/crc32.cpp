#include "edc/workloads/crc32.h"

#include "edc/common/check.h"
#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"

namespace edc::workloads {

namespace {
// Table-driven CRC on a 16-bit MCU: ~10 cycles/byte incl. fetch.
constexpr Cycles kCyclesPerBlock = 64 * 10;
}  // namespace

Crc32Program::Crc32Program(std::size_t total_bytes, std::uint64_t seed)
    : total_blocks_(total_bytes / kBlockBytes), seed_(seed) {
  EDC_CHECK(total_bytes >= kBlockBytes && total_bytes % kBlockBytes == 0,
            "total_bytes must be a positive multiple of 64");
  // CRC-32 (IEEE 802.3, reflected) table — ROM contents.
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table_[i] = c;
  }
  reset();
}

void Crc32Program::reset() {
  block_index_ = 0;
  crc_ = 0xffffffffu;
  last_boundary_ = Boundary::none;
}

Cycles Crc32Program::next_tick_cost() const {
  EDC_CHECK(!done(), "program finished");
  return kCyclesPerBlock;
}

void Crc32Program::run_tick() {
  EDC_CHECK(!done(), "program finished");
  // Regenerate the block from (seed, block_index): the sensor FIFO replays
  // deterministically, so restarted reads observe identical data.
  std::uint64_t sm = seed_ ^ (block_index_ * 0x9e3779b97f4a7c15ULL + 1);
  for (std::size_t i = 0; i < kBlockBytes; i += 8) {
    std::uint64_t word = trace::splitmix64(sm);
    for (std::size_t b = 0; b < 8; ++b) {
      const auto byte = static_cast<std::uint8_t>(word >> (8 * b));
      crc_ = table_[(crc_ ^ byte) & 0xffu] ^ (crc_ >> 8);
    }
  }
  ++block_index_;
  // Every block ends a loop iteration; every 16th (1 KiB) ends a "function".
  last_boundary_ = (block_index_ % 16 == 0 || block_index_ == total_blocks_)
                       ? Boundary::function
                       : Boundary::loop;
}

Boundary Crc32Program::boundary() const { return last_boundary_; }

bool Crc32Program::done() const { return block_index_ >= total_blocks_; }

double Crc32Program::progress() const {
  return static_cast<double>(block_index_) / static_cast<double>(total_blocks_);
}

Cycles Crc32Program::total_cycles() const {
  return static_cast<Cycles>(total_blocks_) * kCyclesPerBlock;
}

std::vector<std::byte> Crc32Program::save_state() const {
  ByteWriter w;
  w.write(block_index_);
  w.write(crc_);
  w.write(static_cast<std::uint8_t>(last_boundary_));
  return std::move(w).take();
}

void Crc32Program::restore_state(std::span<const std::byte> state) {
  ByteReader r(state);
  block_index_ = r.read<std::uint64_t>();
  crc_ = r.read<std::uint32_t>();
  last_boundary_ = static_cast<Boundary>(r.read<std::uint8_t>());
  EDC_CHECK(r.exhausted(), "trailing bytes in CRC state");
  EDC_CHECK(block_index_ <= total_blocks_, "CRC state out of range");
}

std::size_t Crc32Program::ram_footprint() const {
  // Stream window + scalars + stack: the small-state regime.
  return kBlockBytes + 48;
}

std::uint64_t Crc32Program::result_digest() const {
  const std::uint32_t final_crc = crc();
  ByteWriter w;
  w.write(final_crc);
  const auto bytes = std::move(w).take();
  return fnv1a(bytes);
}

std::string Crc32Program::name() const {
  return "crc32-" + std::to_string(total_blocks_ * kBlockBytes / 1024) + "KiB";
}

}  // namespace edc::workloads
