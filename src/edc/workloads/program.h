// Resumable program model.
//
// A Program is a computation expressed as a sequence of indivisible "ticks"
// (a butterfly, a CRC block, an AES round, ...), each with a deterministic
// cycle cost. All state that survives between ticks is serializable — the
// program's "RAM image" — so a checkpoint policy can snapshot it to NVM and
// restore it after a power outage, and the final output is bit-exact
// regardless of how execution was sliced (the central transient-computing
// correctness property, tested in tests/intermittent_correctness_test.cpp).
//
// Checkpoint candidates (Mementos §II.B): each tick reports whether it ends
// a loop iteration and/or a function-level unit, which is where Mementos'
// compile-time instrumentation would insert checkpoint calls.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "edc/common/units.h"

namespace edc::workloads {

/// Granularity of a checkpoint candidate (Mementos' instrumentation modes).
enum class Boundary : std::uint8_t {
  none = 0,       ///< mid-computation; only interrupt-driven saves possible
  loop = 1,       ///< end of a loop iteration
  function = 2,   ///< end of a function-level unit (implies loop)
};

class Program {
 public:
  virtual ~Program() = default;

  /// Re-initialises the program to its power-on state (inputs regenerated
  /// from the construction seed; all progress lost).
  virtual void reset() = 0;

  /// Cycle cost of the next tick. Precondition: !done().
  [[nodiscard]] virtual Cycles next_tick_cost() const = 0;

  /// Executes exactly one tick. Precondition: !done().
  virtual void run_tick() = 0;

  /// Boundary kind reached after the most recent tick.
  [[nodiscard]] virtual Boundary boundary() const = 0;

  [[nodiscard]] virtual bool done() const = 0;

  /// Fraction of total work completed, in [0, 1]; must be monotone in ticks.
  [[nodiscard]] virtual double progress() const = 0;

  /// Number of ticks completed since reset (restored by restore_state).
  /// Strictly increases by one per run_tick(); used to distinguish forward
  /// progress from re-executed work after a rollback.
  [[nodiscard]] virtual std::uint64_t ticks_done() const = 0;

  /// Total cycles of the whole computation when run without interruption.
  [[nodiscard]] virtual Cycles total_cycles() const = 0;

  /// Serialises the volatile state (RAM image).
  [[nodiscard]] virtual std::vector<std::byte> save_state() const = 0;

  /// Restores a previously saved state. Throws on malformed/truncated input.
  virtual void restore_state(std::span<const std::byte> state) = 0;

  /// Bytes of volatile RAM the computation occupies (determines snapshot
  /// time/energy on SRAM-based platforms).
  [[nodiscard]] virtual std::size_t ram_footprint() const = 0;

  /// Digest of the output; only meaningful once done().
  [[nodiscard]] virtual std::uint64_t result_digest() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Runs `program` to completion without interruption and returns its digest
/// (the "golden" result used to verify intermittent executions). The program
/// is reset before and left completed after.
std::uint64_t golden_digest(Program& program);

/// Factory for the standard workload suite (used by tests and benches):
/// "fft" (1024-pt), "fft-small" (256-pt), "fft-large" (2048-pt), "crc"
/// (16 KiB), "aes" (64 blocks), "matmul" (24x24), "sort" (2048), "sense"
/// (8 rounds), "raytrace" (32x24).
std::unique_ptr<Program> make_program(const std::string& kind, std::uint64_t seed = 1);

/// Names accepted by make_program.
std::vector<std::string> standard_program_kinds();

}  // namespace edc::workloads
