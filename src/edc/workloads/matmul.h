// Dense integer matrix multiply C = A * B.
//
// Tick = one output element (a full dot product). Loop boundary after each
// element; function boundary after each output row. The O(N^2) RAM image
// (A, B, C) exercises the large-snapshot regime for SRAM-based policies.
#pragma once

#include <cstdint>
#include <vector>

#include "edc/workloads/program.h"

namespace edc::workloads {

class MatMulProgram final : public Program {
 public:
  MatMulProgram(std::size_t n, std::uint64_t seed);

  void reset() override;
  [[nodiscard]] Cycles next_tick_cost() const override;
  void run_tick() override;
  [[nodiscard]] Boundary boundary() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] double progress() const override;
  [[nodiscard]] std::uint64_t ticks_done() const override { return element_; }
  [[nodiscard]] Cycles total_cycles() const override;
  [[nodiscard]] std::vector<std::byte> save_state() const override;
  void restore_state(std::span<const std::byte> state) override;
  [[nodiscard]] std::size_t ram_footprint() const override;
  [[nodiscard]] std::uint64_t result_digest() const override;
  [[nodiscard]] std::string name() const override;

 private:
  // ROM.
  std::size_t n_;
  std::uint64_t seed_;

  // RAM image.
  std::vector<std::int32_t> a_;
  std::vector<std::int32_t> b_;
  std::vector<std::int32_t> c_;
  std::uint32_t element_ = 0;  // flat index of the next output element
  Boundary last_boundary_ = Boundary::none;
};

}  // namespace edc::workloads
