#include "edc/workloads/fft.h"

#include <cmath>

#include "edc/common/check.h"
#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"

namespace edc::workloads {

namespace {
constexpr Cycles kSwapTickCycles = 10;       // index reverse + conditional swap
constexpr Cycles kButterflyTickCycles = 64;  // 4 Q15 multiplies + adds/shifts
constexpr double kPi = 3.14159265358979323846;
}  // namespace

FftProgram::FftProgram(unsigned log2_size, std::uint64_t seed)
    : log2_size_(log2_size), size_(1u << log2_size), seed_(seed) {
  EDC_CHECK(log2_size >= 4 && log2_size <= 12, "log2_size must be in [4,12]");
  // Twiddle table: e^{-j*2*pi*k/N} for k in [0, N/2). ROM contents.
  twiddle_cos_.resize(size_ / 2);
  twiddle_sin_.resize(size_ / 2);
  for (std::uint32_t k = 0; k < size_ / 2; ++k) {
    const double angle = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(size_);
    twiddle_cos_[k] = static_cast<std::int16_t>(std::lround(32767.0 * std::cos(angle)));
    twiddle_sin_[k] = static_cast<std::int16_t>(std::lround(32767.0 * std::sin(angle)));
  }
  reset();
}

void FftProgram::reset() {
  re_.assign(size_, 0);
  im_.assign(size_, 0);
  trace::Rng rng(seed_);
  for (std::uint32_t i = 0; i < size_; ++i) {
    // 12-bit ADC-like samples centred on zero.
    re_[i] = static_cast<std::int16_t>(static_cast<int>(rng.below(4096)) - 2048);
    im_[i] = 0;
  }
  phase_ = Phase::bit_reverse;
  br_index_ = 0;
  stage_len_ = 2;
  pair_index_ = 0;
  ticks_done_ = 0;
  last_boundary_ = Boundary::none;
}

Cycles FftProgram::next_tick_cost() const {
  EDC_CHECK(!done(), "program finished");
  return phase_ == Phase::bit_reverse ? kSwapTickCycles : kButterflyTickCycles;
}

Boundary FftProgram::boundary() const { return last_boundary_; }

bool FftProgram::done() const { return phase_ == Phase::finished; }

double FftProgram::progress() const {
  const auto total =
      static_cast<double>(size_) +
      static_cast<double>(size_ / 2) * static_cast<double>(log2_size_);
  return done() ? 1.0 : static_cast<double>(ticks_done_) / total;
}

Cycles FftProgram::total_cycles() const {
  return static_cast<Cycles>(size_) * kSwapTickCycles +
         static_cast<Cycles>(size_ / 2) * log2_size_ * kButterflyTickCycles;
}

void FftProgram::run_tick() {
  EDC_CHECK(!done(), "program finished");
  if (phase_ == Phase::bit_reverse) {
    run_bit_reverse_tick();
  } else {
    run_butterfly_tick();
  }
  ++ticks_done_;
}

void FftProgram::run_bit_reverse_tick() {
  // Reverse the log2_size_-bit index and swap once per pair.
  std::uint32_t i = br_index_;
  std::uint32_t rev = 0;
  for (unsigned b = 0; b < log2_size_; ++b) {
    rev = (rev << 1) | ((i >> b) & 1u);
  }
  if (rev > i) {
    std::swap(re_[i], re_[rev]);
    std::swap(im_[i], im_[rev]);
  }
  ++br_index_;
  if (br_index_ == size_) {
    phase_ = Phase::butterflies;
    last_boundary_ = Boundary::function;  // end of the bit-reverse pass
  } else {
    last_boundary_ = Boundary::loop;
  }
}

void FftProgram::run_butterfly_tick() {
  const std::uint32_t half = stage_len_ / 2;
  const std::uint32_t block = pair_index_ / half;
  const std::uint32_t j = pair_index_ % half;
  const std::uint32_t top = block * stage_len_ + j;
  const std::uint32_t bot = top + half;
  const std::uint32_t tw = j * (size_ / stage_len_);

  const std::int32_t wc = twiddle_cos_[tw];
  const std::int32_t ws = twiddle_sin_[tw];
  const std::int32_t br = re_[bot];
  const std::int32_t bi = im_[bot];
  // (br + j*bi) * (wc + j*ws) in Q15, rounded.
  const std::int32_t tr = static_cast<std::int32_t>((br * wc - bi * ws + 16384) >> 15);
  const std::int32_t ti = static_cast<std::int32_t>((br * ws + bi * wc + 16384) >> 15);
  // Per-stage scaling by 1/2 prevents overflow (|x| grows <= 2x per stage).
  const std::int32_t ar = re_[top];
  const std::int32_t ai = im_[top];
  re_[top] = static_cast<std::int16_t>((ar + tr) >> 1);
  im_[top] = static_cast<std::int16_t>((ai + ti) >> 1);
  re_[bot] = static_cast<std::int16_t>((ar - tr) >> 1);
  im_[bot] = static_cast<std::int16_t>((ai - ti) >> 1);

  ++pair_index_;
  if (pair_index_ == size_ / 2) {
    pair_index_ = 0;
    if (stage_len_ == size_) {
      phase_ = Phase::finished;
    } else {
      stage_len_ *= 2;
    }
    last_boundary_ = Boundary::function;  // end of an FFT stage
  } else {
    last_boundary_ = Boundary::loop;
  }
}

std::vector<std::byte> FftProgram::save_state() const {
  ByteWriter w;
  w.write_vector(re_);
  w.write_vector(im_);
  w.write(static_cast<std::uint8_t>(phase_));
  w.write(br_index_);
  w.write(stage_len_);
  w.write(pair_index_);
  w.write(ticks_done_);
  w.write(static_cast<std::uint8_t>(last_boundary_));
  return std::move(w).take();
}

void FftProgram::restore_state(std::span<const std::byte> state) {
  ByteReader r(state);
  re_ = r.read_vector<std::int16_t>();
  im_ = r.read_vector<std::int16_t>();
  phase_ = static_cast<Phase>(r.read<std::uint8_t>());
  br_index_ = r.read<std::uint32_t>();
  stage_len_ = r.read<std::uint32_t>();
  pair_index_ = r.read<std::uint32_t>();
  ticks_done_ = r.read<std::uint64_t>();
  last_boundary_ = static_cast<Boundary>(r.read<std::uint8_t>());
  EDC_CHECK(r.exhausted(), "trailing bytes in FFT state");
  EDC_CHECK(re_.size() == size_ && im_.size() == size_, "FFT state size mismatch");
}

std::size_t FftProgram::ram_footprint() const {
  // Sample arrays plus the handful of scalars above (indices, phase, stack).
  return size_ * 2 * sizeof(std::int16_t) + 32;
}

std::uint64_t FftProgram::result_digest() const {
  std::uint64_t h = fnv1a_of(re_);
  return fnv1a_of(im_, h);
}

std::string FftProgram::name() const {
  return "fft-" + std::to_string(size_);
}

}  // namespace edc::workloads
