#include "edc/workloads/sensing.h"

#include "edc/common/check.h"
#include "edc/trace/rng.h"
#include "edc/workloads/bytebuf.h"

namespace edc::workloads {

namespace {
constexpr Cycles kSampleCycles = 40;    // ADC conversion + store
constexpr Cycles kFilterCycles = 90;    // kTaps MACs + shift
constexpr Cycles kTransmitCycles = 60;  // SPI byte to the radio FIFO
}  // namespace

SensingProgram::SensingProgram(std::size_t rounds, std::uint64_t seed)
    : total_rounds_(rounds), seed_(seed) {
  EDC_CHECK(rounds >= 1, "need at least one round");
  // Simple low-pass taps in Q7 (sum = 128), fixed program constants.
  taps_ = {4, 12, 24, 24, 24, 24, 12, 4};
  reset();
}

void SensingProgram::reset() {
  window_.fill(0);
  filtered_.fill(0);
  packet_.fill(0);
  round_ = 0;
  phase_ = PhaseId::sample;
  cursor_ = 0;
  digest_ = 0xcbf29ce484222325ULL;
  last_boundary_ = Boundary::none;
}

Cycles SensingProgram::next_tick_cost() const {
  EDC_CHECK(!done(), "program finished");
  switch (phase_) {
    case PhaseId::sample: return kSampleCycles;
    case PhaseId::filter: return kFilterCycles;
    case PhaseId::transmit: return kTransmitCycles;
  }
  return 0;
}

Cycles SensingProgram::cycles_per_round() const {
  return kWindow * kSampleCycles + kWindow * kFilterCycles +
         kPacketBytes * kTransmitCycles;
}

void SensingProgram::run_tick() {
  EDC_CHECK(!done(), "program finished");
  switch (phase_) {
    case PhaseId::sample: {
      // "ADC reading": deterministic pseudo-sensor keyed by (round, index).
      std::uint64_t sm = seed_ ^ (round_ * 1000003ULL + cursor_);
      window_[cursor_] =
          static_cast<std::int16_t>(static_cast<int>(trace::splitmix64(sm) & 0xfff) - 2048);
      ++cursor_;
      if (cursor_ == kWindow) {
        phase_ = PhaseId::filter;
        cursor_ = 0;
        last_boundary_ = Boundary::function;
      } else {
        last_boundary_ = Boundary::loop;
      }
      break;
    }
    case PhaseId::filter: {
      std::int32_t acc = 0;
      for (std::size_t t = 0; t < kTaps; ++t) {
        const std::size_t idx = (cursor_ + kWindow - t) % kWindow;
        acc += static_cast<std::int32_t>(window_[idx]) * taps_[t];
      }
      filtered_[cursor_] = static_cast<std::int16_t>(acc >> 7);
      ++cursor_;
      if (cursor_ == kWindow) {
        // Build the packet: the strongest 8 filtered values, little-endian.
        for (std::size_t b = 0; b < kPacketBytes; b += 2) {
          const std::int16_t v = filtered_[b * (kWindow / kPacketBytes)];
          packet_[b] = static_cast<std::uint8_t>(v & 0xff);
          packet_[b + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
        }
        phase_ = PhaseId::transmit;
        cursor_ = 0;
        last_boundary_ = Boundary::function;
      } else {
        last_boundary_ = Boundary::loop;
      }
      break;
    }
    case PhaseId::transmit: {
      digest_ = fnv1a(std::as_bytes(std::span<const std::uint8_t>(&packet_[cursor_], 1)),
                      digest_);
      ++cursor_;
      if (cursor_ == kPacketBytes) {
        ++round_;
        phase_ = PhaseId::sample;
        cursor_ = 0;
        last_boundary_ = Boundary::function;  // round (task) boundary
      } else {
        last_boundary_ = Boundary::loop;
      }
      break;
    }
  }
}

Boundary SensingProgram::boundary() const { return last_boundary_; }

std::uint64_t SensingProgram::ticks_done() const {
  const std::uint64_t ticks_per_round = kWindow + kWindow + kPacketBytes;
  std::uint64_t ticks = round_ * ticks_per_round;
  switch (phase_) {
    case PhaseId::sample: ticks += cursor_; break;
    case PhaseId::filter: ticks += kWindow + cursor_; break;
    case PhaseId::transmit: ticks += 2 * kWindow + cursor_; break;
  }
  return ticks;
}

bool SensingProgram::done() const { return round_ >= total_rounds_; }

double SensingProgram::progress() const {
  if (done()) return 1.0;
  const double ticks_per_round = kWindow + kWindow + kPacketBytes;
  double ticks = static_cast<double>(round_) * ticks_per_round;
  switch (phase_) {
    case PhaseId::sample: ticks += cursor_; break;
    case PhaseId::filter: ticks += kWindow + cursor_; break;
    case PhaseId::transmit: ticks += 2.0 * kWindow + cursor_; break;
  }
  return ticks / (static_cast<double>(total_rounds_) * ticks_per_round);
}

Cycles SensingProgram::total_cycles() const {
  return static_cast<Cycles>(total_rounds_) * cycles_per_round();
}

std::vector<std::byte> SensingProgram::save_state() const {
  ByteWriter w;
  w.write(window_);
  w.write(filtered_);
  w.write(packet_);
  w.write(round_);
  w.write(static_cast<std::uint8_t>(phase_));
  w.write(cursor_);
  w.write(digest_);
  w.write(static_cast<std::uint8_t>(last_boundary_));
  return std::move(w).take();
}

void SensingProgram::restore_state(std::span<const std::byte> state) {
  ByteReader r(state);
  window_ = r.read<std::array<std::int16_t, kWindow>>();
  filtered_ = r.read<std::array<std::int16_t, kWindow>>();
  packet_ = r.read<std::array<std::uint8_t, kPacketBytes>>();
  round_ = r.read<std::uint32_t>();
  phase_ = static_cast<PhaseId>(r.read<std::uint8_t>());
  cursor_ = r.read<std::uint32_t>();
  digest_ = r.read<std::uint64_t>();
  last_boundary_ = static_cast<Boundary>(r.read<std::uint8_t>());
  EDC_CHECK(r.exhausted(), "trailing bytes in sensing state");
}

std::size_t SensingProgram::ram_footprint() const {
  return sizeof(window_) + sizeof(filtered_) + sizeof(packet_) + 64;
}

std::uint64_t SensingProgram::result_digest() const { return digest_; }

std::string SensingProgram::name() const {
  return "sense-" + std::to_string(total_rounds_) + "rounds";
}

}  // namespace edc::workloads
