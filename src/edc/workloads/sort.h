// Bottom-up merge sort, fully resumable.
//
// Tick = merging up to 32 output elements of the current run pair. Loop
// boundary after each tick; function boundary after each width-doubling
// pass. Double-buffered (src/dst swap per pass), so the RAM image is 2N
// int32 plus cursors.
#pragma once

#include <cstdint>
#include <vector>

#include "edc/workloads/program.h"

namespace edc::workloads {

class SortProgram final : public Program {
 public:
  SortProgram(std::size_t n, std::uint64_t seed);

  void reset() override;
  [[nodiscard]] Cycles next_tick_cost() const override;
  void run_tick() override;
  [[nodiscard]] Boundary boundary() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] double progress() const override;
  [[nodiscard]] std::uint64_t ticks_done() const override { return ticks_done_; }
  [[nodiscard]] Cycles total_cycles() const override;
  [[nodiscard]] std::vector<std::byte> save_state() const override;
  void restore_state(std::span<const std::byte> state) override;
  [[nodiscard]] std::size_t ram_footprint() const override;
  [[nodiscard]] std::uint64_t result_digest() const override;
  [[nodiscard]] std::string name() const override;

  /// The sorted data (valid once done()).
  [[nodiscard]] const std::vector<std::int32_t>& result() const;

 private:
  static constexpr std::uint32_t kBatch = 32;

  void open_pair();

  // ROM.
  std::size_t n_;
  std::uint64_t seed_;
  std::uint32_t passes_ = 0;

  // RAM image.
  std::vector<std::int32_t> buf0_;
  std::vector<std::int32_t> buf1_;
  std::uint8_t src_is_0_ = 1;    // which buffer currently holds the source
  std::uint32_t width_ = 1;      // current run width
  std::uint32_t pair_start_ = 0; // start of the pair being merged
  std::uint32_t i_ = 0, j_ = 0, k_ = 0;  // merge cursors (absolute indices)
  std::uint8_t finished_ = 0;
  std::uint64_t ticks_done_ = 0;
  Boundary last_boundary_ = Boundary::none;
};

}  // namespace edc::workloads
