// Sense -> process -> transmit application loop (the canonical WSN duty,
// and the "task" unit of task-based transient systems, §II.B).
//
// Each round: sample a window of ADC readings, FIR-filter it, and transmit a
// packet of the filtered result. Ticks are one sample / one filter output /
// one transmitted byte. Function boundaries separate the three phases (and
// hence rounds), which is exactly the granularity at which task-based
// systems (Gomez et al. [5]) schedule atomic work.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "edc/workloads/program.h"

namespace edc::workloads {

class SensingProgram final : public Program {
 public:
  static constexpr std::size_t kWindow = 32;   ///< samples per round
  static constexpr std::size_t kTaps = 8;      ///< FIR taps
  static constexpr std::size_t kPacketBytes = 16;

  SensingProgram(std::size_t rounds, std::uint64_t seed);

  void reset() override;
  [[nodiscard]] Cycles next_tick_cost() const override;
  void run_tick() override;
  [[nodiscard]] Boundary boundary() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] double progress() const override;
  [[nodiscard]] std::uint64_t ticks_done() const override;
  [[nodiscard]] Cycles total_cycles() const override;
  [[nodiscard]] std::vector<std::byte> save_state() const override;
  void restore_state(std::span<const std::byte> state) override;
  [[nodiscard]] std::size_t ram_footprint() const override;
  [[nodiscard]] std::uint64_t result_digest() const override;
  [[nodiscard]] std::string name() const override;

  /// Cycles of one full round (the "task size" for task-based policies).
  [[nodiscard]] Cycles cycles_per_round() const;

  [[nodiscard]] std::size_t rounds_completed() const noexcept {
    return static_cast<std::size_t>(round_);
  }

 private:
  enum class PhaseId : std::uint8_t { sample, filter, transmit };

  // ROM.
  std::size_t total_rounds_;
  std::uint64_t seed_;
  std::array<std::int16_t, kTaps> taps_{};  // fixed filter coefficients

  // RAM image.
  std::array<std::int16_t, kWindow> window_{};
  std::array<std::int16_t, kWindow> filtered_{};
  std::array<std::uint8_t, kPacketBytes> packet_{};
  std::uint32_t round_ = 0;
  PhaseId phase_ = PhaseId::sample;
  std::uint32_t cursor_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;
  Boundary last_boundary_ = Boundary::none;
};

}  // namespace edc::workloads
