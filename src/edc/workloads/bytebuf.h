// Flat byte-buffer serialization for program volatile state ("RAM images").
//
// Snapshot/restore in a transient system copies raw RAM; we mirror that by
// serializing each program's state as trivially-copyable fields. Writer and
// Reader enforce exact-size round trips, so a truncated (torn) snapshot is
// detected just as a real system detects an invalid snapshot marker.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "edc/common/check.h"

namespace edc::workloads {

class ByteWriter {
 public:
  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void write_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(values.size());
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    buffer_.insert(buffer_.end(), p, p + values.size() * sizeof(T));
  }

  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    EDC_CHECK(pos_ + sizeof(T) <= data_.size(), "truncated state buffer");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    EDC_CHECK(pos_ + n * sizeof(T) <= data_.size(), "truncated state buffer");
    std::vector<T> values(static_cast<std::size_t>(n));
    std::memcpy(values.data(), data_.data() + pos_, values.size() * sizeof(T));
    pos_ += values.size() * sizeof(T);
    return values;
  }

  /// True when every byte has been consumed (exact-size round trip).
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64-bit digest, used to compare program outputs bit-exactly.
constexpr std::uint64_t fnv1a(std::span<const std::byte> data,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t hash = seed;
  for (std::byte b : data) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

template <typename T>
std::uint64_t fnv1a_of(const std::vector<T>& values,
                       std::uint64_t seed = 0xcbf29ce484222325ULL) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a(std::as_bytes(std::span<const T>(values)), seed);
}

}  // namespace edc::workloads
