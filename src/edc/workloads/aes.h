// AES-128 ECB encryption of a block stream (software AES, embedded style).
//
// Tick = one AES round; 10 rounds plus whitening per 16-byte block. Blocks
// are generated deterministically from the seed; the digest chains over all
// ciphertexts. Loop boundary per round, function boundary per block.
#pragma once

#include <array>
#include <cstdint>

#include "edc/workloads/program.h"

namespace edc::workloads {

class AesProgram final : public Program {
 public:
  AesProgram(std::size_t blocks, std::uint64_t seed);

  void reset() override;
  [[nodiscard]] Cycles next_tick_cost() const override;
  void run_tick() override;
  [[nodiscard]] Boundary boundary() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] double progress() const override;
  [[nodiscard]] std::uint64_t ticks_done() const override {
    return block_index_ * 11 + round_;
  }
  [[nodiscard]] Cycles total_cycles() const override;
  [[nodiscard]] std::vector<std::byte> save_state() const override;
  void restore_state(std::span<const std::byte> state) override;
  [[nodiscard]] std::size_t ram_footprint() const override;
  [[nodiscard]] std::uint64_t result_digest() const override;
  [[nodiscard]] std::string name() const override;

 private:
  void load_block();
  void add_round_key(unsigned round);
  void sub_bytes_shift_rows();
  void mix_columns();

  // ROM.
  std::size_t total_blocks_;
  std::uint64_t seed_;

  // RAM image.
  std::array<std::uint8_t, 176> round_keys_{};  // expanded key schedule
  std::array<std::uint8_t, 16> state_{};        // current block state
  std::uint64_t block_index_ = 0;
  std::uint8_t round_ = 0;  // 0 = whitening pending; 1..10 = next round to run
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;
  Boundary last_boundary_ = Boundary::none;
};

}  // namespace edc::workloads
