// Fixed-point radix-2 FFT — the workload of the paper's Fig 7.
//
// In-place iterative decimation-in-time FFT on Q15 complex samples with
// per-stage scaling (the classic embedded formulation). Ticks:
//   * bit-reverse phase: one swap-check per tick;
//   * butterfly phase:   one butterfly per tick.
// Loop boundary after every tick; function boundary at the end of the
// bit-reverse pass and of each stage.
#pragma once

#include <cstdint>
#include <vector>

#include "edc/workloads/program.h"

namespace edc::workloads {

class FftProgram final : public Program {
 public:
  /// `log2_size` in [4, 12]; input samples are generated from `seed`.
  FftProgram(unsigned log2_size, std::uint64_t seed);

  void reset() override;
  [[nodiscard]] Cycles next_tick_cost() const override;
  void run_tick() override;
  [[nodiscard]] Boundary boundary() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] double progress() const override;
  [[nodiscard]] std::uint64_t ticks_done() const override { return ticks_done_; }
  [[nodiscard]] Cycles total_cycles() const override;
  [[nodiscard]] std::vector<std::byte> save_state() const override;
  void restore_state(std::span<const std::byte> state) override;
  [[nodiscard]] std::size_t ram_footprint() const override;
  [[nodiscard]] std::uint64_t result_digest() const override;
  [[nodiscard]] std::string name() const override;

 private:
  enum class Phase : std::uint8_t { bit_reverse, butterflies, finished };

  void run_bit_reverse_tick();
  void run_butterfly_tick();

  // Configuration (program memory, not part of the RAM image).
  unsigned log2_size_;
  std::uint32_t size_;
  std::uint64_t seed_;
  std::vector<std::int16_t> twiddle_cos_;  // ROM: Q15 quarter-resolution table
  std::vector<std::int16_t> twiddle_sin_;

  // Volatile state (RAM image).
  std::vector<std::int16_t> re_;
  std::vector<std::int16_t> im_;
  Phase phase_ = Phase::bit_reverse;
  std::uint32_t br_index_ = 0;     // bit-reverse cursor
  std::uint32_t stage_len_ = 2;    // current butterfly span (2, 4, ..., N)
  std::uint32_t pair_index_ = 0;   // flat butterfly counter within the stage
  std::uint64_t ticks_done_ = 0;
  Boundary last_boundary_ = Boundary::none;
};

}  // namespace edc::workloads
