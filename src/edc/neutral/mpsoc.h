// big.LITTLE MPSoC power/performance model (ODROID XU-4 class) and the
// power-neutral operating-point governor of Fletcher et al. [11].
//
// Fig 5 plots raytrace FPS against board power across operating points
// formed by (enabled LITTLE cores, LITTLE DVFS, enabled big cores, big
// DVFS). The analytic model below reproduces that cloud: an order of
// magnitude of power modulation with monotone-but-saturating performance,
// calibrated against the RaytraceProgram kernel's per-pixel cycle cost.
#pragma once

#include <string>
#include <vector>

#include "edc/common/units.h"

namespace edc::neutral {

struct OperatingPoint {
  int little_cores = 0;     ///< 0..4 enabled LITTLE (A7-class) cores
  Hertz little_freq = 0.0;  ///< shared LITTLE cluster frequency
  int big_cores = 0;        ///< 0..4 enabled big (A15-class) cores
  Hertz big_freq = 0.0;     ///< shared big cluster frequency

  [[nodiscard]] std::string label() const;
};

struct EvaluatedPoint {
  OperatingPoint point;
  Watts power = 0.0;  ///< board power
  double fps = 0.0;   ///< raytrace frames per second
};

class BigLittleMpsoc {
 public:
  struct Params {
    // Cluster DVFS ranges (inclusive, stepped).
    Hertz little_freq_min = 600e6, little_freq_max = 1400e6, little_freq_step = 200e6;
    Hertz big_freq_min = 600e6, big_freq_max = 2000e6, big_freq_step = 200e6;

    // Dynamic power: P = c_eff * f * V(f)^2 per active core.
    double little_ceff = 0.15e-9;  ///< F (effective switched capacitance)
    double big_ceff = 0.65e-9;

    // Per-cluster voltage/frequency curve: V = v0 + k * f.
    Volts little_v0 = 0.90;
    double little_v_slope = 0.25e-9;  ///< V per Hz
    Volts big_v0 = 0.90;
    double big_v_slope = 0.30e-9;

    // Static power per powered cluster and board base (fans, DRAM, IO).
    Watts little_static = 0.15;
    Watts big_static = 0.45;
    Watts board_base = 0.35;

    // Performance: relative IPC of a big core vs a LITTLE core on the
    // raytrace kernel, and the parallel (Amdahl) serial fraction.
    double big_ipc_ratio = 2.1;
    double serial_fraction = 0.05;

    // Raytrace frame cost in LITTLE-core cycles; calibrated so the fastest
    // configuration reaches ~0.22 FPS as in Fig 5 (a full-resolution frame
    // at RaytraceProgram's per-pixel cost, plus scene complexity).
    double frame_cycles = 8.4e10;
  };

  BigLittleMpsoc() : BigLittleMpsoc(Params{}) {}
  explicit BigLittleMpsoc(const Params& params);

  [[nodiscard]] Watts power(const OperatingPoint& op) const;
  [[nodiscard]] double fps(const OperatingPoint& op) const;
  [[nodiscard]] EvaluatedPoint evaluate(const OperatingPoint& op) const;

  /// Enumerates every legal operating point (at least one core enabled).
  [[nodiscard]] std::vector<EvaluatedPoint> enumerate_points() const;

  /// The Pareto frontier of enumerate_points() (max fps per power).
  [[nodiscard]] std::vector<EvaluatedPoint> pareto_frontier() const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

/// Power-neutral operating-point selection [11]: the highest-FPS point whose
/// power fits the instantaneous harvested budget; falls back to the lowest
/// power point when even that does not fit (graceful degradation).
class MpsocPowerNeutralGovernor {
 public:
  explicit MpsocPowerNeutralGovernor(const BigLittleMpsoc& model);

  struct Decision {
    EvaluatedPoint chosen;
    bool feasible = true;  ///< false if the budget is below every point
  };

  [[nodiscard]] Decision select(Watts power_budget) const;

  /// Runs the governor over a harvested-power envelope sampled at
  /// `control_period`, returning the chosen series and delivered frames.
  struct TrackingResult {
    std::vector<Seconds> times;
    std::vector<Watts> budget;
    std::vector<Watts> power;
    std::vector<double> fps;
    double frames_rendered = 0.0;
    double infeasible_fraction = 0.0;  ///< time share below the lowest point
  };

  [[nodiscard]] TrackingResult track(const std::vector<Watts>& budget_series,
                                     Seconds control_period) const;

 private:
  const BigLittleMpsoc* model_;            // non-owning
  std::vector<EvaluatedPoint> frontier_;   // sorted by power ascending
};

}  // namespace edc::neutral
