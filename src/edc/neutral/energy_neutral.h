// Energy-neutral operation (Kansal et al. [3], §II.A).
//
// A WSN node with a battery buffer adapts its duty cycle so that, over the
// environment's period T (a day for solar), consumed energy equals
// harvested energy (Eq 1) while the battery never empties (Eq 2). Harvest
// is predicted per slot with Kansal's EWMA over the same slot on previous
// days; the duty cycle is set so planned consumption tracks the prediction,
// with a proportional battery-level correction toward a target state of
// charge.
#pragma once

#include <vector>

#include "edc/circuit/converter.h"
#include "edc/common/units.h"
#include "edc/trace/source.h"

namespace edc::neutral {

class EnergyNeutralController {
 public:
  struct Config {
    Seconds slot = 300.0;            ///< control slot (5 min)
    Seconds period = 86400.0;        ///< energy-neutrality horizon T (1 day)
    double ewma_alpha = 0.5;         ///< Kansal's EWMA weight
    Watts p_active = 60e-3;          ///< node power while on (sense+radio)
    Watts p_sleep = 30e-6;           ///< node power while sleeping
    double duty_min = 0.005;
    double duty_max = 0.95;
    Joules battery_capacity = 50.0;  ///< buffer size (J)
    double battery_initial_soc = 0.5;
    double soc_target = 0.5;         ///< battery correction setpoint
    double soc_gain = 0.5;           ///< proportional correction gain
    double harvest_efficiency = 0.80;
  };

  explicit EnergyNeutralController(const Config& config);

  struct SlotRecord {
    Seconds t = 0.0;
    Watts harvested = 0.0;   ///< mean harvested power this slot
    Watts predicted = 0.0;   ///< EWMA prediction used for the decision
    double duty = 0.0;       ///< duty cycle chosen
    Watts consumed = 0.0;    ///< mean consumption this slot
    double soc = 0.0;        ///< battery state of charge at slot end
  };

  struct Result {
    std::vector<SlotRecord> slots;
    Joules harvested_total = 0.0;
    Joules consumed_total = 0.0;
    Joules battery_initial = 0.0;
    Joules battery_final = 0.0;
    int depletion_events = 0;  ///< slots where the battery hit empty (Eq 2 fail)

    /// |Eq 1 residual| relative to harvested energy, over whole periods.
    [[nodiscard]] double eq1_relative_residual() const;
  };

  /// Runs the controller against a harvest source for `horizon` seconds.
  [[nodiscard]] Result run(const trace::PowerSource& source, Seconds horizon) const;

 private:
  Config config_;
};

}  // namespace edc::neutral
