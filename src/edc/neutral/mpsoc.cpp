#include "edc/neutral/mpsoc.h"

#include <algorithm>
#include <cmath>

#include "edc/common/check.h"

namespace edc::neutral {

std::string OperatingPoint::label() const {
  return std::to_string(little_cores) + "L@" +
         std::to_string(static_cast<int>(little_freq / 1e6)) + "+" +
         std::to_string(big_cores) + "B@" +
         std::to_string(static_cast<int>(big_freq / 1e6));
}

BigLittleMpsoc::BigLittleMpsoc(const Params& params) : params_(params) {
  EDC_CHECK(params.little_freq_min <= params.little_freq_max, "bad LITTLE range");
  EDC_CHECK(params.big_freq_min <= params.big_freq_max, "bad big range");
  EDC_CHECK(params.serial_fraction >= 0.0 && params.serial_fraction < 1.0,
            "serial fraction must be in [0,1)");
}

Watts BigLittleMpsoc::power(const OperatingPoint& op) const {
  EDC_CHECK(op.little_cores >= 0 && op.little_cores <= 4, "0..4 LITTLE cores");
  EDC_CHECK(op.big_cores >= 0 && op.big_cores <= 4, "0..4 big cores");
  Watts total = params_.board_base;
  if (op.little_cores > 0) {
    const Volts v = params_.little_v0 + params_.little_v_slope * op.little_freq;
    total += params_.little_static +
             op.little_cores * params_.little_ceff * op.little_freq * v * v;
  }
  if (op.big_cores > 0) {
    const Volts v = params_.big_v0 + params_.big_v_slope * op.big_freq;
    total += params_.big_static + op.big_cores * params_.big_ceff * op.big_freq * v * v;
  }
  return total;
}

double BigLittleMpsoc::fps(const OperatingPoint& op) const {
  // Aggregate throughput in LITTLE-equivalent cycles/s, Amdahl-limited by
  // the fastest single core for the serial fraction.
  const double little_rate = op.little_cores * op.little_freq;
  const double big_rate = op.big_cores * op.big_freq * params_.big_ipc_ratio;
  const double parallel_rate = little_rate + big_rate;
  if (parallel_rate <= 0.0) return 0.0;
  double serial_core = 0.0;
  if (op.little_cores > 0) serial_core = op.little_freq;
  if (op.big_cores > 0) {
    serial_core = std::max(serial_core, op.big_freq * params_.big_ipc_ratio);
  }
  const double s = params_.serial_fraction;
  const double time_per_frame =
      params_.frame_cycles * (s / serial_core + (1.0 - s) / parallel_rate);
  return 1.0 / time_per_frame;
}

EvaluatedPoint BigLittleMpsoc::evaluate(const OperatingPoint& op) const {
  return EvaluatedPoint{op, power(op), fps(op)};
}

std::vector<EvaluatedPoint> BigLittleMpsoc::enumerate_points() const {
  std::vector<EvaluatedPoint> points;
  std::vector<Hertz> little_freqs{0.0};
  for (Hertz f = params_.little_freq_min; f <= params_.little_freq_max + 1.0;
       f += params_.little_freq_step) {
    little_freqs.push_back(f);
  }
  std::vector<Hertz> big_freqs{0.0};
  for (Hertz f = params_.big_freq_min; f <= params_.big_freq_max + 1.0;
       f += params_.big_freq_step) {
    big_freqs.push_back(f);
  }
  for (int nl = 0; nl <= 4; ++nl) {
    for (Hertz fl : little_freqs) {
      const bool little_off = (nl == 0 || fl == 0.0);
      if ((nl == 0) != (fl == 0.0)) continue;  // cores and freq go together
      for (int nb = 0; nb <= 4; ++nb) {
        for (Hertz fb : big_freqs) {
          if ((nb == 0) != (fb == 0.0)) continue;
          if (little_off && nb == 0) continue;  // at least one core
          points.push_back(evaluate(OperatingPoint{nl, fl, nb, fb}));
        }
      }
    }
  }
  return points;
}

std::vector<EvaluatedPoint> BigLittleMpsoc::pareto_frontier() const {
  auto points = enumerate_points();
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    return a.power < b.power || (a.power == b.power && a.fps > b.fps);
  });
  std::vector<EvaluatedPoint> frontier;
  double best_fps = -1.0;
  for (const auto& point : points) {
    if (point.fps > best_fps) {
      frontier.push_back(point);
      best_fps = point.fps;
    }
  }
  return frontier;
}

MpsocPowerNeutralGovernor::MpsocPowerNeutralGovernor(const BigLittleMpsoc& model)
    : model_(&model), frontier_(model.pareto_frontier()) {
  EDC_CHECK(!frontier_.empty(), "empty operating-point frontier");
}

MpsocPowerNeutralGovernor::Decision MpsocPowerNeutralGovernor::select(
    Watts power_budget) const {
  Decision decision;
  decision.chosen = frontier_.front();
  decision.feasible = frontier_.front().power <= power_budget;
  for (const auto& point : frontier_) {
    if (point.power <= power_budget) {
      decision.chosen = point;  // frontier is fps-ascending with power
    } else {
      break;
    }
  }
  return decision;
}

MpsocPowerNeutralGovernor::TrackingResult MpsocPowerNeutralGovernor::track(
    const std::vector<Watts>& budget_series, Seconds control_period) const {
  EDC_CHECK(control_period > 0.0, "control period must be positive");
  TrackingResult result;
  result.times.reserve(budget_series.size());
  std::size_t infeasible = 0;
  for (std::size_t i = 0; i < budget_series.size(); ++i) {
    const auto decision = select(budget_series[i]);
    result.times.push_back(static_cast<double>(i) * control_period);
    result.budget.push_back(budget_series[i]);
    result.power.push_back(decision.chosen.power);
    result.fps.push_back(decision.feasible ? decision.chosen.fps : 0.0);
    if (!decision.feasible) ++infeasible;
    result.frames_rendered += (decision.feasible ? decision.chosen.fps : 0.0) *
                              control_period;
  }
  result.infeasible_fraction =
      budget_series.empty()
          ? 0.0
          : static_cast<double>(infeasible) / static_cast<double>(budget_series.size());
  return result;
}

}  // namespace edc::neutral
