// hibernus-PN [14]: power-neutral DFS for a transiently-powered MCU.
//
// While the MCU runs, the governor regulates V_CC toward a reference band
// by stepping the clock frequency through the DFS table: supply rising
// above the band -> more performance (higher f, more draw); supply sagging
// below -> less. Holding V_CC steady means P_consumed tracks P_harvested
// (Eq 3) using only the decoupling capacitance, and — as in Fig 8 — the
// system rides through troughs that a fixed-frequency configuration would
// turn into hibernate/restore cycles.
#pragma once

#include <vector>

#include "edc/mcu/hooks.h"
#include "edc/mcu/mcu.h"

namespace edc::neutral {

class McuDfsGovernor final : public mcu::FrequencyGovernor {
 public:
  struct Config {
    /// Regulation target for V_CC.
    Volts v_ref = 2.9;
    /// Dead band around v_ref (no frequency change inside it).
    Volts band = 0.15;
    /// Control period.
    Seconds period = 1e-3;
    /// DFS table (ascending); defaults to the MCU's standard table.
    std::vector<Hertz> frequencies;
  };

  explicit McuDfsGovernor(const Config& config);

  void control(mcu::Mcu& mcu, Volts vcc, Seconds t) override;
  [[nodiscard]] Seconds period() const override { return config_.period; }
  [[nodiscard]] std::string name() const override { return "hibernus-pn-dfs"; }

  [[nodiscard]] int upshifts() const noexcept { return upshifts_; }
  [[nodiscard]] int downshifts() const noexcept { return downshifts_; }

 private:
  [[nodiscard]] std::size_t index_of(Hertz f) const;

  Config config_;
  int upshifts_ = 0;
  int downshifts_ = 0;
};

}  // namespace edc::neutral
