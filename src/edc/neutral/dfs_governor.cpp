#include "edc/neutral/dfs_governor.h"

#include <algorithm>

#include "edc/common/check.h"
#include "edc/mcu/power_model.h"

namespace edc::neutral {

McuDfsGovernor::McuDfsGovernor(const Config& config) : config_(config) {
  if (config_.frequencies.empty()) {
    config_.frequencies.assign(mcu::kFrequencyTable,
                               mcu::kFrequencyTable + mcu::kFrequencyCount);
  }
  EDC_CHECK(std::is_sorted(config_.frequencies.begin(), config_.frequencies.end()),
            "DFS table must be ascending");
  EDC_CHECK(config_.band > 0.0, "band must be positive");
  EDC_CHECK(config_.period > 0.0, "period must be positive");
}

std::size_t McuDfsGovernor::index_of(Hertz f) const {
  const auto it =
      std::min_element(config_.frequencies.begin(), config_.frequencies.end(),
                       [f](Hertz a, Hertz b) { return std::abs(a - f) < std::abs(b - f); });
  return static_cast<std::size_t>(std::distance(config_.frequencies.begin(), it));
}

void McuDfsGovernor::control(mcu::Mcu& mcu, Volts vcc, Seconds) {
  if (mcu.state() != mcu::McuState::active) return;
  const std::size_t index = index_of(mcu.frequency());
  if (vcc > config_.v_ref + config_.band / 2) {
    if (index + 1 < config_.frequencies.size()) {
      mcu.set_frequency(config_.frequencies[index + 1]);
      ++upshifts_;
    }
  } else if (vcc < config_.v_ref - config_.band / 2) {
    if (index > 0) {
      mcu.set_frequency(config_.frequencies[index - 1]);
      ++downshifts_;
    }
  }
}

}  // namespace edc::neutral
