#include "edc/neutral/energy_neutral.h"

#include <algorithm>
#include <cmath>

#include "edc/common/check.h"

namespace edc::neutral {

EnergyNeutralController::EnergyNeutralController(const Config& config)
    : config_(config) {
  EDC_CHECK(config.slot > 0.0, "slot must be positive");
  EDC_CHECK(config.period >= config.slot, "period must cover at least one slot");
  EDC_CHECK(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "alpha must be in (0,1]");
  EDC_CHECK(config.p_active > config.p_sleep, "active power must exceed sleep");
  EDC_CHECK(config.duty_min >= 0.0 && config.duty_max <= 1.0 &&
                config.duty_min < config.duty_max,
            "bad duty bounds");
  EDC_CHECK(config.battery_capacity > 0.0, "battery capacity must be positive");
}

double EnergyNeutralController::Result::eq1_relative_residual() const {
  if (harvested_total <= 0.0) return 0.0;
  const Joules delta_battery = battery_final - battery_initial;
  return std::abs(harvested_total - consumed_total - delta_battery) / harvested_total;
}

EnergyNeutralController::Result EnergyNeutralController::run(
    const trace::PowerSource& source, Seconds horizon) const {
  EDC_CHECK(horizon >= config_.period, "horizon must cover at least one period");
  Result result;

  const auto slots_per_period =
      static_cast<std::size_t>(std::llround(config_.period / config_.slot));
  const auto total_slots = static_cast<std::size_t>(horizon / config_.slot);

  // Per-slot-of-day EWMA predictions, initialised optimistically from the
  // first slot observation as Kansal does on deployment.
  std::vector<Watts> prediction(slots_per_period, -1.0);

  circuit::EnergyBuffer battery(config_.battery_capacity,
                                config_.battery_initial_soc * config_.battery_capacity,
                                /*charge_efficiency=*/0.95);
  result.battery_initial = battery.level();

  for (std::size_t slot = 0; slot < total_slots; ++slot) {
    const Seconds t0 = static_cast<double>(slot) * config_.slot;
    const std::size_t slot_of_day = slot % slots_per_period;

    // Mean harvest over the slot (16-point quadrature is plenty for the
    // slow diurnal envelope).
    Watts harvested = 0.0;
    for (int q = 0; q < 16; ++q) {
      harvested += source.available_power(t0 + config_.slot * (q + 0.5) / 16.0);
    }
    harvested = harvested / 16.0 * config_.harvest_efficiency;

    Watts predicted = prediction[slot_of_day];
    if (predicted < 0.0) predicted = harvested;  // first day: observe

    // Duty so that expected consumption matches prediction, with a battery
    // correction toward the SoC target.
    const double soc_error = battery.state_of_charge() - config_.soc_target;
    const Watts correction =
        config_.soc_gain * soc_error * config_.battery_capacity / config_.period;
    const Watts power_budget = std::max(predicted + correction, 0.0);
    double duty = (power_budget - config_.p_sleep) /
                  (config_.p_active - config_.p_sleep);
    duty = std::clamp(duty, config_.duty_min, config_.duty_max);

    const Watts consumed = config_.p_sleep + duty * (config_.p_active - config_.p_sleep);

    // Settle the slot's energy through the battery.
    const Joules e_in = harvested * config_.slot;
    const Joules e_out = consumed * config_.slot;
    Joules net = e_in - e_out;
    bool depleted = false;
    if (net >= 0.0) {
      battery.charge(net);
    } else {
      const Joules got = battery.discharge(-net);
      if (got + 1e-12 < -net) depleted = true;  // Eq 2 violated this slot
    }
    if (depleted) ++result.depletion_events;

    // Update the predictor with the observation.
    prediction[slot_of_day] = config_.ewma_alpha * harvested +
                              (1.0 - config_.ewma_alpha) * predicted;

    result.harvested_total += e_in;
    result.consumed_total += e_out;
    result.slots.push_back(SlotRecord{t0, harvested, predicted, duty, consumed,
                                      battery.state_of_charge()});
  }
  result.battery_final = battery.level();
  return result;
}

}  // namespace edc::neutral
