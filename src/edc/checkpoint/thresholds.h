// The paper's quantitative design rules for transient systems.
//
// Eq 4 (hibernate threshold): a snapshot of energy E_S can complete before
// brown-out iff E_S <= (V_H^2 - V_min^2) * C / 2, i.e. the energy remaining
// in the node capacitance between V_H and V_min covers the save.
//
// Eq 5 (hibernus vs QuickRecall crossover): unified-FRAM execution pays a
// constant power premium (P_FRAM - P_SRAM) but saves almost nothing per
// outage; SRAM execution is cheap until snapshots dominate. The break-even
// supply-interruption frequency is
//     f_crossover = (P_FRAM - P_SRAM) / (E_hibernus - E_quickrecall).
#pragma once

#include <cstddef>

#include "edc/common/units.h"
#include "edc/mcu/power_model.h"

namespace edc::checkpoint {

/// Eq 4 solved for V_H: the minimum hibernate threshold that guarantees a
/// save of energy `save_energy` completes on capacitance `c` before v_min.
[[nodiscard]] Volts hibernate_threshold(Joules save_energy, Farads c, Volts v_min);

/// Eq 4 as stated: can a save of `save_energy` complete from `v_h`?
[[nodiscard]] bool save_feasible(Joules save_energy, Volts v_h, Volts v_min, Farads c);

/// Energy available between v_h and v_min on capacitance c (Eq 4's RHS).
[[nodiscard]] Joules decay_energy(Volts v_h, Volts v_min, Farads c);

/// Eq 4 with the save energy evaluated self-consistently at V_H: the save
/// current depends on the supply voltage, and the threshold depends on the
/// save energy, so we fixed-point iterate (converges in a few rounds).
/// `margin` > 1 adds a safety factor on the required energy.
[[nodiscard]] Volts hibernate_threshold_for_image(const mcu::McuPowerModel& power,
                                                  std::size_t image_bytes, Hertz f,
                                                  Farads c, double margin = 1.25);

/// Eq 5. Requires e_hibernus > e_quickrecall and p_fram > p_sram.
[[nodiscard]] Hertz crossover_frequency(Watts p_fram, Watts p_sram, Joules e_hibernus,
                                        Joules e_quickrecall);

/// Eq 5 evaluated from the MCU power model: per-snapshot energies include
/// one save plus one restore at (f, v); powers are active execution powers.
[[nodiscard]] Hertz crossover_frequency_for_image(const mcu::McuPowerModel& power,
                                                  std::size_t sram_image_bytes,
                                                  Hertz f, Volts v);

}  // namespace edc::checkpoint
