// Hibernus++ [2]: self-calibrating, adaptive reactive checkpointing.
//
// Hibernus needs V_H characterised at design time for a known node
// capacitance. Hibernus++ measures the platform online instead: at first
// boot it runs a calibration routine (a timed, controlled discharge whose
// slope yields C), derives V_H from Eq 4 and pays the calibration overhead
// once. If the storage later changes — or the estimate proves optimistic
// and a save is torn — it recalibrates with a larger margin. The result is
// the paper's §III behaviour: slightly less efficient than a perfectly
// characterised Hibernus, but correct for *any* amount of storage.
#pragma once

#include <functional>

#include "edc/checkpoint/interrupt_policy.h"
#include "edc/trace/rng.h"

namespace edc::checkpoint {

class HibernusPlusPlusPolicy final : public InterruptPolicy {
 public:
  struct PlusConfig {
    /// Physical measurement of the node capacitance (the policy's online
    /// discharge experiment); typically bound to SupplyNode::capacitance.
    std::function<Farads()> capacitance_probe;
    /// 1-sigma relative error of the online measurement.
    double measurement_error = 0.03;
    /// Cycles the calibration routine occupies at each (re)calibration.
    Cycles calibration_cycles = 40000;
    /// Safety margin on Eq 4 (grows when a torn save is observed).
    double initial_margin = 1.15;
    Volts restore_headroom = 0.5;
    std::uint64_t seed = 42;
  };

  explicit HibernusPlusPlusPolicy(const PlusConfig& config);

  void attach(mcu::Mcu& mcu) override;
  void on_boot(mcu::Mcu& mcu, Seconds t) override;

  [[nodiscard]] std::string name() const override { return "hibernus++"; }

  [[nodiscard]] bool calibrated() const noexcept { return calibrated_; }
  [[nodiscard]] int calibration_count() const noexcept { return calibrations_; }
  [[nodiscard]] double current_margin() const noexcept { return margin_; }

 private:
  static Config base_config(const PlusConfig& config);

  void calibrate(mcu::Mcu& mcu);

  PlusConfig plus_;
  trace::Rng rng_;
  bool calibrated_ = false;
  int calibrations_ = 0;
  double margin_;
  std::uint64_t torn_seen_ = 0;
};

}  // namespace edc::checkpoint
