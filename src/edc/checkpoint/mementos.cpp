#include "edc/checkpoint/mementos.h"

#include "edc/common/check.h"

namespace edc::checkpoint {

MementosPolicy::MementosPolicy(const Config& config) : config_(config) {
  EDC_CHECK(config.v_threshold > 0.0, "threshold must be positive");
  EDC_CHECK(config.poll_stride >= 1, "poll stride must be at least 1");
  EDC_CHECK(config.timer_interval > 0.0, "timer interval must be positive");
}

void MementosPolicy::on_boot(mcu::Mcu& mcu, Seconds t) {
  // Mementos restarts as soon as the MCU can run: restore the latest
  // snapshot if one committed, else start over. (No restore threshold —
  // the documented restore-loop weakness near v_on is intentional.)
  if (mcu.nvm().has_valid_snapshot()) {
    mcu.request_restore(t);
  } else {
    mcu.start_program_fresh(t);
  }
}

bool MementosPolicy::is_candidate(workloads::Boundary boundary) const {
  using workloads::Boundary;
  switch (config_.mode) {
    case Mode::loop:
      return boundary == Boundary::loop || boundary == Boundary::function;
    case Mode::function:
      return boundary == Boundary::function;
    case Mode::timer:
      return boundary != Boundary::none;  // timer checked at any tick end
  }
  return false;
}

void MementosPolicy::on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary,
                                 Seconds t) {
  if (!is_candidate(boundary)) return;

  if (config_.mode == Mode::timer) {
    if (t - last_save_time_ >= config_.timer_interval) {
      last_save_time_ = t;
      mcu.request_save(t);
    }
    return;
  }

  if (++candidate_counter_ % config_.poll_stride != 0) return;
  const Volts v = mcu.poll_vcc();  // ADC conversion: time + energy
  if (v < config_.v_threshold) {
    mcu.request_save(t);
  }
}

void MementosPolicy::on_save_complete(mcu::Mcu& mcu, Seconds t) {
  // Mementos never sleeps: it computes until the supply gives out.
  mcu.resume_execution(t);
}

std::string MementosPolicy::name() const {
  switch (config_.mode) {
    case Mode::loop: return "mementos-loop";
    case Mode::function: return "mementos-function";
    case Mode::timer: return "mementos-timer";
  }
  return "mementos";
}

}  // namespace edc::checkpoint
