#include "edc/checkpoint/interrupt_policy.h"

#include <algorithm>

#include "edc/checkpoint/thresholds.h"
#include "edc/common/check.h"

namespace edc::checkpoint {

InterruptPolicy::InterruptPolicy(const Config& config, std::string policy_name)
    : config_(config), name_(std::move(policy_name)) {
  EDC_CHECK(config.capacitance >= 0.0, "capacitance must be non-negative");
  EDC_CHECK(config.margin >= 1.0, "margin must be at least 1");
}

void InterruptPolicy::attach(mcu::Mcu& mcu) {
  EDC_CHECK(config_.capacitance > 0.0,
            "node capacitance not characterised: set Config::capacitance "
            "(SystemBuilder fills it in automatically)");
  mcu.set_memory_mode(config_.memory_mode);
  // Compute Eq 4's V_H for this program's image size at the current DFS
  // frequency, then register both comparators with a little hysteresis so
  // supply ripple does not chatter them.
  const Volts v_h = checkpoint::hibernate_threshold_for_image(
      mcu.power(), mcu.snapshot_image_bytes(), mcu.frequency(), config_.capacitance,
      config_.margin);
  v_hibernate_ = config_.v_hibernate > 0.0 ? config_.v_hibernate : v_h;
  v_restore_ = config_.v_restore > 0.0 ? config_.v_restore
                                       : v_hibernate_ + config_.restore_headroom;
  EDC_CHECK(v_restore_ > v_hibernate_, "V_R must exceed V_H");
  // Zero hysteresis: the sleep/continue decisions in the hooks compare
  // against the same trip levels the comparators use, so a hysteresis band
  // could strand the policy asleep inside it with no wake edge pending.
  vh_comparator_ = mcu.add_comparator("VH", v_hibernate_, 0.0);
  vr_comparator_ = mcu.add_comparator("VR", v_restore_, 0.0);
  attached_ = true;
}

void InterruptPolicy::set_thresholds_from_capacitance(mcu::Mcu& mcu, Farads c) {
  const Volts v_h = checkpoint::hibernate_threshold_for_image(
      mcu.power(), mcu.snapshot_image_bytes(), mcu.frequency(), c, config_.margin);
  v_hibernate_ = v_h;
  if (config_.v_restore <= 0.0) {
    v_restore_ = v_h + config_.restore_headroom;
  }
  if (attached_) {
    mcu.set_comparator_threshold(vh_comparator_, v_hibernate_);
    mcu.set_comparator_threshold(vr_comparator_, v_restore_);
  }
}

void InterruptPolicy::begin_running(mcu::Mcu& mcu, Seconds t) {
  if (mcu.ram_valid()) {
    mcu.resume_execution(t);
  } else if (mcu.nvm().has_valid_snapshot()) {
    mcu.request_restore(t);
  } else {
    mcu.start_program_fresh(t);
  }
}

void InterruptPolicy::on_boot(mcu::Mcu& mcu, Seconds t) {
  // Freshly powered: wait for the supply to clear V_R before doing work, so
  // there is enough headroom to reach the next safe point.
  if (mcu.vcc() >= v_restore_) {
    begin_running(mcu, t);
  } else {
    mcu.enter_wait(t);
  }
}

void InterruptPolicy::on_comparator(mcu::Mcu& mcu,
                                    const circuit::ComparatorEvent& event) {
  if (event.name == "VH" && event.edge == circuit::Edge::falling) {
    // Imminent supply failure: snapshot now (single save per outage).
    if (mcu.state() == mcu::McuState::active) {
      mcu.request_save(event.time);
    }
    return;
  }
  if (event.name == "VR" && event.edge == circuit::Edge::rising) {
    const auto state = mcu.state();
    if (state == mcu::McuState::wait || state == mcu::McuState::sleep) {
      begin_running(mcu, event.time);
    }
  }
}

void InterruptPolicy::on_save_complete(mcu::Mcu& mcu, Seconds t) {
  // If the supply already recovered past V_R while we were saving, the VR
  // comparator will not produce a fresh rising edge — resume directly.
  if (mcu.vcc() >= v_restore_) {
    begin_running(mcu, t);
    return;
  }
  mcu.enter_sleep(t);
}

}  // namespace edc::checkpoint
