// Interrupt-driven (reactive) checkpointing — the shared machinery of
// Hibernus [9], QuickRecall [8] and NVP-style architectures [10].
//
// A comparator watches V_CC. When it decays through the hibernate threshold
// V_H (Eq 4) the volatile state is snapshotted to NVM and the core sleeps.
// When the supply recovers through the restore threshold V_R, execution
// continues: directly (RAM intact — the supply dipped but never browned
// out), from the NVM snapshot (after a brown-out), or from scratch (fresh
// device, no snapshot yet).
//
// The variants differ only in memory mode (which sets the snapshot image
// size and the active-power premium) and in how V_H is obtained.
#pragma once

#include "edc/checkpoint/policy_base.h"
#include "edc/mcu/power_model.h"

namespace edc::checkpoint {

class InterruptPolicy : public PolicyBase {
 public:
  struct Config {
    /// Design-time characterised node capacitance (Eq 4's C). 0 = not yet
    /// characterised: SystemBuilder fills in the node's real capacitance;
    /// direct construction must set it before attach().
    Farads capacitance = 0.0;
    /// Safety margin multiplying the snapshot energy in Eq 4. The headroom
    /// must also cover what board leakage drains in parallel with the save
    /// (Eq 4 budgets the capacitor energy for the snapshot alone).
    double margin = 1.5;
    /// Explicit hibernate threshold; 0 = derive from Eq 4. An override
    /// models a designer picking V_H by hand (it may well violate Eq 4).
    Volts v_hibernate = 0.0;
    /// Restore threshold V_R; 0 = auto (V_H + restore_headroom).
    Volts v_restore = 0.0;
    /// Headroom above V_H when V_R is auto-derived. Characterises the
    /// expected source dynamics (design-time input per §III).
    Volts restore_headroom = 0.5;
    /// Memory mode this policy runs the MCU in.
    mcu::MemoryMode memory_mode = mcu::MemoryMode::sram_execution;
  };

  explicit InterruptPolicy(const Config& config, std::string policy_name);

  void attach(mcu::Mcu& mcu) override;
  void on_boot(mcu::Mcu& mcu, Seconds t) override;
  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override;
  void on_save_complete(mcu::Mcu& mcu, Seconds t) override;

  /// Hibernating/waiting/done devices are woken by the V_R comparator (or
  /// browned out below v_min) and by nothing else, so the quiescent engine
  /// may macro-step those spans to the analytic crossing.
  [[nodiscard]] bool wakes_only_by_comparator(mcu::McuState state) const override {
    return state == mcu::McuState::sleep || state == mcu::McuState::wait ||
           state == mcu::McuState::done;
  }

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] Volts hibernate_threshold() const noexcept { return v_hibernate_; }
  [[nodiscard]] Volts restore_threshold() const noexcept { return v_restore_; }

 protected:
  /// Recomputes V_H (and auto V_R) from a capacitance estimate; updates the
  /// comparators if already attached. Used by Hibernus++ recalibration.
  void set_thresholds_from_capacitance(mcu::Mcu& mcu, Farads c);

  Config config_;

 private:
  void begin_running(mcu::Mcu& mcu, Seconds t);

  std::string name_;
  Volts v_hibernate_ = 0.0;
  Volts v_restore_ = 0.0;
  bool attached_ = false;
  std::size_t vh_comparator_ = 0;
  std::size_t vr_comparator_ = 0;
};

/// Hibernus [9]: SRAM execution, V_H from design-time characterised C.
class HibernusPolicy final : public InterruptPolicy {
 public:
  explicit HibernusPolicy(const Config& config)
      : InterruptPolicy(with_mode(config, mcu::MemoryMode::sram_execution),
                        "hibernus") {}

 private:
  static Config with_mode(Config c, mcu::MemoryMode m) {
    c.memory_mode = m;
    return c;
  }
};

/// QuickRecall [8]: unified FRAM; registers-only snapshots, FRAM-level
/// execution power (Eq 5's other regime).
class QuickRecallPolicy final : public InterruptPolicy {
 public:
  explicit QuickRecallPolicy(const Config& config)
      : InterruptPolicy(with_mode(config, mcu::MemoryMode::unified_fram),
                        "quickrecall") {}

 private:
  static Config with_mode(Config c, mcu::MemoryMode m) {
    c.memory_mode = m;
    return c;
  }
};

/// Non-volatile processor [10]: flip-flop-level state retention; snapshot is
/// the register file at near-SRAM execution power.
class NvpPolicy final : public InterruptPolicy {
 public:
  explicit NvpPolicy(const Config& config)
      : InterruptPolicy(with_mode(config, mcu::MemoryMode::nv_processor), "nvp") {}

 private:
  static Config with_mode(Config c, mcu::MemoryMode m) {
    c.memory_mode = m;
    return c;
  }
};

}  // namespace edc::checkpoint
