// Baseline: no checkpointing at all. Every outage restarts the computation
// from scratch, so forward progress only happens if the whole workload fits
// in one on-period. This is the "conventional system" reference against
// which every transient policy is compared.
#pragma once

#include "edc/checkpoint/policy_base.h"

namespace edc::checkpoint {

class NullPolicy final : public PolicyBase {
 public:
  /// `v_start`: supply level at which the freshly-booted system begins
  /// running (a plain POR brown-out gate; defaults to just above v_on).
  explicit NullPolicy(Volts v_start = 0.0) : v_start_(v_start) {}

  void attach(mcu::Mcu& mcu) override;
  void on_boot(mcu::Mcu& mcu, Seconds t) override;
  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override;

  /// The POR wait (and the post-completion idle) is left only via the START
  /// comparator or a brown-out: sleep spans are analytically plannable.
  [[nodiscard]] bool wakes_only_by_comparator(mcu::McuState state) const override {
    return state == mcu::McuState::wait || state == mcu::McuState::sleep ||
           state == mcu::McuState::done;
  }

  [[nodiscard]] std::string name() const override { return "none"; }

 private:
  Volts v_start_;
  std::size_t start_comparator_ = 0;
};

}  // namespace edc::checkpoint
