// Mementos [7]: compile-time instrumented, polling checkpointing.
//
// Checkpoint calls are inserted at loop or function boundaries (or fired by
// a timer). Each call samples V_CC with the ADC (paying the conversion) and
// snapshots if the voltage is below a fixed design-time threshold. The
// paper's three downsides all emerge from this model:
//   1. redundant snapshots (every candidate below threshold saves again);
//   2. torn snapshots (a save begun too close to brown-out never commits);
//   3. re-execution (work since the last committed snapshot repeats).
#pragma once

#include "edc/checkpoint/policy_base.h"

namespace edc::checkpoint {

class MementosPolicy final : public PolicyBase {
 public:
  enum class Mode {
    loop,      ///< candidates at every loop boundary
    function,  ///< candidates at function boundaries only
    timer,     ///< unconditional saves every timer interval
  };

  struct Config {
    Mode mode = Mode::loop;
    /// Design-time voltage threshold below which a candidate snapshots.
    Volts v_threshold = 2.4;
    /// Timer period for Mode::timer.
    Seconds timer_interval = 5e-3;
    /// Poll only every k-th candidate (1 = every candidate; the ablation
    /// knob for checkpoint-placement density, bench/ablation_mementos).
    unsigned poll_stride = 1;
  };

  explicit MementosPolicy(const Config& config);

  void on_boot(mcu::Mcu& mcu, Seconds t) override;
  void on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary, Seconds t) override;
  void on_save_complete(mcu::Mcu& mcu, Seconds t) override;

  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] bool is_candidate(workloads::Boundary boundary) const;

  Config config_;
  unsigned candidate_counter_ = 0;
  Seconds last_save_time_ = -1e30;
};

}  // namespace edc::checkpoint
