// Common base for checkpoint policies: no-op hooks plus an attach() phase.
#pragma once

#include <string>

#include "edc/mcu/hooks.h"
#include "edc/mcu/mcu.h"

namespace edc::checkpoint {

/// Extends PolicyHooks with a one-time attach() called by the simulation
/// builder before power is first applied (configure comparators, memory
/// mode, ...). All hooks default to no-ops so policies override only what
/// they use.
class PolicyBase : public mcu::PolicyHooks {
 public:
  /// Configures the MCU (comparators, memory mode). Called exactly once.
  virtual void attach(mcu::Mcu&) {}

  void on_boot(mcu::Mcu&, Seconds) override {}
  void on_comparator(mcu::Mcu&, const circuit::ComparatorEvent&) override {}
  void on_boundary(mcu::Mcu&, workloads::Boundary, Seconds) override {}
  void on_save_complete(mcu::Mcu&, Seconds) override {}
  void on_restore_complete(mcu::Mcu&, Seconds) override {}
  void on_power_loss(mcu::Mcu&, Seconds) override {}
  void on_workload_complete(mcu::Mcu&, Seconds) override {}
};

}  // namespace edc::checkpoint
