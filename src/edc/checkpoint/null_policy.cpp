#include "edc/checkpoint/null_policy.h"

namespace edc::checkpoint {

void NullPolicy::attach(mcu::Mcu& mcu) {
  if (v_start_ <= 0.0) v_start_ = mcu.power().v_on + 0.1;
  start_comparator_ = mcu.add_comparator("START", v_start_, 0.0);
}

void NullPolicy::on_boot(mcu::Mcu& mcu, Seconds t) {
  if (mcu.vcc() >= v_start_) {
    mcu.start_program_fresh(t);
  } else {
    mcu.enter_wait(t);
  }
}

void NullPolicy::on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) {
  if (event.edge == circuit::Edge::rising && event.name == "START" &&
      mcu.state() == mcu::McuState::wait) {
    mcu.start_program_fresh(event.time);
  }
}

}  // namespace edc::checkpoint
