#include "edc/checkpoint/hibernus_pp.h"

#include "edc/checkpoint/thresholds.h"
#include "edc/common/check.h"

namespace edc::checkpoint {

InterruptPolicy::Config HibernusPlusPlusPolicy::base_config(const PlusConfig& config) {
  Config base;
  // Boot-strap capacitance guess before the first calibration: deliberately
  // conservative (small C => high V_H) so the very first save cannot tear.
  base.capacitance = 1e-6;
  base.margin = config.initial_margin;
  base.restore_headroom = config.restore_headroom;
  base.memory_mode = mcu::MemoryMode::sram_execution;
  return base;
}

HibernusPlusPlusPolicy::HibernusPlusPlusPolicy(const PlusConfig& config)
    : InterruptPolicy(base_config(config), "hibernus++"),
      plus_(config),
      rng_(config.seed),
      margin_(config.initial_margin) {
  EDC_CHECK(static_cast<bool>(config.capacitance_probe),
            "hibernus++ requires a capacitance probe");
  EDC_CHECK(config.measurement_error >= 0.0 && config.measurement_error < 0.5,
            "measurement error must be in [0, 0.5)");
}

void HibernusPlusPlusPolicy::attach(mcu::Mcu& mcu) { InterruptPolicy::attach(mcu); }

void HibernusPlusPlusPolicy::calibrate(mcu::Mcu& mcu) {
  // Online discharge experiment: measure C with bounded relative error, then
  // re-derive both thresholds from Eq 4 with the current margin.
  const Farads true_c = plus_.capacitance_probe();
  const double error = 1.0 + plus_.measurement_error * rng_.normal();
  const Farads measured = true_c * std::max(error, 0.5);
  set_thresholds_from_capacitance(mcu, measured);
  mcu.inject_busy(static_cast<double>(plus_.calibration_cycles));
  calibrated_ = true;
  ++calibrations_;
}

void HibernusPlusPlusPolicy::on_boot(mcu::Mcu& mcu, Seconds t) {
  // A torn save since we last looked means the margin was too thin for the
  // real storage: grow it and re-measure.
  if (mcu.nvm().torn_writes() > torn_seen_) {
    torn_seen_ = mcu.nvm().torn_writes();
    margin_ *= 1.25;
    config_.margin = margin_;
    calibrated_ = false;
  }
  if (!calibrated_) calibrate(mcu);
  InterruptPolicy::on_boot(mcu, t);
}

}  // namespace edc::checkpoint
