#include "edc/checkpoint/thresholds.h"

#include <algorithm>
#include <cmath>

#include "edc/common/check.h"

namespace edc::checkpoint {

Volts hibernate_threshold(Joules save_energy, Farads c, Volts v_min) {
  EDC_CHECK(save_energy >= 0.0, "save energy must be non-negative");
  EDC_CHECK(c > 0.0, "capacitance must be positive");
  EDC_CHECK(v_min >= 0.0, "v_min must be non-negative");
  return std::sqrt(2.0 * save_energy / c + v_min * v_min);
}

Joules decay_energy(Volts v_h, Volts v_min, Farads c) {
  EDC_CHECK(v_h >= v_min, "v_h must be at least v_min");
  return 0.5 * c * (v_h * v_h - v_min * v_min);
}

bool save_feasible(Joules save_energy, Volts v_h, Volts v_min, Farads c) {
  return save_energy <= decay_energy(v_h, v_min, c);
}

Volts hibernate_threshold_for_image(const mcu::McuPowerModel& power,
                                    std::size_t image_bytes, Hertz f, Farads c,
                                    double margin) {
  EDC_CHECK(margin >= 1.0, "margin must be at least 1");
  Volts v_h = power.v_min + 0.2;
  for (int iteration = 0; iteration < 8; ++iteration) {
    // Save current is drawn at a voltage decaying from v_h toward v_min;
    // evaluate the energy at the (pessimistic) starting voltage v_h.
    const Joules e_s = margin * power.save_energy(image_bytes, f, v_h);
    const Volts next = hibernate_threshold(e_s, c, power.v_min);
    if (std::abs(next - v_h) < 1e-6) return next;
    v_h = next;
  }
  return v_h;
}

Hertz crossover_frequency(Watts p_fram, Watts p_sram, Joules e_hibernus,
                          Joules e_quickrecall) {
  EDC_CHECK(p_fram > p_sram, "FRAM power must exceed SRAM power");
  EDC_CHECK(e_hibernus > e_quickrecall,
            "hibernus snapshot energy must exceed QuickRecall's");
  return (p_fram - p_sram) / (e_hibernus - e_quickrecall);
}

Hertz crossover_frequency_for_image(const mcu::McuPowerModel& power,
                                    std::size_t sram_image_bytes, Hertz f, Volts v) {
  const Watts p_fram = power.active_current(f, mcu::MemoryMode::unified_fram) * v;
  const Watts p_sram = power.active_current(f, mcu::MemoryMode::sram_execution) * v;
  const std::size_t full_image = sram_image_bytes + power.register_file_bytes;
  const std::size_t reg_image = power.register_file_bytes;
  const Joules e_hib =
      power.save_energy(full_image, f, v) + power.restore_energy(full_image, f, v);
  const Joules e_qr =
      power.save_energy(reg_image, f, v) + power.restore_energy(reg_image, f, v);
  return crossover_frequency(p_fram, p_sram, e_hib, e_qr);
}

}  // namespace edc::checkpoint
