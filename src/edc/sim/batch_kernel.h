// Batched SoA fine-step kernel: advance many independent simulations
// ("lanes") in lockstep on a shared dt lattice.
//
// The sweep runner groups grid points whose source/front-end/lattice axes
// agree structurally (sweep/batch.h); each group becomes one BatchKernel.
// Per step the kernel gathers the lanes' node state into contiguous
// structure-of-arrays blocks, advances the node ODE for all of them with
// one shared source evaluation per substep instant
// (circuit::SupplyNode::step_lanes — the vectorizable inner loop), then
// replays the scalar simulator loop's post-step sequence per lane in its
// exact order: supply events, MCU advance, governor, transition recording,
// probes, termination. Everything discrete stays scalar per lane, so each
// lane's SimResult is bit-identical to Simulator::run() on the same system
// — the contract tests/batch_diff_test.cpp holds across every source and
// policy family.
//
// Lanes diverge: the quiescent engine jumps one lane over a span while its
// neighbours fine-step, and lanes finish at different times (t_end and
// stop_on_completion are per-lane). The kernel handles both by lockstep
// compaction: each round it advances only the lanes at the *minimum*
// lattice step; span-jumped lanes simply wait (masked out) until the rest
// catch up, and finished lanes are peeled out of the working set. A lane
// whose planner keeps it permanently ahead costs nothing but its plan()
// calls.
#pragma once

#include <cstdint>
#include <vector>

#include "edc/circuit/supply_driver.h"
#include "edc/circuit/supply_node.h"
#include "edc/common/units.h"
#include "edc/mcu/hooks.h"
#include "edc/mcu/mcu.h"
#include "edc/sim/quiescent_engine.h"
#include "edc/sim/simulator.h"

namespace edc::sim {

/// One lane of a batch: the wired parts of a single system, non-owning (the
/// caller keeps the systems alive — sweep::run_batched holds the
/// instantiated core::EnergyDrivenSystem per lane). All lanes of one kernel
/// must share dt, node_substeps, and a structurally identical batchable
/// driver (the grouping contract enforced by sweep::batch_group_key);
/// everything else — capacitance, bleed, policy, workload, t_end, probes,
/// governor, macro flags — may differ per lane.
struct BatchLane {
  SimConfig config;
  circuit::SupplyNode* node = nullptr;
  const circuit::SupplyDriver* driver = nullptr;
  mcu::Mcu* mcu = nullptr;
  mcu::FrequencyGovernor* governor = nullptr;  ///< optional
};

class BatchKernel {
 public:
  /// Validates the lockstep preconditions (>= 1 lane; shared dt/substeps;
  /// batchable driver) and takes a copy of the lane table. The pointed-to
  /// parts must outlive the kernel.
  explicit BatchKernel(std::vector<BatchLane> lanes);

  /// Runs every lane to its own horizon and returns one SimResult per lane,
  /// in lane order. Single-shot: run() may be called once.
  std::vector<SimResult> run();

 private:
  struct LaneState;

  /// Books one planned quiescent span on a lane — probe replay, time and
  /// energy booking, lattice jump — exactly as the scalar loop does.
  void book_span(LaneState& lane, const QuiescentSpan& span) const;

  /// The scalar loop's post-step sequence for one lane that just took a
  /// fine step ending at voltage `v_now`.
  void post_step(LaneState& lane, Volts v_now);

  /// End-of-run bookkeeping: totals, probe waveforms, final snapshots.
  void finalize(LaneState& lane) const;

  std::vector<BatchLane> lanes_;
};

}  // namespace edc::sim
