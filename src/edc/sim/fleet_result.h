// Aggregated result bundle for a fleet simulation.
//
// A FleetResult is the node-count-N counterpart of sim::SimResult: one
// per-node SimResult in fleet node order, plus aggregate views over the
// quantities the fleet tools report (completion census, fleet-wide energy
// ledger, NVM commit/torn accounting for the adaptive-buffer policy).
// Each node entry is bit-identical to what a standalone run of the lowered
// node spec produces — the fleet layer adds structure, never perturbation —
// which is what the N=1 differential suite in tests/fleet_test.cpp pins.
//
// Serialization lives in edc/sim/result_io (serialize_fleet_result /
// parse_fleet_result): a framing wrapper of length-prefixed node blocks,
// each block the exact serialize_result() byte stream of that node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "edc/sim/simulator.h"

namespace edc::sim {

struct FleetResult {
  /// One entry per fleet node, in spec::FleetSpec::nodes order.
  std::vector<SimResult> nodes;

  [[nodiscard]] std::size_t size() const noexcept { return nodes.size(); }

  /// Number of nodes whose workload ran to completion.
  [[nodiscard]] std::size_t completed_nodes() const noexcept {
    std::size_t count = 0;
    for (const SimResult& node : nodes) count += node.mcu.completed ? 1 : 0;
    return count;
  }

  /// True when every node completed its workload.
  [[nodiscard]] bool all_completed() const noexcept {
    return completed_nodes() == nodes.size();
  }

  /// Fleet-wide harvested energy (sum over nodes), joules.
  [[nodiscard]] double total_harvested() const noexcept {
    double total = 0.0;
    for (const SimResult& node : nodes) total += node.harvested;
    return total;
  }

  /// Fleet-wide consumed energy (sum over nodes), joules.
  [[nodiscard]] double total_consumed() const noexcept {
    double total = 0.0;
    for (const SimResult& node : nodes) total += node.consumed;
    return total;
  }

  /// Fleet-wide committed NVM writes (the adaptive-buffer policy's currency).
  [[nodiscard]] std::uint64_t total_nvm_commits() const noexcept {
    std::uint64_t total = 0;
    for (const SimResult& node : nodes) total += node.nvm_commits;
    return total;
  }

  /// Fleet-wide torn NVM writes (power failed mid-commit).
  [[nodiscard]] std::uint64_t total_nvm_torn_writes() const noexcept {
    std::uint64_t total = 0;
    for (const SimResult& node : nodes) total += node.nvm_torn_writes;
    return total;
  }
};

}  // namespace edc::sim
