// Aligned text tables for bench output (the "same rows the paper reports").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace edc::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` significant decimals.
  static std::string num(double value, int precision = 3);

  /// Formats a value in engineering units, e.g. 1.2e-5 -> "12 u" + suffix.
  static std::string eng(double value, const std::string& unit, int precision = 3);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace edc::sim
