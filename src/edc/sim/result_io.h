// Canonical, versioned text serialization for sim::SimResult.
//
// Counterpart of edc/spec/serialize for the *output* side of a simulation:
// every field of the result bundle — energy ledger, MCU metrics, NVM
// counters, state transitions, probe waveforms — round-trips through text
// bit-identically (doubles via std::to_chars shortest form). This is the
// row format of the sweep cache (edc/sweep/cache): a cached point replays
// exactly the bytes a fresh simulation would produce.
//
// Bump kResultFormatVersion whenever the canonical byte stream of an
// existing result would change (new field, reordered field); the cache
// keys its directory layout on this version, so stale entries age out
// instead of misparsing.
#pragma once

#include <string>

#include "edc/sim/fleet_result.h"
#include "edc/sim/simulator.h"

namespace edc::sim {

// v2: SimResult gained the step-mix diagnostics fine_steps / span_steps /
// spans (PR 5), so cached rows replay the same coverage numbers a fresh
// simulation reports.
inline constexpr int kResultFormatVersion = 2;

/// Canonical byte string of the result (always succeeds).
[[nodiscard]] std::string serialize_result(const SimResult& result);

/// Inverse of serialize_result(). Strict: throws canon::FormatError on
/// unknown fields, wrong version, truncation, or trailing bytes.
[[nodiscard]] SimResult parse_result(const std::string& text);

// ---- fleets ----------------------------------------------------------------

// The FleetResult container is a framing wrapper, not a new row format:
// each node block carries the exact serialize_result() byte stream, length
// prefixed (the sweep cache's entry idiom), so a fleet round-trip preserves
// every node result bit-identically and the per-node row format can evolve
// independently behind kResultFormatVersion.
//
//   edc.FleetResult v1\n
//   nodes <N>\n
//   node_bytes <len>\n<len raw bytes of serialize_result(nodes[0])>
//   ... (N blocks total)
inline constexpr int kFleetResultFormatVersion = 1;

/// Canonical byte string of the fleet result (always succeeds).
[[nodiscard]] std::string serialize_fleet_result(const FleetResult& result);

/// Inverse of serialize_fleet_result(). Strict: throws canon::FormatError
/// on bad magic, wrong version, truncated blocks, or trailing bytes.
[[nodiscard]] FleetResult parse_fleet_result(const std::string& text);

}  // namespace edc::sim
