// Canonical, versioned text serialization for sim::SimResult.
//
// Counterpart of edc/spec/serialize for the *output* side of a simulation:
// every field of the result bundle — energy ledger, MCU metrics, NVM
// counters, state transitions, probe waveforms — round-trips through text
// bit-identically (doubles via std::to_chars shortest form). This is the
// row format of the sweep cache (edc/sweep/cache): a cached point replays
// exactly the bytes a fresh simulation would produce.
//
// Bump kResultFormatVersion whenever the canonical byte stream of an
// existing result would change (new field, reordered field); the cache
// keys its directory layout on this version, so stale entries age out
// instead of misparsing.
#pragma once

#include <string>

#include "edc/sim/simulator.h"

namespace edc::sim {

// v2: SimResult gained the step-mix diagnostics fine_steps / span_steps /
// spans (PR 5), so cached rows replay the same coverage numbers a fresh
// simulation reports.
inline constexpr int kResultFormatVersion = 2;

/// Canonical byte string of the result (always succeeds).
[[nodiscard]] std::string serialize_result(const SimResult& result);

/// Inverse of serialize_result(). Strict: throws canon::FormatError on
/// unknown fields, wrong version, truncation, or trailing bytes.
[[nodiscard]] SimResult parse_result(const std::string& text);

}  // namespace edc::sim
