#include "edc/sim/fleet.h"

#include <utility>

#include "edc/core/system.h"

namespace edc::sim {

FleetSimulator::FleetSimulator(spec::FleetSpec fleet) : fleet_(std::move(fleet)) {
  spec::validate_fleet(fleet_);
}

FleetResult FleetSimulator::run() const {
  FleetResult result;
  result.nodes.reserve(fleet_.size());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    result.nodes.push_back(spec::instantiate(spec::fleet_node_spec(fleet_, i)).run());
  }
  return result;
}

}  // namespace edc::sim
