// Event-horizon macro-stepping for the off-state spans of a simulation.
//
// Energy-driven systems spend most wall-clock time *off*: charging from a
// dead node, or decaying through a brown-out tail. The fine-stepped loop
// burns a fixed dt there just like in the active bursts, although nothing
// discrete can happen — the MCU is below its power-on threshold, no policy
// or comparator fires, and the node follows the closed-form decay
//
//   C dV/dt = -V/R_bleed - I_off            (circuit::DecaySolution)
//
// until the driver injects current again. The MacroStepper plans the
// longest span of whole dt steps the loop may skip at once: it solves the
// decay analytically, bounds the node trajectory from below, and asks the
// driver's quiescent_until() activity hint for the earliest instant it
// could conduct at any voltage the span can reach. The caller caps the
// span at its own deadlines (t_end, the governor period) and replays probe
// samples from the analytic solution, so schedules stay in lock-step with
// the fine path.
//
// The span's energy split is exact in the continuum: the stored-energy
// drop 0.5*C*(V0^2 - V1^2) is booked as load (off-leakage) energy plus
// bleed dissipation with zero ledger residual. Macro results therefore
// differ from the fine path only by the fine path's own discretisation
// error (see SimConfig::macro_stepping for the accuracy contract).
#pragma once

#include <cstdint>
#include <optional>

#include "edc/circuit/supply_driver.h"
#include "edc/circuit/supply_node.h"
#include "edc/common/units.h"

namespace edc::sim {

struct SimConfig;

/// One planned macro span: `steps` whole dt steps the loop may skip in a
/// single jump, with the end state and the exact energy booking.
struct MacroSpan {
  std::uint64_t steps = 0;       ///< always >= 1 when planned
  Volts v_end = 0.0;             ///< node voltage at the end of the span
  Joules consumed = 0.0;         ///< off-leakage share (MCU-drawn)
  Joules dissipated = 0.0;       ///< bleed share (+ snapped sub-tolerance charge)
  circuit::DecaySolution decay;  ///< analytic trajectory (probe replay)
};

class MacroStepper {
 public:
  /// All references must outlive the stepper (they are the simulator's own).
  MacroStepper(const SimConfig& config, const circuit::SupplyNode& node,
               const circuit::SupplyDriver& driver);

  /// Plans the longest skippable span starting at step time `t`, up to
  /// `max_steps` steps (the caller folds its t_end / governor deadlines in
  /// there). `off_leakage` is the MCU's constant off-state draw.
  /// Preconditions: the MCU is off and the node sits below its power-on
  /// threshold. Returns nullopt when not even one whole step is provably
  /// quiet — the caller then falls back to fine stepping.
  [[nodiscard]] std::optional<MacroSpan> plan(Seconds t, Amps off_leakage,
                                              std::uint64_t max_steps) const;

 private:
  const SimConfig* config_;
  const circuit::SupplyNode* node_;
  const circuit::SupplyDriver* driver_;
};

}  // namespace edc::sim
