// The coupled transient-system simulation loop.
//
// Wires source -> front-end driver -> supply node -> MCU (+ checkpoint
// policy, + optional DFS governor) and advances them on a fixed step:
//
//   1. integrate the node ODE over dt (MCU draw at start-of-step state);
//   2. deliver the voltage transition to the MCU (power-on, comparator
//      events at interpolated instants, brown-out);
//   3. let the MCU execute for dt (program ticks, saves/restores);
//   4. run the governor at its control period;
//   5. record probes / state transitions.
//
// The node energy ledger (harvested/consumed/stored) is exactly conserved
// by construction, which the property tests rely on.
#pragma once

#include <vector>

#include "edc/circuit/supply_driver.h"
#include "edc/circuit/supply_node.h"
#include "edc/common/units.h"
#include "edc/mcu/hooks.h"
#include "edc/mcu/mcu.h"
#include "edc/trace/waveform.h"

namespace edc::sim {

struct SimConfig {
  Seconds dt = 10e-6;            ///< main step
  Seconds t_end = 10.0;          ///< simulation horizon
  int node_substeps = 4;         ///< ODE substeps per main step
  bool stop_on_completion = true;
  Seconds probe_interval = 0.0;  ///< 0 = no waveform probes
  /// Skip the full node/MCU machinery while the node is fully discharged
  /// (MCU off, V = 0, source dead). Bit-exact with the slow path — at 0 V
  /// every energy flow is identically zero and the node clamps at ground —
  /// so this is purely a fast path; disable only to benchmark it.
  bool quiescent_fast_path = true;
  /// Opt-in analytic macro-stepping of every quiescent regime (see
  /// sim/quiescent_engine.h): while the MCU is off *or* sleeping/waiting/
  /// done under a comparator-driven policy, solve the bleed + constant-draw
  /// decay analytically and jump whole spans of dt steps at once, up to the
  /// earliest of the driver becoming active, the analytic comparator/v_min
  /// crossing, the next governor deadline and t_end. Unlike
  /// quiescent_fast_path this is NOT bit-identical with the fine path —
  /// the analytic trajectory replaces the fine path's Euler substepping
  /// through decay tails — but it agrees within the fine path's own
  /// discretisation error (differential-tested in
  /// tests/macro_step_test.cpp): same event sequences, crossing times
  /// within a few dt, energies within 1%, bit-identical workload digests.
  /// Keep it off for reference/regression runs; turn it on for sweeps over
  /// duty-cycled, sleep-dominated or brown-out-heavy scenarios.
  bool macro_stepping = false;
  /// Macro-step *charging ramps* too (only meaningful with macro_stepping
  /// on): while the MCU is off below its power-on threshold or parked in a
  /// comparator-watched low-power state and the driver certifies a
  /// piecewise-constant window (SupplyDriver::plan_charge_span — DC
  /// sources, square-wave phases, recorded constant stretches), follow the
  /// closed-form rectifier+RC charge trajectory (circuit::ChargeSolution)
  /// and jump whole spans to the first power-on / rising-comparator
  /// crossing. Same accuracy contract and differential tests as the decay
  /// spans; a separate flag so the charge planner can be ablated.
  bool charge_spans = true;
  /// Macro-step *piecewise-linear arcs* too (only meaningful with
  /// macro_stepping on): where charge spans need a piecewise-constant
  /// source, ramp spans accept any stretch the source certifies as an
  /// affine chord with an interval error envelope
  /// (VoltageSource::linear_until -> SupplyDriver::plan_ramp_span — sine
  /// arcs, wind gust tails, recorded trace cells). An ICP-style contractor
  /// shrinks the candidate window until the chord envelope fits
  /// macro_v_tol, then the closed-form linear-ramp solution
  /// (circuit::LinearRampSolution) jumps the span — stopped strictly
  /// before the first instant the trajectory could enter any armed
  /// comparator / power watcher's error band, so the crossing step is
  /// provably unique and still runs finely. Same accuracy contract and
  /// differential tests as the other spans; a separate flag so the ramp
  /// planner can be ablated.
  bool ramp_spans = true;
  /// Accuracy knob of the macro path: node voltages at or below this are
  /// treated as fully discharged (the residual charge books to the bleed),
  /// which lets exponential tails terminate instead of being chased
  /// forever. Also the scale of the voltage agreement the differential
  /// tests hold the macro path to.
  Volts macro_v_tol = 1e-4;
};

/// One MCU state transition (for event timelines like Fig 7).
struct StateChange {
  Seconds time = 0.0;
  mcu::McuState from = mcu::McuState::off;
  mcu::McuState to = mcu::McuState::off;
  Volts vcc = 0.0;
};

struct SimResult {
  Seconds end_time = 0.0;
  Joules harvested = 0.0;       ///< delivered into the node
  Joules consumed = 0.0;        ///< drawn by the MCU
  Joules dissipated = 0.0;      ///< lost in the node bleed resistance
  Joules stored_initial = 0.0;  ///< node energy at t = 0
  Joules stored_final = 0.0;    ///< node energy at the end
  mcu::McuMetrics mcu;          ///< copy of the MCU metrics at the end
  /// NVM lifetime counters (copied from the MCU's NvmStore at the end), so
  /// result consumers — reports, the sweep cache — don't need the live
  /// system: torn (abandoned mid-write) and committed snapshot writes.
  std::uint64_t nvm_torn_writes = 0;
  std::uint64_t nvm_commits = 0;
  /// Step-mix diagnostics: how the loop covered the horizon. fine_steps
  /// counts fully integrated steps; span_steps counts dt steps covered by
  /// the quiescent engine's analytic spans (dead-node skips, decay spans,
  /// charging ramps), `spans` the spans themselves. fine_steps + span_steps
  /// is the run's total step count, so span_steps / total is the fraction
  /// of simulated time the engine collapsed — the quantity the macro
  /// benches report next to their wall-clock speedups.
  std::uint64_t fine_steps = 0;
  std::uint64_t span_steps = 0;
  std::uint64_t spans = 0;
  std::vector<StateChange> transitions;
  /// "vcc", "freq_mhz", "state", "power_mw" when probed. Samples are
  /// end-of-step values, so the waveforms start at t = dt (the end of the
  /// first step), not at t = 0.
  trace::TraceSet probes;

  /// Energy ledger residual (should be ~0):
  /// harvested - consumed - dissipated - Δstored.
  [[nodiscard]] Joules ledger_residual() const {
    return harvested - consumed - dissipated - (stored_final - stored_initial);
  }
};

class Simulator {
 public:
  /// All references must outlive the Simulator. The policy must already be
  /// attached to the MCU (see checkpoint::PolicyBase::attach).
  Simulator(const SimConfig& config, circuit::SupplyNode& node,
            const circuit::SupplyDriver& driver, mcu::Mcu& mcu);

  /// Optional power-neutral governor (DFS control loop).
  void set_governor(mcu::FrequencyGovernor* governor) { governor_ = governor; }

  /// Runs to t_end (or workload completion) and returns the result bundle.
  SimResult run();

 private:
  template <bool kProbing, bool kGoverned>
  void run_loop(SimResult& result);

  SimConfig config_;
  circuit::SupplyNode* node_;
  const circuit::SupplyDriver* driver_;
  mcu::Mcu* mcu_;
  mcu::FrequencyGovernor* governor_ = nullptr;
};

}  // namespace edc::sim
