// The unified quiescent-state engine: analytic span planning for every
// regime in which the simulated system is provably idle.
//
// Energy-driven systems are defined by their quiescent time: Hibernus-class
// devices (paper §III, Fig 7/8) spend the bulk of every harvesting gap
// *sleeping* with live comparators, browning out through a bled decay, or
// sitting fully discharged waiting for the source. The fine-stepped loop
// pays a fixed dt through all of it although nothing discrete can happen.
// This engine collapses the simulator's historical special cases — the
// bit-exact V = 0 skip, the MCU-off macro stepper, and (new) sleep-span
// planning — into one description + one horizon planner:
//
//   * a QuiescentState: who draws constant current (off-leakage while the
//     MCU is off, i_sleep / i_deep_wait while hibernating) and which
//     discrete watchers are armed (none below the power-on threshold; the
//     supply comparators + the v_min brown-out while powered);
//   * a generalized horizon: the earliest of driver activity
//     (SupplyDriver::quiescent_until), the analytic comparator/v_min
//     crossing on the closed-form decay (DecaySolution::time_to_reach via
//     ComparatorBank::plan_falling_crossing / Mcu::plan_wake_crossing),
//     and the caller's own deadlines (t_end, governor period, folded into
//     max_steps).
//
// The engine jumps whole dt-lattice spans to that horizon. Spans end
// strictly *before* the first crossing step, so the resumed fine stepping
// delivers the v_prev > trip >= v_now transition and every comparator
// event, interpolated crossing time, policy callback and the energy ledger
// stay in lock-step with the fine path. A span's energy split is exact in
// the continuum: the stored-energy drop 0.5*C*(V0^2 - V1^2) is booked as
// constant-draw (consumed) energy plus bleed dissipation with zero ledger
// residual.
//
// Two accuracy regimes coexist (SimConfig):
//   * quiescent_fast_path (default on): only the dead-node case (MCU off,
//     V = 0, source quiet) — *bit-exact*, single-step spans.
//   * macro_stepping (opt-in): the analytic decay spans — agree with the
//     fine path within its own discretisation error (the contract
//     differential-tested in tests/macro_step_test.cpp).
#pragma once

#include <cstdint>
#include <optional>

#include "edc/circuit/supply_driver.h"
#include "edc/circuit/supply_node.h"
#include "edc/common/units.h"
#include "edc/mcu/mcu.h"

namespace edc::sim {

struct SimConfig;

/// One planned quiescent span: `steps` whole dt steps the loop may jump in
/// one go, with the end state and the exact energy booking. The simulator
/// books every span the same way — time/energy via
/// Mcu::note_quiescent_span, ledger shares into the run totals, probe
/// samples replayed from `decay` — and a bit-exact dead-node skip is
/// simply the degenerate span whose bookings and trajectory are
/// identically zero.
struct QuiescentSpan {
  std::uint64_t steps = 0;       ///< always >= 1 when planned
  Volts v_end = 0.0;             ///< node voltage at the end of the span
  Joules harvested = 0.0;        ///< driver-delivered share (charge/ramp spans)
  Joules consumed = 0.0;         ///< constant-draw share (MCU-drawn)
  Joules dissipated = 0.0;       ///< bleed share (+ snapped sub-tolerance charge)
  Amps draw = 0.0;               ///< the state's constant current (probe replay)
  bool charging = false;         ///< trajectory lives in `charge`, not `decay`
  bool ramping = false;          ///< trajectory lives in `ramp` (overrides both)
  circuit::DecaySolution decay;        ///< analytic decay trajectory
  circuit::ChargeSolution charge;      ///< analytic charge trajectory
  circuit::LinearRampSolution ramp;    ///< analytic linear-source trajectory

  /// The span's analytic node voltage `elapsed` seconds in (probe replay).
  [[nodiscard]] Volts voltage_at(Seconds elapsed) const {
    if (ramping) return ramp.voltage_at(elapsed);
    return charging ? charge.voltage_at(elapsed) : decay.voltage_at(elapsed);
  }
};

class QuiescentEngine {
 public:
  /// All references must outlive the engine (they are the simulator's own).
  QuiescentEngine(const SimConfig& config, const circuit::SupplyNode& node,
                  const circuit::SupplyDriver& driver, const mcu::Mcu& mcu);

  /// True when some quiescent planning is configured at all; when false the
  /// simulator loop skips the per-step plan() call entirely.
  [[nodiscard]] bool enabled() const noexcept;

  /// Plans the longest skippable span starting at step time `t`, up to
  /// `max_steps` steps (the caller folds its t_end / governor deadlines in
  /// there). Returns nullopt when the current MCU state is not quiescent,
  /// the policy does not certify its wake conditions, or not even one whole
  /// step is provably quiet — the caller then takes one fine step.
  [[nodiscard]] std::optional<QuiescentSpan> plan(Seconds t,
                                                  std::uint64_t max_steps) const;

 private:
  /// Largest provably-quiet step count <= n_cap for a span following
  /// `decay`: probes the driver window (quiescent_until, monotone in the
  /// floor) at the candidate floor and retries geometrically shallower
  /// candidates when the deepest band is already violated — so a slowly
  /// decaying node next to a driver that is only briefly quiet still gets
  /// its short spans instead of a blanket rejection.
  [[nodiscard]] std::uint64_t quiet_steps_on_decay(
      const circuit::DecaySolution& decay, Seconds t, Seconds dt,
      std::uint64_t n_cap) const;

  /// Bit-exact dead-node skip (MCU off, V exactly 0, v_on above ground):
  /// single steps gated on the cached driver quiet window, falling back to
  /// per-substep probing — decision identical to the historical fast path.
  [[nodiscard]] std::optional<QuiescentSpan> plan_dead(Seconds t,
                                                       std::uint64_t max_steps) const;

  /// Analytic decay span while the MCU is off below its power-on threshold
  /// (no watchers armed: the horizon is driver activity alone).
  [[nodiscard]] std::optional<QuiescentSpan> plan_off(Seconds t,
                                                      std::uint64_t max_steps) const;

  /// Analytic decay span while the MCU sleeps/waits/is done with live
  /// comparators: the horizon additionally stops strictly before the first
  /// analytic comparator or v_min crossing.
  [[nodiscard]] std::optional<QuiescentSpan> plan_low_power(
      Seconds t, std::uint64_t max_steps) const;

  /// Analytic charging ramp while the driver certifies a piecewise-constant
  /// window (SupplyDriver::plan_charge_span) and the MCU is off or in a
  /// certified low-power state: the closed-form rectifier+RC rise, stopped
  /// strictly before the first power-on / rising-comparator crossing. The
  /// span's energy booking derives the harvested share from the exact
  /// continuum ledger (stored delta + load + bleed), so the residual is
  /// zero by construction.
  [[nodiscard]] std::optional<QuiescentSpan> plan_charge(
      Seconds t, std::uint64_t max_steps) const;

  /// Analytic *linear-ramp* span while the driver certifies a piecewise-
  /// linear chord window with an interval error envelope
  /// (SupplyDriver::plan_ramp_span) and the MCU is off or in a certified
  /// low-power state. An ICP-style contractor halves the candidate horizon
  /// until the chord envelope fits macro_v_tol (chord error shrinks ~h^2,
  /// so a few halvings converge), then certifies on the closed form that
  /// (a) the ground clamp provably never engages, (b) the rectifier
  /// provably keeps conducting (source margin clears chord + node
  /// envelopes), and (c) every comparator / power watcher stays provably
  /// clear of the trajectory's error band (Mcu::plan_ramp_crossing), so
  /// the crossing step is unique within the envelope when fine stepping
  /// resumes. This is what claims the sine/wind arcs charge spans cannot.
  [[nodiscard]] std::optional<QuiescentSpan> plan_ramp(
      Seconds t, std::uint64_t max_steps) const;

  const SimConfig* config_;
  const circuit::SupplyNode* node_;
  const circuit::SupplyDriver* driver_;
  const mcu::Mcu* mcu_;
  /// Cached driver quiet horizon for plan_dead: valid for steps fully
  /// inside [quiet_from_, quiet_until_). Starts empty.
  mutable Seconds quiet_from_ = 0.0;
  mutable Seconds quiet_until_ = 0.0;
};

}  // namespace edc::sim
