#include "edc/sim/macro_stepper.h"

#include <cmath>

#include "edc/common/check.h"
#include "edc/sim/simulator.h"

namespace edc::sim {

namespace {

/// Number of whole dt steps starting at t that fit strictly inside [t, u),
/// clamped to max_steps. A skipped step spans [s, s + dt], so the whole
/// span must sit inside the driver's quiet window.
std::uint64_t steps_within(Seconds t, Seconds u, Seconds dt,
                           std::uint64_t max_steps) {
  if (!(u > t)) return 0;
  if (std::isinf(u)) return max_steps;
  const double n = std::floor((u - t) / dt);
  if (n <= 0.0) return 0;
  if (n >= static_cast<double>(max_steps)) return max_steps;
  return static_cast<std::uint64_t>(n);
}

}  // namespace

MacroStepper::MacroStepper(const SimConfig& config, const circuit::SupplyNode& node,
                           const circuit::SupplyDriver& driver)
    : config_(&config), node_(&node), driver_(&driver) {}

std::optional<MacroSpan> MacroStepper::plan(Seconds t, Amps off_leakage,
                                            std::uint64_t max_steps) const {
  if (max_steps == 0) return std::nullopt;
  const Seconds dt = config_->dt;
  const Volts v0 = node_->voltage();
  MacroSpan span;

  if (v0 <= config_->macro_v_tol) {
    // Dead (or tolerance-dead) node: nothing decays, so the span is limited
    // by driver activity alone. The sub-tolerance residual charge is booked
    // to the bleed in one lump so the energy ledger still closes exactly.
    const std::uint64_t n =
        steps_within(t, driver_->quiescent_until(0.0, t), dt, max_steps);
    if (n == 0) return std::nullopt;
    span.steps = n;
    span.v_end = 0.0;
    span.dissipated = 0.5 * node_->capacitance() * v0 * v0;
    span.decay = node_->decay_from(0.0, off_leakage);
    return span;
  }

  // Cheap rejection first: quiescent_until is monotone in v_floor and the
  // node only decays from v0, so the hint at v0 bounds every achievable
  // horizon from above. During charging ramps (driver active) this is the
  // per-step cost of an enabled-but-idle macro path — one virtual call, no
  // decay math.
  if (steps_within(t, driver_->quiescent_until(v0, t), dt, 1) == 0) {
    return std::nullopt;
  }

  span.decay = node_->decay_from(v0, off_leakage);
  // The node only decays over the span, so its trajectory is bounded below
  // by the value at the longest candidate horizon; a driver that is quiet
  // down to that floor is quiet for the whole (shorter or equal) span.
  // quiescent_until is monotone in v_floor, which makes the single
  // most-conservative evaluation sound.
  const Seconds cap = dt * static_cast<double>(max_steps);
  const Volts v_floor = span.decay.voltage_at(cap);
  const std::uint64_t n =
      steps_within(t, driver_->quiescent_until(v_floor, t), dt, max_steps);
  if (n == 0) return std::nullopt;

  const Seconds elapsed = dt * static_cast<double>(n);
  span.steps = n;
  span.v_end = span.decay.voltage_at(elapsed);
  const Joules delta =
      0.5 * node_->capacitance() * (v0 * v0 - span.v_end * span.v_end);
  // Exact continuum split of the stored-energy drop: the constant load took
  // load_energy, the bleed the remainder. Clamping guards the last few ulp
  // so the ledger residual is identically zero by construction.
  span.consumed = std::min(span.decay.load_energy(elapsed), delta);
  span.dissipated = delta - span.consumed;
  EDC_ASSERT(span.consumed >= 0.0 && span.dissipated >= 0.0);
  return span;
}

}  // namespace edc::sim
