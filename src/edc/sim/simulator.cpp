#include "edc/sim/simulator.h"

#include "edc/common/check.h"

namespace edc::sim {

Simulator::Simulator(const SimConfig& config, circuit::SupplyNode& node,
                     const circuit::SupplyDriver& driver, mcu::Mcu& mcu)
    : config_(config), node_(&node), driver_(&driver), mcu_(&mcu) {
  EDC_CHECK(config.dt > 0.0, "dt must be positive");
  EDC_CHECK(config.t_end > 0.0, "t_end must be positive");
  EDC_CHECK(config.node_substeps >= 1, "need at least one substep");
}

SimResult Simulator::run() {
  SimResult result;
  result.stored_initial = node_->stored_energy();

  std::vector<double> probe_vcc, probe_freq, probe_state, probe_power;
  const bool probing = config_.probe_interval > 0.0;
  Seconds next_probe = 0.0;

  Seconds next_governor = 0.0;
  Seconds t = 0.0;
  Volts v_prev = node_->voltage();
  mcu::McuState last_state = mcu_->state();

  while (t < config_.t_end) {
    const Seconds dt = config_.dt;

    const auto energy = node_->step(t, dt, *driver_, *mcu_, config_.node_substeps);
    result.harvested += energy.harvested;
    result.consumed += energy.consumed;
    result.dissipated += energy.dissipated;

    const Volts v_now = node_->voltage();
    mcu_->supply_update(v_prev, t, v_now, t + dt);
    mcu_->advance(t, dt, v_now);

    if (governor_ != nullptr && t >= next_governor) {
      if (mcu_->state() != mcu::McuState::off) {
        governor_->control(*mcu_, v_now, t);
      }
      next_governor = t + governor_->period();
    }

    if (mcu_->state() != last_state) {
      result.transitions.push_back(StateChange{t + dt, last_state, mcu_->state(), v_now});
      last_state = mcu_->state();
    }

    if (probing && t >= next_probe) {
      probe_vcc.push_back(v_now);
      probe_freq.push_back(mcu_->frequency() / 1e6);
      probe_state.push_back(static_cast<double>(mcu_->state()));
      probe_power.push_back(mcu_->current_draw(v_now, t) * v_now * 1e3);
      next_probe += config_.probe_interval;
    }

    t += dt;
    v_prev = v_now;

    if (config_.stop_on_completion && mcu_->metrics().completed) break;
  }

  result.end_time = t;
  result.stored_final = node_->stored_energy();
  result.mcu = mcu_->metrics();

  if (probing && probe_vcc.size() >= 2) {
    const Seconds dt_probe = config_.probe_interval;
    result.probes.add("vcc", trace::Waveform(0.0, dt_probe, std::move(probe_vcc)));
    result.probes.add("freq_mhz", trace::Waveform(0.0, dt_probe, std::move(probe_freq)));
    result.probes.add("state", trace::Waveform(0.0, dt_probe, std::move(probe_state)));
    result.probes.add("power_mw", trace::Waveform(0.0, dt_probe, std::move(probe_power)));
  }
  return result;
}

}  // namespace edc::sim
