#include "edc/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "edc/common/check.h"
#include "edc/sim/quiescent_engine.h"
#include "edc/sim/step_lattice.h"

namespace edc::sim {

Simulator::Simulator(const SimConfig& config, circuit::SupplyNode& node,
                     const circuit::SupplyDriver& driver, mcu::Mcu& mcu)
    : config_(config), node_(&node), driver_(&driver), mcu_(&mcu) {
  EDC_CHECK(config.dt > 0.0, "dt must be positive");
  EDC_CHECK(config.t_end > 0.0, "t_end must be positive");
  EDC_CHECK(config.node_substeps >= 1, "need at least one substep");
}

template <bool kProbing, bool kGoverned>
void Simulator::run_loop(SimResult& result) {
  const Seconds dt = config_.dt;
  const Seconds t_end = config_.t_end;
  const int substeps = config_.node_substeps;
  circuit::SupplyNode& node = *node_;
  const circuit::SupplyDriver& driver = *driver_;
  mcu::Mcu& mcu = *mcu_;

  // Probe and governor bookkeeping is hoisted out of the hot loop:
  // preallocated channel buffers and next-event times held in locals, with
  // the inner loop compiled separately for each (probing, governed)
  // combination so the disabled features cost nothing per step.
  std::vector<double> probe_vcc, probe_freq, probe_state, probe_power;
  Seconds next_probe = 0.0;
  const Seconds probe_interval = config_.probe_interval;
  if constexpr (kProbing) {
    // At most one sample is taken per step, so the sample count is bounded
    // by the step count even when probe_interval < dt.
    const auto capacity =
        static_cast<std::size_t>(std::min(t_end / probe_interval, t_end / dt)) + 2;
    probe_vcc.reserve(capacity);
    probe_freq.reserve(capacity);
    probe_state.reserve(capacity);
    probe_power.reserve(capacity);
  }
  Seconds next_governor = 0.0;

  Joules harvested = 0.0, consumed = 0.0, dissipated = 0.0;
  // The loop time lives on an exact step lattice (t == dt * step) instead
  // of accumulating t += dt: summation order then cannot drift the time
  // base, so a macro run that jumps spans of whole steps lands on exactly
  // the same instants — and the same probe/governor/termination schedule —
  // as the fine run it must stay in lock-step with.
  std::uint64_t step = 0;
  Seconds t = 0.0;
  Volts v_prev = node.voltage();
  mcu::McuState last_state = mcu.state();

  // All idle-regime planning — the bit-exact dead-node skip, the MCU-off
  // decay spans, and the comparator-watched sleep spans — lives in the one
  // quiescent engine; this loop only folds its own deadlines (t_end, the
  // governor period) into the span cap and replays probe samples from the
  // analytic trajectory so schedules stay in lock-step with the fine path.
  const QuiescentEngine engine(config_, node, driver, mcu);
  const bool engine_enabled = engine.enabled();

  while (t < t_end) {
    if (engine_enabled) {
      std::uint64_t max_steps = steps_starting_before(step, t_end, dt);
      if constexpr (kGoverned) {
        max_steps = std::min(max_steps, steps_starting_before(step, next_governor, dt));
      }
      if (const auto span = engine.plan(t, max_steps)) {
        // A planned span must make progress: a zero-step span would spin
        // this loop forever at the same t (the plan/fine-step livelock a
        // zero-length quiet-index sliver once caused). Fail loudly instead.
        EDC_CHECK(span->steps >= 1, "quiescent span must cover >= 1 step");
        if constexpr (kProbing) {
          // Replay the fine path's probe schedule: a sample lands on every
          // skipped step whose start is at or past the deadline, carrying
          // the end-of-step analytic voltage.
          const double freq_mhz = mcu.frequency() / 1e6;
          const auto state_channel = static_cast<double>(mcu.state());
          double k_min = 0.0;
          while (true) {
            double k = std::ceil((next_probe - t) / dt);
            if (k < k_min) k = k_min;
            if (k >= static_cast<double>(span->steps)) break;
            const Volts v_probe = span->voltage_at((k + 1.0) * dt);
            probe_vcc.push_back(v_probe);
            probe_freq.push_back(freq_mhz);
            probe_state.push_back(state_channel);
            probe_power.push_back(span->draw * v_probe * 1e3);
            next_probe += probe_interval;
            k_min = k + 1.0;
          }
        }
        const Seconds jumped = static_cast<double>(span->steps) * dt;
        mcu.note_quiescent_span(jumped, span->consumed);
        harvested += span->harvested;  // nonzero for charge spans only
        consumed += span->consumed;
        dissipated += span->dissipated;
        node.set_voltage(span->v_end);
        step += span->steps;
        t = dt * static_cast<double>(step);
        result.span_steps += span->steps;
        ++result.spans;
        v_prev = span->v_end;
        // Spans never cover a governor deadline (max_steps stops at it), so
        // the re-schedule — like every other discrete action — happens on a
        // fine step.
        continue;
      }
    }

    const auto energy = node.step(t, dt, driver, mcu, substeps);
    harvested += energy.harvested;
    consumed += energy.consumed;
    dissipated += energy.dissipated;

    const Volts v_now = node.voltage();
    mcu.supply_update(v_prev, t, v_now, t + dt);
    mcu.advance(t, dt, v_now);

    if constexpr (kGoverned) {
      if (t >= next_governor) {
        if (mcu.state() != mcu::McuState::off) {
          governor_->control(mcu, v_now, t);
        }
        next_governor = t + governor_->period();
      }
    }

    if (mcu.state() != last_state) {
      result.transitions.push_back(StateChange{t + dt, last_state, mcu.state(), v_now});
      last_state = mcu.state();
    }

    if constexpr (kProbing) {
      if (t >= next_probe) {
        probe_vcc.push_back(v_now);
        probe_freq.push_back(mcu.frequency() / 1e6);
        probe_state.push_back(static_cast<double>(mcu.state()));
        probe_power.push_back(mcu.current_draw(v_now, t) * v_now * 1e3);
        next_probe += probe_interval;
      }
    }

    ++step;
    ++result.fine_steps;
    t = dt * static_cast<double>(step);
    v_prev = v_now;

    if (config_.stop_on_completion && mcu.metrics().completed) break;
  }

  result.end_time = t;
  result.harvested = harvested;
  result.consumed = consumed;
  result.dissipated = dissipated;

  if constexpr (kProbing) {
    if (probe_vcc.size() >= 2) {
      // Samples are end-of-step values: the k-th sample was captured at the
      // end of the step that began at k * probe_interval, so the waveforms
      // start at t = dt, not t = 0.
      const Seconds t0 = dt;
      result.probes.add("vcc", trace::Waveform(t0, probe_interval, std::move(probe_vcc)));
      result.probes.add("freq_mhz",
                        trace::Waveform(t0, probe_interval, std::move(probe_freq)));
      result.probes.add("state",
                        trace::Waveform(t0, probe_interval, std::move(probe_state)));
      result.probes.add("power_mw",
                        trace::Waveform(t0, probe_interval, std::move(probe_power)));
    }
  }
}

SimResult Simulator::run() {
  SimResult result;
  result.stored_initial = node_->stored_energy();

  const bool probing = config_.probe_interval > 0.0;
  const bool governed = governor_ != nullptr;
  if (probing) {
    if (governed) {
      run_loop<true, true>(result);
    } else {
      run_loop<true, false>(result);
    }
  } else {
    if (governed) {
      run_loop<false, true>(result);
    } else {
      run_loop<false, false>(result);
    }
  }

  result.stored_final = node_->stored_energy();
  result.mcu = mcu_->metrics();
  result.nvm_torn_writes = mcu_->nvm().torn_writes();
  result.nvm_commits = mcu_->nvm().commits();
  return result;
}

}  // namespace edc::sim
