#include "edc/sim/result_io.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "edc/common/canon.h"

namespace edc::sim {

namespace {

using canon::FormatError;
using canon::Reader;
using canon::Writer;

const char* state_tag(mcu::McuState state) {
  switch (state) {
    case mcu::McuState::off: return "off";
    case mcu::McuState::boot: return "boot";
    case mcu::McuState::active: return "active";
    case mcu::McuState::saving: return "saving";
    case mcu::McuState::restoring: return "restoring";
    case mcu::McuState::sleep: return "sleep";
    case mcu::McuState::wait: return "wait";
    case mcu::McuState::done: return "done";
  }
  throw FormatError("unknown MCU state");
}

mcu::McuState parse_state(std::string_view tag) {
  using S = mcu::McuState;
  if (tag == "off") return S::off;
  if (tag == "boot") return S::boot;
  if (tag == "active") return S::active;
  if (tag == "saving") return S::saving;
  if (tag == "restoring") return S::restoring;
  if (tag == "sleep") return S::sleep;
  if (tag == "wait") return S::wait;
  if (tag == "done") return S::done;
  throw FormatError("unknown MCU state tag: '" + std::string(tag) + "'");
}

void write_waveform(Writer& w, const trace::Waveform& wave) {
  w.field("t0", wave.t0());
  w.field("dt", wave.dt());
  w.begin("samples", std::to_string(wave.size()));
  for (double sample : wave.samples()) w.bare(sample);
  w.end();
}

trace::Waveform read_waveform(Reader& r) {
  const Seconds t0 = r.number("t0");
  const Seconds dt = r.number("dt");
  const std::size_t count = canon::parse_u64(r.begin_tagged("samples"));
  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) samples.push_back(r.bare_number());
  r.end();
  return trace::Waveform(t0, dt, std::move(samples));
}

}  // namespace

std::string serialize_result(const SimResult& result) {
  Writer w;
  w.begin("edc.SimResult", "v" + std::to_string(kResultFormatVersion));

  w.field("end_time", result.end_time);
  w.field("harvested", result.harvested);
  w.field("consumed", result.consumed);
  w.field("dissipated", result.dissipated);
  w.field("stored_initial", result.stored_initial);
  w.field("stored_final", result.stored_final);
  w.field("nvm_torn_writes", result.nvm_torn_writes);
  w.field("nvm_commits", result.nvm_commits);
  w.field("fine_steps", result.fine_steps);
  w.field("span_steps", result.span_steps);
  w.field("spans", result.spans);

  const auto& m = result.mcu;
  w.begin("mcu");
  w.field("time_off", m.time_off);
  w.field("time_boot", m.time_boot);
  w.field("time_active", m.time_active);
  w.field("time_saving", m.time_saving);
  w.field("time_restoring", m.time_restoring);
  w.field("time_sleep", m.time_sleep);
  w.field("time_wait", m.time_wait);
  w.field("time_done", m.time_done);
  w.field("cycles_active", m.cycles_active);
  w.field("forward_cycles", m.forward_cycles);
  w.field("reexecuted_cycles", m.reexecuted_cycles);
  w.field("poll_cycles", m.poll_cycles);
  w.field("boots", m.boots);
  w.field("brownouts", m.brownouts);
  w.field("saves_started", m.saves_started);
  w.field("saves_completed", m.saves_completed);
  w.field("restores", m.restores);
  w.field("direct_resumes", m.direct_resumes);
  w.field("peripheral_reinits", m.peripheral_reinits);
  w.field("energy_active", m.energy_active);
  w.field("energy_save", m.energy_save);
  w.field("energy_restore", m.energy_restore);
  w.field("energy_sleep", m.energy_sleep);
  w.field("energy_other", m.energy_other);
  w.field("completed", m.completed);
  w.field("completion_time", m.completion_time);
  w.end();

  w.begin("transitions", std::to_string(result.transitions.size()));
  for (const StateChange& change : result.transitions) {
    w.begin("at", canon::double_text(change.time));
    w.begin("from", state_tag(change.from));
    w.end();
    w.begin("to", state_tag(change.to));
    w.end();
    w.field("vcc", change.vcc);
    w.end();
  }
  w.end();

  w.begin("probes", std::to_string(result.probes.names.size()));
  for (std::size_t i = 0; i < result.probes.names.size(); ++i) {
    w.begin("probe");
    w.field_string("name", result.probes.names[i]);
    write_waveform(w, result.probes.waves[i]);
    w.end();
  }
  w.end();

  w.end();
  return w.take();
}

SimResult parse_result(const std::string& text) {
  Reader r(text);
  const std::string_view version = r.begin_tagged("edc.SimResult");
  if (version != "v" + std::to_string(kResultFormatVersion)) {
    throw FormatError("unsupported result format version: '" +
                      std::string(version) + "'");
  }

  SimResult result;
  result.end_time = r.number("end_time");
  result.harvested = r.number("harvested");
  result.consumed = r.number("consumed");
  result.dissipated = r.number("dissipated");
  result.stored_initial = r.number("stored_initial");
  result.stored_final = r.number("stored_final");
  result.nvm_torn_writes = r.u64("nvm_torn_writes");
  result.nvm_commits = r.u64("nvm_commits");
  result.fine_steps = r.u64("fine_steps");
  result.span_steps = r.u64("span_steps");
  result.spans = r.u64("spans");

  auto& m = result.mcu;
  r.begin("mcu");
  m.time_off = r.number("time_off");
  m.time_boot = r.number("time_boot");
  m.time_active = r.number("time_active");
  m.time_saving = r.number("time_saving");
  m.time_restoring = r.number("time_restoring");
  m.time_sleep = r.number("time_sleep");
  m.time_wait = r.number("time_wait");
  m.time_done = r.number("time_done");
  m.cycles_active = r.number("cycles_active");
  m.forward_cycles = r.number("forward_cycles");
  m.reexecuted_cycles = r.number("reexecuted_cycles");
  m.poll_cycles = r.number("poll_cycles");
  m.boots = r.u64("boots");
  m.brownouts = r.u64("brownouts");
  m.saves_started = r.u64("saves_started");
  m.saves_completed = r.u64("saves_completed");
  m.restores = r.u64("restores");
  m.direct_resumes = r.u64("direct_resumes");
  m.peripheral_reinits = r.u64("peripheral_reinits");
  m.energy_active = r.number("energy_active");
  m.energy_save = r.number("energy_save");
  m.energy_restore = r.number("energy_restore");
  m.energy_sleep = r.number("energy_sleep");
  m.energy_other = r.number("energy_other");
  m.completed = r.boolean("completed");
  m.completion_time = r.number("completion_time");
  r.end();

  const std::size_t transition_count = canon::parse_u64(r.begin_tagged("transitions"));
  result.transitions.reserve(transition_count);
  for (std::size_t i = 0; i < transition_count; ++i) {
    StateChange change;
    change.time = canon::parse_double(r.begin_tagged("at"));
    change.from = parse_state(r.begin_tagged("from"));
    r.end();
    change.to = parse_state(r.begin_tagged("to"));
    r.end();
    change.vcc = r.number("vcc");
    r.end();
    result.transitions.push_back(change);
  }
  r.end();

  const std::size_t probe_count = canon::parse_u64(r.begin_tagged("probes"));
  for (std::size_t i = 0; i < probe_count; ++i) {
    r.begin("probe");
    std::string name = r.text("name");
    result.probes.add(std::move(name), read_waveform(r));
    r.end();
  }
  r.end();

  r.end();
  r.finish();
  return result;
}

// ---- fleets ----------------------------------------------------------------

std::string serialize_fleet_result(const FleetResult& result) {
  std::string out = "edc.FleetResult v" +
                    std::to_string(kFleetResultFormatVersion) + '\n';
  out += "nodes " + std::to_string(result.nodes.size()) + '\n';
  for (const SimResult& node : result.nodes) {
    const std::string bytes = serialize_result(node);
    out += "node_bytes " + std::to_string(bytes.size()) + '\n';
    out += bytes;
  }
  return out;
}

FleetResult parse_fleet_result(const std::string& text) {
  std::size_t pos = 0;
  const auto read_line = [&]() -> std::string {
    const std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      throw FormatError("fleet result truncated: missing newline");
    }
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  const auto prefixed_u64 = [](const std::string& line,
                               std::string_view prefix) -> std::uint64_t {
    if (line.rfind(prefix, 0) != 0) {
      throw FormatError("fleet result: expected '" + std::string(prefix) +
                        "', got '" + line + "'");
    }
    return canon::parse_u64(std::string_view(line).substr(prefix.size()));
  };

  const std::string magic = read_line();
  if (magic != "edc.FleetResult v" + std::to_string(kFleetResultFormatVersion)) {
    throw FormatError("unsupported fleet result header: '" + magic + "'");
  }
  const std::uint64_t node_count = prefixed_u64(read_line(), "nodes ");

  FleetResult result;
  result.nodes.reserve(node_count);
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const std::uint64_t length = prefixed_u64(read_line(), "node_bytes ");
    if (pos + length > text.size()) {
      throw FormatError("fleet result truncated inside node block " +
                        std::to_string(i));
    }
    result.nodes.push_back(parse_result(text.substr(pos, length)));
    pos += length;
  }
  if (pos != text.size()) {
    throw FormatError("fleet result has trailing bytes after the last node");
  }
  return result;
}

}  // namespace edc::sim
