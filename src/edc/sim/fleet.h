// Node-count-N front end over the scalar simulation stack.
//
// FleetSimulator advances every node of a spec::FleetSpec across the shared
// dt lattice and returns one FleetResult. It is deliberately *not* a new
// integrator: each node is lowered to its effective single-node SystemSpec
// (spec::fleet_node_spec) and run through the ordinary spec::instantiate →
// core::EnergyDrivenSystem → sim::Simulator path, so every scalar-path
// invariant — the quiescent engine, span certificates, macro stepping, the
// energy ledger — holds per node unchanged.
//
// Coupling terms are broadcast once per substep in the declarative sense:
// the shared-RF field's seeded burst schedule is a pure function of the
// coupling spec, so each node's CoupledRfPower source reconstructs
// bit-identical field samples at every shared-lattice substep — the same
// value a runtime broadcast bus would deliver, realized the way the batch
// kernel realizes its once-per-substep circuit::DriverSample broadcast
// (one sample per instant, fanned out to all lanes). validate_fleet()
// enforces the shared lattice (dt / node_substeps / t_end) that makes the
// per-substep instants line up across nodes.
//
// Consequences pinned by tests/fleet_test.cpp:
//  * N=1 uncoupled fleets are event-for-event bit-identical to running the
//    node's spec through sim::Simulator directly (lowering is the identity
//    for them);
//  * fleet nodes remain ordinary, independently cacheable sweep points, so
//    the Cache/Runner/Search stack works on fleets unchanged (sweep/fleet.h).
#pragma once

#include "edc/sim/fleet_result.h"
#include "edc/spec/fleet_spec.h"

namespace edc::sim {

class FleetSimulator {
 public:
  /// Validates the fleet's cross-node invariants up front (throws
  /// std::invalid_argument, see spec::validate_fleet).
  explicit FleetSimulator(spec::FleetSpec fleet);

  /// Runs every node over the shared lattice; nodes() entries appear in
  /// fleet node order. Repeatable: each call re-instantiates the nodes
  /// from the spec, so back-to-back runs return identical results.
  [[nodiscard]] FleetResult run() const;

  [[nodiscard]] const spec::FleetSpec& fleet() const noexcept { return fleet_; }

 private:
  spec::FleetSpec fleet_;
};

}  // namespace edc::sim
