#include "edc/sim/batch_kernel.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "edc/common/check.h"
#include "edc/sim/step_lattice.h"
#include "edc/trace/waveform.h"

namespace edc::sim {

// The per-lane mirror of the scalar run_loop's locals. The batch loop
// interleaves the same per-step sequence across lanes, so each lane's
// trajectory through this state is exactly the scalar loop's — that is the
// whole bit-identity argument.
struct BatchKernel::LaneState {
  BatchLane* parts = nullptr;
  const QuiescentEngine* engine = nullptr;  // null when planning is disabled
  SimResult result;
  std::vector<double> probe_vcc, probe_freq, probe_state, probe_power;
  Seconds next_probe = 0.0;
  Seconds next_governor = 0.0;
  bool probing = false;
  bool governed = false;
  Joules harvested = 0.0;
  Joules consumed = 0.0;
  Joules dissipated = 0.0;
  std::uint64_t step = 0;
  Seconds t = 0.0;
  Volts v_prev = 0.0;
  mcu::McuState last_state = mcu::McuState::off;
  bool active = true;
};

BatchKernel::BatchKernel(std::vector<BatchLane> lanes) : lanes_(std::move(lanes)) {
  EDC_CHECK(!lanes_.empty(), "batch needs at least one lane");
  const Seconds dt = lanes_[0].config.dt;
  const int substeps = lanes_[0].config.node_substeps;
  EDC_CHECK(dt > 0.0, "dt must be positive");
  EDC_CHECK(substeps >= 1, "need at least one substep");
  for (const BatchLane& lane : lanes_) {
    EDC_CHECK(lane.node != nullptr && lane.driver != nullptr && lane.mcu != nullptr,
              "lane is missing required parts");
    EDC_CHECK(lane.config.dt == dt, "lockstep lanes must share dt");
    EDC_CHECK(lane.config.node_substeps == substeps,
              "lockstep lanes must share node_substeps");
    EDC_CHECK(lane.config.t_end > 0.0, "t_end must be positive");
    EDC_CHECK(lane.driver->batchable(), "batch lanes need a batchable driver");
  }
}

void BatchKernel::book_span(LaneState& lane, const QuiescentSpan& span) const {
  BatchLane& parts = *lane.parts;
  const Seconds dt = parts.config.dt;
  mcu::Mcu& mcu = *parts.mcu;
  if (lane.probing) {
    // Replay the fine path's probe schedule from the analytic trajectory
    // (same code as the scalar loop's span booking).
    const Seconds probe_interval = parts.config.probe_interval;
    const double freq_mhz = mcu.frequency() / 1e6;
    const auto state_channel = static_cast<double>(mcu.state());
    double k_min = 0.0;
    while (true) {
      double k = std::ceil((lane.next_probe - lane.t) / dt);
      if (k < k_min) k = k_min;
      if (k >= static_cast<double>(span.steps)) break;
      const Volts v_probe = span.voltage_at((k + 1.0) * dt);
      lane.probe_vcc.push_back(v_probe);
      lane.probe_freq.push_back(freq_mhz);
      lane.probe_state.push_back(state_channel);
      lane.probe_power.push_back(span.draw * v_probe * 1e3);
      lane.next_probe += probe_interval;
      k_min = k + 1.0;
    }
  }
  const Seconds jumped = static_cast<double>(span.steps) * dt;
  mcu.note_quiescent_span(jumped, span.consumed);
  lane.harvested += span.harvested;  // nonzero for charge spans only
  lane.consumed += span.consumed;
  lane.dissipated += span.dissipated;
  parts.node->set_voltage(span.v_end);
  lane.step += span.steps;
  lane.t = dt * static_cast<double>(lane.step);
  lane.result.span_steps += span.steps;
  ++lane.result.spans;
  lane.v_prev = span.v_end;
}

void BatchKernel::post_step(LaneState& lane, Volts v_now) {
  BatchLane& parts = *lane.parts;
  const SimConfig& config = parts.config;
  const Seconds dt = config.dt;
  mcu::Mcu& mcu = *parts.mcu;
  const Seconds t = lane.t;

  mcu.supply_update(lane.v_prev, t, v_now, t + dt);
  mcu.advance(t, dt, v_now);

  if (lane.governed && t >= lane.next_governor) {
    if (mcu.state() != mcu::McuState::off) {
      parts.governor->control(mcu, v_now, t);
    }
    lane.next_governor = t + parts.governor->period();
  }

  if (mcu.state() != lane.last_state) {
    lane.result.transitions.push_back(
        StateChange{t + dt, lane.last_state, mcu.state(), v_now});
    lane.last_state = mcu.state();
  }

  if (lane.probing && t >= lane.next_probe) {
    lane.probe_vcc.push_back(v_now);
    lane.probe_freq.push_back(mcu.frequency() / 1e6);
    lane.probe_state.push_back(static_cast<double>(mcu.state()));
    lane.probe_power.push_back(mcu.current_draw(v_now, t) * v_now * 1e3);
    lane.next_probe += config.probe_interval;
  }

  ++lane.step;
  ++lane.result.fine_steps;
  lane.t = dt * static_cast<double>(lane.step);
  lane.v_prev = v_now;

  if (config.stop_on_completion && mcu.metrics().completed) finalize(lane);
}

void BatchKernel::finalize(LaneState& lane) const {
  lane.active = false;
  BatchLane& parts = *lane.parts;
  SimResult& result = lane.result;
  result.end_time = lane.t;
  result.harvested = lane.harvested;
  result.consumed = lane.consumed;
  result.dissipated = lane.dissipated;
  if (lane.probing && lane.probe_vcc.size() >= 2) {
    // End-of-step samples: waveforms start at t = dt (see the scalar loop).
    const Seconds t0 = parts.config.dt;
    const Seconds probe_interval = parts.config.probe_interval;
    result.probes.add("vcc",
                      trace::Waveform(t0, probe_interval, std::move(lane.probe_vcc)));
    result.probes.add("freq_mhz",
                      trace::Waveform(t0, probe_interval, std::move(lane.probe_freq)));
    result.probes.add("state",
                      trace::Waveform(t0, probe_interval, std::move(lane.probe_state)));
    result.probes.add("power_mw",
                      trace::Waveform(t0, probe_interval, std::move(lane.probe_power)));
  }
  result.stored_final = parts.node->stored_energy();
  result.mcu = parts.mcu->metrics();
  result.nvm_torn_writes = parts.mcu->nvm().torn_writes();
  result.nvm_commits = parts.mcu->nvm().commits();
}

std::vector<SimResult> BatchKernel::run() {
  const Seconds dt = lanes_[0].config.dt;
  const int substeps = lanes_[0].config.node_substeps;
  const std::size_t n = lanes_.size();

  // Engines are constructed into a reserved vector: they keep pointers to
  // the lane configs (and the QuiescentEngine itself is referenced by
  // LaneState), so neither lanes_ nor this vector may reallocate.
  std::vector<QuiescentEngine> engines;
  engines.reserve(n);
  std::vector<LaneState> states(n);
  for (std::size_t i = 0; i < n; ++i) {
    BatchLane& parts = lanes_[i];
    engines.emplace_back(parts.config, *parts.node, *parts.driver, *parts.mcu);
    LaneState& lane = states[i];
    lane.parts = &parts;
    lane.engine = engines.back().enabled() ? &engines.back() : nullptr;
    lane.result.stored_initial = parts.node->stored_energy();
    lane.probing = parts.config.probe_interval > 0.0;
    lane.governed = parts.governor != nullptr;
    if (lane.probing) {
      const auto capacity =
          static_cast<std::size_t>(std::min(parts.config.t_end / parts.config.probe_interval,
                                            parts.config.t_end / dt)) +
          2;
      lane.probe_vcc.reserve(capacity);
      lane.probe_freq.reserve(capacity);
      lane.probe_state.reserve(capacity);
      lane.probe_power.reserve(capacity);
    }
    lane.v_prev = parts.node->voltage();
    lane.last_state = parts.mcu->state();
  }

  // Gather/scatter scratch for the compact fine set of each round.
  std::vector<std::size_t> fine;
  fine.reserve(n);
  std::vector<double> v(n), cap(n), bleed(n), i_load(n);
  std::vector<double> e_harvested(n), e_consumed(n), e_dissipated(n);

  while (true) {
    // Lockstep front: only lanes at the minimum lattice step act this
    // round; span-jumped lanes wait for the rest to catch up.
    bool any_active = false;
    std::uint64_t front = 0;
    for (const LaneState& lane : states) {
      if (!lane.active) continue;
      if (!any_active || lane.step < front) front = lane.step;
      any_active = true;
    }
    if (!any_active) break;

    fine.clear();
    for (std::size_t i = 0; i < n; ++i) {
      LaneState& lane = states[i];
      if (!lane.active || lane.step != front) continue;
      const SimConfig& config = lane.parts->config;
      if (!(lane.t < config.t_end)) {
        finalize(lane);
        continue;
      }
      if (lane.engine != nullptr) {
        std::uint64_t max_steps = steps_starting_before(lane.step, config.t_end, dt);
        if (lane.governed) {
          max_steps =
              std::min(max_steps,
                       steps_starting_before(lane.step, lane.next_governor, dt));
        }
        if (const auto span = lane.engine->plan(lane.t, max_steps)) {
          book_span(lane, *span);
          continue;  // jumped ahead; waits for the lockstep front
        }
      }
      fine.push_back(i);
    }
    // Every front lane planned a span or finished: the front moved, so the
    // next round makes progress without a fine step.
    if (fine.empty()) continue;

    const Seconds t = dt * static_cast<double>(front);
    const std::size_t m = fine.size();
    for (std::size_t k = 0; k < m; ++k) {
      const LaneState& lane = states[fine[k]];
      const circuit::SupplyNode& node = *lane.parts->node;
      v[k] = node.voltage();
      cap[k] = node.capacitance();
      bleed[k] = node.bleed();
      // The MCU's draw depends only on its discrete state, which nothing
      // advances during the node step — hoist one sample per lane per step
      // (the scalar path re-samples it per substep with the same value).
      i_load[k] = lane.parts->mcu->current_draw(v[k], t);
    }

    circuit::SupplyNode::SoaLanes block;
    block.count = m;
    block.v = v.data();
    block.capacitance = cap.data();
    block.bleed = bleed.data();
    block.i_load = i_load.data();
    block.harvested = e_harvested.data();
    block.consumed = e_consumed.data();
    block.dissipated = e_dissipated.data();
    // Grouped lanes carry structurally identical drivers (the grouping
    // contract), so any lane's driver yields the shared source samples.
    circuit::SupplyNode::step_lanes(t, dt, *states[fine[0]].parts->driver, substeps,
                                    block);

    for (std::size_t k = 0; k < m; ++k) {
      LaneState& lane = states[fine[k]];
      lane.harvested += e_harvested[k];
      lane.consumed += e_consumed[k];
      lane.dissipated += e_dissipated[k];
      lane.parts->node->set_voltage(v[k]);
      post_step(lane, v[k]);
    }
  }

  std::vector<SimResult> results;
  results.reserve(n);
  for (LaneState& lane : states) results.push_back(std::move(lane.result));
  return results;
}

}  // namespace edc::sim
