#include "edc/sim/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "edc/common/check.h"

namespace edc::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EDC_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  EDC_CHECK(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::eng(double value, const std::string& unit, int precision) {
  struct Scale {
    double factor;
    const char* prefix;
  };
  static constexpr Scale kScales[] = {{1e9, "G"},  {1e6, "M"},  {1e3, "k"},
                                      {1.0, ""},   {1e-3, "m"}, {1e-6, "u"},
                                      {1e-9, "n"}, {1e-12, "p"}};
  if (value == 0.0) return "0 " + unit;
  const double mag = std::abs(value);
  for (const auto& scale : kScales) {
    if (mag >= scale.factor) {
      return num(value / scale.factor, precision) + " " + scale.prefix + unit;
    }
  }
  return num(value / 1e-12, precision) + " p" + unit;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      out << (c + 1 == cells.size() ? " |" : " | ");
    }
    out << '\n';
  };
  auto print_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace edc::sim
