// Terminal oscilloscope: renders waveforms as ASCII plots so that each
// bench can show the figure it reproduces (Fig 1, 7, 8) directly in its
// output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "edc/trace/waveform.h"

namespace edc::sim {

struct PlotOptions {
  int width = 100;   ///< plot columns
  int height = 18;   ///< plot rows
  std::string title;
  std::string y_label;
  std::string x_label = "time (s)";
  /// Optional fixed y range; if min == max the range is auto-scaled.
  double y_min = 0.0;
  double y_max = 0.0;
};

/// Plots one or more series over a shared time axis. Series are drawn with
/// '*', '+', 'o', 'x' in order; a legend line names them.
void plot(std::ostream& out, const std::vector<std::string>& names,
          const std::vector<trace::Waveform>& waves, const PlotOptions& options);

/// Single-series convenience wrapper.
void plot(std::ostream& out, const std::string& name, const trace::Waveform& wave,
          const PlotOptions& options);

/// Draws horizontal threshold markers (e.g. V_H, V_R) into the same frame.
struct Marker {
  double value;
  std::string label;
};

void plot_with_markers(std::ostream& out, const std::string& name,
                       const trace::Waveform& wave, const std::vector<Marker>& markers,
                       const PlotOptions& options);

}  // namespace edc::sim
