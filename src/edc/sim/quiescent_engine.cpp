#include "edc/sim/quiescent_engine.h"

#include <algorithm>
#include <cmath>

#include "edc/common/check.h"
#include "edc/sim/simulator.h"

namespace edc::sim {


namespace {

/// Number of whole dt steps starting at t that fit strictly inside [t, u),
/// clamped to max_steps. A skipped step spans [s, s + dt], so the whole
/// span must sit inside the driver's quiet window.
std::uint64_t steps_within(Seconds t, Seconds u, Seconds dt,
                           std::uint64_t max_steps) {
  if (!(u > t)) return 0;
  if (std::isinf(u)) return max_steps;
  const double n = std::floor((u - t) / dt);
  if (n <= 0.0) return 0;
  if (n >= static_cast<double>(max_steps)) return max_steps;
  return static_cast<std::uint64_t>(n);
}

/// Books the exact continuum energy split of a decay span into `span`:
/// the stored-energy drop divides between the constant draw (consumed) and
/// the bleed (dissipated) with zero ledger residual. Clamping guards the
/// last few ulp.
void book_decay_energy(QuiescentSpan& span, Farads capacitance, Volts v0,
                       Seconds elapsed) {
  const Joules delta =
      0.5 * capacitance * (v0 * v0 - span.v_end * span.v_end);
  span.consumed = std::min(span.decay.load_energy(elapsed), delta);
  span.dissipated = delta - span.consumed;
  EDC_ASSERT(span.consumed >= 0.0 && span.dissipated >= 0.0);
}

}  // namespace

std::uint64_t QuiescentEngine::quiet_steps_on_decay(
    const circuit::DecaySolution& decay, Seconds t, Seconds dt,
    std::uint64_t n_cap) const {
  // The driver window is evaluated at the candidate span's voltage floor
  // (quiescent_until is monotone in v_floor, so one most-conservative
  // query per candidate is sound). A deep candidate can tighten the band
  // so far that not even one step fits although the first steps decay
  // barely at all — retrying geometrically shallower candidates recovers
  // those spans. Every accepted count is sound: the window was probed at a
  // floor at least as deep as the span it licenses, and a shorter span
  // only raises the true floor.
  std::uint64_t n = n_cap;
  while (n > 0) {
    const Volts v_floor = decay.voltage_at(dt * static_cast<double>(n));
    const std::uint64_t m =
        steps_within(t, driver_->quiescent_until(v_floor, t), dt, n);
    if (m > 0) return m;
    n /= 16;
  }
  return 0;
}

QuiescentEngine::QuiescentEngine(const SimConfig& config,
                                 const circuit::SupplyNode& node,
                                 const circuit::SupplyDriver& driver,
                                 const mcu::Mcu& mcu)
    : config_(&config), node_(&node), driver_(&driver), mcu_(&mcu) {}

bool QuiescentEngine::enabled() const noexcept {
  return config_->quiescent_fast_path || config_->macro_stepping;
}

std::optional<QuiescentSpan> QuiescentEngine::plan(Seconds t,
                                                   std::uint64_t max_steps) const {
  if (max_steps == 0) return std::nullopt;
  const mcu::McuState state = mcu_->state();
  if (state == mcu::McuState::off) {
    // Below the power-on threshold the node can only decay or follow a
    // certified charging ramp toward it, so the span planners stop
    // strictly before any boot; at or above the threshold the fine path
    // must run (it will boot the MCU this step).
    if (config_->macro_stepping && node_->voltage() < mcu_->power().v_on) {
      if (auto span = plan_off(t, max_steps)) return span;
      if (config_->charge_spans) {
        if (auto span = plan_charge(t, max_steps)) return span;
      }
      if (config_->ramp_spans) {
        if (auto span = plan_ramp(t, max_steps)) return span;
      }
    }
    // The bit-exact dead-node skip also covers drivers without usable
    // hints (per-substep probing), so try it even when a macro plan
    // found no provably-quiet step.
    if (config_->quiescent_fast_path) return plan_dead(t, max_steps);
    return std::nullopt;
  }
  if (config_->macro_stepping &&
      (state == mcu::McuState::sleep || state == mcu::McuState::wait ||
       state == mcu::McuState::done) &&
      mcu_->wake_is_comparator_driven()) {
    if (auto span = plan_low_power(t, max_steps)) return span;
    if (config_->charge_spans) {
      if (auto span = plan_charge(t, max_steps)) return span;
    }
    if (config_->ramp_spans) return plan_ramp(t, max_steps);
  }
  return std::nullopt;
}

std::optional<QuiescentSpan> QuiescentEngine::plan_dead(
    Seconds t, std::uint64_t /*max_steps*/) const {
  // With the node clamped at exactly 0 V and no injected current, every
  // energy flow of the step is identically zero (all flows integrate
  // i * v_mid with v_mid = 0) and neither the node voltage nor the MCU
  // state machine can change, so skipping the step is bit-exact. The
  // driver must be quiet at *every* substep instant the ODE would have
  // sampled, or the slow path could have started charging mid-step.
  // A power-on threshold at (or below) ground would boot the MCU from a
  // dead node in the slow path; the skip must never engage then.
  if (node_->voltage() != 0.0 || mcu_->power().v_on <= 0.0) return std::nullopt;
  QuiescentSpan span;
  span.steps = 1;
  span.v_end = 0.0;
  span.decay = node_->decay_from(0.0, 0.0);
  const Seconds dt = config_->dt;
  // One quiescent_until() hint covers a whole dead span: a step fully
  // inside the cached quiet window skips on a single comparison instead of
  // one virtual driver probe per ODE substep. Spans stay single-step so
  // the per-step metric additions (time_off += dt) remain bit-identical
  // to the fine path's accumulation order.
  if (t >= quiet_from_ && t + dt <= quiet_until_) return span;
  const Seconds hint = driver_->quiescent_until(0.0, t);
  if (hint > t) {
    quiet_from_ = t;
    quiet_until_ = hint;
    if (t + dt <= hint) return span;
  }
  // No usable hint (or the window ends mid-step): fall back to probing the
  // substep instants. The hint is conservative, so the final decision is
  // identical to the historical per-substep check.
  const Seconds h = dt / static_cast<double>(config_->node_substeps);
  for (int i = 0; i < config_->node_substeps; ++i) {
    if (driver_->current_into(0.0, t + h * static_cast<double>(i)) > 0.0) {
      return std::nullopt;
    }
  }
  return span;
}

std::optional<QuiescentSpan> QuiescentEngine::plan_off(
    Seconds t, std::uint64_t max_steps) const {
  const Seconds dt = config_->dt;
  const Volts v0 = node_->voltage();
  const Amps off_leakage = mcu_->current_draw(v0, t);
  QuiescentSpan span;
  span.draw = off_leakage;

  if (v0 <= config_->macro_v_tol) {
    // Dead (or tolerance-dead) node: nothing decays, so the span is limited
    // by driver activity alone. The sub-tolerance residual charge is booked
    // to the bleed in one lump so the energy ledger still closes exactly.
    const std::uint64_t n =
        steps_within(t, driver_->quiescent_until(0.0, t), dt, max_steps);
    if (n == 0) return std::nullopt;
    span.steps = n;
    span.v_end = 0.0;
    span.dissipated = 0.5 * node_->capacitance() * v0 * v0;
    span.decay = node_->decay_from(0.0, off_leakage);
    return span;
  }

  // Cheap rejection first: quiescent_until is monotone in v_floor and the
  // node only decays from v0, so the hint at v0 bounds every achievable
  // horizon from above. During charging ramps (driver active) this is the
  // per-step cost of an enabled-but-idle macro path — one virtual call, no
  // decay math.
  if (steps_within(t, driver_->quiescent_until(v0, t), dt, 1) == 0) {
    return std::nullopt;
  }

  span.decay = node_->decay_from(v0, off_leakage);
  // The node only decays over the span, so its trajectory is bounded below
  // by the value at the candidate horizon; quiet_steps_on_decay probes the
  // driver window there and retries shallower when the deep band is
  // already violated.
  const std::uint64_t n = quiet_steps_on_decay(span.decay, t, dt, max_steps);
  if (n == 0) return std::nullopt;

  const Seconds elapsed = dt * static_cast<double>(n);
  span.steps = n;
  span.v_end = span.decay.voltage_at(elapsed);
  book_decay_energy(span, node_->capacitance(), v0, elapsed);
  return span;
}

std::optional<QuiescentSpan> QuiescentEngine::plan_low_power(
    Seconds t, std::uint64_t max_steps) const {
  const Seconds dt = config_->dt;
  const Volts v0 = node_->voltage();
  // Cheap rejection: while the driver conducts (charging ramps, active
  // supply arcs) the span cannot start — one virtual call per fine step.
  if (steps_within(t, driver_->quiescent_until(v0, t), dt, 1) == 0) {
    return std::nullopt;
  }

  QuiescentSpan span;
  span.draw = mcu_->current_draw(v0, t);  // constant per state
  span.decay = node_->decay_from(v0, span.draw);

  // The watchers' horizon: the first analytic comparator trip or v_min
  // brown-out crossing on this decay. The crossing step itself must run
  // finely — supply_update needs to see the v_prev > trip >= v_now
  // transition to emit the event at its interpolated instant — so the span
  // may only cover steps whose end stays strictly above the trip.
  std::uint64_t n = max_steps;
  const mcu::Mcu::WakeCrossing crossing = mcu_->plan_wake_crossing(span.decay);
  const bool has_crossing = std::isfinite(crossing.time);
  if (has_crossing) {
    const double whole = std::ceil(crossing.time / dt) - 1.0;
    if (whole <= 0.0) return std::nullopt;
    if (whole < static_cast<double>(n)) n = static_cast<std::uint64_t>(whole);
  }

  // Driver horizon at the span's voltage floor (same shallower-retry
  // scheme as the off-state span).
  n = quiet_steps_on_decay(span.decay, t, dt, n);
  if (n == 0) return std::nullopt;

  span.v_end = span.decay.voltage_at(dt * static_cast<double>(n));
  if (has_crossing) {
    // Float-inverse guard: time_to_reach and voltage_at are analytic
    // inverses only up to rounding, and a span that lands at or below the
    // trip would swallow the crossing (fine stepping resumes with
    // v_prev <= trip and the edge never fires). Backing off a step is
    // always sound — the event then simply fires during fine stepping.
    while (n > 0 && span.v_end <= crossing.trip) {
      --n;
      span.v_end = span.decay.voltage_at(dt * static_cast<double>(n));
    }
    if (n == 0) return std::nullopt;
  }

  span.steps = n;
  book_decay_energy(span, node_->capacitance(), v0, dt * static_cast<double>(n));
  return span;
}

std::optional<QuiescentSpan> QuiescentEngine::plan_charge(
    Seconds t, std::uint64_t max_steps) const {
  const circuit::ChargeSpanCert cert = driver_->plan_charge_span(t);
  if (!cert.valid) return std::nullopt;
  const Seconds dt = config_->dt;
  std::uint64_t n = steps_within(t, cert.until, dt, max_steps);
  if (n == 0) return std::nullopt;
  const Volts v0 = node_->voltage();
  // The rectifier conducts — and the closed form applies — only while the
  // node sits strictly below the constant rectified source; at or above
  // it the driver is dead and the decay planners own the span.
  if (!(v0 < cert.v_source)) return std::nullopt;

  QuiescentSpan span;
  span.charging = true;
  span.draw = mcu_->current_draw(v0, t);  // constant per state
  span.charge = node_->charge_from(v0, cert.v_source, cert.r_series, span.draw);
  // Only the monotone *rise* is a charging ramp; a node sagging toward a
  // lower conduction equilibrium would arm falling watchers and is rare
  // enough to leave to fine stepping.
  if (!(span.charge.asymptote() > v0)) return std::nullopt;

  // The watchers' horizon: the power-on boot (MCU off) or the first rising
  // comparator trip on this rise. The crossing step itself must run finely
  // — supply_update needs to see the v_prev < trip <= v_now transition —
  // so the span may only cover steps whose end stays strictly below the
  // trip.
  const mcu::Mcu::WakeCrossing crossing = mcu_->plan_charge_crossing(span.charge);
  const bool has_crossing = std::isfinite(crossing.time);
  if (has_crossing) {
    const double whole = std::ceil(crossing.time / dt) - 1.0;
    if (whole <= 0.0) return std::nullopt;
    if (whole < static_cast<double>(n)) n = static_cast<std::uint64_t>(whole);
  }

  span.v_end = span.charge.voltage_at(dt * static_cast<double>(n));
  if (has_crossing) {
    // Rising mirror of the decay spans' float-inverse guard: a span that
    // lands at or above the trip would swallow the crossing (fine stepping
    // resumes with v_prev >= trip and the edge never fires). Backing off a
    // step is always sound.
    while (n > 0 && span.v_end >= crossing.trip) {
      --n;
      span.v_end = span.charge.voltage_at(dt * static_cast<double>(n));
    }
    if (n == 0) return std::nullopt;
  }

  span.steps = n;
  const Seconds elapsed = dt * static_cast<double>(n);
  span.consumed = span.charge.load_energy(elapsed);
  span.dissipated = span.charge.bleed_energy(elapsed);
  // Deriving the harvested share from the continuum identity
  // harvested == stored delta + consumed + dissipated closes the span's
  // ledger exactly, mirroring book_decay_energy's zero residual.
  const Joules delta =
      0.5 * node_->capacitance() * (span.v_end * span.v_end - v0 * v0);
  span.harvested = delta + span.consumed + span.dissipated;
  EDC_ASSERT(span.consumed >= 0.0 && span.dissipated >= 0.0 &&
             span.harvested >= 0.0);
  return span;
}

std::optional<QuiescentSpan> QuiescentEngine::plan_ramp(
    Seconds t, std::uint64_t max_steps) const {
  const Seconds dt = config_->dt;
  const Volts tol = config_->macro_v_tol;

  // ICP-style contraction (the bound-and-shrink idiom): ask the driver for
  // a certified chord over a candidate horizon and shrink the horizon
  // while the interval envelope exceeds the span tolerance. Chord error
  // scales ~h^2 for the C2 sources, so a few halvings converge; give up
  // below a 2-step window, where nothing is left to claim. Even 2-3 step
  // spans pay for themselves: near every chord-run boundary the
  // alternative is a fine step *plus* this same contractor run ending in
  // rejection. An invalid certificate exits immediately — that is the
  // per-fine-step rejection path during uncertifiable stretches, and must
  // stay one virtual call.
  const double n_cap =
      static_cast<double>(std::min<std::uint64_t>(max_steps, 256));
  Seconds horizon = n_cap * dt;
  circuit::RampSpanCert cert;
  for (int iter = 0;; ++iter) {
    if (iter >= 16 || !(horizon >= 2.0 * dt)) return std::nullopt;
    cert = driver_->plan_ramp_span(t, horizon);
    if (!cert.valid) return std::nullopt;
    const Volts envelope = std::max(-cert.err_lo, cert.err_hi);
    if (envelope <= tol) break;
    horizon = std::min(cert.until - t, horizon) * 0.5;
  }
  // The chord may deviate from the true source by env_pad; the node (a
  // stable linear ODE with DC gain <= 1 from the source and zero initial
  // deviation) then deviates from the modeled trajectory by at most
  // env_pad too.
  const Volts env_pad = std::max(-cert.err_lo, cert.err_hi);

  std::uint64_t n = steps_within(t, cert.until, dt, max_steps);
  if (n == 0) return std::nullopt;

  const Volts v0 = node_->voltage();
  QuiescentSpan span;
  span.ramping = true;
  span.draw = mcu_->current_draw(v0, t);  // constant per state
  span.ramp = node_->ramp_from(v0, cert.v_source0, cert.slope, cert.r_series,
                               span.draw);

  Seconds elapsed = dt * static_cast<double>(n);
  // Certify the closed form's validity over the whole window:
  //  * the ground clamp provably never engages — the modeled minimum
  //    clears the node deviation envelope;
  //  * the rectifier provably keeps conducting — the modeled source-node
  //    margin clears the chord envelope plus the node envelope, so the
  //    true rectified source stays strictly above the true node voltage
  //    and current_into never takes its zero branch.
  // Either failing leaves the span to fine stepping (or to a later, closer
  // equilibrium where the margins reopen).
  if (!(span.ramp.min_voltage(elapsed) > env_pad)) return std::nullopt;
  if (!(span.ramp.min_source_margin(elapsed) > 2.0 * env_pad)) {
    return std::nullopt;
  }

  // The watchers' horizon on the (possibly non-monotone) ramp: the first
  // instant the modeled trajectory enters any armed watcher's +/- env_pad
  // band bounds every possible discrete event from below. The crossing
  // step itself must run finely, so the span may only cover steps whose
  // end provably stays outside the binding band.
  const mcu::Mcu::WakeCrossing crossing = mcu_->plan_ramp_crossing(
      span.ramp, env_pad, elapsed + dt);
  const bool has_crossing = std::isfinite(crossing.time);
  if (has_crossing) {
    const double whole = std::ceil(crossing.time / dt) - 1.0;
    if (whole <= 0.0) return std::nullopt;
    if (whole < static_cast<double>(n)) {
      n = static_cast<std::uint64_t>(whole);
      elapsed = dt * static_cast<double>(n);
    }
  }

  span.v_end = span.ramp.voltage_at(elapsed);
  if (has_crossing) {
    // Float-inverse guard, interval edition: the span's end must sit
    // strictly outside the binding trip's err_pad band on the starting
    // side, so the resumed fine stepping still owns the whole crossing
    // edge. Backing off a step is always sound.
    const bool from_above = span.ramp.v0 > crossing.trip;
    const Volts guard =
        from_above ? crossing.trip + env_pad : crossing.trip - env_pad;
    while (n > 0 &&
           (from_above ? span.v_end <= guard : span.v_end >= guard)) {
      --n;
      elapsed = dt * static_cast<double>(n);
      span.v_end = span.ramp.voltage_at(elapsed);
    }
    if (n == 0) return std::nullopt;
  }

  span.steps = n;
  span.consumed = span.ramp.load_energy(elapsed);
  span.dissipated = span.ramp.bleed_energy(elapsed);
  // Same continuum identity as plan_charge: deriving the harvested share
  // from stored delta + consumed + dissipated closes the ledger exactly.
  const Joules delta =
      0.5 * node_->capacitance() * (span.v_end * span.v_end - v0 * v0);
  span.harvested = delta + span.consumed + span.dissipated;
  EDC_ASSERT(span.consumed >= 0.0 && span.dissipated >= 0.0 &&
             span.harvested >= 0.0);
  return span;
}

}  // namespace edc::sim
