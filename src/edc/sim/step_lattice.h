// Step-lattice arithmetic shared by the scalar simulator loop and the
// batched SoA kernel.
//
// The simulation loop keeps time on an exact lattice t == dt * step (see
// sim/simulator.cpp): deadlines (t_end, the governor period) are honoured
// by capping how many whole steps a quiescent span may jump, so a deadline
// is always *processed* on a fine step whose start lies before it.
#pragma once

#include <cmath>
#include <cstdint>

#include "edc/common/units.h"

namespace edc::sim {

/// Number of consecutive steps, starting at lattice index `step`, whose
/// *start* instant dt * k lies strictly before `limit` — i.e. how many
/// steps the loop may take (or skip) before an event scheduled at `limit`
/// must be processed. 0 when the current step already starts at or past
/// the limit.
///
/// The obvious std::ceil((limit - t) / dt) over-claims by one step when
/// the division rounds up across an integer — e.g. step 0, dt = 0.1,
/// limit = 3 * 0.1 (== 0.30000000000000004 in binary64) gives
/// ceil(3.0000000000000004) == 4, claiming the step that starts exactly
/// *on* the limit. The walk-back guard below re-checks the claimed last
/// step's start against the same dt * k lattice the loop itself uses, so
/// a span can never swallow a step the fine loop would have stopped on.
/// (Under-claiming is harmless — the caller just takes a fine step and
/// re-plans — so only the over-claim side needs the guard.)
[[nodiscard]] inline std::uint64_t steps_starting_before(std::uint64_t step,
                                                         Seconds limit,
                                                         Seconds dt) {
  const Seconds t = dt * static_cast<double>(step);
  if (t >= limit) return 0;
  auto n = static_cast<std::uint64_t>(std::ceil((limit - t) / dt));
  while (n > 1 &&
         dt * static_cast<double>(step + (n - 1)) >= limit) {
    --n;
  }
  return n;
}

}  // namespace edc::sim
