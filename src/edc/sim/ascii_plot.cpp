#include "edc/sim/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "edc/common/check.h"

namespace edc::sim {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '%'};

struct Frame {
  int width;
  int height;
  double y_lo;
  double y_hi;
  std::vector<std::string> grid;  // height rows of width chars

  Frame(int w, int h, double lo, double hi)
      : width(w), height(h), y_lo(lo), y_hi(hi),
        grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' ')) {}

  [[nodiscard]] int row_of(double y) const {
    const double frac = (y - y_lo) / (y_hi - y_lo);
    const int row = height - 1 - static_cast<int>(std::lround(frac * (height - 1)));
    return std::clamp(row, 0, height - 1);
  }

  void put(int col, double y, char glyph) {
    if (col < 0 || col >= width) return;
    grid[static_cast<std::size_t>(row_of(y))][static_cast<std::size_t>(col)] = glyph;
  }
};

std::string format_axis(double value) {
  std::ostringstream os;
  os << std::setw(10) << std::setprecision(4) << std::defaultfloat << value;
  return os.str();
}

void render(std::ostream& out, const Frame& frame, Seconds t0, Seconds t1,
            const PlotOptions& options, const std::string& legend) {
  if (!options.title.empty()) out << options.title << '\n';
  if (!legend.empty()) out << legend << '\n';
  for (int r = 0; r < frame.height; ++r) {
    const double y =
        frame.y_hi - (frame.y_hi - frame.y_lo) * static_cast<double>(r) /
                         static_cast<double>(frame.height - 1);
    out << format_axis(y) << " |" << frame.grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(frame.width), '-')
      << '\n';
  std::ostringstream footer;
  footer << std::string(11, ' ') << std::setprecision(4) << std::defaultfloat << t0;
  const std::string t1_str = [&] {
    std::ostringstream os;
    os << std::setprecision(4) << std::defaultfloat << t1 << " " << options.x_label;
    return os.str();
  }();
  std::string line = footer.str();
  const std::size_t pad =
      line.size() + t1_str.size() < 12 + static_cast<std::size_t>(frame.width)
          ? 12 + static_cast<std::size_t>(frame.width) - line.size() - t1_str.size()
          : 1;
  out << line << std::string(pad, ' ') << t1_str << '\n';
  if (!options.y_label.empty()) out << "  y: " << options.y_label << '\n';
}

}  // namespace

void plot(std::ostream& out, const std::vector<std::string>& names,
          const std::vector<trace::Waveform>& waves, const PlotOptions& options) {
  EDC_CHECK(!waves.empty(), "nothing to plot");
  EDC_CHECK(names.size() == waves.size(), "names/waves mismatch");

  double lo = options.y_min, hi = options.y_max;
  if (lo == hi) {
    lo = waves.front().min();
    hi = waves.front().max();
    for (const auto& wave : waves) {
      lo = std::min(lo, wave.min());
      hi = std::max(hi, wave.max());
    }
    if (lo == hi) {
      lo -= 1.0;
      hi += 1.0;
    }
    const double pad = 0.05 * (hi - lo);
    lo -= pad;
    hi += pad;
  }

  Seconds t0 = waves.front().t0();
  Seconds t1 = waves.front().t_end();
  for (const auto& wave : waves) {
    t0 = std::min(t0, wave.t0());
    t1 = std::max(t1, wave.t_end());
  }

  Frame frame(options.width, options.height, lo, hi);
  for (std::size_t s = 0; s < waves.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (int col = 0; col < options.width; ++col) {
      const Seconds t =
          t0 + (t1 - t0) * static_cast<double>(col) / static_cast<double>(options.width - 1);
      frame.put(col, waves[s].at(t), glyph);
    }
  }

  std::string legend;
  if (waves.size() > 1 || !names.front().empty()) {
    for (std::size_t s = 0; s < names.size(); ++s) {
      legend += (s ? "   " : "  ");
      legend += kGlyphs[s % sizeof(kGlyphs)];
      legend += " = " + names[s];
    }
  }
  render(out, frame, t0, t1, options, legend);
}

void plot(std::ostream& out, const std::string& name, const trace::Waveform& wave,
          const PlotOptions& options) {
  plot(out, std::vector<std::string>{name}, std::vector<trace::Waveform>{wave}, options);
}

void plot_with_markers(std::ostream& out, const std::string& name,
                       const trace::Waveform& wave, const std::vector<Marker>& markers,
                       const PlotOptions& options) {
  double lo = options.y_min, hi = options.y_max;
  if (lo == hi) {
    lo = wave.min();
    hi = wave.max();
    for (const auto& marker : markers) {
      lo = std::min(lo, marker.value);
      hi = std::max(hi, marker.value);
    }
    const double pad = 0.05 * (hi - lo == 0.0 ? 1.0 : hi - lo);
    lo -= pad;
    hi += pad;
  }

  Frame frame(options.width, options.height, lo, hi);
  for (int col = 0; col < options.width; ++col) {
    const Seconds t = wave.t0() + (wave.t_end() - wave.t0()) * static_cast<double>(col) /
                                      static_cast<double>(options.width - 1);
    frame.put(col, wave.at(t), '*');
  }
  for (const auto& marker : markers) {
    const int row = frame.row_of(marker.value);
    auto& line = frame.grid[static_cast<std::size_t>(row)];
    for (int col = 0; col < options.width; ++col) {
      auto& ch = line[static_cast<std::size_t>(col)];
      if (ch == ' ') ch = '-';
    }
    // Tag the marker label at the right edge.
    const std::string tag = " " + marker.label;
    if (tag.size() < line.size()) {
      line.replace(line.size() - tag.size(), tag.size(), tag);
    }
  }

  std::string legend = "  * = " + name;
  for (const auto& marker : markers) legend += "   -- = " + marker.label;
  render(out, frame, wave.t0(), wave.t_end(), options, legend);
}

}  // namespace edc::sim
