// Policy and governor hook interfaces.
//
// A checkpoint policy (edc/checkpoint) steers the MCU through these
// callbacks; a frequency governor (edc/neutral) adjusts DFS at a fixed
// control period. Both see the Mcu's command API only — the simulation loop
// owns timing and the supply node.
#pragma once

#include <cstdint>
#include <string>

#include "edc/circuit/comparator.h"
#include "edc/common/units.h"
#include "edc/workloads/program.h"

namespace edc::mcu {

class Mcu;
enum class McuState : std::uint8_t;

class PolicyHooks {
 public:
  virtual ~PolicyHooks() = default;

  /// Planning contract for the simulator's quiescent engine
  /// (sim/quiescent_engine.h): true asserts that while the MCU sits in the
  /// low-power `state` (sleep / wait / done), this policy takes no action
  /// except from its registered supply comparators — so the engine may
  /// macro-step the span analytically, re-entering fine stepping at the
  /// earliest comparator trip or v_min brown-out crossing, and no hidden
  /// wake condition can be overclaimed away. The conservative default
  /// claims nothing, which disables sleep-span planning for the policy.
  [[nodiscard]] virtual bool wakes_only_by_comparator(McuState state) const {
    (void)state;
    return false;
  }

  /// Boot completed (fresh power-up or post-outage reset). The policy must
  /// decide how execution (re)starts: restore, run from scratch, or wait.
  virtual void on_boot(Mcu& mcu, Seconds t) = 0;

  /// A supply comparator the policy configured has fired.
  virtual void on_comparator(Mcu& mcu, const circuit::ComparatorEvent& event) = 0;

  /// The program completed a tick that ended at the given boundary kind
  /// (loop/function). Mementos-style polling happens here.
  virtual void on_boundary(Mcu& mcu, workloads::Boundary boundary, Seconds t) = 0;

  /// A snapshot finished committing to NVM.
  virtual void on_save_complete(Mcu& mcu, Seconds t) = 0;

  /// A snapshot finished restoring; the program is ready to continue.
  virtual void on_restore_complete(Mcu& mcu, Seconds t) = 0;

  /// Supply fell below v_min while the MCU was on: volatile state lost.
  virtual void on_power_loss(Mcu& mcu, Seconds t) = 0;

  /// The workload finished (digest available).
  virtual void on_workload_complete(Mcu& mcu, Seconds t) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

class FrequencyGovernor {
 public:
  virtual ~FrequencyGovernor() = default;

  /// Invoked every control period while the MCU is powered; may call
  /// mcu.set_frequency().
  virtual void control(Mcu& mcu, Volts vcc, Seconds t) = 0;

  /// Control period (s).
  [[nodiscard]] virtual Seconds period() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace edc::mcu
