#include "edc/mcu/nvm.h"

#include "edc/common/check.h"

namespace edc::mcu {

void NvmStore::begin_write(Snapshot snapshot) {
  if (pending_.has_value()) ++torn_;
  snapshot.sequence = commits_ + 1;
  pending_ = std::move(snapshot);
}

void NvmStore::commit() {
  EDC_CHECK(pending_.has_value(), "no snapshot write in progress");
  committed_ = std::move(pending_);
  pending_.reset();
  ++commits_;
}

void NvmStore::abandon_write() {
  if (pending_.has_value()) {
    pending_.reset();
    ++torn_;
  }
}

const Snapshot& NvmStore::snapshot() const {
  EDC_CHECK(committed_.has_value(), "no valid snapshot");
  return *committed_;
}

void NvmStore::clear() {
  committed_.reset();
  pending_.reset();
  commits_ = 0;
  torn_ = 0;
}

}  // namespace edc::mcu
