// MCU power/timing model (MSP430FR-class, the platform family of Hibernus,
// Hibernus++, QuickRecall and Mementos).
//
// Constants are calibrated to the magnitudes reported in the papers behind
// the taxonomy (Balsamo ESL'15 / TCAD'16, Jayakumar JETC'15): ~100 uA/MHz
// active from FRAM vs ~70 uA/MHz from SRAM, ~1.5 uA LPM3 sleep, multi-KB
// snapshots writing to FRAM in a few thousand cycles. The model exposes
// everything the checkpoint policies and Eq 4/Eq 5 need: currents per
// state, and snapshot/restore cycle counts and energies as functions of the
// saved image size.
#pragma once

#include <cstddef>

#include "edc/common/units.h"

namespace edc::mcu {

/// Where code and data live while executing (Eq 5's two regimes, plus the
/// architectural NVP approach of [10]).
enum class MemoryMode {
  sram_execution,  ///< code/data in SRAM; snapshot copies all RAM to NVM
  unified_fram,    ///< QuickRecall-style: everything in FRAM; only registers volatile
  nv_processor,    ///< NVP: non-volatile flip-flops shadow the registers
};

struct McuPowerModel {
  // Supply thresholds.
  Volts v_min = 1.8;  ///< brown-out: below this the core loses state
  Volts v_on = 2.0;   ///< power-on-reset release

  // Active execution currents: I = i_base + slope * f.
  Amps i_base = 120e-6;
  Amps i_per_hz_sram = 75e-12;   ///< 75 uA/MHz executing from SRAM
  Amps i_per_hz_fram = 105e-12;  ///< 105 uA/MHz executing from FRAM
  Amps i_per_hz_nvp = 86e-12;    ///< NVP: SRAM-like + NV flip-flop overhead

  // FRAM write adds on top of active current while snapshotting/restoring.
  Amps i_per_hz_nvm_write = 60e-12;

  // Low-power modes.
  Amps i_sleep = 1.5e-6;     ///< LPM3: RAM retained, comparator alive
  Amps i_deep_wait = 0.8e-6; ///< waiting for the restore threshold after boot

  // Reset/boot.
  Cycles boot_cycles = 2000;

  // Snapshot/restore timing (cycles), linear in the image size.
  Cycles save_overhead_cycles = 500;
  double save_cycles_per_byte = 3.0;
  Cycles restore_overhead_cycles = 300;
  double restore_cycles_per_byte = 2.0;

  // Volatile register/SFR file (always part of a snapshot).
  std::size_t register_file_bytes = 96;

  // Vcc sampling cost (Mementos' polling; an ADC conversion).
  Cycles vcc_poll_cycles = 160;

  // ---- Derived queries -----------------------------------------------

  [[nodiscard]] Amps active_current(Hertz f, MemoryMode mode) const {
    Amps slope = i_per_hz_sram;
    if (mode == MemoryMode::unified_fram) slope = i_per_hz_fram;
    if (mode == MemoryMode::nv_processor) slope = i_per_hz_nvp;
    return i_base + slope * f;
  }

  [[nodiscard]] Amps save_current(Hertz f) const {
    return i_base + (i_per_hz_fram + i_per_hz_nvm_write) * f;
  }

  [[nodiscard]] Amps restore_current(Hertz f) const {
    return i_base + i_per_hz_fram * f;
  }

  [[nodiscard]] Cycles save_cycles(std::size_t image_bytes) const {
    return save_overhead_cycles +
           static_cast<Cycles>(save_cycles_per_byte * static_cast<double>(image_bytes));
  }

  [[nodiscard]] Cycles restore_cycles(std::size_t image_bytes) const {
    return restore_overhead_cycles +
           static_cast<Cycles>(restore_cycles_per_byte * static_cast<double>(image_bytes));
  }

  /// Energy to save an image at frequency f and supply v (Eq 4's E_S).
  [[nodiscard]] Joules save_energy(std::size_t image_bytes, Hertz f, Volts v) const {
    const Seconds t = static_cast<double>(save_cycles(image_bytes)) / f;
    return t * save_current(f) * v;
  }

  /// Energy to restore an image at frequency f and supply v.
  [[nodiscard]] Joules restore_energy(std::size_t image_bytes, Hertz f, Volts v) const {
    const Seconds t = static_cast<double>(restore_cycles(image_bytes)) / f;
    return t * restore_current(f) * v;
  }
};

/// The DFS table of the modelled MCU (hibernus-PN modulates across these).
inline constexpr Hertz kFrequencyTable[] = {1e6, 2e6, 4e6, 8e6, 16e6, 24e6};
inline constexpr int kFrequencyCount = 6;

}  // namespace edc::mcu
