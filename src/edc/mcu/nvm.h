// Non-volatile snapshot store with commit semantics.
//
// Snapshots are double-buffered (as Mementos' two-bank scheme and hibernus'
// validity marker both ensure): a write that does not complete before power
// is lost is discarded and the previously committed snapshot — if any —
// remains valid. This models the paper's §II.B failure mode "a snapshot
// might be started but not completed before the supply is interrupted".
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "edc/common/units.h"

namespace edc::mcu {

/// One committed system snapshot.
struct Snapshot {
  std::vector<std::byte> program_state;  ///< the program's RAM image
  double carry_cycles = 0.0;             ///< partial progress into the next tick
  std::uint64_t sequence = 0;            ///< commit counter (debug/tests)
};

class NvmStore {
 public:
  /// Starts writing a snapshot; replaces any write already in progress
  /// (the abandoned one is counted as torn).
  void begin_write(Snapshot snapshot);

  /// Commits the in-progress write; it becomes the valid snapshot.
  void commit();

  /// Power was lost mid-write: the in-progress snapshot is discarded.
  void abandon_write();

  [[nodiscard]] bool write_in_progress() const noexcept { return pending_.has_value(); }
  [[nodiscard]] bool has_valid_snapshot() const noexcept { return committed_.has_value(); }
  [[nodiscard]] const Snapshot& snapshot() const;

  /// Erases everything (fresh device).
  void clear();

  // Lifetime statistics.
  [[nodiscard]] std::uint64_t commits() const noexcept { return commits_; }
  [[nodiscard]] std::uint64_t torn_writes() const noexcept { return torn_; }

 private:
  std::optional<Snapshot> committed_;
  std::optional<Snapshot> pending_;
  std::uint64_t commits_ = 0;
  std::uint64_t torn_ = 0;
};

}  // namespace edc::mcu
