// The transiently-powered MCU model.
//
// Mcu is a circuit::Load whose draw depends on its execution state, and a
// small state machine driven by the simulation loop:
//
//   off -> boot -> { active <-> saving -> sleep -> (restore|resume) } -> done
//
// A checkpoint policy (PolicyHooks) owns all *decisions* — when to save,
// when to restore, what thresholds to watch — while Mcu owns *mechanics*:
// cycle-accurate program execution (with partial-tick carry), snapshot
// timing/energy, comparators, brown-out semantics, and metrics.
//
// Saving captures the program's RAM image at the instant the save starts
// (the program is halted during the copy, as on the real devices). If the
// supply browns out mid-save the write is torn and the previous committed
// snapshot stays valid (see NvmStore). In unified-FRAM mode (QuickRecall)
// only the register file is copied, but execution draws FRAM-level power.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "edc/circuit/comparator.h"
#include "edc/circuit/supply_driver.h"
#include "edc/common/check.h"
#include "edc/common/units.h"
#include "edc/mcu/hooks.h"
#include "edc/mcu/nvm.h"
#include "edc/mcu/power_model.h"
#include "edc/workloads/program.h"

namespace edc::mcu {

enum class McuState : std::uint8_t {
  off,        ///< below v_min (or never powered)
  boot,       ///< power-on reset sequence running
  active,     ///< executing the program
  saving,     ///< copying a snapshot to NVM
  restoring,  ///< copying a snapshot back from NVM
  sleep,      ///< LPM after hibernation (RAM retained while powered)
  wait,       ///< post-boot deep wait (e.g. for the restore threshold)
  done,       ///< workload complete
};

[[nodiscard]] const char* to_string(McuState state) noexcept;

struct McuMetrics {
  // Wall-clock split (s).
  Seconds time_off = 0, time_boot = 0, time_active = 0, time_saving = 0,
          time_restoring = 0, time_sleep = 0, time_wait = 0, time_done = 0;

  // Cycle accounting.
  double cycles_active = 0;        ///< all cycles spent in active state
  double forward_cycles = 0;       ///< cycles of ticks that advanced max progress
  double reexecuted_cycles = 0;    ///< cycles of ticks re-run after rollback
  double poll_cycles = 0;          ///< policy overhead: ADC polls, calibration

  // Event counts.
  std::uint64_t boots = 0;
  std::uint64_t brownouts = 0;
  std::uint64_t saves_started = 0;
  std::uint64_t saves_completed = 0;
  std::uint64_t restores = 0;
  std::uint64_t direct_resumes = 0;  ///< wake from sleep with RAM intact
  std::uint64_t peripheral_reinits = 0;  ///< peripheral re-config after outages

  // Energy attribution (J), integrated as I(state)*V*dt.
  Joules energy_active = 0, energy_save = 0, energy_restore = 0,
         energy_sleep = 0, energy_other = 0;

  // Workload completion.
  bool completed = false;
  Seconds completion_time = 0;

  [[nodiscard]] Joules energy_total() const {
    return energy_active + energy_save + energy_restore + energy_sleep + energy_other;
  }
  [[nodiscard]] Seconds time_on() const {
    return time_boot + time_active + time_saving + time_restoring + time_sleep +
           time_wait + time_done;
  }
};

struct McuParams {
  McuPowerModel power;
  Hertz initial_frequency = 8e6;
  MemoryMode memory_mode = MemoryMode::sram_execution;

  // ---- peripheral state (the paper's §IV open problem) -----------------
  // Embedded systems are more than a core: ADCs, radios, timers and sensor
  // front-ends hold volatile configuration (SFRs, calibration words, radio
  // register maps) that a power cycle destroys. A checkpoint policy either
  // includes this file in every snapshot (bigger image, higher Eq 4 V_H) or
  // re-initialises the peripherals after every restore (a fixed cycle cost,
  // e.g. reprogramming a radio over SPI).
  std::size_t peripheral_file_bytes = 64;
  Cycles peripheral_reinit_cycles = 12000;
};

class Mcu final : public circuit::Load {
 public:
  /// `program` and `policy` must outlive the Mcu.
  Mcu(const McuParams& params, workloads::Program& program, PolicyHooks& policy);

  // ---- circuit::Load -------------------------------------------------
  [[nodiscard]] Amps current_draw(Volts v_node, Seconds t) const override;

  // ---- simulation-facing ----------------------------------------------
  /// Processes the supply transition of one step: power-on, comparator
  /// events, brown-out. Call before advance().
  void supply_update(Volts v_prev, Seconds t_prev, Volts v_now, Seconds t_now);

  /// Advances the state machine by dt at node voltage v_now.
  void advance(Seconds t, Seconds dt, Volts v_now);

  /// Books a span the simulation loop skipped while the MCU sat in a
  /// quiescent state (off / sleep / wait / done — the quiescent engine's
  /// dead-node fast path and analytic decay spans): the time counts toward
  /// the state's wall-clock metric and `energy` — what the state's constant
  /// draw took from the node over the span (0 for a dead node at 0 V; the
  /// analytic integral of I_state * V for a decay span) — toward its energy
  /// attribution, mirroring account_time()'s booking.
  void note_quiescent_span(Seconds dt, Joules energy = 0.0) noexcept {
    switch (state_) {
      case McuState::off:
        metrics_.time_off += dt;
        metrics_.energy_other += energy;
        break;
      case McuState::sleep:
        metrics_.time_sleep += dt;
        metrics_.energy_sleep += energy;
        break;
      case McuState::wait:
        metrics_.time_wait += dt;
        metrics_.energy_other += energy;
        break;
      case McuState::done:
        metrics_.time_done += dt;
        metrics_.energy_sleep += energy;
        break;
      default:
        EDC_ASSERT(false);  // only quiescent states may be span-booked
    }
  }

  /// Span planning for the quiescent engine: the earliest instant anything
  /// discrete can happen while the supply follows `decay` from decay.v0
  /// with this MCU powered but quiescent — the first analytic comparator
  /// trip (ComparatorBank::plan_falling_crossing) or the v_min brown-out
  /// crossing, whichever comes first.
  struct WakeCrossing {
    Seconds time = 0.0;  ///< +infinity when the decay triggers nothing
    Volts trip = 0.0;    ///< the governing threshold (valid when time is finite)
  };
  [[nodiscard]] WakeCrossing plan_wake_crossing(
      const circuit::DecaySolution& decay) const;

  /// The charging mirror of plan_wake_crossing: the earliest instant
  /// anything discrete can happen while the supply follows the monotone
  /// rising `charge` trajectory from charge.v0. While the MCU is off the
  /// only watcher is the power-on-reset release at v_on (supply_update
  /// boots when the end-of-step voltage reaches it; the comparator bank is
  /// only reset on that step); while powered-but-quiescent it is the first
  /// rising comparator trip (ComparatorBank::plan_rising_crossing — the
  /// v_min brown-out cannot fire on a rise).
  [[nodiscard]] WakeCrossing plan_charge_crossing(
      const circuit::ChargeSolution& charge) const;

  /// The interval-certified mirror for *non-monotone* linear-ramp
  /// trajectories: the earliest instant anything discrete could happen
  /// while the supply follows `ramp` from ramp.v0, given that the true
  /// node voltage may deviate from the model by up to `err_pad` (the ramp
  /// certificate's envelope). Every armed comparator trip and both
  /// level-triggered power watchers (the v_on power-on release while off,
  /// the v_min brown-out while powered) are bounded from below by the
  /// first instant the model enters the watcher's +/- err_pad band
  /// (ComparatorBank::plan_ramp_crossing's rule). Returns 0 when some
  /// watcher's band already contains the start voltage — no span is then
  /// certifiable; +infinity when nothing can fire within [0, t_max].
  [[nodiscard]] WakeCrossing plan_ramp_crossing(
      const circuit::LinearRampSolution& ramp, Volts err_pad,
      Seconds t_max) const;

  /// Whether the attached policy certifies the *current* state as woken
  /// only by comparators (PolicyHooks::wakes_only_by_comparator) — the
  /// license plan_wake_crossing()'s result needs to be exhaustive.
  [[nodiscard]] bool wake_is_comparator_driven() const {
    return policy_->wakes_only_by_comparator(state_);
  }

  // ---- policy/governor command API -------------------------------------
  /// Starts a snapshot of the current program state. No-op if not active.
  void request_save(Seconds t);

  /// Starts restoring the committed snapshot. Requires has_valid_snapshot().
  void request_restore(Seconds t);

  /// Resets the program and starts executing from scratch.
  void start_program_fresh(Seconds t);

  /// Continues execution without a restore (RAM still valid).
  void resume_execution(Seconds t);

  void enter_sleep(Seconds t);
  void enter_wait(Seconds t);
  void mark_done(Seconds t);

  void set_frequency(Hertz f);
  [[nodiscard]] Hertz frequency() const noexcept { return frequency_; }

  void set_memory_mode(MemoryMode mode) noexcept { memory_mode_ = mode; }
  [[nodiscard]] MemoryMode memory_mode() const noexcept { return memory_mode_; }

  /// Whether snapshots carry the peripheral configuration file. When false
  /// (the historical default of the early transient systems), every restore
  /// after an outage pays peripheral_reinit_cycles instead.
  void set_peripheral_snapshotting(bool include) noexcept {
    snapshot_peripherals_ = include;
  }
  [[nodiscard]] bool peripheral_snapshotting() const noexcept {
    return snapshot_peripherals_;
  }

  /// Registers (or reconfigures) a supply comparator; returns its index.
  std::size_t add_comparator(const std::string& name, Volts threshold,
                             Volts hysteresis = 0.02);
  void set_comparator_threshold(std::size_t index, Volts threshold);

  /// Last node voltage seen by supply_update (free to read — hardware
  /// comparators make it observable); use poll_vcc() to model an ADC read.
  [[nodiscard]] Volts vcc() const noexcept { return vcc_; }

  /// ADC conversion: stalls the program by vcc_poll_cycles and returns Vcc.
  Volts poll_vcc();

  /// Stalls the program by `cycles` of policy overhead (e.g. Hibernus++'s
  /// online calibration routine). Consumed before the next program tick.
  void inject_busy(double cycles);

  [[nodiscard]] NvmStore& nvm() noexcept { return nvm_; }
  [[nodiscard]] const NvmStore& nvm() const noexcept { return nvm_; }

  [[nodiscard]] workloads::Program& program() noexcept { return *program_; }
  [[nodiscard]] const workloads::Program& program() const noexcept { return *program_; }

  [[nodiscard]] McuState state() const noexcept { return state_; }
  [[nodiscard]] bool ram_valid() const noexcept { return ram_valid_; }
  [[nodiscard]] const McuPowerModel& power() const noexcept { return params_.power; }
  [[nodiscard]] const McuMetrics& metrics() const noexcept { return metrics_; }

  /// Bytes a snapshot must copy in the current memory mode.
  [[nodiscard]] std::size_t snapshot_image_bytes() const;

  /// Energy one snapshot costs right now (Eq 4's E_S at the current f/V).
  [[nodiscard]] Joules snapshot_energy_now() const;

 private:
  void dispatch_power_on(Seconds t);
  void dispatch_power_loss(Seconds t);
  void finish_boot(Seconds t);
  void finish_save(Seconds t);
  void finish_restore(Seconds t);
  void advance_active(Seconds t, Seconds& remaining, Volts v);
  void account_time(McuState state, Seconds dt, Volts v);

  McuParams params_;
  workloads::Program* program_;
  PolicyHooks* policy_;

  McuState state_ = McuState::off;
  Hertz frequency_;
  MemoryMode memory_mode_;
  Volts vcc_ = 0.0;
  bool ram_valid_ = false;
  bool snapshot_peripherals_ = false;
  bool peripherals_configured_ = false;

  double carry_cycles_ = 0.0;     ///< cycles already spent inside the next tick
  double stall_cycles_ = 0.0;     ///< pending overhead (ADC polls etc.)
  double boot_cycles_left_ = 0.0;
  double save_cycles_left_ = 0.0;
  double restore_cycles_left_ = 0.0;

  circuit::ComparatorBank comparators_;
  NvmStore nvm_;
  McuMetrics metrics_;
  std::uint64_t max_tick_reached_ = 0;
};

}  // namespace edc::mcu
