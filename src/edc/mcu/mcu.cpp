#include "edc/mcu/mcu.h"

#include <algorithm>

#include "edc/circuit/supply_node.h"
#include "edc/common/check.h"

namespace edc::mcu {

namespace {
constexpr Amps kOffLeakage = 0.05e-6;
constexpr Seconds kTimeEps = 1e-15;
}  // namespace

const char* to_string(McuState state) noexcept {
  switch (state) {
    case McuState::off: return "off";
    case McuState::boot: return "boot";
    case McuState::active: return "active";
    case McuState::saving: return "saving";
    case McuState::restoring: return "restoring";
    case McuState::sleep: return "sleep";
    case McuState::wait: return "wait";
    case McuState::done: return "done";
  }
  return "?";
}

Mcu::Mcu(const McuParams& params, workloads::Program& program, PolicyHooks& policy)
    : params_(params),
      program_(&program),
      policy_(&policy),
      frequency_(params.initial_frequency),
      memory_mode_(params.memory_mode) {
  EDC_CHECK(params.initial_frequency > 0.0, "frequency must be positive");
  EDC_CHECK(params.power.v_on >= params.power.v_min,
            "v_on must be at least v_min");
}

Amps Mcu::current_draw(Volts, Seconds) const {
  const McuPowerModel& p = params_.power;
  switch (state_) {
    case McuState::off: return kOffLeakage;
    case McuState::boot: return p.active_current(frequency_, memory_mode_);
    case McuState::active: return p.active_current(frequency_, memory_mode_);
    case McuState::saving: return p.save_current(frequency_);
    case McuState::restoring: return p.restore_current(frequency_);
    case McuState::sleep: return p.i_sleep;
    case McuState::wait: return p.i_deep_wait;
    case McuState::done: return p.i_sleep;
  }
  return 0.0;
}

void Mcu::supply_update(Volts v_prev, Seconds t_prev, Volts v_now, Seconds t_now) {
  vcc_ = v_now;
  if (state_ == McuState::off) {
    if (v_now >= params_.power.v_on) {
      dispatch_power_on(t_now);
      comparators_.reset(v_prev);
      for (const auto& event : comparators_.update(v_prev, t_prev, v_now, t_now)) {
        policy_->on_comparator(*this, event);
      }
    }
    return;
  }
  for (const auto& event : comparators_.update(v_prev, t_prev, v_now, t_now)) {
    if (state_ == McuState::off) break;  // a brown-out handler already ran
    policy_->on_comparator(*this, event);
  }
  if (state_ != McuState::off && v_now < params_.power.v_min) {
    dispatch_power_loss(t_now);
  }
}

void Mcu::dispatch_power_on(Seconds) {
  state_ = McuState::boot;
  boot_cycles_left_ = static_cast<double>(params_.power.boot_cycles);
  ram_valid_ = false;
  carry_cycles_ = 0.0;
  stall_cycles_ = 0.0;
  ++metrics_.boots;
}

void Mcu::dispatch_power_loss(Seconds t) {
  if (state_ == McuState::saving) nvm_.abandon_write();
  state_ = McuState::off;
  ram_valid_ = false;
  peripherals_configured_ = false;  // SFRs and radio registers are volatile
  carry_cycles_ = 0.0;
  stall_cycles_ = 0.0;
  ++metrics_.brownouts;
  policy_->on_power_loss(*this, t);
}

void Mcu::account_time(McuState state, Seconds dt, Volts v) {
  const McuState saved = state_;
  state_ = state;  // current_draw keys off state_
  const Joules energy = current_draw(v, 0.0) * v * dt;
  state_ = saved;
  switch (state) {
    case McuState::off: metrics_.time_off += dt; metrics_.energy_other += energy; break;
    case McuState::boot: metrics_.time_boot += dt; metrics_.energy_other += energy; break;
    case McuState::active: metrics_.time_active += dt; metrics_.energy_active += energy; break;
    case McuState::saving: metrics_.time_saving += dt; metrics_.energy_save += energy; break;
    case McuState::restoring:
      metrics_.time_restoring += dt;
      metrics_.energy_restore += energy;
      break;
    case McuState::sleep: metrics_.time_sleep += dt; metrics_.energy_sleep += energy; break;
    case McuState::wait: metrics_.time_wait += dt; metrics_.energy_other += energy; break;
    case McuState::done: metrics_.time_done += dt; metrics_.energy_sleep += energy; break;
  }
}

void Mcu::advance(Seconds t, Seconds dt, Volts v_now) {
  EDC_CHECK(dt > 0.0, "dt must be positive");
  Seconds remaining = dt;
  Seconds now = t;
  while (remaining > kTimeEps) {
    switch (state_) {
      case McuState::off:
      case McuState::sleep:
      case McuState::wait:
      case McuState::done: {
        account_time(state_, remaining, v_now);
        now += remaining;
        remaining = 0.0;
        break;
      }
      case McuState::boot: {
        const double cycles_possible = remaining * frequency_;
        if (cycles_possible >= boot_cycles_left_) {
          const Seconds used = boot_cycles_left_ / frequency_;
          account_time(McuState::boot, used, v_now);
          now += used;
          remaining -= used;
          boot_cycles_left_ = 0.0;
          finish_boot(now);
        } else {
          boot_cycles_left_ -= cycles_possible;
          account_time(McuState::boot, remaining, v_now);
          remaining = 0.0;
        }
        break;
      }
      case McuState::saving: {
        const double cycles_possible = remaining * frequency_;
        if (cycles_possible >= save_cycles_left_) {
          const Seconds used = save_cycles_left_ / frequency_;
          account_time(McuState::saving, used, v_now);
          now += used;
          remaining -= used;
          save_cycles_left_ = 0.0;
          finish_save(now);
        } else {
          save_cycles_left_ -= cycles_possible;
          account_time(McuState::saving, remaining, v_now);
          remaining = 0.0;
        }
        break;
      }
      case McuState::restoring: {
        const double cycles_possible = remaining * frequency_;
        if (cycles_possible >= restore_cycles_left_) {
          const Seconds used = restore_cycles_left_ / frequency_;
          account_time(McuState::restoring, used, v_now);
          now += used;
          remaining -= used;
          restore_cycles_left_ = 0.0;
          finish_restore(now);
        } else {
          restore_cycles_left_ -= cycles_possible;
          account_time(McuState::restoring, remaining, v_now);
          remaining = 0.0;
        }
        break;
      }
      case McuState::active: {
        advance_active(now, remaining, v_now);
        break;
      }
    }
  }
}

void Mcu::advance_active(Seconds t, Seconds& remaining, Volts v) {
  double budget = remaining * frequency_;
  double consumed = 0.0;

  // Pending overhead (ADC polls) stalls the program first.
  if (stall_cycles_ > 0.0) {
    const double s = std::min(stall_cycles_, budget);
    stall_cycles_ -= s;
    budget -= s;
    consumed += s;
  }

  while (state_ == McuState::active && budget > 0.0) {
    if (program_->done()) {
      const Seconds t_now = t + consumed / frequency_;
      mark_done(t_now);
      break;
    }
    const auto cost = static_cast<double>(program_->next_tick_cost());
    const double need = cost - carry_cycles_;
    if (budget < need) {
      carry_cycles_ += budget;
      consumed += budget;
      budget = 0.0;
      break;
    }
    budget -= need;
    consumed += need;
    carry_cycles_ = 0.0;
    program_->run_tick();
    const std::uint64_t k = program_->ticks_done();
    if (k > max_tick_reached_) {
      metrics_.forward_cycles += cost;
      max_tick_reached_ = k;
    } else {
      metrics_.reexecuted_cycles += cost;
    }
    const Seconds t_now = t + consumed / frequency_;
    if (program_->done()) {
      metrics_.completed = true;
      metrics_.completion_time = t_now;
      policy_->on_workload_complete(*this, t_now);
      if (state_ == McuState::active) mark_done(t_now);
      break;
    }
    policy_->on_boundary(*this, program_->boundary(), t_now);
    if (stall_cycles_ > 0.0 && state_ == McuState::active) {
      const double s = std::min(stall_cycles_, budget);
      stall_cycles_ -= s;
      budget -= s;
      consumed += s;
    }
  }

  const Seconds used = std::min(consumed / frequency_, remaining);
  if (used > 0.0) {
    account_time(McuState::active, used, v);
    metrics_.cycles_active += consumed;
  }
  // Guarantee forward progress of the outer loop: if we are still active the
  // whole slice was consumed (budget exhausted / carry updated).
  remaining = (state_ == McuState::active) ? 0.0 : remaining - used;
}

void Mcu::finish_boot(Seconds t) {
  state_ = McuState::wait;  // provisional; the policy decides what happens
  policy_->on_boot(*this, t);
}

void Mcu::request_save(Seconds) {
  if (state_ != McuState::active) return;
  Snapshot snapshot;
  snapshot.program_state = program_->save_state();
  snapshot.carry_cycles = carry_cycles_;
  nvm_.begin_write(std::move(snapshot));
  save_cycles_left_ = static_cast<double>(params_.power.save_cycles(snapshot_image_bytes()));
  state_ = McuState::saving;
  ++metrics_.saves_started;
}

void Mcu::finish_save(Seconds t) {
  nvm_.commit();
  ++metrics_.saves_completed;
  state_ = McuState::sleep;  // default; policy may override
  policy_->on_save_complete(*this, t);
}

void Mcu::request_restore(Seconds) {
  EDC_CHECK(nvm_.has_valid_snapshot(), "restore requested without a snapshot");
  if (state_ != McuState::wait && state_ != McuState::sleep) return;
  const std::size_t image =
      (memory_mode_ == MemoryMode::sram_execution ? nvm_.snapshot().program_state.size()
                                                  : 0) +
      params_.power.register_file_bytes;
  restore_cycles_left_ = static_cast<double>(params_.power.restore_cycles(image));
  state_ = McuState::restoring;
}

void Mcu::finish_restore(Seconds t) {
  const Snapshot& snapshot = nvm_.snapshot();
  program_->restore_state(snapshot.program_state);
  carry_cycles_ = snapshot.carry_cycles;
  ram_valid_ = true;
  if (!peripherals_configured_) {
    if (snapshot_peripherals_) {
      // The peripheral file was part of the image: configuration is back.
      peripherals_configured_ = true;
    } else {
      // The application must re-initialise its peripherals before using
      // them (SPI register writes, ADC calibration, PLL lock, ...).
      stall_cycles_ += static_cast<double>(params_.peripheral_reinit_cycles);
      ++metrics_.peripheral_reinits;
      peripherals_configured_ = true;
    }
  }
  ++metrics_.restores;
  state_ = McuState::active;  // default; policy may override
  policy_->on_restore_complete(*this, t);
}

void Mcu::start_program_fresh(Seconds) {
  program_->reset();
  carry_cycles_ = 0.0;
  ram_valid_ = true;
  if (!peripherals_configured_) {
    // First-boot peripheral initialisation (every system pays this once
    // per power cycle when starting from scratch).
    stall_cycles_ += static_cast<double>(params_.peripheral_reinit_cycles);
    ++metrics_.peripheral_reinits;
    peripherals_configured_ = true;
  }
  state_ = McuState::active;
}

void Mcu::resume_execution(Seconds) {
  EDC_CHECK(ram_valid_, "resume requested but RAM contents were lost");
  ++metrics_.direct_resumes;
  state_ = McuState::active;
}

void Mcu::enter_sleep(Seconds) { state_ = McuState::sleep; }

void Mcu::enter_wait(Seconds) { state_ = McuState::wait; }

void Mcu::mark_done(Seconds) { state_ = McuState::done; }

void Mcu::set_frequency(Hertz f) {
  EDC_CHECK(f > 0.0, "frequency must be positive");
  frequency_ = f;
}

Mcu::WakeCrossing Mcu::plan_wake_crossing(const circuit::DecaySolution& decay) const {
  WakeCrossing crossing;
  crossing.time = comparators_.plan_falling_crossing(decay, &crossing.trip);
  // supply_update fires the brown-out when the end-of-step voltage drops
  // strictly below v_min; the analytic instant V == v_min bounds that from
  // below, so re-entering fine stepping there can only be early, never
  // late.
  if (state_ != McuState::off) {
    const Seconds loss = decay.time_to_reach(params_.power.v_min);
    if (loss < crossing.time) {
      crossing.time = loss;
      crossing.trip = params_.power.v_min;
    }
  }
  return crossing;
}

Mcu::WakeCrossing Mcu::plan_charge_crossing(
    const circuit::ChargeSolution& charge) const {
  WakeCrossing crossing;
  if (state_ == McuState::off) {
    // supply_update boots when the end-of-step voltage reaches v_on; the
    // analytic instant V == v_on bounds that step from below, so
    // re-entering fine stepping there can only be early, never late.
    crossing.time = charge.time_to_reach(params_.power.v_on);
    crossing.trip = params_.power.v_on;
    return crossing;
  }
  crossing.time = comparators_.plan_rising_crossing(charge, &crossing.trip);
  return crossing;
}

Mcu::WakeCrossing Mcu::plan_ramp_crossing(const circuit::LinearRampSolution& ramp,
                                          Volts err_pad, Seconds t_max) const {
  WakeCrossing crossing;
  if (state_ == McuState::off) {
    // supply_update boots when the end-of-step voltage reaches v_on
    // (level-triggered; the comparator bank is only reset on that step, so
    // the power-on release is the off state's only watcher). The first
    // instant the modeled trajectory could carry the true voltage to v_on
    // is its entry into the threshold's err_pad band from below.
    crossing.trip = params_.power.v_on;
    crossing.time = ramp.v0 >= crossing.trip - err_pad
                        ? 0.0
                        : ramp.time_to_reach(crossing.trip - err_pad, t_max);
    return crossing;
  }
  crossing.time = comparators_.plan_ramp_crossing(ramp, err_pad, t_max, &crossing.trip);
  // The v_min brown-out is level-triggered on the end-of-step voltage; on a
  // non-monotone ramp it too is bounded from below by band entry.
  const Volts v_min = params_.power.v_min;
  const Seconds loss = ramp.v0 <= v_min + err_pad
                           ? 0.0
                           : ramp.time_to_reach(v_min + err_pad, t_max);
  if (loss < crossing.time) {
    crossing.time = loss;
    crossing.trip = v_min;
  }
  return crossing;
}

std::size_t Mcu::add_comparator(const std::string& name, Volts threshold,
                                Volts hysteresis) {
  circuit::Comparator comparator(name, threshold, hysteresis);
  comparator.reset(vcc_);
  return comparators_.add(std::move(comparator));
}

void Mcu::set_comparator_threshold(std::size_t index, Volts threshold) {
  auto& comparator = comparators_.at(index);
  comparator.set_threshold(threshold);
  // Re-arm against the present supply so the output state is consistent
  // with the new trip point (otherwise a lowered threshold could leave the
  // comparator latched low and unable to emit its falling edge).
  comparator.reset(vcc_);
}

Volts Mcu::poll_vcc() {
  stall_cycles_ += static_cast<double>(params_.power.vcc_poll_cycles);
  metrics_.poll_cycles += static_cast<double>(params_.power.vcc_poll_cycles);
  return vcc_;
}

void Mcu::inject_busy(double cycles) {
  EDC_CHECK(cycles >= 0.0, "cycles must be non-negative");
  stall_cycles_ += cycles;
  metrics_.poll_cycles += cycles;
}

std::size_t Mcu::snapshot_image_bytes() const {
  const std::size_t ram =
      (memory_mode_ == MemoryMode::sram_execution) ? program_->ram_footprint() : 0;
  const std::size_t peripherals =
      snapshot_peripherals_ ? params_.peripheral_file_bytes : 0;
  return ram + params_.power.register_file_bytes + peripherals;
}

Joules Mcu::snapshot_energy_now() const {
  return params_.power.save_energy(snapshot_image_bytes(), frequency_,
                                   std::max(vcc_, params_.power.v_min));
}

}  // namespace edc::mcu
