#include "edc/trace/quiet_index.h"

#include <cmath>
#include <limits>

#include "edc/common/check.h"

namespace edc::trace {

namespace {
constexpr Seconds kForever = std::numeric_limits<Seconds>::infinity();
}  // namespace

QuietSegmentIndex::QuietSegmentIndex(Seconds t0, Seconds cell_width,
                                     std::vector<Bounds> cells, Bounds head,
                                     Bounds tail)
    : t0_(t0), cell_(cell_width), cells_(std::move(cells)), head_(head), tail_(tail) {
  EDC_CHECK(cells_.empty() || cell_width > 0.0,
            "cell width must be positive when cells are present");
  for (const Bounds& b : cells_) {
    EDC_CHECK(b.lo <= b.hi, "cell bounds must be ordered");
  }
  summary_.reserve((cells_.size() + kSummaryGroup - 1) / kSummaryGroup);
  for (std::size_t i = 0; i < cells_.size(); i += kSummaryGroup) {
    Bounds group = cells_[i];
    const std::size_t end = std::min(i + kSummaryGroup, cells_.size());
    for (std::size_t j = i + 1; j < end; ++j) {
      group.lo = std::min(group.lo, cells_[j].lo);
      group.hi = std::max(group.hi, cells_[j].hi);
    }
    summary_.push_back(group);
  }
}

Seconds QuietSegmentIndex::bounded_until(double floor, double ceiling,
                                         Seconds t) const {
  if (ceiling < floor) return t;
  if (cells_.empty()) {
    // Only the head/tail certificates exist; both must hold for a claim
    // over the unbounded remainder.
    return (fits(head_, floor, ceiling) && fits(tail_, floor, ceiling)) ? kForever
                                                                        : t;
  }
  const Seconds span_end = t0_ + cell_ * static_cast<double>(cells_.size());
  if (t >= span_end) {
    return fits(tail_, floor, ceiling) ? kForever : t;
  }
  std::size_t i = 0;
  // A violation at or before this index claims nothing: the instant t
  // itself may lie inside that cell (index arithmetic below can place t
  // one cell off at a boundary, so the cell t "really" occupies is never
  // past home + 1... see below).
  std::size_t home = 0;
  if (t < t0_) {
    if (!fits(head_, floor, ceiling)) return t;
  } else {
    // (t - t0) / cell can round *up* across a cell boundary, which would
    // start the walk one cell late and return a sliver claim whose start
    // instant already violates. Cell membership is defined by the same
    // t0 + cell * j products the builder used, so stepping the walk back
    // one cell and refusing any claim whose first violation sits at or
    // before the computed cell is exactly conservative.
    home = static_cast<std::size_t>((t - t0_) / cell_);
    if (home >= cells_.size()) home = cells_.size() - 1;  // float-edge clamp
    i = home > 0 ? home - 1 : 0;
  }
  // Walk cells (whole summary groups when the group bound already fits)
  // until one violates the band.
  while (i < cells_.size()) {
    if (i % kSummaryGroup == 0 && fits(summary_[i / kSummaryGroup], floor, ceiling)) {
      i = std::min(i + kSummaryGroup, cells_.size());
      continue;
    }
    if (!fits(cells_[i], floor, ceiling)) {
      if (t >= t0_ && i <= home) return t;
      const Seconds u = t0_ + cell_ * static_cast<double>(i);
      // Refuse sliver claims: when t sits within rounding of the violating
      // cell's boundary, u can exceed t by a few ulps — a "claim" no
      // simulation step fits inside, which would send the engine around
      // its plan/fine-step loop without advancing. Claiming nothing
      // instead is always conservative.
      const Seconds margin = 1e-12 * (std::abs(t) < 1.0 ? 1.0 : std::abs(t));
      return u > t + margin ? u : t;
    }
    ++i;
  }
  return fits(tail_, floor, ceiling) ? kForever : span_end;
}

}  // namespace edc::trace
