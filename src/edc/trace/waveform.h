// Uniformly-sampled time series with linear interpolation.
//
// Waveform is the exchange format between source generators, the analog
// front-end, the simulator's probes, and the CSV/plot utilities. Samples are
// uniformly spaced starting at t0; evaluation between samples interpolates
// linearly, and evaluation outside the span clamps to the end samples.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "edc/common/units.h"

namespace edc::trace {

class Waveform {
 public:
  Waveform() = default;

  /// Builds a waveform from explicit samples. `dt` must be > 0 unless the
  /// waveform has fewer than two samples.
  Waveform(Seconds t0, Seconds dt, std::vector<double> samples);

  /// Samples `fn` uniformly on [t0, t1] with `n` samples (n >= 2).
  static Waveform sample(const std::function<double(Seconds)>& fn, Seconds t0,
                         Seconds t1, std::size_t n);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] Seconds t0() const noexcept { return t0_; }
  [[nodiscard]] Seconds dt() const noexcept { return dt_; }
  [[nodiscard]] Seconds t_end() const noexcept;
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  /// Linear interpolation; clamps outside [t0, t_end].
  [[nodiscard]] double at(Seconds t) const;

  [[nodiscard]] double front() const { return samples_.front(); }
  [[nodiscard]] double back() const { return samples_.back(); }

  /// Element-wise transform (e.g. unit conversion).
  [[nodiscard]] Waveform map(const std::function<double(double)>& fn) const;

  /// Resamples onto a new uniform grid spanning the same interval.
  [[nodiscard]] Waveform resample(std::size_t n) const;

  /// Appends one sample, extending the time span by dt.
  void push_back(double value) { samples_.push_back(value); }

  double min() const;
  double max() const;
  double mean() const;
  double rms() const;

  /// Trapezoidal integral over the full span (e.g. power -> energy).
  double integral() const;

 private:
  Seconds t0_ = 0.0;
  Seconds dt_ = 0.0;
  std::vector<double> samples_;
};

/// A labelled waveform bundle, e.g. all probes from one simulation run.
struct TraceSet {
  std::vector<std::string> names;
  std::vector<Waveform> waves;

  void add(std::string name, Waveform wave);
  [[nodiscard]] const Waveform* find(const std::string& name) const noexcept;
};

}  // namespace edc::trace
