// Uniformly-sampled time series with linear interpolation.
//
// Waveform is the exchange format between source generators, the analog
// front-end, the simulator's probes, and the CSV/plot utilities. Samples are
// uniformly spaced starting at t0; evaluation between samples interpolates
// linearly, and evaluation outside the span clamps to the end samples.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "edc/common/units.h"

namespace edc::trace {

class Waveform {
 public:
  Waveform() = default;

  /// Builds a waveform from explicit samples. `dt` must be > 0 unless the
  /// waveform has fewer than two samples.
  Waveform(Seconds t0, Seconds dt, std::vector<double> samples);

  /// Samples `fn` uniformly on [t0, t1] with `n` samples (n >= 2).
  static Waveform sample(const std::function<double(Seconds)>& fn, Seconds t0,
                         Seconds t1, std::size_t n);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] Seconds t0() const noexcept { return t0_; }
  [[nodiscard]] Seconds dt() const noexcept { return dt_; }
  [[nodiscard]] Seconds t_end() const noexcept;
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  /// Linear interpolation; clamps outside [t0, t_end].
  [[nodiscard]] double at(Seconds t) const;

  [[nodiscard]] double front() const { return samples_.front(); }
  [[nodiscard]] double back() const { return samples_.back(); }

  /// Element-wise transform (e.g. unit conversion).
  [[nodiscard]] Waveform map(const std::function<double(double)>& fn) const;

  /// Resamples onto a new uniform grid spanning the same interval.
  [[nodiscard]] Waveform resample(std::size_t n) const;

  /// Appends one sample, extending the time span by dt.
  void push_back(double value) { samples_.push_back(value); }

  double min() const;
  double max() const;
  double mean() const;
  double rms() const;

  /// Trapezoidal integral over the full span (e.g. power -> energy).
  double integral() const;

 private:
  Seconds t0_ = 0.0;
  Seconds dt_ = 0.0;
  std::vector<double> samples_;
};

/// Precomputed nonzero-segment index over a Waveform, for O(log n) activity
/// queries by trace-backed sources (the driver hints behind
/// sim::QuiescentEngine's event horizons).
///
/// A sample cell [i, i+1] is *active* when either endpoint sample is
/// nonzero — with linear interpolation the waveform is identically zero on
/// a cell exactly when both endpoints are zero. Maximal runs of active
/// cells become time segments; the clamped extrapolation beyond the sample
/// span extends the first/last segment to ±infinity when the edge sample is
/// nonzero. The index is built once at construction (sources build it next
/// to their waveform copy) and is immutable afterwards, so it is safe to
/// query from sweep worker threads.
class ActivityIndex {
 public:
  ActivityIndex() = default;

  /// Indexes `wave` (which may be empty: everything is then quiet forever).
  explicit ActivityIndex(const Waveform& wave);

  /// The latest time u >= t such that the interpolated (and edge-clamped)
  /// waveform is guaranteed to be exactly 0 throughout [t, u). Returns t
  /// when t lies inside an active segment, and +infinity when the waveform
  /// is zero from t onwards.
  [[nodiscard]] Seconds zero_until(Seconds t) const;

  /// Number of maximal active segments (diagnostics / tests).
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }

 private:
  struct Segment {
    Seconds begin = 0.0;
    Seconds end = 0.0;  // half-open [begin, end); may be +infinity
  };
  std::vector<Segment> segments_;  // sorted, disjoint
};

/// A labelled waveform bundle, e.g. all probes from one simulation run.
struct TraceSet {
  std::vector<std::string> names;
  std::vector<Waveform> waves;

  void add(std::string name, Waveform wave);
  [[nodiscard]] const Waveform* find(const std::string& name) const noexcept;
};

}  // namespace edc::trace
