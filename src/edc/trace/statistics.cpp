#include "edc/trace/statistics.h"

#include <algorithm>
#include <cmath>

#include "edc/common/check.h"

namespace edc::trace {

SummaryStats summarize(const Waveform& wave) {
  EDC_CHECK(!wave.empty(), "empty waveform");
  SummaryStats stats;
  stats.min = wave.min();
  stats.max = wave.max();
  stats.mean = wave.mean();
  stats.rms = wave.rms();
  double var = 0.0;
  for (double s : wave.samples()) {
    const double d = s - stats.mean;
    var += d * d;
  }
  stats.stddev = std::sqrt(var / static_cast<double>(wave.size()));
  return stats;
}

std::vector<Outage> find_outages(const Waveform& wave, double threshold) {
  std::vector<Outage> outages;
  if (wave.size() < 2) return outages;
  const auto& s = wave.samples();
  bool below = s.front() < threshold;
  Seconds start = wave.t0();
  for (std::size_t i = 1; i < s.size(); ++i) {
    const Seconds t_prev = wave.t0() + wave.dt() * static_cast<double>(i - 1);
    const bool now_below = s[i] < threshold;
    if (now_below == below) continue;
    // Interpolate the crossing instant between samples i-1 and i.
    const double denom = s[i] - s[i - 1];
    const double frac = denom == 0.0 ? 0.0 : (threshold - s[i - 1]) / denom;
    const Seconds t_cross = t_prev + wave.dt() * std::clamp(frac, 0.0, 1.0);
    if (below) {
      outages.push_back(Outage{start, t_cross - start});
    } else {
      start = t_cross;
    }
    below = now_below;
  }
  if (below) {
    outages.push_back(Outage{start, wave.t_end() - start});
  }
  return outages;
}

OutageStats outage_stats(const Waveform& wave, double threshold) {
  OutageStats stats;
  const auto outages = find_outages(wave, threshold);
  stats.count = outages.size();
  for (const Outage& o : outages) {
    stats.total += o.duration;
    stats.max_duration = std::max(stats.max_duration, o.duration);
  }
  stats.mean_duration =
      outages.empty() ? 0.0 : stats.total / static_cast<double>(outages.size());
  const Seconds span = wave.t_end() - wave.t0();
  stats.availability = span > 0.0 ? 1.0 - stats.total / span : 1.0;
  return stats;
}

Hertz dominant_frequency(const Waveform& wave) {
  EDC_CHECK(wave.size() >= 3, "waveform too short");
  const double mean = wave.mean();
  const auto& s = wave.samples();
  std::vector<Seconds> crossings;  // upward mean-crossings
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i - 1] < mean && s[i] >= mean) {
      const double denom = s[i] - s[i - 1];
      const double frac = denom == 0.0 ? 0.0 : (mean - s[i - 1]) / denom;
      crossings.push_back(wave.t0() + wave.dt() * (static_cast<double>(i - 1) + frac));
    }
  }
  if (crossings.size() < 2) return 0.0;
  const Seconds span = crossings.back() - crossings.front();
  return span > 0.0 ? static_cast<double>(crossings.size() - 1) / span : 0.0;
}

}  // namespace edc::trace
