#include "edc/trace/csv.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "edc/common/check.h"

namespace edc::trace {

void write_csv(std::ostream& out, const TraceSet& traces) {
  EDC_CHECK(!traces.waves.empty(), "empty trace set");
  out << "time";
  for (const auto& name : traces.names) out << ',' << name;
  out << '\n';
  const Waveform& grid = traces.waves.front();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Seconds t = grid.t0() + grid.dt() * static_cast<double>(i);
    out << t;
    for (const auto& wave : traces.waves) out << ',' << wave.at(t);
    out << '\n';
  }
}

void write_csv(std::ostream& out, const std::string& name, const Waveform& wave) {
  TraceSet set;
  set.add(name, wave);
  write_csv(out, set);
}

Waveform read_csv(std::istream& in) {
  std::vector<double> times;
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string t_str, v_str;
    if (!std::getline(row, t_str, ',') || !std::getline(row, v_str, ',')) continue;
    try {
      const double t = std::stod(t_str);
      const double v = std::stod(v_str);
      times.push_back(t);
      values.push_back(v);
    } catch (const std::exception&) {
      // Header or malformed row: skip. (Only tolerated before data rows.)
      EDC_CHECK(times.empty(), "malformed CSV row after data began: " + line);
    }
  }
  EDC_CHECK(times.size() >= 2, "CSV must contain at least two data rows");
  const double dt = times[1] - times[0];
  EDC_CHECK(dt > 0.0, "CSV time column must be increasing");
  for (std::size_t i = 2; i < times.size(); ++i) {
    const double step = times[i] - times[i - 1];
    EDC_CHECK(std::abs(step - dt) <= 1e-9 * std::max(1.0, std::abs(dt)) + 1e-12,
              "CSV time column must be uniformly spaced");
  }
  return Waveform(times.front(), dt, std::move(values));
}

}  // namespace edc::trace
