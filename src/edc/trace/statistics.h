// Summary statistics for waveforms and supply traces, including the outage
// statistics that drive transient-computing policy behaviour.
#pragma once

#include <cstddef>
#include <vector>

#include "edc/common/units.h"
#include "edc/trace/waveform.h"

namespace edc::trace {

struct SummaryStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double rms = 0.0;
  double stddev = 0.0;
};

SummaryStats summarize(const Waveform& wave);

/// A contiguous interval during which the waveform was below `threshold`.
struct Outage {
  Seconds start = 0.0;
  Seconds duration = 0.0;
};

/// Finds all sub-threshold intervals (e.g. supply outages below V_min).
std::vector<Outage> find_outages(const Waveform& wave, double threshold);

struct OutageStats {
  std::size_t count = 0;
  Seconds total = 0.0;
  Seconds mean_duration = 0.0;
  Seconds max_duration = 0.0;
  /// Fraction of the trace spent above threshold.
  double availability = 1.0;
};

OutageStats outage_stats(const Waveform& wave, double threshold);

/// Estimates the dominant frequency of an AC waveform from mean-crossing
/// intervals (robust for the wind-turbine trace; no FFT needed).
Hertz dominant_frequency(const Waveform& wave);

}  // namespace edc::trace
