// CSV import/export for waveforms and trace sets, so experiments can be
// re-plotted outside the harness (the paper's dataset DOI provides CSVs of
// the same shape).
#pragma once

#include <iosfwd>
#include <string>

#include "edc/trace/waveform.h"

namespace edc::trace {

/// Writes "time,<name0>,<name1>,..." rows. All waveforms are resampled onto
/// the time grid of the first waveform.
void write_csv(std::ostream& out, const TraceSet& traces);

/// Writes a single waveform as "time,value" rows.
void write_csv(std::ostream& out, const std::string& name, const Waveform& wave);

/// Reads a single-column CSV ("time,value", header optional) back into a
/// waveform. The time column must be uniformly spaced (within 1e-9 relative
/// tolerance); throws std::invalid_argument otherwise.
Waveform read_csv(std::istream& in);

}  // namespace edc::trace
