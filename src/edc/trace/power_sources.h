// Available-power envelope generators (behind a matched harvester front-end).
#pragma once

#include <string>
#include <vector>

#include "edc/trace/rng.h"
#include "edc/trace/source.h"
#include "edc/trace/waveform.h"

namespace edc::trace {

/// Constant available power (bench supply / idealised harvester).
class ConstantPowerSource final : public PowerSource {
 public:
  explicit ConstantPowerSource(Watts power);

  [[nodiscard]] Watts available_power(Seconds) const override { return power_; }
  [[nodiscard]] Seconds dormant_until(Seconds t) const override {
    return power_ > 0.0 ? t : kNeverActive;
  }
  [[nodiscard]] std::string name() const override;

 private:
  Watts power_;
};

/// Indoor photovoltaic cell over multiple days (Fig 1b).
///
/// Fig 1(b) plots harvested current from an indoor PV cell across two days:
/// a night-time floor near 290 uA (standby/emergency lighting), a broad
/// daytime plateau reaching ~420-430 uA (office lighting plus daylight
/// through windows), with shoulder transitions at the start/end of the
/// working day and small high-frequency occupancy noise. The model emits
/// current at a fixed operating voltage; available_power() = I(t) * V_op.
class IndoorPhotovoltaicSource final : public PowerSource {
 public:
  struct Params {
    double night_current_ua = 292.0;   ///< floor current at night.
    double day_current_ua = 425.0;     ///< plateau current mid-day.
    double day_start_h = 7.5;          ///< lights-on (hours, local).
    double day_end_h = 19.5;           ///< lights-off (hours, local).
    double shoulder_h = 1.2;           ///< rise/fall softness (hours).
    double noise_ua = 4.0;             ///< occupancy flicker (1 sigma).
    Volts operating_voltage = 3.0;     ///< PV module operating point.
    double day_to_day_jitter = 0.05;   ///< relative day-strength variation.
  };

  IndoorPhotovoltaicSource(const Params& params, std::uint64_t seed, int days);

  [[nodiscard]] Watts available_power(Seconds t) const override;
  [[nodiscard]] std::string name() const override { return "indoor-photovoltaic"; }

  /// Harvested current in microamps at time t (the Fig 1b y-axis).
  [[nodiscard]] double current_ua(Seconds t) const;

  [[nodiscard]] int days() const noexcept { return days_; }

 private:
  Params params_;
  int days_;
  std::vector<double> day_strength_;  // per-day multiplier
  Waveform noise_;                    // pre-expanded occupancy noise
};

/// Outdoor solar harvesting — the canonical T = 24 h environment of Eq 1.
///
/// Clear-sky irradiance follows the solar-elevation sine between sunrise
/// and sunset; passing clouds attenuate it with AR(1)-correlated dips, and
/// day-to-day weather scales whole days. Power is the panel's electrical
/// output behind MPPT.
class OutdoorSolarSource final : public PowerSource {
 public:
  struct Params {
    Watts panel_peak = 50e-3;        ///< electrical output at peak irradiance
    double sunrise_h = 6.0;
    double sunset_h = 20.0;
    double cloud_depth = 0.5;        ///< max fractional attenuation by clouds
    Seconds cloud_correlation = 900; ///< cloud-field correlation time
    double day_to_day_jitter = 0.25; ///< relative weather variation
  };

  OutdoorSolarSource(const Params& params, std::uint64_t seed, int days);

  [[nodiscard]] Watts available_power(Seconds t) const override;
  /// Night hint: between sunset and the next sunrise the clear-sky output
  /// is identically zero whatever the cloud field does.
  [[nodiscard]] Seconds dormant_until(Seconds t) const override;
  [[nodiscard]] std::string name() const override { return "outdoor-solar"; }

  /// Clear-sky (cloudless) output at time t; exposed for tests.
  [[nodiscard]] Watts clear_sky_power(Seconds t) const;

  [[nodiscard]] int days() const noexcept { return days_; }

 private:
  Params params_;
  int days_;
  std::vector<double> day_strength_;
  Waveform cloud_;  // pre-expanded attenuation in [0, 1]
};

/// RFID / RF-field power: the reader field is present in bursts (e.g. a
/// WISPCam being interrogated). Burst timing is periodic with optional
/// jitter; in-field power follows an inverse-square-law distance setting.
class RfFieldSource final : public PowerSource {
 public:
  struct Params {
    Watts field_power = 450e-6;    ///< harvested power while in the field.
    Seconds burst_length = 2.0;    ///< reader-on duration.
    Seconds burst_period = 6.0;    ///< reader activation period.
    double jitter = 0.0;           ///< relative jitter on period.
  };

  RfFieldSource(const Params& params, std::uint64_t seed, Seconds horizon);

  [[nodiscard]] Watts available_power(Seconds t) const override;
  /// Exact: quiet between bursts until the next burst start.
  [[nodiscard]] Seconds dormant_until(Seconds t) const override;
  [[nodiscard]] std::string name() const override { return "rf-field"; }

 private:
  Params params_;
  std::vector<Seconds> burst_starts_;
};

/// A fleet node's view of a shared RF field (spec::FleetSpec lowering):
/// the fleet-wide reader field — identical Params + seed across every node
/// of the fleet, so all nodes see the same seeded burst schedule — scaled
/// by this node's path gain (inverse-square-law distance attenuation) and
/// gated by its duty-cycled basestation harvest window. The window models
/// the reader's slotted schedule: node i may only harvest while its slot
/// [phase + k*period, phase + k*period + duty*period] is open, so one
/// node's transmission slot is another node's harvest opportunity.
///
/// Everything here is a pure function of (params, seed, t): two instances
/// built from the same values produce bit-identical power streams, which
/// is what lets a fleet decompose into independently simulated (and
/// cached) per-node systems while still observing one shared field.
class CoupledRfFieldSource final : public PowerSource {
 public:
  CoupledRfFieldSource(const RfFieldSource::Params& field, std::uint64_t seed,
                       Seconds horizon, double gain, Seconds window_period,
                       double window_duty, Seconds window_phase);

  [[nodiscard]] Watts available_power(Seconds t) const override;
  /// Exact between bursts (delegates to the field's schedule) and across
  /// closed windows: quiet until the earlier of next-burst / next-window.
  [[nodiscard]] Seconds dormant_until(Seconds t) const override;
  [[nodiscard]] std::string name() const override { return "coupled-rf"; }

  [[nodiscard]] double gain() const noexcept { return gain_; }
  /// True when the node's harvest window is open at time t (always true
  /// for an ungated source, window_period == 0).
  [[nodiscard]] bool window_open(Seconds t) const;

 private:
  RfFieldSource field_;
  double gain_;
  Seconds open_length_ = 0.0;         // duty * period (0 = ungated)
  std::vector<Seconds> window_starts_;  // precomputed open-window starts
};

/// Two-state Markov on/off power source: exponentially distributed on and
/// off durations. A convenient abstraction for "highly unpredictable"
/// intermittency (§I) with controllable outage statistics.
class MarkovOnOffPowerSource final : public PowerSource {
 public:
  MarkovOnOffPowerSource(Watts on_power, Seconds mean_on, Seconds mean_off,
                         std::uint64_t seed, Seconds horizon);

  [[nodiscard]] Watts available_power(Seconds t) const override;
  /// Exact: quiet inside an OFF dwell until its closing edge.
  [[nodiscard]] Seconds dormant_until(Seconds t) const override;
  [[nodiscard]] std::string name() const override { return "markov-on-off"; }

  /// Number of off->on transitions over the generated horizon.
  [[nodiscard]] std::size_t cycle_count() const noexcept { return edges_.size() / 2; }

 private:
  Watts on_power_;
  std::vector<Seconds> edges_;  // alternating on/off edge times, starts ON at edges_[0]
};

/// Plays back an arbitrary waveform (watts) as available power.
class WaveformPowerSource final : public PowerSource {
 public:
  explicit WaveformPowerSource(Waveform wave, std::string name = "waveform-power");

  [[nodiscard]] Watts available_power(Seconds t) const override;
  /// Backed by a nonzero-segment index over the recorded trace.
  [[nodiscard]] Seconds dormant_until(Seconds t) const override {
    return activity_.zero_until(t);
  }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  Waveform wave_;
  ActivityIndex activity_;
  std::string name_;
};

}  // namespace edc::trace
