// Quiet-segment index: a conservative interval envelope over a
// deterministic signal, for band queries by the quiescent engine.
//
// The stochastic sources (wind turbine, kinetic harvester) pre-expand their
// randomness at construction, so their whole sample path is known before
// the first simulation step. This index certifies, per uniform time cell,
// a bound lo <= signal(t) <= hi valid at *every* instant of the cell —
// which turns VoltageSource::bounded_until's band contract ("guaranteed
// within [floor, ceiling] throughout [t, u)") into a walk over cells whose
// certified bounds sit inside the band. The builder owns the math that
// makes each cell's bound sound (analytic gust-envelope bounds for the
// wind turbine, ring-down tail sums for the kinetic harvester, exact
// per-sample extrema for piecewise-linear recorded traces); the index just
// stores and walks them.
//
// Bounds must be conservative: a cell's [lo, hi] may be wider than the
// signal's true range (costs horizon, never correctness) but never
// narrower. Outside the cell span the signal is certified to stay within
// `head` (before the first cell) / `tail` (after the last) forever — a
// zero tail is how a source whose gusts have fully decayed claims "quiet
// for the rest of time".
//
// A two-level structure (per-cell bounds plus coarse summary bounds over
// groups of cells) keeps long quiet walks cheap: a summary whose bounds
// fit the band skips its whole group in one comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "edc/common/units.h"

namespace edc::trace {

class QuietSegmentIndex {
 public:
  struct Bounds {
    double lo = 0.0;
    double hi = 0.0;
  };

  /// Empty index: the signal is certified identically zero everywhere.
  QuietSegmentIndex() = default;

  /// `cells[i]` bounds the signal on [t0 + i*cell_width, t0 + (i+1)*cell_width);
  /// `head`/`tail` bound it on (-inf, t0) / [t0 + n*cell_width, +inf).
  QuietSegmentIndex(Seconds t0, Seconds cell_width, std::vector<Bounds> cells,
                    Bounds head, Bounds tail);

  /// The latest u >= t such that the signal is guaranteed to stay within
  /// [floor, ceiling] at every instant of [t, u): t when the cell holding t
  /// (or the head/tail region) violates the band, +infinity when the bound
  /// holds for the rest of time. Exactly VoltageSource::bounded_until's
  /// contract, so sources can delegate to it directly.
  [[nodiscard]] Seconds bounded_until(double floor, double ceiling, Seconds t) const;

  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] Seconds t0() const noexcept { return t0_; }
  [[nodiscard]] Seconds cell_width() const noexcept { return cell_; }
  [[nodiscard]] const Bounds& head() const noexcept { return head_; }
  [[nodiscard]] const Bounds& tail() const noexcept { return tail_; }
  [[nodiscard]] const Bounds& cell(std::size_t i) const { return cells_.at(i); }

 private:
  static constexpr std::size_t kSummaryGroup = 64;

  [[nodiscard]] static bool fits(const Bounds& b, double floor, double ceiling) {
    return b.lo >= floor && b.hi <= ceiling;
  }

  Seconds t0_ = 0.0;
  Seconds cell_ = 0.0;
  std::vector<Bounds> cells_;
  std::vector<Bounds> summary_;  ///< bounds over kSummaryGroup-cell groups
  Bounds head_;
  Bounds tail_;
};

}  // namespace edc::trace
