#include "edc/trace/voltage_sources.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edc/common/check.h"

namespace edc::trace {

namespace {
constexpr double kPi = 3.1415926535897932384626433832795;
constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Forward angular distance from `from` to `to` on the unit circle, in
/// [0, 2 pi).
double forward_arc(double from, double to) {
  double d = std::fmod(to - from, kTwoPi);
  if (d < 0.0) d += kTwoPi;
  return d;
}

/// True when some angle congruent to `target` (mod 2 pi) lies in [p0, p1].
/// Generous on the boundaries — used to widen sine range bounds, where
/// over-inclusion is conservative.
bool arc_contains(double p0, double p1, double target) {
  const double first = target + kTwoPi * std::ceil((p0 - target) / kTwoPi);
  return first <= p1;
}

/// Conservative range of sin over the phase interval [p0, p1] (p1 >= p0).
void sin_range(double p0, double p1, double* lo, double* hi) {
  if (p1 - p0 >= kTwoPi) {
    *lo = -1.0;
    *hi = 1.0;
    return;
  }
  const double s0 = std::sin(p0);
  const double s1 = std::sin(p1);
  *lo = std::min(s0, s1);
  *hi = std::max(s0, s1);
  if (arc_contains(p0, p1, kPi / 2.0)) *hi = 1.0;
  if (arc_contains(p0, p1, 1.5 * kPi)) *lo = -1.0;
}

/// Widens a bound pair by a few ulps so a runtime evaluation that lands on
/// the mathematical extremum cannot exceed the certified bound through
/// floating-point rounding. Exact-constant cells (lo == hi) stay exact —
/// they carry values the runtime reproduces bit-for-bit.
QuietSegmentIndex::Bounds padded(double lo, double hi) {
  if (lo == hi) return {lo, hi};
  const double pad = 4.0 * (std::abs(lo) + std::abs(hi) + 1.0) *
                     std::numeric_limits<double>::epsilon();
  return {lo - pad, hi + pad};
}

/// Exact interval envelope of a piecewise-linear waveform: cell bounds are
/// sample extrema over `group`-sample stretches (with the shared boundary
/// sample included on both sides), head/tail the clamped edge values.
QuietSegmentIndex index_waveform(const Waveform& wave, std::size_t group) {
  const auto& s = wave.samples();
  if (s.size() < 2) {
    const double v = s.empty() ? 0.0 : s.front();
    return QuietSegmentIndex(0.0, 0.0, {}, {v, v}, {v, v});
  }
  std::vector<QuietSegmentIndex::Bounds> cells;
  cells.reserve((s.size() - 1 + group - 1) / group);
  for (std::size_t i = 0; i + 1 < s.size(); i += group) {
    const std::size_t end = std::min(i + group, s.size() - 1);
    double lo = s[i], hi = s[i];
    for (std::size_t j = i + 1; j <= end; ++j) {
      lo = std::min(lo, s[j]);
      hi = std::max(hi, s[j]);
    }
    cells.push_back(padded(lo, hi));
  }
  return QuietSegmentIndex(wave.t0(), wave.dt() * static_cast<double>(group),
                           std::move(cells), {s.front(), s.front()},
                           {s.back(), s.back()});
}
}  // namespace

// ---------------------------------------------------------------- Sine -----

SineVoltageSource::SineVoltageSource(Volts amplitude, Hertz frequency, Volts offset,
                                     Ohms series_resistance)
    : amplitude_(amplitude),
      frequency_(frequency),
      offset_(offset),
      r_series_(series_resistance) {
  EDC_CHECK(amplitude >= 0.0, "amplitude must be non-negative");
  EDC_CHECK(frequency >= 0.0, "frequency must be non-negative");
  EDC_CHECK(series_resistance > 0.0, "series resistance must be positive");
}

Volts SineVoltageSource::open_circuit_voltage(Seconds t) const {
  return offset_ + amplitude_ * std::sin(kTwoPi * frequency_ * t);
}

Seconds SineVoltageSource::bounded_until(Volts floor, Volts ceiling,
                                         Seconds t) const {
  if (ceiling < floor) return t;
  if (amplitude_ == 0.0 || frequency_ == 0.0) {
    // Constant at the offset (a zero frequency freezes the phase at 0).
    return (offset_ >= floor && offset_ <= ceiling) ? kNeverActive : t;
  }
  const double v_now = open_circuit_voltage(t);
  if (v_now < floor || v_now > ceiling) return t;
  // Normalise the band onto the sine: floor <= offset + A sin(theta) <=
  // ceiling becomes s_lo <= sin(theta) <= s_hi.
  const double s_hi = (ceiling - offset_) / amplitude_;
  const double s_lo = (floor - offset_) / amplitude_;
  const double theta = kTwoPi * frequency_ * t;
  double arc = std::numeric_limits<double>::infinity();
  if (s_hi < 1.0) {
    if (s_hi <= -1.0) return t;  // the whole swing violates the ceiling
    // sin(theta) > s_hi on the arc (alpha, pi - alpha).
    const double alpha = std::asin(s_hi);
    if (forward_arc(alpha, theta) < kPi - 2.0 * alpha) return t;
    arc = std::min(arc, forward_arc(theta, alpha));
  }
  if (s_lo > -1.0) {
    if (s_lo >= 1.0) return t;  // the whole swing violates the floor
    // sin(theta) < s_lo on the arc (pi - beta, 2 pi + beta).
    const double beta = std::asin(s_lo);
    if (forward_arc(kPi - beta, theta) < kPi + 2.0 * beta) return t;
    arc = std::min(arc, forward_arc(theta, kPi - beta));
  }
  if (std::isinf(arc)) return kNeverActive;  // band contains the full swing
  return conservative_horizon(t + arc / (kTwoPi * frequency_), t);
}

Seconds SineVoltageSource::constant_until(Seconds t, Volts* value) const {
  if (amplitude_ != 0.0 && frequency_ != 0.0) return t;
  // sin(0) == 0 exactly, so a zero-frequency (or zero-amplitude) sine is
  // the constant offset at every instant.
  *value = offset_;
  return kNeverActive;
}

VoltageSource::LinearCert SineVoltageSource::linear_until(
    Seconds t, Seconds horizon) const {
  if (amplitude_ == 0.0 || frequency_ == 0.0) {
    return VoltageSource::linear_until(t, horizon);  // exact DC certificate
  }
  if (!(horizon > 0.0)) return {};
  const Seconds u = t + horizon;
  const Seconds h = horizon;
  const Volts va = open_circuit_voltage(t);
  const Volts vb = open_circuit_voltage(u);
  LinearCert cert;
  cert.valid = true;
  cert.value = va;
  cert.slope = (vb - va) / h;
  // Endpoint-interpolating chord of a C2 function: |f - chord| <=
  // max|f''| h^2 / 8, with f'' = -A (2 pi f)^2 sin. The pad absorbs the
  // rounding difference between this evaluation and the runtime's chord
  // arithmetic (both are a handful of flops on O(A + |offset|) operands).
  const double omega = kTwoPi * frequency_;
  const double err = amplitude_ * omega * omega * h * h / 8.0;
  const double pad = 8.0 * (std::abs(offset_) + amplitude_ + 1.0) *
                     std::numeric_limits<double>::epsilon();
  cert.err_lo = -(err + pad);
  cert.err_hi = err + pad;
  cert.until = u;
  return cert;
}

std::string SineVoltageSource::name() const {
  return "sine-" + std::to_string(frequency_) + "Hz";
}

// -------------------------------------------------------------- Square -----

SquareVoltageSource::SquareVoltageSource(Volts high, Hertz frequency, double duty,
                                         Volts low, Ohms series_resistance)
    : high_(high), frequency_(frequency), duty_(duty), low_(low),
      r_series_(series_resistance) {
  EDC_CHECK(frequency > 0.0, "frequency must be positive");
  EDC_CHECK(duty > 0.0 && duty < 1.0, "duty must be in (0,1)");
  EDC_CHECK(series_resistance > 0.0, "series resistance must be positive");
}

Volts SquareVoltageSource::open_circuit_voltage(Seconds t) const {
  const double phase = t * frequency_ - std::floor(t * frequency_);
  return phase < duty_ ? high_ : low_;
}

Seconds SquareVoltageSource::bounded_until(Volts floor, Volts ceiling,
                                           Seconds t) const {
  const bool high_ok = high_ >= floor && high_ <= ceiling;
  const bool low_ok = low_ >= floor && low_ <= ceiling;
  if (high_ok && low_ok) return kNeverActive;
  const double cycles = t * frequency_;
  const double phase = cycles - std::floor(cycles);
  const bool in_high = phase < duty_;
  if (in_high ? !high_ok : !low_ok) return t;
  // Quiet until the next switch into the violating level.
  const double switch_cycles =
      in_high ? std::floor(cycles) + duty_ : std::floor(cycles) + 1.0;
  return conservative_horizon(switch_cycles / frequency_, t);
}

Seconds SquareVoltageSource::constant_until(Seconds t, Volts* value) const {
  // Same phase arithmetic as open_circuit_voltage; the conservative shave
  // keeps the certified window strictly inside the half-cycle so rounding
  // in a caller's t' * frequency can never straddle the switch edge.
  const double cycles = t * frequency_;
  const double phase = cycles - std::floor(cycles);
  const bool in_high = phase < duty_;
  *value = in_high ? high_ : low_;
  const double switch_cycles =
      in_high ? std::floor(cycles) + duty_ : std::floor(cycles) + 1.0;
  return conservative_horizon(switch_cycles / frequency_, t);
}

std::string SquareVoltageSource::name() const {
  return "square-" + std::to_string(frequency_) + "Hz";
}

// ---------------------------------------------------------------- Wind -----

WindTurbineSource::WindTurbineSource(const Params& params) : params_(params) {
  EDC_CHECK(params.peak_voltage > 0.0, "peak voltage must be positive");
  EDC_CHECK(params.peak_frequency > 0.0, "peak frequency must be positive");
  EDC_CHECK(params.coil_resistance > 0.0, "coil resistance must be positive");
}

WindTurbineSource WindTurbineSource::single_gust() { return single_gust(Params{}); }

WindTurbineSource WindTurbineSource::single_gust(const Params& params) {
  WindTurbineSource src(params);
  src.gusts_.push_back(Gust{0.0, 1.0});
  // Pre-integrate phase over one gust plus margin.
  const Seconds horizon = params.gust_rise + 6.0 * params.gust_fall + 2.0;
  const std::size_t n = static_cast<std::size_t>(horizon * 2000.0) + 2;
  std::vector<double> phase(n);
  const Seconds dt = horizon / static_cast<double>(n - 1);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    phase[i] = acc;
    const Seconds t = dt * static_cast<double>(i);
    const double rel = src.envelope(t) / params.peak_voltage;
    acc += kTwoPi * params.peak_frequency * rel * dt;
  }
  src.phase_ = Waveform(0.0, dt, std::move(phase));
  src.build_quiet_index();
  return src;
}

WindTurbineSource::WindTurbineSource(const Params& params, std::uint64_t seed,
                                     Seconds horizon)
    : WindTurbineSource(params) {
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  Rng rng(seed);
  Seconds t = 0.0;
  while (t < horizon) {
    Gust gust;
    gust.start = t;
    gust.strength = std::clamp(1.0 + params.gust_jitter * rng.normal(), 0.2, 1.6);
    gusts_.push_back(gust);
    const double spacing =
        std::max(0.3 * params.gust_period,
                 params.gust_period * (1.0 + params.gust_jitter * rng.normal()));
    t += spacing;
  }
  const std::size_t n = static_cast<std::size_t>(horizon * 2000.0) + 2;
  std::vector<double> phase(n);
  const Seconds dt = horizon / static_cast<double>(n - 1);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    phase[i] = acc;
    const Seconds tt = dt * static_cast<double>(i);
    const double rel = envelope(tt) / params.peak_voltage;
    acc += kTwoPi * params.peak_frequency * rel * dt;
  }
  phase_ = Waveform(0.0, dt, std::move(phase));
  build_quiet_index();
}

Volts WindTurbineSource::envelope_raw(Seconds t) const {
  double env = 0.0;
  for (const Gust& gust : gusts_) {
    const Seconds rel = t - gust.start;
    if (rel <= 0.0) continue;
    // Gamma-like bump: fast rise (time constant gust_rise), exponential decay
    // (time constant gust_fall), normalised to peak at 1. The peak is at
    // t* = tau_r * ln(1 + tau_f/tau_r) (where the derivative vanishes).
    const double rise = 1.0 - std::exp(-rel / params_.gust_rise);
    const double fall = std::exp(-rel / params_.gust_fall);
    const double t_star =
        params_.gust_rise * std::log(1.0 + params_.gust_fall / params_.gust_rise);
    const double norm = (1.0 - std::exp(-t_star / params_.gust_rise)) *
                        std::exp(-t_star / params_.gust_fall);
    env += gust.strength * rise * fall / norm;
  }
  return params_.peak_voltage * env;
}

Volts WindTurbineSource::envelope(Seconds t) const {
  const Volts v = envelope_raw(t);
  return v < params_.cut_in_voltage ? 0.0 : v;
}

void WindTurbineSource::build_quiet_index() {
  // Per-cell certified bounds on v_oc = envelope * sin(phase):
  //
  //  * U(t) = (peak / norm) * sum_i s_i * exp(-(t - start_i) / tau_f)
  //    upper-bounds the raw envelope (each gust's rise factor is < 1), and
  //    (1/tau_r + 1/tau_f) * U(t) upper-bounds its slope — so per cell,
  //    env <= min(mean-value bound from the edge samples, U_max), and a
  //    cell whose envelope bound sits below the cut-in voltage is
  //    *exactly* zero (the cut-in thresholds envelope() to 0).
  //  * The pre-integrated phase is monotone, so sin over a cell ranges
  //    within sin_range(phase(a), phase(b)); beyond the phase grid the
  //    clamp freezes it.
  //
  // Cells extend past the gust horizon until U itself decays below the
  // cut-in, after which the source is certified zero forever.
  const double tau_r = params_.gust_rise;
  const double tau_f = params_.gust_fall;
  const double t_star = tau_r * std::log(1.0 + tau_f / tau_r);
  const double norm =
      (1.0 - std::exp(-t_star / tau_r)) * std::exp(-t_star / tau_f);
  const double peak = params_.peak_voltage / norm;  // U's strength scale
  const double slope_factor = 1.0 / tau_r + 1.0 / tau_f;
  const double cut_in = params_.cut_in_voltage;

  const Seconds w = 2e-3;
  const double decay_per_cell = std::exp(-w / tau_f);
  // Hard cap: horizon plus the time the largest conceivable tail sum needs
  // to decay through the cut-in (plus slack); loops below also stop as
  // soon as the tail actually clears.
  double strength_total = 0.0;
  Seconds last_start = 0.0;
  for (const Gust& gust : gusts_) {
    strength_total += gust.strength;
    last_start = std::max(last_start, gust.start);
  }
  const double tail_decay =
      cut_in > 0.0 && strength_total > 0.0
          ? tau_f * std::log(std::max(peak * strength_total / cut_in, 1.0))
          : 60.0 * tau_f;
  const std::size_t max_cells =
      static_cast<std::size_t>((last_start + t_star + tail_decay) / w) + 4;

  std::vector<QuietSegmentIndex::Bounds> cells;
  cells.reserve(max_cells);
  // Per-cell scratch for the chord-certification pass below.
  std::vector<double> u_maxes;
  std::vector<double> env_uppers;
  std::vector<double> env_lowers;
  std::vector<std::uint8_t> gust_onset;  // a gust starts inside the cell
  u_maxes.reserve(max_cells);
  env_uppers.reserve(max_cells);
  env_lowers.reserve(max_cells);
  gust_onset.reserve(max_cells);
  double tail_sum = 0.0;  // sum_i s_i * exp(-(a - start_i)/tau_f) at cell start
  std::size_t next_gust = 0;
  for (std::size_t i = 0; i < max_cells; ++i) {
    const Seconds a = w * static_cast<double>(i);
    const Seconds b = a + w;
    // Gusts not yet consumed that start by the end of this cell count at
    // full strength for this cell's bound and join the decayed tail sum
    // afterwards (each gust is consumed exactly once).
    double fresh = 0.0;
    double fresh_at_b = 0.0;
    std::size_t g = next_gust;
    while (g < gusts_.size() && gusts_[g].start <= b) {
      fresh += gusts_[g].strength;
      fresh_at_b +=
          gusts_[g].strength * std::exp(-(b - gusts_[g].start) / tau_f);
      ++g;
    }
    const double u_max = peak * (tail_sum + fresh);
    if (u_max < cut_in && g >= gusts_.size()) {
      // The tail can never climb back over the cut-in: zero forever.
      break;
    }
    QuietSegmentIndex::Bounds bounds{0.0, 0.0};
    double env_upper = 0.0;
    double env_lower = 0.0;
    if (u_max >= cut_in) {
      // Mean-value bounds on the raw envelope over [a, b] (|env'| is
      // bounded by slope_factor * U <= slope_factor * u_max a.e.).
      const double mid = 0.5 * (envelope_raw(a) + envelope_raw(b));
      const double swing = 0.5 * slope_factor * u_max * w;
      env_upper = std::min(mid + swing, u_max);
      env_lower = mid - swing;
      if (env_upper >= cut_in) {
        double s_lo = 0.0, s_hi = 0.0;
        sin_range(phase_.at(a), phase_.at(b), &s_lo, &s_hi);
        bounds = padded(s_lo < 0.0 ? env_upper * s_lo : 0.0,
                        s_hi > 0.0 ? env_upper * s_hi : 0.0);
      }
    }
    cells.push_back(bounds);
    u_maxes.push_back(u_max);
    env_uppers.push_back(env_upper);
    env_lowers.push_back(env_lower);
    gust_onset.push_back(g != next_gust ? 1 : 0);
    tail_sum = tail_sum * decay_per_cell + fresh_at_b;
    next_gust = g;
  }
  // If the cap ran out before the tail cleared (a zero cut-in, say), the
  // tail bound +-U holds forever — U only decays once the gusts stop.
  QuietSegmentIndex::Bounds tail{0.0, 0.0};
  if (cells.size() == max_cells && peak * tail_sum >= cut_in) {
    const double u_end = peak * tail_sum;
    tail = {-u_end, u_end};
  }
  const std::size_t n_cells = cells.size();
  quiet_ = QuietSegmentIndex(0.0, w, std::move(cells), {0.0, 0.0}, tail);

  // Second pass: chord certification for linear_until. A cell is
  // chord-certifiable (kCellChord) when
  //  * the raw envelope provably stays above the cut-in over the whole
  //    cell (env_lower > cut_in), so envelope() == envelope_raw() there
  //    and v_oc = env * sin(phase) is free of the stall discontinuity; and
  //  * no gust starts inside the cell — a gust onset kinks env' (the rise
  //    factor switches on with slope strength/tau_r), which the smooth
  //    curvature bound below does not cover.
  // On such a cell, with U <= u_nb (neighborhood max, see below):
  //    |env''|  <= slope_factor^2 * u_nb      (per-term second derivative)
  //    |env'|   <= slope_factor * u_nb
  //    |phase'| <= P = 2 pi f_peak * u_nb / peak_voltage
  // so away from phase-grid kinks |v_oc''| <= M = slope_factor^2 * u_nb
  // + 2 slope_factor * u_nb * P + u_nb * P^2, giving the classic chord
  // bound M h^2 / 8. The pre-integrated phase is piecewise *linear*, so
  // phase' additionally jumps at grid points by at most
  // slope_factor * u_nb * grid_dt * 2 pi f_peak / peak_voltage; through
  // the chord's Green function (|G| <= h/4, at most (h + grid_dt)/grid_dt
  // kinks in a window of length h) those contribute
  // kink * h * (h + grid_dt) with kink = u_nb * slope_factor * P / 4.
  // The neighborhood max matters because the phase slope over an instant
  // is set by the grid sample up to grid_dt *before* it, which can fall in
  // the previous cell (grid_dt < w).
  chord_kind_.assign(n_cells, kCellNone);
  chord_curve_.assign(n_cells, 0.0);
  chord_kink_.assign(n_cells, 0.0);
  for (std::size_t i = 0; i < n_cells; ++i) {
    if (u_maxes[i] < cut_in || env_uppers[i] < cut_in) {
      // The envelope provably sits below the cut-in: exactly zero (the
      // same condition that produced the {0, 0} quiet-index bounds).
      chord_kind_[i] = kCellZero;
      continue;
    }
    if (!(env_lowers[i] > cut_in) || gust_onset[i] != 0) continue;
    double u_nb = u_maxes[i];
    if (i > 0) u_nb = std::max(u_nb, u_maxes[i - 1]);
    if (i + 1 < n_cells) u_nb = std::max(u_nb, u_maxes[i + 1]);
    const double phase_rate = kTwoPi * params_.peak_frequency / params_.peak_voltage;
    const double p_bound = phase_rate * u_nb;
    const double curvature = slope_factor * slope_factor * u_nb +
                             2.0 * slope_factor * u_nb * p_bound +
                             u_nb * p_bound * p_bound;
    chord_kind_[i] = kCellChord;
    chord_curve_[i] = curvature / 8.0;
    chord_kink_[i] = u_nb * slope_factor * p_bound / 4.0;
  }
}

Seconds WindTurbineSource::bounded_until(Volts floor, Volts ceiling,
                                         Seconds t) const {
  return quiet_.bounded_until(floor, ceiling, t);
}

Volts WindTurbineSource::open_circuit_voltage(Seconds t) const {
  const Volts env = envelope(t);
  if (env <= 0.0) return 0.0;
  return env * std::sin(phase_.at(t));
}

VoltageSource::LinearCert WindTurbineSource::linear_until(
    Seconds t, Seconds horizon) const {
  const Seconds w = quiet_.cell_width();
  const std::size_t n = chord_kind_.size();
  if (n == 0 || !(w > 0.0) || !(horizon > 0.0) || t < 0.0) return {};
  auto idx = static_cast<std::size_t>(t / w);
  if (idx >= n) return {};
  if (chord_kind_[idx] != kCellChord) return {};
  // Boundary guard: t / w can land one cell high at a float boundary. When
  // the previous cell carries no chord certificate (a possible cut-in
  // stall or gust onset at the shared boundary), only claim once t sits
  // safely inside this cell; when it does, its certificate covers the
  // rounding slack via the coefficient max below.
  const Seconds cell_start = w * static_cast<double>(idx);
  if (idx == 0 || chord_kind_[idx - 1] != kCellChord) {
    const Seconds margin = 1e-9 * (std::abs(t) < 1.0 ? 1.0 : std::abs(t));
    if (!(t - cell_start > margin)) return {};
  }
  double curve = chord_curve_[idx];
  double kink = chord_kink_[idx];
  if (idx > 0 && chord_kind_[idx - 1] == kCellChord) {
    curve = std::max(curve, chord_curve_[idx - 1]);
    kink = std::max(kink, chord_kink_[idx - 1]);
  }
  // Extend across the run of chord cells up to the horizon; the error
  // coefficients are maxed over every covered cell.
  const Seconds want = t + horizon;
  std::size_t j = idx;
  Seconds run_end = cell_start + w;
  while (run_end < want && j + 1 < n && chord_kind_[j + 1] == kCellChord) {
    ++j;
    curve = std::max(curve, chord_curve_[j]);
    kink = std::max(kink, chord_kink_[j]);
    run_end = w * static_cast<double>(j + 1);
  }
  Seconds u = std::min(want, run_end);
  if (u == run_end) {
    // The claim abuts an uncertified cell (or the index end): shave so it
    // provably stays inside the chord-certified run.
    u = conservative_horizon(u, t);
  }
  if (!(u > t)) return {};
  const Seconds h = u - t;
  const Volts va = open_circuit_voltage(t);
  const Volts vb = open_circuit_voltage(u);
  LinearCert cert;
  cert.valid = true;
  cert.value = va;
  cert.slope = (vb - va) / h;
  const double err = curve * h * h + kink * h * (h + phase_.dt());
  const double pad = 8.0 *
                     (std::abs(va) + std::abs(vb) + params_.peak_voltage + 1.0) *
                     std::numeric_limits<double>::epsilon();
  cert.err_lo = -(err + pad);
  cert.err_hi = err + pad;
  cert.until = u;
  return cert;
}

// ------------------------------------------------------------- Kinetic -----

KineticHarvesterSource::KineticHarvesterSource(const Params& params,
                                               std::uint64_t seed, Seconds horizon)
    : params_(params) {
  EDC_CHECK(params.resonance > 0.0, "resonance must be positive");
  EDC_CHECK(params.ring_tau > 0.0, "ring tau must be positive");
  EDC_CHECK(params.coil_resistance > 0.0, "coil resistance must be positive");
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  Rng rng(seed);
  Seconds t = 0.05;
  while (t < horizon) {
    impulses_.push_back(t);
    const double spacing =
        std::max(0.25 * params.step_period,
                 params.step_period * (1.0 + params.step_jitter * rng.normal()));
    t += spacing;
  }
  build_quiet_index();
}

void KineticHarvesterSource::build_quiet_index() {
  // Per-cell certified bounds on the ring-down superposition: a cell with
  // no impulse inside its 8-tau window is exactly zero (the evaluation
  // cuts contributions off there), and elsewhere
  // |v| <= peak * (decayed tail sum + count of impulses landing in the
  // cell) — every started impulse contributes at most peak * exp(-rel/tau)
  // and a just-landed one at most peak. Past the last impulse's ring
  // window the source is certified zero forever.
  const double tau = params_.ring_tau;
  const Seconds window = 8.0 * tau;
  const Seconds w = 0.25 * tau;
  const double decay_per_cell = std::exp(-w / tau);
  std::vector<QuietSegmentIndex::Bounds> cells;
  if (!impulses_.empty()) {
    const Seconds end = impulses_.back() + window;
    const auto n_cells = static_cast<std::size_t>(end / w) + 1;
    cells.reserve(n_cells);
    double tail_sum = 0.0;      // sum of exp(-(a - t_k)/tau) over started impulses
    std::size_t next_hit = 0;   // first impulse with t_k > cell end
    std::size_t first_live = 0; // first impulse with t_k >= a - window
    for (std::size_t i = 0; i < n_cells; ++i) {
      const Seconds a = w * static_cast<double>(i);
      const Seconds b = a + w;
      double fresh = 0.0;
      double fresh_at_b = 0.0;
      std::size_t k = next_hit;
      while (k < impulses_.size() && impulses_[k] <= b) {
        fresh += 1.0;
        fresh_at_b += std::exp(-(b - impulses_[k]) / tau);
        ++k;
      }
      while (first_live < impulses_.size() && impulses_[first_live] < a - window) {
        ++first_live;
      }
      // Exactly zero when every started impulse has rung past the cutoff
      // and none lands by the cell's end.
      if (first_live >= k) {
        cells.push_back({0.0, 0.0});
      } else {
        const double amp = params_.impulse_peak * (tail_sum + fresh);
        cells.push_back(padded(-amp, amp));
      }
      tail_sum = tail_sum * decay_per_cell + fresh_at_b;
      next_hit = k;
    }
  }
  quiet_ = QuietSegmentIndex(0.0, w, std::move(cells), {0.0, 0.0}, {0.0, 0.0});
}

Seconds KineticHarvesterSource::bounded_until(Volts floor, Volts ceiling,
                                              Seconds t) const {
  return quiet_.bounded_until(floor, ceiling, t);
}

Volts KineticHarvesterSource::open_circuit_voltage(Seconds t) const {
  double v = 0.0;
  // Only the most recent few impulses matter (ring-down); scan backwards.
  for (auto it = impulses_.rbegin(); it != impulses_.rend(); ++it) {
    const Seconds rel = t - *it;
    if (rel < 0.0) continue;
    if (rel > 8.0 * params_.ring_tau) break;
    v += params_.impulse_peak * std::exp(-rel / params_.ring_tau) *
         std::sin(kTwoPi * params_.resonance * rel);
  }
  return v;
}

// ------------------------------------------------------------ Waveform -----

WaveformVoltageSource::WaveformVoltageSource(Waveform wave, Ohms series_resistance,
                                             std::string name)
    : wave_(std::move(wave)), r_series_(series_resistance), name_(std::move(name)) {
  EDC_CHECK(!wave_.empty(), "waveform must not be empty");
  EDC_CHECK(series_resistance > 0.0, "series resistance must be positive");
  quiet_ = index_waveform(wave_, 16);
}

Volts WaveformVoltageSource::open_circuit_voltage(Seconds t) const {
  return wave_.at(t);
}

Seconds WaveformVoltageSource::bounded_until(Volts floor, Volts ceiling,
                                             Seconds t) const {
  return quiet_.bounded_until(floor, ceiling, t);
}

Seconds WaveformVoltageSource::constant_until(Seconds t, Volts* value) const {
  const auto& s = wave_.samples();
  const std::size_t n = s.size();
  if (n == 1) {
    *value = s.front();
    return kNeverActive;
  }
  if (t >= wave_.t_end()) {
    *value = s.back();  // clamped: constant forever
    return kNeverActive;
  }
  // Mirror Waveform::at's cell arithmetic exactly so the certified value is
  // the one every in-window evaluation reproduces.
  std::size_t idx = 0;
  if (t > wave_.t0()) {
    idx = static_cast<std::size_t>((t - wave_.t0()) / wave_.dt());
    if (idx >= n - 1) idx = n - 2;
  }
  if (s[idx + 1] != s[idx]) return t;  // interpolating cell: not constant
  *value = s[idx];
  // Extend through the run of identical samples (bounded walk: a claim is
  // consumed as one span, so the amortised cost stays linear).
  std::size_t run_end = idx + 1;
  const std::size_t cap = std::min(n - 1, run_end + (std::size_t{1} << 16));
  while (run_end < cap && s[run_end + 1] == s[idx]) ++run_end;
  if (run_end == n - 1) return kNeverActive;  // runs to the clamped tail
  // The shave keeps the window strictly inside the run so rounding in the
  // caller's sample arithmetic cannot straddle the first changing cell.
  return conservative_horizon(
      wave_.t0() + wave_.dt() * static_cast<double>(run_end), t);
}

VoltageSource::LinearCert WaveformVoltageSource::linear_until(
    Seconds t, Seconds horizon) const {
  if (!(horizon > 0.0)) return {};
  const auto& s = wave_.samples();
  const std::size_t n = s.size();
  LinearCert cert;
  if (n == 1 || t >= wave_.t_end()) {
    cert.valid = true;
    cert.value = n == 1 ? s.front() : s.back();  // clamped: exact constant
    cert.until = t + horizon;
    return cert;
  }
  if (t <= wave_.t0()) {
    // Clamped head: exact constant until the sample span starts (shaved so
    // rounding in the caller's time arithmetic stays inside the clamp).
    const Seconds u = std::min(conservative_horizon(wave_.t0(), t), t + horizon);
    if (!(u > t)) return {};
    cert.valid = true;
    cert.value = s.front();
    cert.until = u;
    return cert;
  }
  // Mirror Waveform::at's cell arithmetic: within one sample cell the
  // interpolation *is* affine, so the chord is exact up to rounding.
  const double pos = (t - wave_.t0()) / wave_.dt();
  auto idx = static_cast<std::size_t>(pos);
  if (idx >= n - 1) idx = n - 2;
  const Seconds cell_end = wave_.t0() + wave_.dt() * static_cast<double>(idx + 1);
  const Seconds u = std::min(conservative_horizon(cell_end, t), t + horizon);
  if (!(u > t)) return {};
  cert.valid = true;
  cert.value = wave_.at(t);
  cert.slope = (s[idx + 1] - s[idx]) / wave_.dt();
  // The chord and at() differ only through rounding in the position
  // arithmetic; pad by a few ulps scaled to the position magnitude (idx
  // can be large for long traces) and the cell's sample swing.
  const double pad = 8.0 * std::numeric_limits<double>::epsilon() *
                     ((static_cast<double>(idx) + 2.0) *
                          std::abs(s[idx + 1] - s[idx]) +
                      std::abs(s[idx]) + std::abs(s[idx + 1]) + 1.0);
  cert.err_lo = -pad;
  cert.err_hi = pad;
  cert.until = u;
  return cert;
}

}  // namespace edc::trace
