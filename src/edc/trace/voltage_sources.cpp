#include "edc/trace/voltage_sources.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edc/common/check.h"

namespace edc::trace {

namespace {
constexpr double kPi = 3.1415926535897932384626433832795;
constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Forward angular distance from `from` to `to` on the unit circle, in
/// [0, 2 pi).
double forward_arc(double from, double to) {
  double d = std::fmod(to - from, kTwoPi);
  if (d < 0.0) d += kTwoPi;
  return d;
}
}  // namespace

// ---------------------------------------------------------------- Sine -----

SineVoltageSource::SineVoltageSource(Volts amplitude, Hertz frequency, Volts offset,
                                     Ohms series_resistance)
    : amplitude_(amplitude),
      frequency_(frequency),
      offset_(offset),
      r_series_(series_resistance) {
  EDC_CHECK(amplitude >= 0.0, "amplitude must be non-negative");
  EDC_CHECK(frequency >= 0.0, "frequency must be non-negative");
  EDC_CHECK(series_resistance > 0.0, "series resistance must be positive");
}

Volts SineVoltageSource::open_circuit_voltage(Seconds t) const {
  return offset_ + amplitude_ * std::sin(kTwoPi * frequency_ * t);
}

Seconds SineVoltageSource::bounded_until(Volts floor, Volts ceiling,
                                         Seconds t) const {
  if (ceiling < floor) return t;
  if (amplitude_ == 0.0 || frequency_ == 0.0) {
    // Constant at the offset (a zero frequency freezes the phase at 0).
    return (offset_ >= floor && offset_ <= ceiling) ? kNeverActive : t;
  }
  const double v_now = open_circuit_voltage(t);
  if (v_now < floor || v_now > ceiling) return t;
  // Normalise the band onto the sine: floor <= offset + A sin(theta) <=
  // ceiling becomes s_lo <= sin(theta) <= s_hi.
  const double s_hi = (ceiling - offset_) / amplitude_;
  const double s_lo = (floor - offset_) / amplitude_;
  const double theta = kTwoPi * frequency_ * t;
  double arc = std::numeric_limits<double>::infinity();
  if (s_hi < 1.0) {
    if (s_hi <= -1.0) return t;  // the whole swing violates the ceiling
    // sin(theta) > s_hi on the arc (alpha, pi - alpha).
    const double alpha = std::asin(s_hi);
    if (forward_arc(alpha, theta) < kPi - 2.0 * alpha) return t;
    arc = std::min(arc, forward_arc(theta, alpha));
  }
  if (s_lo > -1.0) {
    if (s_lo >= 1.0) return t;  // the whole swing violates the floor
    // sin(theta) < s_lo on the arc (pi - beta, 2 pi + beta).
    const double beta = std::asin(s_lo);
    if (forward_arc(kPi - beta, theta) < kPi + 2.0 * beta) return t;
    arc = std::min(arc, forward_arc(theta, kPi - beta));
  }
  if (std::isinf(arc)) return kNeverActive;  // band contains the full swing
  return conservative_horizon(t + arc / (kTwoPi * frequency_), t);
}

std::string SineVoltageSource::name() const {
  return "sine-" + std::to_string(frequency_) + "Hz";
}

// -------------------------------------------------------------- Square -----

SquareVoltageSource::SquareVoltageSource(Volts high, Hertz frequency, double duty,
                                         Volts low, Ohms series_resistance)
    : high_(high), frequency_(frequency), duty_(duty), low_(low),
      r_series_(series_resistance) {
  EDC_CHECK(frequency > 0.0, "frequency must be positive");
  EDC_CHECK(duty > 0.0 && duty < 1.0, "duty must be in (0,1)");
  EDC_CHECK(series_resistance > 0.0, "series resistance must be positive");
}

Volts SquareVoltageSource::open_circuit_voltage(Seconds t) const {
  const double phase = t * frequency_ - std::floor(t * frequency_);
  return phase < duty_ ? high_ : low_;
}

Seconds SquareVoltageSource::bounded_until(Volts floor, Volts ceiling,
                                           Seconds t) const {
  const bool high_ok = high_ >= floor && high_ <= ceiling;
  const bool low_ok = low_ >= floor && low_ <= ceiling;
  if (high_ok && low_ok) return kNeverActive;
  const double cycles = t * frequency_;
  const double phase = cycles - std::floor(cycles);
  const bool in_high = phase < duty_;
  if (in_high ? !high_ok : !low_ok) return t;
  // Quiet until the next switch into the violating level.
  const double switch_cycles =
      in_high ? std::floor(cycles) + duty_ : std::floor(cycles) + 1.0;
  return conservative_horizon(switch_cycles / frequency_, t);
}

std::string SquareVoltageSource::name() const {
  return "square-" + std::to_string(frequency_) + "Hz";
}

// ---------------------------------------------------------------- Wind -----

WindTurbineSource::WindTurbineSource(const Params& params) : params_(params) {
  EDC_CHECK(params.peak_voltage > 0.0, "peak voltage must be positive");
  EDC_CHECK(params.peak_frequency > 0.0, "peak frequency must be positive");
  EDC_CHECK(params.coil_resistance > 0.0, "coil resistance must be positive");
}

WindTurbineSource WindTurbineSource::single_gust() { return single_gust(Params{}); }

WindTurbineSource WindTurbineSource::single_gust(const Params& params) {
  WindTurbineSource src(params);
  src.gusts_.push_back(Gust{0.0, 1.0});
  // Pre-integrate phase over one gust plus margin.
  const Seconds horizon = params.gust_rise + 6.0 * params.gust_fall + 2.0;
  const std::size_t n = static_cast<std::size_t>(horizon * 2000.0) + 2;
  std::vector<double> phase(n);
  const Seconds dt = horizon / static_cast<double>(n - 1);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    phase[i] = acc;
    const Seconds t = dt * static_cast<double>(i);
    const double rel = src.envelope(t) / params.peak_voltage;
    acc += kTwoPi * params.peak_frequency * rel * dt;
  }
  src.phase_ = Waveform(0.0, dt, std::move(phase));
  return src;
}

WindTurbineSource::WindTurbineSource(const Params& params, std::uint64_t seed,
                                     Seconds horizon)
    : WindTurbineSource(params) {
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  Rng rng(seed);
  Seconds t = 0.0;
  while (t < horizon) {
    Gust gust;
    gust.start = t;
    gust.strength = std::clamp(1.0 + params.gust_jitter * rng.normal(), 0.2, 1.6);
    gusts_.push_back(gust);
    const double spacing =
        std::max(0.3 * params.gust_period,
                 params.gust_period * (1.0 + params.gust_jitter * rng.normal()));
    t += spacing;
  }
  const std::size_t n = static_cast<std::size_t>(horizon * 2000.0) + 2;
  std::vector<double> phase(n);
  const Seconds dt = horizon / static_cast<double>(n - 1);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    phase[i] = acc;
    const Seconds tt = dt * static_cast<double>(i);
    const double rel = envelope(tt) / params.peak_voltage;
    acc += kTwoPi * params.peak_frequency * rel * dt;
  }
  phase_ = Waveform(0.0, dt, std::move(phase));
}

Volts WindTurbineSource::envelope(Seconds t) const {
  double env = 0.0;
  for (const Gust& gust : gusts_) {
    const Seconds rel = t - gust.start;
    if (rel <= 0.0) continue;
    // Gamma-like bump: fast rise (time constant gust_rise), exponential decay
    // (time constant gust_fall), normalised to peak at 1. The peak is at
    // t* = tau_r * ln(1 + tau_f/tau_r) (where the derivative vanishes).
    const double rise = 1.0 - std::exp(-rel / params_.gust_rise);
    const double fall = std::exp(-rel / params_.gust_fall);
    const double t_star =
        params_.gust_rise * std::log(1.0 + params_.gust_fall / params_.gust_rise);
    const double norm = (1.0 - std::exp(-t_star / params_.gust_rise)) *
                        std::exp(-t_star / params_.gust_fall);
    env += gust.strength * rise * fall / norm;
  }
  const Volts v = params_.peak_voltage * env;
  return v < params_.cut_in_voltage ? 0.0 : v;
}

Volts WindTurbineSource::open_circuit_voltage(Seconds t) const {
  const Volts env = envelope(t);
  if (env <= 0.0) return 0.0;
  return env * std::sin(phase_.at(t));
}

// ------------------------------------------------------------- Kinetic -----

KineticHarvesterSource::KineticHarvesterSource(const Params& params,
                                               std::uint64_t seed, Seconds horizon)
    : params_(params) {
  EDC_CHECK(params.resonance > 0.0, "resonance must be positive");
  EDC_CHECK(params.ring_tau > 0.0, "ring tau must be positive");
  EDC_CHECK(params.coil_resistance > 0.0, "coil resistance must be positive");
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  Rng rng(seed);
  Seconds t = 0.05;
  while (t < horizon) {
    impulses_.push_back(t);
    const double spacing =
        std::max(0.25 * params.step_period,
                 params.step_period * (1.0 + params.step_jitter * rng.normal()));
    t += spacing;
  }
}

Volts KineticHarvesterSource::open_circuit_voltage(Seconds t) const {
  double v = 0.0;
  // Only the most recent few impulses matter (ring-down); scan backwards.
  for (auto it = impulses_.rbegin(); it != impulses_.rend(); ++it) {
    const Seconds rel = t - *it;
    if (rel < 0.0) continue;
    if (rel > 8.0 * params_.ring_tau) break;
    v += params_.impulse_peak * std::exp(-rel / params_.ring_tau) *
         std::sin(kTwoPi * params_.resonance * rel);
  }
  return v;
}

// ------------------------------------------------------------ Waveform -----

WaveformVoltageSource::WaveformVoltageSource(Waveform wave, Ohms series_resistance,
                                             std::string name)
    : wave_(std::move(wave)), r_series_(series_resistance), name_(std::move(name)) {
  EDC_CHECK(!wave_.empty(), "waveform must not be empty");
  EDC_CHECK(series_resistance > 0.0, "series resistance must be positive");
  activity_ = ActivityIndex(wave_);
}

Volts WaveformVoltageSource::open_circuit_voltage(Seconds t) const {
  return wave_.at(t);
}

Seconds WaveformVoltageSource::bounded_until(Volts floor, Volts ceiling,
                                             Seconds t) const {
  // The index knows where the recording is identically zero; that answers
  // the query exactly when 0 lies inside the requested band (which the
  // macro stepper's queries guarantee). Elsewhere claim nothing.
  if (floor > 0.0 || ceiling < 0.0) return t;
  return activity_.zero_until(t);
}

}  // namespace edc::trace
