// Deterministic pseudo-random number generation.
//
// Every stochastic component in edc takes an explicit 64-bit seed so that
// simulations are bit-reproducible across runs and platforms (DESIGN.md §4).
// The generator is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>

namespace edc::trace {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x6c078965edc0ffeeULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal() noexcept;

  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return operator()() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace edc::trace
