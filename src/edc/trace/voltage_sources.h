// Thevenin-style source generators (feed a rectifier / the supply node).
#pragma once

#include <cstdint>
#include <vector>

#include "edc/trace/quiet_index.h"
#include "edc/trace/rng.h"
#include "edc/trace/source.h"
#include "edc/trace/waveform.h"

namespace edc::trace {

/// Laboratory signal generator: sine with DC offset. The paper validated
/// hibernus with a signal generator from DC to 20 Hz (§III).
class SineVoltageSource final : public VoltageSource {
 public:
  SineVoltageSource(Volts amplitude, Hertz frequency, Volts offset = 0.0,
                    Ohms series_resistance = 50.0);

  [[nodiscard]] Volts open_circuit_voltage(Seconds t) const override;
  [[nodiscard]] Ohms series_resistance() const override { return r_series_; }
  /// Exact (up to a shaved float-safety margin) phase solution: the next
  /// crossing of either band edge by offset + A sin(2 pi f t).
  [[nodiscard]] Seconds bounded_until(Volts floor, Volts ceiling,
                                      Seconds t) const override;
  /// A degenerate sine (zero amplitude or frequency) is a DC supply: the
  /// offset is certified forever. A live sine certifies nothing.
  [[nodiscard]] Seconds constant_until(Seconds t, Volts* value) const override;
  /// Endpoint chord over [t, t+horizon) with the C2 curvature envelope
  /// |v_oc - chord| <= A (2 pi f)^2 h^2 / 8 (plus a few-ulp float pad).
  /// This is what lets the ramp planner claim live sine arcs whole; a
  /// degenerate sine defers to the exact constant certificate.
  [[nodiscard]] LinearCert linear_until(Seconds t,
                                        Seconds horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Volts amplitude_;
  Hertz frequency_;
  Volts offset_;
  Ohms r_series_;
};

/// Square wave (50 % duty unless specified): models hard on/off supplies.
class SquareVoltageSource final : public VoltageSource {
 public:
  SquareVoltageSource(Volts high, Hertz frequency, double duty = 0.5,
                      Volts low = 0.0, Ohms series_resistance = 50.0);

  [[nodiscard]] Volts open_circuit_voltage(Seconds t) const override;
  [[nodiscard]] Ohms series_resistance() const override { return r_series_; }
  /// Exact phase arithmetic: quiet until the next switch into a level that
  /// violates the band.
  [[nodiscard]] Seconds bounded_until(Volts floor, Volts ceiling,
                                      Seconds t) const override;
  /// The current level, certified until the next (float-safety-shaved)
  /// switch edge — the canonical charge-span source: every high phase is a
  /// constant-voltage window the rectifier+RC closed form covers whole.
  [[nodiscard]] Seconds constant_until(Seconds t, Volts* value) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Volts high_;
  Hertz frequency_;
  double duty_;
  Volts low_;
  Ohms r_series_;
};

/// Micro wind turbine during gusts (Fig 1a).
///
/// The generator produces an AC voltage whose *amplitude* follows the gust
/// envelope and whose *electrical frequency* tracks rotor speed, which is
/// itself proportional to the envelope (a faster rotor generates both a
/// larger EMF and a higher frequency). A single gust reproduces Fig 1(a):
/// ~8 s long, peaking near +/-5 V with an electrical frequency of a few Hz.
class WindTurbineSource final : public VoltageSource {
 public:
  struct Params {
    Volts peak_voltage = 5.0;       ///< EMF at gust peak.
    Hertz peak_frequency = 6.0;     ///< electrical frequency at gust peak.
    Seconds gust_rise = 1.2;        ///< envelope rise time constant.
    Seconds gust_fall = 2.2;        ///< envelope decay time constant.
    Seconds gust_period = 10.0;     ///< mean spacing between gusts.
    double gust_jitter = 0.35;      ///< relative jitter on spacing/strength.
    Volts cut_in_voltage = 0.15;    ///< below this EMF the rotor is stalled.
    Ohms coil_resistance = 220.0;   ///< generator winding resistance.
  };

  /// A deterministic single-gust turbine starting its gust at t = 0.
  static WindTurbineSource single_gust(const Params& params);
  static WindTurbineSource single_gust();

  /// A stochastic multi-gust turbine (seeded; deterministic afterwards).
  WindTurbineSource(const Params& params, std::uint64_t seed, Seconds horizon);

  [[nodiscard]] Volts open_circuit_voltage(Seconds t) const override;
  [[nodiscard]] Ohms series_resistance() const override { return params_.coil_resistance; }
  /// Backed by the quiet-segment index built over the seeded gust schedule
  /// at construction: per-cell bounds from the analytic gust-envelope tail
  /// sum (every gust's contribution is bounded by its exponential decay)
  /// and the phase waveform's monotone arc, so inter-gust gaps, stalled
  /// (below cut-in) stretches and even the sub-cycle arcs where the EMF
  /// provably stays under the rectifier's conduction band all answer
  /// quiet. This is what lights the quiescent engine up on Fig 8.
  [[nodiscard]] Seconds bounded_until(Volts floor, Volts ceiling,
                                      Seconds t) const override;
  /// Endpoint chord over the run of chord-certified quiet-index cells
  /// containing t (capped at t+horizon). A cell is chord-certifiable when
  /// the gust envelope provably stays above the cut-in (so v_oc is the
  /// smooth env * sin(phase) with no stall discontinuity) and no gust
  /// starts inside it (gust onsets kink env'); the per-cell coefficients
  /// precomputed at construction bound the chord error by
  ///   curve*h^2 + kink*h*(h + phase-grid dt)
  /// — a curvature term from |d2/dt2 (env sin phi)| and a distributional
  /// term for the piecewise-linear phase's slope kinks at grid points.
  /// This is what claims the Fig 8 gust arcs for the ramp planner.
  [[nodiscard]] LinearCert linear_until(Seconds t,
                                        Seconds horizon) const override;
  [[nodiscard]] std::string name() const override { return "micro-wind-turbine"; }

  /// Gust envelope (peak EMF of the AC waveform) at time t; exposed for
  /// tests and for the Fig 1a bench.
  [[nodiscard]] Volts envelope(Seconds t) const;

  /// The quiet-segment index (tests / diagnostics).
  [[nodiscard]] const QuietSegmentIndex& quiet_index() const noexcept {
    return quiet_;
  }

 private:
  struct Gust {
    Seconds start = 0.0;
    double strength = 1.0;  // relative to peak_voltage
  };

  explicit WindTurbineSource(const Params& params);

  /// The gust-envelope sum before the cut-in threshold zeroes it.
  [[nodiscard]] Volts envelope_raw(Seconds t) const;

  /// Builds quiet_ from gusts_ + phase_ (call after both are final).
  void build_quiet_index();

  Params params_;
  std::vector<Gust> gusts_;
  // Electrical phase is the integral of instantaneous frequency; we sample it
  // on a fine grid at construction so open_circuit_voltage() stays a pure
  // function of t.
  Waveform phase_;
  QuietSegmentIndex quiet_;
  // Per-cell chord certification, same cell geometry as quiet_ (t0 = 0,
  // width = quiet_.cell_width()), filled by build_quiet_index.
  enum : std::uint8_t { kCellNone = 0, kCellZero = 1, kCellChord = 2 };
  std::vector<std::uint8_t> chord_kind_;
  std::vector<double> chord_curve_;  // h^2 coefficient of the chord error
  std::vector<double> chord_kink_;   // h*(h + grid dt) coefficient
};

/// Resonant kinetic (inertial/piezo) harvester excited by an impulse train,
/// e.g. heel strikes: each impulse rings down at the transducer's resonant
/// frequency.
class KineticHarvesterSource final : public VoltageSource {
 public:
  struct Params {
    Volts impulse_peak = 3.5;      ///< EMF just after an impulse.
    Hertz resonance = 50.0;        ///< transducer resonant frequency.
    Seconds ring_tau = 0.12;       ///< ring-down time constant.
    Seconds step_period = 0.9;     ///< mean time between impulses.
    double step_jitter = 0.25;     ///< relative jitter on spacing.
    Ohms coil_resistance = 500.0;
  };

  KineticHarvesterSource(const Params& params, std::uint64_t seed, Seconds horizon);

  [[nodiscard]] Volts open_circuit_voltage(Seconds t) const override;
  [[nodiscard]] Ohms series_resistance() const override { return params_.coil_resistance; }
  /// Backed by the quiet-segment index built over the seeded impulse train
  /// at construction: a cell with no impulse inside its 8-tau ring window
  /// is exactly zero, and elsewhere the ring-down tail sum bounds the EMF
  /// magnitude — so late-tail stretches answer quiet for the rectifier's
  /// conduction-band queries even while the transducer still rings.
  [[nodiscard]] Seconds bounded_until(Volts floor, Volts ceiling,
                                      Seconds t) const override;
  [[nodiscard]] std::string name() const override { return "kinetic-harvester"; }

  /// The quiet-segment index (tests / diagnostics).
  [[nodiscard]] const QuietSegmentIndex& quiet_index() const noexcept {
    return quiet_;
  }

 private:
  void build_quiet_index();

  Params params_;
  std::vector<Seconds> impulses_;
  QuietSegmentIndex quiet_;
};

/// Plays back an arbitrary waveform as an open-circuit voltage (e.g. a
/// recorded trace loaded from CSV).
class WaveformVoltageSource final : public VoltageSource {
 public:
  WaveformVoltageSource(Waveform wave, Ohms series_resistance,
                        std::string name = "waveform-voltage");

  [[nodiscard]] Volts open_circuit_voltage(Seconds t) const override;
  [[nodiscard]] Ohms series_resistance() const override { return r_series_; }
  /// Backed by a quiet-segment index built over the trace at construction:
  /// the recording is piecewise linear, so per-cell sample extrema bound it
  /// exactly and *any* band query answers — zero gaps, but also every
  /// stretch where the recording provably stays under the rectifier's
  /// conduction ceiling (the sub-cycle arcs of a recorded AC burst).
  [[nodiscard]] Seconds bounded_until(Volts floor, Volts ceiling,
                                      Seconds t) const override;
  /// Exact run-length certification: a run of identical consecutive
  /// samples interpolates to a constant, so recorded DC stretches become
  /// charge-span windows.
  [[nodiscard]] Seconds constant_until(Seconds t, Volts* value) const override;
  /// Within one sample cell the interpolated trace *is* affine, so the
  /// cell's chord is exact up to interpolation rounding (a few-ulp pad);
  /// the clamped head/tail certify constant chords. Every recorded trace
  /// thereby feeds the ramp planner cell by cell.
  [[nodiscard]] LinearCert linear_until(Seconds t,
                                        Seconds horizon) const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  Waveform wave_;
  QuietSegmentIndex quiet_;
  Ohms r_series_;
  std::string name_;
};

}  // namespace edc::trace
